// Quickstart: the full 6G-XSec loop in one program.
//
//  1. Collect a benign MobiFlow dataset from the simulated 5G testbed.
//  2. Train the unsupervised autoencoder detector on it (the SMO step).
//  3. Deploy the detector into the MobiWatch xApp on a live pipeline.
//  4. Replay benign traffic plus a BTS DoS attack.
//  5. Watch MobiWatch flag the attack and the LLM analyzer explain it.
#include <iostream>

#include "attacks/attack.hpp"
#include "core/datasets.hpp"
#include "core/evaluation.hpp"
#include "core/pipeline.hpp"
#include "core/smo.hpp"
#include "sim/traffic.hpp"

using namespace xsec;

int main() {
  std::cout << "=== 6G-XSec quickstart ===\n\n";

  // 1. Benign dataset collection.
  core::ScenarioConfig benign_config;
  benign_config.traffic.num_sessions = 80;
  benign_config.traffic.seed = 7;
  benign_config.run_time = SimDuration::from_s(6);
  std::cout << "[1/5] Collecting benign telemetry from the testbed...\n";
  mobiflow::Trace benign = core::collect_benign(benign_config);
  std::cout << "      " << benign.size() << " MobiFlow records from "
            << benign_config.traffic.num_sessions << " UE sessions\n";

  // 2. Train the autoencoder on benign traffic only.
  std::cout << "[2/5] Training the autoencoder detector (unsupervised)...\n";
  core::EvalConfig eval_config;
  eval_config.detector.epochs = 20;
  auto detector = core::train_detector(core::ModelKind::kAutoencoder, benign,
                                       eval_config);
  std::cout << "      threshold (99th pct of training errors) = "
            << detector->threshold() << "\n";

  // 3. Deploy into a live pipeline.
  std::cout << "[3/5] Deploying into the MobiWatch xApp on the nRT-RIC...\n";
  core::PipelineConfig pipeline_config;
  pipeline_config.analyzer.model = "ChatGPT-4o";
  pipeline_config.analyzer.auto_remediate = true;
  // A mildly lossy E2 transport: a couple of indications get dropped and
  // NACK-recovered along the way, visible in the counters printed below.
  pipeline_config.fault_plan.drop_probability = 0.02;
  // SMO-bound telemetry: the MetricsReportXapp exports the platform
  // metrics registry every second (Prometheus + JSON into the SDL).
  pipeline_config.metrics_report_period = SimDuration::from_s(1);
  core::Pipeline pipeline(pipeline_config);
  pipeline.install_detector(detector,
                            detect::FeatureEncoder(eval_config.features));

  // 4. Live traffic: benign background + a BTS DoS attack.
  std::cout << "[4/5] Running live traffic with a BTS DoS attack...\n";
  sim::TrafficConfig traffic;
  traffic.num_sessions = 25;
  traffic.seed = 99;
  sim::BenignTrafficGenerator generator(&pipeline.testbed(), traffic);
  generator.schedule_all();
  auto attack = attacks::make_bts_dos(/*connection_count=*/10);
  attack->launch(pipeline.testbed(), SimTime::from_ms(300));
  pipeline.run_for(SimDuration::from_s(5));
  pipeline.finalize();

  // 5. Results.
  std::cout << "[5/5] Results\n";
  std::cout << "      telemetry records collected: "
            << pipeline.agent().records_collected() << "\n";
  std::cout << "      E2 indications delivered:    "
            << pipeline.agent().indications_sent() << "\n";
  std::cout << "      windows scored by MobiWatch: "
            << pipeline.mobiwatch().windows_scored() << "\n";
  std::cout << "      anomalies flagged:           "
            << pipeline.mobiwatch().anomalies_flagged() << "\n";
  std::cout << "      incidents analyzed by LLM:   "
            << pipeline.analyzer().incidents_analyzed() << "\n";
  std::cout << "      remediations issued:         "
            << pipeline.analyzer().remediations_issued() << "\n\n";
  std::cout << pipeline.stats().to_text() << "\n";

  // The same numbers, as the SMO sees them: per-stage latency
  // distributions from the sim-time tracer, exported periodically by the
  // MetricsReportXapp.
  std::cout << "--- SMO metrics report (excerpt, "
            << pipeline.metrics_report()->reports_emitted()
            << " periodic exports) ---\n";
  for (const char* span :
       {"span.agent.encode", "span.e2.transit", "span.mobiwatch.score",
        "span.llm.analyze"}) {
    const obs::Histogram* h = pipeline.metrics().find_histogram(span);
    if (!h || h->count() == 0) continue;
    std::cout << "      " << span << ": n=" << h->count()
              << " p50<=" << h->quantile_upper(0.5) << "us"
              << " p99<=" << h->quantile_upper(0.99) << "us\n";
  }
  std::cout << "      full Prometheus export: "
            << pipeline.metrics_report()->latest_prometheus().size()
            << " bytes in SDL namespace \"obs\"\n\n";

  // Show the first incident the LLM CONFIRMED (false alarms it contradicts
  // land in the human-review queue instead — the paper's cross-comparison).
  for (const auto& report : pipeline.analyzer().reports()) {
    if (!report.llm_agrees) continue;
    std::cout << "--- First confirmed incident report ---\n"
              << report.to_text() << "\n";
    return 0;
  }
  std::cout << "No confirmed incident reports were produced.\n";
  return 1;
}
