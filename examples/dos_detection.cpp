// Domain scenario: protecting a small private-5G cell from a BTS DoS with
// closed-loop remediation — the paper's envisioned AIOps workflow for
// "lower-skilled and private cellular operators".
//
// Runs the same attack twice: once with 6G-XSec monitoring only, once with
// auto-remediation enabled, and compares the denial of service experienced
// by legitimate subscribers.
#include <iostream>

#include "attacks/attack.hpp"
#include "core/datasets.hpp"
#include "core/evaluation.hpp"
#include "core/pipeline.hpp"
#include "sim/traffic.hpp"

using namespace xsec;

namespace {

struct Outcome {
  std::size_t rejected = 0;
  std::size_t registered = 0;
  std::size_t anomalies = 0;
  std::size_t remediations = 0;
};

Outcome run_scenario(std::shared_ptr<detect::AnomalyDetector> detector,
                     const core::EvalConfig& eval, bool auto_remediate) {
  core::PipelineConfig config;
  config.analyzer.model = "ChatGPT-4o";
  config.analyzer.auto_remediate = auto_remediate;
  // A small private cell: the admission table holds only 12 UE contexts,
  // and half-open contexts are GC'd slowly — easy prey for the flood.
  config.testbed.gnb.max_ue_contexts = 12;
  config.testbed.gnb.context_setup_timeout = SimDuration::from_s(2);
  config.testbed.amf.procedure_timeout = SimDuration::from_s(2);
  core::Pipeline pipeline(config);
  pipeline.install_detector(detector,
                            detect::FeatureEncoder(eval.features));

  // Legitimate subscribers keep arriving through the attack.
  sim::TrafficConfig traffic;
  traffic.num_sessions = 18;
  traffic.arrival_mean = SimDuration::from_ms(50);
  traffic.seed = 77;
  sim::BenignTrafficGenerator generator(&pipeline.testbed(), traffic);
  generator.schedule_all();

  auto attack = attacks::make_bts_dos(/*connection_count=*/20,
                                      SimDuration::from_ms(4));
  attack->launch(pipeline.testbed(), SimTime::from_ms(120));
  pipeline.run_for(SimDuration::from_s(6));
  pipeline.finalize();

  Outcome outcome;
  outcome.rejected = pipeline.testbed().gnb().rejected_connections();
  outcome.registered = pipeline.testbed().amf().registered_count();
  outcome.anomalies = pipeline.mobiwatch().anomalies_flagged();
  outcome.remediations = pipeline.analyzer().remediations_issued();
  return outcome;
}

}  // namespace

int main() {
  std::cout << "=== Private-cell DoS defence scenario ===\n\n";
  std::cout << "Training the detector on benign traffic (SMO step)...\n";
  core::ScenarioConfig benign_config;
  benign_config.traffic.num_sessions = 60;
  benign_config.traffic.seed = 21;
  benign_config.traffic.arrival_mean = SimDuration::from_ms(60);
  benign_config.run_time = SimDuration::from_s(8);
  mobiflow::Trace benign = core::collect_benign(benign_config);
  core::EvalConfig eval;
  eval.detector.epochs = 25;
  auto detector =
      core::train_detector(core::ModelKind::kAutoencoder, benign, eval);

  std::cout << "\nScenario A: monitoring only (no closed-loop control)\n";
  Outcome monitored = run_scenario(detector, eval, false);
  std::cout << "  legitimate registrations: " << monitored.registered
            << " / 18\n"
            << "  connections rejected:     " << monitored.rejected << "\n"
            << "  anomalies flagged:        " << monitored.anomalies << "\n";

  std::cout << "\nScenario B: closed-loop remediation (RIC Control releases "
               "flagged contexts)\n";
  Outcome defended = run_scenario(detector, eval, true);
  std::cout << "  legitimate registrations: " << defended.registered
            << " / 18\n"
            << "  connections rejected:     " << defended.rejected << "\n"
            << "  anomalies flagged:        " << defended.anomalies << "\n"
            << "  RIC Control releases:     " << defended.remediations
            << "\n\n";

  if (defended.registered > monitored.registered) {
    std::cout << "Closed-loop control recovered "
              << defended.registered - monitored.registered
              << " subscriber registrations that the attack would have "
                 "denied.\n";
  } else {
    std::cout << "NOTE: remediation did not improve admissions in this run; "
                 "tune the attack/GC\nparameters to observe the effect.\n";
  }
  return defended.anomalies > 0 ? 0 : 1;
}
