// Dataset tooling walkthrough: record a labeled attack capture to a trace
// file (this reproduction's stand-in for the released pcap-derived
// datasets), reload it, print summary statistics, and export CSV — the
// workflow a researcher uses to share captures between the collection
// testbed and offline training.
#include <filesystem>
#include <iostream>

#include "attacks/attack.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/datasets.hpp"

using namespace xsec;

int main(int argc, char** argv) {
  std::string out_dir = argc > 1 ? argv[1] : "results/traces";
  std::filesystem::create_directories(out_dir);
  std::cout << "=== MobiFlow trace tooling ===\n\n";

  // 1. Record: one capture per attack, benign background included.
  std::cout << "[1/3] Recording labeled captures to " << out_dir << "/\n";
  auto attacks = attacks::make_all_attacks();
  std::vector<std::string> paths;
  for (auto& attack : attacks) {
    core::ScenarioConfig config;
    config.traffic.num_sessions = 10;
    config.traffic.seed = fnv1a(attack->id()) & 0xffff;
    config.run_time = SimDuration::from_s(3);
    mobiflow::Trace trace =
        core::collect_attack(*attack, config, SimTime::from_ms(200));
    std::string path = out_dir + "/" + attack->id() + ".mft";
    auto status = trace.save(path);
    if (!status.ok()) {
      std::cerr << "save failed: " << status.error().message << "\n";
      return 1;
    }
    paths.push_back(path);
  }

  // 2. Reload and summarize.
  std::cout << "[2/3] Reloading and summarizing\n\n";
  Table summary({"Capture", "Records", "Malicious", "UE contexts",
                 "RRC msgs", "NAS msgs", "Span (ms)"});
  for (const std::string& path : paths) {
    auto loaded = mobiflow::Trace::load(path);
    if (!loaded.ok()) {
      std::cerr << "load failed for " << path << "\n";
      return 1;
    }
    const mobiflow::Trace& trace = loaded.value();
    std::set<std::uint64_t> ues;
    std::size_t rrc = 0, nas = 0;
    std::int64_t first = 0, last = 0;
    for (const auto& entry : trace.entries()) {
      ues.insert(entry.record.ue_id);
      if (entry.record.protocol == mobiflow::vocab::Protocol::kRrc) ++rrc;
      if (entry.record.protocol == mobiflow::vocab::Protocol::kNas) ++nas;
      if (first == 0) first = entry.record.timestamp_us;
      last = entry.record.timestamp_us;
    }
    summary.add_row({std::filesystem::path(path).filename().string(),
                     std::to_string(trace.size()),
                     std::to_string(trace.malicious_count()),
                     std::to_string(ues.size()), std::to_string(rrc),
                     std::to_string(nas),
                     format_fixed((last - first) / 1000.0, 1)});
  }
  std::cout << summary.render() << "\n";

  // 3. CSV export of one capture.
  std::cout << "[3/3] Exporting " << paths[0] << " as CSV\n";
  auto loaded = mobiflow::Trace::load(paths[0]);
  std::string csv_path = out_dir + "/bts_dos.csv";
  write_file(csv_path, loaded.value().to_csv());
  std::cout << "  -> " << csv_path << " ("
            << loaded.value().to_csv().size() << " bytes)\n";
  return 0;
}
