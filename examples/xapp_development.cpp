// Writing your own xApp against this platform's public API.
//
// Two custom xApps on a two-cell deployment:
//   * KpmCounterXapp — subscribes to the MobiFlow RAN function on every
//     connected E2 node and maintains per-cell message-rate counters in the
//     SDL (a miniature E2SM-KPM consumer).
//   * AlertForwarderXapp — subscribes to the analyzer's report stream on
//     the message router and keeps an operator-facing incident digest.
// Plus an A1 policy push steering MobiWatch's sensitivity at runtime.
#include <iostream>
#include <map>

#include "attacks/attack.hpp"
#include "common/strings.hpp"
#include "core/datasets.hpp"
#include "core/evaluation.hpp"
#include "core/pipeline.hpp"
#include "mobiflow/record.hpp"
#include "oran/e2sm.hpp"
#include "sim/traffic.hpp"

using namespace xsec;

namespace {

/// Counts telemetry rows per (cell, protocol) from its own E2 subscription.
class KpmCounterXapp : public oran::XApp {
 public:
  KpmCounterXapp() : oran::XApp("kpm-counter") {}

  void on_start() override {
    for (std::uint64_t node : ric().connected_nodes()) {
      oran::RicAction action;
      action.action_id = 1;
      action.type = oran::RicActionType::kReport;
      action.definition = oran::e2sm::encode_action_definition({});
      ric().subscribe(this, node, oran::e2sm::kMobiFlowFunctionId,
                      oran::e2sm::encode_event_trigger({10}), {action});
    }
  }

  void on_indication(std::uint64_t node_id,
                     const oran::RicIndication& indication) override {
    auto message = oran::e2sm::decode_indication_message(indication.message);
    if (!message) return;
    for (const auto& row : message.value().rows) {
      auto record = mobiflow::Record::from_kv_bytes(row);
      if (!record.ok()) continue;
      std::string proto(record.value().protocol_name());
      ++counters_[{node_id, proto}];
      // Publish the running counter to the SDL for other consumers.
      sdl().set_str("kpm", "node" + std::to_string(node_id) + "/" + proto,
                    std::to_string(counters_[{node_id, proto}]));
    }
  }

  const std::map<std::pair<std::uint64_t, std::string>, std::size_t>&
  counters() const {
    return counters_;
  }

 private:
  std::map<std::pair<std::uint64_t, std::string>, std::size_t> counters_;
};

/// Collects analyzer verdicts from the router into an incident digest.
class AlertForwarderXapp : public oran::XApp {
 public:
  AlertForwarderXapp() : oran::XApp("alert-forwarder") {}

  void on_start() override {
    router().subscribe(oran::kMtAnalysisReport,
                       [this](const oran::RoutedMessage& message) {
                         digests_.emplace_back(message.payload.begin(),
                                               message.payload.end());
                       });
    router().subscribe(oran::kMtHumanReview,
                       [this](const oran::RoutedMessage&) { ++escalations_; });
  }

  const std::vector<std::string>& digests() const { return digests_; }
  std::size_t escalations() const { return escalations_; }

 private:
  std::vector<std::string> digests_;
  std::size_t escalations_ = 0;
};

}  // namespace

int main() {
  std::cout << "=== Custom xApp development walkthrough ===\n\n";

  // Train a detector offline, as usual.
  core::ScenarioConfig benign_config;
  benign_config.traffic.num_sessions = 50;
  benign_config.traffic.seed = 33;
  benign_config.run_time = SimDuration::from_s(8);
  core::EvalConfig eval;
  eval.detector.epochs = 20;
  auto detector = core::train_detector(core::ModelKind::kAutoencoder,
                                       core::collect_benign(benign_config),
                                       eval);

  // A two-cell deployment: the RIC manages two E2 nodes.
  core::PipelineConfig config;
  config.testbed.num_cells = 2;
  core::Pipeline pipeline(config);
  pipeline.install_detector(detector,
                            detect::FeatureEncoder(eval.features));

  // Register the custom xApps alongside MobiWatch and the analyzer.
  auto* kpm = static_cast<KpmCounterXapp*>(
      pipeline.ric().register_xapp(std::make_unique<KpmCounterXapp>()));
  auto* alerts = static_cast<AlertForwarderXapp*>(
      pipeline.ric().register_xapp(std::make_unique<AlertForwarderXapp>()));

  // Steer MobiWatch sensitivity over A1 (non-RT RIC policy push).
  oran::A1Policy tuning;
  tuning.policy_type = oran::kPolicyDetectionTuning;
  tuning.policy_id = "ops-sensitivity-1";
  tuning.content = {{"threshold_scale", "1.2"}};
  std::cout << "A1 policy 'threshold_scale=1.2' -> mobiwatch: "
            << to_string(pipeline.ric().apply_policy("mobiwatch", tuning))
            << "\n\n";

  // Traffic on both cells plus an attack on cell 1.
  sim::TrafficConfig traffic;
  traffic.num_sessions = 12;
  traffic.seed = 11;
  sim::BenignTrafficGenerator generator(&pipeline.testbed(), traffic);
  generator.schedule_all();
  for (int i = 0; i < 4; ++i) {
    ran::UeConfig ue;
    ue.supi = ran::Supi{ran::Plmn::test_network(),
                        6000 + static_cast<std::uint64_t>(i)};
    ue.seed = 100 + static_cast<std::uint64_t>(i);
    pipeline.testbed().add_ue(ue, SimTime::from_ms(50 + 40 * i), /*cell=*/1);
  }
  auto attack = attacks::make_bts_dos(8);
  attack->launch(pipeline.testbed(), SimTime::from_ms(300));
  pipeline.run_for(SimDuration::from_s(4));
  pipeline.finalize();

  std::cout << "Per-cell telemetry counters (KpmCounterXapp):\n";
  for (const auto& [key, count] : kpm->counters())
    std::cout << "  node " << key.first << " " << pad_right(key.second, 4)
              << ": " << count << " messages\n";
  std::cout << "\nIncident digest (AlertForwarderXapp): "
            << alerts->digests().size() << " reports, "
            << alerts->escalations() << " human-review escalations\n";
  if (!alerts->digests().empty()) {
    std::cout << "\nFirst incident digest:\n";
    for (const auto& line : split(alerts->digests().front(), '\n')) {
      std::cout << "  " << line << "\n";
      if (line.rfind("Why", 0) == 0) break;  // keep the output short
    }
  }
  return alerts->digests().empty() ? 1 : 0;
}
