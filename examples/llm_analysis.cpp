// Expert-referencing walkthrough: runs each of the five attacks, extracts
// the flagged window, builds the analyst prompt, and prints every
// personality's verdict plus the full analysis for one model — the §3.3
// classification / explanation / attribution / remediation output.
//
// Also demonstrates the production client path: the same prompt formatted
// as a REST chat request (with an offline echo transport).
#include <iostream>

#include "attacks/attack.hpp"
#include "common/strings.hpp"
#include "core/datasets.hpp"
#include "llm/client.hpp"
#include "llm/personalities.hpp"
#include "llm/prompt.hpp"

using namespace xsec;

int main() {
  std::cout << "=== LLM expert referencing walkthrough ===\n\n";

  llm::SimLlmClient client;
  llm::PromptTemplate prompt_template;

  auto attacks = attacks::make_all_attacks();
  for (auto& attack : attacks) {
    core::ScenarioConfig config;
    config.traffic.num_sessions = 4;
    config.traffic.seed = 17;
    config.run_time = SimDuration::from_s(3);
    mobiflow::Trace trace =
        core::collect_attack(*attack, config, SimTime::from_ms(150));

    // Extract the attack-centred window.
    std::size_t first = trace.size(), last = 0;
    for (std::size_t i = 0; i < trace.size(); ++i)
      if (trace.entries()[i].malicious) {
        first = std::min(first, i);
        last = std::max(last, i);
      }
    if (first == trace.size()) {
      std::cout << attack->display_name() << ": no attack records captured\n";
      continue;
    }
    mobiflow::Trace window;
    std::size_t begin = first > 10 ? first - 10 : 0;
    for (std::size_t i = begin; i < std::min(trace.size(), last + 8); ++i)
      window.add(trace.entries()[i].record);

    std::string prompt = prompt_template.build(window);
    std::cout << "### " << attack->display_name() << " ("
              << attack->citation() << ")\n";
    std::cout << "    verdicts: ";
    for (const auto& model : llm::baseline_models()) {
      auto response = client.query({model.name, prompt});
      std::cout << model.name << "="
                << (response.ok() && response.value().verdict_anomalous
                        ? "ANOMALOUS"
                        : "benign")
                << "  ";
    }
    std::cout << "\n";

    // Full analysis from the strongest model of Table 3.
    auto response = client.query({"ChatGPT-4o", prompt});
    if (response.ok()) {
      std::cout << "    --- ChatGPT-4o analysis ---\n";
      for (const auto& line : split(response.value().text, '\n'))
        std::cout << "    " << line << "\n";
    }
    std::cout << "\n";
  }

  // Production path demo: the REST request a real deployment would send.
  std::cout << "### REST client request (production path, offline echo "
               "transport)\n";
  llm::RestLlmClient rest(
      "https://api.example.com/v1/chat/completions", "sk-REDACTED",
      [](const llm::HttpRequest& request) -> Result<std::string> {
        std::cout << "    POST " << request.url << "\n    body prefix: "
                  << request.body.substr(0, 120) << "...\n";
        return std::string("{\"content\":\"Verdict: BENIGN.\\n(offline echo "
                           "transport)\"}");
      });
  mobiflow::Record demo;
  demo.protocol = mobiflow::vocab::Protocol::kRrc;
  demo.msg = mobiflow::vocab::MsgType::kRrcSetupRequest;
  demo.direction = mobiflow::vocab::Direction::kUl;
  demo.rnti = 0x1234;
  mobiflow::Trace demo_trace;
  demo_trace.add(demo);
  auto rest_response =
      rest.query({"gpt-4o", prompt_template.build(demo_trace)});
  std::cout << "    transport verdict: "
            << (rest_response.ok() && !rest_response.value().verdict_anomalous
                    ? "benign (parsed from JSON body)"
                    : "unexpected")
            << "\n";
  return 0;
}
