// Reproduces Figure 2: the benign registration sequence side by side with
// the two illustrated attacks — downlink identity extraction (Figure 2a,
// the out-of-order sequence) and the RAN DoS flood (Figure 2b, repeated
// connections from a stream of RNTIs). All three traces are generated live
// on the testbed and printed as MobiFlow telemetry.
#include <iostream>

#include "attacks/attack.hpp"
#include "core/datasets.hpp"
#include "llm/prompt.hpp"

using namespace xsec;

namespace {

void print_trace(const std::string& title, const mobiflow::Trace& trace,
                 std::size_t limit = 40) {
  std::cout << "--- " << title << " ---\n";
  std::size_t shown = 0;
  for (const auto& entry : trace.entries()) {
    if (shown++ >= limit) {
      std::cout << "  ... (" << trace.size() - limit << " more records)\n";
      break;
    }
    std::cout << (entry.malicious ? "  [ATTACK] " : "           ")
              << llm::render_record_line(entry.record) << "\n";
  }
  std::cout << "\n";
}

mobiflow::Trace run_single_attack(std::unique_ptr<attacks::Attack> attack) {
  core::ScenarioConfig config;
  config.traffic.num_sessions = 0;  // attack only, no background
  config.run_time = SimDuration::from_s(2);
  return core::collect_attack(*attack, config, SimTime::from_ms(10));
}

}  // namespace

int main() {
  std::cout << "=== Figure 2: benign vs. attack message sequences ===\n\n";

  // Benign sequence (Figure 2's left column): one clean registration.
  core::ScenarioConfig benign_config;
  benign_config.traffic.num_sessions = 1;
  benign_config.traffic.seed = 4;
  benign_config.run_time = SimDuration::from_s(2);
  print_trace("Benign registration (RRC Conn -> Setup -> Comp -> Reg -> "
              "Auth Req -> Auth Resp -> ...)",
              core::collect_benign(benign_config));

  // Figure 2a: identity extraction — the downlink Authentication Request is
  // overwritten in the air; the victim answers with its identity instead.
  print_trace(
      "Identity extraction (Figure 2a): Auth.Req answered by Iden.Resp "
      "with a PLAINTEXT identity",
      run_single_attack(attacks::make_downlink_id_extraction()));

  // Figure 2b: RAN DoS — repeated RRC connections from fresh RNTIs, each
  // abandoned at the authentication step.
  print_trace("RAN DoS (Figure 2b): repeated Conn/Setup/Comp/Reg/Auth from "
              "a stream of RNTIs",
              run_single_attack(attacks::make_bts_dos(5)), 60);

  std::cout << "Note how 2a deviates in ORDER (univariate anomaly) while 2b "
               "deviates jointly in\nsequence, identifier stream, and "
               "timing (multivariate anomaly) — the paper's\n§2.2 "
               "distinction.\n";
  return 0;
}
