// Deep-learning substrate tests: tensor ops, layer gradients (numerical
// checks), optimizers, autoencoder + LSTM end-to-end on toy problems,
// metrics, serialization.
#include <gtest/gtest.h>

#include <cmath>

#include "dl/autoencoder.hpp"
#include "dl/layers.hpp"
#include "dl/lstm.hpp"
#include "dl/metrics.hpp"
#include "dl/optim.hpp"
#include "dl/serialize.hpp"
#include "dl/tensor.hpp"

namespace xsec::dl {
namespace {

// --- Matrix ----------------------------------------------------------

TEST(Matrix, MatmulKnownValues) {
  Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  Matrix b = Matrix::from_rows({{5, 6}, {7, 8}});
  Matrix c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50);
}

TEST(Matrix, TransposedVariantsAgree) {
  Rng rng(1);
  Matrix a(3, 4);
  Matrix b(4, 5);
  a.xavier_init(rng, 3, 4);
  b.xavier_init(rng, 4, 5);
  // matmul_bt(a, b^T stored as (5x4)) == matmul(a, b)
  Matrix bt = b.transposed();
  Matrix via_bt = matmul_bt(a, bt);
  Matrix direct = matmul(a, b);
  for (std::size_t i = 0; i < direct.size(); ++i)
    EXPECT_NEAR(via_bt.data()[i], direct.data()[i], 1e-5);
  // matmul_at(a^T stored as a (3x4), c) == matmul(a^T, c)
  Matrix c(3, 2);
  c.xavier_init(rng, 3, 2);
  Matrix via_at = matmul_at(a, c);
  Matrix direct_at = matmul(a.transposed(), c);
  for (std::size_t i = 0; i < direct_at.size(); ++i)
    EXPECT_NEAR(via_at.data()[i], direct_at.data()[i], 1e-5);
}

TEST(Matrix, ElementwiseOps) {
  Matrix a = Matrix::from_rows({{1, 2}});
  Matrix b = Matrix::from_rows({{3, 4}});
  EXPECT_FLOAT_EQ(add(a, b).at(0, 1), 6);
  EXPECT_FLOAT_EQ(sub(a, b).at(0, 0), -2);
  EXPECT_FLOAT_EQ(hadamard(a, b).at(0, 1), 8);
  Matrix row = Matrix::from_rows({{10, 20}});
  EXPECT_FLOAT_EQ(add_row_vector(a, row).at(0, 1), 22);
  Matrix two = Matrix::from_rows({{1, 2}, {3, 4}});
  Matrix sums = sum_rows(two);
  EXPECT_FLOAT_EQ(sums.at(0, 0), 4);
  EXPECT_FLOAT_EQ(sums.at(0, 1), 6);
}

// --- Numerical gradient checking --------------------------------------

/// Checks layer backward against central finite differences of a scalar
/// loss L = sum(forward(x) * weights_const).
void check_layer_gradients(Layer& layer, Matrix x, float tolerance = 2e-2f) {
  Matrix out = layer.forward(x);
  // L = sum of outputs; dL/dout = 1.
  Matrix grad_out(out.rows(), out.cols(), 1.0f);
  layer.zero_grad();
  Matrix grad_in = layer.backward(grad_out);

  const float eps = 1e-3f;
  auto loss_of = [&layer](const Matrix& input) {
    Matrix output = layer.forward(input);
    double total = 0;
    for (float v : output.data()) total += v;
    return total;
  };
  // Check input gradient.
  for (std::size_t i = 0; i < x.size(); i += std::max<std::size_t>(
                                            1, x.size() / 7)) {
    Matrix xp = x;
    xp.data()[i] += eps;
    Matrix xm = x;
    xm.data()[i] -= eps;
    double numeric = (loss_of(xp) - loss_of(xm)) / (2 * eps);
    EXPECT_NEAR(grad_in.data()[i], numeric, tolerance)
        << "input grad mismatch at " << i;
  }
  // Check parameter gradients.
  for (Param p : layer.params()) {
    for (std::size_t i = 0; i < p.value->size();
         i += std::max<std::size_t>(1, p.value->size() / 5)) {
      float saved = p.value->data()[i];
      p.value->data()[i] = saved + eps;
      double lp = loss_of(x);
      p.value->data()[i] = saved - eps;
      double lm = loss_of(x);
      p.value->data()[i] = saved;
      double numeric = (lp - lm) / (2 * eps);
      EXPECT_NEAR(p.grad->data()[i], numeric, tolerance)
          << "param grad mismatch at " << i;
    }
  }
}

TEST(Gradients, Linear) {
  Rng rng(3);
  Linear layer(4, 3, rng);
  Matrix x(2, 4);
  x.xavier_init(rng, 4, 3);
  check_layer_gradients(layer, x);
}

TEST(Gradients, Relu) {
  Rng rng(4);
  Relu layer;
  Matrix x(2, 5);
  x.xavier_init(rng, 5, 5);
  for (float& v : x.data()) v += (v >= 0 ? 0.1f : -0.1f);  // avoid kink
  check_layer_gradients(layer, x);
}

TEST(Gradients, SigmoidAndTanh) {
  Rng rng(5);
  Matrix x(2, 4);
  x.xavier_init(rng, 4, 4);
  Sigmoid sigmoid;
  check_layer_gradients(sigmoid, x);
  Tanh tanh_layer;
  check_layer_gradients(tanh_layer, x);
}

TEST(Gradients, SequentialStack) {
  Rng rng(6);
  Sequential net;
  net.add(std::make_unique<Linear>(4, 6, rng));
  net.add(std::make_unique<Relu>());
  net.add(std::make_unique<Linear>(6, 2, rng));
  net.add(std::make_unique<Sigmoid>());
  Matrix x(3, 4);
  x.xavier_init(rng, 4, 4);
  check_layer_gradients(net, x);
}

// --- Optimizers ---------------------------------------------------------

TEST(Optim, SgdAndAdamMinimizeQuadratic) {
  // minimize f(w) = sum (w - 3)^2 via explicit gradient.
  for (int use_adam = 0; use_adam <= 1; ++use_adam) {
    Matrix w(1, 4, 0.0f);
    Matrix g(1, 4);
    std::vector<Param> params = {{&w, &g}};
    std::unique_ptr<Optimizer> opt;
    if (use_adam)
      opt = std::make_unique<Adam>(params, 0.1f);
    else
      opt = std::make_unique<Sgd>(params, 0.05f, 0.9f);
    for (int step = 0; step < 300; ++step) {
      for (std::size_t i = 0; i < w.size(); ++i)
        g.data()[i] = 2 * (w.data()[i] - 3.0f);
      opt->step();
    }
    for (float v : w.data()) EXPECT_NEAR(v, 3.0f, 0.05f);
  }
}

TEST(Optim, ClipGradNorm) {
  Matrix w(1, 2);
  Matrix g = Matrix::from_rows({{3.0f, 4.0f}});  // norm 5
  std::vector<Param> params = {{&w, &g}};
  clip_grad_norm(params, 1.0f);
  double norm = std::sqrt(g.at(0, 0) * g.at(0, 0) + g.at(0, 1) * g.at(0, 1));
  EXPECT_NEAR(norm, 1.0, 1e-5);
  // Below the cap: untouched.
  Matrix g2 = Matrix::from_rows({{0.3f, 0.4f}});
  std::vector<Param> params2 = {{&w, &g2}};
  clip_grad_norm(params2, 1.0f);
  EXPECT_FLOAT_EQ(g2.at(0, 0), 0.3f);
}

// --- Autoencoder ---------------------------------------------------------

Matrix toy_benign_data(Rng& rng, std::size_t n) {
  // Two one-hot groups with a fixed correlation: class k in group 1 pairs
  // with class k in group 2.
  Matrix data(n, 8, 0.0f);
  for (std::size_t r = 0; r < n; ++r) {
    std::size_t k = rng.uniform_u64(0, 3);
    data.at(r, k) = 1.0f;
    data.at(r, 4 + k) = 1.0f;
  }
  return data;
}

TEST(Autoencoder, LearnsToyDistributionAndFlagsOutliers) {
  Rng rng(7);
  Matrix benign = toy_benign_data(rng, 256);
  Autoencoder model(AutoencoderConfig{8, {16, 4}, 99});
  TrainConfig train;
  train.epochs = 120;
  train.learning_rate = 5e-3f;
  double final_loss = model.fit(benign, train);
  EXPECT_LT(final_loss, 0.05);

  auto benign_errors = model.reconstruction_errors(benign);
  double benign_mean = 0;
  for (double e : benign_errors) benign_mean += e;
  benign_mean /= static_cast<double>(benign_errors.size());

  // An outlier breaking the correlation must reconstruct worse.
  Matrix outlier(1, 8, 0.0f);
  outlier.at(0, 0) = 1.0f;
  outlier.at(0, 4 + 2) = 1.0f;  // mismatched pair
  double outlier_error = model.reconstruction_errors(outlier)[0];
  EXPECT_GT(outlier_error, benign_mean * 3);
}

TEST(Autoencoder, EpochCallbackInvokedAndLossDecreases) {
  Rng rng(8);
  Matrix data = toy_benign_data(rng, 64);
  Autoencoder model(AutoencoderConfig{8, {8, 2}, 1});
  std::vector<double> losses;
  TrainConfig train;
  train.epochs = 30;
  train.on_epoch = [&](int, double loss) { losses.push_back(loss); };
  model.fit(data, train);
  ASSERT_EQ(losses.size(), 30u);
  EXPECT_LT(losses.back(), losses.front());
}

TEST(Autoencoder, DeterministicGivenSeed) {
  Rng rng(9);
  Matrix data = toy_benign_data(rng, 64);
  auto run = [&data] {
    Autoencoder model(AutoencoderConfig{8, {8, 2}, 55});
    TrainConfig train;
    train.epochs = 10;
    model.fit(data, train);
    return model.reconstruction_errors(data);
  };
  EXPECT_EQ(run(), run());
}

// --- LSTM ------------------------------------------------------------

std::vector<SequenceSample> toy_sequences(std::size_t n) {
  // Deterministic cyclic pattern over 4 one-hot symbols: 0 1 2 3 0 1 ...
  std::vector<SequenceSample> samples;
  for (std::size_t start = 0; start < n; ++start) {
    SequenceSample s;
    for (std::size_t t = 0; t < 3; ++t) {
      std::vector<float> x(4, 0.0f);
      x[(start + t) % 4] = 1.0f;
      s.window.push_back(x);
    }
    s.target.assign(4, 0.0f);
    s.target[(start + 3) % 4] = 1.0f;
    samples.push_back(std::move(s));
  }
  return samples;
}

TEST(Lstm, LearnsCyclicSequence) {
  auto samples = toy_sequences(64);
  LstmPredictor model(LstmConfig{4, 16, 11});
  LstmTrainConfig train;
  train.epochs = 150;
  train.learning_rate = 5e-3f;
  double loss = model.fit(samples, train);
  EXPECT_LT(loss, 0.03);

  // Prediction puts most mass on the correct next symbol.
  auto predicted = model.predict(samples[0].window);
  std::size_t argmax = 0;
  for (std::size_t i = 1; i < predicted.size(); ++i)
    if (predicted[i] > predicted[argmax]) argmax = i;
  EXPECT_EQ(argmax, 3u);  // window 0,1,2 -> next is 3
}

TEST(Lstm, AnomalousNextSymbolScoresHigher) {
  auto samples = toy_sequences(64);
  LstmPredictor model(LstmConfig{4, 16, 12});
  LstmTrainConfig train;
  train.epochs = 150;
  train.learning_rate = 5e-3f;
  model.fit(samples, train);

  double benign_error = model.prediction_error(samples[0]);
  SequenceSample anomalous = samples[0];
  anomalous.target.assign(4, 0.0f);
  anomalous.target[1] = 1.0f;  // wrong symbol follows
  EXPECT_GT(model.prediction_error(anomalous), benign_error * 4);
}

TEST(Lstm, MaxStepErrorsCatchMidWindowAnomaly) {
  auto samples = toy_sequences(64);
  LstmPredictor model(LstmConfig{4, 16, 13});
  LstmTrainConfig train;
  train.epochs = 150;
  train.learning_rate = 5e-3f;
  model.fit(samples, train);

  SequenceSample corrupted = samples[0];
  corrupted.window[2].assign(4, 0.0f);
  corrupted.window[2][0] = 1.0f;  // out-of-order symbol mid-window
  double clean = model.max_step_errors({samples[0]})[0];
  double broken = model.max_step_errors({corrupted})[0];
  EXPECT_GT(broken, clean * 3);
}

TEST(Lstm, BatchedAndSingleErrorsAgree) {
  auto samples = toy_sequences(10);
  LstmPredictor model(LstmConfig{4, 8, 14});
  LstmTrainConfig train;
  train.epochs = 5;
  model.fit(samples, train);
  auto batched = model.prediction_errors(samples);
  for (std::size_t i = 0; i < samples.size(); ++i)
    EXPECT_NEAR(batched[i], model.prediction_error(samples[i]), 1e-9);
}

// --- Metrics ----------------------------------------------------------

TEST(Metrics, ConfusionMath) {
  Confusion c;
  c.tp = 8;
  c.fp = 2;
  c.tn = 85;
  c.fn = 5;
  EXPECT_NEAR(c.accuracy(), 0.93, 1e-9);
  EXPECT_NEAR(c.precision(), 0.8, 1e-9);
  EXPECT_NEAR(c.recall(), 8.0 / 13.0, 1e-9);
  double p = c.precision(), r = c.recall();
  EXPECT_NEAR(c.f1(), 2 * p * r / (p + r), 1e-9);
}

TEST(Metrics, UndefinedCellsAreNaN) {
  Confusion c;
  c.tn = 10;
  EXPECT_TRUE(std::isnan(c.precision()));
  EXPECT_TRUE(std::isnan(c.recall()));
  EXPECT_TRUE(std::isnan(c.f1()));
  EXPECT_NEAR(c.accuracy(), 1.0, 1e-9);
}

TEST(Metrics, EvaluateThresholdStrictlyGreater) {
  Confusion c = evaluate_threshold({0.5, 1.0, 2.0}, {false, false, true}, 1.0);
  EXPECT_EQ(c.tp, 1u);
  EXPECT_EQ(c.fp, 0u);
  EXPECT_EQ(c.tn, 2u);  // score == threshold is benign
}

TEST(Metrics, KfoldPartitionsEverything) {
  auto folds = kfold_indices(10, 3);
  ASSERT_EQ(folds.size(), 3u);
  std::vector<int> seen(10, 0);
  for (const auto& [train, test] : folds) {
    EXPECT_EQ(train.size() + test.size(), 10u);
    for (std::size_t i : test) ++seen[i];
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

// --- Serialization ------------------------------------------------------

TEST(Serialize, RoundTripRestoresWeights) {
  Rng rng(20);
  Linear a(4, 3, rng);
  Linear b(4, 3, rng);
  Bytes blob = save_params(a.params());
  ASSERT_TRUE(load_params(b.params(), blob).ok());
  EXPECT_EQ(a.weight().data(), b.weight().data());
  EXPECT_EQ(a.bias().data(), b.bias().data());
}

TEST(Serialize, ShapeMismatchRejected) {
  Rng rng(21);
  Linear a(4, 3, rng);
  Linear wrong(3, 4, rng);
  Bytes blob = save_params(a.params());
  EXPECT_FALSE(load_params(wrong.params(), blob).ok());
}

TEST(Serialize, LstmModelRoundTrip) {
  LstmPredictor a(LstmConfig{4, 8, 1});
  LstmPredictor b(LstmConfig{4, 8, 2});
  auto samples = toy_sequences(8);
  EXPECT_NE(a.prediction_errors(samples), b.prediction_errors(samples));
  Bytes blob = save_params(a.params());
  ASSERT_TRUE(load_params(b.params(), blob).ok());
  EXPECT_EQ(a.prediction_errors(samples), b.prediction_errors(samples));
}

}  // namespace
}  // namespace xsec::dl
