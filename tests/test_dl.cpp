// Deep-learning substrate tests: tensor ops, layer gradients (numerical
// checks), optimizers, autoencoder + LSTM end-to-end on toy problems,
// metrics, serialization, fused-kernel bit-identity, and the
// zero-allocation guarantee of the warmed inference paths.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>

#include "detect/ensemble.hpp"
#include "detect/scorer.hpp"
#include "dl/autoencoder.hpp"
#include "dl/layers.hpp"
#include "dl/lstm.hpp"
#include "dl/metrics.hpp"
#include "dl/optim.hpp"
#include "dl/serialize.hpp"
#include "dl/tensor.hpp"

// --- Heap-allocation hook ---------------------------------------------
//
// Counts every operator-new in this binary so the allocation tests can
// assert that a warmed inference path performs zero heap allocations.
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

// GCC pairs our malloc-backed operator new with the default delete at
// some call sites and warns; the pairing here is in fact consistent.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  ++g_heap_allocs;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_heap_allocs;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

namespace xsec::dl {
namespace {

// --- Matrix ----------------------------------------------------------

TEST(Matrix, MatmulKnownValues) {
  Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  Matrix b = Matrix::from_rows({{5, 6}, {7, 8}});
  Matrix c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50);
}

TEST(Matrix, TransposedVariantsAgree) {
  Rng rng(1);
  Matrix a(3, 4);
  Matrix b(4, 5);
  a.xavier_init(rng, 3, 4);
  b.xavier_init(rng, 4, 5);
  // matmul_bt(a, b^T stored as (5x4)) == matmul(a, b)
  Matrix bt = b.transposed();
  Matrix via_bt = matmul_bt(a, bt);
  Matrix direct = matmul(a, b);
  for (std::size_t i = 0; i < direct.size(); ++i)
    EXPECT_NEAR(via_bt.data()[i], direct.data()[i], 1e-5);
  // matmul_at(a^T stored as a (3x4), c) == matmul(a^T, c)
  Matrix c(3, 2);
  c.xavier_init(rng, 3, 2);
  Matrix via_at = matmul_at(a, c);
  Matrix direct_at = matmul(a.transposed(), c);
  for (std::size_t i = 0; i < direct_at.size(); ++i)
    EXPECT_NEAR(via_at.data()[i], direct_at.data()[i], 1e-5);
}

TEST(Matrix, ElementwiseOps) {
  Matrix a = Matrix::from_rows({{1, 2}});
  Matrix b = Matrix::from_rows({{3, 4}});
  EXPECT_FLOAT_EQ(add(a, b).at(0, 1), 6);
  EXPECT_FLOAT_EQ(sub(a, b).at(0, 0), -2);
  EXPECT_FLOAT_EQ(hadamard(a, b).at(0, 1), 8);
  Matrix row = Matrix::from_rows({{10, 20}});
  EXPECT_FLOAT_EQ(add_row_vector(a, row).at(0, 1), 22);
  Matrix two = Matrix::from_rows({{1, 2}, {3, 4}});
  Matrix sums = sum_rows(two);
  EXPECT_FLOAT_EQ(sums.at(0, 0), 4);
  EXPECT_FLOAT_EQ(sums.at(0, 1), 6);
}

// --- Numerical gradient checking --------------------------------------

/// Checks layer backward against central finite differences of a scalar
/// loss L = sum(forward(x) * weights_const).
void check_layer_gradients(Layer& layer, Matrix x, float tolerance = 2e-2f) {
  Matrix out = layer.forward(x);
  // L = sum of outputs; dL/dout = 1.
  Matrix grad_out(out.rows(), out.cols(), 1.0f);
  layer.zero_grad();
  Matrix grad_in = layer.backward(grad_out);

  const float eps = 1e-3f;
  auto loss_of = [&layer](const Matrix& input) {
    Matrix output = layer.forward(input);
    double total = 0;
    for (float v : output.data()) total += v;
    return total;
  };
  // Check input gradient.
  for (std::size_t i = 0; i < x.size(); i += std::max<std::size_t>(
                                            1, x.size() / 7)) {
    Matrix xp = x;
    xp.data()[i] += eps;
    Matrix xm = x;
    xm.data()[i] -= eps;
    double numeric = (loss_of(xp) - loss_of(xm)) / (2 * eps);
    EXPECT_NEAR(grad_in.data()[i], numeric, tolerance)
        << "input grad mismatch at " << i;
  }
  // Check parameter gradients.
  for (Param p : layer.params()) {
    for (std::size_t i = 0; i < p.value->size();
         i += std::max<std::size_t>(1, p.value->size() / 5)) {
      float saved = p.value->data()[i];
      p.value->data()[i] = saved + eps;
      double lp = loss_of(x);
      p.value->data()[i] = saved - eps;
      double lm = loss_of(x);
      p.value->data()[i] = saved;
      double numeric = (lp - lm) / (2 * eps);
      EXPECT_NEAR(p.grad->data()[i], numeric, tolerance)
          << "param grad mismatch at " << i;
    }
  }
}

TEST(Gradients, Linear) {
  Rng rng(3);
  Linear layer(4, 3, rng);
  Matrix x(2, 4);
  x.xavier_init(rng, 4, 3);
  check_layer_gradients(layer, x);
}

TEST(Gradients, Relu) {
  Rng rng(4);
  Relu layer;
  Matrix x(2, 5);
  x.xavier_init(rng, 5, 5);
  for (float& v : x.data()) v += (v >= 0 ? 0.1f : -0.1f);  // avoid kink
  check_layer_gradients(layer, x);
}

TEST(Gradients, SigmoidAndTanh) {
  Rng rng(5);
  Matrix x(2, 4);
  x.xavier_init(rng, 4, 4);
  Sigmoid sigmoid;
  check_layer_gradients(sigmoid, x);
  Tanh tanh_layer;
  check_layer_gradients(tanh_layer, x);
}

TEST(Gradients, SequentialStack) {
  Rng rng(6);
  Sequential net;
  net.add(std::make_unique<Linear>(4, 6, rng));
  net.add(std::make_unique<Relu>());
  net.add(std::make_unique<Linear>(6, 2, rng));
  net.add(std::make_unique<Sigmoid>());
  Matrix x(3, 4);
  x.xavier_init(rng, 4, 4);
  check_layer_gradients(net, x);
}

// --- Optimizers ---------------------------------------------------------

TEST(Optim, SgdAndAdamMinimizeQuadratic) {
  // minimize f(w) = sum (w - 3)^2 via explicit gradient.
  for (int use_adam = 0; use_adam <= 1; ++use_adam) {
    Matrix w(1, 4, 0.0f);
    Matrix g(1, 4);
    std::vector<Param> params = {{&w, &g}};
    std::unique_ptr<Optimizer> opt;
    if (use_adam)
      opt = std::make_unique<Adam>(params, 0.1f);
    else
      opt = std::make_unique<Sgd>(params, 0.05f, 0.9f);
    for (int step = 0; step < 300; ++step) {
      for (std::size_t i = 0; i < w.size(); ++i)
        g.data()[i] = 2 * (w.data()[i] - 3.0f);
      opt->step();
    }
    for (float v : w.data()) EXPECT_NEAR(v, 3.0f, 0.05f);
  }
}

TEST(Optim, ClipGradNorm) {
  Matrix w(1, 2);
  Matrix g = Matrix::from_rows({{3.0f, 4.0f}});  // norm 5
  std::vector<Param> params = {{&w, &g}};
  clip_grad_norm(params, 1.0f);
  double norm = std::sqrt(g.at(0, 0) * g.at(0, 0) + g.at(0, 1) * g.at(0, 1));
  EXPECT_NEAR(norm, 1.0, 1e-5);
  // Below the cap: untouched.
  Matrix g2 = Matrix::from_rows({{0.3f, 0.4f}});
  std::vector<Param> params2 = {{&w, &g2}};
  clip_grad_norm(params2, 1.0f);
  EXPECT_FLOAT_EQ(g2.at(0, 0), 0.3f);
}

// --- Autoencoder ---------------------------------------------------------

Matrix toy_benign_data(Rng& rng, std::size_t n) {
  // Two one-hot groups with a fixed correlation: class k in group 1 pairs
  // with class k in group 2.
  Matrix data(n, 8, 0.0f);
  for (std::size_t r = 0; r < n; ++r) {
    std::size_t k = rng.uniform_u64(0, 3);
    data.at(r, k) = 1.0f;
    data.at(r, 4 + k) = 1.0f;
  }
  return data;
}

TEST(Autoencoder, LearnsToyDistributionAndFlagsOutliers) {
  Rng rng(7);
  Matrix benign = toy_benign_data(rng, 256);
  Autoencoder model(AutoencoderConfig{8, {16, 4}, 99});
  TrainConfig train;
  train.epochs = 120;
  train.learning_rate = 5e-3f;
  double final_loss = model.fit(benign, train);
  EXPECT_LT(final_loss, 0.05);

  auto benign_errors = model.reconstruction_errors(benign);
  double benign_mean = 0;
  for (double e : benign_errors) benign_mean += e;
  benign_mean /= static_cast<double>(benign_errors.size());

  // An outlier breaking the correlation must reconstruct worse.
  Matrix outlier(1, 8, 0.0f);
  outlier.at(0, 0) = 1.0f;
  outlier.at(0, 4 + 2) = 1.0f;  // mismatched pair
  double outlier_error = model.reconstruction_errors(outlier)[0];
  EXPECT_GT(outlier_error, benign_mean * 3);
}

TEST(Autoencoder, EpochCallbackInvokedAndLossDecreases) {
  Rng rng(8);
  Matrix data = toy_benign_data(rng, 64);
  Autoencoder model(AutoencoderConfig{8, {8, 2}, 1});
  std::vector<double> losses;
  TrainConfig train;
  train.epochs = 30;
  train.on_epoch = [&](int, double loss) { losses.push_back(loss); };
  model.fit(data, train);
  ASSERT_EQ(losses.size(), 30u);
  EXPECT_LT(losses.back(), losses.front());
}

TEST(Autoencoder, DeterministicGivenSeed) {
  Rng rng(9);
  Matrix data = toy_benign_data(rng, 64);
  auto run = [&data] {
    Autoencoder model(AutoencoderConfig{8, {8, 2}, 55});
    TrainConfig train;
    train.epochs = 10;
    model.fit(data, train);
    return model.reconstruction_errors(data);
  };
  EXPECT_EQ(run(), run());
}

// --- LSTM ------------------------------------------------------------

std::vector<SequenceSample> toy_sequences(std::size_t n) {
  // Deterministic cyclic pattern over 4 one-hot symbols: 0 1 2 3 0 1 ...
  std::vector<SequenceSample> samples;
  for (std::size_t start = 0; start < n; ++start) {
    SequenceSample s;
    for (std::size_t t = 0; t < 3; ++t) {
      std::vector<float> x(4, 0.0f);
      x[(start + t) % 4] = 1.0f;
      s.window.push_back(x);
    }
    s.target.assign(4, 0.0f);
    s.target[(start + 3) % 4] = 1.0f;
    samples.push_back(std::move(s));
  }
  return samples;
}

TEST(Lstm, LearnsCyclicSequence) {
  auto samples = toy_sequences(64);
  LstmPredictor model(LstmConfig{4, 16, 11});
  LstmTrainConfig train;
  train.epochs = 150;
  train.learning_rate = 5e-3f;
  double loss = model.fit(samples, train);
  EXPECT_LT(loss, 0.03);

  // Prediction puts most mass on the correct next symbol.
  auto predicted = model.predict(samples[0].window);
  std::size_t argmax = 0;
  for (std::size_t i = 1; i < predicted.size(); ++i)
    if (predicted[i] > predicted[argmax]) argmax = i;
  EXPECT_EQ(argmax, 3u);  // window 0,1,2 -> next is 3
}

TEST(Lstm, AnomalousNextSymbolScoresHigher) {
  auto samples = toy_sequences(64);
  LstmPredictor model(LstmConfig{4, 16, 12});
  LstmTrainConfig train;
  train.epochs = 150;
  train.learning_rate = 5e-3f;
  model.fit(samples, train);

  double benign_error = model.prediction_error(samples[0]);
  SequenceSample anomalous = samples[0];
  anomalous.target.assign(4, 0.0f);
  anomalous.target[1] = 1.0f;  // wrong symbol follows
  EXPECT_GT(model.prediction_error(anomalous), benign_error * 4);
}

TEST(Lstm, MaxStepErrorsCatchMidWindowAnomaly) {
  auto samples = toy_sequences(64);
  LstmPredictor model(LstmConfig{4, 16, 13});
  LstmTrainConfig train;
  train.epochs = 150;
  train.learning_rate = 5e-3f;
  model.fit(samples, train);

  SequenceSample corrupted = samples[0];
  corrupted.window[2].assign(4, 0.0f);
  corrupted.window[2][0] = 1.0f;  // out-of-order symbol mid-window
  double clean = model.max_step_errors({samples[0]})[0];
  double broken = model.max_step_errors({corrupted})[0];
  EXPECT_GT(broken, clean * 3);
}

TEST(Lstm, BatchedAndSingleErrorsAgree) {
  auto samples = toy_sequences(10);
  LstmPredictor model(LstmConfig{4, 8, 14});
  LstmTrainConfig train;
  train.epochs = 5;
  model.fit(samples, train);
  auto batched = model.prediction_errors(samples);
  for (std::size_t i = 0; i < samples.size(); ++i)
    EXPECT_NEAR(batched[i], model.prediction_error(samples[i]), 1e-9);
}

// --- Metrics ----------------------------------------------------------

TEST(Metrics, ConfusionMath) {
  Confusion c;
  c.tp = 8;
  c.fp = 2;
  c.tn = 85;
  c.fn = 5;
  EXPECT_NEAR(c.accuracy(), 0.93, 1e-9);
  EXPECT_NEAR(c.precision(), 0.8, 1e-9);
  EXPECT_NEAR(c.recall(), 8.0 / 13.0, 1e-9);
  double p = c.precision(), r = c.recall();
  EXPECT_NEAR(c.f1(), 2 * p * r / (p + r), 1e-9);
}

TEST(Metrics, UndefinedCellsAreNaN) {
  Confusion c;
  c.tn = 10;
  EXPECT_TRUE(std::isnan(c.precision()));
  EXPECT_TRUE(std::isnan(c.recall()));
  EXPECT_TRUE(std::isnan(c.f1()));
  EXPECT_NEAR(c.accuracy(), 1.0, 1e-9);
}

TEST(Metrics, EvaluateThresholdStrictlyGreater) {
  Confusion c = evaluate_threshold({0.5, 1.0, 2.0}, {false, false, true}, 1.0);
  EXPECT_EQ(c.tp, 1u);
  EXPECT_EQ(c.fp, 0u);
  EXPECT_EQ(c.tn, 2u);  // score == threshold is benign
}

TEST(Metrics, KfoldPartitionsEverything) {
  auto folds = kfold_indices(10, 3);
  ASSERT_EQ(folds.size(), 3u);
  std::vector<int> seen(10, 0);
  for (const auto& [train, test] : folds) {
    EXPECT_EQ(train.size() + test.size(), 10u);
    for (std::size_t i : test) ++seen[i];
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

// --- Serialization ------------------------------------------------------

TEST(Serialize, RoundTripRestoresWeights) {
  Rng rng(20);
  Linear a(4, 3, rng);
  Linear b(4, 3, rng);
  Bytes blob = save_params(a.params());
  ASSERT_TRUE(load_params(b.params(), blob).ok());
  EXPECT_EQ(a.weight().data(), b.weight().data());
  EXPECT_EQ(a.bias().data(), b.bias().data());
}

TEST(Serialize, ShapeMismatchRejected) {
  Rng rng(21);
  Linear a(4, 3, rng);
  Linear wrong(3, 4, rng);
  Bytes blob = save_params(a.params());
  EXPECT_FALSE(load_params(wrong.params(), blob).ok());
}

TEST(Serialize, LstmModelRoundTrip) {
  LstmPredictor a(LstmConfig{4, 8, 1});
  LstmPredictor b(LstmConfig{4, 8, 2});
  auto samples = toy_sequences(8);
  EXPECT_NE(a.prediction_errors(samples), b.prediction_errors(samples));
  Bytes blob = save_params(a.params());
  ASSERT_TRUE(load_params(b.params(), blob).ok());
  EXPECT_EQ(a.prediction_errors(samples), b.prediction_errors(samples));
}

// --- Fused/into kernel bit-identity -----------------------------------
//
// The inference path must reproduce the reference math bit-for-bit (same
// FP operation order within every dot product), so Table 2 numbers do not
// move when the fast kernels are used. These are exact-equality checks.

/// Textbook per-element matmul, accumulating over k in ascending order —
/// the FP order both production kernels must preserve.
Matrix naive_matmul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < b.cols(); ++c) {
      float acc = 0.0f;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += a.at(r, k) * b.at(k, c);
      out.at(r, c) = acc;
    }
  return out;
}

TEST(FusedKernels, MatmulVariantsBitIdenticalAcrossShapesAndDensities) {
  Rng rng(71);
  // Reused across iterations so the capacity-retaining resize path (shrink
  // then regrow) is exercised, not just fresh buffers.
  Matrix sparse_out, dense_out, dispatched;
  for (int iter = 0; iter < 40; ++iter) {
    std::size_t m = rng.uniform_u64(1, 17);
    std::size_t k = rng.uniform_u64(1, 33);
    std::size_t n = rng.uniform_u64(1, 41);  // crosses the 8-wide tile edge
    double density = rng.uniform();
    Matrix a(m, k);
    Matrix b(k, n);
    for (float& v : a.data())
      v = rng.chance(density) ? static_cast<float>(rng.uniform(-2, 2)) : 0.0f;
    for (float& v : b.data()) v = static_cast<float>(rng.uniform(-2, 2));

    Matrix ref = naive_matmul(a, b);
    matmul_sparse_into(a, b, sparse_out);
    matmul_dense_into(a, b, dense_out);
    matmul_into(a, b, dispatched);
    Matrix allocating = matmul(a, b);
    ASSERT_EQ(ref.data(), sparse_out.data()) << "iter " << iter;
    ASSERT_EQ(ref.data(), dense_out.data()) << "iter " << iter;
    ASSERT_EQ(ref.data(), dispatched.data()) << "iter " << iter;
    ASSERT_EQ(ref.data(), allocating.data()) << "iter " << iter;
  }
}

TEST(FusedKernels, IntoAndInplaceElementwiseMatchAllocatingOps) {
  Rng rng(72);
  Matrix out;
  for (int iter = 0; iter < 20; ++iter) {
    std::size_t m = rng.uniform_u64(1, 9);
    std::size_t n = rng.uniform_u64(1, 21);
    Matrix a(m, n);
    Matrix b(m, n);
    Matrix row(1, n);
    for (float& v : a.data()) v = static_cast<float>(rng.uniform(-3, 3));
    for (float& v : b.data()) v = static_cast<float>(rng.uniform(-3, 3));
    for (float& v : row.data()) v = static_cast<float>(rng.uniform(-3, 3));

    add_into(a, b, out);
    ASSERT_EQ(add(a, b).data(), out.data());
    sub_into(a, b, out);
    ASSERT_EQ(sub(a, b).data(), out.data());
    hadamard_into(a, b, out);
    ASSERT_EQ(hadamard(a, b).data(), out.data());
    add_row_vector_into(a, row, out);
    ASSERT_EQ(add_row_vector(a, row).data(), out.data());
    sum_rows_into(a, out);
    ASSERT_EQ(sum_rows(a).data(), out.data());

    Matrix acc = a;
    add_inplace(acc, b);
    ASSERT_EQ(add(a, b).data(), acc.data());
    acc = a;
    add_row_vector_inplace(acc, row);
    ASSERT_EQ(add_row_vector(a, row).data(), acc.data());
  }
}

TEST(FusedKernels, TanhScalarBitIdenticalToStdTanh) {
  // The vendored fdlibm tanh must match the libm one bit-for-bit —
  // otherwise every LSTM score drifts from the reference implementation.
  // scripts/verify_tanhf.cpp proves this over all 2^32 bit patterns; here
  // we pin the branch boundaries plus a dense random sample.
  auto check = [](float x) {
    float got = tanh_scalar(x);
    float want = std::tanh(x);
    std::uint32_t gb, wb;
    std::memcpy(&gb, &got, sizeof(gb));
    std::memcpy(&wb, &want, sizeof(wb));
    if (std::isnan(got) && std::isnan(want)) return;
    ASSERT_EQ(gb, wb) << "x = " << x;
  };
  // Branch thresholds of the fdlibm routine (and one ulp either side).
  const std::uint32_t edges[] = {
      0x00000000u, 0x00000001u, 0x24000000u, 0x33000000u, 0x3eb17218u,
      0x3f800000u, 0x3F851592u, 0x41100000u, 0x4195b844u, 0x41b00000u,
      0x42b17218u, 0x7f7fffffu, 0x7f800000u, 0x7fc00000u};
  for (std::uint32_t e : edges)
    for (std::int32_t d : {-1, 0, 1})
      for (std::uint32_t sign : {0u, 0x80000000u}) {
        std::uint32_t u = (e + static_cast<std::uint32_t>(d)) | sign;
        float x;
        std::memcpy(&x, &u, sizeof(x));
        check(x);
      }
  Rng rng(74);
  for (int i = 0; i < 200000; ++i) {
    // Log-uniform magnitude covers denormals through saturation.
    float mag = static_cast<float>(std::pow(2.0, rng.uniform(-140, 10)));
    check(rng.chance(0.5) ? mag : -mag);
    // Plus the gate-realistic range the LSTM actually feeds it.
    check(static_cast<float>(rng.uniform(-30, 30)));
  }
}

TEST(FusedKernels, TanhManyMatchesTanhScalarIncludingTails) {
  // The vectorized batch tanh must agree with the scalar routine lane for
  // lane, across SIMD-width boundaries, for odd tails, and in place.
  Rng rng(75);
  std::vector<float> xs(67), out(67), inplace(67);
  for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{8},
                        std::size_t{9}, std::size_t{16}, std::size_t{64},
                        std::size_t{67}}) {
    for (int iter = 0; iter < 50; ++iter) {
      for (std::size_t i = 0; i < n; ++i) {
        double mag = std::pow(2.0, rng.uniform(-30, 6));
        xs[i] = static_cast<float>(rng.chance(0.5) ? mag : -mag);
      }
      if (iter == 0 && n >= 8) {
        // Poison one lane with non-finite input: the whole vector must
        // fall back to the scalar path without disturbing neighbours.
        xs[3] = std::numeric_limits<float>::infinity();
        xs[5] = -std::numeric_limits<float>::quiet_NaN();
      }
      tanh_many(xs.data(), out.data(), n);
      std::copy(xs.begin(), xs.begin() + n, inplace.begin());
      tanh_many(inplace.data(), inplace.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        float want = tanh_scalar(xs[i]);
        std::uint32_t gb, wb, ib;
        std::memcpy(&gb, &out[i], sizeof(gb));
        std::memcpy(&wb, &want, sizeof(wb));
        std::memcpy(&ib, &inplace[i], sizeof(ib));
        if (std::isnan(out[i]) && std::isnan(want)) continue;
        ASSERT_EQ(gb, wb) << "n=" << n << " i=" << i << " x=" << xs[i];
        ASSERT_EQ(ib, wb) << "in-place n=" << n << " i=" << i;
      }
    }
  }
}

TEST(FusedKernels, SigmoidManyMatchesSigmoidScalarIncludingTails) {
  // Same contract as the batch tanh: the vectorized sigmoid (a port of
  // the libm FMA expf fast path, see sigmoidf.cpp) must agree with
  // sigmoid_scalar lane for lane. scripts/verify_tanhf.cpp proves the
  // identity over all 2^32 bit patterns; this pins SIMD-width boundaries,
  // odd tails, in-place use, the |x| >= 88 over/underflow fallback, and
  // non-finite lanes.
  Rng rng(76);
  std::vector<float> xs(67), out(67), inplace(67);
  for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{8},
                        std::size_t{9}, std::size_t{16}, std::size_t{64},
                        std::size_t{67}}) {
    for (int iter = 0; iter < 50; ++iter) {
      for (std::size_t i = 0; i < n; ++i) {
        double mag = std::pow(2.0, rng.uniform(-30, 8));
        xs[i] = static_cast<float>(rng.chance(0.5) ? mag : -mag);
      }
      if (iter == 0 && n >= 8) {
        // Poison lanes: non-finite and beyond the expf overflow cutoff.
        // The whole vector must take the scalar route untouched.
        xs[3] = std::numeric_limits<float>::infinity();
        xs[5] = -std::numeric_limits<float>::quiet_NaN();
        xs[6] = -150.0f;
      }
      if (iter == 1 && n >= 8) xs[2] = 200.0f;
      sigmoid_many(xs.data(), out.data(), n);
      std::copy(xs.begin(), xs.begin() + n, inplace.begin());
      sigmoid_many(inplace.data(), inplace.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        float want = sigmoid_scalar(xs[i]);
        std::uint32_t gb, wb, ib;
        std::memcpy(&gb, &out[i], sizeof(gb));
        std::memcpy(&wb, &want, sizeof(wb));
        std::memcpy(&ib, &inplace[i], sizeof(ib));
        if (std::isnan(out[i]) && std::isnan(want)) continue;
        ASSERT_EQ(gb, wb) << "n=" << n << " i=" << i << " x=" << xs[i];
        ASSERT_EQ(ib, wb) << "in-place n=" << n << " i=" << i;
      }
    }
  }
}

TEST(FusedKernels, SequentialInferBitIdenticalToForward) {
  Rng rng(73);
  Sequential net;
  net.add(std::make_unique<Linear>(9, 7, rng));
  net.add(std::make_unique<Relu>());
  net.add(std::make_unique<Linear>(7, 4, rng));
  net.add(std::make_unique<Tanh>());
  net.add(std::make_unique<Linear>(4, 9, rng));
  net.add(std::make_unique<Sigmoid>());
  for (std::size_t batch : {6u, 1u, 11u}) {
    Matrix x(batch, 9);
    for (float& v : x.data()) v = static_cast<float>(rng.uniform(-2, 2));
    Matrix fwd = net.forward(x);
    const Matrix& inf = net.infer(x);
    ASSERT_EQ(fwd.data(), inf.data()) << "batch " << batch;
  }
}

TEST(FusedKernels, LstmFusedPathMatchesGateByGateReference) {
  for (bool sigmoid_output : {false, true}) {
    const std::size_t d = 3;
    const std::size_t hidden = 5;
    const std::size_t batch = 4;
    const std::size_t n_steps = 6;
    LstmPredictor model(LstmConfig{d, hidden, 77, sigmoid_output});
    // params() exposes {Wx, Wh, b, Wo, bo} — enough to rebuild the cell
    // gate by gate with the reference (allocating) ops.
    auto plist = model.params();
    const Matrix& wx = *plist[0].value;
    const Matrix& wh = *plist[1].value;
    const Matrix& b = *plist[2].value;
    const Matrix& wo = *plist[3].value;
    const Matrix& bo = *plist[4].value;

    Rng rng(74);
    std::vector<Matrix> steps(n_steps, Matrix(batch, d));
    Matrix targets(batch, d);
    for (auto& step : steps)
      for (float& v : step.data()) v = static_cast<float>(rng.uniform(-1, 1));
    for (float& v : targets.data()) v = static_cast<float>(rng.uniform(-1, 1));

    auto slice_gate = [&](const Matrix& z, std::size_t gate) {
      Matrix out(z.rows(), hidden);
      for (std::size_t r = 0; r < z.rows(); ++r)
        for (std::size_t c = 0; c < hidden; ++c)
          out.at(r, c) = z.at(r, gate * hidden + c);
      return out;
    };
    auto project = [&](const Matrix& h) {
      Matrix y = add_row_vector(matmul(h, wo), bo);
      if (sigmoid_output) y = sigmoid_mat(y);
      return y;
    };
    auto row_mse = [&](const Matrix& y, const Matrix& target,
                       std::size_t r) {
      double acc = 0.0;
      for (std::size_t c = 0; c < d; ++c) {
        double diff = static_cast<double>(y.at(r, c)) - target.at(r, c);
        acc += diff * diff;
      }
      return acc / static_cast<double>(d);
    };

    // Reference forward: materialized per-gate matrices, allocating ops.
    Matrix h(batch, hidden);
    Matrix c(batch, hidden);
    std::vector<double> ref_max(batch, 0.0);
    std::vector<double> ref_final(batch, 0.0);
    for (std::size_t t = 0; t < n_steps; ++t) {
      Matrix z =
          add_row_vector(add(matmul(steps[t], wx), matmul(h, wh)), b);
      Matrix i = sigmoid_mat(slice_gate(z, 0));
      Matrix f = sigmoid_mat(slice_gate(z, 1));
      Matrix g = tanh_mat(slice_gate(z, 2));
      Matrix o = sigmoid_mat(slice_gate(z, 3));
      c = add(hadamard(f, c), hadamard(i, g));
      h = hadamard(o, tanh_mat(c));
      Matrix y = project(h);
      const Matrix& target_t = (t + 1 < n_steps) ? steps[t + 1] : targets;
      for (std::size_t r = 0; r < batch; ++r) {
        ref_max[r] = std::max(ref_max[r], row_mse(y, target_t, r));
        if (t + 1 == n_steps) ref_final[r] = row_mse(y, targets, r);
      }
    }

    LstmPredictor::Workspace ws;
    std::vector<double> fused_max(batch);
    std::vector<double> fused_final(batch);
    model.window_errors(steps, targets, ws, /*max_step=*/true,
                        fused_max.data());
    model.window_errors(steps, targets, ws, /*max_step=*/false,
                        fused_final.data());
    for (std::size_t r = 0; r < batch; ++r) {
      ASSERT_EQ(ref_max[r], fused_max[r]) << "row " << r;
      ASSERT_EQ(ref_final[r], fused_final[r]) << "row " << r;
    }
  }
}

// --- Zero-allocation guarantee ----------------------------------------

TEST(Allocation, WarmedDetectorScoringAllocatesNothing) {
  const std::size_t window = 5;
  const std::size_t dim = 12;
  detect::DetectorConfig config;
  detect::AutoencoderDetector ae(window, dim, config, {16, 8});
  detect::LstmDetector lstm(window, dim, config, 8);
  std::vector<detect::FeatureGroup> groups;
  groups.push_back({"low", {0, 1, 2, 3, 4, 5}});
  groups.push_back({"high", {6, 7, 8, 9, 10, 11}});
  detect::EnsembleDetector ensemble(window, dim, groups);

  Rng rng(75);
  const std::size_t max_windows = 16;
  std::vector<float> rows((max_windows + window) * dim);
  for (float& v : rows) v = static_cast<float>(rng.uniform(0, 1));
  std::vector<double> scores(max_windows);

  // Warm every workspace at the largest batch it will see (buffers only
  // grow, so smaller batches afterwards cannot allocate).
  ae.score_windows(rows.data(), dim, window, max_windows, scores.data());
  lstm.score_windows(rows.data(), dim, window + 1, max_windows,
                     scores.data());
  ensemble.score_windows(rows.data(), dim, window, max_windows,
                         scores.data());

  const std::uint64_t before = g_heap_allocs.load();
  ae.score_window(rows.data(), window);
  ae.score_windows(rows.data(), dim, window, 3, scores.data());
  ae.score_windows(rows.data(), dim, window, max_windows, scores.data());
  lstm.score_window(rows.data(), window + 1);
  lstm.score_windows(rows.data(), dim, window + 1, max_windows,
                     scores.data());
  ensemble.score_window(rows.data(), window);
  ensemble.score_windows(rows.data(), dim, window, max_windows,
                         scores.data());
  const std::uint64_t after = g_heap_allocs.load();
  EXPECT_EQ(after - before, 0u);
}

}  // namespace
}  // namespace xsec::dl
