// Observability subsystem tests: metrics registry semantics (counter /
// gauge / log-bucketed histogram), sim-time tracing spans (nesting,
// parent links, ring eviction), exporter round-trips, and the end-to-end
// guarantee the subsystem exists for — a fixed-seed pipeline run emits
// every stage's spans and metrics, and its exports are byte-stable.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/pipeline.hpp"
#include "core/smo.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/traffic.hpp"

namespace xsec {
namespace {

// --- MetricsRegistry --------------------------------------------------------

TEST(Metrics, CounterAndGaugeBasics) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("a.count");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  // Get-or-create returns the same instrument for the same name.
  EXPECT_EQ(&registry.counter("a.count"), &c);
  EXPECT_EQ(registry.counter("a.count").value(), 5u);

  obs::Gauge& g = registry.gauge("a.level");
  g.set(2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);

  EXPECT_EQ(registry.find_counter("missing"), nullptr);
  EXPECT_EQ(registry.find_gauge("missing"), nullptr);
  EXPECT_EQ(registry.find_histogram("missing"), nullptr);
  ASSERT_NE(registry.find_counter("a.count"), nullptr);
  EXPECT_EQ(registry.find_counter("a.count")->value(), 5u);
  EXPECT_EQ(registry.size(), 2u);

  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(registry.size(), 2u) << "reset clears values, not instruments";
}

TEST(Metrics, HistogramLogBucketing) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("lat");
  // Powers-of-two buckets: 0 | 1 | 2-3 | 4-7 | 8-15 | ...
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 3u);
  EXPECT_EQ(obs::Histogram::bucket_of(7), 3u);
  EXPECT_EQ(obs::Histogram::bucket_of(8), 4u);
  EXPECT_EQ(obs::Histogram::bucket_upper_edge(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_upper_edge(2), 3u);
  EXPECT_EQ(obs::Histogram::bucket_upper_edge(3), 7u);

  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 1000ull}) h.observe(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1006u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(obs::Histogram::bucket_of(1000)), 1u);
  // Quantiles resolve to the upper edge of the rank's bucket.
  EXPECT_EQ(h.quantile_upper(0.5), 3u);   // rank 3 of 5 -> bucket [2,3]
  EXPECT_EQ(h.quantile_upper(0.99), obs::Histogram::bucket_upper_edge(
                                        obs::Histogram::bucket_of(1000)));

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile_upper(0.5), 0u);
}

// --- Tracer -----------------------------------------------------------------

TEST(Trace, SpanNestingAndParentLinks) {
  obs::Observability o;
  SimTime t{0};
  o.set_clock([&t] { return t; });

  std::uint64_t root_id = 0;
  {
    obs::Span root = o.tracer.begin("stage.a", /*trace_id=*/42);
    root_id = root.id();
    t.us += 100;
    {
      // No explicit trace/parent: nests under the innermost open span.
      obs::Span child = o.tracer.begin("stage.b");
      t.us += 50;
    }
    t.us += 25;
  }
  ASSERT_EQ(o.tracer.finished().size(), 2u);
  // Children finish before parents (RAII), so stage.b is first.
  const obs::SpanRecord& child = o.tracer.finished()[0];
  const obs::SpanRecord& root = o.tracer.finished()[1];
  EXPECT_EQ(child.name, "stage.b");
  EXPECT_EQ(child.trace_id, 42u);
  EXPECT_EQ(child.parent_id, root_id);
  EXPECT_EQ(child.duration_us(), 50);
  EXPECT_EQ(root.name, "stage.a");
  EXPECT_EQ(root.parent_id, 0u);
  EXPECT_EQ(root.duration_us(), 175);
  EXPECT_EQ(o.tracer.root_of(42), root_id);

  // Every completed span feeds a per-name latency histogram.
  const obs::Histogram* h = o.metrics.find_histogram("span.stage.b");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);
  EXPECT_EQ(h->sum(), 50u);
}

TEST(Trace, ExplicitRecordAndCrossEventParenting) {
  obs::Observability o;
  SimTime t{5000};
  o.set_clock([&t] { return t; });

  // An explicitly-timed span (the cross-event pattern: encode happened in
  // a past event, its timestamps ride the wire).
  std::uint32_t encode_id =
      o.tracer.record("agent.encode", 7, 0, SimTime{1000}, SimTime{2000});
  EXPECT_NE(encode_id, 0u);
  EXPECT_EQ(o.tracer.root_of(7), encode_id);
  std::uint32_t transit_id = o.tracer.record("e2.transit", 7, encode_id,
                                             SimTime{2000}, SimTime{5000});
  {
    obs::Span deliver = o.tracer.begin("ric.deliver", 7, transit_id);
  }
  ASSERT_EQ(o.tracer.finished().size(), 3u);
  EXPECT_EQ(o.tracer.finished()[1].parent_id, encode_id);
  EXPECT_EQ(o.tracer.finished()[1].duration_us(), 3000);
  EXPECT_EQ(o.tracer.finished()[2].name, "ric.deliver");
  EXPECT_EQ(o.tracer.finished()[2].parent_id, transit_id);
}

TEST(Trace, RingEvictionKeepsHistograms) {
  obs::Observability o;
  o.tracer.set_capacity(8);
  for (int i = 0; i < 100; ++i)
    o.tracer.record("tick", 0, 0, SimTime{0}, SimTime{10});
  EXPECT_EQ(o.tracer.finished().size(), 8u);
  EXPECT_EQ(o.tracer.spans_started(), 100u);
  EXPECT_EQ(o.tracer.spans_finished(), 100u);
  EXPECT_EQ(o.tracer.spans_evicted(), 92u);
  // The latency distribution survives eviction.
  ASSERT_NE(o.metrics.find_histogram("span.tick"), nullptr);
  EXPECT_EQ(o.metrics.find_histogram("span.tick")->count(), 100u);
}

// --- Exporters --------------------------------------------------------------

TEST(Export, PrometheusNameSanitization) {
  EXPECT_EQ(obs::prometheus_name("agent.node1001.records"),
            "xsec_agent_node1001_records");
}

TEST(Export, PrometheusAndJsonRenderAllInstruments) {
  obs::MetricsRegistry registry;
  registry.counter("b.count").inc(3);
  registry.gauge("a.level").set(1.5);
  registry.histogram("c.lat").observe(5);
  registry.histogram("c.lat").observe(100);

  std::string prom = obs::render_prometheus(registry);
  EXPECT_NE(prom.find("# TYPE xsec_b_count counter"), std::string::npos);
  EXPECT_NE(prom.find("xsec_b_count 3"), std::string::npos);
  EXPECT_NE(prom.find("xsec_a_level 1.500000"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE xsec_c_lat histogram"), std::string::npos);
  EXPECT_NE(prom.find("xsec_c_lat_count 2"), std::string::npos);
  EXPECT_NE(prom.find("xsec_c_lat_sum 105"), std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\"} 2"), std::string::npos);

  std::string json = obs::render_json(registry);
  EXPECT_NE(json.find("\"b.count\":3"), std::string::npos);
  EXPECT_NE(json.find("\"a.level\":1.500000"), std::string::npos);
  EXPECT_NE(json.find("\"c.lat\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
}

TEST(Export, IdenticalContentRendersIdenticalBytes) {
  auto build = [] {
    obs::MetricsRegistry registry;
    registry.counter("x").inc(7);
    registry.gauge("y").set(0.25);
    for (std::uint64_t v = 0; v < 20; ++v) registry.histogram("z").observe(v);
    return obs::render_prometheus(registry) + obs::render_json(registry);
  };
  EXPECT_EQ(build(), build());
}

// --- End-to-end: the pipeline under observation -----------------------------

/// Flags every scored window so all five stages (and the LLM path) fire
/// without a training phase.
class AlwaysAnomalousDetector : public detect::AnomalyDetector {
 public:
  std::string name() const override { return "stub-always-anomalous"; }
  void fit(const detect::WindowDataset&) override {}
  std::vector<double> score(const detect::WindowDataset&) override {
    return {};
  }
  std::vector<bool> labels(const detect::WindowDataset&) const override {
    return {};
  }
  double score_window(const float*, std::size_t) override { return 1.0; }
  std::size_t rows_needed(std::size_t window_size) const override {
    return window_size;
  }
};

core::PipelineConfig observed_config() {
  core::PipelineConfig config;
  config.metrics_report_period = SimDuration::from_s(1);
  return config;
}

void drive_pipeline(core::Pipeline& pipeline) {
  pipeline.install_detector(std::make_shared<AlwaysAnomalousDetector>(),
                            detect::FeatureEncoder());
  sim::TrafficConfig traffic;
  traffic.num_sessions = 8;
  traffic.arrival_mean = SimDuration::from_ms(60);
  traffic.seed = 11;
  sim::BenignTrafficGenerator generator(&pipeline.testbed(), traffic);
  generator.schedule_all();
  pipeline.run_for(SimDuration::from_s(2.5));
  pipeline.finalize();
}

TEST(ObsPipeline, EveryStageEmitsSpansAndMetrics) {
  core::Pipeline pipeline(observed_config());
  drive_pipeline(pipeline);

  // All five per-indication stages plus the LLM stage left latency
  // distributions behind.
  for (const char* span : {"span.agent.encode", "span.e2.transit",
                           "span.ric.deliver", "span.mobiwatch.ingest",
                           "span.mobiwatch.score", "span.llm.analyze"}) {
    const obs::Histogram* h = pipeline.metrics().find_histogram(span);
    ASSERT_NE(h, nullptr) << span;
    EXPECT_GT(h->count(), 0u) << span;
  }
  // The E2 transit span includes real transport latency (1 ms link).
  const obs::Histogram* transit =
      pipeline.metrics().find_histogram("span.e2.transit");
  EXPECT_GE(transit->quantile_upper(0.5), 1000u);

  // Spans link up: ric.deliver's parent is the e2.transit record of the
  // same trace, whose parent is the agent.encode root.
  bool verified_chain = false;
  for (const obs::SpanRecord& span : pipeline.tracer().finished()) {
    if (span.name != "mobiwatch.ingest" || span.parent_id == 0) continue;
    std::uint32_t root = pipeline.tracer().root_of(span.trace_id);
    ASSERT_NE(root, 0u);
    verified_chain = true;
    break;
  }
  EXPECT_TRUE(verified_chain) << "no parented mobiwatch.ingest span found";

  // Every layer's counters landed in the one shared registry.
  for (const char* counter :
       {"agent.node1001.records_collected", "agent.node1001.indications_sent",
        "e2.node1001.frames_sent", "ric.indications_received",
        "ric.node1001.indications", "sdl.sets",
        "mobiwatch.records_seen", "mobiwatch.windows_scored",
        "llm.incidents_analyzed", "obs.reports_emitted"}) {
    const obs::Counter* c = pipeline.metrics().find_counter(counter);
    ASSERT_NE(c, nullptr) << counter;
    EXPECT_GT(c->value(), 0u) << counter;
  }

  // The accessor views and the registry agree (one stats mechanism).
  core::PipelineStats stats = pipeline.stats();
  EXPECT_EQ(stats.records_seen,
            pipeline.metrics().find_counter("mobiwatch.records_seen")->value());
  EXPECT_EQ(
      stats.indications_received,
      pipeline.metrics().find_counter("ric.indications_received")->value());
}

TEST(ObsPipeline, MetricsReportXappExportsPeriodically) {
  core::Pipeline pipeline(observed_config());
  drive_pipeline(pipeline);

  ASSERT_NE(pipeline.metrics_report(), nullptr);
  EXPECT_GE(pipeline.metrics_report()->reports_emitted(), 2u);
  std::string prom = pipeline.metrics_report()->latest_prometheus();
  std::string json = pipeline.metrics_report()->latest_json();
  EXPECT_NE(prom.find("xsec_mobiwatch_records_seen"), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  // The same exports are in the SDL for rApps.
  EXPECT_EQ(pipeline.ric().sdl().get_str("obs", "prometheus").value_or(""),
            prom);
  // And the free-function reports render the live registry.
  EXPECT_NE(core::prometheus_report(pipeline).find("xsec_sdl_sets"),
            std::string::npos);
  EXPECT_NE(core::json_report(pipeline).find("\"histograms\""),
            std::string::npos);
}

TEST(ObsPipeline, ExportsAreByteStableAcrossIdenticalSeededRuns) {
  auto run = [] {
    core::Pipeline pipeline(observed_config());
    drive_pipeline(pipeline);
    return core::prometheus_report(pipeline) + "\n---\n" +
           core::json_report(pipeline);
  };
  std::string first = run();
  std::string second = run();
  EXPECT_EQ(first, second);
  EXPECT_GT(first.size(), 1000u);
}

}  // namespace
}  // namespace xsec
