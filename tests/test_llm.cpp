// LLM expert-referencing tests: knowledge base, prompts, evidence
// extraction, personalities (Table 3 calibration), clients, analyzer xApp.
#include <gtest/gtest.h>

#include "common/strings.hpp"
#include "llm/analyzer_xapp.hpp"
#include "llm/client.hpp"
#include "llm/expert.hpp"
#include "llm/knowledge.hpp"
#include "llm/personalities.hpp"
#include "llm/prompt.hpp"

namespace xsec::llm {
namespace {

namespace vocab = mobiflow::vocab;

mobiflow::Record rec(const std::string& proto, const std::string& msg,
                     const std::string& dir, std::uint16_t rnti,
                     std::uint64_t ue, std::int64_t ts) {
  mobiflow::Record r;
  r.protocol = vocab::protocol_or_unknown(proto);
  r.msg = vocab::msg_or_unknown(msg);
  r.direction =
      dir == "DL" ? vocab::Direction::kDl : vocab::Direction::kUl;
  r.rnti = rnti;
  r.ue_id = ue;
  r.timestamp_us = ts;
  return r;
}

// Synthetic traces reproducing each attack's telemetry footprint.

mobiflow::Trace benign_trace() {
  mobiflow::Trace t;
  std::int64_t ts = 0;
  std::uint16_t rnti = 0x10;
  t.add(rec("RRC", "RRCSetupRequest", "UL", rnti, 1, ts += 2000));
  t.add(rec("RRC", "RRCSetup", "DL", rnti, 1, ts += 2000));
  t.add(rec("RRC", "RRCSetupComplete", "UL", rnti, 1, ts += 2000));
  auto reg = rec("NAS", "RegistrationRequest", "UL", rnti, 1, ts += 2000);
  reg.suci = "suci-001-01-1-0000aaaabbbbcccc";
  t.add(reg);
  t.add(rec("NAS", "AuthenticationRequest", "DL", rnti, 1, ts += 2000));
  t.add(rec("NAS", "AuthenticationResponse", "UL", rnti, 1, ts += 2000));
  auto smc = rec("NAS", "SecurityModeCommand", "DL", rnti, 1, ts += 2000);
  smc.cipher_alg = vocab::CipherAlg::kNea2;
  smc.integrity_alg = vocab::IntegrityAlg::kNia2;
  t.add(smc);
  t.add(rec("NAS", "RegistrationAccept", "DL", rnti, 1, ts += 2000));
  return t;
}

mobiflow::Trace storm_trace() {
  mobiflow::Trace t;
  std::int64_t ts = 0;
  for (std::uint16_t i = 0; i < 5; ++i) {
    std::uint16_t rnti = static_cast<std::uint16_t>(0x100 + i);
    std::uint64_t ue = i + 1;
    t.add(rec("RRC", "RRCSetupRequest", "UL", rnti, ue, ts += 4000));
    t.add(rec("RRC", "RRCSetup", "DL", rnti, ue, ts += 1000));
    t.add(rec("RRC", "RRCSetupComplete", "UL", rnti, ue, ts += 1000));
    t.add(rec("NAS", "RegistrationRequest", "UL", rnti, ue, ts += 1000));
    t.add(rec("NAS", "AuthenticationRequest", "DL", rnti, ue, ts += 1000));
    // No response: the connection stalls.
  }
  return t;
}

mobiflow::Trace tmsi_replay_trace() {
  mobiflow::Trace t;
  std::int64_t ts = 0;
  for (int session = 0; session < 3; ++session) {
    std::uint16_t rnti = static_cast<std::uint16_t>(0x200 + session);
    std::uint64_t ue = 10 + static_cast<std::uint64_t>(session);
    auto setup = rec("RRC", "RRCSetupRequest", "UL", rnti, ue, ts += 3000);
    setup.s_tmsi = 0xDEAD5555;  // the victim's identifier, every time
    t.add(setup);
    t.add(rec("RRC", "RRCSetup", "DL", rnti, ue, ts += 1000));
    auto fail = rec("NAS", "AuthenticationFailure", "UL", rnti, ue, ts += 1000);
    fail.s_tmsi = 0xDEAD5555;
    t.add(fail);
  }
  return t;
}

mobiflow::Trace uplink_extraction_trace() {
  mobiflow::Trace t = benign_trace();
  // Rewrite the registration as a null-scheme disclosure; everything else
  // stays standard-compliant.
  mobiflow::Trace out;
  for (auto entry : t.entries()) {
    if (entry.record.msg == vocab::MsgType::kRegistrationRequest) {
      entry.record.suci = "suci-001-01-0-00000002537b1f00";
      entry.record.supi_plain = "imsi-001019970000000";
    }
    out.add(entry.record, entry.malicious);
  }
  return out;
}

mobiflow::Trace downlink_extraction_trace() {
  mobiflow::Trace t;
  std::int64_t ts = 0;
  std::uint16_t rnti = 0x30;
  t.add(rec("RRC", "RRCSetupRequest", "UL", rnti, 5, ts += 2000));
  t.add(rec("RRC", "RRCSetup", "DL", rnti, 5, ts += 2000));
  t.add(rec("RRC", "RRCSetupComplete", "UL", rnti, 5, ts += 2000));
  auto reg = rec("NAS", "RegistrationRequest", "UL", rnti, 5, ts += 2000);
  reg.suci = "suci-001-01-1-0000aaaabbbbcccc";  // protected identity
  t.add(reg);
  t.add(rec("NAS", "AuthenticationRequest", "DL", rnti, 5, ts += 2000));
  // Out-of-order: IdentityResponse answers the authentication challenge.
  auto resp = rec("NAS", "IdentityResponse", "UL", rnti, 5, ts += 2000);
  resp.supi_plain = "imsi-001019960000000";
  t.add(resp);
  return t;
}

mobiflow::Trace null_cipher_trace() {
  mobiflow::Trace t = benign_trace();
  mobiflow::Trace out;
  for (auto entry : t.entries()) {
    if (entry.record.msg == vocab::MsgType::kSecurityModeCommand) {
      entry.record.cipher_alg = vocab::CipherAlg::kNea0;
      entry.record.integrity_alg = vocab::IntegrityAlg::kNia0;
    }
    out.add(entry.record, entry.malicious);
  }
  return out;
}

mobiflow::Trace trace_for(SignatureKind kind) {
  switch (kind) {
    case SignatureKind::kSignalingStorm: return storm_trace();
    case SignatureKind::kTmsiReplay: return tmsi_replay_trace();
    case SignatureKind::kPlaintextIdentityUplink:
      return uplink_extraction_trace();
    case SignatureKind::kIdentityRequestOutOfOrder:
      return downlink_extraction_trace();
    case SignatureKind::kNullCipherDowngrade: return null_cipher_trace();
  }
  return benign_trace();
}

// --- Knowledge base -------------------------------------------------------

TEST(Knowledge, CoversAllSignatures) {
  EXPECT_EQ(knowledge_base().size(), kSignatureCount);
  for (const auto& entry : knowledge_base()) {
    EXPECT_FALSE(entry.name.empty());
    EXPECT_FALSE(entry.explanation.empty());
    EXPECT_FALSE(entry.attribution.empty());
    EXPECT_FALSE(entry.remediations.empty());
    EXPECT_EQ(lookup(entry.signature).name, entry.name);
  }
}

// --- Prompt ----------------------------------------------------------------

TEST(Prompt, RecordLineRoundTrip) {
  mobiflow::Record r = rec("NAS", "RegistrationRequest", "UL", 0x5F1A, 3, 777);
  r.s_tmsi = 0xCAFE;
  r.suci = "suci-001-01-1-abc";
  r.supi_plain = "imsi-001012089900001";
  r.cipher_alg = vocab::CipherAlg::kNea2;
  r.integrity_alg = vocab::IntegrityAlg::kNia2;
  r.establishment_cause = vocab::EstablishmentCause::kMoData;
  auto parsed = parse_record_line(render_record_line(r));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), r);
}

TEST(Prompt, RejectsLinesWithoutMessage) {
  EXPECT_FALSE(parse_record_line("t=1us rnti=0x0001").ok());
}

TEST(Prompt, TemplateContainsPaperElements) {
  PromptTemplate tmpl;
  std::string prompt = tmpl.build(benign_trace());
  EXPECT_NE(prompt.find("AI security analyst"), std::string::npos);
  EXPECT_NE(prompt.find("<DATA_DESCRIPTIONS>"), std::string::npos);
  EXPECT_NE(prompt.find("<DATA>"), std::string::npos);
  EXPECT_NE(prompt.find("top 3 most possible attacks"), std::string::npos);
}

TEST(Prompt, ExtractTraceRecoversRecords) {
  PromptTemplate tmpl;
  mobiflow::Trace original = benign_trace();
  auto extracted = extract_trace_from_prompt(tmpl.build(original));
  ASSERT_TRUE(extracted.ok());
  ASSERT_EQ(extracted.value().size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i)
    EXPECT_EQ(extracted.value().entries()[i].record,
              original.entries()[i].record);
}

TEST(Prompt, ExtractIncludesContextBeforeWindow) {
  detect::AnomalyReport report;
  report.context.add(rec("RRC", "RRCSetup", "DL", 1, 1, 1));
  report.window.add(rec("RRC", "RRCRelease", "DL", 1, 1, 2));
  PromptTemplate tmpl;
  auto extracted = extract_trace_from_prompt(tmpl.build(report));
  ASSERT_TRUE(extracted.ok());
  ASSERT_EQ(extracted.value().size(), 2u);
  EXPECT_EQ(extracted.value().entries()[0].record.msg,
            vocab::MsgType::kRrcSetup);
  EXPECT_EQ(extracted.value().entries()[1].record.msg,
            vocab::MsgType::kRrcRelease);
}

TEST(Prompt, ExtractFailsWithoutData) {
  EXPECT_FALSE(extract_trace_from_prompt("no telemetry here").ok());
}

// --- Evidence extraction ---------------------------------------------------

TEST(Expert, BenignTraceYieldsNoEvidence) {
  auto stats = extract_stats(benign_trace());
  EXPECT_TRUE(extract_evidence(stats).empty());
}

class SignatureDetection
    : public ::testing::TestWithParam<SignatureKind> {};

TEST_P(SignatureDetection, FullCompetenceExtractsPrimaryEvidence) {
  SignatureKind kind = GetParam();
  auto stats = extract_stats(trace_for(kind));
  auto evidence = extract_evidence(stats);
  ASSERT_FALSE(evidence.empty()) << to_string(kind);
  EXPECT_EQ(evidence.front().kind, kind) << to_string(kind);
  EXPECT_GT(evidence.front().confidence, 0.5);
  EXPECT_FALSE(evidence.front().details.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllSignatures, SignatureDetection,
    ::testing::Values(SignatureKind::kSignalingStorm,
                      SignatureKind::kTmsiReplay,
                      SignatureKind::kPlaintextIdentityUplink,
                      SignatureKind::kIdentityRequestOutOfOrder,
                      SignatureKind::kNullCipherDowngrade));

TEST(Expert, StormAftermathRule) {
  mobiflow::Trace t;
  for (int i = 0; i < 4; ++i)
    t.add(rec("RRC", "RRCRelease", "DL", static_cast<std::uint16_t>(i + 1),
              static_cast<std::uint64_t>(i + 1), i * 1000));
  auto evidence = extract_evidence(extract_stats(t));
  ASSERT_FALSE(evidence.empty());
  EXPECT_EQ(evidence.front().kind, SignatureKind::kSignalingStorm);
}

TEST(Expert, NarrativeForAnomalyNamesAttackAndRemediation) {
  ExpertEngine engine;
  Analysis analysis = engine.analyze(storm_trace());
  EXPECT_TRUE(analysis.anomalous);
  EXPECT_NE(analysis.narrative.find("ANOMALOUS"), std::string::npos);
  EXPECT_NE(analysis.narrative.find("BTS resource depletion"),
            std::string::npos);
  EXPECT_NE(analysis.narrative.find("Recommended remediations"),
            std::string::npos);
  EXPECT_NE(analysis.narrative.find("responsible"), std::string::npos);
}

TEST(Expert, NarrativeForBenignExplainsCallFlow) {
  ExpertEngine engine;
  Analysis analysis = engine.analyze(benign_trace());
  EXPECT_FALSE(analysis.anomalous);
  EXPECT_NE(analysis.narrative.find("BENIGN"), std::string::npos);
}

TEST(Expert, MaskHidesEvidence) {
  ExpertEngine engine;
  // Copilot's competence (storm only) cannot see a null-cipher downgrade.
  Analysis analysis = engine.analyze(
      null_cipher_trace(), {SignatureKind::kSignalingStorm});
  EXPECT_FALSE(analysis.anomalous);
}

// --- Personalities: the Table 3 matrix -------------------------------------

struct Table3Case {
  const char* model;
  SignatureKind attack;
  bool expected_correct;
};

// Exactly the paper's Table 3 check/cross matrix.
const Table3Case kTable3[] = {
    {"ChatGPT-4o", SignatureKind::kSignalingStorm, true},
    {"Gemini", SignatureKind::kSignalingStorm, true},
    {"Copilot", SignatureKind::kSignalingStorm, true},
    {"Llama3", SignatureKind::kSignalingStorm, false},
    {"Claude 3 Sonnet", SignatureKind::kSignalingStorm, false},
    {"ChatGPT-4o", SignatureKind::kTmsiReplay, true},
    {"Gemini", SignatureKind::kTmsiReplay, false},
    {"Copilot", SignatureKind::kTmsiReplay, false},
    {"Llama3", SignatureKind::kTmsiReplay, true},
    {"Claude 3 Sonnet", SignatureKind::kTmsiReplay, false},
    {"ChatGPT-4o", SignatureKind::kPlaintextIdentityUplink, false},
    {"Gemini", SignatureKind::kPlaintextIdentityUplink, false},
    {"Copilot", SignatureKind::kPlaintextIdentityUplink, false},
    {"Llama3", SignatureKind::kPlaintextIdentityUplink, false},
    {"Claude 3 Sonnet", SignatureKind::kPlaintextIdentityUplink, true},
    {"ChatGPT-4o", SignatureKind::kIdentityRequestOutOfOrder, true},
    {"Gemini", SignatureKind::kIdentityRequestOutOfOrder, true},
    {"Copilot", SignatureKind::kIdentityRequestOutOfOrder, false},
    {"Llama3", SignatureKind::kIdentityRequestOutOfOrder, true},
    {"Claude 3 Sonnet", SignatureKind::kIdentityRequestOutOfOrder, true},
    {"ChatGPT-4o", SignatureKind::kNullCipherDowngrade, true},
    {"Gemini", SignatureKind::kNullCipherDowngrade, true},
    {"Copilot", SignatureKind::kNullCipherDowngrade, false},
    {"Llama3", SignatureKind::kNullCipherDowngrade, true},
    {"Claude 3 Sonnet", SignatureKind::kNullCipherDowngrade, true},
};

class Table3Matrix : public ::testing::TestWithParam<Table3Case> {};

TEST_P(Table3Matrix, SimLlmReproducesPaperVerdicts) {
  const Table3Case& test_case = GetParam();
  SimLlmClient client;
  PromptTemplate tmpl;
  LlmRequest request;
  request.model = test_case.model;
  request.prompt = tmpl.build(trace_for(test_case.attack));
  auto response = client.query(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().verdict_anomalous, test_case.expected_correct)
      << test_case.model << " on " << to_string(test_case.attack);
}

INSTANTIATE_TEST_SUITE_P(PaperMatrix, Table3Matrix,
                         ::testing::ValuesIn(kTable3));

TEST(Personalities, AllModelsCorrectOnBenign) {
  SimLlmClient client;
  PromptTemplate tmpl;
  for (const auto& model : baseline_models()) {
    LlmRequest request{model.name, tmpl.build(benign_trace())};
    auto response = client.query(request);
    ASSERT_TRUE(response.ok());
    EXPECT_FALSE(response.value().verdict_anomalous) << model.name;
  }
}

TEST(Personalities, FiveBaselineModelsInPaperOrder) {
  const auto& models = baseline_models();
  ASSERT_EQ(models.size(), 5u);
  EXPECT_EQ(models[0].name, "ChatGPT-4o");
  EXPECT_EQ(models[4].name, "Claude 3 Sonnet");
  EXPECT_NE(find_model("Gemini"), nullptr);
  EXPECT_EQ(find_model("GPT-5"), nullptr);
}

TEST(Personalities, OracleDetectsEverything) {
  SimLlmClient client;
  PromptTemplate tmpl;
  for (SignatureKind kind :
       {SignatureKind::kSignalingStorm, SignatureKind::kTmsiReplay,
        SignatureKind::kPlaintextIdentityUplink,
        SignatureKind::kIdentityRequestOutOfOrder,
        SignatureKind::kNullCipherDowngrade}) {
    LlmRequest request{"oracle", tmpl.build(trace_for(kind))};
    auto response = client.query(request);
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(response.value().verdict_anomalous) << to_string(kind);
  }
}

// --- Response parsing / clients --------------------------------------------

TEST(ResponseParsing, VerdictLineWins) {
  auto r = parse_response_text("m", "Verdict: ANOMALOUS.\nbenign text after");
  EXPECT_TRUE(r.verdict_anomalous);
  auto b = parse_response_text("m", "Verdict: BENIGN.\nanomalous mention");
  EXPECT_FALSE(b.verdict_anomalous);
}

TEST(ResponseParsing, FreeFormKeywords) {
  EXPECT_TRUE(parse_response_text("m", "This is likely an attack on ...")
                  .verdict_anomalous);
  EXPECT_FALSE(
      parse_response_text("m", "This looks like normal traffic to me.")
          .verdict_anomalous);
}

TEST(ResponseParsing, ExtractsNumberedAttacks) {
  std::string text =
      "Verdict: ANOMALOUS.\nTop candidate attacks:\n"
      "  1. BTS resource depletion DoS (signaling storm) (ref), confidence "
      "0.95\n"
      "  2. Blind DoS via S-TMSI replay (lower likelihood)\n";
  auto r = parse_response_text("m", text);
  ASSERT_EQ(r.attacks.size(), 2u);
  EXPECT_EQ(r.attacks[0], "BTS resource depletion DoS");
}

TEST(Json, EscapeAndExtract) {
  std::string escaped = json_escape("a\"b\\c\nd");
  EXPECT_EQ(escaped, "a\\\"b\\\\c\\nd");
  std::string json = "{\"content\":\"" + escaped + "\",\"x\":1}";
  auto extracted = json_extract_string(json, "content");
  ASSERT_TRUE(extracted.ok());
  EXPECT_EQ(extracted.value(), "a\"b\\c\nd");
  EXPECT_FALSE(json_extract_string(json, "missing").ok());
}

TEST(RestClient, BuildsChatRequestAndParsesResponse) {
  std::vector<HttpRequest> sent;
  RestLlmClient client(
      "https://llm.example/v1/chat", "sk-test",
      [&sent](const HttpRequest& request) -> Result<std::string> {
        sent.push_back(request);
        return std::string(
            "{\"choices\":[{\"message\":{\"content\":\"Verdict: "
            "ANOMALOUS.\\nSignaling storm suspected.\"}}],"
            "\"content\":\"Verdict: ANOMALOUS.\\nSignaling storm "
            "suspected.\"}");
      });
  LlmRequest request{"gpt-4o", "prompt text"};
  auto response = client.query(request);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response.value().verdict_anomalous);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].url, "https://llm.example/v1/chat");
  EXPECT_NE(sent[0].body.find("\"model\":\"gpt-4o\""), std::string::npos);
  bool has_auth = false;
  for (const auto& [k, v] : sent[0].headers)
    if (k == "Authorization" && v == "Bearer sk-test") has_auth = true;
  EXPECT_TRUE(has_auth);
}

TEST(RestClient, TransportErrorPropagates) {
  RestLlmClient client("url", "key", [](const HttpRequest&) {
    return Result<std::string>(Error::make("network", "unreachable"));
  });
  EXPECT_FALSE(client.query({"m", "p"}).ok());
}

TEST(SimClient, RejectsPromptWithoutTelemetry) {
  SimLlmClient client;
  EXPECT_FALSE(client.query({"oracle", "tell me a joke"}).ok());
}

// --- ResilientLlmClient -----------------------------------------------------

/// Fails its first `fail_first` queries (modeling timeouts / 5xx), then
/// answers every query with an "anomalous" verdict.
class ScriptedLlmClient : public LlmClient {
 public:
  explicit ScriptedLlmClient(std::size_t fail_first) : fail_(fail_first) {}
  Result<LlmResponse> query(const LlmRequest& request) override {
    ++calls;
    if (calls <= fail_)
      return Error::make("timeout", "upstream request timed out");
    LlmResponse response;
    response.model = request.model;
    response.text = "Verdict: ANOMALOUS";
    response.verdict_anomalous = true;
    return response;
  }
  std::size_t calls = 0;
  std::size_t fail_ = 0;
};

TEST(ResilientClient, RetriesWithinBudgetAndSucceeds) {
  auto inner = std::make_shared<ScriptedLlmClient>(2);
  ResilienceConfig config;
  config.max_attempts = 3;
  ResilientLlmClient client(inner, config);
  auto response = client.query({"m", "p"});
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(inner->calls, 3u);
  EXPECT_EQ(client.retries(), 2u);
  EXPECT_EQ(client.failed_queries(), 0u);
  EXPECT_FALSE(client.breaker_open());
}

TEST(ResilientClient, BreakerOpensAfterConsecutiveFailuresAndFailsFast) {
  auto inner = std::make_shared<ScriptedLlmClient>(1000000);  // always fail
  ResilienceConfig config;
  config.max_attempts = 2;
  config.breaker_threshold = 2;
  config.breaker_cooldown = SimDuration::from_ms(3);
  ResilientLlmClient client(inner, config);
  SimTime t{0};
  client.set_clock([&t] { return t; });
  EXPECT_FALSE(client.query({"m", "p"}).ok());
  EXPECT_FALSE(client.breaker_open());
  EXPECT_FALSE(client.query({"m", "p"}).ok());
  EXPECT_TRUE(client.breaker_open());
  EXPECT_EQ(client.breaker_trips(), 1u);
  EXPECT_EQ(client.open_until().us, SimDuration::from_ms(3).us);
  EXPECT_EQ(inner->calls, 4u);  // 2 queries x 2 attempts
  // While the cooldown runs, queries are rejected without touching the
  // backend.
  t = t + SimDuration::from_ms(2);
  EXPECT_EQ(client.query({"m", "p"}).error().code, "breaker-open");
  EXPECT_EQ(inner->calls, 4u);
  EXPECT_EQ(client.queries_rejected(), 1u);
}

TEST(ResilientClient, HalfOpenProbeClosesBreakerOnRecovery) {
  auto inner = std::make_shared<ScriptedLlmClient>(2);
  ResilienceConfig config;
  config.max_attempts = 1;
  config.breaker_threshold = 2;
  config.breaker_cooldown = SimDuration::from_ms(10);
  ResilientLlmClient client(inner, config);
  SimTime t{0};
  client.set_clock([&t] { return t; });
  EXPECT_FALSE(client.query({"m", "p"}).ok());
  EXPECT_FALSE(client.query({"m", "p"}).ok());
  EXPECT_TRUE(client.breaker_open());
  // Queries inside the cooldown window are absorbed...
  t = t + SimDuration::from_ms(9);
  EXPECT_EQ(client.query({"m", "p"}).error().code, "breaker-open");
  // ...then once the cooldown elapses the half-open probe goes through;
  // the backend has recovered.
  t = t + SimDuration::from_ms(1);
  EXPECT_TRUE(client.query({"m", "p"}).ok());
  EXPECT_FALSE(client.breaker_open());
  EXPECT_TRUE(client.query({"m", "p"}).ok());
}

TEST(ResilientClient, FailedProbeReopensWithFreshCooldown) {
  auto inner = std::make_shared<ScriptedLlmClient>(1000000);
  ResilienceConfig config;
  config.max_attempts = 1;
  config.breaker_threshold = 1;
  config.breaker_cooldown = SimDuration::from_ms(5);
  ResilientLlmClient client(inner, config);
  SimTime t{0};
  client.set_clock([&t] { return t; });
  EXPECT_FALSE(client.query({"m", "p"}).ok());  // trips the breaker
  EXPECT_TRUE(client.breaker_open());
  t = t + SimDuration::from_ms(4);
  EXPECT_FALSE(client.query({"m", "p"}).ok());  // still cooling down
  std::size_t calls_before = inner->calls;
  t = t + SimDuration::from_ms(1);              // cooldown elapsed
  EXPECT_FALSE(client.query({"m", "p"}).ok());  // probe -> fails -> reopen
  EXPECT_EQ(inner->calls, calls_before + 1);
  EXPECT_TRUE(client.breaker_open());
  EXPECT_EQ(client.breaker_trips(), 2u);
  // The reopened breaker runs a FRESH cooldown from the failed probe.
  EXPECT_EQ(client.open_until().us, (t + SimDuration::from_ms(5)).us);
  t = t + SimDuration::from_ms(4);
  EXPECT_EQ(client.query({"m", "p"}).error().code, "breaker-open");
}

TEST(ResilientClient, PseudoClockKeepsBreakerDeterministicWithoutClock) {
  // No injected clock: the internal query-tick pseudo-clock (1 ms per
  // query) still drives a terminating cooldown schedule.
  auto inner = std::make_shared<ScriptedLlmClient>(1);
  ResilienceConfig config;
  config.max_attempts = 1;
  config.breaker_threshold = 1;
  config.breaker_cooldown = SimDuration::from_ms(3);
  ResilientLlmClient client(inner, config);
  EXPECT_FALSE(client.query({"m", "p"}).ok());  // fails, trips breaker
  EXPECT_TRUE(client.breaker_open());
  EXPECT_EQ(client.query({"m", "p"}).error().code, "breaker-open");
  EXPECT_EQ(client.query({"m", "p"}).error().code, "breaker-open");
  // Third query after the trip: pseudo-clock reaches the cooldown edge,
  // the probe goes through and the backend has recovered.
  EXPECT_TRUE(client.query({"m", "p"}).ok());
  EXPECT_FALSE(client.breaker_open());
  EXPECT_EQ(client.queries_rejected(), 2u);
}

// --- Analyzer xApp ----------------------------------------------------------

detect::AnomalyReport report_for(const mobiflow::Trace& window) {
  detect::AnomalyReport report;
  report.detector = "Autoencoder";
  report.node_id = 1;
  report.score = 2.0;
  report.threshold = 1.0;
  report.window = window;
  return report;
}

TEST(AnalyzerXapp, ConfirmingVerdictStoredInSdl) {
  oran::NearRtRic ric;
  AnalyzerConfig config;
  config.model = "ChatGPT-4o";
  auto* analyzer = static_cast<LlmAnalyzerXapp*>(ric.register_xapp(
      std::make_unique<LlmAnalyzerXapp>(config,
                                        std::make_shared<SimLlmClient>())));
  oran::RoutedMessage msg;
  msg.mtype = oran::kMtAnomalyWindow;
  msg.source = "mobiwatch";
  msg.payload = report_for(storm_trace()).serialize();
  ric.router().publish(msg);

  EXPECT_EQ(analyzer->incidents_analyzed(), 1u);
  EXPECT_EQ(analyzer->contradictions(), 0u);
  ASSERT_EQ(analyzer->reports().size(), 1u);
  EXPECT_TRUE(analyzer->reports()[0].llm_agrees);
  EXPECT_EQ(ric.sdl().size("xsec-reports"), 1u);
  std::string stored = ric.sdl()
                           .get_str("xsec-reports", oran::Sdl::seq_key(1))
                           .value();
  EXPECT_NE(stored.find("BTS resource depletion"), std::string::npos);
}

TEST(AnalyzerXapp, ContradictionEscalatedToHumanReview) {
  oran::NearRtRic ric;
  int reviews = 0;
  ric.router().subscribe(oran::kMtHumanReview,
                         [&](const oran::RoutedMessage&) { ++reviews; });
  AnalyzerConfig config;
  config.model = "Copilot";  // cannot see the null-cipher evidence
  auto* analyzer = static_cast<LlmAnalyzerXapp*>(ric.register_xapp(
      std::make_unique<LlmAnalyzerXapp>(config,
                                        std::make_shared<SimLlmClient>())));
  oran::RoutedMessage msg;
  msg.mtype = oran::kMtAnomalyWindow;
  msg.payload = report_for(null_cipher_trace()).serialize();
  ric.router().publish(msg);
  EXPECT_EQ(analyzer->contradictions(), 1u);
  EXPECT_EQ(reviews, 1);
}

TEST(AnalyzerXapp, DeferredAnalysisWaitsForTrailingTelemetry) {
  oran::NearRtRic ric;
  AnalyzerConfig config;
  config.model = "ChatGPT-4o";
  config.defer_records = 3;
  auto* analyzer = static_cast<LlmAnalyzerXapp*>(ric.register_xapp(
      std::make_unique<LlmAnalyzerXapp>(config,
                                        std::make_shared<SimLlmClient>())));

  // Seed the telemetry stream so deferral engages.
  auto put_record = [&ric](std::uint64_t seq) {
    mobiflow::Record r;
    r.protocol = vocab::Protocol::kRrc;
    r.msg = vocab::MsgType::kMeasurementReport;
    r.direction = vocab::Direction::kUl;
    r.rnti = 1;
    r.timestamp_us = static_cast<std::int64_t>(seq);
    ric.sdl().set("mobiflow", oran::Sdl::seq_key(seq), r.to_kv_bytes());
  };
  put_record(1);
  put_record(2);

  oran::RoutedMessage msg;
  msg.mtype = oran::kMtAnomalyWindow;
  msg.payload = report_for(storm_trace()).serialize();
  ric.router().publish(msg);
  EXPECT_EQ(analyzer->incidents_analyzed(), 0u);
  EXPECT_EQ(analyzer->incidents_pending(), 1u);

  // Two more records: still short of the deferral target.
  put_record(3);
  put_record(4);
  EXPECT_EQ(analyzer->incidents_analyzed(), 0u);
  // The third trailing record releases the incident, with the trailing
  // records appended to the analyzed window.
  put_record(5);
  EXPECT_EQ(analyzer->incidents_analyzed(), 1u);
  EXPECT_EQ(analyzer->incidents_pending(), 0u);
  EXPECT_TRUE(analyzer->reports()[0].llm_agrees);
}

TEST(AnalyzerXapp, FlushPendingDrainsAtStreamEnd) {
  oran::NearRtRic ric;
  AnalyzerConfig config;
  config.defer_records = 100;  // never reached naturally
  auto* analyzer = static_cast<LlmAnalyzerXapp*>(ric.register_xapp(
      std::make_unique<LlmAnalyzerXapp>(config,
                                        std::make_shared<SimLlmClient>())));
  mobiflow::Record r;
  r.protocol = vocab::Protocol::kRrc;
  r.msg = vocab::MsgType::kMeasurementReport;
  r.direction = vocab::Direction::kUl;
  ric.sdl().set("mobiflow", oran::Sdl::seq_key(1), r.to_kv_bytes());

  oran::RoutedMessage msg;
  msg.mtype = oran::kMtAnomalyWindow;
  msg.payload = report_for(storm_trace()).serialize();
  ric.router().publish(msg);
  EXPECT_EQ(analyzer->incidents_pending(), 1u);
  analyzer->flush_pending();
  EXPECT_EQ(analyzer->incidents_pending(), 0u);
  EXPECT_EQ(analyzer->incidents_analyzed(), 1u);
}

TEST(AnalyzerXapp, LlmOutageDefersIncidentUntilRecovery) {
  oran::NearRtRic ric;
  AnalyzerConfig config;
  config.model = "ChatGPT-4o";
  auto inner = std::make_shared<ScriptedLlmClient>(1);  // one outage, then up
  ResilienceConfig resilience;
  resilience.max_attempts = 1;
  auto* analyzer = static_cast<LlmAnalyzerXapp*>(ric.register_xapp(
      std::make_unique<LlmAnalyzerXapp>(
          config, std::make_shared<ResilientLlmClient>(inner, resilience))));
  oran::RoutedMessage msg;
  msg.mtype = oran::kMtAnomalyWindow;
  msg.payload = report_for(storm_trace()).serialize();
  ric.router().publish(msg);
  // The query failed: the incident is parked, not lost.
  EXPECT_EQ(analyzer->incidents_analyzed(), 0u);
  EXPECT_EQ(analyzer->llm_deferrals(), 1u);
  EXPECT_EQ(analyzer->incidents_pending(), 1u);
  // Backend recovers; the retry drains the queue.
  analyzer->flush_pending();
  EXPECT_EQ(analyzer->incidents_analyzed(), 1u);
  EXPECT_EQ(analyzer->incidents_pending(), 0u);
  EXPECT_EQ(analyzer->incidents_dropped(), 0u);
}

TEST(AnalyzerXapp, IncidentDroppedAfterSustainedLlmOutage) {
  oran::NearRtRic ric;
  auto inner = std::make_shared<ScriptedLlmClient>(1000000);  // never up
  ResilienceConfig resilience;
  resilience.max_attempts = 1;
  auto* analyzer = static_cast<LlmAnalyzerXapp*>(ric.register_xapp(
      std::make_unique<LlmAnalyzerXapp>(
          AnalyzerConfig{},
          std::make_shared<ResilientLlmClient>(inner, resilience))));
  oran::RoutedMessage msg;
  msg.mtype = oran::kMtAnomalyWindow;
  msg.payload = report_for(storm_trace()).serialize();
  ric.router().publish(msg);
  EXPECT_EQ(analyzer->incidents_pending(), 1u);
  // End-of-capture flush burns the remaining attempts; the incident is
  // accounted as dropped rather than looping forever.
  analyzer->flush_pending();
  EXPECT_EQ(analyzer->incidents_pending(), 0u);
  EXPECT_EQ(analyzer->incidents_analyzed(), 0u);
  EXPECT_EQ(analyzer->incidents_dropped(), 1u);
  EXPECT_EQ(analyzer->llm_deferrals(), 2u);
}

TEST(AnalyzerXapp, MalformedPayloadIgnored) {
  oran::NearRtRic ric;
  auto* analyzer = static_cast<LlmAnalyzerXapp*>(ric.register_xapp(
      std::make_unique<LlmAnalyzerXapp>(AnalyzerConfig{},
                                        std::make_shared<SimLlmClient>())));
  oran::RoutedMessage msg;
  msg.mtype = oran::kMtAnomalyWindow;
  msg.payload = {1, 2, 3};
  ric.router().publish(msg);
  EXPECT_EQ(analyzer->incidents_analyzed(), 0u);
}

}  // namespace
}  // namespace xsec::llm
