// Model-lifecycle tests: the quantile sketch and drift detector, the
// checksummed versioned model store (including the adversarial bit-flip /
// truncation property test), detector state round-trips, fine-tune
// determinism, training-set sanitization, the shadow gate — and the full
// edge loop: injected drift triggers a retrain, the candidate shadow-scores
// the live stream, passes the gate, and hot-swaps across every RIC shard
// count with byte-identical exports. A tampered model pushed at the store
// is rejected as a security event and never serves a verdict.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "core/datasets.hpp"
#include "core/evaluation.hpp"
#include "core/pipeline.hpp"
#include "core/smo.hpp"
#include "detect/mobiwatch.hpp"
#include "detect/scorer.hpp"
#include "lifecycle/manager.hpp"
#include "lifecycle/retrain.hpp"
#include "lifecycle/shadow.hpp"
#include "lifecycle/sketch.hpp"
#include "lifecycle/store.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "oran/router.hpp"
#include "oran/sdl.hpp"
#include "sim/traffic.hpp"

namespace xsec {
namespace {

using lifecycle::BenignRing;
using lifecycle::DriftConfig;
using lifecycle::DriftDetector;
using lifecycle::GateConfig;
using lifecycle::ModelStore;
using lifecycle::QuantileSketch;
using lifecycle::RingConfig;
using lifecycle::RingEntry;
using lifecycle::ShadowScorer;

// --- Quantile sketch --------------------------------------------------------

TEST(LifecycleSketch, BucketsClampAndQuantilesAreMonotonic) {
  EXPECT_EQ(QuantileSketch::bucket_of(0.0), 0u);
  EXPECT_EQ(QuantileSketch::bucket_of(-3.5), 0u);
  EXPECT_EQ(QuantileSketch::bucket_of(std::numeric_limits<double>::quiet_NaN()),
            0u);
  EXPECT_EQ(QuantileSketch::bucket_of(1e300), QuantileSketch::kBuckets - 1);
  // Doubling a value moves it up exactly one octave = two buckets.
  EXPECT_EQ(QuantileSketch::bucket_of(2.0), QuantileSketch::bucket_of(1.0) + 2);

  QuantileSketch sketch;
  EXPECT_TRUE(sketch.empty());
  EXPECT_EQ(sketch.quantile(0.5), 0.0);
  Rng rng(0x5EC7);
  for (int i = 0; i < 500; ++i) sketch.add(rng.uniform(0.1, 10.0));
  EXPECT_EQ(sketch.count(), 500u);
  double prev = 0.0;
  for (double q : {0.0, 0.25, 0.5, 0.75, 0.99, 1.0}) {
    double v = sketch.quantile(q);
    EXPECT_GE(v, prev) << "quantile(" << q << ")";
    prev = v;
  }
  // The median of a [0.1, 10] uniform draw lands in the right ballpark
  // (bucket edges are sqrt(2) apart, so the answer is coarse but bounded).
  EXPECT_GT(sketch.quantile(0.5), 1.0);
  EXPECT_LT(sketch.quantile(0.5), 10.0);
}

TEST(LifecycleSketch, DivergenceSeparatesShiftedDistributions) {
  QuantileSketch a, b, shifted;
  Rng rng(0xD1F7);
  for (int i = 0; i < 400; ++i) {
    double v = rng.uniform(0.5, 2.0);
    a.add(v);
    b.add(v);
    // Four octaves up: completely disjoint bucket support.
    shifted.add(v * 16.0);
  }
  EXPECT_EQ(a.divergence(b), 0.0);
  EXPECT_EQ(a.divergence(shifted), 1.0);
  EXPECT_EQ(a.divergence(QuantileSketch{}), 0.0) << "empty sketch = no signal";

  QuantileSketch merged;
  merged.merge_from(a);
  merged.merge_from(shifted);
  EXPECT_EQ(merged.count(), 800u);
  EXPECT_GT(merged.divergence(a), 0.0);
  EXPECT_LT(merged.divergence(a), 1.0);
}

TEST(LifecycleSketch, SaveLoadRoundTripsAndRejectsCorruptCounts) {
  QuantileSketch sketch;
  Rng rng(0xBEEF);
  for (int i = 0; i < 300; ++i) sketch.add(rng.uniform(0.01, 100.0));

  ByteWriter w;
  sketch.save(w);
  ByteReader r(w.bytes());
  QuantileSketch loaded;
  ASSERT_TRUE(loaded.load(r).ok());
  EXPECT_EQ(loaded.count(), sketch.count());
  EXPECT_EQ(loaded.divergence(sketch), 0.0);

  // A declared count the buckets cannot account for is corruption, not a
  // best-effort load.
  ByteWriter corrupt;
  corrupt.u64(5);
  for (std::size_t b = 0; b < QuantileSketch::kBuckets; ++b) corrupt.varint(0);
  ByteReader cr(corrupt.bytes());
  QuantileSketch victim;
  victim.add(1.0);
  EXPECT_FALSE(victim.load(cr).ok());
  // A failed load leaves the sketch untouched.
  EXPECT_EQ(victim.count(), 1u);
}

// --- Drift detector ---------------------------------------------------------

TEST(LifecycleDrift, FiresOnDistributionShiftNotOnStableTraffic) {
  DriftConfig config;
  config.baseline_min = 64;
  config.min_samples = 64;
  config.divergence_threshold = 0.5;
  DriftDetector drift(config);

  Rng rng(0xD81F);
  // Baseline bootstrap: no checks, no events.
  for (int i = 0; i < 64; ++i)
    EXPECT_FALSE(drift.observe(rng.uniform(0.5, 2.0)));
  EXPECT_TRUE(drift.baseline_ready());
  EXPECT_EQ(drift.checks(), 0u);

  // A stable epoch from the same distribution stays under the threshold.
  bool fired = false;
  for (int i = 0; i < 64; ++i) fired |= drift.observe(rng.uniform(0.5, 2.0));
  EXPECT_FALSE(fired);
  EXPECT_EQ(drift.checks(), 1u);
  EXPECT_LT(drift.last_divergence(), 0.5);

  // A shifted epoch (scores 16x the baseline) is unambiguous drift.
  for (int i = 0; i < 63; ++i)
    EXPECT_FALSE(drift.observe(rng.uniform(8.0, 32.0)));
  EXPECT_TRUE(drift.observe(rng.uniform(8.0, 32.0)));
  EXPECT_EQ(drift.checks(), 2u);
  EXPECT_GT(drift.last_divergence(), 0.9);
}

TEST(LifecycleDrift, SeedBaselineSkipsBootstrapAndResetDropsIt) {
  DriftDetector drift(DriftConfig{.baseline_min = 1000,
                                  .min_samples = 16,
                                  .divergence_threshold = 0.5});
  std::vector<double> training(64, 1.0);
  drift.seed_baseline(training);
  EXPECT_TRUE(drift.baseline_ready()) << "seeding must bypass baseline_min";
  bool fired = false;
  for (int i = 0; i < 16; ++i) fired |= drift.observe(256.0);
  EXPECT_TRUE(fired);

  drift.reset();
  EXPECT_FALSE(drift.baseline_ready());
  EXPECT_EQ(drift.last_divergence(), 0.0);
}

// --- Versioned model store --------------------------------------------------

Bytes fake_state(std::uint8_t tag, std::size_t size = 64) {
  Bytes state(size);
  for (std::size_t i = 0; i < size; ++i)
    state[i] = static_cast<std::uint8_t>(tag + i * 7);
  return state;
}

TEST(LifecycleStore, VersionHistoryRoundTripsActivateAndRollback) {
  oran::Sdl sdl;
  ModelStore store(&sdl);

  const Bytes a = fake_state(1), b = fake_state(2), c = fake_state(3);
  EXPECT_EQ(store.put(a), 1u);
  EXPECT_EQ(store.put(b), 2u);
  EXPECT_EQ(store.put(c), 3u);
  EXPECT_EQ(store.versions(), (std::vector<std::uint32_t>{1, 2, 3}));

  // Every version loads back byte-identical through the integrity check.
  auto loaded = store.load(2);
  ASSERT_TRUE(loaded) << loaded.error().message;
  EXPECT_EQ(loaded.value(), b);

  // The meta keys never parse as versions.
  EXPECT_EQ(store.active_version(), 0u);
  EXPECT_FALSE(store.load_active());
  EXPECT_FALSE(store.rollback()) << "nothing to roll back to yet";

  store.activate(2);
  EXPECT_EQ(store.active_version(), 2u);
  EXPECT_EQ(store.previous_version(), 0u);
  auto active = store.load_active();
  ASSERT_TRUE(active);
  EXPECT_EQ(active.value(), b);

  store.activate(3);
  EXPECT_EQ(store.active_version(), 3u);
  EXPECT_EQ(store.previous_version(), 2u);

  // Rollback swaps active and previous — and is itself reversible.
  auto back = store.rollback();
  ASSERT_TRUE(back);
  EXPECT_EQ(back.value(), 2u);
  EXPECT_EQ(store.active_version(), 2u);
  EXPECT_EQ(store.previous_version(), 3u);
  ASSERT_TRUE(store.rollback());
  EXPECT_EQ(store.active_version(), 3u);
  EXPECT_EQ(store.versions(), (std::vector<std::uint32_t>{1, 2, 3}))
      << "activation bookkeeping must not invent versions";
}

TEST(LifecycleStore, EveryBitFlipAndTruncationIsRejected) {
  oran::Sdl sdl;
  obs::MetricsRegistry registry;
  ModelStore store(&sdl);
  store.set_metrics(&registry);

  const Bytes state = fake_state(9, 48);
  const std::uint32_t version = store.put(state);
  const Bytes wrapped = *sdl.get(store.ns(), ModelStore::version_key(version));
  ASSERT_TRUE(store.verify(wrapped)) << "the untampered blob must verify";

  const obs::Counter& rejected = registry.counter("lifecycle.model_rejected");
  std::size_t expected_rejections = rejected.value();

  // Property: EVERY single-bit flip anywhere in the envelope — header,
  // payload, or the checksum itself — must be rejected.
  for (std::size_t byte = 0; byte < wrapped.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes tampered = wrapped;
      tampered[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_FALSE(store.verify(tampered))
          << "bit " << bit << " of byte " << byte << " flipped undetected";
      ++expected_rejections;
    }
  }
  // Property: every truncation — from empty to one-byte-short — is rejected.
  for (std::size_t len = 0; len < wrapped.size(); ++len) {
    EXPECT_FALSE(store.verify(Bytes(wrapped.begin(), wrapped.begin() + len)))
        << "truncated to " << len << " bytes yet verified";
    ++expected_rejections;
  }
  // Every rejection incremented the security counter exactly once.
  EXPECT_EQ(rejected.value(), expected_rejections);

  // Tampering the blob AT REST is caught on load, same counter.
  Bytes at_rest = wrapped;
  at_rest[at_rest.size() / 2] ^= 0x10;
  sdl.set(store.ns(), ModelStore::version_key(version), at_rest);
  EXPECT_FALSE(store.load(version));
  EXPECT_EQ(rejected.value(), expected_rejections + 1);
}

// --- Detector state + fine-tune determinism ---------------------------------

/// A small deterministic AE with windows synthesized from a seeded Rng.
struct TinyDetector {
  static constexpr std::size_t kWindow = 3;
  static constexpr std::size_t kFeatures = 4;
  static constexpr std::size_t kFlat = kWindow * kFeatures;

  static std::vector<float> windows(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<float> out(n * kFlat);
    for (float& v : out) v = static_cast<float>(rng.uniform(0.0, 1.0));
    return out;
  }

  static std::unique_ptr<detect::AutoencoderDetector> trained() {
    auto detector = std::make_unique<detect::AutoencoderDetector>(
        kWindow, kFeatures, detect::DetectorConfig{},
        std::vector<std::size_t>{8});
    std::vector<float> data = windows(64, 0x7EA1);
    // Fit the scaler too: a fitted scaler round-trips through save_state
    // with the window-flattened dim the AE standardizes over.
    dl::Matrix raw(64, kFlat);
    std::memcpy(raw.row(0), data.data(), data.size() * sizeof(float));
    detector->fit_scaler(raw);
    detect::FineTuneConfig tune;
    tune.epochs = 3;
    EXPECT_TRUE(detector->fine_tune(data.data(), 64, kWindow, tune));
    EXPECT_GT(detector->threshold(), 0.0);
    return detector;
  }
};

TEST(LifecycleDetectorState, SaveRestoreScoresBitIdentical) {
  auto original = TinyDetector::trained();
  Bytes state = original->save_state();
  ASSERT_FALSE(state.empty());

  auto restored = detect::restore_detector(state);
  ASSERT_TRUE(restored) << restored.error().message;
  EXPECT_EQ(restored.value()->threshold(), original->threshold());
  // The restored detector re-serializes to the exact same bytes...
  EXPECT_EQ(restored.value()->save_state(), state);
  // ...and scores unseen windows bit-identically.
  std::vector<float> probe = TinyDetector::windows(16, 0x9E0B);
  for (std::size_t w = 0; w < 16; ++w) {
    const float* rows = probe.data() + w * TinyDetector::kFlat;
    EXPECT_EQ(restored.value()->score_window(rows, TinyDetector::kWindow),
              original->score_window(rows, TinyDetector::kWindow))
        << "window " << w;
  }
}

TEST(LifecycleDetectorState, FineTuneIsDeterministicAcrossClones) {
  auto parent = TinyDetector::trained();
  const Bytes parent_state = parent->save_state();

  std::vector<float> fresh = TinyDetector::windows(48, 0xF00D);
  detect::FineTuneConfig tune;
  tune.epochs = 2;
  auto tuned = [&] {
    auto clone = parent->clone_for_inference();
    EXPECT_NE(clone, nullptr);
    EXPECT_TRUE(clone->fine_tune(fresh.data(), 48, TinyDetector::kWindow,
                                 tune));
    return clone->save_state();
  };
  // Retraining is deterministic: two identically fine-tuned clones land on
  // byte-identical states (the shard-invariance contract depends on this).
  Bytes first = tuned();
  EXPECT_EQ(first, tuned());
  // And the fine-tune actually moved the weights off the parent's.
  EXPECT_NE(first, parent_state);
  // The parent was never touched.
  EXPECT_EQ(parent->save_state(), parent_state);
}

// --- Benign ring sanitization -----------------------------------------------

RingEntry ring_entry(std::uint64_t node, double score, bool fp = false) {
  RingEntry entry;
  entry.node_id = node;
  entry.ue_id = 0;
  entry.score = score;
  entry.fp_evidence = fp;
  entry.rows.assign(4, static_cast<float>(score));
  return entry;
}

TEST(LifecycleRing, SanitizationDropsLowTrustAndOutliers) {
  RingConfig config;
  config.capacity = 16;
  config.min_trust = 0.5;
  config.outlier_quantile = 70.0;
  BenignRing ring(config);

  // Node 1 is trusted, node 666 is a (simulated) poisoning source.
  for (double score : {0.1, 0.2, 0.3, 0.4, 0.5}) ring.push(ring_entry(1, score));
  ring.push(ring_entry(666, 0.2));
  ring.push(ring_entry(666, 0.3));
  // Outliers: far above the ring's 70th-percentile cutoff. One carries FP
  // evidence — a mitigation rollback vouched for it, so the outlier filter
  // must NOT re-drop it.
  ring.push(ring_entry(1, 50.0));
  ring.push(ring_entry(1, 60.0, /*fp=*/true));
  // A low-trust FP window: evidence does not override the trust filter.
  ring.push(ring_entry(666, 70.0, /*fp=*/true));

  auto trust = [](std::uint64_t node, std::uint64_t) {
    return node == 666 ? 0.1 : 1.0;
  };
  BenignRing::Harvest harvest = ring.harvest(trust);
  EXPECT_EQ(harvest.dropped_trust, 3u);
  EXPECT_EQ(harvest.dropped_outlier, 1u);
  ASSERT_EQ(harvest.windows.rows(), 6u) << "5 benign + 1 FP-evidence";
  // The FP-evidence window survived with its rows intact.
  bool fp_present = false;
  for (std::size_t w = 0; w < harvest.windows.rows(); ++w)
    fp_present |= harvest.windows.row(w)[0] == 60.0f;
  EXPECT_TRUE(fp_present);

  // Without a trust oracle, only the outlier filter applies.
  BenignRing::Harvest untrusted = ring.harvest(nullptr);
  EXPECT_EQ(untrusted.dropped_trust, 0u);
  EXPECT_GT(untrusted.windows.rows(), harvest.windows.rows());

  // Capacity bound: the ring evicts oldest, never grows past capacity.
  for (int i = 0; i < 40; ++i) ring.push(ring_entry(1, 0.25));
  EXPECT_EQ(ring.size(), config.capacity);
}

TEST(LifecycleRing, RetrainRefusesAnUndersizedHarvest) {
  BenignRing ring;
  for (int i = 0; i < 8; ++i) ring.push(ring_entry(1, 0.2));
  auto detector = TinyDetector::trained();
  lifecycle::RetrainConfig config;
  config.min_windows = 16;
  auto result = lifecycle::retrain_candidate(*detector, ring, nullptr,
                                             TinyDetector::kWindow, config);
  ASSERT_FALSE(result);
  EXPECT_EQ(result.error().code, "insufficient");
}

TEST(LifecycleRing, RetrainProducesAScoredCandidate) {
  BenignRing ring;
  std::vector<float> data = TinyDetector::windows(32, 0xCAFE);
  for (std::size_t w = 0; w < 32; ++w) {
    RingEntry entry;
    entry.node_id = 1;
    entry.score = 0.1;
    entry.rows.assign(data.begin() + w * TinyDetector::kFlat,
                      data.begin() + (w + 1) * TinyDetector::kFlat);
    ring.push(std::move(entry));
  }
  auto detector = TinyDetector::trained();
  lifecycle::RetrainConfig config;
  config.min_windows = 16;
  config.tune.epochs = 2;
  auto result = lifecycle::retrain_candidate(*detector, ring, nullptr,
                                             TinyDetector::kWindow, config);
  ASSERT_TRUE(result) << result.error().message;
  EXPECT_EQ(result.value().windows_used, 32u);
  EXPECT_EQ(result.value().training_scores.size(), 32u);
  ASSERT_NE(result.value().candidate, nullptr);
  EXPECT_GT(result.value().candidate->threshold(), 0.0);
  // The ring itself is untouched (the caller clears it on success).
  EXPECT_EQ(ring.size(), 32u);
}

// --- Shadow gate ------------------------------------------------------------

/// Deterministic stand-in: score = scale * rows[0], threshold 1.0.
class StubDetector : public detect::AnomalyDetector {
 public:
  explicit StubDetector(double scale) : scale_(scale) { set_threshold(1.0); }
  std::string name() const override { return "stub"; }
  void fit(const detect::WindowDataset&) override {}
  std::vector<double> score(const detect::WindowDataset&) override {
    return {};
  }
  std::vector<bool> labels(const detect::WindowDataset&) const override {
    return {};
  }
  using detect::AnomalyDetector::score_window;
  double score_window(const float* rows, std::size_t) override {
    return scale_ * static_cast<double>(rows[0]);
  }
  std::size_t rows_needed(std::size_t window_size) const override {
    return window_size;
  }

 private:
  double scale_;
};

void shadow_feed(ShadowScorer& shadow, float value, double active_score,
                 bool active_anomalous, int n = 1) {
  float rows[1] = {value};
  for (int i = 0; i < n; ++i)
    shadow.observe(rows, 1, active_score, active_anomalous);
}

TEST(LifecycleShadow, GatePassesAFaithfulCandidate) {
  GateConfig gate;
  gate.min_windows = 8;
  gate.max_benign_flag_rate = 0.1;
  gate.max_mean_error_ratio = 1.5;
  gate.min_anomaly_agreement = 0.5;
  ShadowScorer shadow(std::make_unique<StubDetector>(1.0), 2, gate);
  EXPECT_FALSE(shadow.ready());

  shadow_feed(shadow, 0.5f, 0.5, false, 6);   // quiet on benign
  shadow_feed(shadow, 2.0f, 2.0, true, 2);    // agrees on anomalies
  ASSERT_TRUE(shadow.ready());
  EXPECT_EQ(shadow.benign_flag_rate(), 0.0);
  EXPECT_EQ(shadow.anomaly_agreement(), 1.0);
  EXPECT_TRUE(shadow.passes());
  EXPECT_EQ(shadow.version(), 2u);
}

TEST(LifecycleShadow, GateRejectsNoisyAndBlindCandidates) {
  GateConfig gate;
  gate.min_windows = 8;
  gate.max_benign_flag_rate = 0.1;
  gate.max_mean_error_ratio = 1.5;
  gate.min_anomaly_agreement = 0.5;

  // A candidate that inflates scores 4x flags benign traffic and blows the
  // mean-error ratio.
  ShadowScorer noisy(std::make_unique<StubDetector>(4.0), 2, gate);
  shadow_feed(noisy, 0.5f, 0.5, false, 8);
  ASSERT_TRUE(noisy.ready());
  EXPECT_EQ(noisy.benign_flag_rate(), 1.0);
  EXPECT_EQ(noisy.mean_error_ratio(), 4.0);
  EXPECT_FALSE(noisy.passes());

  // A candidate that stops seeing the anomalies the active model flags
  // (exactly what a poisoned fine-tune would buy an attacker) fails the
  // agreement check even though it is quiet on benign traffic.
  ShadowScorer blind(std::make_unique<StubDetector>(0.1), 3, gate);
  shadow_feed(blind, 0.5f, 0.5, false, 6);
  shadow_feed(blind, 2.0f, 2.0, true, 2);
  ASSERT_TRUE(blind.ready());
  EXPECT_EQ(blind.benign_flag_rate(), 0.0);
  EXPECT_EQ(blind.anomaly_agreement(), 0.0);
  EXPECT_FALSE(blind.passes());
}

// --- End-to-end: drift -> retrain -> shadow -> promote ----------------------

/// Shared trained detector (training dominates runtime; do it once).
class LifecycleE2eTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    std::vector<mobiflow::Trace> captures;
    double arrival_ms = 60.0;
    for (std::uint64_t seed : {81u, 82u}) {
      core::ScenarioConfig benign_config;
      benign_config.testbed.seed = seed;
      benign_config.traffic.num_sessions = 40;
      benign_config.traffic.seed = seed * 13;
      benign_config.traffic.arrival_mean = SimDuration::from_ms(arrival_ms);
      benign_config.run_time = SimDuration::from_s(8);
      captures.push_back(core::collect_benign(benign_config));
      arrival_ms += 60.0;
    }
    core::EvalConfig eval;
    eval.detector.epochs = 25;
    detector_ = new std::shared_ptr<detect::AnomalyDetector>(
        core::train_detector(core::ModelKind::kAutoencoder, captures, eval));
    eval_config_ = new core::EvalConfig(eval);
  }
  static void TearDownTestSuite() {
    delete detector_;
    delete eval_config_;
  }

  /// A fresh inference replica per pipeline: the lifecycle loop REPLACES
  /// the installed detector on promotion, so sharing one object across
  /// runs would leak state between runs.
  static std::shared_ptr<detect::AnomalyDetector> fresh_detector() {
    std::shared_ptr<detect::AnomalyDetector> clone(
        (*detector_)->clone_for_inference());
    EXPECT_NE(clone, nullptr);
    return clone;
  }

  static std::unique_ptr<sim::BenignTrafficGenerator> schedule_benign(
      core::Pipeline& pipeline, std::uint64_t seed, int sessions,
      double arrival_mean_ms, double start_ms = 1.0) {
    sim::TrafficConfig traffic;
    traffic.num_sessions = sessions;
    traffic.arrival_mean = SimDuration::from_ms(arrival_mean_ms);
    traffic.seed = seed;
    traffic.start = SimTime::from_ms(start_ms);
    auto generator = std::make_unique<sim::BenignTrafficGenerator>(
        &pipeline.testbed(), traffic);
    generator->schedule_all();
    return generator;
  }

  /// Lifecycle knobs sized so a seeded two-phase benign run reliably walks
  /// the full state machine: a sensitive drift threshold (the phase-2
  /// arrival profile shifts the score distribution only modestly), a small
  /// retrain batch, and a loose gate (the candidate is a gentle fine-tune
  /// of the active model; the gate's job here is to be exercised, not to
  /// be paranoid).
  static lifecycle::LifecycleConfig e2e_lifecycle() {
    lifecycle::LifecycleConfig config;
    config.enabled = true;
    config.drift.baseline_min = 48;
    config.drift.min_samples = 32;
    config.drift.divergence_threshold = 0.05;
    config.ring.capacity = 256;
    config.ring.outlier_quantile = 95.0;
    config.retrain.min_windows = 24;
    config.retrain.tune.epochs = 2;
    config.gate.min_windows = 16;
    config.gate.max_benign_flag_rate = 0.5;
    config.gate.max_mean_error_ratio = 10.0;
    config.gate.min_anomaly_agreement = 0.0;
    return config;
  }

  static std::shared_ptr<detect::AnomalyDetector>* detector_;
  static core::EvalConfig* eval_config_;
};

std::shared_ptr<detect::AnomalyDetector>* LifecycleE2eTest::detector_ =
    nullptr;
core::EvalConfig* LifecycleE2eTest::eval_config_ = nullptr;

/// Everything a seeded lifecycle run can externalize, byte-for-byte.
struct LifecycleSnapshot {
  std::string prometheus;
  std::string json;
  std::string stats_text;
  std::string incident_report;
};

TEST_F(LifecycleE2eTest, DriftRetrainPromoteIsShardCountInvariant) {
  // The determinism oracle extended to the model lifecycle: with drift
  // detection, retraining, shadow scoring, and hot-swap promotion all
  // active, every export — including the lifecycle event log inside the
  // incident export — is byte-identical at 1, 2 and 4 RIC shards.
  auto run = [&](std::size_t shards) {
    core::PipelineConfig config;
    config.analyzer.model = "ChatGPT-4o";
    config.mitigation.enabled = true;
    config.lifecycle = e2e_lifecycle();
    config.ric_shards = shards;
    core::Pipeline pipeline(config);
    EXPECT_EQ(pipeline.ric_shards(), shards);
    pipeline.install_detector(
        fresh_detector(), detect::FeatureEncoder(eval_config_->features));
    // Injected drift: phase 1 establishes the baseline at a 60 ms arrival
    // cadence; phase 2 switches the traffic mix to a slower cadence, which
    // shifts the benign score distribution the drift detector watches.
    auto phase1 = schedule_benign(pipeline, 99, 12, 60.0, 1.0);
    auto phase2 = schedule_benign(pipeline, 101, 12, 150.0, 4000.0);
    pipeline.run_for(SimDuration::from_s(10));
    pipeline.finalize();

    lifecycle::LifecycleXapp& cycle = *pipeline.lifecycle();
    EXPECT_GT(cycle.windows_observed(), 0u);
    EXPECT_GE(cycle.drift_events(), 1u) << "injected drift must be detected";
    EXPECT_GE(cycle.retrains(), 1u) << "drift must trigger a retrain";
    EXPECT_GE(cycle.promotions(), 1u) << "the candidate must be promoted";
    EXPECT_GE(cycle.active_version(), 2u)
        << "the hot-swap must move past the bootstrap version";
    EXPECT_EQ(cycle.models_rejected(), 0u);

    LifecycleSnapshot snap;
    snap.prometheus = obs::render_prometheus(pipeline.metrics());
    snap.json = obs::render_json(pipeline.metrics(), &pipeline.tracer());
    snap.stats_text = pipeline.stats().to_text();
    snap.incident_report = core::incident_report(pipeline);
    return snap;
  };

  LifecycleSnapshot reference = run(1);
  // The lifecycle is visible in the operator-facing exports.
  EXPECT_NE(reference.prometheus.find("xsec_lifecycle_promotions"),
            std::string::npos);
  EXPECT_NE(reference.stats_text.find("Model lifecycle:"), std::string::npos);
  for (const char* needle : {"bootstrap:", "drift:", "retrain:", "promote:"})
    EXPECT_NE(reference.incident_report.find(needle), std::string::npos)
        << needle;
  for (std::size_t shards : {2u, 4u}) {
    SCOPED_TRACE(std::to_string(shards) + " shards");
    LifecycleSnapshot sharded = run(shards);
    EXPECT_EQ(sharded.prometheus, reference.prometheus);
    EXPECT_EQ(sharded.json, reference.json);
    EXPECT_EQ(sharded.stats_text, reference.stats_text);
    EXPECT_EQ(sharded.incident_report, reference.incident_report);
  }
}

TEST_F(LifecycleE2eTest, TamperedPushedModelIsRejectedAndNeverServes) {
  core::PipelineConfig config;
  config.analyzer.model = "ChatGPT-4o";
  config.lifecycle = e2e_lifecycle();
  // No retrain interference: this run only exercises the push path.
  config.lifecycle.drift.divergence_threshold = 1.1;
  core::Pipeline pipeline(config);
  std::vector<std::string> reviews;
  pipeline.ric().router().subscribe(
      oran::kMtHumanReview, [&reviews](const oran::RoutedMessage& m) {
        reviews.emplace_back(m.payload.begin(), m.payload.end());
      });
  pipeline.install_detector(fresh_detector(),
                            detect::FeatureEncoder(eval_config_->features));
  auto traffic = schedule_benign(pipeline, 99, 6, 60.0);
  pipeline.run_for(SimDuration::from_s(2));

  lifecycle::LifecycleXapp& cycle = *pipeline.lifecycle();
  ASSERT_EQ(cycle.active_version(), 1u) << "bootstrap must have happened";
  oran::Sdl& sdl = pipeline.ric().sdl();
  Bytes wrapped = *sdl.get("model", ModelStore::version_key(1));

  // The analyzer escalates contradictory verdicts over the same queue;
  // only count reviews the model rejection adds.
  const std::size_t reviews_before = reviews.size();

  // An attacker flips one weight bit in an otherwise valid pushed update.
  Bytes tampered = wrapped;
  tampered[wrapped.size() / 2] ^= 0x04;
  EXPECT_EQ(cycle.submit_candidate(tampered), 0u);
  EXPECT_FALSE(cycle.shadowing()) << "a rejected model must never score";
  EXPECT_GE(cycle.models_rejected(), 1u);
  ASSERT_EQ(reviews.size(), reviews_before + 1)
      << "rejection must escalate to human review";
  EXPECT_NE(reviews.back().find("rejected"), std::string::npos);

  // A truncated push is equally dead on arrival.
  EXPECT_EQ(cycle.submit_candidate(
                Bytes(wrapped.begin(), wrapped.begin() + wrapped.size() / 3)),
            0u);
  EXPECT_FALSE(cycle.shadowing());

  // The active model keeps serving, untouched: same version, verdict path
  // still live, and no promotion ever happened.
  pipeline.run_for(SimDuration::from_s(1));
  pipeline.finalize();
  EXPECT_EQ(cycle.active_version(), 1u);
  EXPECT_EQ(cycle.promotions(), 0u);
  EXPECT_GT(cycle.windows_observed(), 0u);

  // The security events are in the incident export and the metrics.
  std::string report = core::incident_report(pipeline);
  EXPECT_NE(report.find("security: pushed model update rejected"),
            std::string::npos);
  const obs::Counter* counter =
      pipeline.metrics().find_counter("lifecycle.model_rejected");
  ASSERT_NE(counter, nullptr);
  EXPECT_GE(counter->value(), 2u);
}

TEST_F(LifecycleE2eTest, PushedCandidatePromotesAndRollsBackOneStep) {
  core::PipelineConfig config;
  config.analyzer.model = "ChatGPT-4o";
  config.lifecycle = e2e_lifecycle();
  config.lifecycle.drift.divergence_threshold = 1.1;  // no retrain noise
  config.lifecycle.auto_promote = false;  // operator drives this scenario
  core::Pipeline pipeline(config);
  pipeline.install_detector(fresh_detector(),
                            detect::FeatureEncoder(eval_config_->features));
  auto traffic = schedule_benign(pipeline, 99, 10, 60.0);
  pipeline.run_for(SimDuration::from_s(2));

  lifecycle::LifecycleXapp& cycle = *pipeline.lifecycle();
  ASSERT_EQ(cycle.active_version(), 1u);

  // A legitimate pushed update: the active model's state wrapped in a
  // fresh store envelope (what an SMO training rApp would produce).
  oran::Sdl scratch;
  ModelStore staging(&scratch);
  auto state = cycle.store().load(1);
  ASSERT_TRUE(state) << state.error().message;
  staging.put(state.value());
  Bytes pushed = *scratch.get(staging.ns(), ModelStore::version_key(1));

  const std::uint32_t candidate = cycle.submit_candidate(pushed);
  EXPECT_EQ(candidate, 2u);
  EXPECT_TRUE(cycle.shadowing());

  // Shadow for a while, then the operator promotes.
  pipeline.run_for(SimDuration::from_s(1));
  cycle.promote_now();
  pipeline.run_for(SimDuration::from_ms(100));
  EXPECT_EQ(cycle.active_version(), 2u);
  EXPECT_EQ(cycle.promotions(), 1u);
  EXPECT_FALSE(cycle.shadowing());
  EXPECT_EQ(cycle.store().previous_version(), 1u);

  // One-step rollback restores the prior version into MobiWatch.
  EXPECT_TRUE(cycle.rollback());
  EXPECT_EQ(cycle.active_version(), 1u);
  EXPECT_EQ(cycle.store().previous_version(), 2u);

  pipeline.run_for(SimDuration::from_s(1));
  pipeline.finalize();
  EXPECT_GT(cycle.windows_observed(), 0u) << "the loop keeps serving";

  // Promotion and rollback are both visible in metrics and the export.
  const obs::Counter* rollbacks =
      pipeline.metrics().find_counter("lifecycle.rollbacks");
  ASSERT_NE(rollbacks, nullptr);
  EXPECT_EQ(rollbacks->value(), 1u);
  std::string report = core::incident_report(pipeline);
  EXPECT_NE(report.find("promote: v00000002"), std::string::npos) << report;
  EXPECT_NE(report.find("rollback: reverted to v00000001"), std::string::npos);
}

}  // namespace
}  // namespace xsec
