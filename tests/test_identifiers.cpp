// Unit tests for cellular identifiers (src/ran/identifiers.*).
#include <gtest/gtest.h>

#include <set>

#include "ran/identifiers.hpp"
#include "ran/ue.hpp"  // make_suci / deconceal_suci

namespace xsec::ran {
namespace {

TEST(Rnti, Formatting) {
  EXPECT_EQ(Rnti{0x5F}.str(), "0x005F");
  EXPECT_EQ(Rnti{0xFFEF}.str(), "0xFFEF");
}

TEST(STmsi, PackRoundTrip) {
  STmsi s{0x3FF, 0x3F, 0xDEADBEEF};
  STmsi back = STmsi::from_packed(s.packed());
  EXPECT_EQ(back, s);
}

TEST(STmsi, PackedFieldsDoNotOverlap) {
  STmsi a{1, 0, 0};
  STmsi b{0, 1, 0};
  STmsi c{0, 0, 1};
  EXPECT_NE(a.packed(), b.packed());
  EXPECT_NE(b.packed(), c.packed());
  EXPECT_EQ(c.packed(), 1u);
}

TEST(Plmn, TestNetworkString) {
  EXPECT_EQ(Plmn::test_network().str(), "001/01");
}

TEST(Supi, ImsiFormatting) {
  Supi supi{Plmn::test_network(), 2089900001ULL};
  EXPECT_EQ(supi.str(), "imsi-001012089900001");
}

TEST(Supi, Ordering) {
  Supi a{Plmn::test_network(), 1};
  Supi b{Plmn::test_network(), 2};
  EXPECT_LT(a, b);
}

TEST(Guti, StringContainsParts) {
  Guti guti{Plmn::test_network(), 2, STmsi{1, 0, 0xABCD}};
  std::string s = guti.str();
  EXPECT_NE(s.find("001/01"), std::string::npos);
  EXPECT_NE(s.find("r2"), std::string::npos);
}

TEST(RntiAllocator, AllocatesUniqueValues) {
  RntiAllocator alloc(Rng{1});
  std::set<std::uint16_t> seen;
  for (int i = 0; i < 500; ++i) {
    auto rnti = alloc.allocate();
    ASSERT_TRUE(rnti.has_value());
    EXPECT_GE(rnti->value, Rnti::kMinCRnti);
    EXPECT_LE(rnti->value, Rnti::kMaxCRnti);
    EXPECT_TRUE(seen.insert(rnti->value).second) << "duplicate RNTI";
  }
  EXPECT_EQ(alloc.in_use(), 500u);
}

TEST(RntiAllocator, ReleaseAllowsReuse) {
  RntiAllocator alloc(Rng{2});
  auto rnti = alloc.allocate();
  ASSERT_TRUE(rnti.has_value());
  EXPECT_EQ(alloc.in_use(), 1u);
  alloc.release(*rnti);
  EXPECT_EQ(alloc.in_use(), 0u);
}

TEST(RntiAllocator, ReleaseUnknownIsNoop) {
  RntiAllocator alloc(Rng{3});
  alloc.release(Rnti{0x1234});
  EXPECT_EQ(alloc.in_use(), 0u);
}

// --- SUCI concealment ---------------------------------------------------

TEST(Suci, ProtectedSchemeConcealsMsin) {
  Supi supi{Plmn::test_network(), 2089900005ULL};
  Suci suci = make_suci(supi, /*nonce=*/1234);
  EXPECT_FALSE(suci.is_null_scheme());
  EXPECT_NE(suci.concealed & ((1ULL << 40) - 1), supi.msin);
  EXPECT_EQ(deconceal_suci(suci), supi.msin);
}

TEST(Suci, DifferentNoncesGiveUnlinkableSucis) {
  Supi supi{Plmn::test_network(), 2089900005ULL};
  Suci a = make_suci(supi, 1);
  Suci b = make_suci(supi, 2);
  EXPECT_NE(a.concealed, b.concealed);
  EXPECT_EQ(deconceal_suci(a), deconceal_suci(b));
}

TEST(Suci, NullSchemeIsPlaintext) {
  Supi supi{Plmn::test_network(), 2089900005ULL};
  Suci suci = make_suci(supi, 99, /*null_scheme=*/true);
  EXPECT_TRUE(suci.is_null_scheme());
  EXPECT_EQ(suci.concealed, supi.msin);  // the MSIN is on the air
  EXPECT_EQ(deconceal_suci(suci), supi.msin);
}

TEST(Suci, NullSchemeVisibleInString) {
  Supi supi{Plmn::test_network(), 42};
  EXPECT_NE(make_suci(supi, 1, true).str().find("-0-"), std::string::npos);
  EXPECT_NE(make_suci(supi, 1, false).str().find("-1-"), std::string::npos);
}

TEST(Suci, DeconcealRequiresMatchingPlmn) {
  Supi supi{Plmn::test_network(), 2089900005ULL};
  Suci suci = make_suci(supi, 7);
  suci.plmn = Plmn{310, 410};  // different home network key
  EXPECT_NE(deconceal_suci(suci), supi.msin);
}

}  // namespace
}  // namespace xsec::ran
