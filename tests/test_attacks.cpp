// Attack implementation tests: each of the five attacks produces its
// documented telemetry footprint and ground-truth labels on a live testbed.
#include <gtest/gtest.h>

#include "attacks/attack.hpp"
#include "attacks/interceptors.hpp"
#include "core/datasets.hpp"
#include "llm/expert.hpp"

namespace xsec::attacks {
namespace {

using mobiflow::vocab::MsgType;

/// Runs one attack with light background traffic and returns the labeled
/// trace.
mobiflow::Trace run_attack(Attack& attack, std::uint64_t seed = 9) {
  core::ScenarioConfig config;
  config.testbed.seed = seed;
  config.traffic.seed = seed ^ 0xFF;
  config.traffic.num_sessions = 8;
  config.traffic.arrival_mean = SimDuration::from_ms(60);
  config.run_time = SimDuration::from_s(3);
  return core::collect_attack(attack, config, SimTime::from_ms(200));
}

TEST(Registry, FiveAttacksInTable3Order) {
  auto attacks = make_all_attacks();
  ASSERT_EQ(attacks.size(), 5u);
  EXPECT_EQ(attacks[0]->id(), "bts_dos");
  EXPECT_EQ(attacks[1]->id(), "blind_dos");
  EXPECT_EQ(attacks[2]->id(), "uplink_id_extraction");
  EXPECT_EQ(attacks[3]->id(), "downlink_id_extraction");
  EXPECT_EQ(attacks[4]->id(), "null_cipher");
  for (const auto& attack : attacks) {
    EXPECT_FALSE(attack->display_name().empty());
    EXPECT_FALSE(attack->citation().empty());
  }
}

TEST(BtsDos, FloodsIncompleteConnections) {
  auto attack = make_bts_dos(8);
  mobiflow::Trace trace = run_attack(*attack);
  EXPECT_GT(trace.malicious_count(), 20u);

  // The malicious records contain >= 8 setup requests and no
  // authentication responses.
  int setups = 0, auth_responses = 0;
  for (const auto& entry : trace.entries()) {
    if (!entry.malicious) continue;
    if (entry.record.msg == MsgType::kRrcSetupRequest) ++setups;
    if (entry.record.msg == MsgType::kAuthenticationResponse)
      ++auth_responses;
  }
  EXPECT_GE(setups, 8);
  EXPECT_EQ(auth_responses, 0);

  // The expert recognizes the storm in the attack region.
  auto stats = llm::extract_stats(trace);
  auto evidence = llm::extract_evidence(stats);
  bool storm = false;
  for (const auto& e : evidence)
    if (e.kind == llm::SignatureKind::kSignalingStorm) storm = true;
  EXPECT_TRUE(storm);
}

TEST(BtsDos, ExhaustsSmallAdmissionTable) {
  // With a small context table, the flood denies service to later UEs.
  sim::Testbed testbed([] {
    sim::TestbedConfig config;
    config.gnb.max_ue_contexts = 4;
    config.gnb.context_setup_timeout = SimDuration::from_s(2);
    return config;
  }());
  auto attack = make_bts_dos(8, SimDuration::from_ms(2));
  attack->launch(testbed, SimTime::from_ms(1));
  // A legitimate UE arrives during the flood.
  ran::UeConfig victim;
  victim.supi = ran::Supi{ran::Plmn::test_network(), 123};
  victim.seed = 3;
  testbed.add_ue(victim, SimTime::from_ms(60));
  testbed.run_for(SimDuration::from_ms(500));
  EXPECT_GT(testbed.gnb().rejected_connections(), 0u);
  EXPECT_EQ(testbed.amf().registered_count(), 0u);  // victim denied
}

TEST(PagingSniffer, HarvestsOnlyBroadcastPaging) {
  PagingSniffer sniffer;
  ran::AirFrame paging;
  paging.uplink = false;
  paging.radio_tag = 0;
  paging.rrc_wire = ran::encode_rrc(ran::RrcMessage{ran::Paging{0xABCD}});
  auto passed = sniffer.on_downlink(paging);
  ASSERT_TRUE(passed.has_value());  // passive: never modifies traffic
  EXPECT_EQ(passed->rrc_wire, paging.rrc_wire);
  // Dedicated (non-broadcast) traffic is not harvested.
  ran::AirFrame dedicated = paging;
  dedicated.radio_tag = 7;
  sniffer.on_downlink(dedicated);
  ASSERT_EQ(sniffer.sniffed_tmsis().size(), 1u);
  EXPECT_EQ(sniffer.sniffed_tmsis()[0], 0xABCDu);
}

TEST(BlindDos, ReplaysVictimTmsiAcrossSessions) {
  auto attack = make_blind_dos(4);
  mobiflow::Trace trace = run_attack(*attack);
  ASSERT_GT(trace.malicious_count(), 0u);
  // The attack chain starts from the paging broadcast the sniffer used.
  bool saw_paging = false;
  for (const auto& entry : trace.entries())
    if (entry.record.msg == MsgType::kPaging) saw_paging = true;
  EXPECT_TRUE(saw_paging);

  // Find the replayed TMSI: presented by multiple UE contexts in uplink.
  auto stats = llm::extract_stats(trace);
  EXPECT_FALSE(stats.replayed_tmsis.empty());
  // Authentication fails for the rogues (they lack the victim's key).
  int failures = 0;
  for (const auto& entry : trace.entries())
    if (entry.malicious && entry.record.msg == MsgType::kAuthenticationFailure)
      ++failures;
  EXPECT_GE(failures, 1);
}

TEST(UplinkIdExtraction, DisclosesPlaintextSupiInCompliantFlow) {
  auto attack = make_uplink_id_extraction();
  mobiflow::Trace trace = run_attack(*attack);
  ASSERT_EQ(trace.malicious_count(), 1u);
  const mobiflow::Record* disclosure = nullptr;
  for (const auto& entry : trace.entries())
    if (entry.malicious) disclosure = &entry.record;
  ASSERT_NE(disclosure, nullptr);
  EXPECT_EQ(disclosure->msg, MsgType::kRegistrationRequest);
  EXPECT_EQ(disclosure->supi_plain, "imsi-001019970000000");
  // The message sequence around it stays standard-compliant: the victim
  // still completes registration.
  auto stats = llm::extract_stats(trace);
  EXPECT_EQ(stats.out_of_order_identity_ues.size(), 0u);
  EXPECT_GT(stats.null_scheme_registrations, 0u);
}

TEST(DownlinkIdExtraction, ProducesOutOfOrderIdentityResponse) {
  auto attack = make_downlink_id_extraction();
  mobiflow::Trace trace = run_attack(*attack);
  ASSERT_GE(trace.malicious_count(), 1u);
  const mobiflow::Record* disclosure = nullptr;
  for (const auto& entry : trace.entries())
    if (entry.malicious) disclosure = &entry.record;
  ASSERT_NE(disclosure, nullptr);
  EXPECT_EQ(disclosure->msg, MsgType::kIdentityResponse);
  EXPECT_EQ(disclosure->supi_plain, "imsi-001019960000000");

  auto stats = llm::extract_stats(trace);
  EXPECT_FALSE(stats.out_of_order_identity_ues.empty());
}

TEST(DownlinkIdExtraction, InterceptorIsOneShotAndTargeted) {
  DownlinkIdentityOverwriter interceptor;
  interceptor.arm();
  interceptor.set_target_tag(5);

  auto auth_frame = [](std::uint64_t tag) {
    ran::AirFrame frame;
    frame.uplink = false;
    frame.radio_tag = tag;
    frame.rnti = ran::Rnti{0x99};
    frame.rrc_wire = ran::encode_rrc(ran::RrcMessage{
        ran::DlInformationTransfer{ran::encode_nas(
            ran::NasMessage{ran::AuthenticationRequest{0, 1, 2}})}});
    return frame;
  };

  // Wrong tag: passes through untouched.
  auto untouched = interceptor.on_downlink(auth_frame(3));
  ASSERT_TRUE(untouched.has_value());
  EXPECT_FALSE(interceptor.fired());

  // Target tag: overwritten with an IdentityRequest.
  auto overwritten = interceptor.on_downlink(auth_frame(5));
  ASSERT_TRUE(overwritten.has_value());
  EXPECT_TRUE(interceptor.fired());
  auto rrc = ran::decode_rrc(overwritten->rrc_wire);
  ASSERT_TRUE(rrc.ok());
  auto nas = ran::decode_nas(
      std::get<ran::DlInformationTransfer>(rrc.value()).dedicated_nas);
  ASSERT_TRUE(nas.ok());
  EXPECT_TRUE(std::holds_alternative<ran::IdentityRequest>(nas.value()));

  // One-shot: the next frame passes through.
  auto second = interceptor.on_downlink(auth_frame(5));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->rrc_wire, auth_frame(5).rrc_wire);
}

TEST(NullCipher, DowngradesSessionToNullAlgorithms) {
  auto attack = make_null_cipher();
  mobiflow::Trace trace = run_attack(*attack);
  ASSERT_GT(trace.malicious_count(), 0u);
  bool saw_null_smc = false;
  for (const auto& entry : trace.entries()) {
    if (entry.record.msg == MsgType::kSecurityModeCommand &&
        entry.record.cipher_alg == mobiflow::vocab::CipherAlg::kNea0)
      saw_null_smc = true;
    if (entry.malicious)
      EXPECT_EQ(entry.record.cipher_alg, mobiflow::vocab::CipherAlg::kNea0);
  }
  EXPECT_TRUE(saw_null_smc);
  auto stats = llm::extract_stats(trace);
  EXPECT_FALSE(stats.null_cipher_ues.empty());
}

TEST(NullCipher, VictimRegistersDespiteDowngrade) {
  // The attack is a silent downgrade: the session completes, unprotected.
  sim::Testbed testbed;
  auto attack = make_null_cipher();
  attack->launch(testbed, SimTime::from_ms(1));
  testbed.run_for(SimDuration::from_s(2));
  EXPECT_EQ(testbed.amf().registered_count(), 1u);
}

TEST(CapabilitySpoofing, RewritesRegistrationCapabilities) {
  CapabilityBiddingDown interceptor;
  interceptor.arm();

  ran::RegistrationRequest reg;
  reg.capabilities = ran::SecurityCapabilities{0b1111, 0b1110};
  ran::RrcSetupComplete complete;
  complete.dedicated_nas = ran::encode_nas(ran::NasMessage{reg});
  ran::AirFrame frame;
  frame.uplink = true;
  frame.rnti = ran::Rnti{0x42};
  frame.radio_tag = 1;
  frame.rrc_wire = ran::encode_rrc(ran::RrcMessage{complete});

  auto spoofed = interceptor.on_uplink(frame);
  ASSERT_TRUE(spoofed.has_value());
  EXPECT_TRUE(interceptor.fired());
  auto rrc = ran::decode_rrc(spoofed->rrc_wire);
  auto nas = ran::decode_nas(
      std::get<ran::RrcSetupComplete>(rrc.value()).dedicated_nas);
  const auto& rewritten = std::get<ran::RegistrationRequest>(nas.value());
  EXPECT_EQ(rewritten.capabilities.nea_mask, 0b0001);
  EXPECT_EQ(rewritten.capabilities.nia_mask, 0b0001);
}

TEST(GroundTruth, BenignBackgroundNeverLabeled) {
  // No attack: collect_benign labels nothing.
  core::ScenarioConfig config;
  config.traffic.num_sessions = 10;
  config.traffic.seed = 31;
  config.run_time = SimDuration::from_s(2);
  mobiflow::Trace trace = core::collect_benign(config);
  EXPECT_GT(trace.size(), 0u);
  EXPECT_EQ(trace.malicious_count(), 0u);
}

}  // namespace
}  // namespace xsec::attacks
