// Transport-layer tests: frame codec properties (every truncation, every
// bit flip, reassembly at arbitrary split points), the three channel
// backends (in-process / Unix-domain socket / shared-memory ring) behind
// one contract, environment-variable backend selection, the zero-
// allocation guarantee of the warmed receive hot path, and end-to-end
// backpressure: a paused reader pushes telemetry back into the agent's
// outage buffer and .mft spill, with nothing silently lost after resume.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <new>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/pipeline.hpp"
#include "mobiflow/record.hpp"
#include "oran/e2ap.hpp"
#include "oran/e2sm.hpp"
#include "sim/traffic.hpp"
#include "transport/channel.hpp"
#include "transport/frame.hpp"
#include "transport/link.hpp"
#include "transport/pump.hpp"

// --- Heap-allocation hook ---------------------------------------------
//
// Counts every operator-new in this binary so the allocation tests can
// assert that the warmed transport receive path performs zero heap
// allocations (mirrors the harness in test_dl.cpp).
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

// GCC pairs our malloc-backed operator new with the default delete at
// some call sites and warns; the pairing here is in fact consistent.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  ++g_heap_allocs;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_heap_allocs;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

namespace xsec {
namespace {

using transport::BackendKind;

Bytes make_payload(std::size_t n, std::uint8_t seed = 1) {
  Bytes p(n);
  for (std::size_t i = 0; i < n; ++i)
    p[i] = static_cast<std::uint8_t>(seed + i * 7);
  return p;
}

// --- Frame codec ------------------------------------------------------------

TEST(FrameCodec, RoundTripParsesExactPayload) {
  for (std::size_t n : {0u, 1u, 7u, 64u, 1500u}) {
    Bytes payload = make_payload(n);
    Bytes wire;
    transport::append_frame(wire, payload);
    ASSERT_EQ(wire.size(), transport::framed_size(n));
    std::size_t consumed = 0;
    std::span<const std::uint8_t> out;
    ASSERT_EQ(transport::parse_frame(wire, consumed, out),
              transport::FrameStatus::kOk);
    EXPECT_EQ(consumed, wire.size());
    EXPECT_EQ(Bytes(out.begin(), out.end()), payload);
  }
}

TEST(FrameCodec, EveryTruncationReportsNeedMoreNotGarbage) {
  Bytes payload = make_payload(37);
  Bytes wire;
  transport::append_frame(wire, payload);
  for (std::size_t len = 0; len < wire.size(); ++len) {
    SCOPED_TRACE("prefix length " + std::to_string(len));
    std::size_t consumed = 0;
    std::span<const std::uint8_t> out;
    auto status = transport::parse_frame(
        std::span<const std::uint8_t>(wire.data(), len), consumed, out);
    // A valid frame prefix must never parse as a frame, and must never be
    // misdiagnosed as corruption (that would discard good bytes).
    EXPECT_EQ(status, transport::FrameStatus::kNeedMore);
    EXPECT_EQ(consumed, 0u);
  }
}

TEST(FrameCodec, EveryBitFlipIsRejected) {
  Bytes payload = make_payload(24);
  Bytes wire;
  transport::append_frame(wire, payload);
  for (std::size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes flipped = wire;
      flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);
      std::size_t consumed = 0;
      std::span<const std::uint8_t> out;
      auto status = transport::parse_frame(flipped, consumed, out);
      // Magic flips -> kBadMagic; length flips -> kBadLength, kNeedMore
      // (larger length, waiting for bytes that never come) or
      // kBadChecksum; payload/checksum flips -> kBadChecksum. The one
      // outcome that must never happen is a successful parse.
      EXPECT_NE(status, transport::FrameStatus::kOk)
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(FrameCodec, AssemblerReassemblesAtEveryChunkSize) {
  std::vector<Bytes> payloads = {make_payload(3, 11), make_payload(900, 29),
                                 Bytes{}, make_payload(65, 43)};
  Bytes stream;
  for (const Bytes& p : payloads) transport::append_frame(stream, p);

  for (std::size_t chunk = 1; chunk <= stream.size(); ++chunk) {
    SCOPED_TRACE("chunk size " + std::to_string(chunk));
    transport::FrameAssembler assembler;
    std::vector<Bytes> delivered;
    transport::FrameAssembler::Sink sink =
        [&](std::span<const std::uint8_t> payload, std::size_t) {
          delivered.emplace_back(payload.begin(), payload.end());
        };
    for (std::size_t off = 0; off < stream.size(); off += chunk) {
      std::size_t n = std::min(chunk, stream.size() - off);
      assembler.feed({stream.data() + off, n}, sink);
    }
    ASSERT_EQ(delivered.size(), payloads.size());
    for (std::size_t i = 0; i < payloads.size(); ++i)
      EXPECT_EQ(delivered[i], payloads[i]) << "frame " << i;
    EXPECT_EQ(assembler.buffered(), 0u);
  }
}

TEST(FrameCodec, AssemblerResynchronizesAfterCorruptFrame) {
  Bytes first = make_payload(40, 3);
  Bytes second = make_payload(52, 5);
  Bytes third = make_payload(28, 9);
  Bytes stream;
  transport::append_frame(stream, first);
  std::size_t second_start = stream.size();
  transport::append_frame(stream, second);
  std::size_t third_start = stream.size();
  transport::append_frame(stream, third);
  // Destroy the middle frame's magic: the assembler must skip forward one
  // byte at a time until the third frame's boundary and account for every
  // skipped byte through the corrupt hook.
  stream[second_start] = 0x00;

  transport::FrameAssembler assembler;
  std::size_t skipped = 0;
  assembler.set_corrupt_hook([&](std::size_t n) { skipped += n; });
  std::vector<Bytes> delivered;
  transport::FrameAssembler::Sink sink =
      [&](std::span<const std::uint8_t> payload, std::size_t) {
        delivered.emplace_back(payload.begin(), payload.end());
      };
  assembler.feed(stream, sink);

  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0], first);
  EXPECT_EQ(delivered[1], third);
  EXPECT_EQ(skipped, third_start - second_start);
}

// --- Channel backends -------------------------------------------------------

const BackendKind kAllBackends[] = {BackendKind::kInProcess,
                                    BackendKind::kUds, BackendKind::kShm};

TEST(TransportChannel, FifoOrderAndContentOnEveryBackend) {
  for (BackendKind kind : kAllBackends) {
    SCOPED_TRACE(std::string(transport::to_string(kind)));
    auto ch = transport::make_channel(kind, 64 * 1024);
    ASSERT_NE(ch, nullptr);
    EXPECT_EQ(ch->kind(), kind);
    std::vector<Bytes> delivered;
    ch->set_sink([&](std::span<const std::uint8_t> p) {
      delivered.emplace_back(p.begin(), p.end());
    });
    std::vector<Bytes> sent;
    std::size_t expected_pending = 0;
    for (int i = 0; i < 100; ++i) {
      sent.push_back(make_payload(1 + (i * 13) % 300,
                                  static_cast<std::uint8_t>(i)));
      ASSERT_TRUE(ch->send(sent.back()));
      expected_pending += transport::framed_size(sent.back().size());
      EXPECT_EQ(ch->pending_bytes(), expected_pending);
    }
    ch->pump();
    EXPECT_EQ(ch->pending_bytes(), 0u);
    ASSERT_EQ(delivered.size(), sent.size());
    for (std::size_t i = 0; i < sent.size(); ++i)
      EXPECT_EQ(delivered[i], sent[i]) << "frame " << i;
  }
}

TEST(TransportChannel, PausedReaderTripsBackpressureWithoutLoss) {
  for (BackendKind kind : kAllBackends) {
    SCOPED_TRACE(std::string(transport::to_string(kind)));
    auto ch = transport::make_channel(kind, 1024);
    ASSERT_NE(ch, nullptr);
    std::vector<Bytes> delivered;
    ch->set_sink([&](std::span<const std::uint8_t> p) {
      delivered.emplace_back(p.begin(), p.end());
    });
    ch->set_reader_paused(true);
    Bytes payload = make_payload(100);
    std::size_t accepted = 0;
    while (ch->send(payload)) ++accepted;
    EXPECT_GT(accepted, 0u);
    EXPECT_LE(ch->pending_bytes(), ch->capacity());
    // A paused reader means pump() must not deliver anything...
    ch->pump();
    EXPECT_TRUE(delivered.empty());
    // ...and resume must hand over every accepted frame, in order, with
    // nothing lost to the refused sends.
    ch->set_reader_paused(false);
    ch->pump();
    ASSERT_EQ(delivered.size(), accepted);
    for (const Bytes& d : delivered) EXPECT_EQ(d, payload);
    EXPECT_EQ(ch->pending_bytes(), 0u);
  }
}

TEST(TransportChannel, NestedSendDuringDeliveryStaysValid) {
  // Delivery side effects re-enter send() on the same channel (a control
  // chain reaching back through the transport). The span being delivered
  // must stay intact across the nested send, and the nested frame must be
  // delivered by the outer pump.
  for (BackendKind kind : kAllBackends) {
    SCOPED_TRACE(std::string(transport::to_string(kind)));
    auto ch = transport::make_channel(kind, 64 * 1024);
    ASSERT_NE(ch, nullptr);
    Bytes first = make_payload(200, 17);
    Bytes nested = make_payload(150, 91);
    std::vector<Bytes> delivered;
    ch->set_sink([&](std::span<const std::uint8_t> p) {
      if (delivered.empty()) {
        ASSERT_TRUE(ch->send(nested));  // re-entrant send mid-delivery
        ch->pump();                     // nested pump must fold into ours
      }
      delivered.emplace_back(p.begin(), p.end());
    });
    ASSERT_TRUE(ch->send(first));
    ch->pump();
    ASSERT_EQ(delivered.size(), 2u);
    EXPECT_EQ(delivered[0], first);
    EXPECT_EQ(delivered[1], nested);
    EXPECT_EQ(ch->pending_bytes(), 0u);
  }
}

TEST(TransportChannel, ShmRingSurvivesManyWraparounds) {
  // Odd-sized frames against a small ring force the head to cross the
  // physical mirror boundary many times; every payload must come back
  // intact (the double mapping keeps each frame virtually contiguous).
  auto ch = transport::make_channel(BackendKind::kShm, 4096);
  ASSERT_NE(ch, nullptr);
  std::size_t checked = 0;
  Bytes expected;
  ch->set_sink([&](std::span<const std::uint8_t> p) {
    EXPECT_EQ(Bytes(p.begin(), p.end()), expected);
    ++checked;
  });
  for (int i = 0; i < 4000; ++i) {
    expected = make_payload(1 + (i * 37) % 1200,
                            static_cast<std::uint8_t>(i * 5));
    ASSERT_TRUE(ch->send(expected)) << "iteration " << i;
    ch->pump();
  }
  EXPECT_EQ(checked, 4000u);
}

// --- Backend selection ------------------------------------------------------

TEST(TransportEnv, ParseBackendAcceptsExactlyTheThreeNames) {
  EXPECT_EQ(transport::parse_backend("inproc").value(),
            BackendKind::kInProcess);
  EXPECT_EQ(transport::parse_backend("uds").value(), BackendKind::kUds);
  EXPECT_EQ(transport::parse_backend("shm").value(), BackendKind::kShm);
  for (const char* bad : {"", "SHM", "tcp", "uds ", "inproc,shm"}) {
    SCOPED_TRACE(std::string("\"") + bad + "\"");
    EXPECT_FALSE(transport::parse_backend(bad).ok());
  }
}

TEST(TransportEnv, ResolveBackendConfigWinsEnvFillsDefault) {
  unsetenv("XSEC_E2_TRANSPORT");
  EXPECT_EQ(transport::resolve_backend(""), BackendKind::kInProcess);
  EXPECT_EQ(transport::resolve_backend("uds"), BackendKind::kUds);
  // A malformed config string warns and falls back instead of aborting.
  EXPECT_EQ(transport::resolve_backend("bogus"), BackendKind::kInProcess);
  // The environment fills the default (one knob re-runs a default-configured
  // suite over a process-boundary backend), but an explicit config wins —
  // the same precedence XSEC_RIC_SHARDS uses, so env sweeps never unpin a
  // test that selected its backend deliberately.
  setenv("XSEC_E2_TRANSPORT", "shm", 1);
  EXPECT_EQ(transport::resolve_backend(""), BackendKind::kShm);
  EXPECT_EQ(transport::resolve_backend("uds"), BackendKind::kUds);
  // A malformed environment value warns and falls back to inproc.
  setenv("XSEC_E2_TRANSPORT", "carrier-pigeon", 1);
  EXPECT_EQ(transport::resolve_backend(""), BackendKind::kInProcess);
  unsetenv("XSEC_E2_TRANSPORT");
}

TEST(TransportEnv, PipelineHonorsConfigAndEnvironment) {
  unsetenv("XSEC_E2_TRANSPORT");
  core::PipelineConfig config;
  config.e2_transport = "uds";
  core::Pipeline from_config(config);
  EXPECT_EQ(from_config.e2_backend(), BackendKind::kUds);

  setenv("XSEC_E2_TRANSPORT", "shm", 1);
  core::Pipeline from_env{core::PipelineConfig{}};
  EXPECT_EQ(from_env.e2_backend(), BackendKind::kShm);
  // An explicit config beats the environment (XSEC_RIC_SHARDS precedence).
  core::Pipeline pinned(config);
  EXPECT_EQ(pinned.e2_backend(), BackendKind::kUds);
  unsetenv("XSEC_E2_TRANSPORT");

  core::Pipeline fallback{core::PipelineConfig{}};
  EXPECT_EQ(fallback.e2_backend(), BackendKind::kInProcess);
}

// --- Zero-allocation guarantees ---------------------------------------------

TEST(TransportZeroAlloc, WarmedChannelSendAndPumpDoNotAllocate) {
  for (BackendKind kind : kAllBackends) {
    SCOPED_TRACE(std::string(transport::to_string(kind)));
    auto ch = transport::make_channel(kind, 256 * 1024);
    ASSERT_NE(ch, nullptr);
    std::size_t delivered_bytes = 0;
    ch->set_sink([&](std::span<const std::uint8_t> p) {
      delivered_bytes += p.size();
    });
    Bytes payload = make_payload(480);
    // Warm-up: grow arenas/scratch buffers to their high-water capacity.
    for (int i = 0; i < 64; ++i) {
      ASSERT_TRUE(ch->send(payload));
      ch->pump();
    }
    delivered_bytes = 0;
    const std::uint64_t before = g_heap_allocs.load();
    for (int i = 0; i < 256; ++i) {
      ch->send(payload);
      ch->pump();
    }
    EXPECT_EQ(g_heap_allocs.load() - before, 0u)
        << "steady-state send+pump must not touch the heap";
    EXPECT_EQ(delivered_bytes, 256u * payload.size());
  }
}

TEST(TransportZeroAlloc, IndicationViewDecodePathDoesNotAllocate) {
  // The receive hot path after the channel: E2AP type sniff, zero-copy
  // indication view decode, row iteration, and per-row record decode.
  // Records without plaintext identities (the steady state) decode into
  // SSO-sized strings, so a warmed pass must be allocation-free.
  oran::e2sm::IndicationMessage message;
  for (int i = 0; i < 8; ++i) {
    mobiflow::Record record;
    record.timestamp_us = 1000 + i;
    record.gnb_id = 7;
    record.cell = 2;
    record.ue_id = 40 + i;
    record.rnti = static_cast<std::uint16_t>(100 + i);
    record.s_tmsi = 0xAB00 + i;
    message.rows.push_back(record.to_kv_bytes());
  }
  oran::e2sm::IndicationHeader header;
  header.collect_start_us = 1000;
  header.gnb_id = 7;
  header.cell = 2;
  oran::RicIndication indication;
  indication.request_id = {1, 1};
  indication.ran_function_id = oran::e2sm::kMobiFlowFunctionId;
  indication.action_id = 1;
  indication.sequence_number = 42;
  indication.sent_at_us = 2000;
  indication.type = oran::RicIndicationType::kReport;
  indication.header = oran::e2sm::encode_indication_header(header);
  indication.message = oran::e2sm::encode_indication_message(message);
  Bytes wire = oran::encode_e2ap(indication);
  std::span<const std::uint8_t> wire_span(wire.data(), wire.size());

  bool all_ok = true;
  std::uint64_t rnti_sum = 0;
  auto decode_pass = [&] {
    auto type = oran::e2ap_type(wire_span);
    all_ok &= type.ok() && type.value() == oran::E2apType::kIndication;
    auto view = oran::decode_indication_view(wire_span);
    all_ok &= view.ok();
    if (!view.ok()) return;
    oran::e2sm::RowCursor rows(view.value().message);
    while (auto row = rows.next()) {
      auto record = mobiflow::Record::from_kv_bytes(*row);
      all_ok &= record.ok();
      if (record.ok()) rnti_sum += record.value().rnti;
    }
    all_ok &= rows.ok();
  };
  decode_pass();  // warm-up
  ASSERT_TRUE(all_ok);
  rnti_sum = 0;
  const std::uint64_t before = g_heap_allocs.load();
  for (int i = 0; i < 100; ++i) decode_pass();
  EXPECT_EQ(g_heap_allocs.load() - before, 0u)
      << "warmed view-decode pass must not touch the heap";
  EXPECT_TRUE(all_ok);
  EXPECT_EQ(rnti_sum, 100u * (100 + 101 + 102 + 103 + 104 + 105 + 106 + 107));
}

// --- Pump mode selection ----------------------------------------------------

TEST(TransportPumpEnv, ParsePumpModeAcceptsExactlyTheTwoNames) {
  EXPECT_EQ(transport::parse_pump_mode("polled").value(),
            transport::PumpMode::kPolled);
  EXPECT_EQ(transport::parse_pump_mode("epoll").value(),
            transport::PumpMode::kEpoll);
  for (const char* bad : {"", "EPOLL", "poll", "epoll ", "polled,epoll"}) {
    SCOPED_TRACE(std::string("\"") + bad + "\"");
    EXPECT_FALSE(transport::parse_pump_mode(bad).ok());
  }
}

TEST(TransportPumpEnv, ResolvePumpModeConfigWinsEnvFillsDefault) {
  unsetenv("XSEC_E2_PUMP");
  EXPECT_EQ(transport::resolve_pump_mode(""), transport::PumpMode::kPolled);
  EXPECT_EQ(transport::resolve_pump_mode("epoll"),
            transport::PumpMode::kEpoll);
  EXPECT_EQ(transport::resolve_pump_mode("bogus"),
            transport::PumpMode::kPolled);
  setenv("XSEC_E2_PUMP", "epoll", 1);
  EXPECT_EQ(transport::resolve_pump_mode(""), transport::PumpMode::kEpoll);
  // An explicit config wins (XSEC_E2_TRANSPORT precedence).
  EXPECT_EQ(transport::resolve_pump_mode("polled"),
            transport::PumpMode::kPolled);
  setenv("XSEC_E2_PUMP", "select", 1);
  EXPECT_EQ(transport::resolve_pump_mode(""), transport::PumpMode::kPolled);
  unsetenv("XSEC_E2_PUMP");
}

TEST(TransportPumpEnv, PipelineHonorsPumpConfigAndEnvironment) {
  unsetenv("XSEC_E2_PUMP");
  core::PipelineConfig config;
  config.e2_pump = "epoll";
  core::Pipeline from_config(config);
  EXPECT_EQ(from_config.e2_pump_mode(), transport::PumpMode::kEpoll);
  EXPECT_NE(from_config.e2_pump(), nullptr);

  setenv("XSEC_E2_PUMP", "epoll", 1);
  core::Pipeline from_env{core::PipelineConfig{}};
  EXPECT_EQ(from_env.e2_pump_mode(), transport::PumpMode::kEpoll);
  // An explicit config beats the environment.
  core::PipelineConfig pinned_cfg;
  pinned_cfg.e2_pump = "polled";
  core::Pipeline pinned(pinned_cfg);
  EXPECT_EQ(pinned.e2_pump_mode(), transport::PumpMode::kPolled);
  EXPECT_EQ(pinned.e2_pump(), nullptr);
  unsetenv("XSEC_E2_PUMP");

  core::Pipeline fallback{core::PipelineConfig{}};
  EXPECT_EQ(fallback.e2_pump_mode(), transport::PumpMode::kPolled);
}

// --- Capacity env override --------------------------------------------------

TEST(TransportEnv, ResolveCapacityConfigWinsEnvStrictParse) {
  unsetenv("XSEC_E2_CAPACITY");
  EXPECT_EQ(transport::resolve_capacity(0), transport::kDefaultChannelCapacity);
  EXPECT_EQ(transport::resolve_capacity(2048), 2048u);
  setenv("XSEC_E2_CAPACITY", "8192", 1);
  EXPECT_EQ(transport::resolve_capacity(0), 8192u);
  // An explicit (non-zero) config wins over the environment.
  EXPECT_EQ(transport::resolve_capacity(2048), 2048u);
  // Strict parse: negatives, zero, trailing garbage, and absurd sizes are
  // rejected with a warning (same policy as XSEC_RIC_SHARDS).
  for (const char* bad : {"-1", "0", "4096x", " 4096", "", "9999999999999"}) {
    SCOPED_TRACE(std::string("\"") + bad + "\"");
    setenv("XSEC_E2_CAPACITY", bad, 1);
    EXPECT_EQ(transport::resolve_capacity(0),
              transport::kDefaultChannelCapacity);
  }
  unsetenv("XSEC_E2_CAPACITY");
}

TEST(TransportEnv, PipelineHonorsCapacityEnvironment) {
  unsetenv("XSEC_E2_CAPACITY");
  setenv("XSEC_E2_CAPACITY", "16384", 1);
  core::Pipeline from_env{core::PipelineConfig{}};
  EXPECT_EQ(from_env.e2_link_capacity(), 16384u);
  EXPECT_EQ(from_env.transport().link_capacity(), 16384u);
  // An explicit config beats the environment.
  core::PipelineConfig pinned_cfg;
  pinned_cfg.e2_link_capacity = 2048;
  core::Pipeline pinned(pinned_cfg);
  EXPECT_EQ(pinned.transport().link_capacity(), 2048u);
  unsetenv("XSEC_E2_CAPACITY");
}

// --- Event-driven pump ------------------------------------------------------

TEST(TransportPump, EpollDrainMatchesPolledDeliveryOnEveryBackend) {
  for (BackendKind kind : kAllBackends) {
    SCOPED_TRACE(std::string(transport::to_string(kind)));
    obs::Observability obs;
    auto pump = transport::EpollPump::create(&obs);
    ASSERT_NE(pump, nullptr);
    auto ch = transport::make_channel(kind, 256 * 1024);
    ASSERT_NE(ch, nullptr);
    pump->add(ch.get());
    EXPECT_EQ(ch->pump_owner(), pump.get());
    std::vector<Bytes> delivered;
    ch->set_sink([&](std::span<const std::uint8_t> p) {
      delivered.emplace_back(p.begin(), p.end());
    });
    std::vector<Bytes> sent;
    for (int i = 0; i < 50; ++i) {
      sent.push_back(make_payload(1 + (i * 29) % 400,
                                  static_cast<std::uint8_t>(i)));
      ASSERT_TRUE(ch->send(sent.back()));
    }
    EXPECT_TRUE(pump->has_dirty());
    pump->service();
    EXPECT_EQ(ch->pending_bytes(), 0u);
    EXPECT_FALSE(pump->has_dirty());
    ASSERT_EQ(delivered.size(), sent.size());
    for (std::size_t i = 0; i < sent.size(); ++i)
      EXPECT_EQ(delivered[i], sent[i]) << "frame " << i;
    pump->remove(ch.get());
    EXPECT_EQ(ch->pump_owner(), nullptr);
  }
}

TEST(TransportPump, PausedReaderSemanticsPreservedUnderEpoll) {
  for (BackendKind kind : kAllBackends) {
    SCOPED_TRACE(std::string(transport::to_string(kind)));
    obs::Observability obs;
    auto pump = transport::EpollPump::create(&obs);
    ASSERT_NE(pump, nullptr);
    auto ch = transport::make_channel(kind, 4096);
    ASSERT_NE(ch, nullptr);
    pump->add(ch.get());
    std::size_t delivered = 0;
    ch->set_sink([&](std::span<const std::uint8_t>) { ++delivered; });
    ch->set_reader_paused(true);
    Bytes payload = make_payload(120);
    std::size_t accepted = 0;
    while (ch->send(payload)) ++accepted;
    ASSERT_GT(accepted, 0u);
    pump->service();
    EXPECT_EQ(delivered, 0u) << "paused reader must not deliver";
    ch->set_reader_paused(false);
    pump->drain(ch.get());
    EXPECT_EQ(delivered, accepted);
    EXPECT_EQ(ch->pending_bytes(), 0u);
  }
}

TEST(TransportPump, NestedSendDuringEpollDrainStaysValid) {
  // Same re-entrancy contract as the polled NestedSendDuringDeliveryStaysValid
  // test, but through the staged-tx / batched-drain path.
  for (BackendKind kind : kAllBackends) {
    SCOPED_TRACE(std::string(transport::to_string(kind)));
    obs::Observability obs;
    auto pump = transport::EpollPump::create(&obs);
    ASSERT_NE(pump, nullptr);
    auto ch = transport::make_channel(kind, 64 * 1024);
    ASSERT_NE(ch, nullptr);
    pump->add(ch.get());
    Bytes first = make_payload(200, 17);
    Bytes nested = make_payload(150, 91);
    std::vector<Bytes> delivered;
    ch->set_sink([&](std::span<const std::uint8_t> p) {
      if (delivered.empty()) {
        ASSERT_TRUE(ch->send(nested));  // re-entrant send mid-delivery
        pump->drain(ch.get());          // nested drain must fold into ours
      }
      delivered.emplace_back(p.begin(), p.end());
    });
    ASSERT_TRUE(ch->send(first));
    pump->service();
    ASSERT_EQ(delivered.size(), 2u);
    EXPECT_EQ(delivered[0], first);
    EXPECT_EQ(delivered[1], nested);
    EXPECT_EQ(ch->pending_bytes(), 0u);
  }
}

TEST(TransportPump, BudgetedPumpDeliversExactlyTheBudgetOnEveryBackend) {
  // The satellite contract behind FramedLink::ready_for's bounded drain: a
  // budgeted pump delivers at most `max_frames` and leaves the rest queued
  // with exact pending accounting, on every backend, resumable mid-stream.
  for (BackendKind kind : kAllBackends) {
    SCOPED_TRACE(std::string(transport::to_string(kind)));
    auto ch = transport::make_channel(kind, 256 * 1024);
    ASSERT_NE(ch, nullptr);
    std::vector<Bytes> delivered;
    ch->set_sink([&](std::span<const std::uint8_t> p) {
      delivered.emplace_back(p.begin(), p.end());
    });
    std::vector<Bytes> sent;
    std::size_t total_framed = 0;
    for (int i = 0; i < 10; ++i) {
      sent.push_back(make_payload(50 + i, static_cast<std::uint8_t>(i)));
      ASSERT_TRUE(ch->send(sent.back()));
      total_framed += transport::framed_size(sent.back().size());
    }
    ch->pump(3);
    EXPECT_EQ(delivered.size(), 3u);
    std::size_t first3 = 0;
    for (int i = 0; i < 3; ++i)
      first3 += transport::framed_size(sent[i].size());
    EXPECT_EQ(ch->pending_bytes(), total_framed - first3);
    ch->pump(0);  // zero budget must deliver nothing
    EXPECT_EQ(delivered.size(), 3u);
    ch->pump();
    ASSERT_EQ(delivered.size(), sent.size());
    EXPECT_EQ(ch->pending_bytes(), 0u);
    for (std::size_t i = 0; i < sent.size(); ++i)
      EXPECT_EQ(delivered[i], sent[i]) << "frame " << i;
  }
}

TEST(TransportPump, WaitReadableSpinHitDoorbellAndIdleTimeout) {
  obs::Observability obs;
  auto pump = transport::EpollPump::create(&obs);
  ASSERT_NE(pump, nullptr);
  auto ch = transport::make_channel(BackendKind::kInProcess, 4096);
  ASSERT_NE(ch, nullptr);
  pump->add(ch.get());
  std::size_t delivered = 0;
  ch->set_sink([&](std::span<const std::uint8_t>) { ++delivered; });

  // Idle: no dirty work, nothing readable -> times out.
  EXPECT_FALSE(pump->wait_readable(0));
  EXPECT_GE(pump->idle_waits(), 1u);

  // Dirty fast path: a send marks the channel; no epoll needed.
  ASSERT_TRUE(ch->send(make_payload(32)));
  EXPECT_TRUE(pump->wait_readable(0));
  EXPECT_EQ(pump->service(), 1u);
  EXPECT_EQ(delivered, 1u);

  // Doorbell path: ring the eventfd externally; the wait must wake, and
  // service() finds nothing (spurious ring) but drains the bell so the
  // next wait times out again.
  const std::uint64_t one = 1;
  ASSERT_EQ(::write(pump->doorbell_fd_for_test(), &one, sizeof(one)),
            static_cast<ssize_t>(sizeof(one)));
  EXPECT_TRUE(pump->wait_readable(0));
  EXPECT_EQ(pump->service(), 0u);
  EXPECT_FALSE(pump->wait_readable(0));
}

TEST(TransportPump, UdsKernelReadinessVisibleThroughEpollWithoutDoorbell) {
  // Bytes flushed into the socketpair while the reader was paused are
  // kernel-side state the dirty list can't see after a drain attempt
  // clears it; the epoll fd sweep must still find them.
  obs::Observability obs;
  auto pump = transport::EpollPump::create(&obs);
  ASSERT_NE(pump, nullptr);
  auto ch = transport::make_channel(BackendKind::kUds, 64 * 1024);
  ASSERT_NE(ch, nullptr);
  pump->add(ch.get());
  std::size_t delivered = 0;
  ch->set_sink([&](std::span<const std::uint8_t>) { ++delivered; });
  ch->set_reader_paused(true);
  ASSERT_TRUE(ch->send(make_payload(64)));
  pump->service();  // flushes staged tx to the kernel; delivers nothing
  EXPECT_EQ(delivered, 0u);
  EXPECT_FALSE(pump->has_dirty()) << "paused drain must clear the dirty flag";
  ch->set_reader_paused(false);
  // No send since the pause: only the fd knows. wait_readable + service
  // must recover the frame purely from epoll readiness.
  EXPECT_TRUE(pump->wait_readable(0));
  EXPECT_EQ(pump->service(), 1u);
  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(ch->pending_bytes(), 0u);
}

TEST(TransportPump, UdsBatchedBurstCoalescesSyscalls) {
  // The perf claim, asserted: a 32-frame burst through the event-driven
  // pump (staged sends + one writev + large-buffer reads with short-read
  // stop) must enter the kernel far fewer times than the polled shape
  // (one send(2) per frame + reads until EAGAIN).
  constexpr int kBurst = 32;
  constexpr int kRounds = 8;
  Bytes payload = make_payload(120);

  auto polled = transport::make_channel(BackendKind::kUds, 1 << 20);
  ASSERT_NE(polled, nullptr);
  std::size_t polled_frames = 0;
  polled->set_sink([&](std::span<const std::uint8_t>) { ++polled_frames; });
  for (int r = 0; r < kRounds; ++r) {
    for (int i = 0; i < kBurst; ++i) ASSERT_TRUE(polled->send(payload));
    polled->pump();
  }
  ASSERT_EQ(polled_frames, static_cast<std::size_t>(kBurst * kRounds));

  obs::Observability obs;
  auto pump = transport::EpollPump::create(&obs);
  ASSERT_NE(pump, nullptr);
  auto batched = transport::make_channel(BackendKind::kUds, 1 << 20);
  ASSERT_NE(batched, nullptr);
  pump->add(batched.get());
  std::size_t batched_frames = 0;
  batched->set_sink([&](std::span<const std::uint8_t>) { ++batched_frames; });
  for (int r = 0; r < kRounds; ++r) {
    for (int i = 0; i < kBurst; ++i) ASSERT_TRUE(batched->send(payload));
    pump->drain(batched.get());
  }
  ASSERT_EQ(batched_frames, static_cast<std::size_t>(kBurst * kRounds));

  // Polled: >= 33 syscalls per burst (32 sends + reads). Event-driven:
  // one writev + one short read per burst = 2.
  EXPECT_GE(polled->io_syscalls(),
            static_cast<std::uint64_t>(kRounds * (kBurst + 1)));
  EXPECT_LE(batched->io_syscalls(), static_cast<std::uint64_t>(kRounds * 3));
  EXPECT_LT(batched->io_syscalls() * 8, polled->io_syscalls())
      << "coalesced I/O must be at least 8x fewer kernel entries";
  // And the host-registry instrumentation saw it: every drain was a
  // wakeup that delivered kBurst frames per <= 3 syscalls.
  EXPECT_EQ(pump->wakeups(), static_cast<std::uint64_t>(kRounds));
  const obs::Histogram* fps =
      obs.host.find_histogram("transport.frames_per_syscall");
  ASSERT_NE(fps, nullptr);
  EXPECT_EQ(fps->count(), static_cast<std::uint64_t>(kRounds));
  EXPECT_GE(fps->min(), static_cast<std::uint64_t>(kBurst / 3));
}

TEST(TransportPump, PumpMetricsStayOutOfDeterministicRegistry) {
  // transport.pump_* / transport.syscalls are host-dependent and must bind
  // into Observability::host, never the byte-identity-exported registry.
  obs::Observability obs;
  auto pump = transport::EpollPump::create(&obs);
  ASSERT_NE(pump, nullptr);
  auto ch = transport::make_channel(BackendKind::kUds, 64 * 1024);
  ASSERT_NE(ch, nullptr);
  pump->add(ch.get());
  ch->set_sink([](std::span<const std::uint8_t>) {});
  ASSERT_TRUE(ch->send(make_payload(64)));
  pump->service();
  EXPECT_EQ(obs.metrics.find_counter("transport.syscalls"), nullptr);
  EXPECT_EQ(obs.metrics.find_counter("transport.pump_wakeups"), nullptr);
  ASSERT_NE(obs.host.find_counter("transport.syscalls"), nullptr);
  EXPECT_GT(obs.host.find_counter("transport.syscalls")->value(), 0u);
  EXPECT_GT(obs.host.find_counter("transport.pump_wakeups")->value(), 0u);
}

TEST(TransportZeroAlloc, WarmedEpollDrainDoesNotAllocate) {
  for (BackendKind kind : kAllBackends) {
    SCOPED_TRACE(std::string(transport::to_string(kind)));
    obs::Observability obs;
    auto pump = transport::EpollPump::create(&obs);
    ASSERT_NE(pump, nullptr);
    auto ch = transport::make_channel(kind, 256 * 1024);
    ASSERT_NE(ch, nullptr);
    pump->add(ch.get());
    std::size_t delivered_bytes = 0;
    ch->set_sink([&](std::span<const std::uint8_t> p) {
      delivered_bytes += p.size();
    });
    Bytes payload = make_payload(480);
    for (int i = 0; i < 64; ++i) {  // warm-up
      ASSERT_TRUE(ch->send(payload));
      pump->service();
    }
    delivered_bytes = 0;
    const std::uint64_t before = g_heap_allocs.load();
    for (int i = 0; i < 256; ++i) {
      ch->send(payload);
      pump->service();
    }
    EXPECT_EQ(g_heap_allocs.load() - before, 0u)
        << "steady-state staged send + event-driven drain must not allocate";
    EXPECT_EQ(delivered_bytes, 256u * payload.size());
  }
}

// --- Short-write property test (UDS send path) ------------------------------

TEST(TransportShortWrite, UdsResumesIntactFromPartialWritevAtEveryOffset) {
  // Force the kernel to accept the staged multi-frame batch in k-byte
  // slices, for every k from 1 to the full batch size: the frame stream
  // must survive a writev boundary at EVERY byte offset, and the logical
  // in-flight accounting must drain to exactly zero on resume.
  const std::vector<Bytes> payloads = {
      make_payload(30, 3), make_payload(1, 5), make_payload(200, 7),
      make_payload(77, 9)};
  std::size_t total = 0;
  for (const Bytes& p : payloads) total += transport::framed_size(p.size());
  for (std::size_t cap = 1; cap <= total; ++cap) {
    obs::Observability obs;
    auto pump = transport::EpollPump::create(&obs);
    ASSERT_NE(pump, nullptr);
    auto ch = transport::make_channel(BackendKind::kUds, 64 * 1024);
    ASSERT_NE(ch, nullptr);
    pump->add(ch.get());
    ch->set_max_write_per_syscall_for_test(cap);
    std::vector<Bytes> delivered;
    ch->set_sink([&](std::span<const std::uint8_t> p) {
      delivered.emplace_back(p.begin(), p.end());
    });
    std::size_t expected_pending = 0;
    for (const Bytes& p : payloads) {
      ASSERT_TRUE(ch->send(p)) << "cap=" << cap;
      expected_pending += transport::framed_size(p.size());
    }
    ASSERT_EQ(ch->pending_bytes(), expected_pending) << "cap=" << cap;
    // Drain until quiescent: each pass flushes >= 1 capped writev slice.
    for (int guard = 0; ch->pending_bytes() > 0 && guard < 4096; ++guard)
      pump->drain(ch.get());
    ASSERT_EQ(ch->pending_bytes(), 0u) << "cap=" << cap;
    ASSERT_EQ(delivered.size(), payloads.size()) << "cap=" << cap;
    for (std::size_t i = 0; i < payloads.size(); ++i)
      EXPECT_EQ(delivered[i], payloads[i]) << "cap=" << cap << " frame " << i;
  }
}

// --- Bounded ready_for drain (budgeted pump) --------------------------------

TEST(TransportBackpressure, ReadyForDrainsOnlyBoundedBurstNotWholeChannel) {
  // Regression for the unbounded-drain bug: a backpressured sender probing
  // ready_for() must pay for at most the headroom it needs (bounded
  // bursts), never a full-channel delivery storm inside its own send path.
  transport::LinkConfig cfg;
  cfg.backend = BackendKind::kInProcess;
  cfg.capacity = 2048;
  transport::FramedLink link(cfg, nullptr);
  std::size_t delivered = 0;
  link.set_ric_sink(
      [&](std::uint64_t, std::span<const std::uint8_t>) { ++delivered; });
  link.set_node_sink([](std::uint64_t, std::span<const std::uint8_t>) {});

  // Fill the channel while the reader is paused...
  link.set_ric_reader_paused(true);
  Bytes pdu = make_payload(100);
  std::size_t queued = 0;
  while (link.enqueue_to_ric(7, pdu)) ++queued;
  ASSERT_GT(queued, 10u);
  // ...then resume WITHOUT pumping: the channel is full but live — exactly
  // the "kernel drains concurrently" moment ready_for handles.
  link.set_ric_reader_paused(false);
  ASSERT_TRUE(link.ready_for(pdu.size()));
  EXPECT_GT(delivered, 0u) << "ready_for must drain enough for headroom";
  EXPECT_LT(delivered, queued)
      << "ready_for must NOT drain the whole channel";
  EXPECT_LE(delivered, 8u) << "one bounded burst should suffice here";
  EXPECT_GT(link.pending_to_ric(), 0u);
  // A paused reader still refuses without a delivery storm.
  link.set_ric_reader_paused(true);
  while (link.enqueue_to_ric(7, pdu)) ++queued;
  const std::size_t before = delivered;
  EXPECT_FALSE(link.ready_for(pdu.size()));
  EXPECT_EQ(delivered, before);
}

// --- End-to-end backpressure ------------------------------------------------

TEST(TransportBackpressure, SlowReaderSpillsToDiskAndRecoversWithoutLoss) {
  // A paused RIC-side reader against a tiny channel: the agent's flush
  // probe starts refusing, reports defer with no sequence number consumed,
  // the buffer overflows into .mft spill files, and — after the reader
  // resumes — everything drains to MobiWatch with nothing silently lost.
  std::string spill_dir = ::testing::TempDir() + "xsec_backpressure_spill";
  std::filesystem::remove_all(spill_dir);
  std::filesystem::create_directories(spill_dir);

  core::PipelineConfig config;
  config.e2_link_capacity = 2048;
  config.agent_outage_buffer = 48;
  config.agent_spill_dir = spill_dir;
  core::Pipeline pipeline(config);

  sim::TrafficConfig traffic;
  traffic.num_sessions = 40;
  traffic.arrival_mean = SimDuration::from_ms(40);
  traffic.seed = 99;
  sim::BenignTrafficGenerator generator(&pipeline.testbed(), traffic);
  generator.schedule_all();

  // Let the first reports flow normally, then stall the reader.
  pipeline.run_for(SimDuration::from_ms(200));
  pipeline.transport().set_reader_paused(true);
  pipeline.run_for(SimDuration::from_s(2));

  auto& backpressure =
      pipeline.metrics().counter("transport.backpressure_events");
  EXPECT_GT(backpressure.value(), 0u) << "stall must be counted";
  EXPECT_GT(pipeline.agent().records_spilled(), 0u)
      << "overflowing backlog must spill to disk, not drop";
  EXPECT_EQ(pipeline.agent().records_dropped_outage(), 0u);

  // Resume: drain what queued during the stall, then give the periodic
  // flush time to replay the spill and report the entire backlog.
  pipeline.transport().set_reader_paused(false);
  pipeline.transport().pump_to_ric();
  pipeline.run_for(SimDuration::from_s(3));
  pipeline.finalize();

  EXPECT_EQ(pipeline.agent().records_replayed(),
            pipeline.agent().records_spilled());
  EXPECT_EQ(pipeline.mobiwatch().records_seen(),
            pipeline.agent().records_collected())
      << "every collected record must reach the xApp after recovery";
  EXPECT_EQ(pipeline.stats().gaps_detected, 0u)
      << "deferral must not consume sequence numbers (no fake gaps)";
  std::filesystem::remove_all(spill_dir);
}

}  // namespace
}  // namespace xsec
