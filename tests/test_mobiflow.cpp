// MobiFlow telemetry tests: record schema, RIC agent parsing/state
// tracking/reporting, control handling, trace serialization.
#include <gtest/gtest.h>

#include <filesystem>

#include "mobiflow/agent.hpp"
#include "mobiflow/trace.hpp"
#include "oran/ric.hpp"
#include "ran/codec.hpp"
#include "ran/ue.hpp"
#include "sim/testbed.hpp"

namespace xsec::mobiflow {
namespace {

Record sample_record() {
  Record r;
  r.timestamp_us = 123456;
  r.gnb_id = 1;
  r.cell = 2;
  r.ue_id = 7;
  r.protocol = vocab::Protocol::kRrc;
  r.msg = vocab::MsgType::kRrcSetupRequest;
  r.direction = vocab::Direction::kUl;
  r.rnti = 0x5F1A;
  r.s_tmsi = 0xCAFEBABEULL;
  r.establishment_cause = vocab::EstablishmentCause::kMoSignalling;
  return r;
}

TEST(Record, KvRoundTrip) {
  Record r = sample_record();
  r.supi_plain = "imsi-001012089900001";
  r.suci = "suci-001-01-1-abc";
  r.cipher_alg = vocab::CipherAlg::kNea2;
  r.integrity_alg = vocab::IntegrityAlg::kNia2;
  auto back = Record::from_kv_bytes(r.to_kv_bytes());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), r);
}

TEST(Record, EmptyOptionalFieldsOmittedFromKv) {
  Record r = sample_record();
  Bytes lean = r.to_kv_bytes();
  Record with_ids = r;
  with_ids.supi_plain = "imsi-001012089900001";
  with_ids.suci = "suci-001-01-1-abc";
  // The optional identity strings cost wire bytes only when present.
  EXPECT_LT(lean.size(), with_ids.to_kv_bytes().size());
  auto back = Record::from_kv_bytes(lean);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), r);
}

TEST(Record, SummaryMentionsKeyFields) {
  Record r = sample_record();
  r.supi_plain = "imsi-001012089900001";
  std::string s = r.summary();
  EXPECT_NE(s.find("RRCSetupRequest"), std::string::npos);
  EXPECT_NE(s.find("0x5F1A"), std::string::npos);
  EXPECT_NE(s.find("PLAINTEXT"), std::string::npos);
}

TEST(Record, CsvRowFieldCountMatchesHeader) {
  auto count_commas = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(count_commas(record_csv_header()),
            count_commas(record_csv_row(sample_record())));
}

// --- Vocab -------------------------------------------------------------

// The agent maps ran codec variant indices straight to MsgType values, so
// the vocab name table must track rrc_all_names()/nas_all_names() exactly.
TEST(Vocab, AlignsWithRanCodecNameTables) {
  const auto& rrc = ran::rrc_all_names();
  ASSERT_EQ(rrc.size(), vocab::kRrcMsgCount);
  for (std::size_t i = 0; i < rrc.size(); ++i)
    EXPECT_EQ(vocab::to_name(vocab::msg_from_rrc_index(i)), rrc[i]);
  const auto& nas = ran::nas_all_names();
  ASSERT_EQ(nas.size(), vocab::kNasMsgCount);
  for (std::size_t i = 0; i < nas.size(); ++i)
    EXPECT_EQ(vocab::to_name(vocab::msg_from_nas_index(i)), nas[i]);
}

TEST(Vocab, StrictParseRejectsWhatLenientBuckets) {
  EXPECT_FALSE(vocab::parse_msg("NotAMessage").ok());
  EXPECT_EQ(vocab::msg_or_unknown("NotAMessage"), vocab::MsgType::kUnknown);
  auto parsed = vocab::parse_msg("RRCSetupRequest");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), vocab::MsgType::kRrcSetupRequest);
  EXPECT_EQ(vocab::protocol_of(vocab::MsgType::kRrcSetupRequest),
            vocab::Protocol::kRrc);
  EXPECT_EQ(vocab::protocol_of(vocab::MsgType::kRegistrationRequest),
            vocab::Protocol::kNas);
  EXPECT_EQ(vocab::protocol_of(vocab::MsgType::kUnknown),
            vocab::Protocol::kUnknown);
}

// --- Trace -----------------------------------------------------------

TEST(Trace, SerializeRoundTripWithLabels) {
  Trace trace;
  trace.add(sample_record(), false);
  Record malicious = sample_record();
  malicious.ue_id = 9;
  trace.add(malicious, true);
  auto back = Trace::deserialize(trace.serialize());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), 2u);
  EXPECT_FALSE(back.value().entries()[0].malicious);
  EXPECT_TRUE(back.value().entries()[1].malicious);
  EXPECT_EQ(back.value().entries()[1].record, malicious);
  EXPECT_EQ(back.value().malicious_count(), 1u);
}

TEST(Trace, FileRoundTrip) {
  Trace trace;
  trace.add(sample_record(), true);
  std::string path = "/tmp/xsec_test_trace.bin";
  ASSERT_TRUE(trace.save(path).ok());
  auto loaded = Trace::load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 1u);
  std::filesystem::remove(path);
}

TEST(Trace, CorruptFileRejected) {
  Bytes garbage = {1, 2, 3, 4, 5};
  EXPECT_FALSE(Trace::deserialize(garbage).ok());
}

TEST(Trace, FilterUe) {
  Trace trace;
  Record a = sample_record();
  a.ue_id = 1;
  Record b = sample_record();
  b.ue_id = 2;
  trace.add(a);
  trace.add(b);
  trace.add(a);
  EXPECT_EQ(trace.filter_ue(1).size(), 2u);
  EXPECT_EQ(trace.filter_ue(3).size(), 0u);
}

TEST(Trace, CsvHasHeaderAndRows) {
  Trace trace;
  trace.add(sample_record(), true);
  std::string csv = trace.to_csv();
  EXPECT_NE(csv.find("ts_us,"), std::string::npos);
  EXPECT_NE(csv.find(",1\n"), std::string::npos);
}

// --- ControlCommand ----------------------------------------------------

TEST(Control, RoundTrip) {
  ControlCommand cmd;
  cmd.action = ControlCommand::Action::kReleaseUe;
  cmd.rnti = 0x1234;
  auto decoded = decode_control(encode_control(cmd));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().rnti, 0x1234);
  EXPECT_FALSE(decode_control({0xFF, 0, 0}).ok());
}

// --- RicAgent ----------------------------------------------------------

struct AgentFixture : public ::testing::Test {
  AgentFixture() {
    AgentHooks hooks;
    hooks.now = [this] { return now; };
    hooks.schedule = [this](SimDuration d, std::function<void()> fn) {
      timers.emplace_back(now + d, std::move(fn));
    };
    hooks.to_ric = [this](std::uint64_t, Bytes wire) {
      to_ric.push_back(std::move(wire));
    };
    hooks.apply_control = [this](const ControlCommand& cmd) {
      controls.push_back(cmd);
      return true;
    };
    agent = std::make_unique<RicAgent>(1001, std::move(hooks));
    agent->attach(taps);
    agent->set_record_sink(
        [this](const Record& r) { records.push_back(r); });
  }

  void feed_f1(const ran::RrcMessage& msg, std::uint32_t ue_id,
               std::uint16_t rnti) {
    ran::F1apMessage f1;
    f1.procedure = ran::rrc_is_uplink(msg)
                       ? ran::F1apProcedure::kUlRrcMessageTransfer
                       : ran::F1apProcedure::kDlRrcMessageTransfer;
    f1.gnb_du_ue_id = ue_id;
    f1.rnti = ran::Rnti{rnti};
    f1.cell = ran::CellId{1, 1};
    f1.rrc_container = ran::encode_rrc(msg);
    taps.emit_f1(now, ran::encode_f1ap(f1));
  }

  void feed_ng(const ran::NasMessage& msg, std::uint64_t ue_id) {
    ran::NgapMessage ngap;
    ngap.procedure = ran::nas_is_uplink(msg)
                         ? ran::NgapProcedure::kUplinkNasTransport
                         : ran::NgapProcedure::kDownlinkNasTransport;
    ngap.ran_ue_ngap_id = ue_id;
    ngap.nas_pdu = ran::encode_nas(msg);
    taps.emit_ng(now, ran::encode_ngap(ngap));
  }

  SimTime now{1000};
  ran::InterfaceTaps taps;
  std::vector<std::pair<SimTime, std::function<void()>>> timers;
  std::vector<Bytes> to_ric;
  std::vector<ControlCommand> controls;
  std::vector<Record> records;
  std::unique_ptr<RicAgent> agent;
};

TEST_F(AgentFixture, SetupRequestAdvertisesMobiFlow) {
  auto setup = oran::decode_setup_request(agent->setup_request());
  ASSERT_TRUE(setup.ok());
  EXPECT_EQ(setup.value().node_id, 1001u);
  ASSERT_EQ(setup.value().functions.size(), 1u);
  EXPECT_EQ(setup.value().functions[0].oid, oran::e2sm::kMobiFlowOid);
}

TEST_F(AgentFixture, ParsesRrcFromF1ap) {
  ran::RrcSetupRequest setup;
  setup.cause = ran::EstablishmentCause::kMoData;
  feed_f1(ran::RrcMessage{setup}, 5, 0xABCD);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].msg, vocab::MsgType::kRrcSetupRequest);
  EXPECT_EQ(records[0].protocol, vocab::Protocol::kRrc);
  EXPECT_EQ(records[0].direction, vocab::Direction::kUl);
  EXPECT_EQ(records[0].msg_name(), "RRCSetupRequest");
  EXPECT_EQ(records[0].rnti, 0xABCD);
  EXPECT_EQ(records[0].establishment_cause,
            vocab::EstablishmentCause::kMoData);
  EXPECT_EQ(records[0].cause_name(), "mo-Data");
  EXPECT_EQ(records[0].timestamp_us, 1000);
  EXPECT_EQ(agent->records_collected(), 1u);
}

TEST_F(AgentFixture, ParsesNasFromNgap) {
  ran::Supi supi{ran::Plmn::test_network(), 42};
  ran::RegistrationRequest reg;
  reg.identity = ran::MobileIdentity::from_suci(ran::make_suci(supi, 1));
  feed_ng(ran::NasMessage{reg}, 5);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].protocol, vocab::Protocol::kNas);
  EXPECT_EQ(records[0].msg, vocab::MsgType::kRegistrationRequest);
  EXPECT_FALSE(records[0].suci.empty());
  EXPECT_TRUE(records[0].supi_plain.empty());  // protected SUCI
}

TEST_F(AgentFixture, NullSchemeSuciExposesPlaintextSupi) {
  ran::Supi supi{ran::Plmn::test_network(), 42};
  ran::RegistrationRequest reg;
  reg.identity =
      ran::MobileIdentity::from_suci(ran::make_suci(supi, 1, true));
  feed_ng(ran::NasMessage{reg}, 5);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].supi_plain, supi.str());
}

TEST_F(AgentFixture, TracksSecurityStateAcrossMessages) {
  ran::NasSecurityModeCommand smc;
  smc.cipher = ran::CipherAlg::kNea0;
  smc.integrity = ran::IntegrityAlg::kNia0;
  feed_ng(ran::NasMessage{smc}, 3);
  feed_ng(ran::NasMessage{ran::RegistrationComplete{}}, 3);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].cipher_alg, vocab::CipherAlg::kNea0);
  // The state persists onto later records of the same UE.
  EXPECT_EQ(records[1].cipher_alg, vocab::CipherAlg::kNea0);
  EXPECT_EQ(records[1].integrity_alg, vocab::IntegrityAlg::kNia0);
  EXPECT_EQ(records[1].cipher_name(), "NEA0");
}

TEST_F(AgentFixture, TracksTmsiFromRegistrationAccept) {
  ran::RegistrationAccept accept;
  accept.guti = ran::Guti{ran::Plmn::test_network(), 1,
                          ran::STmsi{1, 0, 0xAA}};
  feed_ng(ran::NasMessage{accept}, 4);
  feed_ng(ran::NasMessage{ran::RegistrationComplete{}}, 4);
  EXPECT_EQ(records[1].s_tmsi, accept.guti.s_tmsi.packed());
}

TEST_F(AgentFixture, GarbageOnTapsCountsParseErrors) {
  taps.emit_f1(now, {1, 2, 3});
  taps.emit_ng(now, {9});
  EXPECT_EQ(agent->parse_errors(), 2u);
  EXPECT_TRUE(records.empty());
}

TEST_F(AgentFixture, SubscriptionEnablesBufferedReporting) {
  // Subscribe with max_rows = 2 so the second record triggers a flush.
  oran::RicSubscriptionRequest request;
  request.request_id = {1, 1};
  request.ran_function_id = oran::e2sm::kMobiFlowFunctionId;
  request.event_trigger =
      oran::e2sm::encode_event_trigger({10});
  oran::e2sm::ActionDefinition action_def;
  action_def.max_rows = 2;
  request.actions.push_back(
      {1, oran::RicActionType::kReport,
       oran::e2sm::encode_action_definition(action_def)});
  agent->on_e2ap(encode_e2ap(request));
  ASSERT_TRUE(agent->subscribed());
  // Response sent.
  ASSERT_EQ(to_ric.size(), 1u);
  auto response = oran::decode_subscription_response(to_ric[0]);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().admitted_action_ids.size(), 1u);

  feed_f1(ran::RrcMessage{ran::RrcSetupRequest{}}, 1, 0x1);
  EXPECT_EQ(agent->indications_sent(), 0u);
  feed_f1(ran::RrcMessage{ran::RrcSetup{}}, 1, 0x1);
  EXPECT_EQ(agent->indications_sent(), 1u);

  // The indication carries both records as KV rows.
  auto indication = oran::decode_indication(to_ric.back());
  ASSERT_TRUE(indication.ok());
  auto message =
      oran::e2sm::decode_indication_message(indication.value().message);
  ASSERT_TRUE(message.ok());
  ASSERT_EQ(message.value().rows.size(), 2u);
  auto first = Record::from_kv_bytes(message.value().rows[0]);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().msg, vocab::MsgType::kRrcSetupRequest);
}

TEST_F(AgentFixture, PeriodicFlushViaTimer) {
  oran::RicSubscriptionRequest request;
  request.request_id = {1, 1};
  request.ran_function_id = oran::e2sm::kMobiFlowFunctionId;
  request.event_trigger = oran::e2sm::encode_event_trigger({10});
  request.actions.push_back(
      {1, oran::RicActionType::kReport,
       oran::e2sm::encode_action_definition({})});
  agent->on_e2ap(encode_e2ap(request));
  ASSERT_FALSE(timers.empty());

  feed_f1(ran::RrcMessage{ran::RrcSetupRequest{}}, 1, 0x1);
  EXPECT_EQ(agent->indications_sent(), 0u);
  // Fire the flush timer.
  now = timers[0].first;
  timers[0].second();
  EXPECT_EQ(agent->indications_sent(), 1u);
}

TEST_F(AgentFixture, MultipleSubscriptionsEachReceiveReports) {
  auto subscribe = [this](std::uint32_t requestor, std::uint16_t max_rows) {
    oran::RicSubscriptionRequest request;
    request.request_id = {requestor, 1};
    request.ran_function_id = oran::e2sm::kMobiFlowFunctionId;
    request.event_trigger = oran::e2sm::encode_event_trigger({10});
    oran::e2sm::ActionDefinition action_def;
    action_def.max_rows = max_rows;
    request.actions.push_back(
        {1, oran::RicActionType::kReport,
         oran::e2sm::encode_action_definition(action_def)});
    agent->on_e2ap(encode_e2ap(request));
  };
  subscribe(1, 2);
  subscribe(2, 10);
  EXPECT_EQ(agent->subscription_count(), 2u);

  // The smallest max_rows drives the flush; BOTH subscribers get an
  // indication carrying the same rows.
  to_ric.clear();
  feed_f1(ran::RrcMessage{ran::RrcSetupRequest{}}, 1, 0x1);
  feed_f1(ran::RrcMessage{ran::RrcSetup{}}, 1, 0x1);
  std::set<std::uint32_t> requestors;
  for (const Bytes& wire : to_ric) {
    auto indication = oran::decode_indication(wire);
    if (indication.ok())
      requestors.insert(indication.value().request_id.requestor_id);
  }
  EXPECT_EQ(requestors, (std::set<std::uint32_t>{1, 2}));
  EXPECT_EQ(agent->indications_sent(), 2u);

  // Deleting one subscription leaves the other serviced.
  oran::RicSubscriptionDeleteRequest del;
  del.request_id = {1, 1};
  agent->on_e2ap(encode_e2ap(del));
  EXPECT_EQ(agent->subscription_count(), 1u);
}

TEST_F(AgentFixture, SubscriptionForWrongFunctionRejected) {
  oran::RicSubscriptionRequest request;
  request.request_id = {1, 1};
  request.ran_function_id = 9;  // not MobiFlow
  request.actions.push_back({1, oran::RicActionType::kReport, {}});
  agent->on_e2ap(encode_e2ap(request));
  EXPECT_FALSE(agent->subscribed());
  auto response = oran::decode_subscription_response(to_ric.back());
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().rejected_action_ids.size(), 1u);
}

TEST_F(AgentFixture, ControlRequestAppliedAndAcked) {
  oran::RicControlRequest request;
  request.request_id = {2, 0};
  request.ran_function_id = oran::e2sm::kMobiFlowFunctionId;
  ControlCommand cmd;
  cmd.action = ControlCommand::Action::kReleaseUe;
  cmd.rnti = 0x77;
  request.message = encode_control(cmd);
  agent->on_e2ap(encode_e2ap(request));
  ASSERT_EQ(controls.size(), 1u);
  EXPECT_EQ(controls[0].rnti, 0x77);
  auto ack = oran::decode_control_ack(to_ric.back());
  ASSERT_TRUE(ack.ok());
  EXPECT_TRUE(ack.value().success);
}

// --- Agent on a live testbed -------------------------------------------

TEST(AgentLive, CollectsFullSessionTelemetry) {
  sim::Testbed testbed;
  std::vector<Record> records;
  AgentHooks hooks;
  hooks.now = [&testbed] { return testbed.now(); };
  hooks.schedule = [&testbed](SimDuration d, std::function<void()> fn) {
    testbed.queue().schedule_after(d, std::move(fn));
  };
  hooks.to_ric = [](std::uint64_t, Bytes) {};
  RicAgent agent(1, std::move(hooks));
  agent.attach(testbed.taps());
  agent.set_record_sink([&](const Record& r) { records.push_back(r); });

  ran::UeConfig config;
  config.supi = ran::Supi{ran::Plmn::test_network(), 55};
  config.activity_reports = 0;
  testbed.add_ue(config, SimTime::from_ms(1));
  testbed.run_for(SimDuration::from_s(2));

  // The attach flow produces the canonical message sequence.
  std::vector<std::string> msgs;
  for (const auto& r : records) msgs.push_back(std::string(r.msg_name()));
  auto has = [&](const std::string& name) {
    return std::find(msgs.begin(), msgs.end(), name) != msgs.end();
  };
  EXPECT_TRUE(has("RRCSetupRequest"));
  EXPECT_TRUE(has("RRCSetup"));
  EXPECT_TRUE(has("RRCSetupComplete"));
  EXPECT_TRUE(has("RegistrationRequest"));
  EXPECT_TRUE(has("AuthenticationRequest"));
  EXPECT_TRUE(has("AuthenticationResponse"));
  EXPECT_TRUE(has("SecurityModeCommand"));
  EXPECT_TRUE(has("SecurityModeComplete"));
  EXPECT_TRUE(has("RegistrationAccept"));
  EXPECT_TRUE(has("RegistrationComplete"));
  // Message order sanity: setup before registration before auth.
  auto index_of = [&](const std::string& name) {
    return std::find(msgs.begin(), msgs.end(), name) - msgs.begin();
  };
  EXPECT_LT(index_of("RRCSetupRequest"), index_of("RegistrationRequest"));
  EXPECT_LT(index_of("RegistrationRequest"),
            index_of("AuthenticationRequest"));
  EXPECT_LT(index_of("AuthenticationRequest"),
            index_of("RegistrationAccept"));
}

}  // namespace
}  // namespace xsec::mobiflow
