// O-RAN control-plane tests: E2AP codec, E2SM framing, SDL, router, RIC.
#include <gtest/gtest.h>

#include "oran/e2ap.hpp"
#include "oran/e2sm.hpp"
#include "oran/ric.hpp"
#include "oran/router.hpp"
#include "oran/sdl.hpp"
#include "oran/xapp.hpp"

namespace xsec::oran {
namespace {

// --- E2AP -------------------------------------------------------------

TEST(E2ap, SetupRequestRoundTrip) {
  E2SetupRequest setup;
  setup.node_id = 1001;
  setup.functions.push_back(e2sm::make_mobiflow_function());
  Bytes wire = encode_e2ap(setup);
  EXPECT_EQ(e2ap_type(wire).value(), E2apType::kSetupRequest);
  auto decoded = decode_setup_request(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().node_id, 1001u);
  ASSERT_EQ(decoded.value().functions.size(), 1u);
  EXPECT_EQ(decoded.value().functions[0].function_id,
            e2sm::kMobiFlowFunctionId);
  EXPECT_EQ(decoded.value().functions[0].description, e2sm::kMobiFlowName);
}

TEST(E2ap, SubscriptionRoundTrip) {
  RicSubscriptionRequest request;
  request.request_id = {3, 9};
  request.ran_function_id = 100;
  request.event_trigger = {1, 2, 3};
  request.actions.push_back({1, RicActionType::kReport, {4, 5}});
  request.actions.push_back({2, RicActionType::kPolicy, {}});
  auto decoded = decode_subscription_request(encode_e2ap(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().request_id, (RicRequestId{3, 9}));
  ASSERT_EQ(decoded.value().actions.size(), 2u);
  EXPECT_EQ(decoded.value().actions[1].type, RicActionType::kPolicy);
}

TEST(E2ap, IndicationRoundTrip) {
  RicIndication indication;
  indication.request_id = {1, 2};
  indication.ran_function_id = 100;
  indication.action_id = 1;
  indication.sequence_number = 77;
  indication.type = RicIndicationType::kInsert;
  indication.header = {0xAA};
  indication.message = {0xBB, 0xCC};
  auto decoded = decode_indication(encode_e2ap(indication));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().sequence_number, 77u);
  EXPECT_EQ(decoded.value().type, RicIndicationType::kInsert);
  EXPECT_EQ(decoded.value().message, (Bytes{0xBB, 0xCC}));
}

TEST(E2ap, ControlRoundTrip) {
  RicControlRequest control;
  control.request_id = {5, 0};
  control.ran_function_id = 100;
  control.message = {9};
  auto decoded = decode_control_request(encode_e2ap(control));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().message, Bytes{9});

  RicControlAck ack;
  ack.request_id = {5, 0};
  ack.success = false;
  auto ack_decoded = decode_control_ack(encode_e2ap(ack));
  ASSERT_TRUE(ack_decoded.ok());
  EXPECT_FALSE(ack_decoded.value().success);
}

TEST(E2ap, TypeMismatchRejected) {
  Bytes wire = encode_e2ap(E2SetupResponse{});
  EXPECT_FALSE(decode_setup_request(wire).ok());
  EXPECT_FALSE(decode_indication(wire).ok());
}

TEST(E2ap, GarbageRejected) {
  EXPECT_FALSE(e2ap_type(Bytes{}).ok());
  EXPECT_FALSE(e2ap_type(Bytes{0x01, 0xFF}).ok());
  EXPECT_FALSE(decode_indication({0x01, 0x05}).ok());  // truncated body
}

// --- E2SM ---------------------------------------------------------------

TEST(E2sm, TriggerAndActionRoundTrip) {
  auto trigger = e2sm::decode_event_trigger(
      e2sm::encode_event_trigger({25}));
  ASSERT_TRUE(trigger.ok());
  EXPECT_EQ(trigger.value().report_period_ms, 25u);

  e2sm::ActionDefinition action{e2sm::kMessages | e2sm::kState, 99};
  auto decoded = e2sm::decode_action_definition(
      e2sm::encode_action_definition(action));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().categories, action.categories);
  EXPECT_EQ(decoded.value().max_rows, 99u);
}

TEST(E2sm, IndicationMessageRoundTrip) {
  // Rows are opaque byte strings to the service model; the indication
  // codec must preserve them exactly, including empty rows.
  e2sm::IndicationMessage message;
  message.rows.push_back(Bytes{1, 2, 3, 0xFF, 0});
  message.rows.push_back(Bytes{});
  auto decoded = e2sm::decode_indication_message(
      e2sm::encode_indication_message(message));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().rows.size(), 2u);
  EXPECT_EQ(decoded.value().rows[0], (Bytes{1, 2, 3, 0xFF, 0}));
  EXPECT_TRUE(decoded.value().rows[1].empty());
}

TEST(E2sm, IndicationHeaderRoundTrip) {
  e2sm::IndicationHeader header{123456, 7, 2};
  auto decoded = e2sm::decode_indication_header(
      e2sm::encode_indication_header(header));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().collect_start_us, 123456);
  EXPECT_EQ(decoded.value().gnb_id, 7u);
}

// --- SDL ----------------------------------------------------------------

TEST(Sdl, SetGetRemove) {
  Sdl sdl;
  sdl.set("ns", "k1", {1, 2});
  EXPECT_EQ(sdl.get("ns", "k1").value(), (Bytes{1, 2}));
  EXPECT_FALSE(sdl.get("ns", "k2").has_value());
  EXPECT_FALSE(sdl.get("other", "k1").has_value());
  EXPECT_TRUE(sdl.remove("ns", "k1"));
  EXPECT_FALSE(sdl.remove("ns", "k1"));
  EXPECT_FALSE(sdl.get("ns", "k1").has_value());
}

TEST(Sdl, StringHelpers) {
  Sdl sdl;
  sdl.set_str("ns", "k", "value");
  EXPECT_EQ(sdl.get_str("ns", "k").value(), "value");
}

TEST(Sdl, KeysOrderedAndRanged) {
  Sdl sdl;
  sdl.set("ns", "b", {});
  sdl.set("ns", "a", {});
  sdl.set("ns", "c", {});
  EXPECT_EQ(sdl.keys("ns"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(sdl.keys_in_range("ns", "a", "c"),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(sdl.size("ns"), 3u);
  sdl.clear("ns");
  EXPECT_EQ(sdl.size("ns"), 0u);
}

TEST(Sdl, SeqKeyPreservesNumericOrder) {
  EXPECT_LT(Sdl::seq_key(9), Sdl::seq_key(10));
  EXPECT_LT(Sdl::seq_key(99), Sdl::seq_key(100));
}

TEST(Sdl, WatchersNotified) {
  Sdl sdl;
  std::vector<std::string> events;
  sdl.watch("ns", [&](const std::string& ns, const std::string& key) {
    events.push_back(ns + "/" + key);
  });
  sdl.set("ns", "x", {});
  sdl.set("other", "y", {});  // not watched
  sdl.remove("ns", "x");
  EXPECT_EQ(events, (std::vector<std::string>{"ns/x", "ns/x"}));
}

// --- Router ---------------------------------------------------------------

TEST(Router, PublishReachesSubscribers) {
  MessageRouter router;
  int received = 0;
  router.subscribe(kMtAnomalyWindow, [&](const RoutedMessage& m) {
    EXPECT_EQ(m.source, "mobiwatch");
    ++received;
  });
  router.subscribe(kMtAnomalyWindow, [&](const RoutedMessage&) { ++received; });
  RoutedMessage msg;
  msg.mtype = kMtAnomalyWindow;
  msg.source = "mobiwatch";
  EXPECT_EQ(router.publish(msg), 2u);
  EXPECT_EQ(received, 2);
  EXPECT_EQ(router.delivered_count(), 2u);
}

TEST(Router, UnroutedMessagesCountedAsDropped) {
  MessageRouter router;
  RoutedMessage msg;
  msg.mtype = 12345;
  EXPECT_EQ(router.publish(msg), 0u);
  EXPECT_EQ(router.dropped_count(), 1u);
}

TEST(Router, UnsubscribeStopsDelivery) {
  MessageRouter router;
  int received = 0;
  auto id = router.subscribe(1, [&](const RoutedMessage&) { ++received; });
  router.unsubscribe(id);
  router.publish(RoutedMessage{1, "x", {}});
  EXPECT_EQ(received, 0);
}

// --- NearRtRic ------------------------------------------------------------

/// Minimal scripted E2 node for RIC tests.
class FakeNode : public E2NodeLink {
 public:
  explicit FakeNode(std::uint64_t id, bool advertise = true)
      : id_(id), advertise_(advertise) {}

  Bytes setup_request() override {
    E2SetupRequest setup;
    setup.node_id = id_;
    if (advertise_) setup.functions.push_back(e2sm::make_mobiflow_function());
    return encode_e2ap(setup);
  }
  void on_e2ap(const Bytes& wire) override {
    received.push_back(wire);
    auto type = e2ap_type(wire);
    if (type && type.value() == E2apType::kSubscriptionRequest) {
      auto request = decode_subscription_request(wire);
      last_subscription = request.value().request_id;
    }
  }

  std::vector<Bytes> received;
  RicRequestId last_subscription;

 private:
  std::uint64_t id_;
  bool advertise_;
};

class RecordingXapp : public XApp {
 public:
  RecordingXapp() : XApp("recorder") {}
  void on_indication(std::uint64_t node,
                     const RicIndication& indication) override {
    indications.emplace_back(node, indication.sequence_number);
  }
  void on_control_ack(std::uint64_t, const RicControlAck& ack) override {
    acks.push_back(ack.success);
  }
  void on_node_connected(std::uint64_t node_id) override {
    connected.push_back(node_id);
  }
  void on_telemetry_gap(std::uint64_t, const RicRequestId&,
                        std::uint32_t first, std::uint32_t last) override {
    gaps.emplace_back(first, last);
  }
  std::vector<std::pair<std::uint64_t, std::uint32_t>> indications;
  std::vector<bool> acks;
  std::vector<std::uint64_t> connected;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> gaps;
};

/// Sends one encoded indication with the given sequence into the RIC.
void send_indication(NearRtRic& ric, std::uint64_t node_id, RicRequestId id,
                     std::uint32_t sequence) {
  RicIndication indication;
  indication.request_id = id;
  indication.sequence_number = sequence;
  ric.from_node(node_id, encode_e2ap(indication));
}

std::size_t count_nacks(const FakeNode& node) {
  std::size_t n = 0;
  for (const Bytes& wire : node.received)
    if (e2ap_type(wire).value() == E2apType::kIndicationNack) ++n;
  return n;
}

TEST(Ric, ConnectNodePerformsSetup) {
  NearRtRic ric;
  FakeNode node(42);
  auto connected = ric.connect_node(&node);
  ASSERT_TRUE(connected.ok());
  EXPECT_EQ(connected.value(), 42u);
  ASSERT_EQ(ric.connected_nodes().size(), 1u);
  const auto* functions = ric.node_functions(42);
  ASSERT_NE(functions, nullptr);
  EXPECT_EQ(functions->at(0).function_id, e2sm::kMobiFlowFunctionId);
  // The node received an E2SetupResponse.
  ASSERT_EQ(node.received.size(), 1u);
  EXPECT_EQ(e2ap_type(node.received[0]).value(), E2apType::kSetupResponse);
}

TEST(Ric, RejectsNodeWithNoFunctions) {
  NearRtRic ric;
  FakeNode node(43, /*advertise=*/false);
  auto connected = ric.connect_node(&node);
  ASSERT_FALSE(connected.ok());
  EXPECT_EQ(connected.error().code, "no-functions");
  EXPECT_TRUE(ric.connected_nodes().empty());
}

TEST(Ric, IndicationRoutedToSubscribedXapp) {
  NearRtRic ric;
  FakeNode node(1);
  ric.connect_node(&node);
  auto* xapp = static_cast<RecordingXapp*>(
      ric.register_xapp(std::make_unique<RecordingXapp>()));
  RicRequestId id =
      ric.subscribe(xapp, 1, e2sm::kMobiFlowFunctionId, {}, {});

  RicIndication indication;
  indication.request_id = id;
  indication.sequence_number = 5;
  ric.from_node(1, encode_e2ap(indication));
  ASSERT_EQ(xapp->indications.size(), 1u);
  EXPECT_EQ(xapp->indications[0], std::make_pair(std::uint64_t{1},
                                                 std::uint32_t{5}));
  EXPECT_EQ(ric.indications_received(), 1u);
}

TEST(Ric, IndicationWithoutSubscriptionDropped) {
  NearRtRic ric;
  FakeNode node(1);
  ric.connect_node(&node);
  RicIndication indication;
  indication.request_id = {99, 99};
  ric.from_node(1, encode_e2ap(indication));
  EXPECT_EQ(ric.indications_dropped(), 1u);
}

TEST(Ric, UnsubscribeStopsRouting) {
  NearRtRic ric;
  FakeNode node(1);
  ric.connect_node(&node);
  auto* xapp = static_cast<RecordingXapp*>(
      ric.register_xapp(std::make_unique<RecordingXapp>()));
  RicRequestId id = ric.subscribe(xapp, 1, 100, {}, {});
  ric.unsubscribe(xapp, 1, id);
  RicIndication indication;
  indication.request_id = id;
  ric.from_node(1, encode_e2ap(indication));
  EXPECT_TRUE(xapp->indications.empty());
}

TEST(Ric, ControlAckRoutedByRequestor) {
  NearRtRic ric;
  FakeNode node(1);
  ric.connect_node(&node);
  auto* xapp = static_cast<RecordingXapp*>(
      ric.register_xapp(std::make_unique<RecordingXapp>()));
  ric.send_control(xapp, 1, 100, {}, {1, 2, 3});
  // Node got the control request.
  bool saw_control = false;
  for (const Bytes& wire : node.received)
    if (e2ap_type(wire).value() == E2apType::kControlRequest)
      saw_control = true;
  EXPECT_TRUE(saw_control);

  RicControlAck ack;
  ack.request_id = {xapp->requestor_id(), 0};
  ack.success = true;
  ric.from_node(1, encode_e2ap(ack));
  ASSERT_EQ(xapp->acks.size(), 1u);
  EXPECT_TRUE(xapp->acks[0]);
}

TEST(Ric, FindXappByName) {
  NearRtRic ric;
  ric.register_xapp(std::make_unique<RecordingXapp>());
  EXPECT_NE(ric.find_xapp("recorder"), nullptr);
  EXPECT_EQ(ric.find_xapp("missing"), nullptr);
}

TEST(Ric, ReconnectTearsDownStaleSubscriptionsAndNotifiesXapps) {
  NearRtRic ric;
  FakeNode node(1);
  ASSERT_TRUE(ric.connect_node(&node).ok());
  auto* xapp = static_cast<RecordingXapp*>(
      ric.register_xapp(std::make_unique<RecordingXapp>()));
  ric.subscribe(xapp, 1, e2sm::kMobiFlowFunctionId, {}, {});
  EXPECT_EQ(ric.subscriptions_active(), 1u);

  // Node-side restart: the same node id performs E2 Setup again.
  FakeNode reborn(1);
  auto reconnected = ric.connect_node(&reborn);
  ASSERT_TRUE(reconnected.ok());
  EXPECT_EQ(ric.node_reconnects(), 1u);
  EXPECT_EQ(ric.stale_subscriptions_cleared(), 1u);
  // The stale subscription did not survive, and the xApp was told so it
  // can re-establish.
  EXPECT_EQ(ric.subscriptions_active(), 0u);
  ASSERT_EQ(xapp->connected.size(), 1u);
  EXPECT_EQ(xapp->connected[0], 1u);
  // Indications on the old subscription id are dropped, not misrouted.
  send_indication(ric, 1, RicRequestId{xapp->requestor_id(), 1}, 1);
  EXPECT_TRUE(xapp->indications.empty());
}

TEST(Ric, StreamSuppressesDuplicates) {
  NearRtRic ric;
  FakeNode node(1);
  ASSERT_TRUE(ric.connect_node(&node).ok());
  auto* xapp = static_cast<RecordingXapp*>(
      ric.register_xapp(std::make_unique<RecordingXapp>()));
  RicRequestId id = ric.subscribe(xapp, 1, e2sm::kMobiFlowFunctionId, {}, {});

  send_indication(ric, 1, id, 1);
  send_indication(ric, 1, id, 1);
  ASSERT_EQ(xapp->indications.size(), 1u);
  EXPECT_EQ(ric.duplicates_suppressed(), 1u);
}

TEST(Ric, StreamHealsReorderingViaNack) {
  NearRtRic ric;
  FakeNode node(1);
  ASSERT_TRUE(ric.connect_node(&node).ok());
  auto* xapp = static_cast<RecordingXapp*>(
      ric.register_xapp(std::make_unique<RecordingXapp>()));
  RicRequestId id = ric.subscribe(xapp, 1, e2sm::kMobiFlowFunctionId, {}, {});

  send_indication(ric, 1, id, 1);
  send_indication(ric, 1, id, 3);  // 2 missing -> buffered + NACK
  EXPECT_EQ(count_nacks(node), 1u);
  ASSERT_EQ(xapp->indications.size(), 1u);  // 3 held back
  send_indication(ric, 1, id, 2);  // the retransmission arrives
  ASSERT_EQ(xapp->indications.size(), 3u);
  EXPECT_EQ(xapp->indications[1].second, 2u);
  EXPECT_EQ(xapp->indications[2].second, 3u);
  EXPECT_EQ(ric.indications_recovered(), 1u);
  EXPECT_EQ(ric.gaps_detected(), 0u);
}

TEST(Ric, StreamDeclaresGapWhenNackBudgetExhausted) {
  NearRtRic ric;
  FakeNode node(1);
  ASSERT_TRUE(ric.connect_node(&node).ok());
  auto* xapp = static_cast<RecordingXapp*>(
      ric.register_xapp(std::make_unique<RecordingXapp>()));
  RicRequestId id = ric.subscribe(xapp, 1, e2sm::kMobiFlowFunctionId, {}, {});

  send_indication(ric, 1, id, 1);
  // Sequence 2 never arrives; each later arrival spends NACK budget on it.
  send_indication(ric, 1, id, 3);
  send_indication(ric, 1, id, 4);
  send_indication(ric, 1, id, 5);
  ASSERT_EQ(xapp->indications.size(), 1u);  // all held behind the hole
  send_indication(ric, 1, id, 6);  // budget exhausted -> gap declared
  ASSERT_EQ(xapp->gaps.size(), 1u);
  EXPECT_EQ(xapp->gaps[0], std::make_pair(std::uint32_t{2},
                                          std::uint32_t{2}));
  // The buffered run was released in order after the gap.
  ASSERT_EQ(xapp->indications.size(), 5u);
  EXPECT_EQ(xapp->indications.back().second, 6u);
  EXPECT_EQ(ric.gaps_detected(), 1u);
  EXPECT_EQ(count_nacks(node), 3u);
}

TEST(Ric, FlushStreamsDrainsPendingAsGaps) {
  NearRtRic ric;
  FakeNode node(1);
  ASSERT_TRUE(ric.connect_node(&node).ok());
  auto* xapp = static_cast<RecordingXapp*>(
      ric.register_xapp(std::make_unique<RecordingXapp>()));
  RicRequestId id = ric.subscribe(xapp, 1, e2sm::kMobiFlowFunctionId, {}, {});

  send_indication(ric, 1, id, 1);
  send_indication(ric, 1, id, 3);
  ASSERT_EQ(xapp->indications.size(), 1u);
  ric.flush_streams();
  // End of capture: 2 is declared lost, buffered 3 is delivered.
  ASSERT_EQ(xapp->gaps.size(), 1u);
  ASSERT_EQ(xapp->indications.size(), 2u);
  EXPECT_EQ(xapp->indications.back().second, 3u);
}

TEST(E2ap, IndicationNackRoundTrip) {
  RicIndicationNack nack;
  nack.ran_function_id = 3;
  nack.ranges.push_back(NackRange{{7, 9}, 100, 104});
  nack.ranges.push_back(NackRange{{7, 10}, 210, 210});
  Bytes wire = encode_e2ap(nack);
  EXPECT_EQ(e2ap_type(wire).value(), E2apType::kIndicationNack);
  auto decoded = decode_indication_nack(wire);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().ranges.size(), 2u);
  EXPECT_EQ(decoded.value().ranges[0].request_id.requestor_id, 7u);
  EXPECT_EQ(decoded.value().ranges[0].request_id.instance_id, 9u);
  EXPECT_EQ(decoded.value().ranges[0].first_sequence, 100u);
  EXPECT_EQ(decoded.value().ranges[0].last_sequence, 104u);
  EXPECT_EQ(decoded.value().ranges[1].first_sequence, 210u);
  EXPECT_EQ(decoded.value().ranges[1].last_sequence, 210u);
}

TEST(E2ap, IndicationNackRejectsEmptyAndInvertedRanges) {
  RicIndicationNack empty;
  empty.ran_function_id = 1;
  EXPECT_FALSE(decode_indication_nack(encode_e2ap(empty)).ok());

  RicIndicationNack inverted;
  inverted.ran_function_id = 1;
  inverted.ranges.push_back(NackRange{{1, 1}, 50, 40});
  EXPECT_FALSE(decode_indication_nack(encode_e2ap(inverted)).ok());
}

TEST(Sdl, WatchHandlerMayRegisterWatchersDuringNotify) {
  // Regression: a handler calling watch() used to reallocate the handler
  // vector being iterated, destroying the executing std::function.
  Sdl sdl;
  int outer_calls = 0;
  int inner_calls = 0;
  sdl.watch("ns", [&](const std::string&, const std::string&) {
    ++outer_calls;
    if (outer_calls == 1) {
      // Register enough new watchers to force a reallocation mid-notify.
      for (int i = 0; i < 16; ++i)
        sdl.watch("ns", [&](const std::string&, const std::string&) {
          ++inner_calls;
        });
    }
  });
  sdl.set_str("ns", "k1", "v");
  // Watchers added during a notification do not see that notification.
  EXPECT_EQ(outer_calls, 1);
  EXPECT_EQ(inner_calls, 0);
  sdl.set_str("ns", "k2", "v");
  EXPECT_EQ(outer_calls, 2);
  EXPECT_EQ(inner_calls, 16);
}

TEST(Ric, DisconnectRemovesSubscriptions) {
  NearRtRic ric;
  FakeNode node(1);
  ric.connect_node(&node);
  auto* xapp = static_cast<RecordingXapp*>(
      ric.register_xapp(std::make_unique<RecordingXapp>()));
  RicRequestId id = ric.subscribe(xapp, 1, 100, {}, {});
  EXPECT_EQ(ric.subscriptions_active(), 1u);
  ric.disconnect_node(1);
  EXPECT_EQ(ric.subscriptions_active(), 0u);
  RicIndication indication;
  indication.request_id = id;
  ric.from_node(1, encode_e2ap(indication));
  EXPECT_TRUE(xapp->indications.empty());
}

}  // namespace
}  // namespace xsec::oran
