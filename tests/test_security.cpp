// Unit tests for the 5G security model (src/ran/security.*).
#include <gtest/gtest.h>

#include "ran/security.hpp"

namespace xsec::ran {
namespace {

TEST(Kdf, DeterministicAndSensitive) {
  Key k = subscriber_key("imsi-001012089900001");
  EXPECT_EQ(kdf(k, "A", 1), kdf(k, "A", 1));
  EXPECT_NE(kdf(k, "A", 1), kdf(k, "A", 2));
  EXPECT_NE(kdf(k, "A", 1), kdf(k, "B", 1));
  Key k2 = subscriber_key("imsi-001012089900002");
  EXPECT_NE(kdf(k, "A", 1), kdf(k2, "A", 1));
}

TEST(SubscriberKey, DistinctPerSupi) {
  EXPECT_NE(subscriber_key("imsi-001010000000001"),
            subscriber_key("imsi-001010000000002"));
}

TEST(Aka, VectorVerifiesWithCorrectKey) {
  Key k = subscriber_key("imsi-001012089900001");
  AuthVector v = generate_auth_vector(k, 0x1234);
  EXPECT_TRUE(verify_autn(k, v.rand, v.autn));
  EXPECT_EQ(compute_res(k, v.rand), v.xres);
}

TEST(Aka, WrongKeyFailsAutnAndRes) {
  Key k = subscriber_key("imsi-001012089900001");
  Key wrong = subscriber_key("imsi-001019999999999");
  AuthVector v = generate_auth_vector(k, 0x9876);
  EXPECT_FALSE(verify_autn(wrong, v.rand, v.autn));
  EXPECT_NE(compute_res(wrong, v.rand), v.xres);
}

TEST(Aka, TamperedAutnRejected) {
  Key k = subscriber_key("imsi-001012089900001");
  AuthVector v = generate_auth_vector(k, 0x55);
  EXPECT_FALSE(verify_autn(k, v.rand, v.autn ^ 1));
  EXPECT_FALSE(verify_autn(k, v.rand ^ 1, v.autn));
}

TEST(Cipher, RoundTripAllRealAlgorithms) {
  Key k = subscriber_key("imsi-001012089900001");
  Bytes payload = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  for (CipherAlg alg : {CipherAlg::kNea1, CipherAlg::kNea2, CipherAlg::kNea3}) {
    Bytes ciphered = cipher(alg, k, 7, payload);
    EXPECT_NE(ciphered, payload) << to_string(alg);
    EXPECT_EQ(decipher(alg, k, 7, ciphered), payload) << to_string(alg);
  }
}

TEST(Cipher, Nea0IsPlaintext) {
  Key k = subscriber_key("x");
  Bytes payload = {9, 8, 7};
  EXPECT_EQ(cipher(CipherAlg::kNea0, k, 1, payload), payload);
}

TEST(Cipher, CountSeparatesKeystreams) {
  Key k = subscriber_key("x");
  Bytes payload = {1, 2, 3, 4};
  EXPECT_NE(cipher(CipherAlg::kNea2, k, 1, payload),
            cipher(CipherAlg::kNea2, k, 2, payload));
}

TEST(Mac, VerifiesAndDetectsTampering) {
  Key k = subscriber_key("y");
  Bytes payload = {4, 5, 6};
  std::uint32_t mac = compute_mac(IntegrityAlg::kNia2, k, 3, payload);
  EXPECT_TRUE(verify_mac(IntegrityAlg::kNia2, k, 3, payload, mac));
  Bytes tampered = payload;
  tampered[0] ^= 1;
  EXPECT_FALSE(verify_mac(IntegrityAlg::kNia2, k, 3, tampered, mac));
  EXPECT_FALSE(verify_mac(IntegrityAlg::kNia2, k, 4, payload, mac));
}

TEST(Mac, Nia0IsConstant) {
  Key k = subscriber_key("z");
  EXPECT_EQ(compute_mac(IntegrityAlg::kNia0, k, 1, {1, 2}), 0u);
  EXPECT_EQ(compute_mac(IntegrityAlg::kNia0, k, 9, {3}), 0u);
}

TEST(Capabilities, SupportChecks) {
  SecurityCapabilities caps{0b0101, 0b0010};
  EXPECT_TRUE(caps.supports(CipherAlg::kNea0));
  EXPECT_FALSE(caps.supports(CipherAlg::kNea1));
  EXPECT_TRUE(caps.supports(CipherAlg::kNea2));
  EXPECT_TRUE(caps.supports(IntegrityAlg::kNia1));
  EXPECT_FALSE(caps.supports(IntegrityAlg::kNia0));
}

TEST(Capabilities, StringLists) {
  SecurityCapabilities caps{0b0001, 0b0010};
  EXPECT_EQ(caps.str(), "NEA0|NIA1");
}

TEST(Policy, SelectsHighestMutuallySupported) {
  AlgorithmPolicy policy;
  SecurityCapabilities caps{0b0111, 0b0110};
  EXPECT_EQ(policy.select_cipher(caps), CipherAlg::kNea2);
  EXPECT_EQ(policy.select_integrity(caps), IntegrityAlg::kNia2);
}

TEST(Policy, FallsBackToNullAlgorithms) {
  // The bidding-down attack spoofs caps to null-only; selection must fall
  // through to NEA0/NIA0 (this is the exploited behaviour).
  AlgorithmPolicy policy;
  SecurityCapabilities spoofed{0b0001, 0b0001};
  EXPECT_EQ(policy.select_cipher(spoofed), CipherAlg::kNea0);
  EXPECT_EQ(policy.select_integrity(spoofed), IntegrityAlg::kNia0);
}

TEST(AlgStrings, Names) {
  EXPECT_EQ(to_string(CipherAlg::kNea0), "NEA0");
  EXPECT_EQ(to_string(IntegrityAlg::kNia3), "NIA3");
}

}  // namespace
}  // namespace xsec::ran
