// Tests for the core facade: dataset collection, the evaluation harness,
// and pipeline assembly invariants.
#include <gtest/gtest.h>

#include "core/datasets.hpp"
#include "core/evaluation.hpp"
#include "core/pipeline.hpp"

namespace xsec::core {
namespace {

TEST(Datasets, BenignCollectionIsDeterministic) {
  ScenarioConfig config;
  config.traffic.num_sessions = 8;
  config.traffic.seed = 19;
  config.run_time = SimDuration::from_s(2);
  mobiflow::Trace a = collect_benign(config);
  mobiflow::Trace b = collect_benign(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a.entries()[i].record, b.entries()[i].record);
}

TEST(Datasets, SeedsChangeTraffic) {
  ScenarioConfig a_config;
  a_config.traffic.num_sessions = 8;
  a_config.traffic.seed = 1;
  a_config.run_time = SimDuration::from_s(2);
  ScenarioConfig b_config = a_config;
  b_config.traffic.seed = 2;
  EXPECT_NE(collect_benign(a_config).size() * 1000 +
                collect_benign(a_config).entries()[0].record.rnti,
            collect_benign(b_config).size() * 1000 +
                collect_benign(b_config).entries()[0].record.rnti);
}

TEST(Datasets, CollectAllShapes) {
  LabeledDatasets datasets = collect_all(/*seed=*/77, /*benign_sessions=*/18,
                                         /*background_sessions=*/6);
  EXPECT_EQ(datasets.benign.size(), 3u);  // three captures
  EXPECT_GT(datasets.benign_records(), 100u);
  ASSERT_EQ(datasets.attacks.size(), 5u);
  EXPECT_EQ(datasets.attacks[0].id, "bts_dos");
  for (const auto& attack : datasets.attacks) {
    EXPECT_GT(attack.trace.size(), 0u) << attack.id;
    EXPECT_GT(attack.trace.malicious_count(), 0u) << attack.id;
    // Mixture property: benign background present too.
    EXPECT_LT(attack.trace.malicious_count(), attack.trace.size())
        << attack.id;
  }
  // Benign captures are clean.
  for (const auto& capture : datasets.benign)
    EXPECT_EQ(capture.malicious_count(), 0u);
}

TEST(Evaluation, MakeDetectorKinds) {
  EvalConfig config;
  detect::FeatureEncoder encoder(config.features);
  for (ModelKind kind :
       {ModelKind::kAutoencoder, ModelKind::kLstm, ModelKind::kEnsemble}) {
    auto detector = make_detector(kind, 5, encoder.dim(), config);
    ASSERT_NE(detector, nullptr) << to_string(kind);
    EXPECT_EQ(detector->name(), to_string(kind));
  }
}

TEST(Evaluation, TrainDetectorProducesUsableModel) {
  ScenarioConfig config;
  config.traffic.num_sessions = 12;
  config.traffic.seed = 23;
  config.run_time = SimDuration::from_s(3);
  mobiflow::Trace benign = collect_benign(config);
  EvalConfig eval;
  eval.detector.epochs = 4;
  auto detector = train_detector(ModelKind::kAutoencoder, benign, eval);
  ASSERT_NE(detector, nullptr);
  EXPECT_GT(detector->threshold(), 0.0);

  // Scoring the training data flags at most ~1% + slack (99th percentile).
  detect::FeatureEncoder encoder(eval.features);
  auto dataset =
      detect::WindowDataset::from_trace(benign, encoder, eval.window_size);
  auto scores = detector->score(dataset);
  std::size_t flagged = 0;
  for (double s : scores)
    if (detector->is_anomalous(s)) ++flagged;
  EXPECT_LE(flagged, scores.size() / 50 + 2);
}

TEST(Pipeline, AssemblyInvariants) {
  Pipeline pipeline;
  EXPECT_NE(pipeline.node_id(), 0u);
  EXPECT_TRUE(pipeline.agent().subscribed());
  EXPECT_NE(pipeline.ric().find_xapp("mobiwatch"), nullptr);
  EXPECT_NE(pipeline.ric().find_xapp("llm-analyzer"), nullptr);
  EXPECT_FALSE(pipeline.mobiwatch().has_detector());
  EXPECT_EQ(pipeline.ric().connected_nodes().size(), 1u);
}

TEST(Pipeline, MultiCellConnectsOneAgentPerSite) {
  PipelineConfig config;
  config.testbed.num_cells = 3;
  Pipeline pipeline(config);
  EXPECT_EQ(pipeline.agent_count(), 3u);
  EXPECT_EQ(pipeline.ric().connected_nodes().size(), 3u);
  EXPECT_NE(pipeline.node_id(0), pipeline.node_id(1));
  // MobiWatch subscribed to every node at startup.
  for (std::size_t site = 0; site < 3; ++site)
    EXPECT_TRUE(pipeline.agent(site).subscribed()) << site;

  // UEs on different cells register against the shared AMF, and their
  // telemetry reaches MobiWatch through their respective agents.
  for (std::size_t site = 0; site < 3; ++site) {
    ran::UeConfig ue;
    ue.supi = ran::Supi{ran::Plmn::test_network(),
                        7000 + static_cast<std::uint64_t>(site)};
    ue.seed = site + 1;
    pipeline.testbed().add_ue(ue, SimTime::from_ms(1 + site * 5), site);
  }
  pipeline.run_for(SimDuration::from_s(2));
  EXPECT_EQ(pipeline.testbed().amf().registered_count(), 3u);
  std::size_t total_records = 0;
  for (std::size_t site = 0; site < 3; ++site) {
    EXPECT_GT(pipeline.agent(site).records_collected(), 10u) << site;
    total_records += pipeline.agent(site).records_collected();
  }
  EXPECT_EQ(pipeline.mobiwatch().records_seen(), total_records);
}

TEST(Pipeline, MultiCellPagingBroadcastsToAllCells) {
  PipelineConfig config;
  config.testbed.num_cells = 2;
  Pipeline pipeline(config);
  ran::UeConfig ue;
  ue.supi = ran::Supi{ran::Plmn::test_network(), 8000};
  pipeline.testbed().add_ue(ue, SimTime::from_ms(1), /*cell=*/0);
  pipeline.run_for(SimDuration::from_s(2));
  ASSERT_TRUE(pipeline.testbed().amf().page(ue.supi));
  pipeline.run_for(SimDuration::from_ms(50));
  // Both cells broadcast the page; each agent recorded it, so the paging
  // record appears twice in the SDL (once per cell).
  std::size_t paging_records = 0;
  oran::Sdl& sdl = pipeline.ric().sdl();
  for (const auto& key : sdl.keys("mobiflow")) {
    auto raw = sdl.get("mobiflow", key);
    if (!raw) continue;
    auto record = mobiflow::Record::from_kv_bytes(*raw);
    if (record && record.value().msg == mobiflow::vocab::MsgType::kPaging)
      ++paging_records;
  }
  EXPECT_EQ(paging_records, 2u);
}

TEST(Pipeline, ControlPathAppliesToGnb) {
  Pipeline pipeline;
  // Issue a stale-release control through the full E2 path; with no
  // contexts it succeeds as a no-op ack (success=false since 0 released).
  mobiflow::ControlCommand cmd;
  cmd.action = mobiflow::ControlCommand::Action::kBlockTmsi;
  cmd.s_tmsi = 0x42;
  pipeline.ric().send_control(pipeline.ric().find_xapp("mobiwatch"),
                              pipeline.node_id(),
                              oran::e2sm::kMobiFlowFunctionId, {},
                              mobiflow::encode_control(cmd));
  pipeline.run_for(SimDuration::from_ms(10));
  EXPECT_EQ(pipeline.testbed().gnb().blocked_tmsi_count(), 1u);
}

}  // namespace
}  // namespace xsec::core
