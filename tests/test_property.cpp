// Property-style tests: randomized sweeps over invariants that must hold
// for ALL inputs — codec round-trips under random messages, reader safety
// under random truncation/corruption, percentile monotonicity, event-queue
// ordering under random schedules, allocator uniqueness.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/plot.hpp"
#include "common/rng.hpp"
#include "detect/ensemble.hpp"
#include "detect/scorer.hpp"
#include "oran/e2sm.hpp"
#include "ran/codec.hpp"
#include "ran/ue.hpp"
#include "sim/event_queue.hpp"

namespace xsec {
namespace {

using xsec::Bytes;

// --- Random message generators ------------------------------------------

ran::MobileIdentity random_identity(Rng& rng) {
  ran::Supi supi{ran::Plmn::test_network(), rng.uniform_u64(1, 9999999999ULL)};
  switch (rng.uniform_u64(0, 3)) {
    case 0:
      return ran::MobileIdentity::from_suci(
          ran::make_suci(supi, static_cast<std::uint32_t>(
                                   rng.uniform_u64(1, 0xffffff)),
                         rng.chance(0.2)));
    case 1: {
      ran::Guti guti;
      guti.s_tmsi = ran::STmsi::from_packed(rng.uniform_u64(0, (1ULL << 48) - 1));
      return ran::MobileIdentity::from_guti(guti);
    }
    case 2:
      return ran::MobileIdentity::from_supi_plain(supi);
    default:
      return ran::MobileIdentity{};
  }
}

ran::NasMessage random_nas(Rng& rng) {
  switch (rng.uniform_u64(0, 7)) {
    case 0: {
      ran::RegistrationRequest m;
      m.type = static_cast<ran::RegistrationType>(rng.uniform_u64(1, 4));
      m.ng_ksi = static_cast<std::uint8_t>(rng.uniform_u64(0, 7));
      m.identity = random_identity(rng);
      m.capabilities = ran::SecurityCapabilities{
          static_cast<std::uint8_t>(rng.uniform_u64(0, 15)),
          static_cast<std::uint8_t>(rng.uniform_u64(0, 15))};
      return ran::NasMessage{m};
    }
    case 1:
      return ran::NasMessage{ran::AuthenticationRequest{
          static_cast<std::uint8_t>(rng.uniform_u64(0, 7)), rng(), rng()}};
    case 2:
      return ran::NasMessage{ran::AuthenticationResponse{rng()}};
    case 3:
      return ran::NasMessage{ran::IdentityResponse{random_identity(rng)}};
    case 4: {
      ran::NasSecurityModeCommand m;
      m.cipher = static_cast<ran::CipherAlg>(rng.uniform_u64(0, 3));
      m.integrity = static_cast<ran::IntegrityAlg>(rng.uniform_u64(0, 3));
      return ran::NasMessage{m};
    }
    case 5: {
      ran::RegistrationAccept m;
      m.guti.s_tmsi =
          ran::STmsi::from_packed(rng.uniform_u64(0, (1ULL << 48) - 1));
      m.t3512_min = static_cast<std::uint16_t>(rng.uniform_u64(0, 65535));
      return ran::NasMessage{m};
    }
    case 6: {
      ran::ServiceRequest m;
      if (rng.chance(0.5))
        m.s_tmsi =
            ran::STmsi::from_packed(rng.uniform_u64(0, (1ULL << 48) - 1));
      return ran::NasMessage{m};
    }
    default:
      return ran::NasMessage{ran::RegistrationComplete{}};
  }
}

ran::RrcMessage random_rrc(Rng& rng) {
  switch (rng.uniform_u64(0, 5)) {
    case 0: {
      ran::RrcSetupRequest m;
      m.ue_identity.kind = static_cast<ran::InitialUeIdentity::Kind>(
          rng.uniform_u64(0, 1));
      m.ue_identity.value = rng.uniform_u64(0, (1ULL << 39) - 1);
      m.cause = static_cast<ran::EstablishmentCause>(rng.uniform_u64(0, 9));
      return ran::RrcMessage{m};
    }
    case 1: {
      ran::RrcSetupComplete m;
      m.dedicated_nas = ran::encode_nas(random_nas(rng));
      if (rng.chance(0.5))
        m.s_tmsi =
            ran::STmsi::from_packed(rng.uniform_u64(0, (1ULL << 48) - 1));
      return ran::RrcMessage{m};
    }
    case 2: {
      ran::RrcSecurityModeCommand m;
      m.cipher = static_cast<ran::CipherAlg>(rng.uniform_u64(0, 3));
      m.integrity = static_cast<ran::IntegrityAlg>(rng.uniform_u64(0, 3));
      return ran::RrcMessage{m};
    }
    case 3:
      return ran::RrcMessage{
          ran::DlInformationTransfer{ran::encode_nas(random_nas(rng))}};
    case 4: {
      ran::MeasurementReport m;
      m.rsrp_dbm = static_cast<std::int8_t>(rng.uniform_i64(-127, 0));
      m.rsrq_db = static_cast<std::int8_t>(rng.uniform_i64(-30, 0));
      return ran::RrcMessage{m};
    }
    default: {
      ran::RrcRelease m;
      m.cause = static_cast<ran::RrcRelease::Cause>(rng.uniform_u64(0, 1));
      m.suspend = rng.chance(0.5);
      return ran::RrcMessage{m};
    }
  }
}

// --- Codec properties -----------------------------------------------------

class CodecProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecProperty, RandomNasRoundTripsExactly) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    ran::NasMessage msg = random_nas(rng);
    Bytes wire = ran::encode_nas(msg);
    auto decoded = ran::decode_nas(wire);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(ran::encode_nas(decoded.value()), wire);
  }
}

TEST_P(CodecProperty, RandomRrcRoundTripsExactly) {
  Rng rng(GetParam() ^ 0xabc);
  for (int i = 0; i < 200; ++i) {
    ran::RrcMessage msg = random_rrc(rng);
    Bytes wire = ran::encode_rrc(msg);
    auto decoded = ran::decode_rrc(wire);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(ran::encode_rrc(decoded.value()), wire);
  }
}

TEST_P(CodecProperty, RandomCorruptionNeverCrashesDecoders) {
  Rng rng(GetParam() ^ 0xdef);
  for (int i = 0; i < 300; ++i) {
    Bytes wire = ran::encode_nas(random_nas(rng));
    // Random byte flips and truncation.
    if (!wire.empty() && rng.chance(0.7))
      wire[rng.uniform_u64(0, wire.size() - 1)] ^=
          static_cast<std::uint8_t>(rng.uniform_u64(1, 255));
    if (rng.chance(0.5)) wire.resize(rng.uniform_u64(0, wire.size()));
    (void)ran::decode_nas(wire);   // must not crash
    (void)ran::decode_rrc(wire);   // cross-decoder abuse
    (void)ran::decode_f1ap(wire);
    (void)ran::decode_ngap(wire);
  }
}

TEST_P(CodecProperty, RandomOpaqueRowsRoundTrip) {
  Rng rng(GetParam() ^ 0x777);
  oran::e2sm::IndicationMessage message;
  for (int r = 0; r < 20; ++r) {
    Bytes row(rng.uniform_u64(0, 64));
    for (auto& b : row)
      b = static_cast<std::uint8_t>(rng.uniform_u64(0, 255));
    message.rows.push_back(std::move(row));
  }
  auto decoded = oran::e2sm::decode_indication_message(
      oran::e2sm::encode_indication_message(message));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().rows.size(), message.rows.size());
  for (std::size_t i = 0; i < message.rows.size(); ++i)
    EXPECT_EQ(decoded.value().rows[i], message.rows[i]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecProperty,
                         ::testing::Values(1, 2, 3, 42, 1337));

// --- E2AP wire robustness -------------------------------------------------

Bytes random_blob(Rng& rng, std::size_t max_len) {
  Bytes blob(rng.uniform_u64(0, max_len));
  for (auto& b : blob) b = static_cast<std::uint8_t>(rng.uniform_u64(0, 255));
  return blob;
}

oran::RicRequestId random_request_id(Rng& rng) {
  return {static_cast<std::uint32_t>(rng.uniform_u64(0, 0xffffffff)),
          static_cast<std::uint32_t>(rng.uniform_u64(0, 0xffffffff))};
}

/// One random encoding of every E2AP PDU type.
std::vector<Bytes> random_e2ap_wires(Rng& rng) {
  std::vector<Bytes> wires;
  oran::E2SetupRequest setup;
  setup.node_id = rng();
  for (std::uint64_t i = 0, n = rng.uniform_u64(0, 3); i < n; ++i) {
    oran::RanFunction f;
    f.function_id = static_cast<std::uint16_t>(rng.uniform_u64(0, 0xffff));
    f.oid = "1.3.6.1.4.1." + std::to_string(rng.uniform_u64(0, 999));
    f.description = "fn";
    f.definition = random_blob(rng, 16);
    setup.functions.push_back(std::move(f));
  }
  wires.push_back(encode_e2ap(setup));

  oran::E2SetupResponse setup_response;
  for (std::uint64_t i = 0, n = rng.uniform_u64(0, 4); i < n; ++i)
    setup_response.accepted_function_ids.push_back(
        static_cast<std::uint16_t>(rng.uniform_u64(0, 0xffff)));
  wires.push_back(encode_e2ap(setup_response));

  oran::RicSubscriptionRequest sub;
  sub.request_id = random_request_id(rng);
  sub.ran_function_id = static_cast<std::uint16_t>(rng.uniform_u64(0, 0xffff));
  sub.event_trigger = random_blob(rng, 24);
  for (std::uint64_t i = 0, n = rng.uniform_u64(0, 3); i < n; ++i) {
    oran::RicAction action;
    action.action_id = static_cast<std::uint16_t>(rng.uniform_u64(0, 0xffff));
    action.type = static_cast<oran::RicActionType>(rng.uniform_u64(0, 2));
    action.definition = random_blob(rng, 16);
    sub.actions.push_back(std::move(action));
  }
  wires.push_back(encode_e2ap(sub));

  oran::RicSubscriptionResponse sub_response;
  sub_response.request_id = random_request_id(rng);
  for (std::uint64_t i = 0, n = rng.uniform_u64(0, 3); i < n; ++i)
    sub_response.admitted_action_ids.push_back(
        static_cast<std::uint16_t>(rng.uniform_u64(0, 0xffff)));
  wires.push_back(encode_e2ap(sub_response));

  oran::RicSubscriptionDeleteRequest sub_delete;
  sub_delete.request_id = random_request_id(rng);
  wires.push_back(encode_e2ap(sub_delete));

  oran::RicIndication indication;
  indication.request_id = random_request_id(rng);
  indication.sequence_number =
      static_cast<std::uint32_t>(rng.uniform_u64(0, 0xffffffff));
  indication.type = static_cast<oran::RicIndicationType>(rng.uniform_u64(0, 1));
  indication.header = random_blob(rng, 32);
  indication.message = random_blob(rng, 64);
  wires.push_back(encode_e2ap(indication));

  oran::RicControlRequest control;
  control.request_id = random_request_id(rng);
  control.header = random_blob(rng, 16);
  control.message = random_blob(rng, 32);
  wires.push_back(encode_e2ap(control));

  oran::RicControlAck ack;
  ack.request_id = random_request_id(rng);
  ack.success = rng.chance(0.5);
  wires.push_back(encode_e2ap(ack));

  oran::RicIndicationNack nack;
  std::size_t range_count = 1 + rng.uniform_u64(0, 3);
  for (std::size_t i = 0; i < range_count; ++i) {
    oran::NackRange range;
    range.request_id = random_request_id(rng);
    range.first_sequence =
        static_cast<std::uint32_t>(rng.uniform_u64(0, 0x7fffffff));
    range.last_sequence =
        range.first_sequence +
        static_cast<std::uint32_t>(rng.uniform_u64(0, 1000));
    nack.ranges.push_back(range);
  }
  wires.push_back(encode_e2ap(nack));
  return wires;
}

/// Runs every E2AP decoder over the wire; none may crash.
void decode_with_all(const Bytes& wire) {
  (void)oran::e2ap_type(wire);
  (void)oran::decode_setup_request(wire);
  (void)oran::decode_setup_response(wire);
  (void)oran::decode_subscription_request(wire);
  (void)oran::decode_subscription_response(wire);
  (void)oran::decode_subscription_delete(wire);
  (void)oran::decode_indication(wire);
  (void)oran::decode_indication_nack(wire);
  (void)oran::decode_control_request(wire);
  (void)oran::decode_control_ack(wire);
}

class E2apProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(E2apProperty, EveryTruncationOfEveryTypeRejected) {
  Rng rng(GetParam() ^ 0xe2a9);
  for (int round = 0; round < 20; ++round) {
    std::vector<Bytes> wires = random_e2ap_wires(rng);
    ASSERT_EQ(wires.size(), 9u);  // one per E2apType
    for (std::size_t type = 0; type < wires.size(); ++type) {
      const Bytes& wire = wires[type];
      for (std::size_t len = 0; len < wire.size(); ++len) {
        Bytes cut(wire.begin(), wire.begin() + len);
        bool ok = false;
        switch (static_cast<oran::E2apType>(type)) {
          case oran::E2apType::kSetupRequest:
            ok = oran::decode_setup_request(cut).ok();
            break;
          case oran::E2apType::kSetupResponse:
            ok = oran::decode_setup_response(cut).ok();
            break;
          case oran::E2apType::kSubscriptionRequest:
            ok = oran::decode_subscription_request(cut).ok();
            break;
          case oran::E2apType::kSubscriptionResponse:
            ok = oran::decode_subscription_response(cut).ok();
            break;
          case oran::E2apType::kSubscriptionDeleteRequest:
            ok = oran::decode_subscription_delete(cut).ok();
            break;
          case oran::E2apType::kIndication:
            ok = oran::decode_indication(cut).ok();
            break;
          case oran::E2apType::kControlRequest:
            ok = oran::decode_control_request(cut).ok();
            break;
          case oran::E2apType::kControlAck:
            ok = oran::decode_control_ack(cut).ok();
            break;
          case oran::E2apType::kIndicationNack:
            ok = oran::decode_indication_nack(cut).ok();
            break;
        }
        EXPECT_FALSE(ok) << "type " << type << " decoded from a "
                         << len << "-byte prefix of " << wire.size();
        decode_with_all(cut);  // cross-decoder abuse must not crash either
      }
    }
  }
}

TEST_P(E2apProperty, RandomBitFlipsNeverCrashAnyDecoder) {
  Rng rng(GetParam() ^ 0xf11b);
  for (int round = 0; round < 40; ++round) {
    for (Bytes wire : random_e2ap_wires(rng)) {
      if (wire.empty()) continue;
      for (int flips = 0, n = static_cast<int>(rng.uniform_u64(1, 4));
           flips < n; ++flips)
        wire[rng.uniform_u64(0, wire.size() - 1)] ^=
            static_cast<std::uint8_t>(1u << rng.uniform_u64(0, 7));
      decode_with_all(wire);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, E2apProperty,
                         ::testing::Values(31, 32, 33, 4242));

// --- MobiFlow record wire properties ---------------------------------------

mobiflow::Record random_record(Rng& rng) {
  namespace vocab = mobiflow::vocab;
  mobiflow::Record r;
  // Zigzag-encoded: negative timestamps must survive too.
  r.timestamp_us = rng.uniform_i64(-1'000'000, 4'000'000'000LL);
  r.gnb_id = rng.uniform_u64(0, 1ULL << 32);
  r.cell = static_cast<std::uint32_t>(rng.uniform_u64(0, 0xFFFF));
  r.ue_id = rng.uniform_u64(0, 1ULL << 40);
  r.protocol = static_cast<vocab::Protocol>(rng.uniform_u64(0, 2));
  r.msg =
      static_cast<vocab::MsgType>(rng.uniform_u64(0, vocab::kMsgTypeCount - 1));
  r.direction = static_cast<vocab::Direction>(rng.uniform_u64(0, 1));
  r.rnti = static_cast<std::uint16_t>(rng.uniform_u64(0, 0xFFFF));
  r.s_tmsi = rng.uniform_u64(0, (1ULL << 48) - 1);
  r.cipher_alg = static_cast<vocab::CipherAlg>(
      rng.uniform_u64(0, vocab::kCipherAlgCount - 1));
  r.integrity_alg = static_cast<vocab::IntegrityAlg>(
      rng.uniform_u64(0, vocab::kIntegrityAlgCount - 1));
  r.establishment_cause = static_cast<vocab::EstablishmentCause>(
      rng.uniform_u64(0, vocab::kEstablishmentCauseCount - 1));
  if (rng.chance(0.3))
    r.supi_plain = "imsi-00101" + std::to_string(rng.uniform_u64(0, 1 << 30));
  if (rng.chance(0.3))
    r.suci = "suci-001-01-1-" + std::to_string(rng.uniform_u64(0, 1 << 30));
  return r;
}

class RecordProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RecordProperty, RandomRecordRoundTripsExactly) {
  Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    mobiflow::Record r = random_record(rng);
    auto back = mobiflow::Record::from_kv_bytes(r.to_kv_bytes());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), r);
  }
}

TEST_P(RecordProperty, EveryTruncationRejectedAndTrailingBytesRejected) {
  Rng rng(GetParam() ^ 0x5A5A);
  for (int i = 0; i < 30; ++i) {
    mobiflow::Record r = random_record(rng);
    Bytes wire = r.to_kv_bytes();
    // Every strict prefix is an incomplete record.
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
      Bytes prefix(wire.begin(), wire.begin() + static_cast<long>(cut));
      EXPECT_FALSE(mobiflow::Record::from_kv_bytes(prefix).ok())
          << "prefix of length " << cut << " decoded";
    }
    // Bytes after the end marker are a framing error, not padding.
    Bytes padded = wire;
    padded.push_back(0x00);
    EXPECT_FALSE(mobiflow::Record::from_kv_bytes(padded).ok());
  }
}

TEST_P(RecordProperty, RandomCorruptionNeverCrashesRecordDecode) {
  Rng rng(GetParam() ^ 0xC0DE);
  for (int i = 0; i < 300; ++i) {
    Bytes wire = random_record(rng).to_kv_bytes();
    std::size_t flips = rng.uniform_u64(1, 4);
    for (std::size_t f = 0; f < flips; ++f)
      wire[rng.uniform_u64(0, wire.size() - 1)] ^=
          static_cast<std::uint8_t>(rng.uniform_u64(1, 255));
    auto decoded = mobiflow::Record::from_kv_bytes(wire);  // must not crash
    if (decoded.ok()) {
      // Whatever decoded must itself round-trip (enum fields stayed in
      // range, so re-encoding is well defined).
      auto again =
          mobiflow::Record::from_kv_bytes(decoded.value().to_kv_bytes());
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(again.value(), decoded.value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecordProperty,
                         ::testing::Values(4, 5, 6, 77, 2024));

// --- Percentile properties -------------------------------------------------

class PercentileProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PercentileProperty, MonotoneInPAndBounded) {
  Rng rng(GetParam());
  std::vector<double> values;
  std::size_t n = rng.uniform_u64(1, 200);
  for (std::size_t i = 0; i < n; ++i) values.push_back(rng.normal(0, 10));
  double lo = *std::min_element(values.begin(), values.end());
  double hi = *std::max_element(values.begin(), values.end());
  double previous = lo;
  for (double p : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    double value = percentile(values, p);
    EXPECT_GE(value, lo);
    EXPECT_LE(value, hi);
    EXPECT_GE(value, previous - 1e-12);
    previous = value;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileProperty,
                         ::testing::Values(7, 8, 9, 10));

// --- Event queue property --------------------------------------------------

class QueueProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueueProperty, ExecutionTimesNeverDecrease) {
  Rng rng(GetParam());
  sim::EventQueue queue;
  std::vector<std::int64_t> executed_at;
  // Random schedule, including re-entrant scheduling from handlers.
  for (int i = 0; i < 100; ++i) {
    SimTime t{static_cast<std::int64_t>(rng.uniform_u64(0, 10000))};
    queue.schedule_at(t, [&executed_at, &queue, &rng] {
      executed_at.push_back(queue.now().us);
      if (rng.chance(0.3))
        queue.schedule_after(
            SimDuration::from_us(
                static_cast<std::int64_t>(rng.uniform_u64(0, 500))),
            [&executed_at, &queue] {
              executed_at.push_back(queue.now().us);
            });
    });
  }
  queue.run_all();
  for (std::size_t i = 1; i < executed_at.size(); ++i)
    EXPECT_LE(executed_at[i - 1], executed_at[i]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueProperty, ::testing::Values(11, 12, 13));

// --- SUCI property --------------------------------------------------------

class SuciProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SuciProperty, ConcealmentAlwaysInvertible) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    ran::Supi supi{ran::Plmn::test_network(),
                   rng.uniform_u64(0, 9'999'999'999ULL)};
    auto nonce = static_cast<std::uint32_t>(rng.uniform_u64(1, 0xffffff));
    bool null_scheme = rng.chance(0.3);
    ran::Suci suci = ran::make_suci(supi, nonce, null_scheme);
    EXPECT_EQ(ran::deconceal_suci(suci), supi.msin);
    EXPECT_EQ(suci.is_null_scheme(), null_scheme);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SuciProperty, ::testing::Values(21, 22, 23));

// --- Standardizer property --------------------------------------------------

TEST(StandardizerProperty, TrainingDataMapsToZeroMeanUnitVariance) {
  Rng rng(31);
  dl::Matrix data(200, 6);
  for (std::size_t r = 0; r < data.rows(); ++r)
    for (std::size_t c = 0; c < data.cols(); ++c)
      data.at(r, c) = static_cast<float>(
          rng.normal(static_cast<double>(c), 1.0 + static_cast<double>(c)));
  detect::Standardizer scaler;
  scaler.fit(data);
  dl::Matrix scaled = data;
  scaler.apply(scaled);
  for (std::size_t c = 0; c < scaled.cols(); ++c) {
    double mean = 0, sq = 0;
    for (std::size_t r = 0; r < scaled.rows(); ++r) {
      mean += scaled.at(r, c);
      sq += scaled.at(r, c) * scaled.at(r, c);
    }
    mean /= static_cast<double>(scaled.rows());
    double var = sq / static_cast<double>(scaled.rows()) - mean * mean;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

// --- Windowing property -----------------------------------------------------

class WindowProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WindowProperty, LabelCountsConsistentForAnyWindowSize) {
  std::size_t window = GetParam();
  Rng rng(window * 101);
  mobiflow::Trace trace;
  std::vector<bool> truth;
  for (int i = 0; i < 60; ++i) {
    mobiflow::Record r;
    r.protocol = mobiflow::vocab::Protocol::kRrc;
    r.msg = mobiflow::vocab::MsgType::kMeasurementReport;
    r.direction = mobiflow::vocab::Direction::kUl;
    r.rnti = 1;
    r.timestamp_us = i;
    bool malicious = rng.chance(0.1);
    truth.push_back(malicious);
    trace.add(r, malicious);
  }
  detect::FeatureEncoder encoder;
  auto dataset = detect::WindowDataset::from_trace(trace, encoder, window);
  auto ae = dataset.ae_labels();
  ASSERT_EQ(ae.size(), dataset.ae_sample_count());
  for (std::size_t s = 0; s < ae.size(); ++s) {
    bool any = false;
    for (std::size_t t = 0; t < window; ++t) any = any || truth[s + t];
    EXPECT_EQ(ae[s], any);
  }
  auto lstm = dataset.lstm_labels();
  for (std::size_t s = 0; s < lstm.size(); ++s) {
    bool any = false;
    for (std::size_t t = 0; t <= window; ++t) any = any || truth[s + t];
    EXPECT_EQ(lstm[s], any);
  }
}

INSTANTIATE_TEST_SUITE_P(WindowSizes, WindowProperty,
                         ::testing::Values(2, 3, 5, 8, 10));

// --- Batched scoring property ------------------------------------------
//
// The batched inference entry point (score_windows) must be bit-identical
// to scoring every window one at a time (score_window) AND to the dataset
// scoring path that produces the Table 2 reproduction — the MobiWatch
// batching optimization is not allowed to move any detector metric.

mobiflow::Trace batched_scoring_trace() {
  Rng rng(47);
  mobiflow::Trace trace;
  for (int i = 0; i < 60; ++i) {
    mobiflow::Record r;
    r.protocol = mobiflow::vocab::Protocol::kRrc;
    r.msg = rng.chance(0.5) ? mobiflow::vocab::MsgType::kMeasurementReport
                            : mobiflow::vocab::MsgType::kRrcReconfiguration;
    r.direction = mobiflow::vocab::Direction::kUl;
    r.rnti = 1;
    r.timestamp_us = i * 1000;
    trace.add(r, false);
  }
  return trace;
}

TEST(BatchedScoringProperty, BatchedBitIdenticalToSingleAndDatasetScoring) {
  const std::size_t window = 5;
  detect::FeatureEncoder encoder;
  auto trace = batched_scoring_trace();
  auto dataset = detect::WindowDataset::from_trace(trace, encoder, window);
  const dl::Matrix& feats = dataset.features();

  detect::DetectorConfig config;
  config.epochs = 3;

  detect::AutoencoderDetector ae(window, encoder.dim(), config, {32, 8});
  ae.fit(dataset);
  const std::size_t ae_windows = feats.rows() - window + 1;
  std::vector<double> batched(ae_windows);
  ae.score_windows(feats.row(0), encoder.dim(), window, ae_windows,
                   batched.data());
  std::vector<double> table2 = ae.score(dataset);
  ASSERT_EQ(table2.size(), ae_windows);
  for (std::size_t w = 0; w < ae_windows; ++w) {
    EXPECT_EQ(batched[w], ae.score_window(feats.row(w), window)) << w;
    EXPECT_EQ(batched[w], table2[w]) << w;
  }

  detect::LstmDetector lstm(window, encoder.dim(), config, 16);
  lstm.fit(dataset);
  const std::size_t lstm_windows = feats.rows() - window;
  std::vector<double> lstm_batched(lstm_windows);
  lstm.score_windows(feats.row(0), encoder.dim(), window + 1, lstm_windows,
                     lstm_batched.data());
  std::vector<double> lstm_table2 = lstm.score(dataset);
  ASSERT_EQ(lstm_table2.size(), lstm_windows);
  for (std::size_t w = 0; w < lstm_windows; ++w) {
    EXPECT_EQ(lstm_batched[w], lstm.score_window(feats.row(w), window + 1))
        << w;
    EXPECT_EQ(lstm_batched[w], lstm_table2[w]) << w;
  }

  detect::EnsembleConfig ensemble_config;
  ensemble_config.detector = config;
  detect::EnsembleDetector ensemble(window, encoder.dim(),
                                    detect::groups_by_category(encoder),
                                    ensemble_config);
  ensemble.fit(dataset);
  std::vector<double> ens_batched(ae_windows);
  ensemble.score_windows(feats.row(0), encoder.dim(), window, ae_windows,
                         ens_batched.data());
  std::vector<double> ens_table2 = ensemble.score(dataset);
  for (std::size_t w = 0; w < ae_windows; ++w) {
    EXPECT_EQ(ens_batched[w], ensemble.score_window(feats.row(w), window))
        << w;
    EXPECT_EQ(ens_batched[w], ens_table2[w]) << w;
  }
}

}  // namespace
}  // namespace xsec
