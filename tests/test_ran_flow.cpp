// End-to-end RAN protocol flow tests: UE <-> gNB <-> AMF on the testbed.
#include <gtest/gtest.h>

#include "sim/testbed.hpp"

namespace xsec {
namespace {

using ran::Ue;

ran::UeConfig basic_ue(std::uint64_t msin, std::uint64_t seed = 1) {
  ran::UeConfig config;
  config.supi = ran::Supi{ran::Plmn::test_network(), msin};
  config.seed = seed;
  config.activity_reports = 1;
  return config;
}

TEST(AttachFlow, FullRegistrationSucceeds) {
  sim::Testbed testbed;
  Ue* ue = testbed.add_ue(basic_ue(100), SimTime::from_ms(1));
  testbed.run_for(SimDuration::from_s(2));
  EXPECT_EQ(testbed.amf().registered_count(), 1u);
  EXPECT_TRUE(ue->guti().has_value());
  EXPECT_TRUE(ue->session_ended());
  EXPECT_EQ(ue->selected_cipher(), ran::CipherAlg::kNea2);
  EXPECT_EQ(ue->selected_integrity(), ran::IntegrityAlg::kNia2);
}

TEST(AttachFlow, RntiAssignedAndRecorded) {
  sim::Testbed testbed;
  Ue* ue = testbed.add_ue(basic_ue(101), SimTime::from_ms(1));
  testbed.run_for(SimDuration::from_s(2));
  EXPECT_EQ(ue->rnti_history().size(), 1u);
}

TEST(AttachFlow, DeregistrationReleasesContext) {
  sim::Testbed testbed;
  ran::UeConfig config = basic_ue(102);
  config.deregister_at_end = true;
  testbed.add_ue(config, SimTime::from_ms(1));
  testbed.run_for(SimDuration::from_s(2));
  EXPECT_EQ(testbed.gnb().active_contexts(), 0u);
  EXPECT_EQ(testbed.amf().active_sessions(), 0u);
}

TEST(AttachFlow, IdleUeReleasedByInactivityTimer) {
  sim::Testbed testbed;
  ran::UeConfig config = basic_ue(103);
  config.deregister_at_end = false;
  config.activity_reports = 0;
  Ue* ue = testbed.add_ue(config, SimTime::from_ms(1));
  testbed.run_for(SimDuration::from_s(3));
  EXPECT_TRUE(ue->session_ended());
  EXPECT_EQ(testbed.gnb().active_contexts(), 0u);
}

TEST(AttachFlow, GutiReuseSkipsIdentityProcedures) {
  sim::Testbed testbed;
  // First session: initial registration establishes a GUTI.
  Ue* first = testbed.add_ue(basic_ue(104, 1), SimTime::from_ms(1));
  testbed.run_for(SimDuration::from_s(2));
  ASSERT_TRUE(first->guti().has_value());

  // Second session: returning subscriber presents the stored GUTI.
  ran::UeConfig config = basic_ue(104, 2);
  config.stored_guti = first->guti();
  Ue* second = testbed.add_ue(config, testbed.now() + SimDuration::from_ms(1));
  testbed.run_for(SimDuration::from_s(2));
  EXPECT_EQ(testbed.amf().registered_count(), 2u);
  // A fresh GUTI is allocated on every successful registration.
  ASSERT_TRUE(second->guti().has_value());
  EXPECT_NE(second->guti()->s_tmsi.packed(), first->guti()->s_tmsi.packed());
}

TEST(AttachFlow, RadioLossTriggersT300Retransmission) {
  sim::TestbedConfig config;
  config.radio.loss_probability = 0.25;
  config.seed = 5;
  sim::Testbed testbed(config);
  // Several UEs; with 25% loss some setups need retransmission but all
  // sessions should still complete.
  for (int i = 0; i < 10; ++i)
    testbed.add_ue(basic_ue(200 + static_cast<std::uint64_t>(i),
                            static_cast<std::uint64_t>(i + 1)),
                   SimTime::from_ms(1 + i * 60));
  testbed.run_for(SimDuration::from_s(4));
  EXPECT_GE(testbed.amf().registered_count(), 7u);
  EXPECT_GT(testbed.cell().frames_lost(), 0u);
}

TEST(Gnb, AdmissionControlRejectsWhenFull) {
  sim::TestbedConfig config;
  config.gnb.max_ue_contexts = 3;
  sim::Testbed testbed(config);
  for (int i = 0; i < 6; ++i) {
    ran::UeConfig ue = basic_ue(300 + static_cast<std::uint64_t>(i),
                                static_cast<std::uint64_t>(i + 1));
    ue.deregister_at_end = false;
    ue.activity_reports = 0;
    testbed.add_ue(ue, SimTime::from_ms(1));  // all at once
  }
  testbed.run_for(SimDuration::from_ms(100));
  EXPECT_EQ(testbed.gnb().active_contexts(), 3u);
  EXPECT_EQ(testbed.gnb().rejected_connections(), 3u);
}

TEST(Gnb, IncompleteContextGarbageCollected) {
  // A UE that stalls mid-attach is released after context_setup_timeout.
  class StallingUe : public Ue {
   public:
    using Ue::Ue;

   protected:
    void handle_authentication_request(
        const ran::AuthenticationRequest&) override {}
  };

  sim::Testbed testbed;
  ran::Supi supi{ran::Plmn::test_network(), 400};
  testbed.add_custom_ue(
      supi,
      [&](ran::UeHooks hooks) {
        return std::make_unique<StallingUe>(basic_ue(400), std::move(hooks));
      },
      SimTime::from_ms(1));
  testbed.run_for(SimDuration::from_ms(200));
  EXPECT_EQ(testbed.gnb().active_contexts(), 1u);
  testbed.run_for(SimDuration::from_s(1));
  EXPECT_EQ(testbed.gnb().active_contexts(), 0u);
  EXPECT_EQ(testbed.amf().registered_count(), 0u);
}

TEST(Gnb, ForceReleaseRemovesContext) {
  sim::Testbed testbed;
  ran::UeConfig config = basic_ue(500);
  config.deregister_at_end = false;
  config.activity_reports = 0;
  Ue* ue = testbed.add_ue(config, SimTime::from_ms(1));
  testbed.run_for(SimDuration::from_ms(100));
  ASSERT_TRUE(ue->rnti().has_value());
  EXPECT_TRUE(testbed.gnb().force_release(*ue->rnti()));
  testbed.run_for(SimDuration::from_ms(50));
  EXPECT_EQ(testbed.gnb().active_contexts(), 0u);
  EXPECT_FALSE(testbed.gnb().force_release(ran::Rnti{0x0042}));
}

TEST(Amf, UnknownSubscriberRejected) {
  sim::Testbed testbed;
  // Bypass add_ue's auto-provisioning by provisioning a different SUPI.
  ran::Supi provisioned{ran::Plmn::test_network(), 600};
  ran::Supi rogue{ran::Plmn::test_network(), 601};
  auto config = basic_ue(601);
  Ue* ue = testbed.add_custom_ue(
      provisioned,
      [&](ran::UeHooks hooks) {
        return std::make_unique<Ue>(config, std::move(hooks));
      },
      SimTime::from_ms(1));
  (void)rogue;
  testbed.run_for(SimDuration::from_s(2));
  EXPECT_EQ(testbed.amf().registered_count(), 0u);
  EXPECT_TRUE(ue->session_ended());
}

TEST(Amf, WrongResRejectedAndCounted) {
  // A UE claiming another subscriber's GUTI cannot pass 5G-AKA.
  sim::Testbed testbed;
  Ue* victim = testbed.add_ue(basic_ue(700, 1), SimTime::from_ms(1));
  testbed.run_for(SimDuration::from_s(2));
  ASSERT_TRUE(victim->guti().has_value());

  ran::UeConfig imposter = basic_ue(701, 2);  // different key material
  imposter.stored_guti = victim->guti();
  testbed.add_ue(imposter, testbed.now() + SimDuration::from_ms(1));
  testbed.run_for(SimDuration::from_s(2));
  EXPECT_EQ(testbed.amf().auth_failures(), 1u);
  EXPECT_EQ(testbed.amf().registered_count(), 1u);
}

TEST(Paging, BroadcastReachesAllEndpointsWithSubscriberTmsi) {
  sim::Testbed testbed;
  Ue* ue = testbed.add_ue(basic_ue(900), SimTime::from_ms(1));
  testbed.run_for(SimDuration::from_s(2));
  ASSERT_TRUE(ue->guti().has_value());

  // Observe the broadcast from an unrelated radio endpoint (the sniffer's
  // vantage point) and via the F1AP tap (the RIC agent's).
  std::vector<std::uint64_t> heard;
  testbed.cell().add_endpoint([&](const ran::AirFrame& frame) {
    auto rrc = ran::decode_rrc(frame.rrc_wire);
    if (rrc && std::holds_alternative<ran::Paging>(rrc.value()))
      heard.push_back(std::get<ran::Paging>(rrc.value()).s_tmsi_packed);
  });
  std::vector<std::string> tapped;
  testbed.taps().add_f1_tap([&](SimTime, const Bytes& wire) {
    auto f1 = ran::decode_f1ap(wire);
    if (!f1) return;
    auto rrc = ran::decode_rrc(f1.value().rrc_container);
    if (rrc) tapped.push_back(ran::rrc_name(rrc.value()));
  });

  EXPECT_TRUE(testbed.amf().page(ue->config().supi));
  testbed.run_for(SimDuration::from_ms(50));
  ASSERT_EQ(heard.size(), 1u);
  EXPECT_EQ(heard[0], ue->guti()->s_tmsi.packed());
  EXPECT_NE(std::find(tapped.begin(), tapped.end(), "Paging"), tapped.end());
  EXPECT_EQ(testbed.amf().pages_sent(), 1u);
}

TEST(Paging, UnknownSubscriberNotPaged) {
  sim::Testbed testbed;
  EXPECT_FALSE(
      testbed.amf().page(ran::Supi{ran::Plmn::test_network(), 12345}));
  EXPECT_EQ(testbed.amf().pages_sent(), 0u);
}

TEST(Ue, CapabilityMismatchRejectedByCompliantUe) {
  // Direct unit check of the UE's bidding-down defence.
  ran::UeConfig config = basic_ue(800);
  std::vector<ran::RrcMessage> sent;
  ran::UeHooks hooks;
  hooks.send = [&sent](ran::AirFrame frame) {
    auto msg = ran::decode_rrc(frame.rrc_wire);
    ASSERT_TRUE(msg.ok());
    sent.push_back(msg.value());
  };
  hooks.now = [] { return SimTime{0}; };
  hooks.schedule = [](SimDuration, std::function<void()> fn) { fn(); };
  config.processing_delay = SimDuration{0};
  Ue ue(config, std::move(hooks));

  // Deliver a NAS SecurityModeCommand whose replayed capabilities differ.
  ran::NasSecurityModeCommand smc;
  smc.replayed_capabilities = ran::SecurityCapabilities{0b0001, 0b0001};
  ran::AirFrame frame;
  frame.uplink = false;
  frame.rrc_wire = ran::encode_rrc(ran::RrcMessage{
      ran::DlInformationTransfer{encode_nas(ran::NasMessage{smc})}});
  ue.receive(frame);

  ASSERT_EQ(sent.size(), 1u);
  auto nas = ran::decode_nas(
      std::get<ran::UlInformationTransfer>(sent[0]).dedicated_nas);
  ASSERT_TRUE(nas.ok());
  EXPECT_TRUE(
      std::holds_alternative<ran::NasSecurityModeReject>(nas.value()));
}

}  // namespace
}  // namespace xsec
