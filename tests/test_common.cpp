// Unit tests for src/common: rng, bytes, strings, table, plot, clock.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/log.hpp"
#include "common/plot.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace xsec {
namespace {

// --- Rng -------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformU64RespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t v = rng.uniform_u64(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformU64SingletonRange) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform_u64(5, 5), 5u);
}

TEST(Rng, UniformU64FullRangeDoesNotHang) {
  Rng rng(7);
  (void)rng.uniform_u64(0, Rng::max());
}

TEST(Rng, UniformI64NegativeBounds) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    std::int64_t v = rng.uniform_i64(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NormalHasApproximateMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(1);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, ChanceFrequency) {
  Rng rng(3);
  int hits = 0;
  for (int i = 0; i < 10000; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.2);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(6);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 10000.0, 0.75, 0.03);
}

TEST(Rng, ForkedStreamIndependent) {
  Rng parent(77);
  Rng child = parent.fork();
  std::set<std::uint64_t> values;
  for (int i = 0; i < 50; ++i) {
    values.insert(parent());
    values.insert(child());
  }
  EXPECT_EQ(values.size(), 100u);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(12);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.shuffle(v.begin(), v.end());
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

// --- Bytes -----------------------------------------------------------

TEST(Bytes, ScalarRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.f64(3.14159);
  w.boolean(true);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8().value(), 0xAB);
  EXPECT_EQ(r.u16().value(), 0x1234);
  EXPECT_EQ(r.u32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64().value(), 0x0123456789ABCDEFULL);
  EXPECT_DOUBLE_EQ(r.f64().value(), 3.14159);
  EXPECT_TRUE(r.boolean().value());
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, BigEndianLayout) {
  ByteWriter w;
  w.u16(0x0102);
  EXPECT_EQ(w.bytes()[0], 0x01);
  EXPECT_EQ(w.bytes()[1], 0x02);
}

TEST(Bytes, StringRoundTrip) {
  ByteWriter w;
  w.str("hello \0 world");
  w.str("");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.str().value(), "hello \0 world");
  EXPECT_EQ(r.str().value(), "");
}

TEST(Bytes, VarintRoundTrip) {
  for (std::uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 300ULL, 1ULL << 40,
                          ~0ULL}) {
    ByteWriter w;
    w.varint(v);
    ByteReader r(w.bytes());
    EXPECT_EQ(r.varint().value(), v);
  }
}

TEST(Bytes, TruncatedReadsFail) {
  Bytes two = {0x01, 0x02};
  ByteReader r(two);
  EXPECT_FALSE(r.u32().ok());
}

TEST(Bytes, TruncatedStringFails) {
  ByteWriter w;
  w.u32(100);  // claims 100 bytes follow but none do
  ByteReader r(w.bytes());
  auto result = r.str();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "truncated");
}

TEST(Bytes, MalformedBooleanFails) {
  Bytes b = {0x02};
  ByteReader r(b);
  EXPECT_FALSE(r.boolean().ok());
}

TEST(Bytes, HexRoundTrip) {
  Bytes data = {0xDE, 0xAD, 0x00, 0xFF};
  EXPECT_EQ(to_hex(data), "dead00ff");
  EXPECT_EQ(from_hex("dead00ff").value(), data);
  EXPECT_EQ(from_hex("DEAD00FF").value(), data);
}

TEST(Bytes, HexRejectsBadInput) {
  EXPECT_FALSE(from_hex("abc").ok());   // odd length
  EXPECT_FALSE(from_hex("zz").ok());    // non-hex
}

TEST(Bytes, Fnv1aStability) {
  EXPECT_EQ(fnv1a(std::string_view("")), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a(std::string_view("a")), fnv1a(std::string_view("b")));
}

// --- Result ----------------------------------------------------------

TEST(Result, ValueAndError) {
  Result<int> ok(5);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);
  Result<int> bad(Error::make("code", "msg"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, "code");
  EXPECT_EQ(bad.value_or(9), 9);
}

TEST(Result, StatusDefaultsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  Status failed(Error::make("io"));
  EXPECT_FALSE(failed.ok());
}

// --- Strings ---------------------------------------------------------

TEST(Strings, SplitAndJoin) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join(parts, "-"), "a-b--c");
}

TEST(Strings, SplitNoDelimiter) {
  auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, CaseConversion) {
  EXPECT_EQ(to_lower("AbC"), "abc");
  EXPECT_EQ(to_upper("AbC"), "ABC");
}

TEST(Strings, ContainsAndStartsWith) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(contains("foobar", "oba"));
  EXPECT_FALSE(contains("foobar", "baz"));
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(replace_all("abc", "x", "y"), "abc");
  EXPECT_EQ(replace_all("abc", "", "y"), "abc");
}

TEST(Strings, FormatFixedAndPercent) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_percent(0.9323), "93.23%");
  EXPECT_EQ(format_percent(std::nan("")), "N/A");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("abcdef", 4), "abcdef");
}

TEST(Strings, WrapText) {
  std::string wrapped = wrap_text("one two three four", 9);
  EXPECT_EQ(wrapped, "one two\nthree\nfour");
}

// --- Table -----------------------------------------------------------

TEST(Table, RendersAlignedColumns) {
  Table t({"A", "Long header"});
  t.add_row({"x", "y"});
  std::string out = t.render();
  EXPECT_NE(out.find("| A | Long header |"), std::string::npos);
  EXPECT_NE(out.find("| x | y           |"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table t({"name"});
  t.add_row({"a,b \"quoted\""});
  EXPECT_NE(t.to_csv().find("\"a,b \"\"quoted\"\"\""), std::string::npos);
}

TEST(Table, SeparatorInsertsRule) {
  Table t({"c"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  std::string out = t.render();
  // header rule + top + bottom + separator = 4 rules
  int rules = 0;
  for (const auto& line : split(out, '\n'))
    if (!line.empty() && line[0] == '+') ++rules;
  EXPECT_EQ(rules, 4);
}

// --- Plot / percentile -------------------------------------------------

TEST(Percentile, LinearInterpolation) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 99), 7.0);
}

TEST(AsciiPlot, RendersPointsAndThreshold) {
  AsciiPlot plot(40, 10);
  plot.add_series({1, 2, 3, 10}, '*');
  plot.set_threshold(5.0);
  std::string out = plot.render();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('-'), std::string::npos);
}

TEST(AsciiPlot, EmptyPlotSafe) {
  AsciiPlot plot(10, 5);
  EXPECT_EQ(plot.render(), "(empty plot)\n");
}

// --- Clock -----------------------------------------------------------

TEST(Clock, ArithmeticAndConversions) {
  SimTime t = SimTime::from_ms(2.5);
  EXPECT_EQ(t.us, 2500);
  SimTime later = t + SimDuration::from_us(500);
  EXPECT_EQ(later.us, 3000);
  EXPECT_EQ((later - t).us, 500);
  EXPECT_LT(t, later);
  EXPECT_DOUBLE_EQ(SimDuration::from_s(1.5).to_ms(), 1500.0);
  EXPECT_EQ((SimDuration::from_ms(10) * 2.5).us, 25000);
}

// --- Log -------------------------------------------------------------

TEST(Log, CaptureAndLevelFilter) {
  Log::capture(true);
  Log::set_level(LogLevel::kWarn);
  XSEC_LOG_INFO("test", "hidden");
  XSEC_LOG_WARN("test", "visible ", 42);
  std::string captured = Log::captured();
  Log::capture(false);
  EXPECT_EQ(captured.find("hidden"), std::string::npos);
  EXPECT_NE(captured.find("visible 42"), std::string::npos);
  EXPECT_NE(captured.find("[test]"), std::string::npos);
}

}  // namespace
}  // namespace xsec
