// Detection pipeline tests: feature semantics, windowing, standardizer,
// detectors, and the MobiWatch xApp.
#include <gtest/gtest.h>

#include "detect/features.hpp"
#include "detect/mobiwatch.hpp"
#include "detect/scorer.hpp"
#include "oran/e2sm.hpp"
#include "oran/ric.hpp"

namespace xsec::detect {
namespace {

namespace vocab = mobiflow::vocab;

mobiflow::Record make_record(const std::string& proto, const std::string& msg,
                             const std::string& dir, std::uint16_t rnti,
                             std::int64_t ts = 0, std::uint64_t ue = 1) {
  mobiflow::Record r;
  r.protocol = vocab::protocol_or_unknown(proto);
  r.msg = vocab::msg_or_unknown(msg);
  r.direction =
      dir == "DL" ? vocab::Direction::kDl : vocab::Direction::kUl;
  r.rnti = rnti;
  r.timestamp_us = ts;
  r.ue_id = ue;
  return r;
}

// --- FeatureEncoder ------------------------------------------------------

TEST(Features, DimensionMatchesNames) {
  FeatureEncoder encoder;
  for (std::size_t i = 0; i < encoder.dim(); ++i)
    EXPECT_FALSE(encoder.feature_name(i).empty());
}

TEST(Features, ConfigSubsetsShrinkDimension) {
  FeatureConfig messages_only;
  messages_only.identifiers = false;
  messages_only.state = false;
  messages_only.timing = false;
  messages_only.load = false;
  FeatureEncoder small(messages_only);
  FeatureEncoder full;
  EXPECT_LT(small.dim(), full.dim());
}

TEST(Features, MessageOneHotSingleBit) {
  FeatureConfig config;
  config.identifiers = config.state = config.timing = config.load = false;
  FeatureEncoder encoder(config);
  EncodeContext ctx;
  auto v = encoder.encode(make_record("RRC", "RRCSetupRequest", "UL", 1), ctx);
  int ones = 0;
  std::size_t hot = 0;
  for (std::size_t i = 0; i < v.size(); ++i)
    if (v[i] == 1.0f) {
      ++ones;
      hot = i;
    }
  EXPECT_EQ(ones, 2);  // message one-hot + UL flag
  EXPECT_EQ(encoder.feature_name(hot), "dir=UL");
}

TEST(Features, UnknownMessageUsesUnknownSlot) {
  FeatureConfig config;
  config.identifiers = config.state = config.timing = config.load = false;
  FeatureEncoder encoder(config);
  EncodeContext ctx;
  auto v = encoder.encode(make_record("RRC", "NotAMessage", "DL", 1), ctx);
  bool unknown_hot = false;
  float sum = 0.0f;
  for (std::size_t i = 0; i < v.size(); ++i) {
    sum += v[i];
    if (v[i] == 1.0f && encoder.feature_name(i) == "msg=unknown")
      unknown_hot = true;
  }
  EXPECT_TRUE(unknown_hot);
  // A novel name perturbs the vector (explicit unknown column) rather than
  // zeroing the whole message block.
  EXPECT_GT(sum, 0.0f);
  EncodeContext ctx2;
  auto known = encoder.encode(make_record("RRC", "Paging", "DL", 1), ctx2);
  EXPECT_NE(v, known);
}

std::size_t feature_index(const FeatureEncoder& encoder,
                          const std::string& name) {
  for (std::size_t i = 0; i < encoder.dim(); ++i)
    if (encoder.feature_name(i) == name) return i;
  ADD_FAILURE() << "no feature named " << name;
  return 0;
}

TEST(Features, RntiNoveltyOncePerContext) {
  FeatureEncoder encoder;
  EncodeContext ctx;
  std::size_t idx = feature_index(encoder, "id.rnti_new");
  auto first = encoder.encode(make_record("RRC", "RRCSetup", "DL", 7), ctx);
  auto second = encoder.encode(make_record("RRC", "RRCSetup", "DL", 7), ctx);
  EXPECT_EQ(first[idx], 1.0f);
  EXPECT_EQ(second[idx], 0.0f);
}

TEST(Features, TmsiReplayFiresOnlyForConcurrentOwners) {
  FeatureEncoder encoder;
  EncodeContext ctx;
  std::size_t replay = feature_index(encoder, "id.tmsi_replayed_other_ue");

  // UE 1 presents TMSI 42 and is then released.
  mobiflow::Record a = make_record("RRC", "RRCSetupRequest", "UL", 1, 0, 1);
  a.s_tmsi = 42;
  EXPECT_EQ(encoder.encode(a, ctx)[replay], 0.0f);
  mobiflow::Record release = make_record("RRC", "RRCRelease", "DL", 1, 1, 1);
  release.s_tmsi = 42;
  encoder.encode(release, ctx);

  // UE 2 presents the same TMSI after release: benign sequential reuse.
  mobiflow::Record b = make_record("RRC", "RRCSetupRequest", "UL", 2, 2, 2);
  b.s_tmsi = 42;
  EXPECT_EQ(encoder.encode(b, ctx)[replay], 0.0f);

  // UE 3 presents it while UE 2 is still live: replay.
  mobiflow::Record c = make_record("RRC", "RRCSetupRequest", "UL", 3, 3, 3);
  c.s_tmsi = 42;
  EXPECT_EQ(encoder.encode(c, ctx)[replay], 1.0f);
}

// Release must clean up BOTH ownership maps: the owners set of the held
// TMSI and the UE's held-TMSI entry. Sequential GUTI reuse across a chain
// of released contexts must never trip the Blind-DoS replay indicator.
TEST(Features, ReleaseErasesTmsiOwnershipState) {
  FeatureEncoder encoder;
  EncodeContext ctx;
  std::size_t replay = feature_index(encoder, "id.tmsi_replayed_other_ue");

  mobiflow::Record a = make_record("RRC", "RRCSetupRequest", "UL", 1, 0, 1);
  a.s_tmsi = 42;
  encoder.encode(a, ctx);
  ASSERT_EQ(ctx.tmsi_owners.at(42).count(1), 1u);
  ASSERT_EQ(ctx.ue_tmsi.at(1), 42u);

  // The release record itself need not carry the TMSI; cleanup is keyed on
  // the UE's held identifier.
  encoder.encode(make_record("RRC", "RRCRelease", "DL", 1, 1, 1), ctx);
  EXPECT_TRUE(ctx.tmsi_owners.at(42).empty());
  EXPECT_EQ(ctx.ue_tmsi.count(1), 0u);

  // The network hands the same GUTI to a chain of successive UEs; each
  // lifetime is disjoint, so no presentation counts as a replay.
  for (std::uint64_t ue = 2; ue <= 4; ++ue) {
    mobiflow::Record reuse =
        make_record("RRC", "RRCSetupRequest", "UL",
                    static_cast<std::uint16_t>(ue),
                    static_cast<std::int64_t>(ue) * 10, ue);
    reuse.s_tmsi = 42;
    EXPECT_EQ(encoder.encode(reuse, ctx)[replay], 0.0f) << "ue " << ue;
    encoder.encode(make_record("RRC", "RRCRelease", "DL",
                               static_cast<std::uint16_t>(ue),
                               static_cast<std::int64_t>(ue) * 10 + 5, ue),
                   ctx);
  }
  // A release for a UE that never held a TMSI is a no-op, not a crash.
  encoder.encode(make_record("RRC", "RRCRelease", "DL", 99, 100, 99), ctx);
}

TEST(Features, PlaintextIdentityFlags) {
  FeatureEncoder encoder;
  EncodeContext ctx;
  mobiflow::Record r = make_record("NAS", "RegistrationRequest", "UL", 1);
  r.supi_plain = "imsi-001012089900001";
  r.suci = "suci-001-01-0-00000000deadbeef";
  auto v = encoder.encode(r, ctx);
  EXPECT_EQ(v[feature_index(encoder, "id.supi_plaintext")], 1.0f);
  EXPECT_EQ(v[feature_index(encoder, "id.suci_null_scheme")], 1.0f);
}

TEST(Features, ReleaseIncompleteFlag) {
  FeatureEncoder encoder;
  EncodeContext ctx;
  std::size_t idx = feature_index(encoder, "id.release_incomplete");
  // Release without security context nor TMSI: incomplete.
  auto bad = encoder.encode(make_record("RRC", "RRCRelease", "DL", 1), ctx);
  EXPECT_EQ(bad[idx], 1.0f);
  // Normal release carries both.
  mobiflow::Record good = make_record("RRC", "RRCRelease", "DL", 2);
  good.cipher_alg = vocab::CipherAlg::kNea2;
  good.s_tmsi = 7;
  EXPECT_EQ(encoder.encode(good, ctx)[idx], 0.0f);
}

TEST(Features, NullCipherStateOneHot) {
  FeatureEncoder encoder;
  EncodeContext ctx;
  mobiflow::Record r = make_record("NAS", "SecurityModeCommand", "DL", 1);
  r.cipher_alg = vocab::CipherAlg::kNea0;
  r.integrity_alg = vocab::IntegrityAlg::kNia0;
  auto v = encoder.encode(r, ctx);
  EXPECT_EQ(v[feature_index(encoder, "state.cipher=NEA0")], 1.0f);
  EXPECT_EQ(v[feature_index(encoder, "state.integrity=NIA0")], 1.0f);
  EXPECT_EQ(v[feature_index(encoder, "state.cipher_unknown")], 0.0f);
}

TEST(Features, LoadBucketsRampDuringSetupBurst) {
  FeatureEncoder encoder;
  EncodeContext ctx;
  std::size_t bucket3 = feature_index(encoder, "load.setup_rate3");
  // Four setups within 100ms from distinct UEs.
  std::vector<float> last;
  for (int i = 0; i < 4; ++i)
    last = encoder.encode(make_record("RRC", "RRCSetupRequest", "UL",
                                      static_cast<std::uint16_t>(i + 1),
                                      i * 1000, i + 1),
                          ctx);
  EXPECT_EQ(last[bucket3], 1.0f);  // 4 recent setups -> bucket 3 (3-4)
}

TEST(Features, LoadEmittedOnlyOnEstablishmentMessages) {
  FeatureEncoder encoder;
  EncodeContext ctx;
  // Build up load.
  for (int i = 0; i < 4; ++i)
    encoder.encode(make_record("RRC", "RRCSetupRequest", "UL",
                               static_cast<std::uint16_t>(i + 1), i * 1000,
                               i + 1),
                   ctx);
  // A bystander measurement report must carry all-zero load dims.
  auto v = encoder.encode(
      make_record("RRC", "MeasurementReport", "UL", 99, 5000, 99), ctx);
  for (std::size_t i = 0; i < encoder.dim(); ++i)
    if (encoder.feature_name(i).rfind("load.", 0) == 0)
      EXPECT_EQ(v[i], 0.0f) << encoder.feature_name(i);
}

TEST(Features, PendingAuthTracksChallengeLifecycle) {
  FeatureEncoder encoder;
  EncodeContext ctx;
  std::size_t pending1 = feature_index(encoder, "load.pending_auth1");
  std::size_t pending0 = feature_index(encoder, "load.pending_auth0");
  auto after_challenge = encoder.encode(
      make_record("NAS", "AuthenticationRequest", "DL", 1, 0, 1), ctx);
  EXPECT_EQ(after_challenge[pending1], 1.0f);
  encoder.encode(make_record("NAS", "AuthenticationResponse", "UL", 1, 1, 1),
                 ctx);
  auto next = encoder.encode(
      make_record("NAS", "AuthenticationRequest", "DL", 2, 2, 2), ctx);
  EXPECT_EQ(next[pending1], 1.0f);  // only UE 2 outstanding now
  EXPECT_EQ(next[pending0], 0.0f);
}

// encode_batch writes the same rows one encode_into would, sharing one
// running context across the whole span.
TEST(Features, EncodeBatchMatchesSequentialEncode) {
  FeatureEncoder encoder;
  std::vector<mobiflow::Record> records;
  for (int i = 0; i < 6; ++i) {
    mobiflow::Record r = make_record(
        i % 2 ? "NAS" : "RRC", i % 2 ? "RegistrationRequest" : "RRCSetupRequest",
        "UL", static_cast<std::uint16_t>(i + 1), i * 1000, i + 1);
    r.s_tmsi = i % 3 == 0 ? 42 : 0;
    records.push_back(r);
  }
  dl::Matrix batch(records.size(), encoder.dim());
  EncodeContext batch_ctx;
  encoder.encode_batch(records, batch_ctx, batch);

  EncodeContext seq_ctx;
  for (std::size_t i = 0; i < records.size(); ++i) {
    auto row = encoder.encode(records[i], seq_ctx);
    for (std::size_t c = 0; c < encoder.dim(); ++c)
      EXPECT_EQ(batch.at(i, c), row[c]) << "row " << i << " col " << c;
  }
}

// --- WindowDataset -------------------------------------------------------

mobiflow::Trace trace_of(std::size_t n, std::vector<std::size_t> bad = {}) {
  mobiflow::Trace trace;
  for (std::size_t i = 0; i < n; ++i) {
    bool malicious =
        std::find(bad.begin(), bad.end(), i) != bad.end();
    trace.add(make_record("RRC", "MeasurementReport", "UL", 1,
                          static_cast<std::int64_t>(i) * 1000),
              malicious);
  }
  return trace;
}

TEST(WindowDataset, SampleCounts) {
  FeatureEncoder encoder;
  auto dataset = WindowDataset::from_trace(trace_of(10), encoder, 4);
  EXPECT_EQ(dataset.ae_sample_count(), 7u);
  EXPECT_EQ(dataset.lstm_sample_count(), 6u);
  EXPECT_EQ(dataset.ae_matrix().rows(), 7u);
  EXPECT_EQ(dataset.ae_matrix().cols(), 4 * encoder.dim());
  EXPECT_EQ(dataset.lstm_samples().size(), 6u);
}

TEST(WindowDataset, TooShortTraceYieldsNoSamples) {
  FeatureEncoder encoder;
  auto dataset = WindowDataset::from_trace(trace_of(3), encoder, 5);
  EXPECT_EQ(dataset.ae_sample_count(), 0u);
  EXPECT_EQ(dataset.lstm_sample_count(), 0u);
}

TEST(WindowDataset, LabelPropagationPerPaperConvention) {
  // Record 5 malicious, N=3: AE windows starting 3,4,5 contain it.
  FeatureEncoder encoder;
  auto dataset = WindowDataset::from_trace(trace_of(10, {5}), encoder, 3);
  auto ae = dataset.ae_labels();
  ASSERT_EQ(ae.size(), 8u);
  for (std::size_t s = 0; s < ae.size(); ++s)
    EXPECT_EQ(ae[s], s >= 3 && s <= 5) << "window " << s;
  // LSTM windows additionally cover the target record: starts 2..5.
  auto lstm = dataset.lstm_labels();
  ASSERT_EQ(lstm.size(), 7u);
  for (std::size_t s = 0; s < lstm.size(); ++s)
    EXPECT_EQ(lstm[s], s >= 2 && s <= 5) << "window " << s;
}

TEST(WindowDataset, MultiTraceWindowsDoNotStraddleBoundaries) {
  FeatureEncoder encoder;
  std::vector<mobiflow::Trace> traces = {trace_of(6), trace_of(6)};
  auto dataset = WindowDataset::from_traces(traces, encoder, 4);
  // Per capture: 3 AE windows, 2 LSTM windows.
  EXPECT_EQ(dataset.ae_sample_count(), 6u);
  EXPECT_EQ(dataset.lstm_sample_count(), 4u);
  EXPECT_EQ(dataset.record_count(), 12u);
}

// --- Standardizer --------------------------------------------------------

TEST(Standardizer, NormalizesSeenDimsAndWeighsUnseen) {
  dl::Matrix data(4, 2, 0.0f);
  data.at(0, 0) = 1;
  data.at(1, 0) = 3;
  data.at(2, 0) = 1;
  data.at(3, 0) = 3;  // mean 2, std 1; dim 1 constant 0
  Standardizer scaler;
  scaler.fit(data);
  std::vector<float> row = {3.0f, 1.0f};
  scaler.apply(row);
  EXPECT_NEAR(row[0], 1.0f, 1e-5);   // (3-2)/1
  EXPECT_NEAR(row[1], 20.0f, 1e-4);  // (1-0)/floor(0.05)
}

// --- Detectors -------------------------------------------------------------

WindowDataset synthetic_benign(const FeatureEncoder& encoder,
                               std::size_t sessions = 40) {
  // Repeating benign-looking flow across several UEs.
  mobiflow::Trace trace;
  std::int64_t t = 0;
  for (std::size_t s = 0; s < sessions; ++s) {
    std::uint16_t rnti = static_cast<std::uint16_t>(100 + s);
    std::uint64_t ue = s + 1;
    auto push = [&](const char* proto, const char* msg, const char* dir) {
      trace.add(make_record(proto, msg, dir, rnti, t, ue));
      t += 2000 + static_cast<std::int64_t>(s % 3) * 500;
    };
    push("RRC", "RRCSetupRequest", "UL");
    push("RRC", "RRCSetup", "DL");
    push("RRC", "RRCSetupComplete", "UL");
    push("NAS", "RegistrationRequest", "UL");
    push("NAS", "AuthenticationRequest", "DL");
    push("NAS", "AuthenticationResponse", "UL");
    push("NAS", "RegistrationAccept", "DL");
    push("RRC", "RRCRelease", "DL");
  }
  return WindowDataset::from_trace(trace, encoder, 5);
}

TEST(Detectors, AutoencoderCalibratesAndScoresConsistently) {
  FeatureEncoder encoder;
  auto benign = synthetic_benign(encoder);
  DetectorConfig config;
  config.epochs = 15;
  AutoencoderDetector detector(5, encoder.dim(), config);
  detector.fit(benign);
  EXPECT_GT(detector.threshold(), 0.0);
  auto scores = detector.score(benign);
  ASSERT_EQ(scores.size(), benign.ae_sample_count());
  // By construction of the percentile threshold, ~1% of training windows
  // exceed it.
  std::size_t above = 0;
  for (double s : scores)
    if (s > detector.threshold()) ++above;
  EXPECT_LE(above, scores.size() / 50 + 2);
  EXPECT_EQ(detector.rows_needed(5), 5u);
}

TEST(Detectors, ScoreWindowMatchesBatchScore) {
  FeatureEncoder encoder;
  auto benign = synthetic_benign(encoder);
  DetectorConfig config;
  config.epochs = 10;
  AutoencoderDetector detector(5, encoder.dim(), config);
  detector.fit(benign);
  auto batch = detector.score(benign);
  // Score window 0 straight off the contiguous feature matrix rows.
  EXPECT_NEAR(detector.score_window(benign.features().row(0), 5), batch[0],
              1e-6);
  // The allocating convenience overload agrees.
  std::vector<std::vector<float>> rows;
  for (std::size_t i = 0; i < 5; ++i) {
    const float* p = benign.features().row(i);
    rows.emplace_back(p, p + encoder.dim());
  }
  EXPECT_NEAR(detector.score_window(rows), batch[0], 1e-6);
}

TEST(Detectors, LstmRowsNeededIncludesTarget) {
  FeatureEncoder encoder;
  DetectorConfig config;
  LstmDetector detector(5, encoder.dim(), config);
  EXPECT_EQ(detector.rows_needed(5), 6u);
}

TEST(Detectors, LstmFitsAndScores) {
  FeatureEncoder encoder;
  auto benign = synthetic_benign(encoder, 25);
  DetectorConfig config;
  config.epochs = 10;
  LstmDetector detector(5, encoder.dim(), config);
  detector.fit(benign);
  EXPECT_GT(detector.threshold(), 0.0);
  auto scores = detector.score(benign);
  EXPECT_EQ(scores.size(), benign.lstm_sample_count());
}

// --- MobiWatch incident aggregation ------------------------------------------

/// Detector with scripted per-window scores (threshold 1.0).
class ScriptedDetector : public AnomalyDetector {
 public:
  explicit ScriptedDetector(std::vector<double> scores)
      : scores_(std::move(scores)) {
    set_threshold(1.0);
  }
  std::string name() const override { return "Scripted"; }
  void fit(const WindowDataset&) override {}
  std::vector<double> score(const WindowDataset&) override { return {}; }
  std::vector<bool> labels(const WindowDataset& data) const override {
    return data.ae_labels();
  }
  using AnomalyDetector::score_window;
  double score_window(const float*, std::size_t) override {
    double s = scores_[std::min(next_, scores_.size() - 1)];
    ++next_;
    return s;
  }
  std::size_t rows_needed(std::size_t window_size) const override {
    return window_size;
  }

 private:
  std::vector<double> scores_;
  std::size_t next_ = 0;
};

struct MobiWatchHarness {
  explicit MobiWatchHarness(std::vector<double> scores,
                            MobiWatchConfig config = {}) {
    xapp = static_cast<MobiWatchXapp*>(ric.register_xapp(
        std::make_unique<MobiWatchXapp>(config)));
    xapp->install_detector(std::make_shared<ScriptedDetector>(scores),
                           FeatureEncoder());
    ric.router().subscribe(oran::kMtAnomalyWindow,
                           [this](const oran::RoutedMessage& m) {
                             auto r = AnomalyReport::deserialize(m.payload);
                             ASSERT_TRUE(r.ok());
                             incidents.push_back(std::move(r).value());
                           });
  }

  void feed(std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      oran::RicIndication indication;
      oran::e2sm::IndicationMessage message;
      message.rows.push_back(
          make_record("RRC", "MeasurementReport", "UL", 1,
                      static_cast<std::int64_t>(fed_) * 1000)
              .to_kv_bytes());
      indication.message = encode_indication_message(message);
      xapp->on_indication(1, indication);
      ++fed_;
    }
  }

  oran::NearRtRic ric;
  MobiWatchXapp* xapp = nullptr;
  std::vector<AnomalyReport> incidents;
  std::size_t fed_ = 0;
};

TEST(MobiWatchIncidents, BurstAggregatesIntoOneReport) {
  MobiWatchConfig config;
  config.window_size = 2;
  config.incident_close_gap = 2;
  // Windows start once 2 records arrived; scores: quiet, 3 hot, quiet...
  MobiWatchHarness harness(
      {0.1, 0.1, 5.0, 6.0, 5.5, 0.1, 0.1, 0.1, 0.1, 0.1}, config);
  harness.feed(12);
  ASSERT_EQ(harness.incidents.size(), 1u);
  EXPECT_EQ(harness.xapp->anomalies_flagged(), 1u);
  EXPECT_EQ(harness.xapp->anomalous_windows(), 3u);
  EXPECT_DOUBLE_EQ(harness.incidents[0].score, 6.0);  // peak of the burst
  EXPECT_FALSE(harness.xapp->incident_open());
}

TEST(MobiWatchIncidents, ShortDipDoesNotSplitIncident) {
  MobiWatchConfig config;
  config.window_size = 2;
  config.incident_close_gap = 2;
  MobiWatchHarness harness(
      {5.0, 0.1, 5.0, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1}, config);
  harness.feed(11);
  ASSERT_EQ(harness.incidents.size(), 1u);
  EXPECT_EQ(harness.xapp->anomalous_windows(), 2u);
}

TEST(MobiWatchIncidents, LongGapSplitsIncidents) {
  MobiWatchConfig config;
  config.window_size = 2;
  config.incident_close_gap = 1;
  MobiWatchHarness harness(
      {5.0, 0.1, 0.1, 0.1, 5.0, 0.1, 0.1, 0.1, 0.1}, config);
  harness.feed(11);
  EXPECT_EQ(harness.incidents.size(), 2u);
}

TEST(MobiWatchIncidents, OpenIncidentClosedExplicitly) {
  MobiWatchConfig config;
  config.window_size = 2;
  config.incident_close_gap = 5;
  MobiWatchHarness harness({0.1, 5.0, 5.0}, config);
  harness.feed(4);  // stream ends while the burst is hot
  EXPECT_TRUE(harness.xapp->incident_open());
  EXPECT_TRUE(harness.incidents.empty());
  harness.xapp->close_open_incident();
  ASSERT_EQ(harness.incidents.size(), 1u);
  EXPECT_FALSE(harness.xapp->incident_open());
  // Idempotent.
  harness.xapp->close_open_incident();
  EXPECT_EQ(harness.incidents.size(), 1u);
}

// --- AnomalyReport ---------------------------------------------------------

TEST(AnomalyReport, SerializeRoundTrip) {
  AnomalyReport report;
  report.detector = "Autoencoder";
  report.node_id = 1001;
  report.score = 1.5;
  report.threshold = 0.9;
  report.window.add(make_record("RRC", "RRCSetupRequest", "UL", 1), true);
  report.context.add(make_record("RRC", "RRCSetup", "DL", 1), false);
  auto back = AnomalyReport::deserialize(report.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().detector, "Autoencoder");
  EXPECT_EQ(back.value().node_id, 1001u);
  EXPECT_DOUBLE_EQ(back.value().score, 1.5);
  EXPECT_EQ(back.value().window.size(), 1u);
  EXPECT_EQ(back.value().context.size(), 1u);
  EXPECT_TRUE(back.value().window.entries()[0].malicious);
}

TEST(AnomalyReport, GarbageRejected) {
  EXPECT_FALSE(AnomalyReport::deserialize({1, 2, 3}).ok());
}

}  // namespace
}  // namespace xsec::detect
