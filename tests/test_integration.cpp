// End-to-end integration tests: the full Figure 3 pipeline — telemetry
// collection over E2, MobiWatch detection, LLM analysis, closed-loop
// control — against live attacks.
#include <gtest/gtest.h>

#include "attacks/attack.hpp"
#include "core/datasets.hpp"
#include "core/evaluation.hpp"
#include "core/pipeline.hpp"
#include "dl/serialize.hpp"
#include "sim/traffic.hpp"

namespace xsec {
namespace {

/// Shared trained detector (training is the slow part; do it once).
class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Two independent benign captures for generalization across seeds.
    std::vector<mobiflow::Trace> captures;
    double arrival_ms = 60.0;
    for (std::uint64_t seed : {71u, 72u}) {
      core::ScenarioConfig benign_config;
      benign_config.testbed.seed = seed;
      benign_config.traffic.num_sessions = 40;
      benign_config.traffic.seed = seed * 13;
      benign_config.traffic.arrival_mean = SimDuration::from_ms(arrival_ms);
      benign_config.run_time = SimDuration::from_s(8);
      captures.push_back(core::collect_benign(benign_config));
      arrival_ms += 60.0;
    }
    benign_ = new std::vector<mobiflow::Trace>(std::move(captures));
    core::EvalConfig eval;
    eval.detector.epochs = 25;
    detector_ = new std::shared_ptr<detect::AnomalyDetector>(
        core::train_detector(core::ModelKind::kAutoencoder, *benign_, eval));
    eval_config_ = new core::EvalConfig(eval);
  }
  static void TearDownTestSuite() {
    delete benign_;
    delete detector_;
    delete eval_config_;
  }

  /// Runs the live pipeline with light benign traffic plus one attack.
  struct RunResult {
    std::size_t anomalies = 0;
    std::size_t incidents = 0;
    std::size_t agreements = 0;
    std::vector<std::string> attack_names;
    std::size_t remediations = 0;
  };

  RunResult run_attack_through_pipeline(
      std::unique_ptr<attacks::Attack> attack, const std::string& model,
      bool auto_remediate = false) {
    core::PipelineConfig config;
    config.analyzer.model = model;
    config.analyzer.auto_remediate = auto_remediate;
    core::Pipeline pipeline(config);
    pipeline.install_detector(
        *detector_, detect::FeatureEncoder(eval_config_->features));

    sim::TrafficConfig traffic;
    traffic.num_sessions = 8;
    traffic.arrival_mean = SimDuration::from_ms(60);
    traffic.seed = 99;
    sim::BenignTrafficGenerator generator(&pipeline.testbed(), traffic);
    generator.schedule_all();
    if (attack) attack->launch(pipeline.testbed(), SimTime::from_ms(250));
    pipeline.run_for(SimDuration::from_s(4));
    pipeline.finalize();

    RunResult result;
    result.anomalies = pipeline.mobiwatch().anomalies_flagged();
    result.incidents = pipeline.analyzer().incidents_analyzed();
    result.remediations = pipeline.analyzer().remediations_issued();
    for (const auto& report : pipeline.analyzer().reports()) {
      if (report.llm_agrees) ++result.agreements;
      for (const auto& name : report.candidate_attacks)
        result.attack_names.push_back(name);
    }
    return result;
  }

  static std::vector<mobiflow::Trace>* benign_;
  static std::shared_ptr<detect::AnomalyDetector>* detector_;
  static core::EvalConfig* eval_config_;
};

std::vector<mobiflow::Trace>* PipelineTest::benign_ = nullptr;
std::shared_ptr<detect::AnomalyDetector>* PipelineTest::detector_ = nullptr;
core::EvalConfig* PipelineTest::eval_config_ = nullptr;

bool names_contain(const std::vector<std::string>& names,
                   const std::string& needle) {
  for (const auto& name : names)
    if (name.find(needle) != std::string::npos) return true;
  return false;
}

TEST_F(PipelineTest, E2PlumbingDeliversTelemetry) {
  core::Pipeline pipeline;
  EXPECT_NE(pipeline.node_id(), 0u);
  EXPECT_TRUE(pipeline.agent().subscribed());

  sim::TrafficConfig traffic;
  traffic.num_sessions = 5;
  traffic.seed = 3;
  sim::BenignTrafficGenerator generator(&pipeline.testbed(), traffic);
  generator.schedule_all();
  pipeline.run_for(SimDuration::from_s(2));

  EXPECT_GT(pipeline.agent().records_collected(), 50u);
  EXPECT_GT(pipeline.agent().indications_sent(), 0u);
  EXPECT_EQ(pipeline.mobiwatch().records_seen(),
            pipeline.agent().records_collected());
  // Telemetry persisted to the SDL.
  EXPECT_EQ(pipeline.ric().sdl().size("mobiflow"),
            pipeline.mobiwatch().records_seen());
}

TEST_F(PipelineTest, BenignFalsePositiveRateUnderPaperBound) {
  // The paper reports "<10%" false positives on benign traffic with the
  // 99th-percentile threshold; a run on an unseen capture must stay under
  // that bound (and each false alarm lands in the human-review path, never
  // in remediation).
  core::PipelineConfig config;
  config.analyzer.model = "ChatGPT-4o";
  core::Pipeline pipeline(config);
  pipeline.install_detector(*detector_,
                            detect::FeatureEncoder(eval_config_->features));
  sim::TrafficConfig traffic;
  traffic.num_sessions = 8;
  traffic.arrival_mean = SimDuration::from_ms(60);
  traffic.seed = 99;
  sim::BenignTrafficGenerator generator(&pipeline.testbed(), traffic);
  generator.schedule_all();
  pipeline.run_for(SimDuration::from_s(4));

  ASSERT_GT(pipeline.mobiwatch().windows_scored(), 100u);
  double fp_rate =
      static_cast<double>(pipeline.mobiwatch().anomalies_flagged()) /
      static_cast<double>(pipeline.mobiwatch().windows_scored());
  EXPECT_LT(fp_rate, 0.10);
}

TEST_F(PipelineTest, BtsDosDetectedAndExplained) {
  auto result =
      run_attack_through_pipeline(attacks::make_bts_dos(), "ChatGPT-4o");
  EXPECT_GT(result.anomalies, 0u);
  EXPECT_GT(result.agreements, 0u);
  EXPECT_TRUE(names_contain(result.attack_names, "BTS resource depletion"));
}

TEST_F(PipelineTest, BlindDosDetectedAndExplained) {
  auto result =
      run_attack_through_pipeline(attacks::make_blind_dos(), "ChatGPT-4o");
  EXPECT_GT(result.anomalies, 0u);
  EXPECT_TRUE(names_contain(result.attack_names, "S-TMSI replay"));
}

TEST_F(PipelineTest, UplinkExtractionDetectedOnlyByClaude) {
  // MobiWatch flags it; ChatGPT-4o (per Table 3) cannot confirm it...
  auto gpt = run_attack_through_pipeline(
      attacks::make_uplink_id_extraction(), "ChatGPT-4o");
  EXPECT_GT(gpt.anomalies, 0u);
  EXPECT_FALSE(names_contain(gpt.attack_names, "Uplink identity"));
  // ...but Claude 3 Sonnet can.
  auto claude = run_attack_through_pipeline(
      attacks::make_uplink_id_extraction(), "Claude 3 Sonnet");
  EXPECT_GT(claude.anomalies, 0u);
  EXPECT_TRUE(names_contain(claude.attack_names, "identity extraction"));
}

TEST_F(PipelineTest, DownlinkExtractionDetectedAndExplained) {
  auto result = run_attack_through_pipeline(
      attacks::make_downlink_id_extraction(), "ChatGPT-4o");
  EXPECT_GT(result.anomalies, 0u);
  EXPECT_TRUE(names_contain(result.attack_names, "Downlink identity"));
}

TEST_F(PipelineTest, NullCipherDetectedAndExplained) {
  auto result =
      run_attack_through_pipeline(attacks::make_null_cipher(), "ChatGPT-4o");
  EXPECT_GT(result.anomalies, 0u);
  EXPECT_TRUE(names_contain(result.attack_names, "Null cipher"));
}

TEST_F(PipelineTest, ClosedLoopRemediationReleasesAttackContexts) {
  auto result = run_attack_through_pipeline(attacks::make_bts_dos(),
                                            "ChatGPT-4o",
                                            /*auto_remediate=*/true);
  EXPECT_GT(result.remediations, 0u);
}

TEST_F(PipelineTest, ContradictionsEscalatedForHumanReview) {
  // Copilot only recognizes signaling storms; a null-cipher incident it
  // analyzes must land in the human-review queue.
  core::PipelineConfig config;
  config.analyzer.model = "Copilot";
  core::Pipeline pipeline(config);
  pipeline.install_detector(*detector_,
                            detect::FeatureEncoder(eval_config_->features));
  int reviews = 0;
  pipeline.ric().router().subscribe(
      oran::kMtHumanReview, [&](const oran::RoutedMessage&) { ++reviews; });

  auto attack = attacks::make_null_cipher();
  attack->launch(pipeline.testbed(), SimTime::from_ms(50));
  pipeline.run_for(SimDuration::from_s(3));
  pipeline.finalize();
  EXPECT_GT(pipeline.analyzer().contradictions(), 0u);
  EXPECT_GT(reviews, 0);
}

TEST(ModelDeployment, SerializedDetectorSurvivesRedeployment) {
  // Train, serialize (the SMO->xApp deploy step), reload into a fresh
  // detector, and check identical scoring.
  core::ScenarioConfig config;
  config.traffic.num_sessions = 20;
  config.traffic.seed = 13;
  config.run_time = SimDuration::from_s(4);
  mobiflow::Trace benign = core::collect_benign(config);

  core::EvalConfig eval;
  eval.detector.epochs = 5;
  detect::FeatureEncoder encoder(eval.features);
  auto dataset =
      detect::WindowDataset::from_trace(benign, encoder, eval.window_size);

  detect::AutoencoderDetector trained(eval.window_size, encoder.dim(),
                                      eval.detector, eval.ae_hidden);
  trained.fit(dataset);
  Bytes blob = dl::save_params(trained.model().params());

  detect::DetectorConfig other = eval.detector;
  other.seed = 999;  // different init; weights come from the blob
  detect::AutoencoderDetector restored(eval.window_size, encoder.dim(), other,
                                       eval.ae_hidden);
  restored.fit_scaler(dataset.ae_matrix());
  ASSERT_TRUE(dl::load_params(restored.model().params(), blob).ok());
  restored.set_threshold(trained.threshold());

  EXPECT_EQ(trained.score(dataset), restored.score(dataset));
}

}  // namespace
}  // namespace xsec
