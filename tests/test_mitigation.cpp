// Closed-loop mitigation tests: the policy engine, the E2 Control codec
// and its reliability machinery, agent-side outage spill, and the full
// attack -> detect -> mitigate -> KPI-recovery loop under chaos faults.
//
// The test surface mirrors the detection chaos suite: byte-determinism
// across RIC shard counts, fault plans on the Control path (drop /
// duplicate / reorder), and the false-positive path — a benign incident
// mitigated by the fast path must be rolled back on LLM evidence, never
// left as a permanent quarantine.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "attacks/attack.hpp"
#include "common/rng.hpp"
#include "core/datasets.hpp"
#include "core/evaluation.hpp"
#include "core/pipeline.hpp"
#include "detect/mobiwatch.hpp"
#include "llm/analyzer_xapp.hpp"
#include "mitigate/policy.hpp"
#include "mitigate/xapp.hpp"
#include "mobiflow/agent.hpp"
#include "obs/export.hpp"
#include "oran/e2sm.hpp"
#include "oran/xapp.hpp"
#include "sim/traffic.hpp"

namespace xsec {
namespace {

using mitigate::ActionKind;
using mitigate::MitigationPolicy;
using mitigate::PolicyRule;
using mitigate::RuleStage;
using mobiflow::ControlCommand;

// --- ControlCommand codec ---------------------------------------------------

ControlCommand random_control(Rng& rng) {
  ControlCommand cmd;
  cmd.action = static_cast<ControlCommand::Action>(
      rng.uniform_u64(0, ControlCommand::kMaxAction));
  cmd.rnti = static_cast<std::uint16_t>(rng.uniform_u64(0, 0xffff));
  cmd.s_tmsi = rng.uniform_u64(0, (1ULL << 48) - 1);
  cmd.stale_age_ms = static_cast<std::uint32_t>(rng.uniform_u64(0, 10'000));
  // kRateLimit requires non-zero parameters to encode a valid command.
  cmd.rate_limit = static_cast<std::uint32_t>(rng.uniform_u64(1, 1'000));
  cmd.rate_window_ms = static_cast<std::uint32_t>(rng.uniform_u64(1, 10'000));
  return cmd;
}

TEST(MitigationCodec, ControlCommandRoundTripsEveryAction) {
  Rng rng(0xC0117);
  for (std::uint8_t a = 0; a <= ControlCommand::kMaxAction; ++a) {
    ControlCommand cmd = random_control(rng);
    cmd.action = static_cast<ControlCommand::Action>(a);
    auto decoded = mobiflow::decode_control(mobiflow::encode_control(cmd));
    ASSERT_TRUE(decoded) << "action " << int(a) << ": "
                         << decoded.error().message;
    EXPECT_EQ(decoded.value().action, cmd.action);
    EXPECT_EQ(decoded.value().rnti, cmd.rnti);
    EXPECT_EQ(decoded.value().s_tmsi, cmd.s_tmsi);
    EXPECT_EQ(decoded.value().stale_age_ms, cmd.stale_age_ms);
    EXPECT_EQ(decoded.value().rate_limit, cmd.rate_limit);
    EXPECT_EQ(decoded.value().rate_window_ms, cmd.rate_window_ms);
  }
}

TEST(MitigationCodec, ControlDecodeRejectsOutOfRangeAction) {
  Bytes wire = mobiflow::encode_control(ControlCommand{});
  // The action discriminant is the leading byte; everything above the
  // vocabulary must be rejected, not wrapped.
  for (std::uint64_t bad : {8u, 9u, 42u, 255u}) {
    wire[0] = static_cast<std::uint8_t>(bad);
    EXPECT_FALSE(mobiflow::decode_control(wire)) << "action " << bad;
  }
}

TEST(MitigationCodec, ControlDecodeRejectsDegenerateRateLimit) {
  ControlCommand cmd;
  cmd.action = ControlCommand::Action::kRateLimit;
  cmd.rate_limit = 0;
  cmd.rate_window_ms = 100;
  EXPECT_FALSE(mobiflow::decode_control(mobiflow::encode_control(cmd)));
  cmd.rate_limit = 4;
  cmd.rate_window_ms = 0;
  EXPECT_FALSE(mobiflow::decode_control(mobiflow::encode_control(cmd)));
  cmd.rate_window_ms = 100;
  EXPECT_TRUE(mobiflow::decode_control(mobiflow::encode_control(cmd)));
}

// --- IncidentVerdict codec --------------------------------------------------

llm::IncidentVerdict random_verdict(Rng& rng) {
  llm::IncidentVerdict v;
  v.incident_id = rng();
  v.node_id = rng.uniform_u64(1, 1 << 20);
  v.source_ue = rng.uniform_u64(0, 1 << 20);
  v.detector = "autoencoder";
  v.score = rng.uniform(0.0, 10.0);
  v.threshold = rng.uniform(0.1, 5.0);
  v.llm_agrees = rng.chance(0.5);
  for (std::uint64_t i = rng.uniform_u64(0, 3); i > 0; --i)
    v.candidate_attacks.push_back("attack-" + std::to_string(rng() & 0xff));
  for (std::uint64_t i = rng.uniform_u64(0, 3); i > 0; --i)
    v.suspect_tmsis.push_back(rng.uniform_u64(0, (1ULL << 48) - 1));
  v.flagged_at_us = rng.uniform_i64(0, 1'000'000'000);
  return v;
}

TEST(MitigationCodec, IncidentVerdictRoundTrips) {
  Rng rng(0x1D1C7);
  for (int i = 0; i < 50; ++i) {
    llm::IncidentVerdict v = random_verdict(rng);
    auto decoded = llm::IncidentVerdict::deserialize(v.serialize());
    ASSERT_TRUE(decoded) << decoded.error().message;
    EXPECT_EQ(decoded.value().incident_id, v.incident_id);
    EXPECT_EQ(decoded.value().node_id, v.node_id);
    EXPECT_EQ(decoded.value().source_ue, v.source_ue);
    EXPECT_EQ(decoded.value().detector, v.detector);
    EXPECT_EQ(decoded.value().score, v.score);
    EXPECT_EQ(decoded.value().threshold, v.threshold);
    EXPECT_EQ(decoded.value().llm_agrees, v.llm_agrees);
    EXPECT_EQ(decoded.value().candidate_attacks, v.candidate_attacks);
    EXPECT_EQ(decoded.value().suspect_tmsis, v.suspect_tmsis);
    EXPECT_EQ(decoded.value().flagged_at_us, v.flagged_at_us);
  }
}

TEST(MitigationCodec, IncidentVerdictRejectsTrailingBytes) {
  Rng rng(0x7A11);
  Bytes wire = random_verdict(rng).serialize();
  wire.push_back(0x00);
  EXPECT_FALSE(llm::IncidentVerdict::deserialize(wire));
}

/// Corruption sweep mirroring the E2AP codec property suite: truncation
/// and bit flips must never crash a decoder, and any wire that still
/// decodes must satisfy the message invariants.
class MitigationCodecProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(MitigationCodecProperty, ControlDecodeSurvivesCorruption) {
  Rng rng(GetParam());
  for (int iteration = 0; iteration < 300; ++iteration) {
    Bytes wire = mobiflow::encode_control(random_control(rng));
    // Strict prefixes can never decode: the format has no optional tail.
    Bytes truncated = wire;
    truncated.resize(rng.uniform_u64(0, wire.size() - 1));
    EXPECT_FALSE(mobiflow::decode_control(truncated));

    Bytes flipped = wire;
    flipped[rng.uniform_u64(0, flipped.size() - 1)] ^=
        static_cast<std::uint8_t>(rng.uniform_u64(1, 255));
    auto decoded = mobiflow::decode_control(flipped);  // must not crash
    if (decoded) {
      EXPECT_LE(static_cast<std::uint8_t>(decoded.value().action),
                ControlCommand::kMaxAction);
      if (decoded.value().action == ControlCommand::Action::kRateLimit) {
        EXPECT_GT(decoded.value().rate_limit, 0u);
        EXPECT_GT(decoded.value().rate_window_ms, 0u);
      }
    }
  }
}

TEST_P(MitigationCodecProperty, VerdictDecodeSurvivesCorruption) {
  Rng rng(GetParam() * 31 + 7);
  for (int iteration = 0; iteration < 200; ++iteration) {
    Bytes wire = random_verdict(rng).serialize();
    Bytes truncated = wire;
    truncated.resize(rng.uniform_u64(0, wire.size() - 1));
    EXPECT_FALSE(llm::IncidentVerdict::deserialize(truncated));

    Bytes corrupted = wire;
    std::uint64_t flips = rng.uniform_u64(1, 4);
    for (std::uint64_t f = 0; f < flips; ++f)
      corrupted[rng.uniform_u64(0, corrupted.size() - 1)] ^=
          static_cast<std::uint8_t>(rng.uniform_u64(1, 255));
    auto decoded = llm::IncidentVerdict::deserialize(corrupted);
    if (decoded) {
      // Count-prefixed vectors survived the flip: sizes must be sane
      // (bounded by the wire, not the corrupted count fields).
      EXPECT_LE(decoded.value().candidate_attacks.size(), corrupted.size());
      EXPECT_LE(decoded.value().suspect_tmsis.size(), corrupted.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MitigationCodecProperty,
                         ::testing::Values(1u, 2u, 3u, 42u, 1337u));

// --- Policy engine ----------------------------------------------------------

TEST(MitigationPolicyTable, DefaultTableClassifiesByFirstMatch) {
  MitigationPolicy policy = MitigationPolicy::default_policy();
  // Fast path: any detector flag above threshold earns the mild rate limit.
  const PolicyRule* rule =
      policy.match(RuleStage::kDetector, {}, 1.2, 1.0);
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->action, ActionKind::kRateLimit);
  EXPECT_EQ(rule->ttl_ms, 1500u);
  // Sub-threshold ratios never fire.
  EXPECT_EQ(policy.match(RuleStage::kDetector, {}, 0.5, 1.0), nullptr);

  // Replay-class beats the DoS rule by table order even though the class
  // string mentions both.
  rule = policy.match(RuleStage::kClassified,
                      {"Blind DoS via S-TMSI replay"}, 1.2, 1.0);
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->action, ActionKind::kQuarantineUe);

  rule = policy.match(RuleStage::kClassified,
                      {"BTS resource depletion DoS"}, 1.2, 1.0);
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->action, ActionKind::kRateLimit);
  EXPECT_EQ(rule->rate_limit, 4u);

  rule = policy.match(RuleStage::kClassified, {"signaling storm"}, 1.2, 1.0);
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->action, ActionKind::kRateLimit);
  EXPECT_EQ(rule->ttl_ms, 2500u);

  // Anything else confirmed falls through to the stale-release catch-all —
  // including an incident the LLM confirmed but could not classify.
  rule = policy.match(RuleStage::kClassified, {"NAS downgrade"}, 1.2, 1.0);
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->action, ActionKind::kReleaseRrc);
  rule = policy.match(RuleStage::kClassified, {}, 1.2, 1.0);
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->action, ActionKind::kReleaseRrc);
}

TEST(MitigationPolicyTable, TrustGateReservesHarsherRulesForRepeatOffenders) {
  MitigationPolicy policy;
  PolicyRule harsh;
  harsh.stage = RuleStage::kClassified;
  harsh.max_trust = 0.5;  // repeat offenders only
  harsh.action = ActionKind::kIsolateNode;
  policy.rules.push_back(harsh);
  PolicyRule mild;
  mild.stage = RuleStage::kClassified;
  mild.action = ActionKind::kRateLimit;
  policy.rules.push_back(mild);

  const PolicyRule* first_offense =
      policy.match(RuleStage::kClassified, {"x"}, 2.0, 1.0);
  ASSERT_NE(first_offense, nullptr);
  EXPECT_EQ(first_offense->action, ActionKind::kRateLimit);
  const PolicyRule* repeat =
      policy.match(RuleStage::kClassified, {"x"}, 2.0, 0.4);
  ASSERT_NE(repeat, nullptr);
  EXPECT_EQ(repeat->action, ActionKind::kIsolateNode);
}

TEST(MitigationPolicyTable, A1OverridesBudgetAndScalesTtls) {
  MitigationPolicy policy = MitigationPolicy::default_policy();
  oran::A1Policy a1;
  a1.policy_type = oran::kPolicyMitigation;
  a1.content["max_actions_per_source"] = "2";
  a1.content["ttl_scale"] = "0.5";
  policy.apply_a1(a1);
  EXPECT_EQ(policy.max_actions_per_source, 2u);
  EXPECT_EQ(policy.rules[0].ttl_ms, 750u);  // detector rule: 1500 * 0.5

  // Degenerate values are clamped, not obeyed: budgets below one are
  // ignored, scaled TTLs never reach zero.
  oran::A1Policy bad;
  bad.content["max_actions_per_source"] = "0";
  bad.content["ttl_scale"] = "0.0001";
  policy.apply_a1(bad);
  EXPECT_EQ(policy.max_actions_per_source, 2u);
  for (const PolicyRule& rule : policy.rules) EXPECT_GE(rule.ttl_ms, 1u);
}

// --- Control reliability: agent dedup, synthesized failure acks -------------

TEST(ControlReliability, AgentExecutesDuplicatedControlExactlyOnce) {
  std::vector<oran::RicControlAck> acks;
  std::size_t applied = 0;
  mobiflow::AgentHooks hooks;
  hooks.now = [] { return SimTime{0}; };
  hooks.schedule = [](SimDuration, std::function<void()>) {};
  hooks.to_ric = [&acks](std::uint64_t, Bytes wire) {
    auto ack = oran::decode_control_ack(wire);
    ASSERT_TRUE(ack);
    acks.push_back(ack.value());
  };
  hooks.apply_control = [&applied](const ControlCommand&) {
    ++applied;
    return true;
  };
  mobiflow::RicAgent agent(42, hooks);

  oran::RicControlRequest request;
  request.request_id = {7, 0x10001};
  request.ran_function_id = oran::e2sm::kMobiFlowFunctionId;
  ControlCommand cmd;
  cmd.action = ControlCommand::Action::kReleaseStale;
  request.message = mobiflow::encode_control(cmd);
  Bytes wire = oran::encode_e2ap(request);

  // A RIC ack-timeout retransmission delivers the same Control twice: the
  // action must be applied once and the second copy re-acked with the
  // stored result.
  agent.on_e2ap(wire);
  agent.on_e2ap(wire);
  EXPECT_EQ(applied, 1u);
  ASSERT_EQ(acks.size(), 2u);
  EXPECT_TRUE(acks[0].success);
  EXPECT_TRUE(acks[1].success);
  EXPECT_EQ(acks[1].request_id.instance_id, 0x10001u);
  EXPECT_EQ(agent.controls_deduplicated(), 1u);

  // Instance 0 is the legacy uncorrelated path: never deduplicated.
  request.request_id = {7, 0};
  Bytes legacy = oran::encode_e2ap(request);
  agent.on_e2ap(legacy);
  agent.on_e2ap(legacy);
  EXPECT_EQ(applied, 3u);
  EXPECT_EQ(agent.controls_deduplicated(), 1u);
}

/// Captures control acks delivered back to the issuing xApp.
class AckCaptureXapp : public oran::XApp {
 public:
  AckCaptureXapp() : oran::XApp("ack-capture") {}
  void on_start() override {}
  void on_control_ack(std::uint64_t node_id,
                      const oran::RicControlAck& ack) override {
    acks.push_back({node_id, ack.success});
  }
  std::vector<std::pair<std::uint64_t, bool>> acks;
};

TEST(ControlReliability, UnknownNodeSynthesizesExactlyOneFailureAck) {
  core::Pipeline pipeline;
  auto* capture = static_cast<AckCaptureXapp*>(
      pipeline.ric().register_xapp(std::make_unique<AckCaptureXapp>()));
  ControlCommand cmd;
  cmd.action = ControlCommand::Action::kIsolate;
  pipeline.ric().send_control(capture, 424242,
                              oran::e2sm::kMobiFlowFunctionId, {},
                              mobiflow::encode_control(cmd));
  ASSERT_EQ(capture->acks.size(), 1u);
  EXPECT_EQ(capture->acks[0].first, 424242u);
  EXPECT_FALSE(capture->acks[0].second);
  EXPECT_EQ(pipeline.stats().controls_lost, 1u);
  // Never transmitted: "sent" counts wire transmissions only.
  EXPECT_EQ(pipeline.stats().controls_sent, 0u);
}

// --- Verdict-driven closed loop (no detector needed) ------------------------

void publish_verdict(core::Pipeline& pipeline, std::uint64_t node_id,
                     std::uint64_t ue, bool agrees,
                     std::vector<std::string> classes,
                     std::vector<std::uint64_t> tmsis) {
  llm::IncidentVerdict v;
  v.incident_id = 1;
  v.node_id = node_id;
  v.source_ue = ue;
  v.detector = "autoencoder";
  v.score = 2.0;
  v.threshold = 1.0;
  v.llm_agrees = agrees;
  v.candidate_attacks = std::move(classes);
  v.suspect_tmsis = std::move(tmsis);
  oran::RoutedMessage msg;
  msg.mtype = oran::kMtIncidentVerdict;
  msg.source = "test";
  msg.payload = v.serialize();
  pipeline.ric().router().publish(msg);
}

TEST(MitigationLoop, EscalationLadderClimbsRevertsAndRollsBackOnEvidence) {
  core::PipelineConfig config;
  config.mitigation.enabled = true;
  config.mitigation.fast_path = false;  // verdict-driven only
  core::Pipeline pipeline(config);
  ASSERT_NE(pipeline.mitigation(), nullptr);
  mitigate::MitigationXapp& mit = *pipeline.mitigation();
  ran::Gnb& gnb = pipeline.testbed().gnb(0);
  std::uint64_t node = pipeline.node_id(0);
  pipeline.run_for(SimDuration::from_ms(10));

  // Confirmed DoS: rung 1, rate limit.
  publish_verdict(pipeline, node, 5, true, {"BTS resource depletion DoS"},
                  {0x777});
  EXPECT_EQ(mit.actions_issued(), 1u);
  EXPECT_TRUE(gnb.rate_limit_active());
  EXPECT_DOUBLE_EQ(mit.source_trust(node, 5), 0.5);
  pipeline.run_for(SimDuration::from_ms(5));

  // Re-trigger escalates to quarantine and reverts the rate limit as part
  // of the swap (an escalation, not a recovery: no rollback counters).
  publish_verdict(pipeline, node, 5, true, {"BTS resource depletion DoS"},
                  {0x777});
  EXPECT_EQ(mit.actions_issued(), 2u);
  EXPECT_EQ(mit.escalations(), 1u);
  EXPECT_FALSE(gnb.rate_limit_active());
  EXPECT_EQ(gnb.blocked_tmsi_count(), 1u);
  EXPECT_EQ(mit.rollbacks(), 0u);
  pipeline.run_for(SimDuration::from_ms(5));

  // Third confirmation: top of the ladder, node isolation.
  publish_verdict(pipeline, node, 5, true, {"BTS resource depletion DoS"},
                  {0x777});
  EXPECT_EQ(mit.actions_issued(), 3u);
  EXPECT_EQ(mit.escalations(), 2u);
  EXPECT_EQ(gnb.blocked_tmsi_count(), 0u);
  EXPECT_TRUE(gnb.isolated());
  pipeline.run_for(SimDuration::from_ms(5));

  // Already at the top: the threat is still live, so the TTL refreshes but
  // no new action is issued.
  publish_verdict(pipeline, node, 5, true, {"BTS resource depletion DoS"},
                  {0x777});
  EXPECT_EQ(mit.actions_issued(), 3u);
  EXPECT_EQ(mit.escalations(), 2u);
  EXPECT_TRUE(gnb.isolated());

  // False-positive evidence reverts whatever is active and restores trust.
  publish_verdict(pipeline, node, 5, false, {}, {});
  EXPECT_FALSE(gnb.isolated());
  EXPECT_EQ(mit.rollbacks(), 1u);
  EXPECT_EQ(mit.rollbacks_evidence(), 1u);
  EXPECT_EQ(mit.active_actions(), 0u);
  EXPECT_DOUBLE_EQ(mit.source_trust(node, 5), 0.0625 + 0.25);

  // Superseded TTL timers from the escalation chain fire as no-ops.
  pipeline.run_for(SimDuration::from_s(4));
  EXPECT_EQ(mit.rollbacks(), 1u);
  EXPECT_FALSE(gnb.isolated());
  EXPECT_FALSE(gnb.rate_limit_active());
}

TEST(MitigationLoop, BudgetCapsPerSourceActionsUntilA1RaisesIt) {
  core::PipelineConfig config;
  config.mitigation.enabled = true;
  config.mitigation.fast_path = false;
  config.mitigation.policy.max_actions_per_source = 2;
  core::Pipeline pipeline(config);
  mitigate::MitigationXapp& mit = *pipeline.mitigation();
  ran::Gnb& gnb = pipeline.testbed().gnb(0);
  std::uint64_t node = pipeline.node_id(0);
  pipeline.run_for(SimDuration::from_ms(10));

  publish_verdict(pipeline, node, 9, true, {"dos"}, {0xABC});
  publish_verdict(pipeline, node, 9, true, {"dos"}, {0xABC});
  EXPECT_EQ(mit.actions_issued(), 2u);
  EXPECT_EQ(gnb.blocked_tmsi_count(), 1u);
  // Budget spent: the next confirmation refreshes the quarantine's TTL
  // instead of escalating to isolation.
  publish_verdict(pipeline, node, 9, true, {"dos"}, {0xABC});
  EXPECT_EQ(mit.actions_issued(), 2u);
  EXPECT_GE(mit.budget_exhausted(), 1u);
  EXPECT_FALSE(gnb.isolated());
  EXPECT_EQ(gnb.blocked_tmsi_count(), 1u);

  // The operator raises the budget over A1; the ladder resumes.
  oran::A1Policy a1;
  a1.policy_type = oran::kPolicyMitigation;
  a1.policy_id = "budget-raise";
  a1.content["max_actions_per_source"] = "10";
  EXPECT_EQ(pipeline.ric().apply_policy("mitigation", a1),
            oran::PolicyStatus::kEnforced);
  publish_verdict(pipeline, node, 9, true, {"dos"}, {0xABC});
  EXPECT_EQ(mit.actions_issued(), 3u);
  EXPECT_TRUE(gnb.isolated());
  EXPECT_EQ(gnb.blocked_tmsi_count(), 0u);
}

TEST(MitigationLoop, FastPathActsOnDetectorFlagAndTtlRollsBack) {
  core::PipelineConfig config;
  config.mitigation.enabled = true;
  core::Pipeline pipeline(config);
  mitigate::MitigationXapp& mit = *pipeline.mitigation();
  ran::Gnb& gnb = pipeline.testbed().gnb(0);
  pipeline.run_for(SimDuration::from_ms(10));

  detect::AnomalyReport report;
  report.detector = "autoencoder";
  report.node_id = pipeline.node_id(0);
  report.source_ue = 9;
  report.score = 2.0;
  report.threshold = 1.0;
  oran::RoutedMessage msg;
  msg.mtype = oran::kMtAnomalyWindow;
  msg.source = "test";
  msg.payload = report.serialize();
  pipeline.ric().router().publish(msg);

  // Fast-path containment before any LLM verdict: the detector-stage rule
  // rate-limits the node.
  EXPECT_EQ(mit.actions_issued(), 1u);
  EXPECT_TRUE(gnb.rate_limit_active());
  EXPECT_EQ(mit.active_actions(), 1u);

  // A second flag for the same source while the action is live is a no-op
  // (one active action per source).
  pipeline.ric().router().publish(msg);
  EXPECT_EQ(mit.actions_issued(), 1u);

  // No verdict sustains the action: the TTL (1500 ms) reverts it.
  pipeline.run_for(SimDuration::from_ms(1600));
  EXPECT_FALSE(gnb.rate_limit_active());
  EXPECT_EQ(mit.rollbacks_ttl(), 1u);
  EXPECT_EQ(mit.active_actions(), 0u);

  // The lifecycle is in the SDL, byte-stable: issue then TTL rollback.
  std::string log;
  oran::Sdl& sdl = pipeline.ric().sdl();
  for (const std::string& key : sdl.keys("mitigate"))
    log += sdl.get_str("mitigate", key).value_or("") + "\n";
  EXPECT_NE(log.find("issue rate-limit"), std::string::npos) << log;
  EXPECT_NE(log.find("rollback rate-limit reason=ttl"), std::string::npos)
      << log;
}

// --- Agent outage spill -----------------------------------------------------

core::PipelineStats run_outage_scenario(const std::string& spill_dir,
                                        std::size_t* records_seen) {
  core::PipelineConfig config;
  config.agent_outage_buffer = 48;
  config.agent_spill_dir = spill_dir;
  config.fault_plan.link_epochs = {
      {SimTime::from_ms(500), SimDuration::from_ms(1200)}};
  config.fault_plan.seed = 0x5B111;
  core::Pipeline pipeline(config);
  sim::TrafficConfig traffic;
  traffic.num_sessions = 40;
  traffic.arrival_mean = SimDuration::from_ms(20);
  traffic.seed = 4242;
  sim::BenignTrafficGenerator generator(&pipeline.testbed(), traffic);
  generator.schedule_all();
  pipeline.run_for(SimDuration::from_s(3));
  pipeline.finalize();
  if (records_seen) *records_seen = pipeline.mobiwatch().records_seen();
  return pipeline.stats();
}

TEST(AgentSpill, OutageBacklogSpillsToDiskAndReplaysLossFree) {
  std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "xsec_spill_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  // RAM-only baseline: the same outage overflows the 48-record backlog and
  // drops the oldest records.
  std::size_t ram_records = 0;
  core::PipelineStats ram = run_outage_scenario("", &ram_records);
  EXPECT_GT(ram.records_dropped_outage, 0u)
      << "scenario must overflow the backlog for the spill to matter";
  EXPECT_EQ(ram.records_spilled, 0u);

  // Spill-enabled run: everything the RAM run dropped reaches disk and is
  // replayed into the report stream after the re-subscription.
  std::size_t spill_records = 0;
  core::PipelineStats spilled =
      run_outage_scenario(dir.string(), &spill_records);
  EXPECT_EQ(spilled.records_dropped_outage, 0u);
  EXPECT_GT(spilled.records_spilled, 0u);
  EXPECT_EQ(spilled.records_replayed, spilled.records_spilled);
  EXPECT_GT(spill_records, ram_records)
      << "replayed records must reach MobiWatch";
  // Replayed spill files are deleted; nothing lingers on disk.
  std::size_t leftover = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator(dir))
    ++leftover;
  EXPECT_EQ(leftover, 0u);
  std::filesystem::remove_all(dir);
}

// --- End-to-end chaos: attack -> mitigate -> recover ------------------------

/// Shared trained detector (training dominates runtime; do it once).
class MitigationChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    std::vector<mobiflow::Trace> captures;
    double arrival_ms = 60.0;
    for (std::uint64_t seed : {71u, 72u}) {
      core::ScenarioConfig benign_config;
      benign_config.testbed.seed = seed;
      benign_config.traffic.num_sessions = 40;
      benign_config.traffic.seed = seed * 13;
      benign_config.traffic.arrival_mean = SimDuration::from_ms(arrival_ms);
      benign_config.run_time = SimDuration::from_s(8);
      captures.push_back(core::collect_benign(benign_config));
      arrival_ms += 60.0;
    }
    core::EvalConfig eval;
    eval.detector.epochs = 25;
    detector_ = new std::shared_ptr<detect::AnomalyDetector>(
        core::train_detector(core::ModelKind::kAutoencoder, captures, eval));
    eval_config_ = new core::EvalConfig(eval);
  }
  static void TearDownTestSuite() {
    delete detector_;
    delete eval_config_;
  }

  /// A fresh inference replica of the trained detector. Each pipeline gets
  /// its own copy because the closed loop MUTATES the installed detector
  /// (A1 false-positive tuning moves its threshold); sharing one object
  /// across runs would leak that tuning into the next run's baseline.
  static std::shared_ptr<detect::AnomalyDetector> fresh_detector() {
    std::shared_ptr<detect::AnomalyDetector> clone(
        (*detector_)->clone_for_inference());
    EXPECT_NE(clone, nullptr);
    return clone;
  }

  static std::unique_ptr<sim::BenignTrafficGenerator> schedule_benign(
      core::Pipeline& pipeline, std::uint64_t seed, int sessions = 8,
      double arrival_mean_ms = 60.0) {
    sim::TrafficConfig traffic;
    traffic.num_sessions = sessions;
    traffic.arrival_mean = SimDuration::from_ms(arrival_mean_ms);
    traffic.seed = seed;
    auto generator = std::make_unique<sim::BenignTrafficGenerator>(
        &pipeline.testbed(), traffic);
    generator->schedule_all();
    return generator;
  }

  static std::shared_ptr<detect::AnomalyDetector>* detector_;
  static core::EvalConfig* eval_config_;
};

std::shared_ptr<detect::AnomalyDetector>* MitigationChaosTest::detector_ =
    nullptr;
core::EvalConfig* MitigationChaosTest::eval_config_ = nullptr;

/// Control-path fault plan: heavy duplication plus loss and reordering on
/// every faultable type, Controls and ControlAcks opted in.
oran::FaultPlan control_chaos_plan(std::uint64_t seed) {
  oran::FaultPlan plan;
  plan.drop_probability = 0.10;
  plan.duplicate_probability = 0.25;
  plan.reorder_probability = 0.10;
  plan.fault_control = true;
  plan.seed = seed;
  return plan;
}

TEST_F(MitigationChaosTest, AttackIsMitigatedAndKpisRecoverUnderFaults) {
  core::PipelineConfig config;
  config.analyzer.model = "ChatGPT-4o";
  config.mitigation.enabled = true;
  config.fault_plan = control_chaos_plan(0x3117);
  core::Pipeline pipeline(config);
  pipeline.install_detector(fresh_detector(),
                            detect::FeatureEncoder(eval_config_->features));
  auto traffic_handle = schedule_benign(pipeline, 99);
  // A sustained flood (~1.8 s of half-open connections) so mitigation lands
  // while the attack is still running and the KPI impact is measurable.
  auto attack = attacks::make_bts_dos(60, SimDuration::from_ms(30));
  attack->launch(pipeline.testbed(), SimTime::from_ms(250));
  pipeline.run_for(SimDuration::from_s(4));

  // Detected and acted while the attack was live.
  EXPECT_GT(pipeline.mobiwatch().anomalies_flagged(), 0u);
  mitigate::MitigationXapp& mit = *pipeline.mitigation();
  EXPECT_GE(mit.actions_issued(), 1u);

  // Quiet tail: every TTL expires with no verdict to sustain it, so the
  // recovery monitor reverts all mitigation state.
  pipeline.run_for(SimDuration::from_s(4));
  pipeline.finalize();

  core::PipelineStats stats = pipeline.stats();
  ran::Gnb& gnb = pipeline.testbed().gnb(0);

  // The mitigation bit: the gNB actually enforced something against the
  // flood while actions were live.
  EXPECT_GT(gnb.rate_limited_setups() + gnb.isolation_rejects() +
                gnb.blocked_setup_attempts(),
            0u);

  // KPI recovery: every action was rolled back and no constraint outlives
  // the incident.
  EXPECT_GE(mit.rollbacks(), 1u);
  EXPECT_EQ(mit.active_actions(), 0u);
  EXPECT_FALSE(gnb.rate_limit_active());
  EXPECT_FALSE(gnb.isolated());
  EXPECT_EQ(gnb.blocked_tmsi_count(), 0u);

  // Control-plane reliability under the fault plan: every Control the RIC
  // sent is accounted for — exactly one ack (real or synthesized-failure)
  // per send, duplicates executed at most once.
  EXPECT_GT(stats.controls_sent, 0u);
  EXPECT_EQ(stats.control_acks + stats.controls_lost, stats.controls_sent);
  EXPECT_GT(stats.control_retx + stats.controls_deduplicated, 0u)
      << "the fault plan must actually bite the Control path";

  // The counters render in the operator snapshot.
  std::string text = stats.to_text();
  for (const char* needle :
       {"Mitigation:", "controls sent", "actions issued", "rollbacks"})
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
}

/// Everything a seeded chaos run can externalize, captured byte-for-byte.
struct MitigationSnapshot {
  std::string prometheus;
  std::string json;
  std::string stats_text;
  std::string incidents;
  std::string mitigation_log;
};

TEST_F(MitigationChaosTest, ShardCountNeverChangesMitigationBytes) {
  // The determinism oracle extended to the closed loop: with mitigation
  // enabled and Control-path faults active, every export — including the
  // mitigation lifecycle log in the SDL — is byte-identical at 1, 2 and 4
  // RIC shards.
  auto run = [&](std::size_t shards) {
    core::PipelineConfig config;
    config.analyzer.model = "ChatGPT-4o";
    config.mitigation.enabled = true;
    config.ric_shards = shards;
    config.fault_plan = control_chaos_plan(0xD373C8);
    core::Pipeline pipeline(config);
    EXPECT_EQ(pipeline.ric_shards(), shards);
    MitigationSnapshot snap;
    pipeline.ric().router().subscribe(
        oran::kMtAnomalyWindow, [&snap](const oran::RoutedMessage& m) {
          snap.incidents.append(m.payload.begin(), m.payload.end());
        });
    pipeline.install_detector(
        fresh_detector(), detect::FeatureEncoder(eval_config_->features));
    auto traffic_handle = schedule_benign(pipeline, 99, 10);
    auto attack = attacks::make_bts_dos(30, SimDuration::from_ms(30));
    attack->launch(pipeline.testbed(), SimTime::from_ms(300));
    pipeline.run_for(SimDuration::from_s(4));
    pipeline.run_for(SimDuration::from_s(2));
    pipeline.finalize();
    snap.prometheus = obs::render_prometheus(pipeline.metrics());
    snap.json = obs::render_json(pipeline.metrics(), &pipeline.tracer());
    snap.stats_text = pipeline.stats().to_text();
    oran::Sdl& sdl = pipeline.ric().sdl();
    for (const std::string& key : sdl.keys("mitigate"))
      snap.mitigation_log +=
          key + "=" + sdl.get_str("mitigate", key).value_or("") + "\n";
    return snap;
  };

  MitigationSnapshot reference = run(1);
  EXPECT_FALSE(reference.incidents.empty()) << "attack must produce reports";
  EXPECT_FALSE(reference.mitigation_log.empty())
      << "the closed loop must have acted";
  for (std::size_t shards : {2u, 4u}) {
    SCOPED_TRACE(std::to_string(shards) + " shards");
    MitigationSnapshot sharded = run(shards);
    EXPECT_EQ(sharded.prometheus, reference.prometheus);
    EXPECT_EQ(sharded.json, reference.json);
    EXPECT_EQ(sharded.stats_text, reference.stats_text);
    EXPECT_EQ(sharded.incidents, reference.incidents);
    EXPECT_EQ(sharded.mitigation_log, reference.mitigation_log);
  }
}

TEST_F(MitigationChaosTest, FalsePositiveMitigationRollsBackOnLlmEvidence) {
  // The no-permanent-quarantine regression: an over-sensitive detector
  // (threshold slashed over A1) flags benign traffic, the fast path
  // contains it, the LLM judges the windows benign — and every action must
  // be rolled back on that evidence, with the detector nudged back up over
  // A1 so the same pattern stops firing.
  core::PipelineConfig config;
  config.analyzer.model = "ChatGPT-4o";
  config.mitigation.enabled = true;
  // Long fast-path TTL so the verdict, not the TTL, is what reverts.
  for (PolicyRule& rule : config.mitigation.policy.rules)
    if (rule.stage == RuleStage::kDetector) rule.ttl_ms = 30'000;
  core::Pipeline pipeline(config);
  pipeline.install_detector(fresh_detector(),
                            detect::FeatureEncoder(eval_config_->features));
  oran::A1Policy overtuned;
  overtuned.policy_type = oran::kPolicyDetectionTuning;
  overtuned.policy_id = "overtuned";
  overtuned.content["threshold_scale"] = "0.05";
  ASSERT_EQ(pipeline.ric().apply_policy("mobiwatch", overtuned),
            oran::PolicyStatus::kEnforced);

  auto traffic_handle = schedule_benign(pipeline, 99);
  pipeline.run_for(SimDuration::from_s(4));
  pipeline.finalize();

  mitigate::MitigationXapp& mit = *pipeline.mitigation();
  ran::Gnb& gnb = pipeline.testbed().gnb(0);
  // Benign traffic was flagged and mitigated...
  EXPECT_GT(pipeline.mobiwatch().anomalies_flagged(), 0u);
  EXPECT_GE(mit.actions_issued(), 1u);
  // ...and every action was reverted on false-positive evidence; nothing
  // is quarantined once the verdicts are in.
  EXPECT_GE(mit.rollbacks_evidence(), 1u);
  EXPECT_EQ(mit.active_actions(), 0u);
  EXPECT_FALSE(gnb.rate_limit_active());
  EXPECT_FALSE(gnb.isolated());
  EXPECT_EQ(gnb.blocked_tmsi_count(), 0u);
  // The loop pushed the detection threshold back up over A1.
  EXPECT_GE(mit.a1_tunings(), 1u);

  // The rollback is visible in the byte-stable exports: Prometheus metrics
  // and the SDL incident log.
  std::string prometheus = obs::render_prometheus(pipeline.metrics());
  EXPECT_NE(prometheus.find("xsec_mitigate_rollbacks_evidence"),
            std::string::npos);
  const obs::Counter* evidence =
      pipeline.metrics().find_counter("mitigate.rollbacks_evidence");
  ASSERT_NE(evidence, nullptr);
  EXPECT_GE(evidence->value(), 1u);
  std::string log;
  oran::Sdl& sdl = pipeline.ric().sdl();
  for (const std::string& key : sdl.keys("mitigate"))
    log += sdl.get_str("mitigate", key).value_or("") + "\n";
  EXPECT_NE(log.find("reason=evidence"), std::string::npos) << log;
}

}  // namespace
}  // namespace xsec
