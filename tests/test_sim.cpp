// Discrete-event kernel, radio cell, device profiles, traffic generator.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/profiles.hpp"
#include "sim/radio.hpp"
#include "sim/testbed.hpp"
#include "sim/traffic.hpp"

namespace xsec::sim {
namespace {

// --- EventQueue -----------------------------------------------------------

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(SimTime{30}, [&] { order.push_back(3); });
  q.schedule_at(SimTime{10}, [&] { order.push_back(1); });
  q.schedule_at(SimTime{20}, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoForEqualTimestamps) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    q.schedule_at(SimTime{5}, [&order, i] { order.push_back(i); });
  q.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NowAdvancesDuringExecution) {
  EventQueue q;
  SimTime seen{0};
  q.schedule_at(SimTime{100}, [&] { seen = q.now(); });
  q.run_all();
  EXPECT_EQ(seen.us, 100);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int count = 0;
  q.schedule_at(SimTime{10}, [&] { ++count; });
  q.schedule_at(SimTime{20}, [&] { ++count; });
  q.schedule_at(SimTime{30}, [&] { ++count; });
  EXPECT_EQ(q.run_until(SimTime{20}), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(q.now().us, 20);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, HandlersCanScheduleMoreEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) q.schedule_after(SimDuration::from_us(1), recurse);
  };
  q.schedule_at(SimTime{0}, recurse);
  q.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(q.now().us, 4);
}

TEST(EventQueue, RunAllBoundedByMaxEvents) {
  EventQueue q;
  std::function<void()> forever = [&] {
    q.schedule_after(SimDuration::from_us(1), forever);
  };
  q.schedule_at(SimTime{0}, forever);
  EXPECT_EQ(q.run_all(100), 100u);
}

// --- Per-lane timelines ---------------------------------------------------

TEST(EventQueueLanes, MergesLanesByTimeThenLaneIndex) {
  EventQueue q(3);
  std::vector<int> order;
  // Same timestamp on every lane: lane index breaks the tie.
  q.schedule_on(2, SimTime{10}, [&] { order.push_back(32); });
  q.schedule_on(0, SimTime{10}, [&] { order.push_back(30); });
  q.schedule_on(1, SimTime{10}, [&] { order.push_back(31); });
  // Earlier time on a high lane still runs first.
  q.schedule_on(2, SimTime{5}, [&] { order.push_back(25); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{25, 30, 31, 32}));
}

TEST(EventQueueLanes, FifoWithinALane) {
  EventQueue q(2);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i)
    q.schedule_on(1, SimTime{7}, [&order, i] { order.push_back(i); });
  q.run_all();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueLanes, SingleLaneMatchesLegacyScheduleAt) {
  // schedule_at is exactly lane 0: interleaving the two APIs preserves one
  // global FIFO for equal timestamps.
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(SimTime{3}, [&] { order.push_back(0); });
  q.schedule_on(0, SimTime{3}, [&] { order.push_back(1); });
  q.schedule_at(SimTime{3}, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueueLanes, MergeOrderIsAPureFunctionOfTheSchedule) {
  // Scheduling the same entries in two different arrival orders yields the
  // same execution order — the determinism contract sharded datasets rely
  // on.
  auto run = [](bool reversed) {
    EventQueue q(4);
    std::vector<int> order;
    std::vector<std::pair<std::size_t, std::int64_t>> entries = {
        {3, 20}, {0, 20}, {1, 10}, {2, 10}, {1, 30}, {0, 10}};
    if (reversed) std::reverse(entries.begin(), entries.end());
    for (auto [lane, t] : entries)
      q.schedule_on(lane, SimTime{t}, [&order, lane = lane, t = t] {
        order.push_back(static_cast<int>(lane * 100 + t));
      });
    q.run_all();
    return order;
  };
  EXPECT_EQ(run(false),
            (std::vector<int>{10, 110, 210, 20, 320, 130}));
  // Same-(time,lane) entries keep their per-run schedule order; none exist
  // here, so both arrival orders merge identically.
  EXPECT_EQ(run(false), run(true));
}

TEST(EventQueueLanes, PendingCountsPerLaneAndTotal) {
  EventQueue q(3);
  EXPECT_EQ(q.lane_count(), 3u);
  q.schedule_on(0, SimTime{1}, [] {});
  q.schedule_on(2, SimTime{1}, [] {});
  q.schedule_on(2, SimTime{2}, [] {});
  EXPECT_EQ(q.lane_pending(0), 1u);
  EXPECT_EQ(q.lane_pending(1), 0u);
  EXPECT_EQ(q.lane_pending(2), 2u);
  EXPECT_EQ(q.pending(), 3u);
  EXPECT_EQ(q.run_until(SimTime{1}), 2u);
  EXPECT_EQ(q.lane_pending(2), 1u);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueueLanes, RunUntilDrainsAllLanesToBoundary) {
  EventQueue q(2);
  std::vector<int> order;
  q.schedule_on(0, SimTime{10}, [&] { order.push_back(1); });
  q.schedule_on(1, SimTime{15}, [&] { order.push_back(2); });
  q.schedule_on(0, SimTime{25}, [&] { order.push_back(3); });
  EXPECT_EQ(q.run_until(SimTime{20}), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.now().us, 20);
}

// --- RadioCell --------------------------------------------------------

TEST(RadioCell, UplinkStampsTagAndDelivers) {
  EventQueue q;
  RadioCell cell(&q, RadioParams{}, Rng{1});
  ran::GnbConfig config;
  ran::GnbHooks hooks;
  std::vector<ran::AirFrame> received;
  hooks.send_downlink = [](ran::AirFrame) {};
  hooks.now = [&q] { return q.now(); };
  hooks.schedule = [&q](SimDuration d, std::function<void()> fn) {
    q.schedule_after(d, std::move(fn));
  };
  hooks.to_amf = [](Bytes) {};
  ran::InterfaceTaps taps;
  ran::Gnb gnb(config, std::move(hooks), &taps);
  cell.attach_gnb(&gnb);

  std::uint64_t tag = cell.add_endpoint([](const ran::AirFrame&) {});
  ran::AirFrame frame;
  frame.uplink = true;
  frame.rrc_wire = ran::encode_rrc(ran::RrcMessage{ran::RrcSetupRequest{}});
  cell.uplink(tag, frame);
  // Run only past the propagation delay (run_all would also fire the
  // gNB's context garbage-collection timer).
  q.run_until(SimTime::from_ms(10));
  // The gNB admitted the CCCH request -> one context exists.
  EXPECT_EQ(gnb.active_contexts(), 1u);
}

TEST(RadioCell, DownlinkRoutedByTag) {
  EventQueue q;
  RadioCell cell(&q, RadioParams{}, Rng{1});
  int a_frames = 0, b_frames = 0;
  std::uint64_t tag_a = cell.add_endpoint(
      [&](const ran::AirFrame&) { ++a_frames; });
  std::uint64_t tag_b = cell.add_endpoint(
      [&](const ran::AirFrame&) { ++b_frames; });
  (void)tag_a;
  ran::AirFrame frame;
  frame.uplink = false;
  frame.radio_tag = tag_b;
  cell.downlink(frame);
  q.run_all();
  EXPECT_EQ(a_frames, 0);
  EXPECT_EQ(b_frames, 1);
}

TEST(RadioCell, LossDropsOnlyCcchFrames) {
  EventQueue q;
  RadioParams params;
  params.loss_probability = 1.0;
  RadioCell cell(&q, params, Rng{1});
  std::uint64_t tag = cell.add_endpoint([](const ran::AirFrame&) {});
  // CCCH uplink (no C-RNTI yet): lost.
  ran::AirFrame ccch;
  ccch.uplink = true;
  cell.uplink(tag, ccch);
  q.run_until(SimTime::from_ms(5));
  EXPECT_EQ(cell.frames_lost(), 1u);
  // Established-bearer downlink rides RLC AM: delivered despite "loss".
  int received = 0;
  std::uint64_t tag2 =
      cell.add_endpoint([&](const ran::AirFrame&) { ++received; });
  ran::AirFrame dcch;
  dcch.uplink = false;
  dcch.rnti = ran::Rnti{0x10};
  dcch.radio_tag = tag2;
  cell.downlink(dcch);
  q.run_until(SimTime::from_ms(10));
  EXPECT_EQ(received, 1);
}

class DropAllInterceptor : public FrameInterceptor {
 public:
  std::optional<ran::AirFrame> on_uplink(const ran::AirFrame&) override {
    ++dropped;
    return std::nullopt;
  }
  int dropped = 0;
};

TEST(RadioCell, InterceptorCanDropUplink) {
  EventQueue q;
  RadioCell cell(&q, RadioParams{}, Rng{1});
  DropAllInterceptor interceptor;
  cell.add_interceptor(&interceptor);
  std::uint64_t tag = cell.add_endpoint([](const ran::AirFrame&) {});
  ran::AirFrame frame;
  frame.uplink = true;
  cell.uplink(tag, frame);
  q.run_all();
  EXPECT_EQ(interceptor.dropped, 1);
  EXPECT_EQ(cell.frames_delivered(), 0u);
}

TEST(RadioCell, InjectBypassesInterceptors) {
  EventQueue q;
  RadioCell cell(&q, RadioParams{}, Rng{1});
  DropAllInterceptor interceptor;
  cell.add_interceptor(&interceptor);
  int received = 0;
  std::uint64_t tag = cell.add_endpoint(
      [&](const ran::AirFrame&) { ++received; });
  ran::AirFrame frame;
  frame.uplink = false;
  frame.radio_tag = tag;
  cell.inject_downlink(frame);
  q.run_all();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(interceptor.dropped, 0);
}

TEST(RadioCell, PropagationDelayApplied) {
  EventQueue q;
  RadioParams params;
  params.dl_delay = SimDuration::from_ms(5);
  RadioCell cell(&q, params, Rng{1});
  SimTime delivered_at{0};
  std::uint64_t tag = cell.add_endpoint(
      [&](const ran::AirFrame&) { delivered_at = q.now(); });
  ran::AirFrame frame;
  frame.uplink = false;
  frame.radio_tag = tag;
  cell.downlink(frame);
  q.run_all();
  EXPECT_EQ(delivered_at.us, 5000);
}

// --- Profiles ---------------------------------------------------------

TEST(Profiles, FiveStandardProfiles) {
  const auto& profiles = standard_profiles();
  ASSERT_EQ(profiles.size(), 5u);
  EXPECT_EQ(profiles[0].name, "Pixel 5");
  EXPECT_EQ(profiles[4].name, "OAI soft-UE (COLOSSEUM)");
}

TEST(Profiles, SessionConfigSamplesWithinProfileBounds) {
  Rng rng(4);
  const DeviceProfile& profile = standard_profiles()[0];
  ran::Supi supi{ran::Plmn::test_network(), 2089900000ULL};
  for (int i = 0; i < 50; ++i) {
    ran::UeConfig config = make_session_config(profile, supi, rng);
    EXPECT_EQ(config.supi, supi);
    EXPECT_EQ(config.capabilities, profile.capabilities);
    EXPECT_GE(config.activity_reports, profile.min_activity_reports);
    EXPECT_LE(config.activity_reports, profile.max_activity_reports);
    EXPECT_GE(config.activity_interval.us, profile.activity_interval.us / 2);
    EXPECT_LE(config.activity_interval.us,
              profile.activity_interval.us * 3 / 2);
  }
}

TEST(Profiles, CauseSampledFromProfileWeights) {
  Rng rng(5);
  const DeviceProfile& profile = standard_profiles()[4];  // OAI
  ran::Supi supi{ran::Plmn::test_network(), 1};
  for (int i = 0; i < 50; ++i) {
    ran::UeConfig config = make_session_config(profile, supi, rng);
    bool allowed = false;
    for (const auto& [cause, weight] : profile.cause_weights)
      if (config.establishment_cause == cause) allowed = true;
    EXPECT_TRUE(allowed);
  }
}

// --- Traffic generator -------------------------------------------------

TEST(Traffic, SchedulesRequestedSessions) {
  Testbed testbed;
  TrafficConfig config;
  config.num_sessions = 30;
  config.num_subscribers = 10;
  config.arrival_mean = SimDuration::from_ms(20);
  config.seed = 5;
  BenignTrafficGenerator generator(&testbed, config);
  generator.schedule_all();
  EXPECT_EQ(generator.sessions_scheduled(), 30);
  testbed.run_for(SimDuration::from_s(4));
  EXPECT_EQ(testbed.sessions_created(), 30u);
  // The vast majority of benign sessions must run to completion.
  EXPECT_GE(testbed.sessions_ended(), 27u);
}

TEST(Traffic, SessionsRegisterWithCore) {
  Testbed testbed;
  TrafficConfig config;
  config.num_sessions = 20;
  config.arrival_mean = SimDuration::from_ms(30);
  config.seed = 6;
  BenignTrafficGenerator generator(&testbed, config);
  generator.schedule_all();
  testbed.run_for(SimDuration::from_s(4));
  EXPECT_GE(testbed.amf().registered_count(), 18u);
  EXPECT_EQ(testbed.amf().auth_failures(), 0u);
}

TEST(Traffic, DeterministicAcrossRuns) {
  auto run_once = [] {
    Testbed testbed;
    TrafficConfig config;
    config.num_sessions = 15;
    config.seed = 77;
    config.arrival_mean = SimDuration::from_ms(20);
    BenignTrafficGenerator generator(&testbed, config);
    generator.schedule_all();
    testbed.run_for(SimDuration::from_s(3));
    return testbed.amf().registered_count();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace xsec::sim
