// F1AP / NGAP shim and interface tap tests.
#include <gtest/gtest.h>

#include "ran/codec.hpp"
#include "ran/interfaces.hpp"

namespace xsec::ran {
namespace {

TEST(F1ap, RoundTrip) {
  F1apMessage msg;
  msg.procedure = F1apProcedure::kDlRrcMessageTransfer;
  msg.gnb_du_ue_id = 42;
  msg.rnti = Rnti{0xBEEF};
  msg.cell = CellId{7, 3};
  msg.rrc_container = encode_rrc(RrcMessage{RrcSetup{}});
  auto decoded = decode_f1ap(encode_f1ap(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().procedure, msg.procedure);
  EXPECT_EQ(decoded.value().gnb_du_ue_id, 42u);
  EXPECT_EQ(decoded.value().rnti, msg.rnti);
  EXPECT_EQ(decoded.value().cell, msg.cell);
  EXPECT_EQ(decoded.value().rrc_container, msg.rrc_container);
}

TEST(F1ap, EmptyContainerAllowed) {
  F1apMessage msg;
  msg.procedure = F1apProcedure::kUeContextRelease;
  auto decoded = decode_f1ap(encode_f1ap(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().rrc_container.empty());
}

TEST(F1ap, BadMagicRejected) {
  Bytes wire = encode_f1ap(F1apMessage{});
  wire[0] ^= 0xFF;
  EXPECT_FALSE(decode_f1ap(wire).ok());
}

TEST(F1ap, NgapWireRejected) {
  // Feeding an NGAP message to the F1AP decoder must fail cleanly.
  NgapMessage ngap;
  EXPECT_FALSE(decode_f1ap(encode_ngap(ngap)).ok());
}

TEST(Ngap, RoundTrip) {
  NgapMessage msg;
  msg.procedure = NgapProcedure::kInitialUeMessage;
  msg.ran_ue_ngap_id = 9;
  msg.amf_ue_ngap_id = 100;
  msg.nas_pdu = encode_nas(NasMessage{RegistrationComplete{}});
  auto decoded = decode_ngap(encode_ngap(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().procedure, msg.procedure);
  EXPECT_EQ(decoded.value().ran_ue_ngap_id, 9u);
  EXPECT_EQ(decoded.value().amf_ue_ngap_id, 100u);
  EXPECT_EQ(decoded.value().nas_pdu, msg.nas_pdu);
}

TEST(Ngap, TruncatedRejected) {
  Bytes wire = encode_ngap(NgapMessage{});
  wire.resize(wire.size() / 2);
  EXPECT_FALSE(decode_ngap(wire).ok());
}

TEST(Taps, FanOutToAllHandlers) {
  InterfaceTaps taps;
  int f1_calls = 0, ng_calls = 0;
  taps.add_f1_tap([&](SimTime, const Bytes&) { ++f1_calls; });
  taps.add_f1_tap([&](SimTime, const Bytes&) { ++f1_calls; });
  taps.add_ng_tap([&](SimTime, const Bytes&) { ++ng_calls; });
  taps.emit_f1(SimTime{1}, {1, 2});
  taps.emit_ng(SimTime{2}, {3});
  taps.emit_ng(SimTime{3}, {4});
  EXPECT_EQ(f1_calls, 2);
  EXPECT_EQ(ng_calls, 2);
}

TEST(Taps, HandlersSeeWireBytes) {
  InterfaceTaps taps;
  Bytes seen;
  taps.add_f1_tap([&](SimTime, const Bytes& wire) { seen = wire; });
  F1apMessage msg;
  msg.rnti = Rnti{0x1234};
  Bytes wire = encode_f1ap(msg);
  taps.emit_f1(SimTime{0}, wire);
  EXPECT_EQ(seen, wire);
}

TEST(ProcedureNames, Strings) {
  EXPECT_EQ(to_string(F1apProcedure::kInitialUlRrcMessageTransfer),
            "InitialULRRCMessageTransfer");
  EXPECT_EQ(to_string(NgapProcedure::kDownlinkNasTransport),
            "DownlinkNASTransport");
}

}  // namespace
}  // namespace xsec::ran
