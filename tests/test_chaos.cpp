// Chaos tests: the full pipeline under an adversarial E2 transport.
//
// Every test runs the real Figure 3 assembly with a FaultyE2Transport
// fault plan — random indication loss, duplication, reordering, and hard
// link-down epochs — and asserts the recovery machinery end to end:
// agent reconnect with backoff, NACK-driven retransmission, duplicate
// suppression, explicit telemetry-gap degradation in MobiWatch, and LLM
// outage deferral. The robustness counters exposed by PipelineStats are
// the test surface.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "attacks/attack.hpp"
#include "core/datasets.hpp"
#include "core/evaluation.hpp"
#include "core/pipeline.hpp"
#include "llm/client.hpp"
#include "obs/export.hpp"
#include "oran/e2sm.hpp"
#include "oran/xapp.hpp"
#include "sim/traffic.hpp"

namespace xsec {
namespace {

// --- Sequence-audit xApp ----------------------------------------------------

/// Subscribes to the MobiFlow function alongside MobiWatch and logs, per
/// subscription stream, every delivered sequence number and every declared
/// gap range. The audit then proves the RIC's delivery contract: after all
/// recovery machinery has run, each stream's delivered + gap-covered
/// sequences form a strictly increasing, duplicate-free, contiguous run.
class SequenceAuditXapp : public oran::XApp {
 public:
  using StreamId = std::pair<std::uint64_t, std::uint32_t>;  // node, instance
  struct StreamLog {
    std::vector<std::uint32_t> delivered;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> gaps;
  };

  SequenceAuditXapp() : oran::XApp("seq-audit") {}

  void on_start() override {
    for (std::uint64_t node_id : ric().connected_nodes())
      subscribe_to_node(node_id);
  }
  void on_node_connected(std::uint64_t node_id) override {
    subscribe_to_node(node_id);
  }
  void on_indication(std::uint64_t node_id,
                     const oran::RicIndication& indication) override {
    logs_[{node_id, indication.request_id.instance_id}].delivered.push_back(
        indication.sequence_number);
  }
  void on_telemetry_gap(std::uint64_t node_id,
                        const oran::RicRequestId& request_id,
                        std::uint32_t first_sequence,
                        std::uint32_t last_sequence) override {
    logs_[{node_id, request_id.instance_id}].gaps.push_back(
        {first_sequence, last_sequence});
  }

  const std::map<StreamId, StreamLog>& logs() const { return logs_; }

 private:
  void subscribe_to_node(std::uint64_t node_id) {
    const auto* functions = ric().node_functions(node_id);
    if (!functions) return;
    for (const auto& f : *functions) {
      if (f.function_id != oran::e2sm::kMobiFlowFunctionId) continue;
      oran::e2sm::EventTriggerDefinition trigger;
      oran::RicAction action;
      action.action_id = 1;
      action.type = oran::RicActionType::kReport;
      action.definition =
          oran::e2sm::encode_action_definition(oran::e2sm::ActionDefinition{});
      ric().subscribe(this, node_id, f.function_id,
                      oran::e2sm::encode_event_trigger(trigger), {action});
    }
  }

  std::map<StreamId, StreamLog> logs_;
};

/// The delivery contract for one stream: every sequence between the first
/// and last observed is accounted for exactly once — either delivered to
/// the xApp or explicitly declared lost. Nothing silently missing, nothing
/// accepted twice.
void audit_stream(const SequenceAuditXapp::StreamLog& log) {
  for (std::size_t i = 1; i < log.delivered.size(); ++i)
    ASSERT_LT(log.delivered[i - 1], log.delivered[i])
        << "out-of-order or duplicate delivery";
  std::set<std::uint64_t> covered;
  for (std::uint32_t seq : log.delivered)
    ASSERT_TRUE(covered.insert(seq).second) << "sequence " << seq
                                            << " delivered twice";
  for (const auto& [first, last] : log.gaps) {
    ASSERT_LE(first, last);
    for (std::uint64_t seq = first; seq <= last; ++seq)
      ASSERT_TRUE(covered.insert(seq).second)
          << "sequence " << seq << " both delivered and declared lost";
  }
  if (covered.empty()) return;
  EXPECT_EQ(covered.size(), *covered.rbegin() - *covered.begin() + 1)
      << "unaccounted hole in the sequence space";
}

oran::FaultPlan lossy_plan(std::uint64_t seed) {
  oran::FaultPlan plan;
  plan.drop_probability = 0.08;
  plan.duplicate_probability = 0.08;
  plan.reorder_probability = 0.15;
  plan.seed = seed;
  return plan;
}

/// The generator must outlive the simulation run: its scheduled events
/// capture `this`. Callers hold the returned handle across run_for.
std::unique_ptr<sim::BenignTrafficGenerator> schedule_benign(
    core::Pipeline& pipeline, std::uint64_t seed, int sessions = 8,
    double arrival_mean_ms = 60.0) {
  sim::TrafficConfig traffic;
  traffic.num_sessions = sessions;
  traffic.arrival_mean = SimDuration::from_ms(arrival_mean_ms);
  traffic.seed = seed;
  auto generator = std::make_unique<sim::BenignTrafficGenerator>(
      &pipeline.testbed(), traffic);
  generator->schedule_all();
  return generator;
}

// --- Link-down epochs: reconnect with backoff -------------------------------

TEST(ChaosTransport, AgentReconnectsWithBackoffAcrossLinkDownEpochs) {
  core::PipelineConfig config;
  config.fault_plan.drop_probability = 0.05;
  config.fault_plan.link_epochs = {
      {SimTime::from_ms(1000), SimDuration::from_ms(350)},
      {SimTime::from_ms(2200), SimDuration::from_ms(450)},
  };
  config.fault_plan.seed = 0xC0FFEE;
  core::Pipeline pipeline(config);
  auto* audit = static_cast<SequenceAuditXapp*>(
      pipeline.ric().register_xapp(std::make_unique<SequenceAuditXapp>()));
  // Enough sessions that benign traffic keeps arriving well past the second
  // recovery, so post-outage collection is observable.
  auto traffic_handle = schedule_benign(pipeline, 99, 40, 110.0);

  pipeline.run_for(SimDuration::from_s(3.2));
  std::size_t records_after_recovery = pipeline.mobiwatch().records_seen();
  EXPECT_GT(records_after_recovery, 0u);
  pipeline.run_for(SimDuration::from_s(1.8));
  pipeline.finalize();

  core::PipelineStats stats = pipeline.stats();
  EXPECT_EQ(stats.link_down_events, 2u);
  EXPECT_EQ(stats.link_down_drops + stats.records_dropped_outage, 0u)
      << "agent must buffer, not transmit, during an outage";
  // Both outages end with a successful reconnect; the backoff loop probes
  // while the link is down (so attempts > reconnects) but is exponential,
  // not a hot loop (so attempts stay small for sub-second outages).
  EXPECT_EQ(pipeline.agent().reconnects(), 2u);
  EXPECT_GT(pipeline.agent().reconnect_attempts(),
            pipeline.agent().reconnects());
  EXPECT_LE(pipeline.agent().reconnect_attempts(), 10u);
  EXPECT_TRUE(pipeline.agent().subscribed());
  EXPECT_EQ(stats.stale_subscriptions_cleared, 0u)
      << "hard link-down tears subscriptions down eagerly, not on re-setup";
  // Telemetry flows again after the second recovery, and MobiWatch marked
  // both discontinuities instead of scoring across them.
  EXPECT_GT(pipeline.mobiwatch().records_seen(), records_after_recovery);
  EXPECT_GE(pipeline.mobiwatch().gaps_observed(), 2u);
  EXPECT_EQ(pipeline.ric().sdl().size("mobiflow.gaps"),
            pipeline.mobiwatch().gaps_observed());
  // And the delivery contract held across both outages: nothing accepted
  // after recovery was lost or duplicated.
  ASSERT_FALSE(audit->logs().empty());
  for (const auto& [id, log] : audit->logs()) {
    SCOPED_TRACE("node " + std::to_string(id.first) + " instance " +
                 std::to_string(id.second));
    audit_stream(log);
  }
}

TEST(ChaosTransport, StatsSnapshotRendersEveryCounterGroup) {
  core::PipelineConfig config;
  config.fault_plan.drop_probability = 0.05;
  core::Pipeline pipeline(config);
  auto traffic_handle = schedule_benign(pipeline, 7, 4);
  pipeline.run_for(SimDuration::from_s(2));
  pipeline.finalize();
  std::string text = pipeline.stats().to_text();
  for (const char* needle : {"E2 transport", "RIC agents", "near-RT RIC",
                             "MobiWatch", "LLM analyzer", "gaps"})
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
}

// --- Seed sweep: the delivery contract holds under any fault stream --------

class ChaosSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSweep, SequenceAuditHoldsUnderLossDupReorderAndOutage) {
  core::PipelineConfig config;
  config.fault_plan = lossy_plan(GetParam());
  config.fault_plan.link_epochs = {
      {SimTime::from_ms(1500), SimDuration::from_ms(400)}};
  core::Pipeline pipeline(config);
  auto* audit = static_cast<SequenceAuditXapp*>(
      pipeline.ric().register_xapp(std::make_unique<SequenceAuditXapp>()));
  auto traffic_handle = schedule_benign(pipeline, GetParam() * 17 + 1);

  pipeline.run_for(SimDuration::from_s(4));
  pipeline.finalize();

  core::PipelineStats stats = pipeline.stats();
  // The fault plan actually bit: losses, duplicates and reorderings all
  // occurred, and the recovery machinery engaged.
  EXPECT_GT(stats.frames_dropped, 0u);
  EXPECT_GT(stats.frames_duplicated, 0u);
  EXPECT_GT(stats.frames_reordered, 0u);
  EXPECT_GT(stats.nacks_sent, 0u);
  EXPECT_GT(stats.indications_retransmitted, 0u);
  EXPECT_GT(stats.duplicates_suppressed, 0u);
  EXPECT_EQ(stats.link_down_events, 1u);
  EXPECT_EQ(pipeline.agent().reconnects(), 1u);
  // Retransmission healed at least part of what the transport lost.
  EXPECT_GT(stats.indications_recovered, 0u);

  // The contract: nothing silently lost, nothing accepted twice — on the
  // audit's streams and (via shared counters) MobiWatch's.
  ASSERT_FALSE(audit->logs().empty());
  std::size_t audited_streams = 0;
  for (const auto& [id, log] : audit->logs()) {
    SCOPED_TRACE("node " + std::to_string(id.first) + " instance " +
                 std::to_string(id.second));
    audit_stream(log);
    if (!log.delivered.empty()) ++audited_streams;
  }
  EXPECT_GT(audited_streams, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweep,
                         ::testing::Values(101u, 202u, 303u));

// --- Detection under faults -------------------------------------------------

/// Shared trained detector (training dominates runtime; do it once).
class ChaosDetectTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    std::vector<mobiflow::Trace> captures;
    double arrival_ms = 60.0;
    for (std::uint64_t seed : {71u, 72u}) {
      core::ScenarioConfig benign_config;
      benign_config.testbed.seed = seed;
      benign_config.traffic.num_sessions = 40;
      benign_config.traffic.seed = seed * 13;
      benign_config.traffic.arrival_mean = SimDuration::from_ms(arrival_ms);
      benign_config.run_time = SimDuration::from_s(8);
      captures.push_back(core::collect_benign(benign_config));
      arrival_ms += 60.0;
    }
    core::EvalConfig eval;
    eval.detector.epochs = 25;
    detector_ = new std::shared_ptr<detect::AnomalyDetector>(
        core::train_detector(core::ModelKind::kAutoencoder, captures, eval));
    eval_config_ = new core::EvalConfig(eval);
  }
  static void TearDownTestSuite() {
    delete detector_;
    delete eval_config_;
  }

  struct RunResult {
    std::size_t anomalies = 0;
    std::size_t incidents = 0;
    std::size_t windows_scored = 0;
    std::size_t gaps_observed = 0;
  };

  static RunResult run_benign(const oran::FaultPlan& plan) {
    core::PipelineConfig config;
    config.fault_plan = plan;
    core::Pipeline pipeline(config);
    pipeline.install_detector(
        *detector_, detect::FeatureEncoder(eval_config_->features));
    auto traffic_handle = schedule_benign(pipeline, 99);
    pipeline.run_for(SimDuration::from_s(4));
    pipeline.finalize();
    RunResult result;
    result.anomalies = pipeline.mobiwatch().anomalies_flagged();
    result.incidents = pipeline.analyzer().incidents_analyzed();
    result.windows_scored = pipeline.mobiwatch().windows_scored();
    result.gaps_observed = pipeline.mobiwatch().gaps_observed();
    return result;
  }

  static std::shared_ptr<detect::AnomalyDetector>* detector_;
  static core::EvalConfig* eval_config_;
};

std::shared_ptr<detect::AnomalyDetector>* ChaosDetectTest::detector_ = nullptr;
core::EvalConfig* ChaosDetectTest::eval_config_ = nullptr;

TEST_F(ChaosDetectTest, BenignFalseIncidentsStayAtFaultFreeBaseline) {
  RunResult baseline = run_benign(oran::FaultPlan{});
  oran::FaultPlan faulty;
  faulty.drop_probability = 0.05;
  faulty.link_epochs = {{SimTime::from_ms(1000), SimDuration::from_ms(350)},
                        {SimTime::from_ms(2500), SimDuration::from_ms(450)}};
  faulty.seed = 0xF00D;
  RunResult faulted = run_benign(faulty);

  EXPECT_EQ(baseline.gaps_observed, 0u);
  EXPECT_GE(faulted.gaps_observed, 2u);
  // Graceful degradation, not hallucination: gap-spanning windows are
  // quarantined instead of scored, so the faults must not manufacture
  // incidents that the clean run did not have.
  EXPECT_LE(faulted.windows_scored, baseline.windows_scored);
  EXPECT_LE(faulted.anomalies, baseline.anomalies);
  EXPECT_LE(faulted.incidents, baseline.incidents);
}

TEST_F(ChaosDetectTest, AttackStillDetectedUnderFaults) {
  core::PipelineConfig config;
  config.analyzer.model = "ChatGPT-4o";
  config.fault_plan.drop_probability = 0.05;
  config.fault_plan.link_epochs = {
      {SimTime::from_ms(2000), SimDuration::from_ms(350)}};
  config.fault_plan.seed = 0xA77AC4;
  core::Pipeline pipeline(config);
  pipeline.install_detector(*detector_,
                            detect::FeatureEncoder(eval_config_->features));
  auto traffic_handle = schedule_benign(pipeline, 99);
  auto attack = attacks::make_bts_dos();
  attack->launch(pipeline.testbed(), SimTime::from_ms(250));
  pipeline.run_for(SimDuration::from_s(4));
  pipeline.finalize();

  EXPECT_GT(pipeline.mobiwatch().anomalies_flagged(), 0u);
  EXPECT_GE(pipeline.analyzer().incidents_analyzed(), 1u);
  EXPECT_EQ(pipeline.agent().reconnects(), 1u);
}

// --- Shard-count determinism ------------------------------------------------

void schedule_site_sessions(core::Pipeline& pipeline, std::size_t site,
                            int sessions);

/// Everything a seeded chaos run can externalize, captured byte-for-byte.
struct ChaosSnapshot {
  std::string prometheus;
  std::string json;
  std::string stats_text;
  std::string incidents;
};

TEST_F(ChaosDetectTest, ShardCountNeverChangesAnyExportedByte) {
  // The determinism oracle of the sharded RIC: under a fixed seed the
  // Prometheus export, the JSON snapshot (metrics + spans), the robustness
  // counters, and every anomaly report are byte-identical whether scoring
  // runs inline or fans out across 2 or 4 worker threads — chaos faults,
  // multi-site traffic, an attack, and gap quarantine all active.
  auto run = [&](std::size_t shards) {
    core::PipelineConfig config;
    config.testbed.num_cells = 2;
    config.ric_shards = shards;
    config.fault_plan.drop_probability = 0.05;
    config.fault_plan.reorder_probability = 0.10;
    config.fault_plan.link_epochs = {
        {SimTime::from_ms(1500), SimDuration::from_ms(300)}};
    config.fault_plan.seed = 0xD373C7;
    core::Pipeline pipeline(config);
    EXPECT_EQ(pipeline.ric_shards(), shards);
    ChaosSnapshot snap;
    // Every anomaly report the detection xApp publishes, in publish order.
    pipeline.ric().router().subscribe(
        oran::kMtAnomalyWindow, [&snap](const oran::RoutedMessage& m) {
          snap.incidents.append(m.payload.begin(), m.payload.end());
        });
    pipeline.install_detector(
        *detector_, detect::FeatureEncoder(eval_config_->features));
    auto traffic_handle = schedule_benign(pipeline, 99, 10);
    schedule_site_sessions(pipeline, 1, 6);
    auto attack = attacks::make_bts_dos();
    attack->launch(pipeline.testbed(), SimTime::from_ms(300));
    pipeline.run_for(SimDuration::from_s(4));
    pipeline.finalize();
    snap.prometheus = obs::render_prometheus(pipeline.metrics());
    snap.json = obs::render_json(pipeline.metrics(), &pipeline.tracer());
    snap.stats_text = pipeline.stats().to_text();
    return snap;
  };

  ChaosSnapshot reference = run(1);
  EXPECT_FALSE(reference.incidents.empty()) << "attack must produce reports";
  for (std::size_t shards : {2u, 4u}) {
    SCOPED_TRACE(std::to_string(shards) + " shards");
    ChaosSnapshot sharded = run(shards);
    EXPECT_EQ(sharded.prometheus, reference.prometheus);
    EXPECT_EQ(sharded.json, reference.json);
    EXPECT_EQ(sharded.stats_text, reference.stats_text);
    EXPECT_EQ(sharded.incidents, reference.incidents);
  }
}

TEST_F(ChaosDetectTest, TransportBackendNeverChangesAnyExportedByte) {
  // The determinism oracle of the transport layer: under a fixed seed the
  // Prometheus export, the JSON snapshot, the robustness counters, and
  // every anomaly report are byte-identical whether E2AP frames cross an
  // in-process queue, a real Unix-domain socket, or a shared-memory ring —
  // at any shard count, in either pump mode, with chaos faults, multi-site
  // traffic, an attack, and gap quarantine all active. All backends share
  // the frame codec and the logical capacity accounting, and the
  // event-driven pump only changes HOW bytes cross a channel (batched
  // syscalls), never WHEN frames deliver — so no counter can diverge.
  auto run = [&](const std::string& backend, std::size_t shards,
                 const std::string& pump) {
    core::PipelineConfig config;
    config.testbed.num_cells = 2;
    config.ric_shards = shards;
    config.e2_transport = backend;
    config.e2_pump = pump;
    config.fault_plan.drop_probability = 0.05;
    config.fault_plan.reorder_probability = 0.10;
    config.fault_plan.link_epochs = {
        {SimTime::from_ms(1500), SimDuration::from_ms(300)}};
    config.fault_plan.seed = 0xD373C7;
    core::Pipeline pipeline(config);
    if (!backend.empty()) {
      auto expected = transport::parse_backend(backend);
      EXPECT_TRUE(expected.ok());
      if (expected.ok()) {
        EXPECT_EQ(pipeline.e2_backend(), expected.value());
      }
    }
    if (pump == "epoll") {
      EXPECT_EQ(pipeline.e2_pump_mode(), transport::PumpMode::kEpoll);
      EXPECT_NE(pipeline.e2_pump(), nullptr);
    }
    ChaosSnapshot snap;
    pipeline.ric().router().subscribe(
        oran::kMtAnomalyWindow, [&snap](const oran::RoutedMessage& m) {
          snap.incidents.append(m.payload.begin(), m.payload.end());
        });
    pipeline.install_detector(
        *detector_, detect::FeatureEncoder(eval_config_->features));
    auto traffic_handle = schedule_benign(pipeline, 99, 10);
    schedule_site_sessions(pipeline, 1, 6);
    auto attack = attacks::make_bts_dos();
    attack->launch(pipeline.testbed(), SimTime::from_ms(300));
    pipeline.run_for(SimDuration::from_s(4));
    pipeline.finalize();
    snap.prometheus = obs::render_prometheus(pipeline.metrics());
    snap.json = obs::render_json(pipeline.metrics(), &pipeline.tracer());
    snap.stats_text = pipeline.stats().to_text();
    return snap;
  };

  ChaosSnapshot reference = run("inproc", 1, "polled");
  EXPECT_FALSE(reference.incidents.empty()) << "attack must produce reports";
  struct Sweep {
    const char* backend;
    std::size_t shards;
    const char* pump;
  };
  for (Sweep sweep : {// Historical polled mode across backends and shards.
                      Sweep{"uds", 1, "polled"}, Sweep{"shm", 1, "polled"},
                      Sweep{"uds", 2, "polled"}, Sweep{"shm", 4, "polled"},
                      // Event-driven pump: same bytes on every backend at
                      // every shard count.
                      Sweep{"inproc", 1, "epoll"}, Sweep{"uds", 1, "epoll"},
                      Sweep{"shm", 1, "epoll"}, Sweep{"uds", 2, "epoll"},
                      Sweep{"shm", 4, "epoll"}}) {
    SCOPED_TRACE(std::string(sweep.backend) + " backend, " +
                 std::to_string(sweep.shards) + " shards, " + sweep.pump +
                 " pump");
    ChaosSnapshot other = run(sweep.backend, sweep.shards, sweep.pump);
    EXPECT_EQ(other.prometheus, reference.prometheus);
    EXPECT_EQ(other.json, reference.json);
    EXPECT_EQ(other.stats_text, reference.stats_text);
    EXPECT_EQ(other.incidents, reference.incidents);
  }

  // The environment defaults reach the same code paths: an empty config
  // with XSEC_E2_TRANSPORT=shm and XSEC_E2_PUMP=epoll must match the
  // reference byte for byte too. Preserve any sweep-provided values so
  // later tests in this binary still see them (scripts/sanitize.sh exports
  // them across a whole ctest run).
  const char* prior_env = getenv("XSEC_E2_TRANSPORT");
  std::string saved_env = prior_env ? prior_env : "";
  const char* prior_pump = getenv("XSEC_E2_PUMP");
  std::string saved_pump = prior_pump ? prior_pump : "";
  setenv("XSEC_E2_TRANSPORT", "shm", 1);
  setenv("XSEC_E2_PUMP", "epoll", 1);
  ChaosSnapshot from_env = run("", 1, "");
  if (prior_env) {
    setenv("XSEC_E2_TRANSPORT", saved_env.c_str(), 1);
  } else {
    unsetenv("XSEC_E2_TRANSPORT");
  }
  if (prior_pump) {
    setenv("XSEC_E2_PUMP", saved_pump.c_str(), 1);
  } else {
    unsetenv("XSEC_E2_PUMP");
  }
  EXPECT_EQ(from_env.prometheus, reference.prometheus);
  EXPECT_EQ(from_env.json, reference.json);
  EXPECT_EQ(from_env.stats_text, reference.stats_text);
  EXPECT_EQ(from_env.incidents, reference.incidents);
}

TEST(ChaosShards, EnvironmentVariableSelectsShardCount) {
  setenv("XSEC_RIC_SHARDS", "3", 1);
  core::Pipeline from_env{core::PipelineConfig{}};
  EXPECT_EQ(from_env.ric_shards(), 3u);
  // An explicit config beats the environment.
  core::PipelineConfig config;
  config.ric_shards = 2;
  core::Pipeline from_config(config);
  EXPECT_EQ(from_config.ric_shards(), 2u);
  unsetenv("XSEC_RIC_SHARDS");
  core::Pipeline fallback{core::PipelineConfig{}};
  EXPECT_EQ(fallback.ric_shards(), 1u);
  // Malformed values fall back to 1 instead of wrapping ("-1" would hit
  // the 64-shard clamp via ULONG_MAX) or parsing a prefix ("4x").
  for (const char* bad : {"-1", "4x", "0", "", "shards"}) {
    SCOPED_TRACE(std::string("XSEC_RIC_SHARDS=") + bad);
    setenv("XSEC_RIC_SHARDS", bad, 1);
    core::Pipeline rejected{core::PipelineConfig{}};
    EXPECT_EQ(rejected.ric_shards(), 1u);
  }
  unsetenv("XSEC_RIC_SHARDS");
}

// --- Correlated multi-site outage -------------------------------------------

/// Staggers UE sessions onto one specific cell so every site has telemetry
/// flowing before, during, and after the outage window.
void schedule_site_sessions(core::Pipeline& pipeline, std::size_t site,
                            int sessions) {
  for (int s = 0; s < sessions; ++s) {
    ran::UeConfig ue;
    ue.supi = ran::Supi{ran::Plmn::test_network(),
                        9000 + site * 100 + static_cast<std::uint64_t>(s)};
    ue.seed = site * 1000 + static_cast<std::uint64_t>(s) + 1;
    pipeline.testbed().add_ue(
        ue, SimTime::from_ms(5 + static_cast<std::int64_t>(s) * 250), site);
  }
}

TEST(ChaosMultiCell, CorrelatedOutageKeepsSiteStreamsAndGapMetricsIsolated) {
  core::PipelineConfig config;
  config.testbed.num_cells = 3;
  config.fault_plan = lossy_plan(0x517E5);
  // Loss heavy enough that the node's two streams (MobiWatch + the audit
  // xApp) regularly have missing runs outstanding in the same
  // reverse-path round, which is what NACK batching coalesces.
  config.fault_plan.drop_probability = 0.30;
  // One shared epoch list = a correlated outage: every site's backhaul goes
  // down together (per-site loss/dup/reorder streams stay independent,
  // seeded seed + site).
  config.fault_plan.link_epochs = {
      {SimTime::from_ms(1400), SimDuration::from_ms(400)}};
  core::Pipeline pipeline(config);
  ASSERT_EQ(pipeline.agent_count(), 3u);
  auto* audit = static_cast<SequenceAuditXapp*>(
      pipeline.ric().register_xapp(std::make_unique<SequenceAuditXapp>()));
  for (std::size_t site = 0; site < 3; ++site)
    schedule_site_sessions(pipeline, site, 12);

  pipeline.run_for(SimDuration::from_s(4.5));
  pipeline.finalize();

  core::PipelineStats stats = pipeline.stats();
  // The one epoch took down all three sites, and each came back.
  EXPECT_EQ(stats.link_down_events, 3u);
  for (std::size_t site = 0; site < 3; ++site) {
    SCOPED_TRACE("site " + std::to_string(site));
    EXPECT_EQ(pipeline.agent(site).reconnects(), 1u);
    EXPECT_TRUE(pipeline.agent(site).subscribed());
  }

  // Stream isolation: every site's streams pass the delivery contract
  // independently — loss on one site never corrupts another's sequence
  // space.
  std::set<std::uint64_t> audited_nodes;
  for (const auto& [id, log] : audit->logs()) {
    SCOPED_TRACE("node " + std::to_string(id.first) + " instance " +
                 std::to_string(id.second));
    audit_stream(log);
    if (!log.delivered.empty()) audited_nodes.insert(id.first);
  }
  EXPECT_EQ(audited_nodes.size(), 3u)
      << "all three sites must carry telemetry";

  // Per-site gap metrics: each site records its own gaps in the shared
  // registry, and the per-site counters partition the global totals
  // exactly. (The RIC's per-node counter only exists once that node has a
  // DECLARED gap — recovery-path gaps live in MobiWatch's counter — so a
  // missing counter reads as zero.)
  auto counter_or_zero = [&pipeline](const std::string& name) {
    const obs::Counter* c = pipeline.metrics().find_counter(name);
    return c ? c->value() : 0u;
  };
  std::uint64_t ric_gap_sum = 0;
  std::uint64_t mobiwatch_gap_sum = 0;
  for (std::size_t site = 0; site < 3; ++site) {
    SCOPED_TRACE("site " + std::to_string(site));
    std::string node = std::to_string(pipeline.node_id(site));
    ric_gap_sum += counter_or_zero("ric.node" + node + ".gaps_detected");
    std::uint64_t mw_gaps =
        counter_or_zero("mobiwatch.node" + node + ".gaps");
    EXPECT_GT(mw_gaps, 0u) << "every site saw the correlated outage";
    mobiwatch_gap_sum += mw_gaps;
  }
  EXPECT_EQ(ric_gap_sum, stats.gaps_detected);
  EXPECT_EQ(mobiwatch_gap_sum, stats.gaps_observed);

  // With two streams per node (MobiWatch + the audit xApp) and a lossy
  // plan, reverse-path rounds coalesce multiple sequence ranges into one
  // NACK PDU; the batching counter proves the path fired.
  EXPECT_GT(stats.nacks_sent, 0u);
  EXPECT_GT(stats.nacks_batched, 0u);
  EXPECT_EQ(pipeline.metrics().find_counter("e2.nack_batched")->value(),
            stats.nacks_batched);
}

/// Always-failing backend standing in for an unreachable LLM endpoint.
class DeadLlmClient : public llm::LlmClient {
 public:
  Result<llm::LlmResponse> query(const llm::LlmRequest&) override {
    return Error::make("network", "endpoint unreachable");
  }
};

TEST_F(ChaosDetectTest, LlmOutageDefersIncidentsInsteadOfLosingThem) {
  core::PipelineConfig config;
  config.llm_client = std::make_shared<DeadLlmClient>();
  config.llm_resilience.max_attempts = 2;
  config.llm_resilience.breaker_threshold = 2;
  core::Pipeline pipeline(config);
  pipeline.install_detector(*detector_,
                            detect::FeatureEncoder(eval_config_->features));
  auto traffic_handle = schedule_benign(pipeline, 99);
  auto attack = attacks::make_bts_dos();
  attack->launch(pipeline.testbed(), SimTime::from_ms(250));
  pipeline.run_for(SimDuration::from_s(4));
  EXPECT_GT(pipeline.mobiwatch().anomalies_flagged(), 0u);
  pipeline.finalize();

  // No incident was analyzed (the backend is dead) and none vanished
  // silently: every flagged window was deferred and ultimately accounted
  // as dropped, with the circuit breaker limiting wasted queries.
  EXPECT_EQ(pipeline.analyzer().incidents_analyzed(), 0u);
  EXPECT_GT(pipeline.analyzer().llm_deferrals(), 0u);
  EXPECT_GT(pipeline.analyzer().incidents_dropped(), 0u);
  EXPECT_GE(pipeline.llm_client().breaker_trips(), 1u);
  EXPECT_GT(pipeline.llm_client().queries_rejected(), 0u);
}

}  // namespace
}  // namespace xsec
