// Tests for the extension modules built from the paper's discussion
// section: the supervised attack classifier (§4.1), the ensemble detector,
// the SMO training rApp, spec retrieval (RAG, §5), and the TMSI blocklist
// remediation path.
#include <gtest/gtest.h>

#include "attacks/attack.hpp"
#include "core/datasets.hpp"
#include "core/smo.hpp"
#include "detect/classifier.hpp"
#include "detect/ensemble.hpp"
#include "llm/retrieval.hpp"
#include "sim/traffic.hpp"

namespace xsec {
namespace {

namespace vocab = mobiflow::vocab;

// --- Event extraction ------------------------------------------------------

TEST(Events, ExtractsMaximalRuns) {
  std::vector<double> scores = {0.1, 2.0, 3.0, 0.1, 0.1, 0.1, 0.1, 5.0};
  auto events = detect::extract_events(scores, 1.0, /*merge_gap=*/2);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].first_window, 1u);
  EXPECT_EQ(events[0].last_window, 2u);
  EXPECT_EQ(events[0].errors, (std::vector<double>{2.0, 3.0}));
  EXPECT_EQ(events[1].first_window, 7u);
}

TEST(Events, MergeGapBridgesDips) {
  std::vector<double> scores = {2.0, 0.5, 2.0};
  auto merged = detect::extract_events(scores, 1.0, /*merge_gap=*/1);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].errors.size(), 3u);  // dip included in the curve
  auto split = detect::extract_events(scores, 1.0, /*merge_gap=*/0);
  EXPECT_EQ(split.size(), 2u);
}

TEST(Events, EmptyAndAllBenign) {
  EXPECT_TRUE(detect::extract_events({}, 1.0).empty());
  EXPECT_TRUE(detect::extract_events({0.1, 0.2}, 1.0).empty());
}

TEST(Events, PatternHasFixedDimensionAndScaleInvariantShape) {
  detect::AnomalyEvent short_event{0, 1, {2.0, 4.0}};
  detect::AnomalyEvent long_event{0, 7, {2, 3, 4, 5, 5, 4, 3, 2}};
  auto a = detect::event_pattern(short_event, 1.0);
  auto b = detect::event_pattern(long_event, 1.0);
  EXPECT_EQ(a.size(), detect::event_pattern_dim());
  EXPECT_EQ(b.size(), detect::event_pattern_dim());
}

// --- AttackClassifier -------------------------------------------------------

TEST(Classifier, SeparatesSyntheticPatternFamilies) {
  // Three synthetic "attack types" with distinct error-curve shapes:
  // flat-high, rising spike, short burst.
  Rng rng(5);
  std::vector<std::vector<float>> patterns;
  std::vector<std::size_t> labels;
  auto make_event = [&rng](int kind) {
    detect::AnomalyEvent event;
    std::size_t n = 6 + rng.uniform_u64(0, 6);
    for (std::size_t i = 0; i < n; ++i) {
      double x = static_cast<double>(i) / static_cast<double>(n - 1);
      double value = 0;
      if (kind == 0) value = 5.0 + rng.normal(0, 0.3);
      if (kind == 1) value = 1.5 + 8.0 * x + rng.normal(0, 0.3);
      if (kind == 2) value = (i < 2 ? 12.0 : 1.2) + rng.normal(0, 0.3);
      event.errors.push_back(std::max(1.1, value));
    }
    return event;
  };
  for (int kind = 0; kind < 3; ++kind)
    for (int i = 0; i < 30; ++i) {
      patterns.push_back(detect::event_pattern(make_event(kind), 1.0));
      labels.push_back(static_cast<std::size_t>(kind));
    }

  detect::AttackClassifier classifier({"flat", "rising", "burst"},
                                      detect::event_pattern_dim());
  double loss = classifier.fit(patterns, labels);
  EXPECT_LT(loss, 0.2);

  // Held-out samples from each family classify correctly.
  int correct = 0;
  for (int kind = 0; kind < 3; ++kind)
    for (int i = 0; i < 10; ++i)
      if (classifier.predict(detect::event_pattern(make_event(kind), 1.0)) ==
          static_cast<std::size_t>(kind))
        ++correct;
  EXPECT_GE(correct, 27);  // >= 90%
}

TEST(Classifier, ProbabilitiesSumToOne) {
  detect::AttackClassifier classifier({"a", "b"},
                                      detect::event_pattern_dim());
  detect::AnomalyEvent event{0, 2, {2.0, 3.0, 2.5}};
  auto probs = classifier.probabilities(detect::event_pattern(event, 1.0));
  ASSERT_EQ(probs.size(), 2u);
  EXPECT_NEAR(probs[0] + probs[1], 1.0, 1e-6);
}

// --- EnsembleDetector -------------------------------------------------------

TEST(Ensemble, GroupsCoverAllFeatures) {
  detect::FeatureEncoder encoder;
  auto groups = detect::groups_by_category(encoder);
  ASSERT_EQ(groups.size(), 4u);
  std::size_t total = 0;
  for (const auto& group : groups) total += group.columns.size();
  EXPECT_EQ(total, encoder.dim());
}

TEST(Ensemble, DetectsInjectedIdentifierAnomaly) {
  detect::FeatureEncoder encoder;
  // Benign repeating flow.
  mobiflow::Trace trace;
  std::int64_t t = 0;
  for (int s = 0; s < 40; ++s) {
    for (const char* msg : {"RRCSetupRequest", "RRCSetup", "RRCSetupComplete",
                            "RegistrationRequest", "AuthenticationRequest",
                            "AuthenticationResponse", "RegistrationAccept",
                            "RRCRelease"}) {
      mobiflow::Record r;
      r.msg = vocab::msg_or_unknown(msg);
      r.protocol = vocab::protocol_of(r.msg);
      r.direction = vocab::Direction::kUl;
      r.rnti = static_cast<std::uint16_t>(100 + s);
      r.ue_id = static_cast<std::uint64_t>(s + 1);
      r.timestamp_us = (t += 2500);
      trace.add(r);
    }
  }
  auto dataset = detect::WindowDataset::from_trace(trace, encoder, 5);

  detect::EnsembleConfig config;
  config.detector.epochs = 12;
  detect::EnsembleDetector detector(5, encoder.dim(),
                                    detect::groups_by_category(encoder),
                                    config);
  detector.fit(dataset);
  EXPECT_EQ(detector.member_count(), 4u);
  EXPECT_GT(detector.threshold(), 0.0);

  // A window with a plaintext-SUPI record must alarm, and the identifier
  // member should dominate.
  std::vector<std::vector<float>> rows;
  for (std::size_t i = 0; i < 5; ++i) {
    const float* p = dataset.features().row(i);
    rows.emplace_back(p, p + encoder.dim());
  }
  double benign_score = detector.score_window(rows);
  mobiflow::Record evil;
  evil.protocol = vocab::Protocol::kNas;
  evil.msg = vocab::MsgType::kRegistrationRequest;
  evil.direction = vocab::Direction::kUl;
  evil.rnti = 0x666;
  evil.supi_plain = "imsi-001019999999999";
  evil.timestamp_us = t + 1000;
  detect::EncodeContext ctx;
  rows.back() = encoder.encode(evil, ctx);
  double evil_score = detector.score_window(rows);
  EXPECT_GT(evil_score, benign_score * 3);
  EXPECT_GT(evil_score, detector.threshold());
  EXPECT_EQ(detector.member_name(detector.last_dominant_member()),
            "identifiers");
}

// --- SpecRetriever ----------------------------------------------------------

TEST(Retrieval, TokensKeepSpecNumbers) {
  auto tokens = llm::retrieval_tokens("TS 38.331 §5.3.3, the UE sends...");
  EXPECT_NE(std::find(tokens.begin(), tokens.end(), "38.331"), tokens.end());
  EXPECT_NE(std::find(tokens.begin(), tokens.end(), "sends"), tokens.end());
  // Trailing periods stripped, single chars dropped.
  for (const auto& token : tokens) {
    EXPECT_GT(token.size(), 1u);
    EXPECT_NE(token.back(), '.');
  }
}

TEST(Retrieval, TopHitMatchesTopic) {
  llm::SpecRetriever retriever;
  struct Case {
    const char* query;
    const char* expected_ref_fragment;
  } cases[] = {
      {"null cipher NEA0 NIA0 bidding down security capabilities",
       "33.501 §5.3.2"},
      {"SUCI null scheme plaintext MSIN identity concealment", "33.501 §6.12"},
      {"S-TMSI temporary identity replay two contexts", "23.003"},
      {"RRCSetupRequest T300 establishment cause", "38.331 §5.3.3"},
      {"AUTN RES authentication vector MAC failure", "33.501 §6.1.3"},
  };
  for (const auto& test_case : cases) {
    auto hits = retriever.query(test_case.query, 1);
    ASSERT_FALSE(hits.empty()) << test_case.query;
    EXPECT_NE(hits[0].passage->ref.find(test_case.expected_ref_fragment),
              std::string::npos)
        << test_case.query << " -> " << hits[0].passage->ref;
  }
}

TEST(Retrieval, AugmentAppendsSpecContext) {
  llm::SpecRetriever retriever;
  std::string augmented =
      retriever.augment_prompt("analyze this SecurityModeCommand NEA0", 2);
  EXPECT_NE(augmented.find("<SPEC_CONTEXT>"), std::string::npos);
  EXPECT_NE(augmented.find("33.501"), std::string::npos);
}

TEST(Retrieval, IrrelevantQueryReturnsNothing) {
  llm::SpecRetriever retriever;
  EXPECT_TRUE(retriever.query("zzzz qqqq xxxx", 3).empty());
}

// --- TMSI blocklist ---------------------------------------------------------

TEST(TmsiBlocklist, BlocksReplayedSetupButNotOthers) {
  sim::Testbed testbed;
  std::uint64_t victim_part1 = 0x123456789ULL & ((1ULL << 39) - 1);
  testbed.gnb().block_tmsi(victim_part1);
  EXPECT_EQ(testbed.gnb().blocked_tmsi_count(), 1u);

  // A UE presenting the blocked identifier is rejected...
  ran::UeConfig rogue;
  rogue.supi = ran::Supi{ran::Plmn::test_network(), 1};
  rogue.stored_guti =
      ran::Guti{ran::Plmn::test_network(), 1,
                ran::STmsi::from_packed(victim_part1)};
  rogue.max_reject_retries = 0;
  testbed.add_ue(rogue, SimTime::from_ms(1));
  // ...while a normal UE attaches fine.
  ran::UeConfig normal;
  normal.supi = ran::Supi{ran::Plmn::test_network(), 2};
  normal.seed = 2;
  testbed.add_ue(normal, SimTime::from_ms(5));

  testbed.run_for(SimDuration::from_s(2));
  EXPECT_GE(testbed.gnb().blocked_setup_attempts(), 1u);
  EXPECT_EQ(testbed.amf().registered_count(), 1u);

  testbed.gnb().unblock_tmsi(victim_part1);
  EXPECT_EQ(testbed.gnb().blocked_tmsi_count(), 0u);
}

// --- Record KV bytes --------------------------------------------------------

TEST(RecordKvBytes, RoundTrip) {
  mobiflow::Record r;
  r.protocol = vocab::Protocol::kNas;
  r.msg = vocab::MsgType::kRegistrationRequest;
  r.direction = vocab::Direction::kUl;
  r.rnti = 0x77;
  r.s_tmsi = 42;
  r.supi_plain = "imsi-001010000000042";
  auto back = mobiflow::Record::from_kv_bytes(r.to_kv_bytes());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), r);
  EXPECT_FALSE(mobiflow::Record::from_kv_bytes({0xFF}).ok());
}

// --- A1 policies -------------------------------------------------------------

TEST(A1, PolicyContentAccessors) {
  oran::A1Policy policy;
  policy.content = {{"threshold_scale", "1.5"},
                    {"auto_remediate", "true"},
                    {"bad_number", "abc"}};
  EXPECT_DOUBLE_EQ(policy.get_double("threshold_scale", 1.0), 1.5);
  EXPECT_DOUBLE_EQ(policy.get_double("missing", 2.0), 2.0);
  EXPECT_DOUBLE_EQ(policy.get_double("bad_number", 3.0), 3.0);
  EXPECT_TRUE(policy.get_bool("auto_remediate", false));
  EXPECT_FALSE(policy.get_bool("missing", false));
  EXPECT_EQ(policy.get("threshold_scale"), "1.5");
}

TEST(A1, DetectionTuningScalesMobiWatchThreshold) {
  core::Pipeline pipeline;
  // Train a tiny detector so a threshold exists.
  core::ScenarioConfig benign_config;
  benign_config.traffic.num_sessions = 10;
  benign_config.traffic.seed = 61;
  benign_config.run_time = SimDuration::from_s(3);
  mobiflow::Trace benign = core::collect_benign(benign_config);
  core::EvalConfig eval;
  eval.detector.epochs = 3;
  auto detector =
      core::train_detector(core::ModelKind::kAutoencoder, benign, eval);
  double base = detector->threshold();
  pipeline.install_detector(detector,
                            detect::FeatureEncoder(eval.features));

  oran::A1Policy policy;
  policy.policy_type = oran::kPolicyDetectionTuning;
  policy.policy_id = "tune-1";
  policy.content = {{"threshold_scale", "2.0"}};
  EXPECT_EQ(pipeline.ric().apply_policy("mobiwatch", policy),
            oran::PolicyStatus::kEnforced);
  EXPECT_NEAR(detector->threshold(), base * 2.0, base * 1e-6);

  // Wrong policy type is reported unsupported; unknown xApp not enforced.
  oran::A1Policy wrong;
  wrong.policy_type = oran::kPolicyResponseControl;
  EXPECT_EQ(pipeline.ric().apply_policy("mobiwatch", wrong),
            oran::PolicyStatus::kUnsupported);
  EXPECT_EQ(pipeline.ric().apply_policy("nope", policy),
            oran::PolicyStatus::kNotEnforced);
}

TEST(A1, ResponseControlTogglesAnalyzer) {
  core::Pipeline pipeline;
  oran::A1Policy policy;
  policy.policy_type = oran::kPolicyResponseControl;
  policy.content = {{"auto_remediate", "on"}, {"use_rag", "true"}};
  EXPECT_EQ(pipeline.ric().apply_policy("llm-analyzer", policy),
            oran::PolicyStatus::kEnforced);
  oran::A1Policy invalid_scale;
  invalid_scale.policy_type = oran::kPolicyDetectionTuning;
  invalid_scale.content = {{"threshold_scale", "-1"}};
  EXPECT_EQ(pipeline.ric().apply_policy("mobiwatch", invalid_scale),
            oran::PolicyStatus::kNotEnforced);
}

TEST(A1, IncidentCloseGapAdjustable) {
  core::Pipeline pipeline;
  oran::A1Policy policy;
  policy.policy_type = oran::kPolicyDetectionTuning;
  policy.content = {{"incident_close_gap", "12"}};
  EXPECT_EQ(pipeline.ric().apply_policy("mobiwatch", policy),
            oran::PolicyStatus::kEnforced);
  EXPECT_EQ(pipeline.mobiwatch().config().incident_close_gap, 12u);
}

// --- Expert robustness to benign paging --------------------------------------

TEST(ExpertPaging, BenignPagingProducesNoEvidence) {
  mobiflow::Trace trace;
  auto add = [&trace](const char* proto, const char* msg, const char* dir,
                      std::uint64_t ue, std::int64_t t,
                      std::uint64_t tmsi = 0) {
    mobiflow::Record r;
    r.protocol = vocab::protocol_or_unknown(proto);
    r.msg = vocab::msg_or_unknown(msg);
    r.direction = std::string_view(dir) == "DL" ? vocab::Direction::kDl
                                                : vocab::Direction::kUl;
    r.ue_id = ue;
    r.rnti = static_cast<std::uint16_t>(0x100 + ue);
    r.timestamp_us = t;
    r.s_tmsi = tmsi;
    trace.add(r);
  };
  // Paging precedes an mt-Access session that presents the paged TMSI.
  add("RRC", "Paging", "DL", 0, 1000, 0xABCD);
  add("RRC", "RRCSetupRequest", "UL", 1, 21000, 0xABCD);
  add("RRC", "RRCSetup", "DL", 1, 23000, 0xABCD);
  add("RRC", "RRCSetupComplete", "UL", 1, 25000, 0xABCD);
  add("NAS", "RegistrationRequest", "UL", 1, 25000, 0xABCD);
  add("NAS", "AuthenticationRequest", "DL", 1, 27000, 0xABCD);
  add("NAS", "AuthenticationResponse", "UL", 1, 29000, 0xABCD);
  add("NAS", "RegistrationAccept", "DL", 1, 31000, 0xABCD);
  add("RRC", "RRCRelease", "DL", 1, 60000, 0xABCD);

  auto stats = llm::extract_stats(trace);
  EXPECT_TRUE(stats.replayed_tmsis.empty());  // broadcast is not ownership
  EXPECT_TRUE(llm::extract_evidence(stats).empty());
}

// --- Pipeline finalize --------------------------------------------------------

TEST(PipelineFinalize, IdempotentAndSafeWithoutDetector) {
  core::Pipeline pipeline;
  pipeline.finalize();
  pipeline.finalize();
  EXPECT_EQ(pipeline.mobiwatch().anomalies_flagged(), 0u);
}

// --- SMO training rApp ------------------------------------------------------

TEST(Smo, DoesNotRetrainBelowMinRecords) {
  core::Pipeline pipeline;
  core::TrainingRAppConfig config;
  config.period = SimDuration::from_s(1);
  config.min_records = 100000;  // unreachable
  core::TrainingRApp rapp(&pipeline, config);
  rapp.start();
  sim::TrafficConfig traffic;
  traffic.num_sessions = 4;
  traffic.seed = 9;
  sim::BenignTrafficGenerator generator(&pipeline.testbed(), traffic);
  generator.schedule_all();
  pipeline.run_for(SimDuration::from_s(3));
  EXPECT_EQ(rapp.retrains_completed(), 0u);
  EXPECT_GT(rapp.records_harvested(), 0u);  // it did look
  EXPECT_FALSE(pipeline.mobiwatch().has_detector());
}

TEST(Smo, RetrainsFromSdlTelemetryAndDeploys) {
  core::PipelineConfig pipeline_config;
  core::Pipeline pipeline(pipeline_config);

  core::TrainingRAppConfig smo_config;
  smo_config.period = SimDuration::from_s(2);
  smo_config.min_records = 150;
  smo_config.eval.detector.epochs = 4;  // keep the test fast
  core::TrainingRApp rapp(&pipeline, smo_config);
  rapp.start();

  EXPECT_FALSE(pipeline.mobiwatch().has_detector());

  // Traffic spans past the rApp's first training tick so the deployed
  // model has live windows to score.
  sim::TrafficConfig traffic;
  traffic.num_sessions = 25;
  traffic.arrival_mean = SimDuration::from_ms(180);
  traffic.seed = 41;
  sim::BenignTrafficGenerator generator(&pipeline.testbed(), traffic);
  generator.schedule_all();
  pipeline.run_for(SimDuration::from_s(7));

  // The rApp harvested telemetry, trained, and hot-deployed a model.
  EXPECT_GE(rapp.retrains_completed(), 1u);
  EXPECT_GE(rapp.records_harvested(), smo_config.min_records);
  EXPECT_GT(rapp.deployed_threshold(), 0.0);
  EXPECT_TRUE(pipeline.mobiwatch().has_detector());
  // The deployed model scores incoming windows from then on.
  EXPECT_GT(pipeline.mobiwatch().windows_scored(), 0u);
}

}  // namespace
}  // namespace xsec
