// Sharded RIC scale-out seam: stable shard hashing, the SPSC ring +
// compile-time tagged dispatch, the shard executor's barrier protocol,
// detector inference replicas, and the per-source window engine's
// determinism oracle — same input, same outputs, at any shard count.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/hash.hpp"
#include "detect/features.hpp"
#include "detect/scorer.hpp"
#include "detect/source_windows.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "oran/shard_dispatch.hpp"
#include "oran/spsc_ring.hpp"

namespace xsec {
namespace {

namespace vocab = mobiflow::vocab;

// --- Stable shard hashing -------------------------------------------------

TEST(ShardHash, ShardOfIsStableAndInRange) {
  for (std::size_t shards : {1u, 2u, 3u, 4u, 8u}) {
    for (std::uint64_t key = 0; key < 1000; ++key) {
      std::size_t s = shard_of(key, shards);
      EXPECT_LT(s, shards);
      EXPECT_EQ(s, shard_of(key, shards)) << "placement must be pure";
    }
  }
}

TEST(ShardHash, SingleShardAlwaysZero) {
  for (std::uint64_t key : {0ull, 1ull, 0xFFFFFFFFFFFFFFFFull})
    EXPECT_EQ(shard_of(key, 1), 0u);
}

TEST(ShardHash, ConsecutiveIdsSpreadAcrossShards) {
  // splitmix64 must not map consecutive node ids onto one shard.
  std::set<std::size_t> hit;
  for (std::uint64_t node = 1001; node < 1001 + 64; ++node)
    hit.insert(shard_of(node, 4));
  EXPECT_EQ(hit.size(), 4u);
}

TEST(ShardHash, CombineSeparatesNodeAndUe) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_NE(hash_combine(1, 0), hash_combine(0, 1));
  EXPECT_EQ(hash_combine(7, 9), hash_combine(7, 9));
}

// --- SpscRing -------------------------------------------------------------

struct IntSlot {
  int value = 0;
};

TEST(SpscRing, PushPopFifoAndCapacity) {
  oran::SpscRing<IntSlot> ring(3);  // rounds up to 4
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_TRUE(ring.empty());
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(IntSlot{i}));
  EXPECT_FALSE(ring.try_push(IntSlot{99})) << "full ring must reject";
  EXPECT_EQ(ring.size(), 4u);
  IntSlot out;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out.value, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, WrapsAroundManyTimes) {
  oran::SpscRing<IntSlot> ring(4);
  IntSlot out;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.try_push(IntSlot{i}));
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out.value, i);
  }
}

TEST(SpscRing, CrossThreadDeliversEverythingInOrder) {
  oran::SpscRing<IntSlot> ring(64);
  constexpr int kCount = 50000;
  std::thread producer([&] {
    for (int i = 0; i < kCount; ++i)
      while (!ring.try_push(IntSlot{i})) oran::cpu_relax();
  });
  IntSlot out;
  for (int i = 0; i < kCount; ++i) {
    while (!ring.try_pop(out)) oran::cpu_relax();
    ASSERT_EQ(out.value, i);
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

// --- TaggedSlot -----------------------------------------------------------

struct PingMsg : oran::HasTag<0x0001> {
  int payload = 0;
};
struct PongMsg : oran::HasTag<0x0002> {
  double payload = 0.0;
};

TEST(TaggedSlot, DispatchRecoversConcreteTypeAndPayload) {
  oran::TaggedSlot<PingMsg, PongMsg> slot;
  slot.store(PingMsg{{}, 42});
  EXPECT_EQ(slot.tag(), PingMsg::kTag);
  int pings = 0;
  double pongs = 0.0;
  auto handler = [&](const auto& m) {
    using M = std::decay_t<decltype(m)>;
    if constexpr (std::is_same_v<M, PingMsg>)
      pings = m.payload;
    else
      pongs = m.payload;
  };
  slot.dispatch(handler);
  EXPECT_EQ(pings, 42);
  slot.store(PongMsg{{}, 2.5});
  EXPECT_EQ(slot.tag(), PongMsg::kTag);
  slot.dispatch(handler);
  EXPECT_EQ(pongs, 2.5);
}

// --- ShardExecutor --------------------------------------------------------

struct AddMsg : oran::HasTag<0x0010> {
  std::uint64_t amount = 0;
};

struct SummingHandler {
  // One accumulator per shard; workers never share state.
  std::vector<std::uint64_t> sums;
  void on_message(std::size_t shard, const AddMsg& m) {
    sums[shard] += m.amount;
  }
};

using AddExecutor = oran::ShardExecutor<SummingHandler,
                                        oran::TaggedSlot<AddMsg>>;

TEST(ShardExecutor, BarrierMakesAllWorkerWritesVisible) {
  SummingHandler handler;
  handler.sums.assign(4, 0);
  AddExecutor::Config config;
  config.shards = 4;
  config.ring_capacity = 8;  // small ring: exercises the full-ring spin
  AddExecutor exec(config, &handler);
  ASSERT_TRUE(exec.threaded());
  std::vector<std::uint64_t> expected(4, 0);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    std::size_t shard = i % 4;
    exec.dispatch(shard, AddMsg{{}, i});
    expected[shard] += i;
  }
  exec.barrier();
  EXPECT_EQ(handler.sums, expected);
}

TEST(ShardExecutor, RepeatedDispatchBarrierRounds) {
  // Workers must sleep and wake correctly across many idle gaps.
  SummingHandler handler;
  handler.sums.assign(2, 0);
  AddExecutor::Config config;
  config.shards = 2;
  config.spin_limit = 10;  // force the condvar sleep path
  AddExecutor exec(config, &handler);
  for (int round = 0; round < 50; ++round) {
    exec.dispatch(0, AddMsg{{}, 1});
    exec.dispatch(1, AddMsg{{}, 2});
    exec.barrier();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  exec.barrier();
  EXPECT_EQ(handler.sums[0], 50u);
  EXPECT_EQ(handler.sums[1], 100u);
}

TEST(ShardExecutor, NoLostWakeupWhenWorkerSleepsImmediately) {
  // Regression for the store-buffer lost-wakeup race: with spin_limit=0
  // the worker heads for the condvar after every pop, so each dispatch
  // races the push/sleeping handshake. Without the seq_cst fences the
  // producer could skip notify while the worker slept on a non-empty
  // ring, and the barrier below would hang.
  SummingHandler handler;
  handler.sums.assign(1, 0);
  AddExecutor::Config config;
  config.shards = 1;
  config.spin_limit = 0;
  AddExecutor exec(config, &handler);
  std::uint64_t expected = 0;
  for (std::uint64_t i = 0; i < 20000; ++i) {
    exec.dispatch(0, AddMsg{{}, i});
    expected += i;
    if ((i & 63) == 0) exec.barrier();
  }
  exec.barrier();
  EXPECT_EQ(handler.sums[0], expected);
}

TEST(ShardExecutor, InlineModeRunsOnCaller) {
  SummingHandler handler;
  handler.sums.assign(3, 0);
  AddExecutor::Config config;
  config.shards = 3;
  config.threaded = false;
  AddExecutor exec(config, &handler);
  EXPECT_FALSE(exec.threaded());
  exec.dispatch(2, AddMsg{{}, 7});
  EXPECT_EQ(handler.sums[2], 7u) << "inline dispatch completes immediately";
  exec.barrier();  // must be a no-op, not a hang
}

// --- Detector inference replicas ------------------------------------------

using detect::AutoencoderDetector;
using detect::DetectorConfig;
using detect::EncodeContext;
using detect::FeatureEncoder;
using detect::LstmDetector;
using detect::WindowDataset;

mobiflow::Record make_record(const std::string& proto, const std::string& msg,
                             const std::string& dir, std::uint16_t rnti,
                             std::int64_t ts = 0, std::uint64_t ue = 1) {
  mobiflow::Record r;
  r.protocol = vocab::protocol_or_unknown(proto);
  r.msg = vocab::msg_or_unknown(msg);
  r.direction = dir == "DL" ? vocab::Direction::kDl : vocab::Direction::kUl;
  r.rnti = rnti;
  r.timestamp_us = ts;
  r.ue_id = ue;
  return r;
}

WindowDataset synthetic_benign(const FeatureEncoder& encoder,
                               std::size_t sessions = 30) {
  mobiflow::Trace trace;
  std::int64_t t = 0;
  for (std::size_t s = 0; s < sessions; ++s) {
    std::uint16_t rnti = static_cast<std::uint16_t>(100 + s);
    std::uint64_t ue = s + 1;
    auto push = [&](const char* proto, const char* msg, const char* dir) {
      trace.add(make_record(proto, msg, dir, rnti, t, ue));
      t += 2000 + static_cast<std::int64_t>(s % 3) * 500;
    };
    push("RRC", "RRCSetupRequest", "UL");
    push("RRC", "RRCSetup", "DL");
    push("RRC", "RRCSetupComplete", "UL");
    push("NAS", "RegistrationRequest", "UL");
    push("NAS", "AuthenticationRequest", "DL");
    push("NAS", "AuthenticationResponse", "UL");
    push("NAS", "RegistrationAccept", "DL");
    push("RRC", "RRCRelease", "DL");
  }
  return WindowDataset::from_trace(trace, encoder, 5);
}

template <typename Detector>
void expect_clone_bit_identical(Detector& original,
                                const WindowDataset& data) {
  auto clone = original.clone_for_inference();
  ASSERT_NE(clone, nullptr);
  EXPECT_EQ(clone->threshold(), original.threshold());
  const std::size_t needed = original.rows_needed(5);
  const std::size_t windows = data.features().rows() - needed + 1;
  ASSERT_GT(windows, 0u);
  for (std::size_t w = 0; w < windows; ++w) {
    double a = original.score_window(data.features().row(w), needed);
    double b = clone->score_window(data.features().row(w), needed);
    EXPECT_EQ(a, b) << "clone diverged at window " << w;
  }
}

TEST(InferenceReplica, AutoencoderCloneScoresBitIdentically) {
  FeatureEncoder encoder;
  auto benign = synthetic_benign(encoder);
  DetectorConfig config;
  config.epochs = 8;
  AutoencoderDetector detector(5, encoder.dim(), config);
  detector.fit(benign);
  expect_clone_bit_identical(detector, benign);
}

TEST(InferenceReplica, LstmCloneScoresBitIdentically) {
  FeatureEncoder encoder;
  auto benign = synthetic_benign(encoder, 20);
  DetectorConfig config;
  config.epochs = 6;
  LstmDetector detector(5, encoder.dim(), config);
  detector.fit(benign);
  expect_clone_bit_identical(detector, benign);
}

TEST(InferenceReplica, ClonesScoreConcurrentlyWithoutInterference) {
  // Four replicas scoring the same windows on four threads must each
  // reproduce the original's scores exactly — the property the shard
  // workers rely on.
  FeatureEncoder encoder;
  auto benign = synthetic_benign(encoder);
  DetectorConfig config;
  config.epochs = 8;
  AutoencoderDetector detector(5, encoder.dim(), config);
  detector.fit(benign);
  const std::size_t windows = benign.features().rows() - 4;
  std::vector<double> reference(windows);
  for (std::size_t w = 0; w < windows; ++w)
    reference[w] = detector.score_window(benign.features().row(w), 5);

  std::vector<std::unique_ptr<detect::AnomalyDetector>> clones;
  for (int i = 0; i < 4; ++i) clones.push_back(detector.clone_for_inference());
  std::vector<std::vector<double>> results(4,
                                           std::vector<double>(windows, 0.0));
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i)
    threads.emplace_back([&, i] {
      for (std::size_t w = 0; w < windows; ++w)
        results[i][w] = clones[i]->score_window(benign.features().row(w), 5);
    });
  for (auto& t : threads) t.join();
  for (int i = 0; i < 4; ++i) EXPECT_EQ(results[i], reference);
}

// --- SourceWindowEngine determinism ---------------------------------------

using detect::SourceKeyMode;
using detect::SourceWindowConfig;
using detect::SourceWindowEngine;

/// One flagged burst, digested for exact cross-run comparison.
struct IncidentDigest {
  std::uint64_t node = 0;
  std::uint64_t ue = 0;
  double peak = 0.0;
  Bytes window_wire;
  friend bool operator==(const IncidentDigest& a, const IncidentDigest& b) {
    return a.node == b.node && a.ue == b.ue && a.peak == b.peak &&
           a.window_wire == b.window_wire;
  }
};

struct EngineRun {
  std::vector<IncidentDigest> incidents;
  std::string prometheus;
  std::size_t sources = 0;
  bool parallel = false;
};

/// A deterministic interleaved multi-node stream: three sites' records
/// arrive round-robin, flushed every `flush_every` records (an indication
/// boundary), exactly as the RIC would deliver them.
EngineRun run_engine(std::shared_ptr<detect::AnomalyDetector> detector,
                     std::size_t shards, std::size_t flush_every = 7,
                     std::size_t records_per_node = 120) {
  obs::Observability obs;
  SourceWindowConfig config;
  config.shards = shards;
  EngineRun run;
  SourceWindowEngine engine(config);
  engine.set_obs_provider([&obs]() { return &obs; });
  engine.set_incident_sink([&run](SourceWindowEngine::Incident incident) {
    run.incidents.push_back({incident.source.node_id, incident.source.ue_id,
                             incident.peak_score,
                             incident.window.serialize()});
  });
  engine.install(std::move(detector), FeatureEncoder());

  const char* msgs[] = {"RRCSetupRequest", "RRCSetup", "RRCSetupComplete",
                        "RegistrationRequest", "AuthenticationRequest",
                        "AuthenticationResponse", "RegistrationAccept",
                        "RRCRelease"};
  std::size_t since_flush = 0;
  for (std::size_t i = 0; i < records_per_node; ++i) {
    for (std::uint64_t node = 1001; node <= 1003; ++node) {
      const char* msg = msgs[(i + node) % 8];
      const char* proto = (i + node) % 8 < 3 ? "RRC" : "NAS";
      engine.ingest(node,
                    make_record(proto, msg, i % 2 ? "UL" : "DL",
                                static_cast<std::uint16_t>(100 + i % 9),
                                static_cast<std::int64_t>(i) * 1500,
                                1 + i % 5));
      if (++since_flush == flush_every) {
        engine.flush();
        since_flush = 0;
      }
    }
  }
  engine.close_open_incidents();
  run.prometheus = obs::render_prometheus(obs.metrics);
  run.sources = engine.source_count();
  run.parallel = engine.parallel();
  return run;
}

std::shared_ptr<detect::AnomalyDetector> train_shared_detector() {
  FeatureEncoder encoder;
  auto benign = synthetic_benign(encoder);
  DetectorConfig config;
  config.epochs = 8;
  auto detector =
      std::make_shared<AutoencoderDetector>(5, encoder.dim(), config);
  detector->fit(benign);
  // Force every scored window over threshold so each source closes exactly
  // one incident whose peak is the bitwise max over all its scores.
  detector->set_threshold(1e-12);
  return detector;
}

TEST(EngineDeterminism, ShardCountDoesNotChangeAnyOutput) {
  auto detector = train_shared_detector();
  EngineRun reference = run_engine(detector, 1);
  EXPECT_FALSE(reference.parallel);
  EXPECT_EQ(reference.sources, 3u);
  ASSERT_EQ(reference.incidents.size(), 3u) << "one burst per source";
  for (std::size_t shards : {2u, 4u}) {
    EngineRun sharded = run_engine(detector, shards);
    EXPECT_TRUE(sharded.parallel) << shards << " shards should thread";
    EXPECT_EQ(sharded.sources, reference.sources);
    ASSERT_EQ(sharded.incidents.size(), reference.incidents.size());
    for (std::size_t i = 0; i < reference.incidents.size(); ++i)
      EXPECT_TRUE(sharded.incidents[i] == reference.incidents[i])
          << "incident " << i << " diverged at " << shards << " shards";
    EXPECT_EQ(sharded.prometheus, reference.prometheus)
        << "metric export must be byte-identical at " << shards << " shards";
  }
}

TEST(EngineDeterminism, HotSwapWithUnflushedRecordsKeepsScoring) {
  // Regression: a detector swap while a source has un-flushed records must
  // not leave that source marked dirty while absent from the dirty list —
  // ingest() would then never re-list it and the source would be silently
  // excluded from all scoring after the swap.
  auto detector = train_shared_detector();
  obs::Observability obs;
  SourceWindowConfig config;
  config.shards = 2;
  SourceWindowEngine engine(config);
  engine.set_obs_provider([&obs]() { return &obs; });
  std::size_t incidents = 0;
  engine.set_incident_sink(
      [&incidents](SourceWindowEngine::Incident) { ++incidents; });
  engine.install(detector, FeatureEncoder());
  for (std::int64_t i = 0; i < 3; ++i)
    engine.ingest(1001, make_record("RRC", "RRCSetupRequest", "UL", 100,
                                    i * 1500));
  // Hot swap with those three records still pending.
  engine.install(detector, FeatureEncoder());
  for (std::int64_t i = 3; i < 40; ++i)
    engine.ingest(1001, make_record("RRC", "RRCSetupRequest", "UL", 100,
                                    i * 1500));
  engine.flush();
  engine.close_open_incidents();
  EXPECT_GE(incidents, 1u)
      << "post-swap records must still be scored and flagged";
}

TEST(EngineDeterminism, FlushCadenceDoesNotChangeScores) {
  // Scores depend only on each source's record stream, not on where the
  // indication boundaries fall (windows pending across a flush are simply
  // scored at the next one).
  auto detector = train_shared_detector();
  EngineRun a = run_engine(detector, 2, 5);
  EngineRun b = run_engine(detector, 2, 11);
  ASSERT_EQ(a.incidents.size(), b.incidents.size());
  for (std::size_t i = 0; i < a.incidents.size(); ++i)
    EXPECT_TRUE(a.incidents[i] == b.incidents[i]);
}

TEST(EngineDeterminism, NodeUeKeyingSplitsSources) {
  auto detector = train_shared_detector();
  obs::Observability obs;
  SourceWindowConfig config;
  config.key_mode = SourceKeyMode::kNodeUe;
  SourceWindowEngine engine(config);
  engine.set_obs_provider([&obs]() { return &obs; });
  engine.install(detector, FeatureEncoder());
  for (int i = 0; i < 20; ++i) {
    engine.ingest(1001, make_record("RRC", "RRCSetup", "DL",
                                    static_cast<std::uint16_t>(100 + i % 2),
                                    i * 1000, 1 + i % 2));
  }
  engine.flush();
  EXPECT_EQ(engine.source_count(), 2u) << "one source per (node, UE)";
}

// --- Cross-site dilution regression ---------------------------------------

/// Delegates scoring to a shared inner detector and records every window
/// score it produces. clone_for_inference() stays nullptr, so the engine
/// scores inline — which is exactly the reference behavior the threaded
/// mode replicates.
class RecordingDetector : public detect::AnomalyDetector {
 public:
  RecordingDetector(std::shared_ptr<detect::AnomalyDetector> inner,
                    std::vector<double>* out)
      : inner_(std::move(inner)), out_(out) {
    set_threshold(inner_->threshold());
  }
  std::string name() const override { return inner_->name(); }
  void fit(const WindowDataset&) override {}
  std::vector<double> score(const WindowDataset& data) override {
    return inner_->score(data);
  }
  std::vector<bool> labels(const WindowDataset& data) const override {
    return inner_->labels(data);
  }
  using detect::AnomalyDetector::score_window;
  double score_window(const float* rows, std::size_t n_rows) override {
    double s = inner_->score_window(rows, n_rows);
    out_->push_back(s);
    return s;
  }
  std::size_t rows_needed(std::size_t window_size) const override {
    return inner_->rows_needed(window_size);
  }

 private:
  std::shared_ptr<detect::AnomalyDetector> inner_;
  std::vector<double>* out_;
};

/// The attack stream MobiWatch sees from site A: a registration flood of
/// fresh RNTIs in a tight loop.
void ingest_attack(SourceWindowEngine& engine, std::uint64_t node,
                   std::size_t records) {
  for (std::size_t i = 0; i < records; ++i) {
    engine.ingest(node, make_record(
                            "RRC", "RRCSetupRequest", "UL",
                            static_cast<std::uint16_t>(2000 + i),
                            static_cast<std::int64_t>(i) * 50, 500 + i));
    if (i % 6 == 5) engine.flush();
  }
}

void ingest_benign(SourceWindowEngine& engine, std::uint64_t node,
                   std::size_t sessions) {
  const char* msgs[] = {"RRCSetupRequest", "RRCSetup", "RRCSetupComplete",
                        "RegistrationRequest", "RegistrationAccept",
                        "RRCRelease"};
  std::int64_t t = 0;
  for (std::size_t s = 0; s < sessions; ++s) {
    for (const char* msg : msgs) {
      engine.ingest(node, make_record(s % 2 ? "NAS" : "RRC", msg,
                                      s % 2 ? "UL" : "DL",
                                      static_cast<std::uint16_t>(300 + s), t,
                                      s + 1));
      t += 2000;
      engine.flush();
    }
  }
}

TEST(CrossSiteDilution, SiteBTrafficDoesNotPerturbSiteAScores) {
  // The single-stream engine interleaved all sites into one window, so
  // benign traffic at site B diluted (and time-scrambled) the attack
  // signature at site A. Per-source assembly makes site A's scores a pure
  // function of site A's records: bit-identical with or without site B.
  FeatureEncoder encoder;
  auto benign = synthetic_benign(encoder);
  DetectorConfig config;
  config.epochs = 8;
  auto inner = std::make_shared<AutoencoderDetector>(5, encoder.dim(), config);
  inner->fit(benign);

  auto run = [&](bool with_site_b) {
    std::vector<double> scores;
    obs::Observability obs;
    SourceWindowEngine engine(SourceWindowConfig{});
    engine.set_obs_provider([&obs]() { return &obs; });
    engine.install(std::make_shared<RecordingDetector>(inner, &scores),
                   FeatureEncoder());
    // Interleave: site B's benign sessions arrive between site A's attack
    // bursts, like a multi-cell RIC would deliver them.
    if (with_site_b) ingest_benign(engine, 1002, 4);
    ingest_attack(engine, 1001, 30);
    if (with_site_b) ingest_benign(engine, 1002, 4);
    ingest_attack(engine, 1001, 30);
    engine.close_open_incidents();
    return scores;
  };

  std::vector<double> with_b = run(true);
  std::vector<double> without_b = run(false);
  ASSERT_FALSE(without_b.empty());
  // Site A's scores form a subsequence-preserving exact match: strip site
  // B's windows from the combined run and the remaining scores must equal
  // the isolated run bit for bit. Site A windows are identified by value:
  // every isolated score must appear, in order, in the combined run.
  std::size_t j = 0;
  for (double s : without_b) {
    while (j < with_b.size() && with_b[j] != s) ++j;
    ASSERT_LT(j, with_b.size())
        << "site A score " << s << " missing when site B traffic is present";
    ++j;
  }
}

TEST(CrossSiteDilution, IncidentEvidenceContainsOnlySiteARecords) {
  auto detector = train_shared_detector();
  obs::Observability obs;
  SourceWindowEngine engine(SourceWindowConfig{});
  std::vector<SourceWindowEngine::Incident> incidents;
  engine.set_obs_provider([&obs]() { return &obs; });
  engine.set_incident_sink([&](SourceWindowEngine::Incident incident) {
    incidents.push_back(std::move(incident));
  });
  engine.install(detector, FeatureEncoder());
  ingest_benign(engine, 1002, 3);
  ingest_attack(engine, 1001, 25);
  engine.close_open_incidents();
  ASSERT_FALSE(incidents.empty());
  for (const auto& incident : incidents) {
    if (incident.source.node_id != 1001) continue;
    for (const auto& e : incident.window.entries())
      EXPECT_GE(e.record.rnti, 2000)
          << "site B record leaked into site A evidence";
    for (const auto& e : incident.context.entries())
      EXPECT_GE(e.record.rnti, 2000)
          << "site B record leaked into site A context";
  }
}

// --- Quarantine scoping ---------------------------------------------------

TEST(EngineQuarantine, OnlyTheGappedNodeLosesItsWindow) {
  auto detector = train_shared_detector();
  obs::Observability obs;
  SourceWindowEngine engine(SourceWindowConfig{});
  std::vector<IncidentDigest> incidents;
  engine.set_obs_provider([&obs]() { return &obs; });
  engine.set_incident_sink([&](SourceWindowEngine::Incident incident) {
    incidents.push_back({incident.source.node_id, incident.source.ue_id,
                         incident.peak_score, {}});
  });
  engine.install(detector, FeatureEncoder());
  // Both nodes assembling; node 1001 hits a telemetry gap.
  for (int i = 0; i < 10; ++i) {
    engine.ingest(1001, make_record("RRC", "RRCSetup", "DL", 10, i * 1000));
    engine.ingest(1002, make_record("RRC", "RRCSetup", "DL", 20, i * 1000));
  }
  engine.flush();
  std::size_t before = incidents.size();
  engine.quarantine_node(1001);
  // 1001's open incident was reported at the gap; 1002's stays open.
  EXPECT_GT(incidents.size(), before);
  for (std::size_t i = before; i < incidents.size(); ++i)
    EXPECT_EQ(incidents[i].node, 1001u);
  EXPECT_TRUE(engine.any_incident_open()) << "node 1002 is untouched";
}

}  // namespace
}  // namespace xsec
