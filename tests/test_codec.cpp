// Codec tests: every RRC and NAS message round-trips through the wire
// format; malformed and truncated inputs are rejected without UB.
#include <gtest/gtest.h>

#include "ran/codec.hpp"
#include "ran/ue.hpp"

namespace xsec::ran {
namespace {

// --- Parameterized RRC round-trips -------------------------------------

std::vector<RrcMessage> all_rrc_messages() {
  RrcSetupRequest setup_req;
  setup_req.ue_identity = {InitialUeIdentity::Kind::kNg5gSTmsiPart1,
                           0x1234567890ULL & ((1ULL << 39) - 1)};
  setup_req.cause = EstablishmentCause::kMoData;

  RrcSetupComplete complete;
  complete.selected_plmn = Plmn{310, 26};
  complete.dedicated_nas = {1, 2, 3};
  complete.s_tmsi = STmsi{5, 2, 0xCAFE};

  RrcSetupComplete complete_no_tmsi;
  complete_no_tmsi.dedicated_nas = {};

  UeCapabilityInformation caps;
  caps.rat_capabilities = "nr;bands=n78";
  caps.num_bands = 3;

  UlInformationTransfer ul;
  ul.dedicated_nas = {9, 9, 9};

  MeasurementReport meas;
  meas.rsrp_dbm = -101;
  meas.rsrq_db = -17;

  RrcReestablishmentRequest reest;
  reest.old_rnti = Rnti{0xBEEF};
  reest.phys_cell_id = 77;
  reest.cause = 2;

  RrcSecurityModeCommand smc;
  smc.cipher = CipherAlg::kNea0;
  smc.integrity = IntegrityAlg::kNia1;

  DlInformationTransfer dl;
  dl.dedicated_nas = {4, 5};

  RrcRelease release;
  release.cause = RrcRelease::Cause::kOther;
  release.suspend = true;

  return {
      RrcMessage{setup_req},
      RrcMessage{complete},
      RrcMessage{complete_no_tmsi},
      RrcMessage{RrcSecurityModeComplete{}},
      RrcMessage{RrcSecurityModeFailure{3}},
      RrcMessage{caps},
      RrcMessage{RrcReconfigurationComplete{}},
      RrcMessage{ul},
      RrcMessage{meas},
      RrcMessage{reest},
      RrcMessage{RrcSetup{}},
      RrcMessage{RrcReject{7}},
      RrcMessage{smc},
      RrcMessage{UeCapabilityEnquiry{}},
      RrcMessage{RrcReconfiguration{9}},
      RrcMessage{dl},
      RrcMessage{release},
      RrcMessage{Paging{0x123456789ULL}},
  };
}

class RrcRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RrcRoundTrip, EncodeDecodeEncodeIsStable) {
  RrcMessage original = all_rrc_messages()[GetParam()];
  Bytes wire = encode_rrc(original);
  auto decoded = decode_rrc(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(rrc_name(decoded.value()), rrc_name(original));
  // Re-encoding the decoded message must produce identical bytes.
  EXPECT_EQ(encode_rrc(decoded.value()), wire);
}

INSTANTIATE_TEST_SUITE_P(AllRrcMessages, RrcRoundTrip,
                         ::testing::Range<std::size_t>(
                             0, all_rrc_messages().size()));

// --- Parameterized NAS round-trips -------------------------------------

std::vector<NasMessage> all_nas_messages() {
  Supi supi{Plmn::test_network(), 2089900001ULL};

  RegistrationRequest reg_suci;
  reg_suci.identity = MobileIdentity::from_suci(make_suci(supi, 42));
  reg_suci.capabilities = SecurityCapabilities{0b1111, 0b0110};

  RegistrationRequest reg_guti;
  reg_guti.type = RegistrationType::kMobilityUpdating;
  reg_guti.ng_ksi = 2;
  reg_guti.identity =
      MobileIdentity::from_guti(Guti{Plmn::test_network(), 1,
                                     STmsi{1, 0, 0xABCDEF}});

  RegistrationRequest reg_plain;
  reg_plain.identity = MobileIdentity::from_supi_plain(supi);

  NasSecurityModeComplete smc_complete;
  smc_complete.imeisv_supi = supi;

  IdentityResponse id_resp;
  id_resp.identity = MobileIdentity::from_suci(make_suci(supi, 1, true));

  ServiceRequest service;
  service.service_type = 1;
  service.s_tmsi = STmsi{1, 0, 0x1111};

  NasSecurityModeCommand nas_smc;
  nas_smc.cipher = CipherAlg::kNea0;
  nas_smc.integrity = IntegrityAlg::kNia0;
  nas_smc.replayed_capabilities = SecurityCapabilities{0b0001, 0b0001};

  RegistrationAccept accept;
  accept.guti = Guti{Plmn::test_network(), 1, STmsi{1, 0, 0x2222}};
  accept.t3512_min = 90;

  ConfigurationUpdateCommand update;
  update.new_guti = Guti{Plmn::test_network(), 2, STmsi{2, 1, 0x3333}};

  return {
      NasMessage{reg_suci},
      NasMessage{reg_guti},
      NasMessage{reg_plain},
      NasMessage{AuthenticationResponse{0xDEADULL}},
      NasMessage{AuthenticationFailure{MmCause::kSynchFailure}},
      NasMessage{smc_complete},
      NasMessage{NasSecurityModeComplete{}},
      NasMessage{NasSecurityModeReject{MmCause::kProtocolError}},
      NasMessage{id_resp},
      NasMessage{RegistrationComplete{}},
      NasMessage{service},
      NasMessage{ServiceRequest{}},
      NasMessage{DeregistrationRequestUe{true}},
      NasMessage{AuthenticationRequest{1, 0x12, 0x34}},
      NasMessage{AuthenticationReject{}},
      NasMessage{nas_smc},
      NasMessage{IdentityRequest{IdentityType::kImeisv}},
      NasMessage{accept},
      NasMessage{RegistrationReject{MmCause::kPlmnNotAllowed}},
      NasMessage{ServiceAccept{}},
      NasMessage{ServiceReject{MmCause::kCongestion}},
      NasMessage{DeregistrationAcceptNw{}},
      NasMessage{update},
      NasMessage{ConfigurationUpdateCommand{}},
  };
}

class NasRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NasRoundTrip, EncodeDecodeEncodeIsStable) {
  NasMessage original = all_nas_messages()[GetParam()];
  Bytes wire = encode_nas(original);
  auto decoded = decode_nas(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(nas_name(decoded.value()), nas_name(original));
  EXPECT_EQ(encode_nas(decoded.value()), wire);
}

INSTANTIATE_TEST_SUITE_P(AllNasMessages, NasRoundTrip,
                         ::testing::Range<std::size_t>(
                             0, all_nas_messages().size()));

// --- Field fidelity ------------------------------------------------------

TEST(Codec, RrcSetupRequestFieldsPreserved) {
  auto msgs = all_rrc_messages();
  auto decoded = decode_rrc(encode_rrc(msgs[0]));
  ASSERT_TRUE(decoded.ok());
  const auto& m = std::get<RrcSetupRequest>(decoded.value());
  EXPECT_EQ(m.ue_identity.kind, InitialUeIdentity::Kind::kNg5gSTmsiPart1);
  EXPECT_EQ(m.cause, EstablishmentCause::kMoData);
}

TEST(Codec, NestedNasSurvivesRrcContainer) {
  NasMessage inner = NasMessage{AuthenticationRequest{1, 0xAA, 0xBB}};
  DlInformationTransfer transfer{encode_nas(inner)};
  auto rrc = decode_rrc(encode_rrc(RrcMessage{transfer}));
  ASSERT_TRUE(rrc.ok());
  auto nas = decode_nas(
      std::get<DlInformationTransfer>(rrc.value()).dedicated_nas);
  ASSERT_TRUE(nas.ok());
  EXPECT_EQ(std::get<AuthenticationRequest>(nas.value()).rand, 0xAAu);
}

TEST(Codec, NullSchemeSuciSurvivesRoundTrip) {
  Supi supi{Plmn::test_network(), 777};
  IdentityResponse resp{MobileIdentity::from_suci(make_suci(supi, 1, true))};
  auto decoded = decode_nas(encode_nas(NasMessage{resp}));
  ASSERT_TRUE(decoded.ok());
  const auto& m = std::get<IdentityResponse>(decoded.value());
  ASSERT_TRUE(m.identity.suci.has_value());
  EXPECT_TRUE(m.identity.suci->is_null_scheme());
  EXPECT_EQ(deconceal_suci(*m.identity.suci), 777u);
}

// --- Robustness ----------------------------------------------------------

TEST(Codec, EmptyBufferRejected) {
  EXPECT_FALSE(decode_rrc({}).ok());
  EXPECT_FALSE(decode_nas({}).ok());
}

TEST(Codec, UnknownTagRejected) {
  EXPECT_FALSE(decode_rrc({0xFF}).ok());
  EXPECT_FALSE(decode_nas({0xFF}).ok());
}

TEST(Codec, TruncationNeverCrashes) {
  for (const RrcMessage& msg : all_rrc_messages()) {
    Bytes wire = encode_rrc(msg);
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
      Bytes truncated(wire.begin(), wire.begin() + cut);
      (void)decode_rrc(truncated);  // must not crash; may fail or not
    }
  }
  for (const NasMessage& msg : all_nas_messages()) {
    Bytes wire = encode_nas(msg);
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
      Bytes truncated(wire.begin(), wire.begin() + cut);
      (void)decode_nas(truncated);
    }
  }
}

TEST(Codec, OutOfRangeEnumsRejected) {
  // RrcSetupRequest with establishment cause 99.
  Bytes wire = encode_rrc(RrcMessage{RrcSetupRequest{}});
  wire.back() = 99;
  EXPECT_FALSE(decode_rrc(wire).ok());
}

TEST(Codec, MessageNamesMatchVocabulary) {
  for (const RrcMessage& msg : all_rrc_messages()) {
    const auto& names = rrc_all_names();
    EXPECT_NE(std::find(names.begin(), names.end(), rrc_name(msg)),
              names.end())
        << rrc_name(msg);
  }
  for (const NasMessage& msg : all_nas_messages()) {
    const auto& names = nas_all_names();
    EXPECT_NE(std::find(names.begin(), names.end(), nas_name(msg)),
              names.end())
        << nas_name(msg);
  }
}

TEST(Codec, DirectionConventions) {
  EXPECT_TRUE(rrc_is_uplink(RrcMessage{RrcSetupRequest{}}));
  EXPECT_FALSE(rrc_is_uplink(RrcMessage{RrcSetup{}}));
  EXPECT_TRUE(nas_is_uplink(NasMessage{RegistrationRequest{}}));
  EXPECT_FALSE(nas_is_uplink(NasMessage{AuthenticationRequest{}}));
}

}  // namespace
}  // namespace xsec::ran
