#!/usr/bin/env bash
# Link/run smoke check over every bench binary.
#
# Each paper-artifact bench runs end to end in its reduced mode (--quick
# where the bench supports it), and each google-benchmark binary runs with
# --benchmark_min_time=0.01s, so the whole sweep verifies that every bench
# still links and executes — not that its numbers are meaningful. Pairs
# with scripts/sanitize.sh: sanitize covers the test suite, this covers
# the bench targets CI never exercises otherwise.
#
# Usage: scripts/bench_smoke.sh [build-dir]   (default: build)
set -uo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
if [[ ! -f "$BUILD_DIR/CMakeCache.txt" ]]; then
  cmake -B "$BUILD_DIR" -S . || exit 1
fi
cmake --build "$BUILD_DIR" -j || exit 1

failures=0

run() {
  local label="$1"
  shift
  local start=$SECONDS
  if "$@" > /dev/null 2>&1; then
    echo "PASS  ${label}  ($((SECONDS - start))s)"
  else
    echo "FAIL  ${label}  (exit $?)"
    failures=$((failures + 1))
  fi
}

# google-benchmark binaries. Newer releases take a duration suffix
# (0.01s); the baked-in one predates that and wants a plain double — try
# the suffixed form first and fall back. Each run also emits its JSON
# report to results/<bin>.json so scripts/bench_diff.py can compare the
# numbers against the committed results/<bin>.baseline.json (smoke
# min_time is noisy — rerun with a larger --benchmark_min_time before
# treating a diff as real).
MIN_TIME="${BENCH_MIN_TIME:-0.01}"
run_gbench() {
  local bin="$1"
  local json="results/$bin.json"
  if "$BUILD_DIR/bench/$bin" --benchmark_min_time="${MIN_TIME}s" \
       --benchmark_format=json > "$json" 2>/dev/null; then
    echo "PASS  $bin (min_time=${MIN_TIME}s, json: $json)"
  elif "$BUILD_DIR/bench/$bin" --benchmark_min_time="$MIN_TIME" \
       --benchmark_format=json > "$json" 2>/dev/null; then
    echo "PASS  $bin (min_time=$MIN_TIME, json: $json)"
  else
    echo "FAIL  $bin (exit $?)"
    rm -f "$json"
    failures=$((failures + 1))
  fi
}

run_gbench bench_pipeline_perf
run_gbench bench_inference_latency
run_gbench bench_mitigation
run_gbench bench_lifecycle
# The sharded scale sweep runs at its full 1M-UE default (~3s per shard
# count) so its JSON is directly comparable to the committed baseline;
# export XSEC_BENCH_UES to shrink it for quick local iterations (the
# benchmark names stay the same, so bench_diff would then over-report).
run_gbench bench_scale
# Transport backend comparison: inproc vs UDS vs shm channel throughput,
# the framed zero-copy receive path, the varint fast-path delta, and the
# polled-vs-epoll pump burst (BM_PumpBurst reports syscalls_per_frame and
# frames_per_wakeup per backend × pump mode — epoll must show measurably
# fewer syscalls per frame on the kernel-socket backend).
run_gbench bench_transport

# Paper-artifact benches: --quick shrinks datasets/epochs where training is
# involved; the rest are already smoke-sized.
run "bench_table1_telemetry"          "$BUILD_DIR/bench/bench_table1_telemetry"
run "bench_table2_detection --quick"  "$BUILD_DIR/bench/bench_table2_detection" --quick
run "bench_table3_llm --quick"        "$BUILD_DIR/bench/bench_table3_llm" --quick
run "bench_fig4_reconstruction --quick" "$BUILD_DIR/bench/bench_fig4_reconstruction" --quick
run "bench_fig5_prompt"               "$BUILD_DIR/bench/bench_fig5_prompt"
run "bench_ablation --quick"          "$BUILD_DIR/bench/bench_ablation" --quick
run "bench_classifier --quick"        "$BUILD_DIR/bench/bench_classifier" --quick
run "bench_dos_efficacy --quick"      "$BUILD_DIR/bench/bench_dos_efficacy" --quick
run "bench_chaos_recovery"            "$BUILD_DIR/bench/bench_chaos_recovery"

if [[ $failures -gt 0 ]]; then
  echo "bench smoke: $failures bench(es) failed"
  exit 1
fi
echo "bench smoke: all benches link and run"
