#!/usr/bin/env python3
"""Compare two google-benchmark JSON reports and flag regressions.

Typical use: scripts/bench_smoke.sh writes results/<bench>.json for each
google-benchmark binary; the repo commits a results/<bench>.baseline.json
captured on the reference machine. A change is flagged when a benchmark's
cpu_time grows more than --threshold (default 20%) over the baseline:

    scripts/bench_diff.py results/bench_inference_latency.baseline.json \
                          results/bench_inference_latency.json

Exit status: 0 = no regression, 1 = at least one regression, 2 = usage /
input error. Benchmarks present in only one file are reported but never
fail the check (renames should not break CI). cpu_time is compared rather
than real_time because the smoke runs share the machine with the build.
Smoke-level --benchmark_min_time is noisy: treat a flag from
bench_smoke.sh as "rerun this benchmark properly", not as proof.
"""

import argparse
import json
import sys


def load_benchmarks(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    out = {}
    for b in doc.get("benchmarks", []):
        # Aggregate reports (repetitions) carry mean/median/stddev rows;
        # prefer the mean aggregate when present, else the plain row.
        name = b.get("run_name", b.get("name"))
        if b.get("run_type") == "aggregate" and b.get("aggregate_name") != "mean":
            continue
        if name in out and b.get("run_type") != "aggregate":
            continue
        out[name] = b
    return out


def fmt_time(ns, unit):
    return f"{ns:.0f} {unit}"


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="baseline google-benchmark JSON report")
    ap.add_argument("current", help="current google-benchmark JSON report")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="relative cpu_time growth that counts as a regression "
        "(default 0.20 = +20%%)",
    )
    ap.add_argument(
        "--metric",
        default="cpu_time",
        choices=["cpu_time", "real_time"],
        help="which reported time to compare (default cpu_time)",
    )
    args = ap.parse_args()

    base = load_benchmarks(args.baseline)
    cur = load_benchmarks(args.current)

    regressions = []
    improvements = []
    for name in sorted(base.keys() & cur.keys()):
        b, c = base[name], cur[name]
        bt, ct = b.get(args.metric), c.get(args.metric)
        if not bt or not ct:
            continue
        ratio = ct / bt
        line = (
            f"{name}: {fmt_time(bt, b.get('time_unit', 'ns'))} -> "
            f"{fmt_time(ct, c.get('time_unit', 'ns'))}  ({ratio - 1.0:+.1%})"
        )
        if ratio > 1.0 + args.threshold:
            regressions.append(line)
        elif ratio < 1.0 - args.threshold:
            improvements.append(line)

    only_base = sorted(base.keys() - cur.keys())
    only_cur = sorted(cur.keys() - base.keys())

    if improvements:
        print("improved:")
        for line in improvements:
            print(f"  {line}")
    if only_base:
        print("missing from current (renamed/removed?):")
        for name in only_base:
            print(f"  {name}")
    if only_cur:
        print("new in current (no baseline):")
        for name in only_cur:
            print(f"  {name}")
    if regressions:
        print(f"REGRESSIONS (> {args.threshold:.0%} {args.metric} growth):")
        for line in regressions:
            print(f"  {line}")
        return 1
    print(
        f"bench_diff: {len(base.keys() & cur.keys())} shared benchmarks, "
        f"no {args.metric} regression beyond {args.threshold:.0%}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
