// Exhaustive bit-identity check of the vendored activation kernels against
// the platform libm: sweeps all 2^32 float bit patterns through
// dl::tanh_scalar / dl::tanh_many (vs std::tanh) and dl::sigmoid_many
// (vs dl::sigmoid_scalar, i.e. 1/(1+std::exp(-x))) and reports any
// mismatch (NaN results compare as equal regardless of payload). Not part
// of the build — compile and run manually when touching dl/tanhf.* or
// dl/sigmoidf.cpp:
//
//   g++ -O2 -std=c++20 -I src scripts/verify_tanhf.cpp src/dl/tanhf.cpp \
//       src/dl/sigmoidf.cpp src/dl/layers.cpp src/dl/tensor.cpp \
//       src/common/rng.cpp -o /tmp/verify_tanhf
//   /tmp/verify_tanhf            # prints PASS or first mismatches
//
// Takes a few minutes single-threaded. The unit tests cover the same
// property on random + edge-case inputs; this sweep is the full proof.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>

#include "dl/layers.hpp"
#include "dl/tanhf.hpp"

namespace {

constexpr std::size_t kChunk = 4096;

bool bits_equal(float a, float b) {
  std::uint32_t ab, bb;
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  return ab == bb || (std::isnan(a) && std::isnan(b));
}

}  // namespace

int main() {
  using xsec::dl::sigmoid_many;
  using xsec::dl::sigmoid_scalar;
  using xsec::dl::tanh_many;
  using xsec::dl::tanh_scalar;
  static float xs[kChunk], many[kChunk], sig[kChunk];
  std::uint64_t mismatches = 0;
  std::uint64_t base = 0;
  while (base < (1ull << 32)) {
    for (std::size_t i = 0; i < kChunk; ++i) {
      std::uint32_t u = static_cast<std::uint32_t>(base + i);
      std::memcpy(&xs[i], &u, sizeof(float));
    }
    tanh_many(xs, many, kChunk);
    sigmoid_many(xs, sig, kChunk);
    for (std::size_t i = 0; i < kChunk; ++i) {
      const float want = std::tanh(xs[i]);
      const float scalar = tanh_scalar(xs[i]);
      const float sig_want = sigmoid_scalar(xs[i]);
      if (!bits_equal(scalar, want) || !bits_equal(many[i], want) ||
          !bits_equal(sig[i], sig_want)) {
        if (mismatches < 20) {
          std::uint32_t u = static_cast<std::uint32_t>(base + i);
          std::printf(
              "MISMATCH x=%a (0x%08x): tanh scalar %a many %a want %a | "
              "sigmoid %a want %a\n",
              xs[i], u, scalar, many[i], want, sig[i], sig_want);
        }
        ++mismatches;
      }
    }
    base += kChunk;
    if ((base & 0x0fffffffu) == 0)
      std::fprintf(stderr, "  ... %.0f%%\n", 100.0 * base / 4294967296.0);
  }
  if (mismatches == 0) {
    std::printf(
        "PASS: tanh_scalar/tanh_many bit-identical to std::tanh and "
        "sigmoid_many bit-identical to sigmoid_scalar over all 2^32 "
        "inputs\n");
    return 0;
  }
  std::printf("FAIL: %llu mismatching bit patterns\n",
              static_cast<unsigned long long>(mismatches));
  return 1;
}
