#!/usr/bin/env bash
# Runs the full test suite — including the chaos tests and their fixed-seed
# fault sweeps — under AddressSanitizer + UndefinedBehaviorSanitizer.
#
# This is the satellite job ROADMAP.md's robustness item calls for: every
# recovery path (reconnect, retransmission, gap handling) executes with
# memory and UB checking enabled, so a fault-injection bug that only
# corrupts memory without failing an assertion still fails the build.
#
# Usage: scripts/sanitize.sh [extra ctest args...]
#   e.g. scripts/sanitize.sh -R Chaos        # only the chaos suite
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ $# -eq 0 ]]; then
  exec cmake --workflow --preset sanitize
fi

# Extra ctest args requested: run the steps individually so the args can be
# appended to the test step.
cmake --preset sanitize
cmake --build --preset sanitize -j
ctest --preset sanitize "$@"
