#!/usr/bin/env bash
# Runs the full test suite — including the chaos tests and their fixed-seed
# fault sweeps — under AddressSanitizer + UndefinedBehaviorSanitizer, and
# (tsan mode) the threaded shard machinery under ThreadSanitizer.
#
# This is the satellite job ROADMAP.md's robustness item calls for: every
# recovery path (reconnect, retransmission, gap handling) executes with
# memory and UB checking enabled, so a fault-injection bug that only
# corrupts memory without failing an assertion still fails the build.
#
# Usage:
#   scripts/sanitize.sh [extra ctest args...]
#     ASan+UBSan over the whole suite (or the ctest selection given).
#     e.g. scripts/sanitize.sh -R Chaos     # only the chaos suite
#
#   scripts/sanitize.sh tsan [extra ctest args...]
#     ThreadSanitizer build. Without extra args it runs the concurrency
#     surface: the shard/ring/executor/engine tests plus the chaos suite,
#     and then re-runs the chaos suite with XSEC_RIC_SHARDS forcing every
#     pipeline onto 2 and 4 worker threads, so the coordinator/worker
#     hand-off (SPSC ring, barrier, detector swap, metric drain) is
#     race-checked under real fault-injected load. Further sweeps re-run
#     the chaos + transport suites over the kernel-socket backends
#     (XSEC_E2_TRANSPORT) and under the event-driven pump
#     (XSEC_E2_PUMP=epoll), so the writev/recv batching paths are
#     race-checked too.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "tsan" ]]; then
  shift
  cmake --preset tsan
  cmake --build --preset tsan -j
  if [[ $# -gt 0 ]]; then
    exec ctest --preset tsan "$@"
  fi
  ctest --preset tsan -R 'EventQueueLanes|ShardHash|SpscRing|TaggedSlot|ShardExecutor|InferenceReplica|EngineDeterminism|CrossSiteDilution|EngineQuarantine|Chaos|Mitigation|ControlReliability|AgentSpill|Lifecycle|FrameCodec|TransportChannel|TransportBackpressure|TransportPump|TransportShortWrite'
  for shards in 2 4; do
    echo "=== chaos suite with XSEC_RIC_SHARDS=$shards under TSan ==="
    XSEC_RIC_SHARDS=$shards ctest --preset tsan -R 'Chaos|LifecycleE2e'
  done
  for backend in uds shm; do
    echo "=== chaos suite with XSEC_E2_TRANSPORT=$backend under TSan ==="
    XSEC_E2_TRANSPORT=$backend ctest --preset tsan -R 'Chaos|TransportBackpressure'
  done
  for backend in uds shm; do
    echo "=== chaos suite with XSEC_E2_PUMP=epoll XSEC_E2_TRANSPORT=$backend under TSan ==="
    XSEC_E2_PUMP=epoll XSEC_E2_TRANSPORT=$backend ctest --preset tsan \
      -R 'Chaos|TransportBackpressure|TransportPump|TransportShortWrite'
  done
  exit 0
fi

if [[ $# -eq 0 ]]; then
  exec cmake --workflow --preset sanitize
fi

# Extra ctest args requested: run the steps individually so the args can be
# appended to the test step.
cmake --preset sanitize
cmake --build --preset sanitize -j
ctest --preset sanitize "$@"
