// Pipeline micro-benchmarks (google-benchmark): the telemetry path's cost
// per stage. The near-RT RIC control loop budget is 10ms-1s (paper §2.1);
// these benches substantiate that the collection/encode/report path is far
// inside it.
#include <benchmark/benchmark.h>

#include "detect/features.hpp"
#include "mobiflow/record.hpp"
#include "oran/e2ap.hpp"
#include "oran/e2sm.hpp"
#include "ran/codec.hpp"
#include "ran/interfaces.hpp"
#include "ran/security.hpp"
#include "ran/ue.hpp"

using namespace xsec;

namespace {

mobiflow::Record sample_record() {
  mobiflow::Record r;
  r.timestamp_us = 123456;
  r.gnb_id = 1;
  r.cell = 1;
  r.ue_id = 42;
  r.protocol = mobiflow::vocab::Protocol::kNas;
  r.msg = mobiflow::vocab::MsgType::kRegistrationRequest;
  r.direction = mobiflow::vocab::Direction::kUl;
  r.rnti = 0x5F1A;
  r.s_tmsi = 0x123456789AULL;
  r.suci = "suci-001-01-1-00000000deadbeef";
  r.cipher_alg = mobiflow::vocab::CipherAlg::kNea2;
  r.integrity_alg = mobiflow::vocab::IntegrityAlg::kNia2;
  r.establishment_cause = mobiflow::vocab::EstablishmentCause::kMoSignalling;
  return r;
}

void BM_RrcEncodeDecode(benchmark::State& state) {
  ran::RrcSetupRequest msg;
  msg.ue_identity.value = 0x12345;
  for (auto _ : state) {
    Bytes wire = ran::encode_rrc(ran::RrcMessage{msg});
    auto decoded = ran::decode_rrc(wire);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_RrcEncodeDecode);

void BM_NasEncodeDecode(benchmark::State& state) {
  ran::Supi supi{ran::Plmn::test_network(), 2089900001ULL};
  ran::RegistrationRequest msg;
  msg.identity = ran::MobileIdentity::from_suci(ran::make_suci(supi, 7));
  for (auto _ : state) {
    Bytes wire = ran::encode_nas(ran::NasMessage{msg});
    auto decoded = ran::decode_nas(wire);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_NasEncodeDecode);

void BM_F1apTapParse(benchmark::State& state) {
  ran::F1apMessage f1;
  f1.rnti = ran::Rnti{0x1234};
  f1.rrc_container = ran::encode_rrc(ran::RrcMessage{ran::RrcSetupRequest{}});
  Bytes wire = ran::encode_f1ap(f1);
  for (auto _ : state) {
    auto decoded = ran::decode_f1ap(wire);
    auto rrc = ran::decode_rrc(decoded.value().rrc_container);
    benchmark::DoNotOptimize(rrc);
  }
}
BENCHMARK(BM_F1apTapParse);

void BM_RecordToKvAndBack(benchmark::State& state) {
  mobiflow::Record record = sample_record();
  for (auto _ : state) {
    Bytes wire = record.to_kv_bytes();
    auto back = mobiflow::Record::from_kv_bytes(wire);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_RecordToKvAndBack);

void BM_IndicationEncodeDecode(benchmark::State& state) {
  // One E2 indication carrying a typical report batch.
  const std::size_t rows = static_cast<std::size_t>(state.range(0));
  oran::e2sm::IndicationMessage message;
  for (std::size_t i = 0; i < rows; ++i)
    message.rows.push_back(sample_record().to_kv_bytes());
  for (auto _ : state) {
    oran::RicIndication indication;
    indication.message = encode_indication_message(message);
    Bytes wire = encode_e2ap(indication);
    auto decoded = oran::decode_indication(wire);
    auto rows_back =
        oran::e2sm::decode_indication_message(decoded.value().message);
    benchmark::DoNotOptimize(rows_back);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_IndicationEncodeDecode)->Arg(16)->Arg(64)->Arg(256);

void BM_FeatureEncode(benchmark::State& state) {
  detect::FeatureEncoder encoder;
  detect::EncodeContext ctx;
  mobiflow::Record record = sample_record();
  std::vector<float> out(encoder.dim());
  for (auto _ : state) {
    encoder.encode_into(record, ctx, out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_FeatureEncode);

void BM_FeatureEncodeBatch(benchmark::State& state) {
  // Window-at-a-time encoding into a preallocated matrix: the path
  // WindowDataset and the xApp replay use.
  const std::size_t rows = static_cast<std::size_t>(state.range(0));
  detect::FeatureEncoder encoder;
  std::vector<mobiflow::Record> batch;
  for (std::size_t i = 0; i < rows; ++i) {
    mobiflow::Record r = sample_record();
    r.rnti = static_cast<std::uint16_t>(0x100 + i);
    r.ue_id = i + 1;
    r.timestamp_us = static_cast<std::int64_t>(1000 * i);
    batch.push_back(r);
  }
  dl::Matrix out(rows, encoder.dim());
  for (auto _ : state) {
    detect::EncodeContext ctx;
    encoder.encode_batch(batch, ctx, out);
    benchmark::DoNotOptimize(out.row(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_FeatureEncodeBatch)->Arg(16)->Arg(256);

void BM_SuciConcealDeconceal(benchmark::State& state) {
  ran::Supi supi{ran::Plmn::test_network(), 2089900001ULL};
  std::uint32_t nonce = 1;
  for (auto _ : state) {
    ran::Suci suci = ran::make_suci(supi, nonce++);
    benchmark::DoNotOptimize(ran::deconceal_suci(suci));
  }
}
BENCHMARK(BM_SuciConcealDeconceal);

void BM_AkaVector(benchmark::State& state) {
  ran::Key k = ran::subscriber_key("imsi-001012089900001");
  std::uint64_t rand = 1;
  for (auto _ : state) {
    ran::AuthVector v = ran::generate_auth_vector(k, rand++);
    benchmark::DoNotOptimize(ran::verify_autn(k, v.rand, v.autn));
  }
}
BENCHMARK(BM_AkaVector);

}  // namespace

BENCHMARK_MAIN();
