// Pipeline micro-benchmarks (google-benchmark): the telemetry path's cost
// per stage. The near-RT RIC control loop budget is 10ms-1s (paper §2.1);
// these benches substantiate that the collection/encode/report path is far
// inside it.
#include <benchmark/benchmark.h>

#include "core/pipeline.hpp"
#include "sim/traffic.hpp"
#include "detect/features.hpp"
#include "mobiflow/record.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "oran/e2ap.hpp"
#include "oran/e2sm.hpp"
#include "ran/codec.hpp"
#include "ran/interfaces.hpp"
#include "ran/security.hpp"
#include "ran/ue.hpp"

using namespace xsec;

namespace {

mobiflow::Record sample_record() {
  mobiflow::Record r;
  r.timestamp_us = 123456;
  r.gnb_id = 1;
  r.cell = 1;
  r.ue_id = 42;
  r.protocol = mobiflow::vocab::Protocol::kNas;
  r.msg = mobiflow::vocab::MsgType::kRegistrationRequest;
  r.direction = mobiflow::vocab::Direction::kUl;
  r.rnti = 0x5F1A;
  r.s_tmsi = 0x123456789AULL;
  r.suci = "suci-001-01-1-00000000deadbeef";
  r.cipher_alg = mobiflow::vocab::CipherAlg::kNea2;
  r.integrity_alg = mobiflow::vocab::IntegrityAlg::kNia2;
  r.establishment_cause = mobiflow::vocab::EstablishmentCause::kMoSignalling;
  return r;
}

void BM_RrcEncodeDecode(benchmark::State& state) {
  ran::RrcSetupRequest msg;
  msg.ue_identity.value = 0x12345;
  for (auto _ : state) {
    Bytes wire = ran::encode_rrc(ran::RrcMessage{msg});
    auto decoded = ran::decode_rrc(wire);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_RrcEncodeDecode);

void BM_NasEncodeDecode(benchmark::State& state) {
  ran::Supi supi{ran::Plmn::test_network(), 2089900001ULL};
  ran::RegistrationRequest msg;
  msg.identity = ran::MobileIdentity::from_suci(ran::make_suci(supi, 7));
  for (auto _ : state) {
    Bytes wire = ran::encode_nas(ran::NasMessage{msg});
    auto decoded = ran::decode_nas(wire);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_NasEncodeDecode);

void BM_F1apTapParse(benchmark::State& state) {
  ran::F1apMessage f1;
  f1.rnti = ran::Rnti{0x1234};
  f1.rrc_container = ran::encode_rrc(ran::RrcMessage{ran::RrcSetupRequest{}});
  Bytes wire = ran::encode_f1ap(f1);
  for (auto _ : state) {
    auto decoded = ran::decode_f1ap(wire);
    auto rrc = ran::decode_rrc(decoded.value().rrc_container);
    benchmark::DoNotOptimize(rrc);
  }
}
BENCHMARK(BM_F1apTapParse);

void BM_RecordToKvAndBack(benchmark::State& state) {
  mobiflow::Record record = sample_record();
  for (auto _ : state) {
    Bytes wire = record.to_kv_bytes();
    auto back = mobiflow::Record::from_kv_bytes(wire);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_RecordToKvAndBack);

void BM_IndicationEncodeDecode(benchmark::State& state) {
  // One E2 indication carrying a typical report batch.
  const std::size_t rows = static_cast<std::size_t>(state.range(0));
  oran::e2sm::IndicationMessage message;
  for (std::size_t i = 0; i < rows; ++i)
    message.rows.push_back(sample_record().to_kv_bytes());
  for (auto _ : state) {
    oran::RicIndication indication;
    indication.message = encode_indication_message(message);
    Bytes wire = encode_e2ap(indication);
    auto decoded = oran::decode_indication(wire);
    auto rows_back =
        oran::e2sm::decode_indication_message(decoded.value().message);
    benchmark::DoNotOptimize(rows_back);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_IndicationEncodeDecode)->Arg(16)->Arg(64)->Arg(256);

void BM_FeatureEncode(benchmark::State& state) {
  detect::FeatureEncoder encoder;
  detect::EncodeContext ctx;
  mobiflow::Record record = sample_record();
  std::vector<float> out(encoder.dim());
  for (auto _ : state) {
    encoder.encode_into(record, ctx, out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_FeatureEncode);

void BM_FeatureEncodeBatch(benchmark::State& state) {
  // Window-at-a-time encoding into a preallocated matrix: the path
  // WindowDataset and the xApp replay use.
  const std::size_t rows = static_cast<std::size_t>(state.range(0));
  detect::FeatureEncoder encoder;
  std::vector<mobiflow::Record> batch;
  for (std::size_t i = 0; i < rows; ++i) {
    mobiflow::Record r = sample_record();
    r.rnti = static_cast<std::uint16_t>(0x100 + i);
    r.ue_id = i + 1;
    r.timestamp_us = static_cast<std::int64_t>(1000 * i);
    batch.push_back(r);
  }
  dl::Matrix out(rows, encoder.dim());
  for (auto _ : state) {
    detect::EncodeContext ctx;
    encoder.encode_batch(batch, ctx, out);
    benchmark::DoNotOptimize(out.row(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_FeatureEncodeBatch)->Arg(16)->Arg(256);

// --- Observability overhead -------------------------------------------------
//
// The registry's hot path is a bound-pointer increment / observe, so its
// cost sits orders of magnitude under the µs-scale codec stages above. The
// <2% overhead claim is the ratio of two measurements here:
//   BM_IndicationInstrumented - BM_IndicationEncodeDecode/64
//     = the full per-indication instrumentation cost (all spans + counters
//       the pipeline records for one indication), typically ~1 µs;
//   BM_PipelineEndToEnd
//     = the end-to-end cost per indication of the whole pipeline
//       (encode, transport, RIC, SDL, MobiWatch), typically ≥ 100 µs.

void BM_ObsCounterInc(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = &registry.counter("bench.counter");
  for (auto _ : state) {
    counter->inc();
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_ObsCounterInc);

void BM_ObsHistogramObserve(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Histogram* histogram = &registry.histogram("bench.latency");
  std::uint64_t v = 0;
  for (auto _ : state) {
    histogram->observe(v++ & 0xFFFF);
    benchmark::DoNotOptimize(histogram);
  }
}
BENCHMARK(BM_ObsHistogramObserve);

void BM_ObsSpanBeginFinish(benchmark::State& state) {
  obs::Observability o;
  SimTime t{0};
  o.set_clock([&t] {
    t.us += 3;
    return t;
  });
  o.tracer.set_capacity(256);
  for (auto _ : state) {
    obs::Span span = o.tracer.begin("bench.span");
    benchmark::DoNotOptimize(span);
  }
}
BENCHMARK(BM_ObsSpanBeginFinish);

void BM_ObsExportPrometheus(benchmark::State& state) {
  // A registry shaped like a real run's: a few dozen counters plus
  // populated latency histograms.
  obs::MetricsRegistry registry;
  for (int i = 0; i < 40; ++i)
    registry.counter("bench.counter" + std::to_string(i)).inc(1000 + i);
  for (int i = 0; i < 8; ++i) {
    obs::Histogram& h = registry.histogram("bench.hist" + std::to_string(i));
    for (std::uint64_t v = 0; v < 64; ++v) h.observe(v * v);
  }
  for (auto _ : state) {
    std::string out = obs::render_prometheus(registry);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ObsExportPrometheus);

void BM_IndicationInstrumented(benchmark::State& state) {
  // BM_IndicationEncodeDecode/64 plus every obs operation the pipeline
  // performs for one indication: the agent's root encode span, the
  // parented transit span (root_of lookup included), the RAII deliver and
  // ingest spans, the transit histogram, and the layer counters. The
  // delta against the plain bench is the per-indication instrumentation
  // cost.
  const std::size_t rows = 64;
  oran::e2sm::IndicationMessage message;
  for (std::size_t i = 0; i < rows; ++i)
    message.rows.push_back(sample_record().to_kv_bytes());
  obs::Observability o;
  SimTime t{0};
  o.set_clock([&t] {
    t.us += 11;
    return t;
  });
  o.tracer.set_capacity(256);
  obs::Counter* sent = &o.metrics.counter("agent.bench.indications_sent");
  obs::Counter* received = &o.metrics.counter("ric.indications_received");
  obs::Counter* records = &o.metrics.counter("mobiwatch.records_seen");
  obs::Histogram* transit = &o.metrics.histogram("e2.bench.transit_us");
  std::uint64_t trace = 0;
  for (auto _ : state) {
    oran::RicIndication indication;
    indication.message = encode_indication_message(message);
    Bytes wire = encode_e2ap(indication);
    auto decoded = oran::decode_indication(wire);
    auto rows_back =
        oran::e2sm::decode_indication_message(decoded.value().message);
    benchmark::DoNotOptimize(rows_back);
    ++trace;
    sent->inc();
    std::uint32_t encode_id =
        o.tracer.record("agent.encode", trace, 0, t, SimTime{t.us + 500});
    received->inc();
    transit->observe(1000);
    std::uint32_t transit_id =
        o.tracer.record("e2.transit", trace, o.tracer.root_of(trace),
                        SimTime{t.us + 500}, SimTime{t.us + 1500});
    benchmark::DoNotOptimize(encode_id);
    {
      obs::Span deliver = o.tracer.begin("ric.deliver", trace, transit_id);
      obs::Span ingest = o.tracer.begin("mobiwatch.ingest", trace);
      records->inc(static_cast<std::uint64_t>(rows));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_IndicationInstrumented);

void BM_PipelineEndToEnd(benchmark::State& state) {
  // The whole Figure 3 assembly on fixed-seed benign traffic with a live
  // autoencoder scoring windows; items are indications carried end to
  // end. This is the denominator of the observability overhead ratio.
  detect::FeatureEncoder encoder;
  detect::MobiWatchConfig mobiwatch;
  auto detector = std::make_shared<detect::AutoencoderDetector>(
      mobiwatch.window_size, encoder.dim());
  std::size_t indications = 0;
  for (auto _ : state) {
    core::Pipeline pipeline;
    pipeline.install_detector(detector, detect::FeatureEncoder());
    sim::TrafficConfig traffic;
    traffic.num_sessions = 8;
    traffic.arrival_mean = SimDuration::from_ms(60);
    traffic.seed = 7;
    sim::BenignTrafficGenerator generator(&pipeline.testbed(), traffic);
    generator.schedule_all();
    pipeline.run_for(SimDuration::from_s(1));
    pipeline.finalize();
    indications += pipeline.stats().indications_received;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(indications));
}
BENCHMARK(BM_PipelineEndToEnd);

void BM_SuciConcealDeconceal(benchmark::State& state) {
  ran::Supi supi{ran::Plmn::test_network(), 2089900001ULL};
  std::uint32_t nonce = 1;
  for (auto _ : state) {
    ran::Suci suci = ran::make_suci(supi, nonce++);
    benchmark::DoNotOptimize(ran::deconceal_suci(suci));
  }
}
BENCHMARK(BM_SuciConcealDeconceal);

void BM_AkaVector(benchmark::State& state) {
  ran::Key k = ran::subscriber_key("imsi-001012089900001");
  std::uint64_t rand = 1;
  for (auto _ : state) {
    ran::AuthVector v = ran::generate_auth_vector(k, rand++);
    benchmark::DoNotOptimize(ran::verify_autn(k, v.rand, v.autn));
  }
}
BENCHMARK(BM_AkaVector);

}  // namespace

BENCHMARK_MAIN();
