// Reproduces Table 3: zero-shot evaluation of five baseline LLM
// personalities against the five attacks plus two benign sequences.
//
// Traces come from live testbed runs (attack scenarios with background
// traffic); the flagged region plus context is rendered through the
// Figure 5 prompt template and fed to the SimLLM expert under each model's
// calibrated competence mask. A ✓ means the model's verdict matched ground
// truth (attack -> anomalous, benign -> benign) — the paper's criterion.
#include <iostream>

#include "attacks/attack.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/datasets.hpp"
#include "llm/client.hpp"
#include "llm/personalities.hpp"
#include "llm/prompt.hpp"

using namespace xsec;

namespace {

/// Extracts the attack-centred window (all malicious records plus
/// surrounding context) from a labeled trace — what MobiWatch would hand
/// to the analyzer.
mobiflow::Trace attack_window(const mobiflow::Trace& trace,
                              std::size_t context = 12) {
  std::size_t first = trace.size(), last = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace.entries()[i].malicious) {
      first = std::min(first, i);
      last = std::max(last, i);
    }
  }
  mobiflow::Trace window;
  if (first == trace.size()) return window;  // no malicious records
  std::size_t begin = first > context ? first - context : 0;
  std::size_t end = std::min(trace.size(), last + context + 1);
  for (std::size_t i = begin; i < end; ++i)
    window.add(trace.entries()[i].record, trace.entries()[i].malicious);
  return window;
}

/// A benign slice of the same shape.
mobiflow::Trace benign_window(const mobiflow::Trace& trace,
                              std::size_t offset, std::size_t length = 25) {
  mobiflow::Trace window;
  for (std::size_t i = offset; i < std::min(trace.size(), offset + length);
       ++i)
    window.add(trace.entries()[i].record, false);
  return window;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  std::cout << "=== Table 3: zero-shot LLM evaluation ===\n\n";
  std::cout << "Collecting attack traces from the testbed...\n";
  core::LabeledDatasets datasets =
      core::collect_all(/*seed=*/2024, quick ? 45 : 120, quick ? 15 : 30);

  struct Row {
    std::string name;
    mobiflow::Trace window;
    bool is_attack;
  };
  std::vector<Row> rows;
  for (const auto& attack : datasets.attacks)
    rows.push_back({attack.display_name, attack_window(attack.trace), true});
  rows.push_back({"Benign Sequence 1",
                  benign_window(datasets.benign.front(), 10), false});
  rows.push_back({"Benign Sequence 2",
                  benign_window(datasets.benign.back(), 60), false});

  llm::SimLlmClient client;
  llm::PromptTemplate prompt_template;

  std::vector<std::string> headers = {"Attack / Trace"};
  for (const auto& model : llm::baseline_models()) headers.push_back(model.name);
  Table table(headers);

  std::map<std::string, int> correct;
  for (const auto& row : rows) {
    if (row.window.empty()) {
      std::cerr << "WARNING: no trace window for " << row.name << "\n";
      continue;
    }
    std::vector<std::string> cells = {row.name};
    for (const auto& model : llm::baseline_models()) {
      llm::LlmRequest request{model.name,
                              prompt_template.build(row.window)};
      auto response = client.query(request);
      bool ok = response.ok() &&
                response.value().verdict_anomalous == row.is_attack;
      cells.push_back(ok ? "Y" : "x");
      if (ok) ++correct[model.name];
    }
    table.add_row(std::move(cells));
  }
  std::cout << "\n" << table.render() << "\n";
  std::cout << "Correct verdicts per model (of " << rows.size() << "):\n";
  for (const auto& model : llm::baseline_models())
    std::cout << "  " << pad_right(model.name, 18) << " "
              << correct[model.name] << "/" << rows.size() << "\n";

  std::cout
      << "\nPaper reference (Table 3): ChatGPT-4o 6/7, Gemini 5/7, Copilot "
         "3/7,\nLlama3 5/7, Claude 3 Sonnet 5/7. The per-cell pattern is "
         "calibrated\n(see DESIGN.md: SimLLM personalities), so matching it "
         "validates the\npipeline, prompts, and evidence extraction rather "
         "than the real services.\n";

  write_file("results/table3.csv", table.to_csv());
  std::cout << "\nCSV written to results/table3.csv\n";

  // Repeat-stability check (paper: "repeated experiments on ChatGPT-4o ...
  // consistent results"). Deterministic engine => always stable.
  int unstable = 0;
  for (const auto& row : rows) {
    if (row.window.empty()) continue;
    llm::LlmRequest request{"ChatGPT-4o", prompt_template.build(row.window)};
    auto first = client.query(request);
    auto second = client.query(request);
    if (first.ok() != second.ok() ||
        (first.ok() && first.value().verdict_anomalous !=
                           second.value().verdict_anomalous))
      ++unstable;
  }
  std::cout << "Repeat-stability: " << unstable
            << " unstable verdicts across repeated ChatGPT-4o queries\n";
  return 0;
}
