// Model-lifecycle micro-benchmarks (google-benchmark): what the edge loop
// costs per event. Drift bookkeeping and shadow scoring sit on the
// per-window path, so they must be nanosecond-scale; the retrain ->
// verify -> hot-swap cycle runs off the hot path but still inside the
// near-RT RIC's budget, so the full cycle is measured end to end on a
// detector sized like the deployed one. No testbed or pipeline: every
// stage is driven directly, the same technique the lifecycle unit tests
// use.
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "detect/scorer.hpp"
#include "dl/tensor.hpp"
#include "lifecycle/retrain.hpp"
#include "lifecycle/shadow.hpp"
#include "lifecycle/sketch.hpp"
#include "lifecycle/store.hpp"
#include "oran/sdl.hpp"

using namespace xsec;

namespace {

constexpr std::size_t kWindow = 5;
constexpr std::size_t kFeatures = 16;
constexpr std::size_t kFlat = kWindow * kFeatures;

std::vector<float> benign_windows(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> out(n * kFlat);
  for (float& v : out) v = static_cast<float>(rng.uniform(0.0, 1.0));
  return out;
}

/// A detector shaped like the deployed MobiWatch AE (flattened window in,
/// two-layer encoder), trained just enough to have a scaler and threshold.
std::unique_ptr<detect::AutoencoderDetector> active_detector() {
  auto detector = std::make_unique<detect::AutoencoderDetector>(
      kWindow, kFeatures, detect::DetectorConfig{},
      std::vector<std::size_t>{32, 8});
  std::vector<float> data = benign_windows(64, 0xB0075);
  dl::Matrix raw(64, kFlat);
  std::memcpy(raw.row(0), data.data(), data.size() * sizeof(float));
  detector->fit_scaler(raw);
  detect::FineTuneConfig tune;
  tune.epochs = 3;
  detector->fine_tune(data.data(), 64, kWindow, tune);
  return detector;
}

lifecycle::BenignRing filled_ring(std::size_t n) {
  lifecycle::BenignRing ring(lifecycle::RingConfig{.capacity = n});
  std::vector<float> data = benign_windows(n, 0x41B6);
  for (std::size_t w = 0; w < n; ++w) {
    lifecycle::RingEntry entry;
    entry.node_id = 1001;
    entry.ue_id = w % 8;
    entry.score = 0.1 + 0.001 * static_cast<double>(w);
    entry.rows.assign(data.begin() + w * kFlat,
                      data.begin() + (w + 1) * kFlat);
    ring.push(std::move(entry));
  }
  return ring;
}

void BM_DriftObserve(benchmark::State& state) {
  // The per-benign-window cost on the live path: one sketch add plus the
  // periodic epoch check.
  lifecycle::DriftDetector drift(lifecycle::DriftConfig{
      .baseline_min = 128, .min_samples = 256, .divergence_threshold = 0.35});
  Rng rng(0xD81F);
  std::vector<double> scores(1024);
  for (double& s : scores) s = rng.uniform(0.05, 0.5);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(drift.observe(scores[i]));
    i = (i + 1) & 1023;
  }
}
BENCHMARK(BM_DriftObserve);

void BM_SketchDivergence(benchmark::State& state) {
  lifecycle::QuantileSketch a, b;
  Rng rng(0x51C3);
  for (int i = 0; i < 512; ++i) {
    a.add(rng.uniform(0.05, 0.5));
    b.add(rng.uniform(0.1, 1.0));
  }
  for (auto _ : state) benchmark::DoNotOptimize(a.divergence(b));
}
BENCHMARK(BM_SketchDivergence);

void BM_StoreVerify(benchmark::State& state) {
  // Integrity verification of one stored model blob: full checksum pass
  // over the wrapped weights — the cost of never trusting the SDL.
  oran::Sdl sdl;
  lifecycle::ModelStore store(&sdl);
  Bytes model_state = active_detector()->save_state();
  std::uint32_t version = store.put(model_state);
  Bytes wrapped = *sdl.get(store.ns(), lifecycle::ModelStore::version_key(version));
  for (auto _ : state) benchmark::DoNotOptimize(store.verify(wrapped));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wrapped.size()));
}
BENCHMARK(BM_StoreVerify);

void BM_ShadowObserve(benchmark::State& state) {
  // The per-window cost of keeping a candidate in shadow: one candidate
  // inference plus the gate tallies.
  auto active = active_detector();
  lifecycle::ShadowScorer shadow(active->clone_for_inference(), 2,
                                 lifecycle::GateConfig{});
  std::vector<float> data = benign_windows(64, 0x5AD0);
  std::size_t w = 0;
  for (auto _ : state) {
    shadow.observe(data.data() + w * kFlat, kWindow, 0.2, false);
    w = (w + 1) & 63;
  }
}
BENCHMARK(BM_ShadowObserve);

void BM_RetrainCandidate(benchmark::State& state) {
  // One drift-triggered retrain: sanitize the ring, clone the active
  // detector, fine-tune the clone, score the training set.
  auto active = active_detector();
  lifecycle::BenignRing ring = filled_ring(64);
  lifecycle::RetrainConfig config;
  config.min_windows = 32;
  config.tune.epochs = 2;
  for (auto _ : state) {
    auto result =
        lifecycle::retrain_candidate(*active, ring, nullptr, kWindow, config);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_RetrainCandidate)->Unit(benchmark::kMicrosecond);

void BM_RestoreDetector(benchmark::State& state) {
  // The hot-swap's deserialization half: header validation, architecture
  // rebuild, scaler + weight load from the verified blob.
  Bytes model_state = active_detector()->save_state();
  for (auto _ : state) {
    auto restored = detect::restore_detector(model_state);
    benchmark::DoNotOptimize(restored);
  }
}
BENCHMARK(BM_RestoreDetector)->Unit(benchmark::kMicrosecond);

void BM_LifecycleCycle(benchmark::State& state) {
  // The whole off-path cycle a drift event buys: retrain a candidate,
  // persist it versioned+checksummed, shadow-score a gate's worth of
  // windows, verify-load and restore for the hot swap.
  auto active = active_detector();
  lifecycle::BenignRing ring = filled_ring(64);
  lifecycle::RetrainConfig retrain;
  retrain.min_windows = 32;
  retrain.tune.epochs = 2;
  lifecycle::GateConfig gate;
  gate.min_windows = 64;
  std::vector<float> live = benign_windows(64, 0x11F3);
  for (auto _ : state) {
    state.PauseTiming();
    oran::Sdl sdl;  // fresh store per cycle: version history stays flat
    lifecycle::ModelStore store(&sdl);
    state.ResumeTiming();
    auto result =
        lifecycle::retrain_candidate(*active, ring, nullptr, kWindow, retrain);
    std::uint32_t version = store.put(result.value().candidate->save_state());
    lifecycle::ShadowScorer shadow(std::move(result.value().candidate),
                                   version, gate);
    for (std::size_t w = 0; w < 64; ++w)
      shadow.observe(live.data() + w * kFlat, kWindow, 0.2, false);
    bool promote = shadow.ready() && shadow.passes();
    auto verified = store.load(version);
    auto swapped = detect::restore_detector(verified.value());
    benchmark::DoNotOptimize(promote);
    benchmark::DoNotOptimize(swapped);
  }
}
BENCHMARK(BM_LifecycleCycle)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
