// Reproduces Table 2: detection performance of the Autoencoder and LSTM
// models on the benign dataset (5-fold cross-validation) and the attack
// datasets (trained on benign, tested on benign+attack mixtures).
//
// Also prints the per-attack breakdown (the paper reports the aggregate;
// the breakdown substantiates the 100% recall claim per attack type).
#include <cmath>
#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/datasets.hpp"
#include "core/evaluation.hpp"

using namespace xsec;

int main(int argc, char** argv) {
  // --quick reduces dataset size and epochs for CI-style smoke runs.
  bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  std::cout << "=== Table 2: unsupervised detection performance ===\n\n";
  std::cout << "Collecting datasets (benign + 5 attack scenarios)...\n";
  core::LabeledDatasets datasets =
      core::collect_all(/*seed=*/2024, quick ? 60 : 120, quick ? 20 : 30);
  std::cout << "  benign: " << datasets.benign_records() << " records in "
            << datasets.benign.size() << " captures\n";
  for (const auto& attack : datasets.attacks)
    std::cout << "  " << pad_right(attack.display_name, 20) << ": "
              << attack.trace.size() << " records ("
              << attack.trace.malicious_count() << " malicious)\n";

  core::EvalConfig config;
  config.detector.epochs = quick ? 10 : 30;
  std::cout << "\nTraining and evaluating (window N=" << config.window_size
            << ", threshold=" << config.detector.threshold_percentile
            << "th pct of training scores, the paper's method — see "
               "ablation A6\nfor held-out calibration)...\n\n";
  core::Table2Result result = core::run_table2(datasets, config);

  Table table({"Dataset", "Model", "Accuracy", "Precision", "Recall",
               "F1 Score"});
  std::string last_dataset;
  for (const auto& row : result.rows) {
    if (!last_dataset.empty() && row.dataset != last_dataset)
      table.add_separator();
    last_dataset = row.dataset;
    auto cell = [](double v) {
      return std::isnan(v) ? std::string("N/A") : format_percent(v, 2);
    };
    table.add_row({row.dataset, row.model, cell(row.confusion.accuracy()),
                   cell(row.confusion.precision()),
                   cell(row.confusion.recall()), cell(row.confusion.f1())});
  }
  std::cout << table.render() << "\n";

  std::cout << "Per-attack breakdown (attack datasets):\n";
  Table breakdown({"Attack", "Model", "Windows", "Malicious", "Recall",
                   "Precision", "Event detected"});
  int detected = 0;
  int events = 0;
  for (const auto& row : result.per_attack) {
    auto cell = [](double v) {
      return std::isnan(v) ? std::string("N/A") : format_percent(v, 2);
    };
    breakdown.add_row({row.attack, row.model,
                       std::to_string(row.confusion.total()),
                       std::to_string(row.confusion.tp + row.confusion.fn),
                       cell(row.confusion.recall()),
                       cell(row.confusion.precision()),
                       row.detected ? "yes" : "NO"});
    ++events;
    if (row.detected) ++detected;
  }
  std::cout << breakdown.render() << "\n";
  std::cout << "Event-level detection rate (paper headline: 100%): "
            << detected << "/" << events << "\n\n";

  std::cout << "Paper reference (Table 2): Benign AE 93.23%/93.23%/N/A/N/A, "
               "LSTM 91.15%/91.15%/N/A/N/A;\n"
            << "Attack AE 100%/100%/100%/100%, LSTM "
               "95.00%/88.68%/100%/94.00%.\n";

  write_file("results/table2.csv", table.to_csv());
  std::cout << "\nCSV written to results/table2.csv\n";
  return 0;
}
