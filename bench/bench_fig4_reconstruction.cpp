// Reproduces Figure 4: the autoencoder's reconstruction errors over the
// attack-dataset windows, with the detection threshold line and grouped
// per-attack-type anomaly patterns (the paper's ① / ② observation that
// instances of the same attack type produce similar error shapes).
#include <iostream>
#include <map>

#include "common/plot.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/datasets.hpp"
#include "core/evaluation.hpp"

using namespace xsec;

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  std::cout << "=== Figure 4: autoencoder reconstruction errors on the "
               "attack datasets ===\n\n";
  core::LabeledDatasets datasets =
      core::collect_all(/*seed=*/2024, quick ? 45 : 120, quick ? 15 : 30);
  core::EvalConfig config;
  config.detector.epochs = quick ? 12 : 30;
  core::Figure4Result result = core::run_figure4(datasets, config);

  std::cout << "Detection threshold (99th pct of benign training errors): "
            << format_fixed(result.threshold, 4) << "\n\n";

  // One plot glyph per attack type, as in the paper's color coding.
  std::map<std::string, char> glyphs = {
      {"bts_dos", '1'},
      {"blind_dos", '2'},
      {"uplink_id_extraction", '3'},
      {"downlink_id_extraction", '4'},
      {"null_cipher", '5'},
  };

  AsciiPlot plot(100, 24);
  plot.set_title(
      "Reconstruction error per attack-dataset window (log y). Benign "
      "windows '.', attack windows by type:\n  1=BTS DoS  2=Blind DoS  "
      "3=Uplink ID Extr  4=Downlink ID Extr  5=Null Cipher  "
      "(threshold = '-' line)");
  plot.set_y_log();
  plot.set_threshold(result.threshold);
  double x = 0;
  for (const auto& point : result.points) {
    char glyph = point.malicious ? glyphs[point.attack_id] : '.';
    plot.add_point(x, std::max(point.error, 1e-6), glyph);
    x += 1;
  }
  std::cout << plot.render() << "\n";

  // Group-anomaly statistics: per attack type, the error distribution of
  // its malicious windows (the paper's "similar group anomaly patterns").
  Table stats({"Attack", "Malicious windows", "Median error", "p90 error",
               "Above threshold"});
  for (const auto& [attack, glyph] : glyphs) {
    std::vector<double> errors;
    std::size_t above = 0;
    for (const auto& point : result.points) {
      if (point.attack_id != attack || !point.malicious) continue;
      errors.push_back(point.error);
      if (point.error > result.threshold) ++above;
    }
    if (errors.empty()) {
      stats.add_row({attack, "0", "-", "-", "-"});
      continue;
    }
    stats.add_row({attack, std::to_string(errors.size()),
                   format_fixed(percentile(errors, 50), 4),
                   format_fixed(percentile(errors, 90), 4),
                   std::to_string(above) + "/" +
                       std::to_string(errors.size())});
  }
  std::cout << stats.render() << "\n";
  std::cout << "Paper shape check: attack windows cluster above the "
               "threshold with per-type\nerror signatures; benign windows "
               "sit below it.\n";

  // CSV export for re-plotting.
  Table csv({"attack", "window", "error", "malicious"});
  for (const auto& point : result.points)
    csv.add_row({point.attack_id, std::to_string(point.window_index),
                 format_fixed(point.error, 6), point.malicious ? "1" : "0"});
  write_file("results/figure4.csv", csv.to_csv());
  std::cout << "\nCSV written to results/figure4.csv\n";
  return 0;
}
