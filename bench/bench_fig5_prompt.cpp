// Reproduces Figure 5: the analyst prompt template and an example response
// for a live BTS DoS event, generated end-to-end (testbed -> telemetry ->
// flagged window -> prompt -> SimLLM "ChatGPT-4o" response).
#include <iostream>

#include "attacks/attack.hpp"
#include "core/datasets.hpp"
#include "llm/client.hpp"
#include "llm/prompt.hpp"

using namespace xsec;

int main() {
  std::cout << "=== Figure 5: prompt template and example response ===\n\n";

  // Run a BTS DoS against light background traffic.
  core::ScenarioConfig config;
  config.traffic.num_sessions = 6;
  config.traffic.seed = 55;
  config.run_time = SimDuration::from_s(3);
  auto attack = attacks::make_bts_dos();
  mobiflow::Trace trace =
      core::collect_attack(*attack, config, SimTime::from_ms(150));

  // The attack-centred window MobiWatch would flag.
  mobiflow::Trace window;
  std::size_t first = trace.size(), last = 0;
  for (std::size_t i = 0; i < trace.size(); ++i)
    if (trace.entries()[i].malicious) {
      first = std::min(first, i);
      last = std::max(last, i);
    }
  if (first == trace.size()) {
    std::cerr << "attack produced no labeled records\n";
    return 1;
  }
  std::size_t begin = first > 5 ? first - 5 : 0;
  for (std::size_t i = begin; i < std::min(trace.size(), last + 3); ++i)
    window.add(trace.entries()[i].record);

  llm::PromptTemplate prompt_template;
  std::string prompt = prompt_template.build(window);

  std::cout << "---------------- Prompt Template ----------------\n";
  std::cout << prompt << "\n";

  llm::SimLlmClient client;
  auto response = client.query({"ChatGPT-4o", prompt});
  if (!response.ok()) {
    std::cerr << "query failed: " << response.error().message << "\n";
    return 1;
  }
  std::cout << "---------------- Response Example (ChatGPT-4o) "
               "----------------\n";
  std::cout << response.value().text << "\n";

  std::cout << "\nPaper shape check: the response identifies a signaling "
               "storm from the\nrepeated RRC connection pattern, matching "
               "Figure 5's example analysis.\n";
  bool mentions_storm =
      response.value().text.find("signaling storm") != std::string::npos ||
      response.value().text.find("depletion") != std::string::npos;
  return response.value().verdict_anomalous && mentions_storm ? 0 : 1;
}
