// Transport backend comparison (google-benchmark): the same batched
// E2SM-MOBIFLOW indication pushed through each E2 channel backend —
// in-process queue, Unix-domain socketpair, shared-memory ring — plus the
// full framed-link receive path (enqueue -> pump -> zero-copy view decode
// -> row iteration -> per-row record decode) and the varint decoder's
// unrolled fast path against the original loop.
//
// cpu_time is the gated number (scripts/bench_diff.py vs the committed
// results/bench_transport.baseline.json). On a single-core host the
// process-boundary backends measure syscall/copy overhead relative to
// inproc, not concurrency wins; the determinism tests assert that every
// backend produces byte-identical pipeline output either way.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "mobiflow/record.hpp"
#include "oran/e2ap.hpp"
#include "oran/e2sm.hpp"
#include "obs/trace.hpp"
#include "transport/channel.hpp"
#include "transport/frame.hpp"
#include "transport/link.hpp"
#include "transport/pump.hpp"

using namespace xsec;

namespace {

/// A realistic report batch: 16 MobiFlow rows inside one encoded E2AP
/// RIC Indication, the PDU the hot path carries thousands of per second.
Bytes batched_indication() {
  oran::e2sm::IndicationMessage message;
  for (int i = 0; i < 16; ++i) {
    mobiflow::Record record;
    record.timestamp_us = 1000 + i * 20;
    record.gnb_id = 7;
    record.cell = 2;
    record.ue_id = 40 + i;
    record.rnti = static_cast<std::uint16_t>(100 + i);
    record.s_tmsi = 0xAB00 + i;
    message.rows.push_back(record.to_kv_bytes());
  }
  oran::e2sm::IndicationHeader header;
  header.collect_start_us = 1000;
  header.gnb_id = 7;
  header.cell = 2;
  oran::RicIndication indication;
  indication.request_id = {1, 1};
  indication.ran_function_id = oran::e2sm::kMobiFlowFunctionId;
  indication.action_id = 1;
  indication.sequence_number = 1;
  indication.sent_at_us = 2000;
  indication.type = oran::RicIndicationType::kReport;
  indication.header = oran::e2sm::encode_indication_header(header);
  indication.message = oran::e2sm::encode_indication_message(message);
  return oran::encode_e2ap(indication);
}

/// Raw channel throughput: frame + enqueue + pump + deliver, no decoding.
void BM_ChannelSendPump(benchmark::State& state,
                        transport::BackendKind kind) {
  auto ch = transport::make_channel(kind, 256 * 1024);
  if (!ch) {
    state.SkipWithError("backend unavailable in this environment");
    return;
  }
  Bytes pdu = batched_indication();
  std::uint64_t delivered_bytes = 0;
  ch->set_sink([&](std::span<const std::uint8_t> payload) {
    benchmark::DoNotOptimize(payload.data());
    delivered_bytes += payload.size();
  });
  for (auto _ : state) {
    ch->send(pdu);
    ch->pump();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(delivered_bytes));
  state.counters["frame_bytes"] =
      static_cast<double>(transport::framed_size(pdu.size()));
}

/// The full receive path a delivered indication takes: framed link
/// enqueue/pump, then zero-copy E2AP view decode, row-cursor iteration,
/// and per-row record decode — allocation-free in the steady state.
void BM_LinkIndicationReceivePath(benchmark::State& state,
                                 transport::BackendKind kind) {
  transport::LinkConfig cfg;
  cfg.backend = kind;
  obs::Observability obs;
  transport::FramedLink link(cfg, &obs);
  if (link.backend() != kind) {
    state.SkipWithError("backend unavailable in this environment");
    return;
  }
  Bytes pdu = batched_indication();
  std::uint64_t rows_decoded = 0;
  bool ok = true;
  link.set_ric_sink(
      [&](std::uint64_t, std::span<const std::uint8_t> wire) {
        auto view = oran::decode_indication_view(wire);
        ok &= view.ok();
        if (!view.ok()) return;
        oran::e2sm::RowCursor rows(view.value().message);
        while (auto row = rows.next()) {
          auto record = mobiflow::Record::from_kv_bytes(*row);
          ok &= record.ok();
          if (record.ok()) {
            benchmark::DoNotOptimize(record.value().rnti);
            ++rows_decoded;
          }
        }
        ok &= rows.ok();
      });
  for (auto _ : state) {
    link.enqueue_to_ric(1001, pdu);
    link.pump_to_ric();
  }
  if (!ok) state.SkipWithError("decode failed");
  state.counters["rows_per_iter"] =
      benchmark::Counter(static_cast<double>(rows_decoded),
                         benchmark::Counter::kAvgIterations);
}

/// Burst delivery, polled vs event-driven: kBurst frames enqueued, then
/// drained in one go. Polled mode pays one kernel write per send on the
/// socket backend; the epoll pump stages sends in user space and flushes
/// the whole burst with a single writev, then drains the socket with one
/// large recv — the counters make the syscall coalescing visible:
/// syscalls_per_frame (kernel entries per delivered frame, lower is
/// better) and frames_per_wakeup (burst frames amortized per pump wakeup,
/// higher is better).
constexpr std::size_t kPumpBurst = 32;

void BM_PumpBurst(benchmark::State& state, transport::BackendKind kind,
                  transport::PumpMode mode) {
  obs::Observability obs;
  std::unique_ptr<transport::EpollPump> pump;
  if (mode == transport::PumpMode::kEpoll) {
    pump = transport::EpollPump::create(&obs);
    if (!pump) {
      state.SkipWithError("epoll pump unavailable in this environment");
      return;
    }
  }
  auto ch = transport::make_channel(kind, 1024 * 1024);
  if (!ch) {
    state.SkipWithError("backend unavailable in this environment");
    return;
  }
  if (pump) pump->add(ch.get());
  Bytes pdu = batched_indication();
  std::uint64_t delivered = 0;
  ch->set_sink([&](std::span<const std::uint8_t> payload) {
    benchmark::DoNotOptimize(payload.data());
    ++delivered;
  });
  for (auto _ : state) {
    for (std::size_t i = 0; i < kPumpBurst; ++i) ch->send(pdu);
    if (pump) {
      pump->service();
    } else {
      ch->pump();
    }
  }
  const double frames = static_cast<double>(delivered);
  // pump->syscalls() already folds in the channel's kernel entries (plus
  // the pump's own epoll_wait/doorbell ones); polled mode has no pump.
  const double syscalls = pump ? static_cast<double>(pump->syscalls())
                               : static_cast<double>(ch->io_syscalls());
  state.counters["syscalls_per_frame"] =
      frames > 0 ? syscalls / frames : 0.0;
  state.counters["frames_per_wakeup"] = benchmark::Counter(
      pump ? (pump->wakeups() > 0
                  ? frames / static_cast<double>(pump->wakeups())
                  : 0.0)
           : frames / static_cast<double>(state.iterations()));
  state.SetItemsProcessed(static_cast<std::int64_t>(delivered));
  if (pump) pump->remove(ch.get());
}

/// The seed varint decoder, reproduced verbatim (plain 7-bits-per-byte
/// loop over per-byte Result-returning u8() reads) so the fast-path
/// benchmark has a live reference. noinline keeps the call overhead
/// comparable to the real out-of-line ByteReader::varint.
struct ReferenceReader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  Result<std::uint8_t> u8() {
    if (size - pos < 1)
      return Error::make("truncated", "u8 past end of buffer");
    return data[pos++];
  }

  [[gnu::noinline]] Result<std::uint64_t> varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (shift >= 64) return Error::make("malformed", "varint too long");
      auto b = u8();
      if (!b) return b.error();
      v |= static_cast<std::uint64_t>(b.value() & 0x7f) << shift;
      if (!(b.value() & 0x80)) break;
      shift += 7;
    }
    return v;
  }
};

/// The MobiFlow field-value mix: overwhelmingly 1-byte varints (enums,
/// small ids), a solid share of 2-byte (RNTIs, cell ids), a tail of wide
/// timestamps.
Bytes varint_corpus(std::size_t count) {
  ByteWriter w;
  for (std::size_t i = 0; i < count; ++i) {
    switch (i % 8) {
      case 6:
        w.varint(0x3FFF + i * 131);  // 3+ bytes
        break;
      case 3:
      case 7:
        w.varint(0x80 + i % 0x3F00);  // 2 bytes
        break;
      default:
        w.varint(i % 0x7F);  // 1 byte
        break;
    }
  }
  return std::move(w).take();
}

void BM_VarintDecode_Reference(benchmark::State& state) {
  Bytes corpus = varint_corpus(4096);
  for (auto _ : state) {
    ReferenceReader r{corpus.data(), corpus.size()};
    std::uint64_t sum = 0;
    while (r.pos < r.size) {
      auto v = r.varint();
      if (!v.ok()) break;
      sum += v.value();
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(corpus.size()));
}

void BM_VarintDecode_FastPath(benchmark::State& state) {
  Bytes corpus = varint_corpus(4096);
  for (auto _ : state) {
    ByteReader r(corpus);
    std::uint64_t sum = 0;
    while (r.remaining() > 0) {
      auto v = r.varint();
      if (!v.ok()) break;
      sum += v.value();
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(corpus.size()));
}

}  // namespace

BENCHMARK_CAPTURE(BM_ChannelSendPump, inproc,
                  transport::BackendKind::kInProcess);
BENCHMARK_CAPTURE(BM_ChannelSendPump, uds, transport::BackendKind::kUds);
BENCHMARK_CAPTURE(BM_ChannelSendPump, shm, transport::BackendKind::kShm);
BENCHMARK_CAPTURE(BM_LinkIndicationReceivePath, inproc,
                  transport::BackendKind::kInProcess);
BENCHMARK_CAPTURE(BM_LinkIndicationReceivePath, uds,
                  transport::BackendKind::kUds);
BENCHMARK_CAPTURE(BM_LinkIndicationReceivePath, shm,
                  transport::BackendKind::kShm);
BENCHMARK_CAPTURE(BM_PumpBurst, inproc_polled,
                  transport::BackendKind::kInProcess,
                  transport::PumpMode::kPolled);
BENCHMARK_CAPTURE(BM_PumpBurst, inproc_epoll,
                  transport::BackendKind::kInProcess,
                  transport::PumpMode::kEpoll);
BENCHMARK_CAPTURE(BM_PumpBurst, uds_polled, transport::BackendKind::kUds,
                  transport::PumpMode::kPolled);
BENCHMARK_CAPTURE(BM_PumpBurst, uds_epoll, transport::BackendKind::kUds,
                  transport::PumpMode::kEpoll);
BENCHMARK_CAPTURE(BM_PumpBurst, shm_polled, transport::BackendKind::kShm,
                  transport::PumpMode::kPolled);
BENCHMARK_CAPTURE(BM_PumpBurst, shm_epoll, transport::BackendKind::kShm,
                  transport::PumpMode::kEpoll);
BENCHMARK(BM_VarintDecode_Reference);
BENCHMARK(BM_VarintDecode_FastPath);

BENCHMARK_MAIN();
