// Extension bench (paper §4.1): supervised attack-type classification from
// reconstruction-error patterns.
//
// "Different attack instances of the same type exhibit highly similar group
// anomaly patterns with respect to the reconstruction errors ... this
// feature is potentially useful for training a supervised attack
// classifier." We run every attack K times under different seeds, extract
// each instance's anomaly event from the autoencoder's error series, train
// the softmax classifier on a train split, and report the held-out
// confusion matrix.
#include <iostream>
#include <map>

#include "attacks/attack.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/datasets.hpp"
#include "core/evaluation.hpp"
#include "detect/classifier.hpp"

using namespace xsec;

namespace {

std::unique_ptr<attacks::Attack> make_attack(const std::string& id) {
  if (id == "bts_dos") return attacks::make_bts_dos();
  if (id == "blind_dos") return attacks::make_blind_dos();
  if (id == "uplink_id_extraction") return attacks::make_uplink_id_extraction();
  if (id == "downlink_id_extraction")
    return attacks::make_downlink_id_extraction();
  return attacks::make_null_cipher();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const int kInstances = quick ? 4 : 8;  // runs per attack type
  const int kTestInstances = quick ? 1 : 2;

  std::cout << "=== Attack-type classification from error patterns "
               "(paper §4.1 extension) ===\n\n";

  // Train the detector once on benign data.
  std::cout << "Training the autoencoder on benign traffic...\n";
  core::LabeledDatasets datasets =
      core::collect_all(/*seed=*/2024, quick ? 45 : 90, 0);
  core::EvalConfig eval;
  eval.detector.epochs = quick ? 12 : 25;
  detect::FeatureEncoder encoder(eval.features);
  detect::WindowDataset benign = detect::WindowDataset::from_traces(
      datasets.benign, encoder, eval.window_size);
  detect::AutoencoderDetector detector(eval.window_size, encoder.dim(),
                                       eval.detector, eval.ae_hidden);
  detector.fit(benign);

  // Collect K instances per attack type and extract their event patterns.
  const std::vector<std::string> kAttackIds = {
      "bts_dos", "blind_dos", "uplink_id_extraction",
      "downlink_id_extraction", "null_cipher"};
  std::map<std::string, std::vector<std::vector<float>>> patterns_by_class;

  std::cout << "Collecting " << kInstances
            << " instances of each attack...\n";
  for (const std::string& id : kAttackIds) {
    for (int instance = 0; instance < kInstances; ++instance) {
      core::ScenarioConfig config;
      config.testbed.seed = 5000 + static_cast<std::uint64_t>(instance) * 17 +
                            fnv1a(id) % 1000;
      config.traffic.seed = config.testbed.seed ^ 0xabc;
      config.traffic.num_sessions = 6;
      config.traffic.arrival_mean = SimDuration::from_ms(80);
      config.run_time = SimDuration::from_s(3);
      auto attack = make_attack(id);
      mobiflow::Trace trace =
          core::collect_attack(*attack, config, SimTime::from_ms(150));

      auto dataset =
          detect::WindowDataset::from_trace(trace, encoder, eval.window_size);
      auto scores = detector.score(dataset);
      auto labels = dataset.ae_labels();
      // Keep the event overlapping ground truth (the attack instance).
      auto events = detect::extract_events(scores, detector.threshold(), 4);
      const detect::AnomalyEvent* attack_event = nullptr;
      for (const auto& event : events) {
        for (std::size_t w = event.first_window; w <= event.last_window; ++w)
          if (labels[w]) {
            attack_event = &event;
            break;
          }
        if (attack_event) break;
      }
      if (!attack_event) continue;  // attack missed entirely in this run
      patterns_by_class[id].push_back(
          detect::event_pattern(*attack_event, detector.threshold()));
    }
    std::cout << "  " << pad_right(id, 24) << ": "
              << patterns_by_class[id].size() << " events captured\n";
  }

  // Train/test split: last kTestInstances events per class held out.
  std::vector<std::vector<float>> train_x, test_x;
  std::vector<std::size_t> train_y, test_y;
  std::vector<std::string> class_names;
  for (const std::string& id : kAttackIds) class_names.push_back(id);
  for (std::size_t cls = 0; cls < kAttackIds.size(); ++cls) {
    const auto& patterns = patterns_by_class[kAttackIds[cls]];
    if (patterns.size() < 2) {
      std::cout << "WARNING: not enough events for " << kAttackIds[cls]
                << "\n";
      continue;
    }
    std::size_t test_count = std::min<std::size_t>(
        static_cast<std::size_t>(kTestInstances), patterns.size() - 1);
    for (std::size_t i = 0; i < patterns.size(); ++i) {
      if (i >= patterns.size() - test_count) {
        test_x.push_back(patterns[i]);
        test_y.push_back(cls);
      } else {
        train_x.push_back(patterns[i]);
        train_y.push_back(cls);
      }
    }
  }

  detect::ClassifierConfig classifier_config;
  classifier_config.epochs = 400;
  detect::AttackClassifier classifier(class_names,
                                      detect::event_pattern_dim(),
                                      classifier_config);
  double loss = classifier.fit(train_x, train_y);
  std::cout << "\nTrained on " << train_x.size() << " events (CE loss "
            << format_fixed(loss, 3) << "); testing on " << test_x.size()
            << " held-out events.\n\n";

  // Confusion matrix over the held-out events.
  std::vector<std::string> headers = {"True \\ Predicted"};
  for (const auto& name : class_names) headers.push_back(name);
  Table confusion(headers);
  std::vector<std::vector<int>> counts(
      class_names.size(), std::vector<int>(class_names.size(), 0));
  int correct = 0;
  for (std::size_t i = 0; i < test_x.size(); ++i) {
    std::size_t predicted = classifier.predict(test_x[i]);
    ++counts[test_y[i]][predicted];
    if (predicted == test_y[i]) ++correct;
  }
  for (std::size_t r = 0; r < class_names.size(); ++r) {
    std::vector<std::string> row = {class_names[r]};
    for (std::size_t c = 0; c < class_names.size(); ++c)
      row.push_back(std::to_string(counts[r][c]));
    confusion.add_row(std::move(row));
  }
  std::cout << confusion.render() << "\n";
  double accuracy = test_x.empty()
                        ? 0.0
                        : static_cast<double>(correct) /
                              static_cast<double>(test_x.size());
  std::cout << "Held-out classification accuracy: "
            << format_percent(accuracy, 1) << " (" << correct << "/"
            << test_x.size() << ")\n";
  std::cout << "\nPaper shape check: per-type error patterns are separable "
               "enough to classify\nattack types, as §4.1 conjectures from "
               "Figure 4's grouped patterns.\n";
  return accuracy >= 0.6 ? 0 : 1;
}
