// Ablation study over the design choices DESIGN.md calls out:
//   A1: window size N            (paper leaves it implicit; we use 5)
//   A2: threshold percentile     (paper uses 99)
//   A3: feature set              (messages-only vs +identifiers vs full)
//   A4: AE scoring               (per-record max vs whole-window mean)
// Each configuration is evaluated on the same datasets; we report benign
// false-positive rate (accuracy complement) and attack recall/F1.
#include <cmath>
#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/datasets.hpp"
#include "core/evaluation.hpp"

using namespace xsec;

namespace {

struct AblationOutcome {
  double benign_accuracy = 0.0;
  double attack_recall = 0.0;
  double attack_precision = 0.0;
  double attack_f1 = 0.0;
  int events_detected = 0;
  int events_total = 0;
};

/// Evaluates one detector kind on the attack datasets (no benign CV).
AblationOutcome evaluate_kind(const core::LabeledDatasets& datasets,
                              const core::EvalConfig& config,
                              core::ModelKind kind) {
  detect::FeatureEncoder encoder(config.features);
  auto detector = core::make_detector(kind, config.window_size,
                                      encoder.dim(), config);
  if (config.calibration == core::EvalConfig::Calibration::kHeldOutCapture &&
      datasets.benign.size() >= 2) {
    std::vector<mobiflow::Trace> train_captures(datasets.benign.begin(),
                                                datasets.benign.end() - 1);
    detector->fit(detect::WindowDataset::from_traces(train_captures, encoder,
                                                     config.window_size));
    auto held_out = detect::WindowDataset::from_trace(
        datasets.benign.back(), encoder, config.window_size);
    detector->set_threshold(percentile(
        detector->score(held_out), config.detector.threshold_percentile));
  } else {
    detector->fit(detect::WindowDataset::from_traces(
        datasets.benign, encoder, config.window_size));
  }
  dl::Confusion total;
  AblationOutcome outcome;
  for (const auto& attack : datasets.attacks) {
    auto dataset = detect::WindowDataset::from_trace(attack.trace, encoder,
                                                     config.window_size);
    auto scores = detector->score(dataset);
    auto labels = detector->labels(dataset);
    bool detected = false;
    for (std::size_t i = 0; i < scores.size(); ++i) {
      bool flagged = detector->is_anomalous(scores[i]);
      total.add(flagged, labels[i]);
      if (flagged && labels[i]) detected = true;
    }
    ++outcome.events_total;
    if (detected) ++outcome.events_detected;
  }
  outcome.attack_recall = total.recall();
  outcome.attack_precision = total.precision();
  outcome.attack_f1 = total.f1();
  outcome.benign_accuracy = std::nan("");  // no CV in this comparison
  return outcome;
}

/// Ablation evaluation, autoencoder only: benign accuracy from a held-out
/// 20% of the benign windows (cheaper than the Table 2 bench's double
/// k-fold CV — good enough for trend comparison), attack metrics from a
/// model trained on the full benign set.
AblationOutcome evaluate(const core::LabeledDatasets& datasets,
                         const core::EvalConfig& config) {
  detect::FeatureEncoder encoder(config.features);
  detect::WindowDataset benign = detect::WindowDataset::from_traces(
      datasets.benign, encoder, config.window_size);

  // Benign holdout accuracy.
  dl::Matrix all = benign.ae_matrix();
  std::size_t train_rows = all.rows() * 4 / 5;
  dl::Matrix train(train_rows, all.cols());
  dl::Matrix test(all.rows() - train_rows, all.cols());
  for (std::size_t r = 0; r < all.rows(); ++r)
    for (std::size_t c = 0; c < all.cols(); ++c) {
      if (r < train_rows)
        train.at(r, c) = all.at(r, c);
      else
        test.at(r - train_rows, c) = all.at(r, c);
    }
  detect::AutoencoderDetector holdout(config.window_size, encoder.dim(),
                                      config.detector, config.ae_hidden);
  holdout.fit_scaler(train);
  dl::TrainConfig train_config;
  train_config.epochs = config.detector.epochs;
  train_config.batch_size = config.detector.batch_size;
  train_config.learning_rate = config.detector.learning_rate;
  holdout.model().fit(holdout.standardize(train), train_config);
  double threshold = percentile(holdout.window_scores(train),
                                config.detector.threshold_percentile);
  std::size_t false_positives = 0;
  auto held_out_scores = holdout.window_scores(test);
  for (double score : held_out_scores)
    if (score > threshold) ++false_positives;

  AblationOutcome outcome = evaluate_kind(datasets, config,
                                          core::ModelKind::kAutoencoder);
  outcome.benign_accuracy =
      held_out_scores.empty()
          ? std::nan("")
          : 1.0 - static_cast<double>(false_positives) /
                      static_cast<double>(held_out_scores.size());
  return outcome;
}

std::string cell(double v) {
  return std::isnan(v) ? std::string("N/A") : format_percent(v, 1);
}

void add_outcome_row(Table& table, const std::string& variant,
                     const AblationOutcome& outcome) {
  table.add_row({variant, cell(outcome.benign_accuracy),
                 cell(outcome.attack_recall), cell(outcome.attack_precision),
                 cell(outcome.attack_f1),
                 std::to_string(outcome.events_detected) + "/" +
                     std::to_string(outcome.events_total)});
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  std::cout << "=== Ablation study (autoencoder detector) ===\n\n";
  core::LabeledDatasets datasets =
      core::collect_all(/*seed=*/2024, quick ? 45 : 90, quick ? 15 : 24);
  core::EvalConfig base;
  base.detector.epochs = quick ? 10 : 25;
  base.cv_folds = 3;  // CV cost dominates; 3 folds suffice for the trend

  // A1: window size.
  {
    Table table({"Window N", "Benign acc", "Attack recall", "Attack prec",
                 "Attack F1", "Events"});
    for (std::size_t n : {3u, 5u, 8u, 10u}) {
      core::EvalConfig config = base;
      config.window_size = n;
      add_outcome_row(table, std::to_string(n), evaluate(datasets, config));
    }
    std::cout << "A1: sliding window size\n" << table.render() << "\n";
  }

  // A2: threshold percentile.
  {
    Table table({"Threshold pct", "Benign acc", "Attack recall",
                 "Attack prec", "Attack F1", "Events"});
    for (double pct : {90.0, 95.0, 99.0, 99.9}) {
      core::EvalConfig config = base;
      config.detector.threshold_percentile = pct;
      add_outcome_row(table, format_fixed(pct, 1),
                      evaluate(datasets, config));
    }
    std::cout << "A2: detection threshold percentile (paper: 99)\n"
              << table.render() << "\n";
  }

  // A3: feature set.
  {
    Table table({"Features", "Benign acc", "Attack recall", "Attack prec",
                 "Attack F1", "Events"});
    struct Variant {
      const char* name;
      detect::FeatureConfig features;
    };
    std::vector<Variant> variants;
    {
      detect::FeatureConfig messages_only;
      messages_only.identifiers = false;
      messages_only.state = false;
      messages_only.load = false;
      messages_only.timing = false;
      variants.push_back({"messages only", messages_only});
      detect::FeatureConfig with_ids = messages_only;
      with_ids.identifiers = true;
      variants.push_back({"+identifiers", with_ids});
      detect::FeatureConfig with_state = with_ids;
      with_state.state = true;
      variants.push_back({"+state", with_state});
      variants.push_back({"full (+timing,+load)", detect::FeatureConfig{}});
    }
    for (const auto& variant : variants) {
      core::EvalConfig config = base;
      config.features = variant.features;
      add_outcome_row(table, variant.name, evaluate(datasets, config));
    }
    std::cout << "A3: telemetry feature categories (Table 1 groups)\n"
              << table.render() << "\n";
  }

  // A4: AE scoring mode.
  {
    Table table({"AE scoring", "Benign acc", "Attack recall", "Attack prec",
                 "Attack F1", "Events"});
    for (auto mode : {detect::DetectorConfig::AeScore::kMaxRecord,
                      detect::DetectorConfig::AeScore::kMean}) {
      core::EvalConfig config = base;
      config.detector.ae_score = mode;
      add_outcome_row(table,
                      mode == detect::DetectorConfig::AeScore::kMaxRecord
                          ? "per-record max"
                          : "whole-window mean",
                      evaluate(datasets, config));
    }
    std::cout << "A4: window scoring (dilution of single-record anomalies)\n"
              << table.render() << "\n";
  }

  // A5: detector architecture (extension: Kitsune-style ensemble).
  {
    Table table({"Architecture", "Benign acc", "Attack recall",
                 "Attack prec", "Attack F1", "Events"});
    for (core::ModelKind kind :
         {core::ModelKind::kAutoencoder, core::ModelKind::kLstm,
          core::ModelKind::kEnsemble}) {
      add_outcome_row(table, core::to_string(kind),
                      evaluate_kind(datasets, base, kind));
    }
    std::cout << "A5: detector architecture (attack datasets only; "
                 "Ensemble-AE is the Kitsune-style extension)\n"
              << table.render() << "\n";
  }

  // A6: threshold calibration source (paper: training set).
  {
    Table table({"Calibration", "Benign acc", "Attack recall", "Attack prec",
                 "Attack F1", "Events"});
    for (auto mode : {core::EvalConfig::Calibration::kTrainingSet,
                      core::EvalConfig::Calibration::kHeldOutCapture}) {
      core::EvalConfig config = base;
      config.calibration = mode;
      add_outcome_row(
          table,
          mode == core::EvalConfig::Calibration::kTrainingSet
              ? "training set (paper)"
              : "held-out capture",
          evaluate_kind(datasets, config, core::ModelKind::kAutoencoder));
    }
    std::cout << "A6: threshold calibration source (attack datasets, AE)\n"
              << table.render() << "\n";
  }

  std::cout << "Expected trends: recall peaks near N=5; higher percentile "
               "trades recall for\nbenign accuracy; identifier/state "
               "features are necessary for the identity and\ndowngrade "
               "attacks; per-record max scoring dominates whole-window "
               "mean.\n";
  return 0;
}
