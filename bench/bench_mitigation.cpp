// Mitigation micro-benchmarks (google-benchmark): the closed loop's cost
// per decision. The near-RT RIC control budget is 10ms-1s (paper §2.1);
// these benches substantiate that policy matching, the Control codec, and
// the full verdict -> issue -> rollback cycle sit far inside it. No model
// training: verdicts are fabricated and published straight on the router,
// the same technique the mitigation unit tests use.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "llm/analyzer_xapp.hpp"
#include "mitigate/policy.hpp"
#include "mitigate/xapp.hpp"
#include "mobiflow/agent.hpp"
#include "oran/a1.hpp"
#include "oran/router.hpp"

using namespace xsec;

namespace {

llm::IncidentVerdict sample_verdict(bool agrees) {
  llm::IncidentVerdict v;
  v.incident_id = 7;
  v.node_id = 1001;
  v.source_ue = 42;
  v.detector = "autoencoder";
  v.score = 2.0;
  v.threshold = 1.0;
  v.llm_agrees = agrees;
  v.candidate_attacks = {"BTS resource depletion DoS",
                         "Blind DoS via S-TMSI replay"};
  v.suspect_tmsis = {0x123456789AULL, 0xBEEF5EED01ULL};
  v.flagged_at_us = 1'000'000;
  return v;
}

void BM_ControlEncodeDecode(benchmark::State& state) {
  mobiflow::ControlCommand cmd;
  cmd.action = mobiflow::ControlCommand::Action::kRateLimit;
  cmd.rate_limit = 4;
  cmd.rate_window_ms = 100;
  for (auto _ : state) {
    Bytes wire = mobiflow::encode_control(cmd);
    auto decoded = mobiflow::decode_control(wire);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_ControlEncodeDecode);

void BM_VerdictSerializeDeserialize(benchmark::State& state) {
  llm::IncidentVerdict v = sample_verdict(true);
  for (auto _ : state) {
    Bytes wire = v.serialize();
    auto decoded = llm::IncidentVerdict::deserialize(wire);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_VerdictSerializeDeserialize);

void BM_PolicyMatchClassified(benchmark::State& state) {
  // The per-verdict decision: first-match scan over the default table with
  // case-folded substring class matching.
  mitigate::MitigationPolicy policy =
      mitigate::MitigationPolicy::default_policy();
  std::vector<std::string> classes = {"BTS resource depletion DoS",
                                      "Blind DoS via S-TMSI replay"};
  for (auto _ : state) {
    const mitigate::PolicyRule* rule =
        policy.match(mitigate::RuleStage::kClassified, classes, 2.0, 1.0);
    benchmark::DoNotOptimize(rule);
  }
}
BENCHMARK(BM_PolicyMatchClassified);

void BM_MitigationIssueRollbackCycle(benchmark::State& state) {
  // One full recovery cycle per iteration: a confirming verdict issues a
  // rate limit over E2 Control (wire encode, transport, agent dedup, gNB
  // apply, ack), then false-positive evidence rolls it back. The sim
  // advances 25ms per cycle so ack-timeout timers drain instead of piling
  // up in the event queue.
  core::PipelineConfig config;
  config.mitigation.enabled = true;
  config.mitigation.fast_path = false;  // verdict-driven only
  core::Pipeline pipeline(config);
  pipeline.run_for(SimDuration::from_ms(10));
  // A budget that never exhausts: the bench measures steady-state cycles,
  // not the storm brake.
  oran::A1Policy budget;
  budget.policy_type = oran::kPolicyMitigation;
  budget.policy_id = "bench-budget";
  budget.content["max_actions_per_source"] = "1000000000";
  pipeline.ric().apply_policy("mitigation", budget);

  Bytes confirm = sample_verdict(true).serialize();
  Bytes benign = sample_verdict(false).serialize();
  std::uint64_t node = pipeline.node_id(0);
  benchmark::DoNotOptimize(node);
  for (auto _ : state) {
    oran::RoutedMessage msg;
    msg.mtype = oran::kMtIncidentVerdict;
    msg.source = "bench";
    msg.payload = confirm;
    pipeline.ric().router().publish(msg);
    msg.payload = benign;
    pipeline.ric().router().publish(msg);
    pipeline.run_for(SimDuration::from_ms(25));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["actions"] = static_cast<double>(
      pipeline.mitigation()->actions_issued());
  state.counters["rollbacks"] = static_cast<double>(
      pipeline.mitigation()->rollbacks());
}
BENCHMARK(BM_MitigationIssueRollbackCycle);

}  // namespace

BENCHMARK_MAIN();
