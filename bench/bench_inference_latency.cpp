// Inference latency (google-benchmark): per-window scoring cost of both
// detectors and the SimLLM analysis. The paper's architecture requires the
// pre-filter (MobiWatch) to run inside the near-RT loop (10ms-1s) and
// motivates the LLM stage being invoked only on flagged windows; these
// numbers quantify that asymmetry.
#include <benchmark/benchmark.h>

#include "detect/scorer.hpp"
#include "llm/client.hpp"
#include "llm/prompt.hpp"

using namespace xsec;

namespace {

mobiflow::Record flow_record(const char* proto, const char* msg,
                             const char* dir, std::uint16_t rnti,
                             std::uint64_t ue, std::int64_t t) {
  namespace vocab = mobiflow::vocab;
  mobiflow::Record r;
  r.protocol = vocab::protocol_or_unknown(proto);
  r.msg = vocab::msg_or_unknown(msg);
  r.direction = std::string_view(dir) == "DL" ? vocab::Direction::kDl
                                              : vocab::Direction::kUl;
  r.rnti = rnti;
  r.ue_id = ue;
  r.timestamp_us = t;
  return r;
}

mobiflow::Trace synthetic_benign(std::size_t sessions) {
  mobiflow::Trace trace;
  std::int64_t t = 0;
  for (std::size_t s = 0; s < sessions; ++s) {
    std::uint16_t rnti = static_cast<std::uint16_t>(0x100 + s);
    std::uint64_t ue = s + 1;
    const char* flow[][3] = {
        {"RRC", "RRCSetupRequest", "UL"},
        {"RRC", "RRCSetup", "DL"},
        {"RRC", "RRCSetupComplete", "UL"},
        {"NAS", "RegistrationRequest", "UL"},
        {"NAS", "AuthenticationRequest", "DL"},
        {"NAS", "AuthenticationResponse", "UL"},
        {"NAS", "RegistrationAccept", "DL"},
        {"RRC", "RRCRelease", "DL"},
    };
    for (const auto& step : flow)
      trace.add(flow_record(step[0], step[1], step[2], rnti, ue, t += 2500));
  }
  return trace;
}

struct Trained {
  detect::FeatureEncoder encoder;
  std::unique_ptr<detect::AutoencoderDetector> ae;
  std::unique_ptr<detect::LstmDetector> lstm;
  std::vector<std::vector<float>> rows;
  dl::Matrix feats;  // contiguous encoded rows for the batched benches

  Trained() {
    auto dataset =
        detect::WindowDataset::from_trace(synthetic_benign(50), encoder, 5);
    detect::DetectorConfig config;
    config.epochs = 8;
    ae = std::make_unique<detect::AutoencoderDetector>(5, encoder.dim(),
                                                       config);
    ae->fit(dataset);
    lstm = std::make_unique<detect::LstmDetector>(5, encoder.dim(), config);
    lstm->fit(dataset);
    rows.clear();
    for (std::size_t i = 0; i < 6; ++i)
      rows.emplace_back(dataset.features().row(i),
                        dataset.features().row(i) + dataset.features().cols());
    feats = dataset.features();
  }
};

Trained& trained() {
  static Trained instance;
  return instance;
}

void BM_AutoencoderScoreWindow(benchmark::State& state) {
  auto& t = trained();
  std::vector<std::vector<float>> window(t.rows.begin(), t.rows.begin() + 5);
  for (auto _ : state)
    benchmark::DoNotOptimize(t.ae->score_window(window));
}
BENCHMARK(BM_AutoencoderScoreWindow);

void BM_LstmScoreWindow(benchmark::State& state) {
  auto& t = trained();
  for (auto _ : state)
    benchmark::DoNotOptimize(t.lstm->score_window(t.rows));
}
BENCHMARK(BM_LstmScoreWindow);

void BM_AutoencoderScoreWindowsBatched(benchmark::State& state) {
  // Batched sliding-window scoring (the MobiWatch steady-state path).
  // items_per_second = windows/s; per-window time = real_time / windows.
  auto& t = trained();
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> scores(n);
  for (auto _ : state) {
    t.ae->score_windows(t.feats.row(0), t.feats.cols(), 5, n, scores.data());
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AutoencoderScoreWindowsBatched)->Arg(1)->Arg(16)->Arg(32);

void BM_LstmScoreWindowsBatched(benchmark::State& state) {
  auto& t = trained();
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> scores(n);
  for (auto _ : state) {
    t.lstm->score_windows(t.feats.row(0), t.feats.cols(), 6, n,
                          scores.data());
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LstmScoreWindowsBatched)->Arg(1)->Arg(16)->Arg(32);

void BM_FeatureEncodePlusScore(benchmark::State& state) {
  // The full per-record inference path MobiWatch runs in the nRT loop.
  auto& t = trained();
  detect::EncodeContext ctx;
  mobiflow::Trace trace = synthetic_benign(2);
  std::vector<std::vector<float>> recent;
  for (auto _ : state) {
    for (const auto& entry : trace.entries()) {
      recent.push_back(t.encoder.encode(entry.record, ctx));
      if (recent.size() > 5) recent.erase(recent.begin());
      if (recent.size() == 5)
        benchmark::DoNotOptimize(t.ae->score_window(recent));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_FeatureEncodePlusScore);

void BM_LlmAnalysisOfFlaggedWindow(benchmark::State& state) {
  // Prompt construction + expert analysis for one flagged window; orders
  // of magnitude heavier than the pre-filter, which is exactly why the
  // paper chains them instead of running the LLM on everything.
  mobiflow::Trace window = synthetic_benign(3);
  llm::PromptTemplate prompt_template;
  llm::SimLlmClient client;
  for (auto _ : state) {
    llm::LlmRequest request{"ChatGPT-4o", prompt_template.build(window)};
    benchmark::DoNotOptimize(client.query(request));
  }
}
BENCHMARK(BM_LlmAnalysisOfFlaggedWindow);

void BM_DetectorTraining(benchmark::State& state) {
  // Offline/SMO-side cost: full AE training on a benign dataset.
  auto dataset = detect::WindowDataset::from_trace(synthetic_benign(50),
                                                   trained().encoder, 5);
  for (auto _ : state) {
    detect::DetectorConfig config;
    config.epochs = static_cast<int>(state.range(0));
    detect::AutoencoderDetector detector(5, trained().encoder.dim(), config);
    detector.fit(dataset);
    benchmark::DoNotOptimize(detector.threshold());
  }
}
BENCHMARK(BM_DetectorTraining)->Arg(1)->Arg(5)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
