// Reproduces Table 1: the MobiFlow security telemetry schema, with a live
// sample of each field collected from an actual testbed run.
#include <iostream>

#include "common/table.hpp"
#include "core/datasets.hpp"

using namespace xsec;

int main() {
  std::cout << "=== Table 1: MobiFlow security telemetry ===\n\n";

  Table schema({"Category", "Telemetry", "Description"});
  schema.add_row({"Message", "RRC Message",
                  "Uplink / Downlink Radio Resource Control (RRC) protocol "
                  "message [TS 38.331]"});
  schema.add_row({"Message", "NAS Message",
                  "Uplink / Downlink Non-Access-Stratum (NAS) protocol "
                  "message [TS 24.501]"});
  schema.add_separator();
  schema.add_row({"Identifier", "RNTI", "Radio Network Temporary Identifier"});
  schema.add_row(
      {"Identifier", "S-TMSI", "Temporary Mobile Subscriber Identity"});
  schema.add_row(
      {"Identifier", "SUPI", "Subscription Permanent Identifier"});
  schema.add_separator();
  schema.add_row(
      {"State", "Cipher_alg", "Ciphering algorithm employed by the UE"});
  schema.add_row(
      {"State", "Integrity_alg", "Integrity algorithm employed by the UE"});
  schema.add_row(
      {"State", "Establish_cause", "RRC establishment cause from the UE"});
  std::cout << schema.render() << "\n";

  // Live sample: one benign session's telemetry, field by field.
  std::cout << "Live sample (one benign session, collected via the F1AP/NGAP "
               "taps -> RIC agent):\n\n";
  core::ScenarioConfig config;
  config.traffic.num_sessions = 1;
  config.traffic.seed = 12;
  config.run_time = SimDuration::from_s(2);
  mobiflow::Trace trace = core::collect_benign(config);

  Table sample({"t (us)", "Proto", "Message", "Dir", "RNTI", "S-TMSI",
                "Cipher", "Integrity", "Cause"});
  for (const auto& entry : trace.entries()) {
    const mobiflow::Record& r = entry.record;
    char rnti[8];
    std::snprintf(rnti, sizeof(rnti), "0x%04X", r.rnti);
    sample.add_row({std::to_string(r.timestamp_us), r.protocol, r.msg,
                    r.direction, rnti,
                    r.s_tmsi ? std::to_string(r.s_tmsi) : "-",
                    r.cipher_alg.empty() ? "-" : r.cipher_alg,
                    r.integrity_alg.empty() ? "-" : r.integrity_alg,
                    r.establishment_cause.empty() ? "-"
                                                  : r.establishment_cause});
  }
  std::cout << sample.render() << "\n";
  std::cout << trace.size()
            << " records collected for the session; schema covers every "
               "Table 1 field.\n";
  return trace.size() >= 10 ? 0 : 1;
}
