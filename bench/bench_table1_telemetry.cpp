// Reproduces Table 1: the MobiFlow security telemetry schema, with a live
// sample of each field collected from an actual testbed run.
#include <chrono>
#include <iostream>

#include "common/table.hpp"
#include "core/datasets.hpp"

using namespace xsec;

int main() {
  std::cout << "=== Table 1: MobiFlow security telemetry ===\n\n";

  Table schema({"Category", "Telemetry", "Description"});
  schema.add_row({"Message", "RRC Message",
                  "Uplink / Downlink Radio Resource Control (RRC) protocol "
                  "message [TS 38.331]"});
  schema.add_row({"Message", "NAS Message",
                  "Uplink / Downlink Non-Access-Stratum (NAS) protocol "
                  "message [TS 24.501]"});
  schema.add_separator();
  schema.add_row({"Identifier", "RNTI", "Radio Network Temporary Identifier"});
  schema.add_row(
      {"Identifier", "S-TMSI", "Temporary Mobile Subscriber Identity"});
  schema.add_row(
      {"Identifier", "SUPI", "Subscription Permanent Identifier"});
  schema.add_separator();
  schema.add_row(
      {"State", "Cipher_alg", "Ciphering algorithm employed by the UE"});
  schema.add_row(
      {"State", "Integrity_alg", "Integrity algorithm employed by the UE"});
  schema.add_row(
      {"State", "Establish_cause", "RRC establishment cause from the UE"});
  std::cout << schema.render() << "\n";

  // Live sample: one benign session's telemetry, field by field.
  std::cout << "Live sample (one benign session, collected via the F1AP/NGAP "
               "taps -> RIC agent):\n\n";
  core::ScenarioConfig config;
  config.traffic.num_sessions = 1;
  config.traffic.seed = 12;
  config.run_time = SimDuration::from_s(2);
  mobiflow::Trace trace = core::collect_benign(config);

  Table sample({"t (us)", "Proto", "Message", "Dir", "RNTI", "S-TMSI",
                "Cipher", "Integrity", "Cause"});
  for (const auto& entry : trace.entries()) {
    const mobiflow::Record& r = entry.record;
    char rnti[8];
    std::snprintf(rnti, sizeof(rnti), "0x%04X", r.rnti);
    sample.add_row({std::to_string(r.timestamp_us),
                    std::string(r.protocol_name()), std::string(r.msg_name()),
                    std::string(r.direction_name()), rnti,
                    r.s_tmsi ? std::to_string(r.s_tmsi) : "-",
                    r.cipher_alg == mobiflow::vocab::CipherAlg::kNone
                        ? "-"
                        : std::string(r.cipher_name()),
                    r.integrity_alg == mobiflow::vocab::IntegrityAlg::kNone
                        ? "-"
                        : std::string(r.integrity_name()),
                    r.establishment_cause ==
                            mobiflow::vocab::EstablishmentCause::kNone
                        ? "-"
                        : std::string(r.cause_name())});
  }
  std::cout << sample.render() << "\n";
  std::cout << trace.size()
            << " records collected for the session; schema covers every "
               "Table 1 field.\n\n";

  // Telemetry wire throughput: how fast the agent->xApp path serialises
  // and re-parses this schema. Run enough round trips to get a stable
  // per-record figure (the whole loop stays well under a second).
  std::vector<Bytes> wires;
  wires.reserve(trace.size());
  for (const auto& entry : trace.entries())
    wires.push_back(entry.record.to_kv_bytes());
  std::size_t wire_bytes = 0;
  for (const auto& w : wires) wire_bytes += w.size();

  constexpr int kRounds = 20'000;
  std::size_t decoded = 0;
  auto start = std::chrono::steady_clock::now();
  for (int round = 0; round < kRounds; ++round) {
    for (const auto& entry : trace.entries()) {
      Bytes wire = entry.record.to_kv_bytes();
      auto back = mobiflow::Record::from_kv_bytes(wire);
      if (back.ok()) ++decoded;
    }
  }
  auto elapsed = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  double records = static_cast<double>(trace.size()) * kRounds;
  std::cout << "Telemetry wire throughput (encode + decode round trip):\n"
            << "  " << static_cast<std::size_t>(records / elapsed / 1000.0)
            << "k records/s  ("
            << static_cast<double>(wire_bytes) / trace.size()
            << " bytes/record on the wire, " << decoded << "/"
            << static_cast<std::size_t>(records) << " decoded)\n";
  return trace.size() >= 10 && decoded == static_cast<std::size_t>(records)
             ? 0
             : 1;
}
