// Scale sweep (google-benchmark): one million simulated UEs streamed
// through the sharded per-source window engine at 1, 2, 4, and 8 RIC
// shards. Measures end-to-end indication throughput (ingest -> per-source
// assembly -> shard dispatch -> batched scoring -> apply) and emits
// per-shard window throughput plus the batched-scoring latency log2
// histogram through the observability registry, exactly as the production
// engine does (per_shard_metrics + time_scoring).
//
// cpu_time is process CPU (all worker threads), the machine-independent
// cost gated by scripts/bench_diff.py; real_time shows the wall-clock
// speedup, which requires as many free cores as shards — on a single-core
// host the sweep quantifies sharding overhead instead (determinism is
// asserted by the test suite either way).
//
// XSEC_BENCH_UES overrides the UE count (default 1'000'000) for quick
// local runs; the committed baseline is the full sweep.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "detect/features.hpp"
#include "detect/scorer.hpp"
#include "detect/source_windows.hpp"
#include "obs/trace.hpp"

using namespace xsec;

namespace {

constexpr std::size_t kNodes = 256;
constexpr std::uint64_t kFirstNode = 1001;

std::size_t configured_ues() {
  if (const char* env = std::getenv("XSEC_BENCH_UES")) {
    char* end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && v >= 1000) return static_cast<std::size_t>(v);
  }
  return 1'000'000;
}

mobiflow::Record flow_record(std::size_t i) {
  namespace vocab = mobiflow::vocab;
  // The benign registration flow, round-robined across sources: message
  // mix and timing are realistic but the content is synthetic.
  static const struct {
    const char* proto;
    const char* msg;
    vocab::Direction dir;
  } kFlow[] = {
      {"RRC", "RRCSetupRequest", vocab::Direction::kUl},
      {"RRC", "RRCSetup", vocab::Direction::kDl},
      {"RRC", "RRCSetupComplete", vocab::Direction::kUl},
      {"NAS", "RegistrationRequest", vocab::Direction::kUl},
      {"NAS", "AuthenticationRequest", vocab::Direction::kDl},
      {"NAS", "AuthenticationResponse", vocab::Direction::kUl},
      {"NAS", "RegistrationAccept", vocab::Direction::kDl},
      {"RRC", "RRCRelease", vocab::Direction::kDl},
  };
  const auto& step = kFlow[(i / kNodes) % 8];
  mobiflow::Record r;
  r.protocol = vocab::protocol_or_unknown(step.proto);
  r.msg = vocab::msg_or_unknown(step.msg);
  r.direction = step.dir;
  r.rnti = static_cast<std::uint16_t>(100 + (i / kNodes) % 1024);
  r.ue_id = 1 + i;  // every record is a distinct simulated UE
  r.timestamp_us = static_cast<std::int64_t>(i) * 20;
  return r;
}

/// One trained detector shared by every sweep config; the engine clones a
/// private inference replica per shard. The threshold is pushed out of
/// reach so the sweep measures the scoring path, not incident assembly.
std::shared_ptr<detect::AnomalyDetector> scoring_detector() {
  static std::shared_ptr<detect::AnomalyDetector> instance = [] {
    detect::FeatureEncoder encoder;
    mobiflow::Trace trace;
    std::int64_t t = 0;
    for (std::size_t i = 0; i < 400; ++i) {
      mobiflow::Record r = flow_record(i * kNodes);
      r.timestamp_us = t += 2000;
      trace.add(r);
    }
    auto dataset = detect::WindowDataset::from_trace(trace, encoder, 5);
    detect::DetectorConfig config;
    config.epochs = 6;
    auto detector = std::make_shared<detect::AutoencoderDetector>(
        5, encoder.dim(), config, std::vector<std::size_t>{32, 16});
    detector->fit(dataset);
    detector->set_threshold(1e9);
    return detector;
  }();
  return instance;
}

void BM_ScaleSweep(benchmark::State& state) {
  const std::size_t shards = static_cast<std::size_t>(state.range(0));
  const std::size_t ues = configured_ues();
  auto detector = scoring_detector();

  std::uint64_t windows = 0;
  std::uint64_t score_ns_sum = 0, score_batches = 0;
  std::vector<std::uint64_t> shard_windows(shards, 0);

  for (auto _ : state) {
    obs::Observability obs;
    detect::SourceWindowConfig config;
    config.shards = shards;
    config.flush_records = 16384;  // one barrier amortized over ~64
                                   // windows per source
    config.batch_slack = 512;
    config.per_shard_metrics = true;
    config.time_scoring = true;
    detect::SourceWindowEngine engine(config);
    engine.set_obs_provider([&obs]() { return &obs; });
    engine.install(detector, detect::FeatureEncoder());
    for (std::size_t i = 0; i < ues; ++i)
      engine.ingest(kFirstNode + (i % kNodes), flow_record(i));
    engine.flush();

    obs::MetricsRegistry& m = obs.metrics;
    windows = m.counter("mobiwatch.windows_scored").value();
    score_ns_sum = m.histogram("dl.score_ns").sum();
    score_batches = m.histogram("dl.score_ns").count();
    for (std::size_t k = 0; k < shards; ++k)
      shard_windows[k] =
          m.counter("mobiwatch.shard" + std::to_string(k) + ".windows_scored")
              .value();
  }

  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * ues));
  state.counters["ues"] = static_cast<double>(ues);
  state.counters["windows"] = static_cast<double>(windows);
  state.counters["score_us_per_batch"] =
      score_batches == 0
          ? 0.0
          : static_cast<double>(score_ns_sum) / 1e3 /
                static_cast<double>(score_batches);
  for (std::size_t k = 0; k < shards; ++k)
    state.counters["shard" + std::to_string(k) + "_windows"] =
        static_cast<double>(shard_windows[k]);

  // Per-shard summary on stderr (stdout may be the JSON report).
  std::cerr << "bench_scale shards=" << shards << " ues=" << ues
            << " windows=" << windows << " per-shard:";
  for (std::size_t k = 0; k < shards; ++k)
    std::cerr << " " << shard_windows[k];
  std::cerr << "\n";
}

}  // namespace

BENCHMARK(BM_ScaleSweep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->MeasureProcessCPUTime()
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
