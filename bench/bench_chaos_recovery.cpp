// Chaos-recovery bench: how fast and how completely the E2 telemetry path
// heals under injected transport faults.
//
// Two experiments, both on the live Figure 3 pipeline:
//   B1: telemetry survival vs. random indication loss/dup/reorder — how
//       much of the lost telemetry the NACK path claws back, and how much
//       is converted into explicit gaps instead of silent loss.
//   B2: recovery latency after a hard link-down epoch — simulated time
//       from link-up until (a) the agent's E2 setup is re-established and
//       (b) MobiWatch sees fresh telemetry again, measured by stepping the
//       simulation in small increments and polling the counters.
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "sim/traffic.hpp"

using namespace xsec;

namespace {

std::unique_ptr<sim::BenignTrafficGenerator> schedule_traffic(
    core::Pipeline& pipeline) {
  sim::TrafficConfig traffic;
  traffic.num_sessions = 40;
  traffic.arrival_mean = SimDuration::from_ms(110);
  traffic.seed = 99;
  auto generator = std::make_unique<sim::BenignTrafficGenerator>(
      &pipeline.testbed(), traffic);
  generator->schedule_all();
  return generator;
}

std::string pct(double value) {
  std::ostringstream out;
  out.precision(1);
  out << std::fixed << value * 100.0 << "%";
  return out.str();
}

void loss_sweep() {
  Table table({"loss prob", "dropped", "NACKs", "recovered", "gaps",
               "records seen", "seen/collected"});
  for (double loss : {0.0, 0.02, 0.05, 0.10, 0.20}) {
    core::PipelineConfig config;
    config.fault_plan.drop_probability = loss;
    config.fault_plan.reorder_probability = loss;
    config.fault_plan.duplicate_probability = loss / 2.0;
    config.fault_plan.seed = 0x5EED;
    core::Pipeline pipeline(config);
    auto traffic = schedule_traffic(pipeline);
    pipeline.run_for(SimDuration::from_s(5));
    pipeline.finalize();
    core::PipelineStats stats = pipeline.stats();
    double survival =
        stats.records_collected == 0
            ? 0.0
            : static_cast<double>(stats.records_seen) /
                  static_cast<double>(stats.records_collected);
    table.add_row({pct(loss), std::to_string(stats.frames_dropped),
                   std::to_string(stats.nacks_sent),
                   std::to_string(stats.indications_recovered),
                   std::to_string(stats.gaps_detected),
                   std::to_string(stats.records_seen), pct(survival)});
  }
  std::cout << "B1: telemetry survival vs. injected loss (5 s benign run)\n"
            << table.render() << "\n";
}

void outage_sweep() {
  Table table({"outage", "reconnect attempts", "setup latency",
               "telemetry latency", "records dropped"});
  for (std::int64_t outage_ms : {200, 500, 1000, 2000}) {
    core::PipelineConfig config;
    SimTime down_at = SimTime::from_ms(1000);
    config.fault_plan.link_epochs = {
        {down_at, SimDuration::from_ms(static_cast<double>(outage_ms))}};
    config.fault_plan.seed = 0x5EED;
    core::Pipeline pipeline(config);
    auto traffic = schedule_traffic(pipeline);

    SimTime up_at = down_at + SimDuration::from_ms(
                                  static_cast<double>(outage_ms));
    pipeline.run_for(up_at - SimTime{0});  // run exactly until link-up
    std::size_t records_before = pipeline.mobiwatch().records_seen();

    // Poll in 5 ms steps for the two recovery milestones.
    std::int64_t setup_latency_us = -1;
    std::int64_t telemetry_latency_us = -1;
    const SimDuration step = SimDuration::from_ms(5);
    for (int i = 0; i < 1000; ++i) {
      pipeline.run_for(step);
      SimTime now = pipeline.testbed().now();
      if (setup_latency_us < 0 && pipeline.agent().subscribed())
        setup_latency_us = now.us - up_at.us;
      if (pipeline.mobiwatch().records_seen() > records_before) {
        telemetry_latency_us = now.us - up_at.us;
        break;
      }
    }
    pipeline.finalize();
    auto fmt_ms = [](std::int64_t us) {
      return us < 0 ? std::string("n/a")
                    : std::to_string(us / 1000) + " ms";
    };
    table.add_row({std::to_string(outage_ms) + " ms",
                   std::to_string(pipeline.agent().reconnect_attempts()),
                   fmt_ms(setup_latency_us), fmt_ms(telemetry_latency_us),
                   std::to_string(pipeline.stats().records_dropped_outage)});
  }
  std::cout << "B2: recovery latency after a link-down epoch at t=1 s\n"
            << "    (latencies are simulated time from link-up; backoff "
               "base 100 ms)\n"
            << table.render() << "\n";
}

}  // namespace

int main() {
  loss_sweep();
  outage_sweep();
  return 0;
}
