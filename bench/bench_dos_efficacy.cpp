// DoS efficacy and defence sweep (extra figure B-4).
//
// Quantifies the motivation behind the paper's closed-loop vision: how much
// service a BTS DoS of increasing intensity denies to legitimate
// subscribers, and how much of it the 6G-XSec loop (detect -> explain ->
// RIC Control release of stale contexts) recovers. One row per attack
// intensity, columns for the undefended and defended cell.
#include <iostream>

#include "attacks/attack.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/datasets.hpp"
#include "core/evaluation.hpp"
#include "core/pipeline.hpp"
#include "sim/traffic.hpp"

using namespace xsec;

namespace {

struct Outcome {
  std::size_t registered = 0;
  std::size_t rejected = 0;
  std::size_t releases = 0;
};

Outcome run_cell(std::shared_ptr<detect::AnomalyDetector> detector,
                 const core::EvalConfig& eval, int attack_connections,
                 bool defended) {
  core::PipelineConfig config;
  config.analyzer.model = "ChatGPT-4o";
  config.analyzer.auto_remediate = defended;
  // A small private cell with slow GC/core timers (see dos_detection).
  config.testbed.gnb.max_ue_contexts = 12;
  config.testbed.gnb.context_setup_timeout = SimDuration::from_s(2);
  config.testbed.amf.procedure_timeout = SimDuration::from_s(2);
  core::Pipeline pipeline(config);
  if (defended)
    pipeline.install_detector(detector,
                              detect::FeatureEncoder(eval.features));

  sim::TrafficConfig traffic;
  traffic.num_sessions = 18;
  traffic.arrival_mean = SimDuration::from_ms(50);
  traffic.seed = 77;
  sim::BenignTrafficGenerator generator(&pipeline.testbed(), traffic);
  generator.schedule_all();

  if (attack_connections > 0) {
    auto attack =
        attacks::make_bts_dos(attack_connections, SimDuration::from_ms(4));
    attack->launch(pipeline.testbed(), SimTime::from_ms(120));
  }
  pipeline.run_for(SimDuration::from_s(6));
  pipeline.finalize();

  Outcome outcome;
  outcome.registered = pipeline.testbed().amf().registered_count();
  outcome.rejected = pipeline.testbed().gnb().rejected_connections();
  outcome.releases = pipeline.analyzer().remediations_issued();
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  std::cout << "=== BTS DoS efficacy vs. closed-loop defence (B-4) ===\n\n";
  std::cout << "Training the detector on benign traffic...\n";
  core::ScenarioConfig benign_config;
  benign_config.traffic.num_sessions = quick ? 30 : 60;
  benign_config.traffic.seed = 21;
  benign_config.traffic.arrival_mean = SimDuration::from_ms(60);
  benign_config.run_time = SimDuration::from_s(8);
  core::EvalConfig eval;
  eval.detector.epochs = quick ? 12 : 25;
  auto detector = core::train_detector(core::ModelKind::kAutoencoder,
                                       core::collect_benign(benign_config),
                                       eval);

  Table table({"Attack conns", "Undefended reg", "Undefended rej",
               "Defended reg", "Defended rej", "RIC releases"});
  std::vector<int> intensities = quick ? std::vector<int>{0, 12, 20}
                                       : std::vector<int>{0, 6, 12, 20, 28};
  for (int intensity : intensities) {
    Outcome undefended = run_cell(detector, eval, intensity, false);
    Outcome defended = run_cell(detector, eval, intensity, true);
    table.add_row({std::to_string(intensity),
                   std::to_string(undefended.registered) + "/18",
                   std::to_string(undefended.rejected),
                   std::to_string(defended.registered) + "/18",
                   std::to_string(defended.rejected),
                   std::to_string(defended.releases)});
    std::cout << "  intensity " << intensity << " done\n";
  }
  std::cout << "\n" << table.render() << "\n";
  std::cout << "Shape check: denial grows with attack intensity on the "
               "undefended cell; the\nclosed loop recovers registrations by "
               "releasing the flood's stale contexts.\n";
  write_file("results/dos_efficacy.csv", table.to_csv());
  std::cout << "\nCSV written to results/dos_efficacy.csv\n";
  return 0;
}
