#include "core/pipeline.hpp"

#include "common/log.hpp"

namespace xsec::core {

Pipeline::Pipeline(PipelineConfig config) : config_(std::move(config)) {
  testbed_ = std::make_unique<sim::Testbed>(config_.testbed);
  ric_ = std::make_unique<oran::NearRtRic>();

  // One RIC agent (E2 node) per cell site.
  for (std::size_t site = 0; site < testbed_->cell_count(); ++site) {
    mobiflow::AgentHooks hooks;
    hooks.now = [this] { return testbed_->now(); };
    hooks.schedule = [this](SimDuration d, std::function<void()> fn) {
      testbed_->queue().schedule_after(d, std::move(fn));
    };
    hooks.to_ric = [this](std::uint64_t node_id, Bytes wire) {
      // E2 messages cross the RIC's transport with a small delay.
      testbed_->queue().schedule_after(
          SimDuration::from_ms(1), [this, node_id, w = std::move(wire)] {
            ric_->from_node(node_id, w);
          });
    };
    hooks.apply_control = [this, site](const mobiflow::ControlCommand& cmd) {
      ran::Gnb& gnb = testbed_->gnb(site);
      switch (cmd.action) {
        case mobiflow::ControlCommand::Action::kReleaseUe:
          return gnb.force_release(ran::Rnti{cmd.rnti});
        case mobiflow::ControlCommand::Action::kReleaseStale:
          return gnb.release_stale_contexts(
                     SimDuration::from_ms(cmd.stale_age_ms)) > 0;
        case mobiflow::ControlCommand::Action::kBlockTmsi:
          gnb.block_tmsi(cmd.s_tmsi);
          return true;
      }
      return false;
    };
    auto agent = std::make_unique<mobiflow::RicAgent>(
        config_.e2_node_id + site, std::move(hooks));
    agent->attach(testbed_->taps(site));
    std::uint64_t node_id = ric_->connect_node(agent.get());
    if (node_id == 0)
      XSEC_LOG_ERROR("pipeline", "E2 setup failed for agent of cell ", site);
    node_ids_.push_back(node_id);
    agents_.push_back(std::move(agent));
  }

  auto mobiwatch = std::make_unique<detect::MobiWatchXapp>(config_.mobiwatch);
  mobiwatch_ = mobiwatch.get();
  ric_->register_xapp(std::move(mobiwatch));

  if (!config_.llm_client)
    config_.llm_client = std::make_shared<llm::SimLlmClient>();
  auto analyzer = std::make_unique<llm::LlmAnalyzerXapp>(config_.analyzer,
                                                         config_.llm_client);
  analyzer_ = analyzer.get();
  ric_->register_xapp(std::move(analyzer));
}

}  // namespace xsec::core
