#include "core/pipeline.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/log.hpp"
#include "core/smo.hpp"

namespace xsec::core {

namespace {

/// An explicit config wins; otherwise XSEC_RIC_SHARDS (the knob the
/// sanitizer and chaos sweeps use to re-run the whole suite sharded);
/// otherwise 1. Clamped to a sane ceiling.
std::size_t resolve_ric_shards(std::size_t configured) {
  constexpr std::size_t kMaxShards = 64;
  if (configured != 0) return std::min(configured, kMaxShards);
  if (const char* env = std::getenv("XSEC_RIC_SHARDS")) {
    // Strict parse: strtoul would wrap "-1" to ULONG_MAX and accept
    // trailing garbage like "4x"; treat anything but a clean positive
    // integer as unset.
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && std::strchr(env, '-') == nullptr &&
        v >= 1)
      return std::min<std::size_t>(static_cast<std::size_t>(v), kMaxShards);
  }
  return 1;
}

}  // namespace

Pipeline::Pipeline(PipelineConfig config) : config_(std::move(config)) {
  config_.mobiwatch.shards = resolve_ric_shards(config_.ric_shards);
  config_.e2_link_capacity =
      transport::resolve_capacity(config_.e2_link_capacity);
  testbed_ = std::make_unique<sim::Testbed>(config_.testbed);

  // Platform-wide observability: one registry + tracer, driven by the sim
  // clock, shared by the RIC, every agent/transport, and the LLM path.
  obs_ = std::make_unique<obs::Observability>();
  obs_->set_clock([this] { return testbed_->now(); });

  // One shared event-driven pump for every site's link (epoll mode). Its
  // instrumentation lives in obs_->host, outside the deterministic export.
  pump_mode_ = transport::resolve_pump_mode(config_.e2_pump);
  if (pump_mode_ == transport::PumpMode::kEpoll) {
    pump_ = transport::EpollPump::create(obs_.get());
    if (!pump_) {
      XSEC_LOG_WARN("pipeline",
                    "failed to create epoll pump; using polled mode");
      pump_mode_ = transport::PumpMode::kPolled;
    }
  }

  ric_ = std::make_unique<oran::NearRtRic>();
  ric_->set_observability(obs_.get());
  ric_->set_scheduler([this](SimDuration d, std::function<void()> fn) {
    testbed_->queue().schedule_after(d, std::move(fn));
  });

  // One RIC agent (E2 node) per cell site, each behind its own
  // fault-injected transport. The hooks reach the transport through an
  // index because the agent is constructed first (the transport wraps it).
  for (std::size_t site = 0; site < testbed_->cell_count(); ++site) {
    mobiflow::AgentHooks hooks;
    hooks.now = [this] { return testbed_->now(); };
    hooks.schedule = [this](SimDuration d, std::function<void()> fn) {
      testbed_->queue().schedule_after(d, std::move(fn));
    };
    hooks.to_ric = [this, site](std::uint64_t node_id, Bytes wire) {
      transports_[site]->to_ric(node_id, std::move(wire));
    };
    hooks.try_connect = [this, site] { return transports_[site]->connect(); };
    hooks.transport_ready = [this, site](std::size_t pdu_bytes) {
      return transports_[site]->ready_for(pdu_bytes);
    };
    hooks.obs = obs_.get();
    hooks.outage_buffer_max = config_.agent_outage_buffer;
    hooks.spill_dir = config_.agent_spill_dir;
    hooks.apply_control = [this, site](const mobiflow::ControlCommand& cmd) {
      ran::Gnb& gnb = testbed_->gnb(site);
      switch (cmd.action) {
        case mobiflow::ControlCommand::Action::kReleaseUe:
          return gnb.force_release(ran::Rnti{cmd.rnti});
        case mobiflow::ControlCommand::Action::kReleaseStale:
          return gnb.release_stale_contexts(
                     SimDuration::from_ms(cmd.stale_age_ms)) > 0;
        case mobiflow::ControlCommand::Action::kBlockTmsi:
          gnb.block_tmsi(cmd.s_tmsi);
          return true;
        case mobiflow::ControlCommand::Action::kUnblockTmsi:
          gnb.unblock_tmsi(cmd.s_tmsi);
          return true;
        case mobiflow::ControlCommand::Action::kRateLimit:
          gnb.set_setup_rate_limit(cmd.rate_limit,
                                   SimDuration::from_ms(cmd.rate_window_ms));
          return true;
        case mobiflow::ControlCommand::Action::kClearRateLimit:
          gnb.clear_setup_rate_limit();
          return true;
        case mobiflow::ControlCommand::Action::kIsolate:
          gnb.set_isolated(true);
          return true;
        case mobiflow::ControlCommand::Action::kDeisolate:
          gnb.set_isolated(false);
          return true;
      }
      return false;
    };
    auto agent = std::make_unique<mobiflow::RicAgent>(
        config_.e2_node_id + site, std::move(hooks));
    agent->attach(testbed_->taps(site));

    oran::FaultPlan plan = config_.fault_plan;
    plan.seed = config_.fault_plan.seed + site;  // independent fault streams
    oran::TransportHooks transport_hooks;
    transport_hooks.now = [this] { return testbed_->now(); };
    transport_hooks.schedule = [this](SimDuration d,
                                      std::function<void()> fn) {
      testbed_->queue().schedule_after(d, std::move(fn));
    };
    transport_hooks.obs = obs_.get();
    transport_hooks.metric_scope =
        "e2.node" + std::to_string(config_.e2_node_id + site);
    transport_hooks.backend = config_.e2_transport;
    transport_hooks.link_capacity = config_.e2_link_capacity;
    transport_hooks.pump = pump_.get();
    auto transport = std::make_unique<oran::FaultyE2Transport>(
        ric_.get(), agent.get(), plan, std::move(transport_hooks));
    transport->arm_epochs();
    transports_.push_back(std::move(transport));

    auto connected = transports_[site]->connect();
    if (!connected) {
      XSEC_LOG_ERROR("pipeline", "E2 setup failed for agent of cell ", site,
                     ": ", connected.error().message);
      node_ids_.push_back(0);
    } else {
      node_ids_.push_back(connected.value());
    }
    agents_.push_back(std::move(agent));
  }

  auto mobiwatch = std::make_unique<detect::MobiWatchXapp>(config_.mobiwatch);
  mobiwatch_ = mobiwatch.get();
  ric_->register_xapp(std::move(mobiwatch));

  // The mitigation xApp registers BEFORE the analyzer so its router
  // subscriptions run first on each anomaly report: the fast-path action is
  // issued before the analyzer's (synchronous) verdict arrives, which is
  // what lets a benign verdict roll that same action back as false-positive
  // evidence instead of finding nothing active yet.
  if (config_.mitigation.enabled) {
    auto mitigation =
        std::make_unique<mitigate::MitigationXapp>(config_.mitigation);
    mitigation_ = mitigation.get();
    ric_->register_xapp(std::move(mitigation));
  }

  if (!config_.llm_client)
    config_.llm_client = std::make_shared<llm::SimLlmClient>();
  auto resilient = std::make_shared<llm::ResilientLlmClient>(
      config_.llm_client, config_.llm_resilience);
  resilient->set_clock([this] { return testbed_->now(); });
  resilient->set_observability(obs_.get());
  resilient_llm_ = resilient.get();
  auto analyzer = std::make_unique<llm::LlmAnalyzerXapp>(config_.analyzer,
                                                         std::move(resilient));
  analyzer_ = analyzer.get();
  ric_->register_xapp(std::move(analyzer));

  // The lifecycle xApp registers AFTER the analyzer: its verdict handler
  // only files false-positive evidence, so mitigation's (registered
  // earlier) must keep running first. Its main input is MobiWatch's
  // coordinator-side score observer, wired by bind().
  if (config_.lifecycle.enabled) {
    auto lifecycle =
        std::make_unique<lifecycle::LifecycleXapp>(config_.lifecycle);
    lifecycle_ = lifecycle.get();
    ric_->register_xapp(std::move(lifecycle));
    lifecycle_->bind(mobiwatch_, mitigation_);
  }

  if (config_.metrics_report_period.us > 0) {
    MetricsReportConfig report_config;
    report_config.period = config_.metrics_report_period;
    auto reporter = std::make_unique<MetricsReportXapp>(
        report_config, [this](SimDuration d, std::function<void()> fn) {
          testbed_->queue().schedule_after(d, std::move(fn));
        });
    metrics_report_ = reporter.get();
    ric_->register_xapp(std::move(reporter));
  }
}

PipelineStats Pipeline::stats() const {
  PipelineStats s;
  for (const auto& transport : transports_) {
    const auto& c = transport->counters();
    s.frames_sent += c.frames_sent;
    s.frames_delivered += c.frames_delivered;
    s.frames_dropped += c.frames_dropped;
    s.frames_duplicated += c.frames_duplicated;
    s.frames_reordered += c.frames_reordered;
    s.link_down_drops += c.link_down_drops;
    s.link_down_events += c.link_down_events;
  }
  for (const auto& agent : agents_) {
    s.records_collected += agent->records_collected();
    s.indications_sent += agent->indications_sent();
    s.indications_retransmitted += agent->indications_retransmitted();
    s.agent_reconnects += agent->reconnects();
    s.reconnect_attempts += agent->reconnect_attempts();
    s.records_dropped_outage += agent->records_dropped_outage();
    s.records_spilled += agent->records_spilled();
    s.records_replayed += agent->records_replayed();
    s.controls_deduplicated += agent->controls_deduplicated();
  }
  s.indications_received = ric_->indications_received();
  s.duplicates_suppressed = ric_->duplicates_suppressed();
  s.indications_recovered = ric_->indications_recovered();
  s.gaps_detected = ric_->gaps_detected();
  s.nacks_sent = ric_->nacks_sent();
  s.nacks_batched = ric_->nacks_batched();
  s.node_reconnects = ric_->node_reconnects();
  s.stale_subscriptions_cleared = ric_->stale_subscriptions_cleared();
  s.controls_sent = ric_->controls_sent();
  s.control_acks = ric_->control_acks();
  s.control_retx = ric_->control_retx();
  s.controls_lost = ric_->controls_lost();
  s.records_seen = mobiwatch_->records_seen();
  s.windows_scored = mobiwatch_->windows_scored();
  s.anomalies_flagged = mobiwatch_->anomalies_flagged();
  s.gaps_observed = mobiwatch_->gaps_observed();
  s.incidents_analyzed = analyzer_->incidents_analyzed();
  s.llm_retries = resilient_llm_->retries();
  s.llm_breaker_trips = resilient_llm_->breaker_trips();
  s.llm_deferrals = analyzer_->llm_deferrals();
  s.incidents_dropped = analyzer_->incidents_dropped();
  if (mitigation_) {
    s.mitigation_actions = mitigation_->actions_issued();
    s.mitigation_escalations = mitigation_->escalations();
    s.mitigation_rollbacks = mitigation_->rollbacks();
    s.mitigation_rollbacks_ttl = mitigation_->rollbacks_ttl();
    s.mitigation_rollbacks_evidence = mitigation_->rollbacks_evidence();
    s.mitigation_budget_exhausted = mitigation_->budget_exhausted();
    s.mitigation_actions_failed = mitigation_->actions_failed();
  }
  if (lifecycle_) {
    s.lifecycle_windows = lifecycle_->windows_observed();
    s.lifecycle_drift_events = lifecycle_->drift_events();
    s.lifecycle_retrains = lifecycle_->retrains();
    s.lifecycle_promotions = lifecycle_->promotions();
    s.lifecycle_rollbacks = lifecycle_->rollbacks();
    s.lifecycle_gate_failures = lifecycle_->gate_failures();
    s.lifecycle_models_rejected = lifecycle_->models_rejected();
    s.lifecycle_active_version = lifecycle_->active_version();
  }
  return s;
}

std::string PipelineStats::to_text() const {
  auto line = [](const char* label, std::size_t value) {
    return std::string("  ") + label + ": " + std::to_string(value) + "\n";
  };
  std::string out = "=== Pipeline robustness counters ===\n";
  out += "E2 transport:\n";
  out += line("frames sent", frames_sent);
  out += line("frames delivered", frames_delivered);
  out += line("frames dropped", frames_dropped);
  out += line("frames duplicated", frames_duplicated);
  out += line("frames reordered", frames_reordered);
  out += line("frames lost to link-down", link_down_drops);
  out += line("link-down events", link_down_events);
  out += "RIC agents:\n";
  out += line("records collected", records_collected);
  out += line("indications sent", indications_sent);
  out += line("indications retransmitted", indications_retransmitted);
  out += line("reconnects", agent_reconnects);
  out += line("reconnect attempts", reconnect_attempts);
  out += line("records dropped in outage", records_dropped_outage);
  out += line("records spilled to disk", records_spilled);
  out += line("records replayed from spill", records_replayed);
  out += line("duplicate controls suppressed", controls_deduplicated);
  out += "near-RT RIC:\n";
  out += line("indications received", indications_received);
  out += line("duplicates suppressed", duplicates_suppressed);
  out += line("indications recovered", indications_recovered);
  out += line("gaps declared", gaps_detected);
  out += line("NACKs sent", nacks_sent);
  out += line("NACK ranges batched", nacks_batched);
  out += line("node reconnects", node_reconnects);
  out += line("stale subscriptions cleared", stale_subscriptions_cleared);
  out += line("controls sent", controls_sent);
  out += line("control acks", control_acks);
  out += line("control retransmissions", control_retx);
  out += line("controls lost", controls_lost);
  out += "MobiWatch:\n";
  out += line("records seen", records_seen);
  out += line("windows scored", windows_scored);
  out += line("incidents flagged", anomalies_flagged);
  out += line("telemetry gaps observed", gaps_observed);
  out += "LLM analyzer:\n";
  out += line("incidents analyzed", incidents_analyzed);
  out += line("LLM retries", llm_retries);
  out += line("LLM breaker trips", llm_breaker_trips);
  out += line("incidents deferred", llm_deferrals);
  out += line("incidents dropped", incidents_dropped);
  out += "Mitigation:\n";
  out += line("actions issued", mitigation_actions);
  out += line("escalations", mitigation_escalations);
  out += line("rollbacks", mitigation_rollbacks);
  out += line("rollbacks (TTL)", mitigation_rollbacks_ttl);
  out += line("rollbacks (evidence)", mitigation_rollbacks_evidence);
  out += line("action budget exhaustions", mitigation_budget_exhausted);
  out += line("actions failed", mitigation_actions_failed);
  out += "Model lifecycle:\n";
  out += line("windows observed", lifecycle_windows);
  out += line("drift events", lifecycle_drift_events);
  out += line("retrains", lifecycle_retrains);
  out += line("promotions", lifecycle_promotions);
  out += line("rollbacks", lifecycle_rollbacks);
  out += line("gate failures", lifecycle_gate_failures);
  out += line("models rejected", lifecycle_models_rejected);
  out += line("active model version", lifecycle_active_version);
  return out;
}

}  // namespace xsec::core
