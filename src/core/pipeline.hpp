// The assembled 6G-XSec pipeline (paper Figure 3).
//
// One object wires the whole system: the simulated 5G testbed, the RIC
// agent tapping its F1AP/NGAP interfaces, the near-RT RIC, the MobiWatch
// anomaly-detection xApp, and the LLM analyzer xApp — including the
// closed-loop control path back into the gNB. This is the public entry
// point examples and benches build on.
#pragma once

#include <memory>

#include "detect/mobiwatch.hpp"
#include "llm/analyzer_xapp.hpp"
#include "mobiflow/agent.hpp"
#include "oran/ric.hpp"
#include "sim/testbed.hpp"

namespace xsec::core {

struct PipelineConfig {
  sim::TestbedConfig testbed;
  detect::MobiWatchConfig mobiwatch;
  llm::AnalyzerConfig analyzer;
  /// E2 node id of the first cell's agent; additional cells get
  /// consecutive ids.
  std::uint64_t e2_node_id = 1001;
  /// LLM client; defaults to the offline SimLlmClient.
  std::shared_ptr<llm::LlmClient> llm_client;
};

class Pipeline {
 public:
  explicit Pipeline(PipelineConfig config = {});

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  sim::Testbed& testbed() { return *testbed_; }
  oran::NearRtRic& ric() { return *ric_; }
  /// The RIC agent of cell `index` (one E2 node per cell).
  mobiflow::RicAgent& agent(std::size_t index = 0) {
    return *agents_[index];
  }
  std::size_t agent_count() const { return agents_.size(); }
  detect::MobiWatchXapp& mobiwatch() { return *mobiwatch_; }
  llm::LlmAnalyzerXapp& analyzer() { return *analyzer_; }
  std::uint64_t node_id(std::size_t index = 0) const {
    return node_ids_[index];
  }

  /// Installs a pre-trained detector into MobiWatch (the SMO "deploy" arrow
  /// of Figure 3).
  void install_detector(std::shared_ptr<detect::AnomalyDetector> detector,
                        detect::FeatureEncoder encoder) {
    mobiwatch_->install_detector(std::move(detector), std::move(encoder));
  }

  void run_for(SimDuration d) { testbed_->run_for(d); }

  /// End-of-capture housekeeping: closes any open MobiWatch incident and
  /// drains the analyzer's deferred queue. Call once after the last
  /// run_for of a scenario.
  void finalize() {
    mobiwatch_->close_open_incident();
    analyzer_->flush_pending();
  }

 private:
  PipelineConfig config_;
  std::unique_ptr<sim::Testbed> testbed_;
  std::unique_ptr<oran::NearRtRic> ric_;
  std::vector<std::unique_ptr<mobiflow::RicAgent>> agents_;
  std::vector<std::uint64_t> node_ids_;
  detect::MobiWatchXapp* mobiwatch_ = nullptr;  // owned by the RIC
  llm::LlmAnalyzerXapp* analyzer_ = nullptr;    // owned by the RIC
};

}  // namespace xsec::core
