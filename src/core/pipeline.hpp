// The assembled 6G-XSec pipeline (paper Figure 3).
//
// One object wires the whole system: the simulated 5G testbed, the RIC
// agent tapping its F1AP/NGAP interfaces, the near-RT RIC, the MobiWatch
// anomaly-detection xApp, and the LLM analyzer xApp — including the
// closed-loop control path back into the gNB. This is the public entry
// point examples and benches build on.
#pragma once

#include <memory>
#include <string>

#include "detect/mobiwatch.hpp"
#include "lifecycle/manager.hpp"
#include "llm/analyzer_xapp.hpp"
#include "mitigate/xapp.hpp"
#include "mobiflow/agent.hpp"
#include "obs/trace.hpp"
#include "oran/ric.hpp"
#include "oran/transport.hpp"
#include "sim/testbed.hpp"
#include "transport/pump.hpp"

namespace xsec::core {

class MetricsReportXapp;

struct PipelineConfig {
  sim::TestbedConfig testbed;
  detect::MobiWatchConfig mobiwatch;
  llm::AnalyzerConfig analyzer;
  /// Closed-loop mitigation xApp; disabled by default (detection-only
  /// pipelines keep their exact seeded behavior).
  mitigate::MitigationConfig mitigation;
  /// Edge model lifecycle (drift -> retrain -> shadow -> promote);
  /// disabled by default for the same reason.
  lifecycle::LifecycleConfig lifecycle;
  /// Per-agent outage-backlog capacity (records buffered while no
  /// subscription is live).
  std::size_t agent_outage_buffer = 8192;
  /// When set, a full outage backlog spills to .mft files in this
  /// directory (replayed on re-subscription) instead of dropping oldest.
  std::string agent_spill_dir;
  /// E2 node id of the first cell's agent; additional cells get
  /// consecutive ids.
  std::uint64_t e2_node_id = 1001;
  /// LLM client; defaults to the offline SimLlmClient. Always wrapped in a
  /// ResilientLlmClient (retry + circuit breaker) before the analyzer
  /// sees it.
  std::shared_ptr<llm::LlmClient> llm_client;
  /// Retry / circuit-breaker settings for the LLM path.
  llm::ResilienceConfig llm_resilience;
  /// Fault plan applied to every agent's E2 transport. The default plan is
  /// fault-free and reproduces the seed pipeline's timing exactly. Each
  /// site's transport gets an independent fault stream (seed + site).
  oran::FaultPlan fault_plan;
  /// Period of the MetricsReportXapp's SMO export loop; 0 (default)
  /// disables the xApp entirely.
  SimDuration metrics_report_period{0};
  /// RIC shards MobiWatch scoring fans out over. 0 (default) resolves from
  /// the XSEC_RIC_SHARDS environment variable, falling back to 1 (inline
  /// scoring, no worker threads). Any shard count produces byte-identical
  /// outputs under a fixed seed; >1 buys wall-clock throughput.
  std::size_t ric_shards = 0;
  /// E2 transport backend carrying every agent's E2AP frames: "inproc"
  /// (default), "uds" (framed Unix-domain socketpair), or "shm"
  /// (shared-memory SPSC ring). Empty resolves from the XSEC_E2_TRANSPORT
  /// environment variable, falling back to inproc. Any backend produces
  /// byte-identical outputs under a fixed seed.
  std::string e2_transport;
  /// Transport pump mode: "polled" (historical: channels drained by direct
  /// pump calls) or "epoll" (event-driven: one shared EpollPump provides
  /// readiness wakeups and syscall-coalesced batched I/O). Empty resolves
  /// from the XSEC_E2_PUMP environment variable, falling back to polled.
  /// Either mode produces byte-identical outputs under a fixed seed.
  std::string e2_pump;
  /// Per-direction E2 channel capacity in bytes. Logical accounting is
  /// identical on every backend, so this also fixes where backpressure
  /// trips; tests shrink it to exercise the slow-reader paths. 0 (default)
  /// resolves from the XSEC_E2_CAPACITY environment variable, falling back
  /// to transport::kDefaultChannelCapacity.
  std::size_t e2_link_capacity = 0;
};

/// One robustness-counter snapshot across every layer of the pipeline,
/// aggregated over all cell sites. What the chaos tests assert on and the
/// examples print.
struct PipelineStats {
  // E2 transport
  std::size_t frames_sent = 0;
  std::size_t frames_delivered = 0;
  std::size_t frames_dropped = 0;
  std::size_t frames_duplicated = 0;
  std::size_t frames_reordered = 0;
  std::size_t link_down_drops = 0;
  std::size_t link_down_events = 0;
  // RIC agents
  std::size_t records_collected = 0;
  std::size_t indications_sent = 0;
  std::size_t indications_retransmitted = 0;
  std::size_t agent_reconnects = 0;
  std::size_t reconnect_attempts = 0;
  std::size_t records_dropped_outage = 0;
  std::size_t records_spilled = 0;
  std::size_t records_replayed = 0;
  std::size_t controls_deduplicated = 0;
  // near-RT RIC
  std::size_t indications_received = 0;
  std::size_t duplicates_suppressed = 0;
  std::size_t indications_recovered = 0;
  std::size_t gaps_detected = 0;
  std::size_t nacks_sent = 0;
  /// Extra sequence ranges coalesced into already-counted NACK PDUs.
  std::size_t nacks_batched = 0;
  std::size_t node_reconnects = 0;
  std::size_t stale_subscriptions_cleared = 0;
  std::size_t controls_sent = 0;
  std::size_t control_acks = 0;
  std::size_t control_retx = 0;
  std::size_t controls_lost = 0;
  // MobiWatch
  std::size_t records_seen = 0;
  std::size_t windows_scored = 0;
  std::size_t anomalies_flagged = 0;
  std::size_t gaps_observed = 0;
  // LLM analyzer
  std::size_t incidents_analyzed = 0;
  std::size_t llm_retries = 0;
  std::size_t llm_breaker_trips = 0;
  std::size_t llm_deferrals = 0;
  std::size_t incidents_dropped = 0;
  // Mitigation (all zero when the xApp is disabled)
  std::size_t mitigation_actions = 0;
  std::size_t mitigation_escalations = 0;
  std::size_t mitigation_rollbacks = 0;
  std::size_t mitigation_rollbacks_ttl = 0;
  std::size_t mitigation_rollbacks_evidence = 0;
  std::size_t mitigation_budget_exhausted = 0;
  std::size_t mitigation_actions_failed = 0;
  // Model lifecycle (all zero when the xApp is disabled)
  std::size_t lifecycle_windows = 0;
  std::size_t lifecycle_drift_events = 0;
  std::size_t lifecycle_retrains = 0;
  std::size_t lifecycle_promotions = 0;
  std::size_t lifecycle_rollbacks = 0;
  std::size_t lifecycle_gate_failures = 0;
  std::size_t lifecycle_models_rejected = 0;
  std::size_t lifecycle_active_version = 0;

  std::string to_text() const;
};

class Pipeline {
 public:
  explicit Pipeline(PipelineConfig config = {});

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  sim::Testbed& testbed() { return *testbed_; }
  oran::NearRtRic& ric() { return *ric_; }
  /// The RIC agent of cell `index` (one E2 node per cell).
  mobiflow::RicAgent& agent(std::size_t index = 0) {
    return *agents_[index];
  }
  std::size_t agent_count() const { return agents_.size(); }
  /// The fault-injected transport carrying cell `index`'s E2 traffic.
  oran::FaultyE2Transport& transport(std::size_t index = 0) {
    return *transports_[index];
  }
  detect::MobiWatchXapp& mobiwatch() { return *mobiwatch_; }
  llm::LlmAnalyzerXapp& analyzer() { return *analyzer_; }
  /// The mitigation xApp, or nullptr when config.mitigation.enabled is
  /// false.
  mitigate::MitigationXapp* mitigation() { return mitigation_; }
  /// The model-lifecycle xApp, or nullptr when config.lifecycle.enabled
  /// is false.
  lifecycle::LifecycleXapp* lifecycle() { return lifecycle_; }
  llm::ResilientLlmClient& llm_client() { return *resilient_llm_; }
  /// The platform-wide observability bundle every component records into.
  obs::Observability& observability() { return *obs_; }
  obs::MetricsRegistry& metrics() { return obs_->metrics; }
  obs::Tracer& tracer() { return obs_->tracer; }
  /// The periodic exporter, or nullptr when metrics_report_period is 0.
  MetricsReportXapp* metrics_report() { return metrics_report_; }
  std::uint64_t node_id(std::size_t index = 0) const {
    return node_ids_[index];
  }
  /// Resolved RIC shard count (config override or XSEC_RIC_SHARDS).
  std::size_t ric_shards() const { return config_.mobiwatch.shards; }
  /// Resolved E2 transport backend (config / XSEC_E2_TRANSPORT / fallback).
  transport::BackendKind e2_backend() const {
    return transports_.empty() ? transport::BackendKind::kInProcess
                               : transports_.front()->backend();
  }
  /// Resolved pump mode (config / XSEC_E2_PUMP / fallback).
  transport::PumpMode e2_pump_mode() const { return pump_mode_; }
  /// The shared event-driven pump (nullptr in polled mode).
  transport::EpollPump* e2_pump() { return pump_.get(); }
  /// Resolved per-direction channel capacity (config / XSEC_E2_CAPACITY).
  std::size_t e2_link_capacity() const { return config_.e2_link_capacity; }

  /// Snapshot of every robustness counter in the system.
  PipelineStats stats() const;

  /// Installs a pre-trained detector into MobiWatch (the SMO "deploy" arrow
  /// of Figure 3).
  void install_detector(std::shared_ptr<detect::AnomalyDetector> detector,
                        detect::FeatureEncoder encoder) {
    mobiwatch_->install_detector(std::move(detector), std::move(encoder));
  }

  void run_for(SimDuration d) { testbed_->run_for(d); }

  /// End-of-capture housekeeping: drains the RIC's reorder buffers (turning
  /// still-missing runs into explicit gaps), closes any open MobiWatch
  /// incident, and drains the analyzer's deferred queue. Call once after
  /// the last run_for of a scenario.
  void finalize() {
    ric_->flush_streams();
    mobiwatch_->close_open_incident();
    analyzer_->flush_pending();
  }

 private:
  /// Declared first so it is destroyed last: every component below holds
  /// raw handles into this registry.
  std::unique_ptr<obs::Observability> obs_;
  /// Declared before the transports so it outlives their channel
  /// registrations (FramedLink's destructor deregisters from the pump).
  std::unique_ptr<transport::EpollPump> pump_;
  transport::PumpMode pump_mode_ = transport::PumpMode::kPolled;
  PipelineConfig config_;
  std::unique_ptr<sim::Testbed> testbed_;
  std::unique_ptr<oran::NearRtRic> ric_;
  std::vector<std::unique_ptr<mobiflow::RicAgent>> agents_;
  std::vector<std::unique_ptr<oran::FaultyE2Transport>> transports_;
  std::vector<std::uint64_t> node_ids_;
  detect::MobiWatchXapp* mobiwatch_ = nullptr;  // owned by the RIC
  llm::LlmAnalyzerXapp* analyzer_ = nullptr;    // owned by the RIC
  mitigate::MitigationXapp* mitigation_ = nullptr;  // owned by the RIC
  lifecycle::LifecycleXapp* lifecycle_ = nullptr;   // owned by the RIC
  llm::ResilientLlmClient* resilient_llm_ = nullptr;  // shared_ptr'd below
  MetricsReportXapp* metrics_report_ = nullptr;  // owned by the RIC
};

}  // namespace xsec::core
