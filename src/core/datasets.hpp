// Dataset collection: runs testbed scenarios and captures labeled MobiFlow
// traces, reproducing the paper's dataset methodology (§4): a benign
// dataset from >100 diverse UE sessions, and one attack dataset per attack,
// each a mixture of benign background traffic and the attack's sessions
// with per-record ground-truth labels.
#pragma once

#include <string>
#include <vector>

#include "attacks/attack.hpp"
#include "mobiflow/trace.hpp"
#include "sim/traffic.hpp"

namespace xsec::core {

struct ScenarioConfig {
  sim::TestbedConfig testbed;
  sim::TrafficConfig traffic;
  /// Simulated time to run (must cover all scheduled sessions).
  SimDuration run_time = SimDuration::from_s(6);
};

/// Runs a benign-only scenario and returns the collected trace.
mobiflow::Trace collect_benign(const ScenarioConfig& config);

/// Runs benign background traffic with `attack` launched at `attack_at`,
/// labeling records with the attack's ground truth.
mobiflow::Trace collect_attack(attacks::Attack& attack,
                               const ScenarioConfig& config,
                               SimTime attack_at);

struct LabeledDatasets {
  /// Independent benign captures (the paper's per-device-campaign
  /// collections); training treats them as separate streams so windows
  /// never straddle capture boundaries.
  std::vector<mobiflow::Trace> benign;
  std::size_t benign_records() const {
    std::size_t n = 0;
    for (const auto& t : benign) n += t.size();
    return n;
  }
  /// (attack id, display name, trace) per attack, Table 3 order.
  struct AttackTrace {
    std::string id;
    std::string display_name;
    mobiflow::Trace trace;
  };
  std::vector<AttackTrace> attacks;
};

/// Collects the full evaluation corpus: one benign dataset and all five
/// attack datasets, with deterministic seeds derived from `seed`.
LabeledDatasets collect_all(std::uint64_t seed = 2024,
                            int benign_sessions = 120,
                            int background_sessions = 30);

}  // namespace xsec::core
