#include "core/evaluation.hpp"

#include "common/names.hpp"
#include "common/plot.hpp"
#include "detect/ensemble.hpp"

namespace xsec::core {

namespace {
constexpr auto kModelNames =
    make_name_table<ModelKind>("Autoencoder", "LSTM", "Ensemble-AE");
}  // namespace

std::string to_string(ModelKind kind) {
  return std::string(kModelNames.name(kind));
}

std::unique_ptr<detect::AnomalyDetector> make_detector(
    ModelKind kind, std::size_t window_size, std::size_t feature_dim,
    const EvalConfig& config) {
  switch (kind) {
    case ModelKind::kAutoencoder:
      return std::make_unique<detect::AutoencoderDetector>(
          window_size, feature_dim, config.detector, config.ae_hidden);
    case ModelKind::kLstm:
      return std::make_unique<detect::LstmDetector>(
          window_size, feature_dim, config.detector, config.lstm_hidden);
    case ModelKind::kEnsemble: {
      // The ensemble's grouping depends on the feature layout; rebuild the
      // encoder the same way run_table2/train_detector do.
      detect::FeatureEncoder encoder(config.features);
      detect::EnsembleConfig ensemble_config;
      ensemble_config.detector = config.detector;
      return std::make_unique<detect::EnsembleDetector>(
          window_size, feature_dim, detect::groups_by_category(encoder),
          ensemble_config);
    }
  }
  return nullptr;
}

namespace {

/// Benign cross-validation for the autoencoder: contiguous k-fold over
/// windows; every flagged held-out window is a false positive.
dl::Confusion cv_autoencoder(const detect::WindowDataset& benign,
                             const EvalConfig& config) {
  dl::Matrix all = benign.ae_matrix();
  dl::Confusion confusion;
  auto folds = dl::kfold_indices(all.rows(), config.cv_folds);
  std::uint64_t fold_seed = config.detector.seed;
  for (const auto& [train_idx, test_idx] : folds) {
    dl::Matrix train(train_idx.size(), all.cols());
    for (std::size_t i = 0; i < train_idx.size(); ++i)
      for (std::size_t c = 0; c < all.cols(); ++c)
        train.at(i, c) = all.at(train_idx[i], c);
    dl::Matrix test(test_idx.size(), all.cols());
    for (std::size_t i = 0; i < test_idx.size(); ++i)
      for (std::size_t c = 0; c < all.cols(); ++c)
        test.at(i, c) = all.at(test_idx[i], c);

    detect::DetectorConfig fold_config = config.detector;
    fold_config.seed = fold_seed++;
    detect::AutoencoderDetector detector(
        config.window_size, benign.feature_dim(), fold_config,
        config.ae_hidden);
    detector.fit_scaler(train);
    dl::TrainConfig train_config;
    train_config.epochs = config.detector.epochs;
    train_config.batch_size = config.detector.batch_size;
    train_config.learning_rate = config.detector.learning_rate;
    detector.model().fit(detector.standardize(train), train_config);
    double threshold = percentile(detector.window_scores(train),
                                  config.detector.threshold_percentile);
    for (double error : detector.window_scores(test))
      confusion.add(error > threshold, /*actually_positive=*/false);
  }
  return confusion;
}

dl::Confusion cv_lstm(const detect::WindowDataset& benign,
                      const EvalConfig& config) {
  auto all = benign.lstm_samples();
  dl::Confusion confusion;
  auto folds = dl::kfold_indices(all.size(), config.cv_folds);
  std::uint64_t fold_seed = config.detector.seed;
  for (const auto& [train_idx, test_idx] : folds) {
    std::vector<dl::SequenceSample> train, test;
    train.reserve(train_idx.size());
    test.reserve(test_idx.size());
    for (std::size_t i : train_idx) train.push_back(all[i]);
    for (std::size_t i : test_idx) test.push_back(all[i]);

    detect::DetectorConfig fold_config = config.detector;
    fold_config.seed = fold_seed++;
    detect::LstmDetector detector(config.window_size, benign.feature_dim(),
                                  fold_config, config.lstm_hidden);
    detector.fit_scaler(train);
    dl::LstmTrainConfig train_config;
    train_config.epochs = config.detector.epochs;
    train_config.batch_size = config.detector.batch_size;
    train_config.learning_rate = config.detector.learning_rate;
    auto train_std = detector.standardize(train);
    detector.model().fit(train_std, train_config);
    double threshold = percentile(detector.sample_errors(train_std),
                                  config.detector.threshold_percentile);
    for (double error : detector.sample_errors(detector.standardize(test)))
      confusion.add(error > threshold, /*actually_positive=*/false);
  }
  return confusion;
}

/// Trains `detector` on the benign captures per the configured calibration
/// mode (shared by the Table 2, Figure 4, and ablation paths).
void fit_with_calibration(detect::AnomalyDetector& detector,
                          const LabeledDatasets& datasets,
                          const detect::FeatureEncoder& encoder,
                          const EvalConfig& config) {
  if (config.calibration == EvalConfig::Calibration::kHeldOutCapture &&
      datasets.benign.size() >= 2) {
    std::vector<mobiflow::Trace> train_captures(datasets.benign.begin(),
                                                datasets.benign.end() - 1);
    detect::WindowDataset train = detect::WindowDataset::from_traces(
        train_captures, encoder, config.window_size);
    detector.fit(train);
    detect::WindowDataset held_out = detect::WindowDataset::from_trace(
        datasets.benign.back(), encoder, config.window_size);
    detector.set_threshold(percentile(
        detector.score(held_out), config.detector.threshold_percentile));
    return;
  }
  detect::WindowDataset benign = detect::WindowDataset::from_traces(
      datasets.benign, encoder, config.window_size);
  detector.fit(benign);
}

}  // namespace

std::shared_ptr<detect::AnomalyDetector> train_detector(
    ModelKind kind, const mobiflow::Trace& benign, const EvalConfig& config) {
  return train_detector(kind, std::vector<mobiflow::Trace>{benign}, config);
}

std::shared_ptr<detect::AnomalyDetector> train_detector(
    ModelKind kind, const std::vector<mobiflow::Trace>& benign_captures,
    const EvalConfig& config) {
  detect::FeatureEncoder encoder(config.features);
  detect::WindowDataset dataset = detect::WindowDataset::from_traces(
      benign_captures, encoder, config.window_size);
  auto detector =
      make_detector(kind, config.window_size, encoder.dim(), config);
  detector->fit(dataset);
  return detector;
}

Table2Result run_table2(const LabeledDatasets& datasets,
                        const EvalConfig& config) {
  Table2Result result;
  detect::FeatureEncoder encoder(config.features);
  detect::WindowDataset benign = detect::WindowDataset::from_traces(
      datasets.benign, encoder, config.window_size);

  // --- Benign rows: cross-validation ------------------------------------
  result.rows.push_back(
      {"Benign", "Autoencoder", cv_autoencoder(benign, config)});
  result.rows.push_back({"Benign", "LSTM", cv_lstm(benign, config)});

  // --- Attack rows: train on benign, test on the attack datasets --------
  for (ModelKind kind : {ModelKind::kAutoencoder, ModelKind::kLstm}) {
    auto detector =
        make_detector(kind, config.window_size, encoder.dim(), config);
    fit_with_calibration(*detector, datasets, encoder, config);

    dl::Confusion total;
    for (const auto& attack : datasets.attacks) {
      detect::WindowDataset dataset = detect::WindowDataset::from_trace(
          attack.trace, encoder, config.window_size);
      std::vector<double> scores = detector->score(dataset);
      std::vector<bool> labels = detector->labels(dataset);
      dl::Confusion confusion;
      bool detected = false;
      for (std::size_t i = 0; i < scores.size(); ++i) {
        bool flagged = detector->is_anomalous(scores[i]);
        confusion.add(flagged, labels[i]);
        if (flagged && labels[i]) detected = true;
      }
      result.per_attack.push_back(
          {attack.display_name, to_string(kind), confusion, detected});
      total.tp += confusion.tp;
      total.fp += confusion.fp;
      total.tn += confusion.tn;
      total.fn += confusion.fn;
    }
    result.rows.push_back({"Attack", to_string(kind), total});
  }
  return result;
}

Figure4Result run_figure4(const LabeledDatasets& datasets,
                          const EvalConfig& config) {
  Figure4Result result;
  detect::FeatureEncoder encoder(config.features);
  detect::AutoencoderDetector detector(config.window_size, encoder.dim(),
                                       config.detector, config.ae_hidden);
  fit_with_calibration(detector, datasets, encoder, config);
  result.threshold = detector.threshold();

  for (const auto& attack : datasets.attacks) {
    detect::WindowDataset dataset = detect::WindowDataset::from_trace(
        attack.trace, encoder, config.window_size);
    std::vector<double> scores = detector.score(dataset);
    std::vector<bool> labels = dataset.ae_labels();
    for (std::size_t i = 0; i < scores.size(); ++i)
      result.points.push_back({attack.id, i, scores[i], labels[i]});
  }
  return result;
}

}  // namespace xsec::core
