// Detection evaluation harness: regenerates the numbers behind Table 2 and
// the series behind Figure 4 from collected datasets.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/datasets.hpp"
#include "detect/scorer.hpp"
#include "dl/metrics.hpp"

namespace xsec::core {

struct EvalConfig {
  std::size_t window_size = 5;
  detect::FeatureConfig features;
  detect::DetectorConfig detector;
  /// Cross-validation folds for the benign dataset rows.
  std::size_t cv_folds = 5;
  /// Autoencoder encoder widths (mirrored decoder).
  std::vector<std::size_t> ae_hidden = {128, 32};
  std::size_t lstm_hidden = 64;
  /// Threshold calibration for the attack-dataset rows:
  ///   kTrainingSet   — the paper's method (99th pct of TRAINING scores);
  ///   kHeldOutCapture — train on all benign captures but the last,
  ///                     calibrate on the held-out one. Eliminates false
  ///                     positives on unseen captures but, at these
  ///                     dataset sizes, the held-out tail overlaps the
  ///                     attack scores and recall collapses (ablation A6).
  enum class Calibration { kTrainingSet, kHeldOutCapture };
  Calibration calibration = Calibration::kTrainingSet;
};

/// kEnsemble is the Kitsune-style extension (not part of the paper's
/// Table 2); the evaluation harness supports it for the ablation bench.
enum class ModelKind { kAutoencoder, kLstm, kEnsemble };
std::string to_string(ModelKind kind);

std::unique_ptr<detect::AnomalyDetector> make_detector(
    ModelKind kind, std::size_t window_size, std::size_t feature_dim,
    const EvalConfig& config);

/// One row of Table 2.
struct EvalRow {
  std::string dataset;  // "Benign" | "Attack"
  std::string model;    // "Autoencoder" | "LSTM"
  dl::Confusion confusion;
};

struct Table2Result {
  std::vector<EvalRow> rows;  // Benign×{AE,LSTM}, Attack×{AE,LSTM}
  /// Per-attack breakdown on the attack datasets (recall per attack).
  struct PerAttack {
    std::string attack;
    std::string model;
    dl::Confusion confusion;
    /// Event-level: was at least one window of the attack flagged? This is
    /// the paper's headline "100% detection rate" criterion.
    bool detected = false;
  };
  std::vector<PerAttack> per_attack;
};

/// Benign rows: k-fold cross-validation — train on k-1 folds of benign
/// windows, threshold at the configured percentile, classify the held-out
/// fold (every flag is a false positive). Attack rows: train on the full
/// benign dataset, test on each attack dataset's mixed windows.
Table2Result run_table2(const LabeledDatasets& datasets,
                        const EvalConfig& config);

/// Figure 4 data: per-window reconstruction errors of the AE over every
/// attack dataset, with window labels and attack ids, plus the threshold.
struct Figure4Result {
  struct Point {
    std::string attack_id;
    std::size_t window_index = 0;
    double error = 0.0;
    bool malicious = false;
  };
  std::vector<Point> points;
  double threshold = 0.0;
};

Figure4Result run_figure4(const LabeledDatasets& datasets,
                          const EvalConfig& config);

/// Trains a detector of the given kind on the benign dataset (the SMO
/// training step) and returns it ready for deployment into MobiWatch.
std::shared_ptr<detect::AnomalyDetector> train_detector(
    ModelKind kind, const mobiflow::Trace& benign, const EvalConfig& config);
std::shared_ptr<detect::AnomalyDetector> train_detector(
    ModelKind kind, const std::vector<mobiflow::Trace>& benign_captures,
    const EvalConfig& config);

}  // namespace xsec::core
