#include "core/datasets.hpp"

#include "mobiflow/agent.hpp"

namespace xsec::core {

namespace {

/// Shared scenario driver: wires a collection-only agent (record sink, no
/// RIC) into a testbed, runs traffic + optional attack, labels records.
mobiflow::Trace run_scenario(const ScenarioConfig& config,
                             attacks::Attack* attack, SimTime attack_at) {
  sim::Testbed testbed(config.testbed);

  std::vector<mobiflow::Record> records;
  mobiflow::AgentHooks hooks;
  hooks.now = [&testbed] { return testbed.now(); };
  hooks.schedule = [&testbed](SimDuration d, std::function<void()> fn) {
    testbed.queue().schedule_after(d, std::move(fn));
  };
  hooks.to_ric = [](std::uint64_t, Bytes) {};  // collection mode: no RIC
  mobiflow::RicAgent agent(1, std::move(hooks));
  agent.attach(testbed.taps());
  agent.set_record_sink(
      [&records](const mobiflow::Record& r) { records.push_back(r); });

  sim::BenignTrafficGenerator generator(&testbed, config.traffic);
  generator.schedule_all();

  if (attack) attack->launch(testbed, attack_at);

  testbed.run_for(config.run_time);

  mobiflow::Trace trace;
  for (const auto& record : records)
    trace.add(record, attack ? attack->is_malicious(record) : false);
  return trace;
}

}  // namespace

mobiflow::Trace collect_benign(const ScenarioConfig& config) {
  return run_scenario(config, nullptr, SimTime{0});
}

mobiflow::Trace collect_attack(attacks::Attack& attack,
                               const ScenarioConfig& config,
                               SimTime attack_at) {
  return run_scenario(config, &attack, attack_at);
}

LabeledDatasets collect_all(std::uint64_t seed, int benign_sessions,
                            int background_sessions) {
  LabeledDatasets datasets;

  // Three independent benign capture campaigns (different testbed seeds),
  // mirroring the paper's multi-device, multi-session collection.
  constexpr int kBenignCaptures = 3;
  int per_capture = benign_sessions / kBenignCaptures;
  for (int capture = 0; capture < kBenignCaptures; ++capture) {
    ScenarioConfig benign_config;
    benign_config.testbed.seed = seed + static_cast<std::uint64_t>(capture);
    benign_config.traffic.seed =
        (seed + static_cast<std::uint64_t>(capture)) ^ 0xbe9197;
    benign_config.traffic.num_sessions = per_capture;
    // Vary the offered load across captures so the model sees light and
    // busy cells (60/100/140ms mean inter-arrival).
    benign_config.traffic.arrival_mean =
        SimDuration::from_ms(60.0 + 40.0 * capture);
    // Cover all scheduled arrivals plus a generous drain tail.
    benign_config.run_time =
        SimDuration::from_us(benign_config.traffic.arrival_mean.us *
                             per_capture) +
        SimDuration::from_s(3);
    datasets.benign.push_back(collect_benign(benign_config));
  }

  auto attacks = attacks::make_all_attacks();
  std::uint64_t attack_seed = seed + 1;
  for (auto& attack : attacks) {
    ScenarioConfig attack_config;
    attack_config.testbed.seed = attack_seed;
    attack_config.traffic.seed = attack_seed ^ 0xa77ac4;
    attack_config.traffic.num_sessions = background_sessions;
    SimDuration background_span = SimDuration::from_us(
        attack_config.traffic.arrival_mean.us * background_sessions);
    attack_config.run_time = background_span + SimDuration::from_s(3);
    // Launch mid-way through the background traffic.
    mobiflow::Trace trace = collect_attack(
        *attack, attack_config,
        SimTime{background_span.us * 2 / 5});
    datasets.attacks.push_back(
        {attack->id(), attack->display_name(), std::move(trace)});
    ++attack_seed;
  }
  return datasets;
}

}  // namespace xsec::core
