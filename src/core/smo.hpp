// SMO / non-RT RIC training rApp.
//
// Per the paper (§2.1, §3.2 and Figure 3), time-insensitive tasks — model
// (re)training in particular — run in the Service Management and
// Orchestration layer on non-real-time RICs, then deploy into the near-RT
// xApps. This rApp periodically harvests the telemetry MobiWatch persisted
// to the SDL, retrains the configured detector on it (telemetry collected
// while no incident was flagged is treated as benign), and hot-swaps the
// model into MobiWatch.
#pragma once

#include "core/evaluation.hpp"
#include "core/pipeline.hpp"

namespace xsec::core {

struct TrainingRAppConfig {
  ModelKind model = ModelKind::kAutoencoder;
  EvalConfig eval;
  /// Non-RT loop period (>= 1s per the O-RAN latency classes).
  SimDuration period = SimDuration::from_s(2);
  /// Minimum telemetry records required before (re)training.
  std::size_t min_records = 400;
  /// SDL namespace MobiWatch stores telemetry under.
  std::string sdl_namespace = "mobiflow";
};

class TrainingRApp {
 public:
  TrainingRApp(Pipeline* pipeline, TrainingRAppConfig config);

  /// Arms the periodic training loop on the pipeline's event queue.
  void start();

  std::size_t retrains_completed() const { return retrains_; }
  std::size_t records_harvested() const { return harvested_; }
  /// Threshold of the most recently deployed model (0 before the first).
  double deployed_threshold() const { return deployed_threshold_; }

 private:
  void tick();
  /// Reads all telemetry rows currently in the SDL into a trace.
  mobiflow::Trace harvest();

  Pipeline* pipeline_;
  TrainingRAppConfig config_;
  std::size_t retrains_ = 0;
  std::size_t harvested_ = 0;
  double deployed_threshold_ = 0.0;
};

}  // namespace xsec::core
