// SMO / non-RT RIC training rApp.
//
// Per the paper (§2.1, §3.2 and Figure 3), time-insensitive tasks — model
// (re)training in particular — run in the Service Management and
// Orchestration layer on non-real-time RICs, then deploy into the near-RT
// xApps. This rApp periodically harvests the telemetry MobiWatch persisted
// to the SDL, retrains the configured detector on it (telemetry collected
// while no incident was flagged is treated as benign), and hot-swaps the
// model into MobiWatch.
#pragma once

#include <functional>
#include <string>

#include "core/evaluation.hpp"
#include "core/pipeline.hpp"
#include "obs/export.hpp"
#include "oran/xapp.hpp"

namespace xsec::core {

struct TrainingRAppConfig {
  ModelKind model = ModelKind::kAutoencoder;
  EvalConfig eval;
  /// Non-RT loop period (>= 1s per the O-RAN latency classes).
  SimDuration period = SimDuration::from_s(2);
  /// Minimum telemetry records required before (re)training.
  std::size_t min_records = 400;
  /// SDL namespace MobiWatch stores telemetry under.
  std::string sdl_namespace = "mobiflow";
};

struct MetricsReportConfig {
  /// How often a snapshot is exported. Must be > 0 to arm the loop.
  SimDuration period = SimDuration::from_s(1);
  /// SDL namespace the rendered exports are stored under.
  std::string sdl_namespace = "obs";
};

/// Periodic telemetry exporter (the SMO-facing end of the observability
/// subsystem). Every period it renders the platform registry as both
/// Prometheus text and a JSON snapshot, persists them to the SDL
/// ("<ns>/prometheus", "<ns>/json"), and publishes a kMtMetricsReport
/// message so SMO shims / rApps can stream the export off-platform.
class MetricsReportXapp : public oran::XApp {
 public:
  using Scheduler = std::function<void(SimDuration, std::function<void()>)>;

  MetricsReportXapp(MetricsReportConfig config, Scheduler scheduler);

  void on_start() override;

  std::size_t reports_emitted() const;
  /// The most recent Prometheus rendering (empty before the first tick).
  std::string latest_prometheus();
  /// The most recent JSON snapshot (empty before the first tick).
  std::string latest_json();

 private:
  void tick();

  MetricsReportConfig config_;
  Scheduler scheduler_;
};

/// Renders the pipeline's full registry as Prometheus exposition text.
std::string prometheus_report(Pipeline& pipeline);
/// Renders the pipeline's registry + span ledger as a JSON snapshot.
std::string json_report(Pipeline& pipeline);
/// Renders the incident-centric export: every analyzed incident (SDL
/// analysis reports), the mitigation per-action audit trail (issue /
/// escalate / ack / rollback, each with its cause and the model version
/// in force), and the model-lifecycle event log. Byte-stable under a
/// fixed seed at any shard count.
std::string incident_report(Pipeline& pipeline);

class TrainingRApp {
 public:
  TrainingRApp(Pipeline* pipeline, TrainingRAppConfig config);

  /// Arms the periodic training loop on the pipeline's event queue.
  void start();

  std::size_t retrains_completed() const { return retrains_; }
  std::size_t records_harvested() const { return harvested_; }
  /// Threshold of the most recently deployed model (0 before the first).
  double deployed_threshold() const { return deployed_threshold_; }

 private:
  void tick();
  /// Reads all telemetry rows currently in the SDL into a trace.
  mobiflow::Trace harvest();

  Pipeline* pipeline_;
  TrainingRAppConfig config_;
  std::size_t retrains_ = 0;
  std::size_t harvested_ = 0;
  double deployed_threshold_ = 0.0;
};

}  // namespace xsec::core
