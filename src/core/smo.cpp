#include "core/smo.hpp"

#include "common/log.hpp"

namespace xsec::core {

TrainingRApp::TrainingRApp(Pipeline* pipeline, TrainingRAppConfig config)
    : pipeline_(pipeline), config_(std::move(config)) {}

void TrainingRApp::start() {
  pipeline_->testbed().queue().schedule_after(config_.period,
                                              [this] { tick(); });
}

mobiflow::Trace TrainingRApp::harvest() {
  mobiflow::Trace trace;
  oran::Sdl& sdl = pipeline_->ric().sdl();
  for (const std::string& key : sdl.keys(config_.sdl_namespace)) {
    auto raw = sdl.get(config_.sdl_namespace, key);
    if (!raw) continue;
    auto record = mobiflow::Record::from_kv_bytes(*raw);
    if (record) trace.add(std::move(record).value());
  }
  return trace;
}

void TrainingRApp::tick() {
  mobiflow::Trace trace = harvest();
  harvested_ = trace.size();
  if (trace.size() >= config_.min_records) {
    XSEC_LOG_INFO("smo", "retraining ", to_string(config_.model), " on ",
                  trace.size(), " telemetry records");
    auto detector = train_detector(config_.model, trace, config_.eval);
    deployed_threshold_ = detector->threshold();
    pipeline_->install_detector(
        std::move(detector), detect::FeatureEncoder(config_.eval.features));
    ++retrains_;
  }
  // Re-arm the non-RT loop.
  pipeline_->testbed().queue().schedule_after(config_.period,
                                              [this] { tick(); });
}

}  // namespace xsec::core
