#include "core/smo.hpp"

#include "common/log.hpp"

namespace xsec::core {

MetricsReportXapp::MetricsReportXapp(MetricsReportConfig config,
                                     Scheduler scheduler)
    : oran::XApp("metrics-report"),
      config_(std::move(config)),
      scheduler_(std::move(scheduler)) {}

void MetricsReportXapp::on_start() {
  if (scheduler_ && config_.period.us > 0)
    scheduler_(config_.period, [this] { tick(); });
}

void MetricsReportXapp::tick() {
  obs::Observability& o = obs();
  std::string prometheus = obs::render_prometheus(o.metrics);
  std::string json = obs::render_json(o.metrics, &o.tracer);
  sdl().set_str(config_.sdl_namespace, "prometheus", prometheus);
  sdl().set_str(config_.sdl_namespace, "json", json);
  o.metrics.counter("obs.reports_emitted").inc();

  oran::RoutedMessage msg;
  msg.mtype = oran::kMtMetricsReport;
  msg.source = name();
  msg.payload = Bytes(prometheus.begin(), prometheus.end());
  router().publish(msg);

  scheduler_(config_.period, [this] { tick(); });
}

std::size_t MetricsReportXapp::reports_emitted() const {
  auto* counter = obs().metrics.find_counter("obs.reports_emitted");
  return counter ? counter->value() : 0;
}

std::string MetricsReportXapp::latest_prometheus() {
  return sdl().get_str(config_.sdl_namespace, "prometheus").value_or("");
}

std::string MetricsReportXapp::latest_json() {
  return sdl().get_str(config_.sdl_namespace, "json").value_or("");
}

std::string prometheus_report(Pipeline& pipeline) {
  return obs::render_prometheus(pipeline.metrics());
}

std::string json_report(Pipeline& pipeline) {
  return obs::render_json(pipeline.metrics(), &pipeline.tracer());
}

std::string incident_report(Pipeline& pipeline) {
  oran::Sdl& sdl = pipeline.ric().sdl();
  std::string out = "=== Incident export ===\n";

  out += "--- Analyzed incidents ---\n";
  for (const std::string& key : sdl.keys("xsec-reports"))
    if (auto text = sdl.get_str("xsec-reports", key)) out += *text;

  out += "--- Mitigation audit trail ---\n";
  for (const std::string& key : sdl.keys("mitigate"))
    if (auto text = sdl.get_str("mitigate", key)) out += *text + "\n";

  out += "--- Model lifecycle log ---\n";
  for (const std::string& key : sdl.keys("model"))
    if (key.rfind("log-", 0) == 0)
      if (auto text = sdl.get_str("model", key)) out += *text + "\n";

  return out;
}

TrainingRApp::TrainingRApp(Pipeline* pipeline, TrainingRAppConfig config)
    : pipeline_(pipeline), config_(std::move(config)) {}

void TrainingRApp::start() {
  pipeline_->testbed().queue().schedule_after(config_.period,
                                              [this] { tick(); });
}

mobiflow::Trace TrainingRApp::harvest() {
  mobiflow::Trace trace;
  oran::Sdl& sdl = pipeline_->ric().sdl();
  for (const std::string& key : sdl.keys(config_.sdl_namespace)) {
    auto raw = sdl.get(config_.sdl_namespace, key);
    if (!raw) continue;
    auto record = mobiflow::Record::from_kv_bytes(*raw);
    if (record) trace.add(std::move(record).value());
  }
  return trace;
}

void TrainingRApp::tick() {
  mobiflow::Trace trace = harvest();
  harvested_ = trace.size();
  if (trace.size() >= config_.min_records) {
    XSEC_LOG_INFO("smo", "retraining ", to_string(config_.model), " on ",
                  trace.size(), " telemetry records");
    auto detector = train_detector(config_.model, trace, config_.eval);
    deployed_threshold_ = detector->threshold();
    pipeline_->install_detector(
        std::move(detector), detect::FeatureEncoder(config_.eval.features));
    ++retrains_;
  }
  // Re-arm the non-RT loop.
  pipeline_->testbed().queue().schedule_after(config_.period,
                                              [this] { tick(); });
}

}  // namespace xsec::core
