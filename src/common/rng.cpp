#include "common/rng.hpp"

#include <cassert>
#include <cmath>

namespace xsec {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  has_cached_normal_ = false;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t lo, std::uint64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = hi - lo;
  if (span == max()) return next();
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t bound = span + 1;
  const std::uint64_t limit = max() - max() % bound;
  std::uint64_t draw;
  do {
    draw = next();
  } while (draw >= limit);
  return lo + draw % bound;
}

std::int64_t Rng::uniform_i64(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo);
  return lo + static_cast<std::int64_t>(uniform_u64(0, span));
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::chance(double probability) {
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  return uniform() < probability;
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double draw = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork() {
  // Mixing two independent draws through splitmix gives a child seed that is
  // decorrelated from the parent's subsequent output.
  std::uint64_t mixed = next() ^ rotl(next(), 31);
  return Rng(splitmix64(mixed));
}

}  // namespace xsec
