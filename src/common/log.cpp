#include "common/log.hpp"

#include <iostream>

namespace xsec {

std::mutex Log::mutex_;
LogLevel Log::level_ = LogLevel::kWarn;
bool Log::capture_ = false;
std::string Log::buffer_;

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void Log::set_level(LogLevel level) {
  std::lock_guard lock(mutex_);
  level_ = level;
}

LogLevel Log::level() {
  std::lock_guard lock(mutex_);
  return level_;
}

void Log::capture(bool enable) {
  std::lock_guard lock(mutex_);
  capture_ = enable;
  buffer_.clear();
}

std::string Log::captured() {
  std::lock_guard lock(mutex_);
  return buffer_;
}

void Log::write(LogLevel level, std::string_view component,
                std::string_view message) {
  std::lock_guard lock(mutex_);
  std::string line;
  line.reserve(component.size() + message.size() + 16);
  line += '[';
  line += level_name(level);
  line += "] [";
  line += component;
  line += "] ";
  line += message;
  line += '\n';
  if (capture_) {
    buffer_ += line;
  } else {
    std::cerr << line;
  }
}

}  // namespace xsec
