#include "common/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace xsec {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return std::string(text.substr(begin, end - begin));
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string to_upper(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(text.substr(start));
      break;
    }
    out.append(text.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
  return out;
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string format_percent(double fraction, int decimals) {
  if (std::isnan(fraction)) return "N/A";
  return format_fixed(fraction * 100.0, decimals) + "%";
}

std::string pad_right(std::string_view text, std::size_t width) {
  std::string out(text);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string pad_left(std::string_view text, std::size_t width) {
  std::string out(text);
  if (out.size() < width) out.insert(0, width - out.size(), ' ');
  return out;
}

std::string wrap_text(std::string_view text, std::size_t columns) {
  std::string out;
  for (const auto& paragraph : split(text, '\n')) {
    std::size_t line_len = 0;
    std::istringstream words(paragraph);
    std::string word;
    bool first = true;
    while (words >> word) {
      if (!first && line_len + 1 + word.size() > columns) {
        out += '\n';
        line_len = 0;
        first = true;
      }
      if (!first) {
        out += ' ';
        ++line_len;
      }
      out += word;
      line_len += word.size();
      first = false;
    }
    out += '\n';
  }
  if (!out.empty()) out.pop_back();
  return out;
}

}  // namespace xsec
