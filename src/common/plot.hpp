// Terminal scatter/series plotting used to regenerate the paper's figures
// (e.g., Figure 4's reconstruction-error visualization) without a plotting
// dependency. Points can carry a per-series glyph, and a horizontal
// threshold line can be drawn (the detection threshold in Figure 4).
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace xsec {

struct PlotPoint {
  double x = 0.0;
  double y = 0.0;
  char glyph = '*';
};

class AsciiPlot {
 public:
  AsciiPlot(std::size_t width, std::size_t height)
      : width_(width), height_(height) {}

  void add_point(double x, double y, char glyph = '*') {
    points_.push_back({x, y, glyph});
  }
  void add_series(const std::vector<double>& ys, char glyph);
  void set_threshold(double y) { threshold_ = y; }
  void set_y_log() { y_log_ = true; }
  void set_title(std::string title) { title_ = std::move(title); }
  void set_y_label(std::string label) { y_label_ = std::move(label); }

  std::string render() const;

 private:
  std::size_t width_;
  std::size_t height_;
  std::vector<PlotPoint> points_;
  std::optional<double> threshold_;
  bool y_log_ = false;
  std::string title_;
  std::string y_label_;
};

/// Computes the p-th percentile (0..100) by linear interpolation on a copy
/// of the data (the same convention numpy uses, which the paper's
/// 99%-percentile threshold selection relies on).
double percentile(std::vector<double> values, double p);

}  // namespace xsec
