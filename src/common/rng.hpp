// Deterministic pseudo-random number generation.
//
// Every stochastic component in the reproduction (traffic generator, radio
// loss model, neural-network initialization, attack timing) draws from an
// explicitly seeded Rng so that experiments are bit-reproducible. The
// generator is xoshiro256** (public domain, Blackman & Vigna) seeded via
// splitmix64, which is both fast and statistically strong enough for
// simulation workloads.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace xsec {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x6a09e667f3bcc908ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Raw 64-bit draw (UniformRandomBitGenerator interface).
  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi);
  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi);
  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Standard normal via Box-Muller (cached second draw).
  double normal();
  double normal(double mean, double stddev);
  /// Bernoulli trial.
  bool chance(double probability);
  /// Exponentially distributed draw with the given mean (> 0).
  double exponential(double mean);
  /// Pick an index proportionally to the (non-negative) weights.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Derives an independent child stream; the child's sequence does not
  /// overlap with the parent's regardless of how many draws either makes.
  Rng fork();

  template <typename It>
  void shuffle(It first, It last) {
    auto n = static_cast<std::uint64_t>(last - first);
    for (std::uint64_t i = n; i > 1; --i) {
      auto j = uniform_u64(0, i - 1);
      std::swap(first[i - 1], first[j]);
    }
  }

 private:
  std::uint64_t next();

  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace xsec
