#include "common/table.hpp"

#include <cassert>
#include <filesystem>
#include <fstream>

#include "common/log.hpp"

namespace xsec {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back({std::move(cells), pending_separator_});
  pending_separator_ = false;
}

void Table::add_separator() { pending_separator_ = true; }

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.cells.size(); ++c)
      widths[c] = std::max(widths[c], row.cells[c].size());

  auto rule = [&] {
    std::string line = "+";
    for (std::size_t w : widths) line += std::string(w + 2, '-') + "+";
    line += '\n';
    return line;
  };
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += ' ';
      line += cells[c];
      line += std::string(widths[c] - cells[c].size() + 1, ' ');
      line += '|';
    }
    line += '\n';
    return line;
  };

  std::string out = rule();
  out += render_row(headers_);
  out += rule();
  for (const auto& row : rows_) {
    if (row.separator_before) out += rule();
    out += render_row(row.cells);
  }
  out += rule();
  return out;
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out += ',';
    out += csv_escape(headers_[c]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      if (c) out += ',';
      out += csv_escape(row.cells[c]);
    }
    out += '\n';
  }
  return out;
}

bool write_file(const std::string& path, const std::string& content) {
  std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
    if (ec) {
      XSEC_LOG_ERROR("io", "create_directories failed for ", path, ": ",
                     ec.message());
      return false;
    }
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    XSEC_LOG_ERROR("io", "cannot open for write: ", path);
    return false;
  }
  out << content;
  return static_cast<bool>(out);
}

}  // namespace xsec
