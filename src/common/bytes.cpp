#include "common/bytes.hpp"

#include <bit>

namespace xsec {

void ByteWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v >> 8));
  u8(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v >> 16));
  u16(static_cast<std::uint16_t>(v));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

void ByteWriter::f64(double v) {
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  u64(std::bit_cast<std::uint64_t>(v));
}

void ByteWriter::varint(std::uint64_t v) {
  while (v >= 0x80) {
    u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  u8(static_cast<std::uint8_t>(v));
}

void ByteWriter::str(std::string_view v) {
  u32(static_cast<std::uint32_t>(v.size()));
  buf_.insert(buf_.end(), v.begin(), v.end());
}

Result<std::uint8_t> ByteReader::u8() {
  if (!need(1)) return Error::make("truncated", "u8 past end of buffer");
  return data_[pos_++];
}

Result<std::uint16_t> ByteReader::u16() {
  if (!need(2)) return Error::make("truncated", "u16 past end of buffer");
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

Result<std::uint32_t> ByteReader::u32() {
  if (!need(4)) return Error::make("truncated", "u32 past end of buffer");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 4;
  return v;
}

Result<std::uint64_t> ByteReader::u64() {
  if (!need(8)) return Error::make("truncated", "u64 past end of buffer");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 8;
  return v;
}

Result<std::int64_t> ByteReader::i64() {
  auto v = u64();
  if (!v) return v.error();
  return static_cast<std::int64_t>(v.value());
}

Result<double> ByteReader::f64() {
  auto v = u64();
  if (!v) return v.error();
  return std::bit_cast<double>(v.value());
}

Result<bool> ByteReader::boolean() {
  auto v = u8();
  if (!v) return v.error();
  if (v.value() > 1) return Error::make("malformed", "boolean byte > 1");
  return v.value() == 1;
}

Result<std::uint64_t> ByteReader::varint() {
  // Fast paths for the overwhelmingly common encodings: MobiFlow record
  // fields are small enums/ids, so nearly every varint on the zero-copy
  // ingest path is one byte (values < 128) or two (values < 16384).
  if (pos_ < size_) {
    const std::uint8_t b0 = data_[pos_];
    if (!(b0 & 0x80)) {
      ++pos_;
      return static_cast<std::uint64_t>(b0);
    }
    if (size_ - pos_ >= 2) {
      const std::uint8_t b1 = data_[pos_ + 1];
      if (!(b1 & 0x80)) {
        pos_ += 2;
        return (static_cast<std::uint64_t>(b1) << 7) |
               static_cast<std::uint64_t>(b0 & 0x7f);
      }
    }
  }
  // General loop for longer encodings, truncation, and malformed input —
  // error strings and the wrap semantics of 10-byte varints are unchanged.
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (shift >= 64) return Error::make("malformed", "varint too long");
    auto b = u8();
    if (!b) return b.error();
    v |= static_cast<std::uint64_t>(b.value() & 0x7f) << shift;
    if (!(b.value() & 0x80)) break;
    shift += 7;
  }
  return v;
}

Result<std::string> ByteReader::str() {
  auto n = u32();
  if (!n) return n.error();
  if (!need(n.value()))
    return Error::make("truncated", "string body past end of buffer");
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n.value());
  pos_ += n.value();
  return s;
}

Result<Bytes> ByteReader::raw(std::size_t n) {
  if (!need(n)) return Error::make("truncated", "raw read past end of buffer");
  Bytes out(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return out;
}

Result<std::span<const std::uint8_t>> ByteReader::view(std::size_t n) {
  if (!need(n)) return Error::make("truncated", "view past end of buffer");
  std::span<const std::uint8_t> out(data_ + pos_, n);
  pos_ += n;
  return out;
}

std::string to_hex(const Bytes& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  return out;
}

Result<Bytes> from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0)
    return Error::make("malformed", "hex string has odd length");
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = nibble(hex[i]);
    int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0)
      return Error::make("malformed", "non-hex character in hex string");
    out.push_back(static_cast<std::uint8_t>(hi << 4 | lo));
  }
  return out;
}

namespace {
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
}  // namespace

std::uint64_t fnv1a(const Bytes& bytes) {
  std::uint64_t h = kFnvOffset;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t h = kFnvOffset;
  for (char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace xsec
