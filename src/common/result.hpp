// A small expected/Result type for recoverable errors.
//
// Codec and protocol code returns Result<T> instead of throwing: malformed
// wire input is an expected condition at a network boundary (Core Guidelines
// E.14 applies exceptions to *errors*, but parse failures on untrusted input
// are part of the normal domain here and callers always check them).
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace xsec {

/// Error payload: a short machine-readable code plus human-readable context.
struct Error {
  std::string code;
  std::string message;

  static Error make(std::string code, std::string message = {}) {
    return Error{std::move(code), std::move(message)};
  }
};

template <typename T>
class Result {
 public:
  Result(T value) : storage_(std::in_place_index<0>, std::move(value)) {}
  Result(Error error) : storage_(std::in_place_index<1>, std::move(error)) {}

  bool ok() const { return storage_.index() == 0; }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<0>(storage_);
  }
  T& value() & {
    assert(ok());
    return std::get<0>(storage_);
  }
  T&& value() && {
    assert(ok());
    return std::get<0>(std::move(storage_));
  }

  const Error& error() const {
    assert(!ok());
    return std::get<1>(storage_);
  }

  T value_or(T fallback) const {
    return ok() ? std::get<0>(storage_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> storage_;
};

/// Result specialization for operations with no payload.
class Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)), failed_(true) {}

  static Status ok_status() { return Status(); }

  bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }
  const Error& error() const {
    assert(failed_);
    return error_;
  }

 private:
  Error error_;
  bool failed_ = false;
};

}  // namespace xsec
