// Generic enum <-> name table.
//
// Every dense enum in the repo (telemetry vocab, model kinds, ...) pairs a
// `enum class E : uint8_t` whose underlying values run 0..N-1 with a fixed
// array of names. NameTable centralizes the two lookups so each enum gets
// to_name/parse helpers from one table instead of a hand-written switch.
#pragma once

#include <array>
#include <cstddef>
#include <optional>
#include <string_view>

namespace xsec {

template <typename E, std::size_t N>
class NameTable {
 public:
  constexpr explicit NameTable(std::array<std::string_view, N> names)
      : names_(names) {}

  static constexpr std::size_t size() { return N; }

  constexpr std::string_view name(E value) const {
    auto i = static_cast<std::size_t>(value);
    return i < N ? names_[i] : std::string_view("?");
  }

  constexpr std::optional<E> find(std::string_view name) const {
    for (std::size_t i = 0; i < N; ++i)
      if (names_[i] == name) return static_cast<E>(i);
    return std::nullopt;
  }

 private:
  std::array<std::string_view, N> names_;
};

/// Deduction helper: make_name_table<E>("a", "b", ...).
template <typename E, typename... Names>
constexpr NameTable<E, sizeof...(Names)> make_name_table(Names... names) {
  return NameTable<E, sizeof...(Names)>(
      std::array<std::string_view, sizeof...(Names)>{names...});
}

}  // namespace xsec
