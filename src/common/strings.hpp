// String helpers shared by the codec, prompt engine, and report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace xsec {

std::vector<std::string> split(std::string_view text, char delim);
std::string join(const std::vector<std::string>& parts, std::string_view sep);
std::string trim(std::string_view text);
std::string to_lower(std::string_view text);
std::string to_upper(std::string_view text);
bool starts_with(std::string_view text, std::string_view prefix);
bool contains(std::string_view haystack, std::string_view needle);
/// Replaces every occurrence of `from` with `to`.
std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to);
/// Fixed-precision decimal rendering ("3.14" for format_fixed(3.14159, 2)).
std::string format_fixed(double value, int decimals);
/// Percentage rendering used in evaluation tables ("93.23%").
std::string format_percent(double fraction, int decimals = 2);
/// Left/right padding to a column width.
std::string pad_right(std::string_view text, std::size_t width);
std::string pad_left(std::string_view text, std::size_t width);
/// Word-wraps text at the given column, preserving explicit newlines.
std::string wrap_text(std::string_view text, std::size_t columns);

}  // namespace xsec
