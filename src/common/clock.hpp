// Simulated-time primitives.
//
// The whole testbed runs on a discrete-event clock measured in microseconds.
// Using a strong type (rather than raw integers) keeps simulated time from
// mixing with wall-clock time in the perf benches.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace xsec {

/// Monotonic simulated timestamp, microseconds since simulation start.
struct SimTime {
  std::int64_t us = 0;

  auto operator<=>(const SimTime&) const = default;

  static SimTime from_ms(double ms) {
    return SimTime{static_cast<std::int64_t>(ms * 1000.0)};
  }
  static SimTime from_s(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e6)};
  }
  double to_ms() const { return static_cast<double>(us) / 1000.0; }
  double to_s() const { return static_cast<double>(us) / 1e6; }
};

/// Relative duration in simulated microseconds.
struct SimDuration {
  std::int64_t us = 0;

  auto operator<=>(const SimDuration&) const = default;

  static SimDuration from_us(std::int64_t us) { return SimDuration{us}; }
  static SimDuration from_ms(double ms) {
    return SimDuration{static_cast<std::int64_t>(ms * 1000.0)};
  }
  static SimDuration from_s(double s) {
    return SimDuration{static_cast<std::int64_t>(s * 1e6)};
  }
  double to_ms() const { return static_cast<double>(us) / 1000.0; }
};

inline SimTime operator+(SimTime t, SimDuration d) {
  return SimTime{t.us + d.us};
}
inline SimDuration operator-(SimTime a, SimTime b) {
  return SimDuration{a.us - b.us};
}
inline SimDuration operator+(SimDuration a, SimDuration b) {
  return SimDuration{a.us + b.us};
}
inline SimDuration operator*(SimDuration d, double k) {
  return SimDuration{static_cast<std::int64_t>(static_cast<double>(d.us) * k)};
}

inline std::string to_string(SimTime t) {
  return std::to_string(t.us) + "us";
}

}  // namespace xsec
