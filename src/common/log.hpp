// Minimal leveled logger used across the 6G-XSec codebase.
//
// The simulator is single-threaded by design (a discrete-event loop), but
// xApps may be exercised from test threads, so the sink is guarded by a
// mutex. Log lines carry a component tag so RIC / RAN / xApp output can be
// distinguished in interleaved end-to-end runs.
#pragma once

#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace xsec {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global logger configuration. Defaults to kWarn so tests and benches stay
/// quiet; examples raise it to kInfo to narrate the pipeline.
class Log {
 public:
  static void set_level(LogLevel level);
  static LogLevel level();

  /// Redirects output into an internal buffer (used by tests that assert on
  /// log content). Passing false restores stderr output.
  static void capture(bool enable);
  static std::string captured();

  static void write(LogLevel level, std::string_view component,
                    std::string_view message);

 private:
  static std::mutex mutex_;
  static LogLevel level_;
  static bool capture_;
  static std::string buffer_;
};

namespace detail {
inline void log_fmt(std::ostringstream&) {}
template <typename T, typename... Rest>
void log_fmt(std::ostringstream& os, const T& value, const Rest&... rest) {
  os << value;
  log_fmt(os, rest...);
}
}  // namespace detail

template <typename... Args>
void log_at(LogLevel level, std::string_view component, const Args&... args) {
  if (level < Log::level()) return;
  std::ostringstream os;
  detail::log_fmt(os, args...);
  Log::write(level, component, os.str());
}

#define XSEC_LOG_TRACE(component, ...) \
  ::xsec::log_at(::xsec::LogLevel::kTrace, component, __VA_ARGS__)
#define XSEC_LOG_DEBUG(component, ...) \
  ::xsec::log_at(::xsec::LogLevel::kDebug, component, __VA_ARGS__)
#define XSEC_LOG_INFO(component, ...) \
  ::xsec::log_at(::xsec::LogLevel::kInfo, component, __VA_ARGS__)
#define XSEC_LOG_WARN(component, ...) \
  ::xsec::log_at(::xsec::LogLevel::kWarn, component, __VA_ARGS__)
#define XSEC_LOG_ERROR(component, ...) \
  ::xsec::log_at(::xsec::LogLevel::kError, component, __VA_ARGS__)

}  // namespace xsec
