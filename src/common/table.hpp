// ASCII table and CSV rendering for evaluation harnesses.
//
// Every bench binary reproduces a paper table by filling one of these and
// printing it; the same rows can be exported as CSV for plotting.
#pragma once

#include <string>
#include <vector>

namespace xsec {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Inserts a horizontal separator before the next added row.
  void add_separator();

  std::size_t row_count() const { return rows_.size(); }

  /// Boxed ASCII rendering with padded columns.
  std::string render() const;
  /// RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

/// Writes content to a file, creating parent directories as needed.
/// Returns false (and logs) on I/O failure.
bool write_file(const std::string& path, const std::string& content);

}  // namespace xsec
