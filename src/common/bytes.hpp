// Byte-buffer primitives for wire encoding.
//
// All protocol encodings in the reproduction (RRC/NAS codec, E2AP, MobiFlow
// key-value telemetry, trace files) are built on a single pair of
// reader/writer types. Integers are big-endian on the wire — matching
// network order used by the real ASN.1 PER / SCTP stacks this substitutes
// for — and variable-length fields carry an explicit u32 length prefix.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"

namespace xsec {

using Bytes = std::vector<std::uint8_t>;

class ByteWriter {
 public:
  ByteWriter() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// LEB128-style unsigned varint (7 bits per byte, high bit = continue).
  void varint(std::uint64_t v);
  /// u32 length prefix followed by raw bytes.
  void str(std::string_view v);
  void raw(const Bytes& v) { buf_.insert(buf_.end(), v.begin(), v.end()); }
  void raw(const std::uint8_t* data, std::size_t n) {
    buf_.insert(buf_.end(), data, data + n);
  }

  const Bytes& bytes() const { return buf_; }
  Bytes take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const Bytes& buf) : data_(buf.data()), size_(buf.size()) {}
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  Result<std::uint8_t> u8();
  Result<std::uint16_t> u16();
  Result<std::uint32_t> u32();
  Result<std::uint64_t> u64();
  Result<std::int64_t> i64();
  Result<double> f64();
  Result<bool> boolean();
  Result<std::uint64_t> varint();
  Result<std::string> str();
  Result<Bytes> raw(std::size_t n);
  /// Zero-copy read: a span over the next `n` bytes of the underlying
  /// buffer (no allocation). The span is only valid while the buffer the
  /// reader was constructed over stays alive and unmodified.
  Result<std::span<const std::uint8_t>> view(std::size_t n);

  std::size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }
  std::size_t position() const { return pos_; }

 private:
  bool need(std::size_t n) const { return size_ - pos_ >= n; }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Lowercase hex rendering of a byte span ("deadbeef").
std::string to_hex(const Bytes& bytes);
/// Parses lowercase/uppercase hex; fails on odd length or non-hex chars.
Result<Bytes> from_hex(std::string_view hex);

/// FNV-1a 64-bit hash, used for content digests in the SDL and trace files.
std::uint64_t fnv1a(const Bytes& bytes);
std::uint64_t fnv1a(std::string_view text);

}  // namespace xsec
