#include "common/plot.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/strings.hpp"

namespace xsec {

void AsciiPlot::add_series(const std::vector<double>& ys, char glyph) {
  for (std::size_t i = 0; i < ys.size(); ++i)
    add_point(static_cast<double>(points_.size()), ys[i], glyph);
}

std::string AsciiPlot::render() const {
  if (points_.empty()) return "(empty plot)\n";

  auto transform_y = [&](double y) {
    if (!y_log_) return y;
    return std::log10(std::max(y, 1e-12));
  };

  double min_x = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();
  for (const auto& p : points_) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, transform_y(p.y));
    max_y = std::max(max_y, transform_y(p.y));
  }
  if (threshold_) {
    min_y = std::min(min_y, transform_y(*threshold_));
    max_y = std::max(max_y, transform_y(*threshold_));
  }
  if (max_x == min_x) max_x = min_x + 1.0;
  if (max_y == min_y) max_y = min_y + 1.0;

  std::vector<std::string> grid(height_, std::string(width_, ' '));
  auto col_of = [&](double x) {
    auto c = static_cast<std::size_t>((x - min_x) / (max_x - min_x) *
                                      static_cast<double>(width_ - 1));
    return std::min(c, width_ - 1);
  };
  auto row_of = [&](double y) {
    double ty = transform_y(y);
    auto r = static_cast<std::size_t>((ty - min_y) / (max_y - min_y) *
                                      static_cast<double>(height_ - 1));
    return height_ - 1 - std::min(r, height_ - 1);
  };

  if (threshold_) {
    std::size_t r = row_of(*threshold_);
    for (std::size_t c = 0; c < width_; ++c) grid[r][c] = '-';
  }
  for (const auto& p : points_) grid[row_of(p.y)][col_of(p.x)] = p.glyph;

  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  if (!y_label_.empty()) out += y_label_ + "\n";
  for (std::size_t r = 0; r < height_; ++r) {
    // Y-axis tick value for this row (inverse of row_of's mapping).
    double frac = static_cast<double>(height_ - 1 - r) /
                  static_cast<double>(height_ - 1);
    double ty = min_y + frac * (max_y - min_y);
    double y = y_log_ ? std::pow(10.0, ty) : ty;
    out += pad_left(format_fixed(y, y_log_ ? 4 : 2), 10);
    out += " |";
    out += grid[r];
    out += '\n';
  }
  out += std::string(11, ' ') + '+' + std::string(width_, '-') + '\n';
  return out;
}

double percentile(std::vector<double> values, double p) {
  assert(!values.empty());
  assert(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  auto lo = static_cast<std::size_t>(std::floor(rank));
  auto hi = static_cast<std::size_t>(std::ceil(rank));
  double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

}  // namespace xsec
