// Stable hashing for shard assignment.
//
// Shard placement must be a pure function of the telemetry source identity
// (node/UE ids), never of arrival order or pointer values: the sharded RIC's
// determinism oracle is that the same seed produces the same outputs at any
// shard count, and that only holds if a source always lands on the shard its
// key dictates. splitmix64 is the standard 64-bit finalizer (Steele et al.),
// strong enough to spread consecutive ids across shards.
#pragma once

#include <cstddef>
#include <cstdint>

namespace xsec {

/// splitmix64 finalizer: bijective, well-mixed 64-bit hash.
constexpr std::uint64_t hash64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines two ids into one stable key (node + UE -> source key).
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return hash64(a ^ (hash64(b) + 0x9e3779b97f4a7c15ULL + (a << 6)));
}

/// Shard index for a key: stable across runs, processes, and shard layouts
/// with the same `shards` count.
constexpr std::size_t shard_of(std::uint64_t key, std::size_t shards) {
  return shards <= 1 ? 0 : static_cast<std::size_t>(hash64(key) % shards);
}

}  // namespace xsec
