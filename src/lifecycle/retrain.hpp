// Incremental retraining: benign-window ring buffer + candidate trainer.
//
// Windows that cleared the active detector (and windows a mitigation
// rollback proved to be false positives) accumulate in a bounded ring.
// When drift fires, the harvest is sanitized — low-trust sources and
// score outliers are dropped so a poisoning source cannot steer the
// fine-tune set — and a CLONE of the active detector is fine-tuned off
// the hot path. The active model keeps serving verdicts untouched until
// the candidate survives shadow scoring.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/result.hpp"
#include "detect/scorer.hpp"
#include "dl/tensor.hpp"

namespace xsec::lifecycle {

struct RingConfig {
  /// Windows retained (oldest evicted first).
  std::size_t capacity = 512;
  /// Sources below this trust score are excluded from the training set.
  double min_trust = 0.5;
  /// Windows scoring above this percentile of the ring's own score
  /// distribution are excluded (near-threshold stragglers a poisoner
  /// would use to drag the threshold upward).
  double outlier_quantile = 99.0;
};

struct RingEntry {
  std::uint64_t node_id = 0;
  std::uint64_t ue_id = 0;
  /// Active-model score at observation time (outlier filter input).
  double score = 0.0;
  /// True when a mitigation false-positive rollback vouched for this
  /// window; bypasses the outlier filter (it was flagged precisely
  /// because it scored high) but not the trust filter.
  bool fp_evidence = false;
  /// Raw (unstandardized) feature rows, flattened row-major.
  std::vector<float> rows;
};

class BenignRing {
 public:
  explicit BenignRing(RingConfig config = {}) : config_(config) {}

  void push(RingEntry entry);
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }
  const RingConfig& config() const { return config_; }

  /// Trust lookup for a source (1.0 = fully trusted); wired to the
  /// mitigation xApp's per-source trust ledger when available.
  using TrustFn = std::function<double(std::uint64_t node, std::uint64_t ue)>;

  struct Harvest {
    /// Sanitized training windows, one flattened window per row.
    dl::Matrix windows;
    std::size_t dropped_trust = 0;
    std::size_t dropped_outlier = 0;
  };

  /// Applies the trust and outlier filters and assembles the surviving
  /// windows into a training matrix. The ring itself is left intact
  /// (callers clear() after a successful retrain).
  Harvest harvest(const TrustFn& trust) const;

 private:
  RingConfig config_;
  std::deque<RingEntry> entries_;
};

struct RetrainConfig {
  /// Sanitized windows required before a retrain is attempted.
  std::size_t min_windows = 64;
  detect::FineTuneConfig tune;
};

struct RetrainResult {
  std::unique_ptr<detect::AnomalyDetector> candidate;
  /// Candidate scores over the training windows (seeds the drift
  /// baseline after promotion).
  std::vector<double> training_scores;
  std::size_t windows_used = 0;
  std::size_t dropped_trust = 0;
  std::size_t dropped_outlier = 0;
};

/// Clones `active` and fine-tunes the clone on the ring's sanitized
/// harvest. `rows_per_window` is the detector's rows_needed(window_size)
/// — every ring window holds that many feature rows. Fails when the ring
/// cannot supply min_windows sanitized windows or the detector does not
/// support cloning/fine-tuning.
Result<RetrainResult> retrain_candidate(detect::AnomalyDetector& active,
                                        const BenignRing& ring,
                                        const BenignRing::TrustFn& trust,
                                        std::size_t rows_per_window,
                                        const RetrainConfig& config);

}  // namespace xsec::lifecycle
