// Streaming quantile sketch over anomaly scores.
//
// Drift detection needs a compact, mergeable summary of a score
// distribution that can be compared against a baseline. This sketch bins
// scores into fixed log-domain buckets (scores are reconstruction errors
// spanning many orders of magnitude), which makes every operation — add,
// quantile, divergence — integer-counted and therefore byte-deterministic
// across runs and shard counts.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace xsec::lifecycle {

class QuantileSketch {
 public:
  /// Log2-domain buckets at half-octave resolution covering scores in
  /// [2^-32, 2^32); everything below clamps to bucket 0, above to the top.
  static constexpr std::size_t kBuckets = 128;

  void add(double value);
  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Upper edge of the bucket containing the q-th quantile (q in [0,1]).
  /// 0 when the sketch is empty.
  double quantile(double q) const;

  /// Total-variation distance between the two sketches' normalized bucket
  /// distributions, in [0,1]. 0 when either sketch is empty.
  double divergence(const QuantileSketch& other) const;

  void merge_from(const QuantileSketch& other);
  void reset();

  void save(ByteWriter& w) const;
  Status load(ByteReader& r);

  static std::size_t bucket_of(double value);
  /// Upper edge of bucket b (the representative value quantile() returns).
  static double bucket_edge(std::size_t b);

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
};

/// Drift detector over one detector's benign-window score stream. The
/// baseline sketch captures the distribution the current model was trained
/// (or promoted) against; the recent sketch accumulates a rolling epoch of
/// fresh scores. Once the epoch is full, the two are compared and the
/// epoch resets — a divergence above the threshold is a drift event.
struct DriftConfig {
  /// Scores accumulated into the baseline before checks begin (only used
  /// when the baseline self-bootstraps from live traffic).
  std::size_t baseline_min = 128;
  /// Scores per recent epoch before a divergence check.
  std::size_t min_samples = 256;
  /// Total-variation distance that constitutes drift.
  double divergence_threshold = 0.35;
};

class DriftDetector {
 public:
  explicit DriftDetector(DriftConfig config = {}) : config_(config) {}

  /// Feeds one benign-window score. Returns true when this score completed
  /// an epoch whose distribution diverged from the baseline.
  bool observe(double score);

  /// Installs an explicit baseline (e.g. the candidate's training-score
  /// distribution after a promotion) and clears the recent epoch.
  void seed_baseline(const std::vector<double>& scores);

  /// Drops all state; the baseline re-bootstraps from live traffic.
  void reset();

  bool baseline_ready() const { return baseline_ready_; }
  double last_divergence() const { return last_divergence_; }
  std::uint64_t checks() const { return checks_; }
  const QuantileSketch& baseline() const { return baseline_; }
  const QuantileSketch& recent() const { return recent_; }

 private:
  DriftConfig config_;
  QuantileSketch baseline_;
  QuantileSketch recent_;
  bool baseline_ready_ = false;
  double last_divergence_ = 0.0;
  std::uint64_t checks_ = 0;
};

}  // namespace xsec::lifecycle
