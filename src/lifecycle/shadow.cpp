#include "lifecycle/shadow.hpp"

namespace xsec::lifecycle {

void ShadowScorer::observe(const float* rows, std::size_t n_rows,
                           double active_score, bool active_anomalous) {
  const double score = candidate_->score_window(rows, n_rows);
  const bool flagged = candidate_->is_anomalous(score);
  ++windows_;
  if (active_anomalous) {
    ++anomalous_windows_;
    if (flagged) ++anomalous_agreed_;
  } else {
    ++benign_windows_;
    if (flagged) ++benign_flagged_;
    benign_candidate_sum_ += score;
    benign_active_sum_ += active_score;
  }
}

double ShadowScorer::benign_flag_rate() const {
  if (benign_windows_ == 0) return 0.0;
  return static_cast<double>(benign_flagged_) /
         static_cast<double>(benign_windows_);
}

double ShadowScorer::mean_error_ratio() const {
  if (benign_windows_ == 0 || benign_active_sum_ <= 0.0) return 1.0;
  return benign_candidate_sum_ / benign_active_sum_;
}

double ShadowScorer::anomaly_agreement() const {
  if (anomalous_windows_ == 0) return 1.0;
  return static_cast<double>(anomalous_agreed_) /
         static_cast<double>(anomalous_windows_);
}

bool ShadowScorer::passes() const {
  if (!ready()) return false;
  if (benign_flag_rate() > gate_.max_benign_flag_rate) return false;
  if (mean_error_ratio() > gate_.max_mean_error_ratio) return false;
  if (anomalous_windows_ > 0 &&
      anomaly_agreement() < gate_.min_anomaly_agreement)
    return false;
  return true;
}

}  // namespace xsec::lifecycle
