#include "lifecycle/sketch.hpp"

#include <algorithm>
#include <cmath>

namespace xsec::lifecycle {

std::size_t QuantileSketch::bucket_of(double value) {
  if (!(value > 0.0)) return 0;  // non-positive and NaN clamp to bucket 0
  // Half-octave resolution: bucket = (log2(v) + 32) * 2, clamped.
  double b = (std::log2(value) + 32.0) * 2.0;
  if (b < 0.0) return 0;
  if (b >= static_cast<double>(kBuckets - 1)) return kBuckets - 1;
  return static_cast<std::size_t>(b);
}

double QuantileSketch::bucket_edge(std::size_t b) {
  return std::exp2(static_cast<double>(b + 1) * 0.5 - 32.0);
}

void QuantileSketch::add(double value) {
  ++buckets_[bucket_of(value)];
  ++count_;
}

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank as an integer so ties resolve identically everywhere.
  const std::uint64_t rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen > rank) return bucket_edge(b);
  }
  return bucket_edge(kBuckets - 1);
}

double QuantileSketch::divergence(const QuantileSketch& other) const {
  if (count_ == 0 || other.count_ == 0) return 0.0;
  double tv = 0.0;
  const double inv_a = 1.0 / static_cast<double>(count_);
  const double inv_b = 1.0 / static_cast<double>(other.count_);
  for (std::size_t b = 0; b < kBuckets; ++b) {
    double pa = static_cast<double>(buckets_[b]) * inv_a;
    double pb = static_cast<double>(other.buckets_[b]) * inv_b;
    tv += std::abs(pa - pb);
  }
  return 0.5 * tv;
}

void QuantileSketch::merge_from(const QuantileSketch& other) {
  for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  count_ += other.count_;
}

void QuantileSketch::reset() {
  buckets_.fill(0);
  count_ = 0;
}

void QuantileSketch::save(ByteWriter& w) const {
  w.u64(count_);
  for (std::uint64_t b : buckets_) w.varint(b);
}

Status QuantileSketch::load(ByteReader& r) {
  auto count = r.u64();
  if (!count) return Status(count.error());
  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t total = 0;
  for (std::uint64_t& b : buckets) {
    auto v = r.varint();
    if (!v) return Status(v.error());
    b = v.value();
    total += b;
  }
  if (total != count.value())
    return Status(Error::make("corrupt", "sketch counts do not sum"));
  buckets_ = buckets;
  count_ = count.value();
  return Status::ok_status();
}

bool DriftDetector::observe(double score) {
  if (!baseline_ready_) {
    baseline_.add(score);
    if (baseline_.count() >= config_.baseline_min) baseline_ready_ = true;
    return false;
  }
  recent_.add(score);
  if (recent_.count() < config_.min_samples) return false;
  ++checks_;
  last_divergence_ = recent_.divergence(baseline_);
  recent_.reset();
  return last_divergence_ > config_.divergence_threshold;
}

void DriftDetector::seed_baseline(const std::vector<double>& scores) {
  baseline_.reset();
  recent_.reset();
  for (double s : scores) baseline_.add(s);
  baseline_ready_ = !scores.empty();
}

void DriftDetector::reset() {
  baseline_.reset();
  recent_.reset();
  baseline_ready_ = false;
  last_divergence_ = 0.0;
}

}  // namespace xsec::lifecycle
