// Versioned model store in the SDL.
//
// The "Exploiting and Securing ML Solutions in Near-RT RIC" threat model
// treats the model-update path as an attack surface: a compromised rApp or
// SDL writer can push poisoned weights. This store is the defense at the
// storage boundary — every version is wrapped in a checksummed blob, and
// every load re-verifies magic, declared length, and checksum before a
// single weight byte reaches a detector. A failed verification is a
// security event (lifecycle.model_rejected), never a silent fallback.
//
// Layout in SDL namespace `model`:
//   v00000001, v00000002, ...  checksummed version blobs
//   active                     version key currently serving verdicts
//   previous                   one-step rollback target
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "obs/metrics.hpp"
#include "oran/sdl.hpp"

namespace xsec::lifecycle {

class ModelStore {
 public:
  explicit ModelStore(oran::Sdl* sdl, std::string ns = "model")
      : sdl_(sdl), ns_(std::move(ns)) {}

  /// Binds "lifecycle.models_stored" / "lifecycle.model_rejected" into a
  /// registry; nullptr detaches.
  void set_metrics(obs::MetricsRegistry* registry);

  const std::string& ns() const { return ns_; }

  /// Wraps `state` (a detector save_state blob) in a checksummed version
  /// envelope and persists it. Returns the assigned version (1-based,
  /// monotonic).
  std::uint32_t put(const Bytes& state);

  /// Loads and integrity-verifies one version; returns the unwrapped
  /// detector state. Tampered/truncated/missing blobs are errors and
  /// increment lifecycle.model_rejected.
  Result<Bytes> load(std::uint32_t version);
  Result<Bytes> load_active();

  /// Verifies an externally supplied blob (e.g. an SMO-pushed candidate)
  /// without persisting it; returns the unwrapped state. Rejections count
  /// like load failures.
  Result<Bytes> verify(const Bytes& blob);

  /// All stored versions, ascending.
  std::vector<std::uint32_t> versions() const;
  std::uint32_t active_version() const;
  std::uint32_t previous_version() const;

  /// Marks `version` active; the prior active version becomes the
  /// one-step rollback target.
  void activate(std::uint32_t version);
  /// Swaps active and previous. Fails when there is no previous version.
  Result<std::uint32_t> rollback();

  static std::string version_key(std::uint32_t version);

 private:
  Bytes wrap(std::uint32_t version, const Bytes& state) const;
  Result<Bytes> unwrap(const Bytes& blob, std::uint32_t expect_version);
  Result<Bytes> reject(Error error);

  oran::Sdl* sdl_;
  std::string ns_;
  obs::Counter* stored_ = nullptr;
  obs::Counter* rejected_ = nullptr;
};

}  // namespace xsec::lifecycle
