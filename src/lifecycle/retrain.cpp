#include "lifecycle/retrain.hpp"

#include <cstring>
#include <utility>

#include "common/plot.hpp"

namespace xsec::lifecycle {

void BenignRing::push(RingEntry entry) {
  if (entry.rows.empty()) return;
  if (entries_.size() >= config_.capacity) entries_.pop_front();
  entries_.push_back(std::move(entry));
}

BenignRing::Harvest BenignRing::harvest(const TrustFn& trust) const {
  Harvest out;
  if (entries_.empty()) return out;

  // Outlier cutoff over the ring's own active-model score distribution.
  std::vector<double> scores;
  scores.reserve(entries_.size());
  for (const RingEntry& e : entries_) scores.push_back(e.score);
  const double cutoff = percentile(std::move(scores), config_.outlier_quantile);

  std::vector<const RingEntry*> keep;
  keep.reserve(entries_.size());
  std::size_t flat = 0;
  for (const RingEntry& e : entries_) {
    if (trust && trust(e.node_id, e.ue_id) < config_.min_trust) {
      ++out.dropped_trust;
      continue;
    }
    // FP-evidence windows scored high by definition; the outlier filter
    // would always drop exactly the windows the rollback vouched for.
    if (!e.fp_evidence && e.score > cutoff) {
      ++out.dropped_outlier;
      continue;
    }
    if (flat == 0) flat = e.rows.size();
    if (e.rows.size() != flat) continue;  // feature-dim change mid-ring
    keep.push_back(&e);
  }
  if (keep.empty() || flat == 0) return out;

  out.windows.resize(keep.size(), flat);
  for (std::size_t w = 0; w < keep.size(); ++w)
    std::memcpy(out.windows.row(w), keep[w]->rows.data(),
                flat * sizeof(float));
  return out;
}

Result<RetrainResult> retrain_candidate(detect::AnomalyDetector& active,
                                        const BenignRing& ring,
                                        const BenignRing::TrustFn& trust,
                                        std::size_t rows_per_window,
                                        const RetrainConfig& config) {
  BenignRing::Harvest harvest = ring.harvest(trust);
  if (harvest.windows.rows() < config.min_windows)
    return Error::make("insufficient",
                       "sanitized ring below min_windows for retraining");
  if (rows_per_window == 0 ||
      harvest.windows.cols() % rows_per_window != 0)
    return Error::make("layout", "ring windows do not divide into rows");

  std::unique_ptr<detect::AnomalyDetector> candidate =
      active.clone_for_inference();
  if (!candidate)
    return Error::make("unsupported", "active detector has no clone support");

  if (!candidate->fine_tune(harvest.windows.row(0), harvest.windows.rows(),
                            rows_per_window, config.tune))
    return Error::make("unsupported",
                       "active detector has no fine-tune support");

  RetrainResult result;
  result.windows_used = harvest.windows.rows();
  result.dropped_trust = harvest.dropped_trust;
  result.dropped_outlier = harvest.dropped_outlier;
  result.training_scores.reserve(harvest.windows.rows());
  for (std::size_t w = 0; w < harvest.windows.rows(); ++w)
    result.training_scores.push_back(
        candidate->score_window(harvest.windows.row(w), rows_per_window));
  result.candidate = std::move(candidate);
  return result;
}

}  // namespace xsec::lifecycle
