#include "lifecycle/store.hpp"

#include <algorithm>
#include <cstdio>

#include "common/log.hpp"

namespace xsec::lifecycle {

namespace {

/// Version-envelope magic ("XMDL").
constexpr std::uint32_t kStoreMagic = 0x584D444C;

std::uint32_t parse_version_key(const std::string& key) {
  if (key.size() != 9 || key[0] != 'v') return 0;
  std::uint32_t v = 0;
  for (std::size_t i = 1; i < key.size(); ++i) {
    if (key[i] < '0' || key[i] > '9') return 0;
    v = v * 10 + static_cast<std::uint32_t>(key[i] - '0');
  }
  return v;
}

}  // namespace

std::string ModelStore::version_key(std::uint32_t version) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "v%08u", version);
  return buf;
}

void ModelStore::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    stored_ = nullptr;
    rejected_ = nullptr;
    return;
  }
  stored_ = &registry->counter("lifecycle.models_stored");
  rejected_ = &registry->counter("lifecycle.model_rejected");
}

Bytes ModelStore::wrap(std::uint32_t version, const Bytes& state) const {
  ByteWriter w;
  w.u32(kStoreMagic);
  w.u32(version);
  w.u32(static_cast<std::uint32_t>(state.size()));
  w.raw(state);
  w.u64(fnv1a(w.bytes()));
  return w.take();
}

Result<Bytes> ModelStore::reject(Error error) {
  if (rejected_ != nullptr) rejected_->inc();
  XSEC_LOG_WARN("lifecycle", "model blob rejected: ", error.message);
  return error;
}

Result<Bytes> ModelStore::unwrap(const Bytes& blob,
                                 std::uint32_t expect_version) {
  if (blob.size() < 20)
    return reject(Error::make("truncated", "model blob shorter than header"));
  // Checksum covers everything before the trailing u64.
  Bytes body(blob.begin(), blob.end() - 8);
  ByteReader tail(blob.data() + blob.size() - 8, 8);
  auto checksum = tail.u64();
  if (!checksum)
    return reject(Error::make("truncated", "model blob missing checksum"));
  if (checksum.value() != fnv1a(body))
    return reject(Error::make("checksum", "model blob checksum mismatch"));
  ByteReader r(body);
  auto magic = r.u32();
  if (!magic || magic.value() != kStoreMagic)
    return reject(Error::make("magic", "not a model store blob"));
  auto version = r.u32();
  if (!version)
    return reject(Error::make("truncated", "model blob missing version"));
  if (expect_version != 0 && version.value() != expect_version)
    return reject(Error::make("version", "model blob version mismatch"));
  auto len = r.u32();
  if (!len)
    return reject(Error::make("truncated", "model blob missing length"));
  if (len.value() != r.remaining())
    return reject(
        Error::make("length", "model blob length does not match payload"));
  auto state = r.raw(len.value());
  if (!state)
    return reject(Error::make("truncated", "model blob state truncated"));
  return state.value();
}

std::uint32_t ModelStore::put(const Bytes& state) {
  std::uint32_t next = 1;
  for (std::uint32_t v : versions()) next = std::max(next, v + 1);
  sdl_->set(ns_, version_key(next), wrap(next, state));
  if (stored_ != nullptr) stored_->inc();
  return next;
}

Result<Bytes> ModelStore::load(std::uint32_t version) {
  auto blob = sdl_->get(ns_, version_key(version));
  if (!blob)
    return reject(Error::make("missing", "no such model version"));
  return unwrap(*blob, version);
}

Result<Bytes> ModelStore::load_active() {
  std::uint32_t active = active_version();
  if (active == 0) return Error::make("missing", "no active model version");
  return load(active);
}

Result<Bytes> ModelStore::verify(const Bytes& blob) {
  return unwrap(blob, /*expect_version=*/0);
}

std::vector<std::uint32_t> ModelStore::versions() const {
  std::vector<std::uint32_t> out;
  for (const std::string& key : sdl_->keys(ns_)) {
    std::uint32_t v = parse_version_key(key);
    if (v != 0) out.push_back(v);
  }
  return out;  // SDL keys are ordered, zero-padded keys sort numerically
}

std::uint32_t ModelStore::active_version() const {
  auto key = sdl_->get_str(ns_, "active");
  return key ? parse_version_key(*key) : 0;
}

std::uint32_t ModelStore::previous_version() const {
  auto key = sdl_->get_str(ns_, "previous");
  return key ? parse_version_key(*key) : 0;
}

void ModelStore::activate(std::uint32_t version) {
  std::uint32_t current = active_version();
  if (current != 0 && current != version)
    sdl_->set_str(ns_, "previous", version_key(current));
  sdl_->set_str(ns_, "active", version_key(version));
}

Result<std::uint32_t> ModelStore::rollback() {
  std::uint32_t previous = previous_version();
  if (previous == 0)
    return Error::make("missing", "no previous model version to roll back to");
  std::uint32_t current = active_version();
  sdl_->set_str(ns_, "active", version_key(previous));
  if (current != 0) sdl_->set_str(ns_, "previous", version_key(current));
  return previous;
}

}  // namespace xsec::lifecycle
