// Model lifecycle xApp: drift -> retrain -> shadow -> promote/rollback.
//
// The paper deploys MobiWatch with a frozen, offline-trained model; this
// subsystem closes the remaining loop of the train/deploy split by
// managing the model AT the edge:
//
//   observe   every applied window (coordinator-side score observer, so
//             the stream is arrival-ordered and shard-count-invariant),
//   drift     benign-window scores feed a quantile sketch compared
//             against the training baseline,
//   retrain   a drift event triggers fine-tuning a CLONE of the active
//             detector on a sanitized benign ring (off the verdict path),
//   store     every candidate is persisted as a checksummed version in
//             the SDL model namespace,
//   shadow    the candidate scores the live stream next to the active
//             model without influencing verdicts,
//   promote   only a candidate that passes the shadow gate is hot-swapped
//             in (through MobiWatch's existing detector-swap path, so it
//             propagates atomically to every shard replica),
//   rollback  one step back to the previous version at any time.
//
// Tampered or poisoned model blobs are rejected at the store boundary
// and surfaced as security events (human-review queue + counter); a
// rejected candidate never serves a verdict.
//
// Determinism contract: every decision here is driven by the arrival-
// ordered observer stream or by sim-time scheduled events, and all state
// is integer-counted or replayed in arrival order — a fixed seed yields
// byte-identical exports at any shard count with lifecycle enabled.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.hpp"
#include "detect/mobiwatch.hpp"
#include "lifecycle/retrain.hpp"
#include "lifecycle/shadow.hpp"
#include "lifecycle/sketch.hpp"
#include "lifecycle/store.hpp"
#include "mitigate/xapp.hpp"
#include "oran/xapp.hpp"

namespace xsec::lifecycle {

struct LifecycleConfig {
  /// Pipeline gate: the xApp is only registered when set, so existing
  /// deployments keep their exact behavior (and exports) by default.
  bool enabled = false;
  DriftConfig drift;
  RingConfig ring;
  RetrainConfig retrain;
  GateConfig gate;
  /// SDL namespace for versioned model blobs + the lifecycle event log.
  std::string sdl_namespace = "model";
  /// Sim-time delay between a drift event and the retrain run (keeps the
  /// fine-tune off the window-apply path).
  SimDuration retrain_delay = SimDuration::from_ms(5);
  /// Promote automatically when the shadow gate passes. Off leaves the
  /// candidate shadowing until an operator promotes it.
  bool auto_promote = true;
};

class LifecycleXapp : public oran::XApp {
 public:
  explicit LifecycleXapp(LifecycleConfig config);

  /// Wires the lifecycle into the live pipeline: taps MobiWatch's score
  /// observer and (optionally) the mitigation xApp's per-source trust
  /// ledger for training-set sanitization. Call after both xApps are
  /// registered.
  void bind(detect::MobiWatchXapp* mobiwatch,
            mitigate::MitigationXapp* mitigation = nullptr);

  void on_start() override;

  /// Verifies and enrolls an externally supplied (e.g. SMO-pushed) model
  /// blob as a shadow candidate. A blob that fails integrity checks is a
  /// security event: rejected, counted, escalated to human review, and
  /// never scores a window. Returns the assigned version, or 0.
  std::uint32_t submit_candidate(const Bytes& blob);

  /// Promotes the current shadow candidate regardless of gate state
  /// (operator override). No-op without a candidate.
  void promote_now();

  /// One-step rollback to the previous model version. Returns false when
  /// there is no previous version.
  bool rollback();

  ModelStore& store() { return *store_; }
  const LifecycleConfig& config() const { return config_; }
  const DriftDetector& drift() const { return drift_; }
  const BenignRing& ring() const { return ring_; }
  bool shadowing() const { return shadow_ != nullptr; }

  // --- stats (registry snapshot views) ---
  std::size_t windows_observed() const {
    return m().windows_observed->value();
  }
  std::size_t benign_windows() const { return m().benign_windows->value(); }
  std::size_t drift_events() const { return m().drift_events->value(); }
  std::size_t retrains() const { return m().retrains->value(); }
  std::size_t shadow_windows() const { return m().shadow_windows->value(); }
  std::size_t promotions() const { return m().promotions->value(); }
  std::size_t rollbacks() const { return m().rollbacks->value(); }
  std::size_t gate_failures() const { return m().gate_failures->value(); }
  std::size_t models_rejected() const { return m().model_rejected->value(); }
  std::uint32_t active_version() const { return store_->active_version(); }

 private:
  using SourceKey = std::pair<std::uint64_t, std::uint64_t>;

  /// Registry handles, bound lazily on first use ("lifecycle.*").
  struct Metrics {
    obs::Counter* windows_observed = nullptr;
    obs::Counter* benign_windows = nullptr;
    obs::Counter* drift_checks = nullptr;
    obs::Counter* drift_events = nullptr;
    obs::Counter* retrains = nullptr;
    obs::Counter* candidates_trained = nullptr;
    obs::Counter* candidates_rejected = nullptr;
    obs::Counter* model_rejected = nullptr;
    obs::Counter* shadow_windows = nullptr;
    obs::Counter* promotions = nullptr;
    obs::Counter* rollbacks = nullptr;
    obs::Counter* gate_failures = nullptr;
    obs::Counter* sanitize_dropped_trust = nullptr;
    obs::Counter* sanitize_dropped_outlier = nullptr;
    obs::Gauge* active_version = nullptr;
    bool bound = false;
  };

  Metrics& m() const;
  /// Score-observer entry: one applied window, coordinator, arrival order.
  void on_window(const detect::SourceKey& source, const float* rows,
                 std::size_t row_dim, std::size_t n_rows, double score,
                 bool anomalous);
  /// Snapshots the installed detector as version 1 on first observation
  /// (the offline-trained model becomes the store's root version).
  void ensure_bootstrap();
  void handle_verdict(const oran::RoutedMessage& message);
  void run_retrain();
  void promote(std::uint32_t version);
  /// Installs `state` (a verified detector blob) as the serving model.
  bool install_version(std::uint32_t version, const Bytes& state,
                       const char* cause);
  void escalate_security_event(const std::string& text);
  void log_event(const std::string& text);

  LifecycleConfig config_;
  detect::MobiWatchXapp* mobiwatch_ = nullptr;
  mitigate::MitigationXapp* mitigation_ = nullptr;
  std::unique_ptr<ModelStore> store_;
  DriftDetector drift_;
  BenignRing ring_;
  std::unique_ptr<ShadowScorer> shadow_;
  /// Latest anomalous window per source, held back as potential false-
  /// positive training data until the LLM verdict arrives.
  std::map<SourceKey, RingEntry> anomalous_stash_;
  /// Training scores of the candidate currently shadowing (seeds the
  /// drift baseline if it is promoted).
  std::vector<double> candidate_training_scores_;
  bool bootstrapped_ = false;
  bool retrain_pending_ = false;
  bool promote_pending_ = false;
  std::uint64_t next_log_ = 1;
  mutable Metrics metrics_;
};

}  // namespace xsec::lifecycle
