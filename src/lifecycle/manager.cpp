#include "lifecycle/manager.hpp"

#include <utility>

#include "common/log.hpp"
#include "oran/ric.hpp"
#include "oran/router.hpp"

namespace xsec::lifecycle {

LifecycleXapp::LifecycleXapp(LifecycleConfig config)
    : oran::XApp("lifecycle"),
      config_(std::move(config)),
      drift_(config_.drift),
      ring_(config_.ring) {}

LifecycleXapp::Metrics& LifecycleXapp::m() const {
  if (!metrics_.bound) {
    obs::MetricsRegistry& reg = obs().metrics;
    metrics_.windows_observed = &reg.counter("lifecycle.windows_observed");
    metrics_.benign_windows = &reg.counter("lifecycle.benign_windows");
    metrics_.drift_checks = &reg.counter("lifecycle.drift_checks");
    metrics_.drift_events = &reg.counter("lifecycle.drift_events");
    metrics_.retrains = &reg.counter("lifecycle.retrains");
    metrics_.candidates_trained = &reg.counter("lifecycle.candidates_trained");
    metrics_.candidates_rejected =
        &reg.counter("lifecycle.candidates_rejected");
    metrics_.model_rejected = &reg.counter("lifecycle.model_rejected");
    metrics_.shadow_windows = &reg.counter("lifecycle.shadow_windows");
    metrics_.promotions = &reg.counter("lifecycle.promotions");
    metrics_.rollbacks = &reg.counter("lifecycle.rollbacks");
    metrics_.gate_failures = &reg.counter("lifecycle.gate_failures");
    metrics_.sanitize_dropped_trust =
        &reg.counter("lifecycle.sanitize_dropped_trust");
    metrics_.sanitize_dropped_outlier =
        &reg.counter("lifecycle.sanitize_dropped_outlier");
    metrics_.active_version = &reg.gauge("lifecycle.active_version");
    metrics_.bound = true;
  }
  return metrics_;
}

void LifecycleXapp::on_start() {
  store_ = std::make_unique<ModelStore>(&sdl(), config_.sdl_namespace);
  store_->set_metrics(&obs().metrics);
  router().subscribe(oran::kMtIncidentVerdict,
                     [this](const oran::RoutedMessage& message) {
                       handle_verdict(message);
                     });
}

void LifecycleXapp::bind(detect::MobiWatchXapp* mobiwatch,
                         mitigate::MitigationXapp* mitigation) {
  mobiwatch_ = mobiwatch;
  mitigation_ = mitigation;
  mobiwatch_->set_score_observer(
      [this](const detect::SourceKey& source, const float* rows,
             std::size_t row_dim, std::size_t n_rows, double score,
             bool anomalous) {
        on_window(source, rows, row_dim, n_rows, score, anomalous);
      });
}

void LifecycleXapp::ensure_bootstrap() {
  if (bootstrapped_) return;
  bootstrapped_ = true;
  if (store_->active_version() != 0) {
    m().active_version->set(store_->active_version());
    return;  // resuming over an existing store
  }
  Bytes state = mobiwatch_->detector_handle()->save_state();
  if (state.empty()) return;  // detector without serialization support
  std::uint32_t version = store_->put(state);
  store_->activate(version);
  m().active_version->set(version);
  log_event("bootstrap: offline-trained model stored as " +
            ModelStore::version_key(version));
}

void LifecycleXapp::on_window(const detect::SourceKey& source,
                              const float* rows, std::size_t row_dim,
                              std::size_t n_rows, double score,
                              bool anomalous) {
  Metrics& metrics = m();
  metrics.windows_observed->inc();
  ensure_bootstrap();

  // Shadow scoring first: the candidate sees the identical window stream
  // the active model scored, including anomalies, but its verdict goes
  // nowhere.
  if (shadow_) {
    shadow_->observe(rows, n_rows, score, anomalous);
    metrics.shadow_windows->inc();
    if (shadow_->ready() && !promote_pending_) {
      if (shadow_->passes()) {
        if (config_.auto_promote) {
          promote_pending_ = true;
          const std::uint32_t version = shadow_->version();
          // Promotion swaps the detector, which resets window assembly —
          // never from inside the observer; always a scheduled event.
          ric().schedule_after(SimDuration::from_ms(1),
                               [this, version] { promote(version); });
        }
      } else {
        metrics.gate_failures->inc();
        log_event("gate: candidate " +
                  ModelStore::version_key(shadow_->version()) +
                  " failed shadow gate (flag_rate=" +
                  std::to_string(shadow_->benign_flag_rate()) +
                  " error_ratio=" + std::to_string(shadow_->mean_error_ratio()) +
                  " agreement=" + std::to_string(shadow_->anomaly_agreement()) +
                  ")");
        shadow_.reset();
        candidate_training_scores_.clear();
      }
    }
  }

  const std::size_t flat = row_dim * n_rows;
  if (anomalous) {
    // Hold the window back as potential false-positive training data
    // until the LLM verdict settles it.
    RingEntry stash;
    stash.node_id = source.node_id;
    stash.ue_id = source.ue_id;
    stash.score = score;
    stash.rows.assign(rows, rows + flat);
    anomalous_stash_[{source.node_id, source.ue_id}] = std::move(stash);
    return;
  }

  metrics.benign_windows->inc();
  RingEntry entry;
  entry.node_id = source.node_id;
  entry.ue_id = source.ue_id;
  entry.score = score;
  entry.rows.assign(rows, rows + flat);
  ring_.push(std::move(entry));

  const std::uint64_t checks_before = drift_.checks();
  const bool drifted = drift_.observe(score);
  if (drift_.checks() != checks_before) metrics.drift_checks->inc();
  if (drifted) {
    metrics.drift_events->inc();
    log_event("drift: divergence " + std::to_string(drift_.last_divergence()) +
              " over threshold " +
              std::to_string(config_.drift.divergence_threshold));
    if (!retrain_pending_ && !shadow_ && !promote_pending_) {
      retrain_pending_ = true;
      ric().schedule_after(config_.retrain_delay, [this] { run_retrain(); });
    }
  }
}

void LifecycleXapp::handle_verdict(const oran::RoutedMessage& message) {
  auto verdict = llm::IncidentVerdict::deserialize(message.payload);
  if (!verdict) return;
  const SourceKey key{verdict.value().node_id, verdict.value().source_ue};
  auto stash = anomalous_stash_.find(key);
  if (stash == anomalous_stash_.end()) return;
  if (!verdict.value().llm_agrees) {
    // The LLM judged the flagged window benign: that is exactly the
    // traffic the current model mis-scores, so it is prime retraining
    // material — tagged so the outlier filter does not re-drop it.
    RingEntry entry = std::move(stash->second);
    entry.fp_evidence = true;
    ring_.push(std::move(entry));
  }
  anomalous_stash_.erase(stash);
}

void LifecycleXapp::run_retrain() {
  retrain_pending_ = false;
  if (shadow_ || promote_pending_) return;  // a candidate is already in flight
  Metrics& metrics = m();
  obs::Span span = obs().tracer.begin("lifecycle.retrain");
  metrics.retrains->inc();

  detect::AnomalyDetector& active = *mobiwatch_->detector_handle();
  const std::size_t rows_per_window =
      active.rows_needed(mobiwatch_->config().window_size);
  BenignRing::TrustFn trust;
  if (mitigation_ != nullptr)
    trust = [this](std::uint64_t node, std::uint64_t ue) {
      return mitigation_->source_trust(node, ue);
    };

  auto result =
      retrain_candidate(active, ring_, trust, rows_per_window, config_.retrain);
  if (!result) {
    log_event("retrain: skipped (" + result.error().message + ")");
    return;
  }
  RetrainResult retrained = std::move(result).value();
  metrics.candidates_trained->inc();
  metrics.sanitize_dropped_trust->inc(retrained.dropped_trust);
  metrics.sanitize_dropped_outlier->inc(retrained.dropped_outlier);

  Bytes state = retrained.candidate->save_state();
  if (state.empty()) {
    metrics.candidates_rejected->inc();
    log_event("retrain: candidate has no serialization support, discarded");
    return;
  }
  const std::uint32_t version = store_->put(state);
  candidate_training_scores_ = std::move(retrained.training_scores);
  shadow_ = std::make_unique<ShadowScorer>(std::move(retrained.candidate),
                                           version, config_.gate);
  ring_.clear();
  log_event("retrain: candidate " + ModelStore::version_key(version) +
            " fine-tuned on " + std::to_string(retrained.windows_used) +
            " windows (dropped trust=" +
            std::to_string(retrained.dropped_trust) +
            " outlier=" + std::to_string(retrained.dropped_outlier) +
            "), shadow scoring");
}

bool LifecycleXapp::install_version(std::uint32_t version, const Bytes& state,
                                    const char* cause) {
  auto restored = detect::restore_detector(state);
  if (!restored) {
    m().candidates_rejected->inc();
    escalate_security_event("model " + ModelStore::version_key(version) +
                            " failed restore (" + restored.error().message +
                            ") during " + cause);
    return false;
  }
  const detect::FeatureEncoder* encoder = mobiwatch_->engine().encoder();
  if (encoder == nullptr) return false;
  mobiwatch_->install_detector(
      std::shared_ptr<detect::AnomalyDetector>(std::move(restored).value()),
      *encoder);
  store_->activate(version);
  m().active_version->set(version);
  return true;
}

void LifecycleXapp::promote(std::uint32_t version) {
  promote_pending_ = false;
  if (!shadow_ || shadow_->version() != version) return;
  obs::Span span = obs().tracer.begin("lifecycle.promote");

  // Reload through the store so the copy that will serve verdicts is the
  // integrity-verified one — a blob tampered between put and promote is
  // caught here, not trusted from memory.
  auto state = store_->load(version);
  if (!state) {
    m().candidates_rejected->inc();
    escalate_security_event("candidate " + ModelStore::version_key(version) +
                            " failed integrity verification at promotion: " +
                            state.error().message);
    shadow_.reset();
    candidate_training_scores_.clear();
    return;
  }
  if (!install_version(version, state.value(), "promotion")) {
    shadow_.reset();
    candidate_training_scores_.clear();
    return;
  }
  m().promotions->inc();
  drift_.seed_baseline(candidate_training_scores_);
  candidate_training_scores_.clear();
  shadow_.reset();
  anomalous_stash_.clear();
  log_event("promote: " + ModelStore::version_key(version) +
            " hot-swapped into MobiWatch (previous " +
            ModelStore::version_key(store_->previous_version()) + ")");
}

void LifecycleXapp::promote_now() {
  if (!shadow_ || promote_pending_) return;
  promote_pending_ = true;
  const std::uint32_t version = shadow_->version();
  if (!ric().schedule_after(SimDuration::from_ms(1),
                            [this, version] { promote(version); })) {
    // Standalone (no scheduler): promote inline; callers are not inside
    // the observer in that configuration.
    promote(version);
  }
}

bool LifecycleXapp::rollback() {
  auto previous = store_->rollback();
  if (!previous) {
    log_event("rollback: refused (" + previous.error().message + ")");
    return false;
  }
  auto state = store_->load(previous.value());
  if (!state) {
    escalate_security_event(
        "rollback target " + ModelStore::version_key(previous.value()) +
        " failed integrity verification: " + state.error().message);
    return false;
  }
  if (!install_version(previous.value(), state.value(), "rollback"))
    return false;
  m().rollbacks->inc();
  // The restored model's training distribution is unknown here; let the
  // baseline re-bootstrap from live traffic.
  drift_.reset();
  shadow_.reset();
  candidate_training_scores_.clear();
  promote_pending_ = false;
  log_event("rollback: reverted to " +
            ModelStore::version_key(previous.value()));
  return true;
}

std::uint32_t LifecycleXapp::submit_candidate(const Bytes& blob) {
  Metrics& metrics = m();
  auto state = store_->verify(blob);
  if (!state) {
    metrics.candidates_rejected->inc();
    escalate_security_event("pushed model update rejected: " +
                            state.error().message);
    return 0;
  }
  auto restored = detect::restore_detector(state.value());
  if (!restored) {
    metrics.candidates_rejected->inc();
    escalate_security_event("pushed model update rejected: " +
                            restored.error().message);
    return 0;
  }
  const std::uint32_t version = store_->put(state.value());
  candidate_training_scores_.clear();
  shadow_ = std::make_unique<ShadowScorer>(std::move(restored).value(),
                                           version, config_.gate);
  log_event("candidate: pushed model enrolled as " +
            ModelStore::version_key(version) + ", shadow scoring");
  return version;
}

void LifecycleXapp::escalate_security_event(const std::string& text) {
  XSEC_LOG_WARN("lifecycle", text);
  log_event("security: " + text);
  oran::RoutedMessage review;
  review.mtype = oran::kMtHumanReview;
  review.source = name();
  review.payload = Bytes(text.begin(), text.end());
  router().publish(review);
}

void LifecycleXapp::log_event(const std::string& text) {
  sdl().set_str(config_.sdl_namespace, "log-" + oran::Sdl::seq_key(next_log_++),
                text);
}

}  // namespace xsec::lifecycle
