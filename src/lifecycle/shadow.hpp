// Shadow scoring: a candidate model scores the live window stream next to
// the active model without ever influencing a verdict. Promotion is gated
// on the shadow metrics — the candidate must stay quiet on benign traffic
// (flag rate), must not inflate scores wholesale (mean-error ratio), and
// must keep agreeing with the active model on the windows the active
// model flags (anomaly agreement). A candidate that fails the gate is
// discarded; the active model never noticed it existed.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "detect/scorer.hpp"

namespace xsec::lifecycle {

struct GateConfig {
  /// Shadow windows required before the gate can be evaluated.
  std::size_t min_windows = 64;
  /// Max fraction of active-benign windows the candidate may flag.
  double max_benign_flag_rate = 0.02;
  /// Max candidate/active mean-score ratio on benign windows.
  double max_mean_error_ratio = 1.5;
  /// Min fraction of active-anomalous windows the candidate also flags.
  /// Only enforced once anomalous windows have been shadowed.
  double min_anomaly_agreement = 0.5;
};

class ShadowScorer {
 public:
  ShadowScorer(std::unique_ptr<detect::AnomalyDetector> candidate,
               std::uint32_t version, GateConfig gate)
      : candidate_(std::move(candidate)), version_(version), gate_(gate) {}

  /// Scores one applied window with the candidate, mirroring the active
  /// model's verdict for agreement bookkeeping. Never touches the verdict
  /// path.
  void observe(const float* rows, std::size_t n_rows, double active_score,
               bool active_anomalous);

  bool ready() const { return windows_ >= gate_.min_windows; }
  /// Gate verdict; only meaningful once ready().
  bool passes() const;

  std::uint32_t version() const { return version_; }
  std::size_t windows() const { return windows_; }
  std::size_t benign_windows() const { return benign_windows_; }
  std::size_t benign_flagged() const { return benign_flagged_; }
  std::size_t anomalous_windows() const { return anomalous_windows_; }
  std::size_t anomalous_agreed() const { return anomalous_agreed_; }
  double benign_flag_rate() const;
  double mean_error_ratio() const;
  double anomaly_agreement() const;

  detect::AnomalyDetector& candidate() { return *candidate_; }
  std::unique_ptr<detect::AnomalyDetector> take_candidate() {
    return std::move(candidate_);
  }

 private:
  std::unique_ptr<detect::AnomalyDetector> candidate_;
  std::uint32_t version_;
  GateConfig gate_;
  std::size_t windows_ = 0;
  std::size_t benign_windows_ = 0;
  std::size_t benign_flagged_ = 0;
  std::size_t anomalous_windows_ = 0;
  std::size_t anomalous_agreed_ = 0;
  double benign_candidate_sum_ = 0.0;
  double benign_active_sum_ = 0.0;
};

}  // namespace xsec::lifecycle
