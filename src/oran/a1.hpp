// A1 interface: non-RT RIC -> near-RT RIC policy management.
//
// Figure 1 of the paper shows the SMO/non-RT RIC steering near-RT xApps
// over A1. This is the minimal A1-P subset: typed policies with key-value
// content, delivered to named xApps, acknowledged with a status. xApps opt
// in by overriding XApp::on_policy.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/result.hpp"

namespace xsec::oran {

/// Policy type ids (the A1 policy-type registry; 20000+ is vendor space).
enum PolicyTypeId : std::uint32_t {
  kPolicyDetectionTuning = 20001,   // threshold scaling, holdoff, ...
  kPolicyResponseControl = 20002,   // auto-remediation on/off, RAG on/off
  kPolicyMitigation = 20003,        // mitigation policy rules / budgets
};

struct A1Policy {
  std::uint32_t policy_type = 0;
  std::string policy_id;  // instance id assigned by the non-RT RIC
  std::map<std::string, std::string> content;

  std::string get(const std::string& key, const std::string& fallback = {}) const {
    auto it = content.find(key);
    return it == content.end() ? fallback : it->second;
  }
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;
};

enum class PolicyStatus { kEnforced, kNotEnforced, kUnsupported };
std::string to_string(PolicyStatus status);

}  // namespace xsec::oran
