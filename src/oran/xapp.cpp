#include "oran/xapp.hpp"

// XApp is header-only today; this TU anchors the vtable.
namespace xsec::oran {}
