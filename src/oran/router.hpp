// RMR-style message router.
//
// The OSC RIC's internal message routing (RMR) delivers typed messages
// between platform services and xApps. This is the channel MobiWatch uses
// to hand flagged windows to the LLM analyzer xApp. Delivery is
// synchronous and deterministic (the simulation is single-threaded).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace xsec::oran {

/// Message types (RMR mtype space; 30000+ is the xApp range by convention).
enum MessageType : std::uint32_t {
  kMtAnomalyWindow = 30001,   // MobiWatch -> LLM analyzer
  kMtAnalysisReport = 30002,  // LLM analyzer -> subscribers (e.g. SMO shim)
  kMtControlAction = 30003,   // analyzer-proposed remediation
  kMtHumanReview = 30004,     // contradictory verdicts escalated to operator
  kMtMetricsReport = 30005,   // periodic observability export (SMO-bound)
  kMtIncidentVerdict = 30006, // LLM analyzer -> mitigation (classified incident)
};

struct RoutedMessage {
  std::uint32_t mtype = 0;
  std::string source;  // xApp name
  Bytes payload;
};

class MessageRouter {
 public:
  using Handler = std::function<void(const RoutedMessage&)>;

  /// Subscribes `handler` to a message type; returns a subscription id.
  std::uint64_t subscribe(std::uint32_t mtype, Handler handler);
  void unsubscribe(std::uint64_t subscription_id);

  /// Delivers to all subscribers of the mtype; returns receiver count.
  std::size_t publish(const RoutedMessage& message);

  std::size_t delivered_count() const { return delivered_; }
  std::size_t dropped_count() const { return dropped_; }

 private:
  struct Subscription {
    std::uint64_t id;
    Handler handler;
  };
  std::map<std::uint32_t, std::vector<Subscription>> routes_;
  std::uint64_t next_id_ = 1;
  std::size_t delivered_ = 0;
  std::size_t dropped_ = 0;
};

}  // namespace xsec::oran
