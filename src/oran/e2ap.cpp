#include "oran/e2ap.hpp"

namespace xsec::oran {

std::string to_string(RicActionType t) {
  switch (t) {
    case RicActionType::kReport: return "report";
    case RicActionType::kInsert: return "insert";
    case RicActionType::kPolicy: return "policy";
  }
  return "unknown";
}

namespace {
constexpr std::uint8_t kVersion = 1;

void header(ByteWriter& w, E2apType type) {
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(type));
}

Result<ByteReader> open(const Bytes& wire, E2apType expected) {
  ByteReader r(wire);
  auto version = r.u8();
  if (!version) return version.error();
  if (version.value() != kVersion)
    return Error::make("version", "unsupported E2AP version");
  auto type = r.u8();
  if (!type) return type.error();
  if (type.value() != static_cast<std::uint8_t>(expected))
    return Error::make("type", "unexpected E2AP PDU type");
  return r;
}

void encode_request_id(ByteWriter& w, const RicRequestId& id) {
  w.u32(id.requestor_id);
  w.u32(id.instance_id);
}

Result<RicRequestId> decode_request_id(ByteReader& r) {
  auto requestor = r.u32();
  if (!requestor) return requestor.error();
  auto instance = r.u32();
  if (!instance) return instance.error();
  return RicRequestId{requestor.value(), instance.value()};
}

void encode_blob(ByteWriter& w, const Bytes& b) {
  w.u32(static_cast<std::uint32_t>(b.size()));
  w.raw(b);
}

Result<Bytes> decode_blob(ByteReader& r) {
  auto n = r.u32();
  if (!n) return n.error();
  return r.raw(n.value());
}
}  // namespace

Result<E2apType> e2ap_type(std::span<const std::uint8_t> wire) {
  ByteReader r(wire.data(), wire.size());
  auto version = r.u8();
  if (!version) return version.error();
  auto type = r.u8();
  if (!type) return type.error();
  if (type.value() > 8) return Error::make("malformed", "bad E2AP PDU type");
  return static_cast<E2apType>(type.value());
}

Result<E2apType> e2ap_type(const Bytes& wire) {
  return e2ap_type(std::span<const std::uint8_t>(wire.data(), wire.size()));
}

Bytes encode_e2ap(const E2SetupRequest& m) {
  ByteWriter w;
  header(w, E2apType::kSetupRequest);
  w.u64(m.node_id);
  w.u16(static_cast<std::uint16_t>(m.functions.size()));
  for (const auto& f : m.functions) {
    w.u16(f.function_id);
    w.str(f.oid);
    w.str(f.description);
    encode_blob(w, f.definition);
  }
  return w.take();
}

Result<E2SetupRequest> decode_setup_request(const Bytes& wire) {
  auto reader = open(wire, E2apType::kSetupRequest);
  if (!reader) return reader.error();
  ByteReader& r = reader.value();
  E2SetupRequest m;
  auto node = r.u64();
  if (!node) return node.error();
  m.node_id = node.value();
  auto count = r.u16();
  if (!count) return count.error();
  for (std::uint16_t i = 0; i < count.value(); ++i) {
    RanFunction f;
    auto id = r.u16();
    if (!id) return id.error();
    f.function_id = id.value();
    auto oid = r.str();
    if (!oid) return oid.error();
    f.oid = oid.value();
    auto desc = r.str();
    if (!desc) return desc.error();
    f.description = desc.value();
    auto def = decode_blob(r);
    if (!def) return def.error();
    f.definition = def.value();
    m.functions.push_back(std::move(f));
  }
  return m;
}

Bytes encode_e2ap(const E2SetupResponse& m) {
  ByteWriter w;
  header(w, E2apType::kSetupResponse);
  w.u16(static_cast<std::uint16_t>(m.accepted_function_ids.size()));
  for (auto id : m.accepted_function_ids) w.u16(id);
  return w.take();
}

Result<E2SetupResponse> decode_setup_response(const Bytes& wire) {
  auto reader = open(wire, E2apType::kSetupResponse);
  if (!reader) return reader.error();
  ByteReader& r = reader.value();
  E2SetupResponse m;
  auto count = r.u16();
  if (!count) return count.error();
  for (std::uint16_t i = 0; i < count.value(); ++i) {
    auto id = r.u16();
    if (!id) return id.error();
    m.accepted_function_ids.push_back(id.value());
  }
  return m;
}

Bytes encode_e2ap(const RicSubscriptionRequest& m) {
  ByteWriter w;
  header(w, E2apType::kSubscriptionRequest);
  encode_request_id(w, m.request_id);
  w.u16(m.ran_function_id);
  encode_blob(w, m.event_trigger);
  w.u16(static_cast<std::uint16_t>(m.actions.size()));
  for (const auto& a : m.actions) {
    w.u16(a.action_id);
    w.u8(static_cast<std::uint8_t>(a.type));
    encode_blob(w, a.definition);
  }
  return w.take();
}

Result<RicSubscriptionRequest> decode_subscription_request(const Bytes& wire) {
  auto reader = open(wire, E2apType::kSubscriptionRequest);
  if (!reader) return reader.error();
  ByteReader& r = reader.value();
  RicSubscriptionRequest m;
  auto id = decode_request_id(r);
  if (!id) return id.error();
  m.request_id = id.value();
  auto fn = r.u16();
  if (!fn) return fn.error();
  m.ran_function_id = fn.value();
  auto trigger = decode_blob(r);
  if (!trigger) return trigger.error();
  m.event_trigger = trigger.value();
  auto count = r.u16();
  if (!count) return count.error();
  for (std::uint16_t i = 0; i < count.value(); ++i) {
    RicAction a;
    auto aid = r.u16();
    if (!aid) return aid.error();
    a.action_id = aid.value();
    auto type = r.u8();
    if (!type) return type.error();
    if (type.value() > 2)
      return Error::make("malformed", "RIC action type out of range");
    a.type = static_cast<RicActionType>(type.value());
    auto def = decode_blob(r);
    if (!def) return def.error();
    a.definition = def.value();
    m.actions.push_back(std::move(a));
  }
  return m;
}

Bytes encode_e2ap(const RicSubscriptionResponse& m) {
  ByteWriter w;
  header(w, E2apType::kSubscriptionResponse);
  encode_request_id(w, m.request_id);
  w.u16(m.ran_function_id);
  w.u16(static_cast<std::uint16_t>(m.admitted_action_ids.size()));
  for (auto id : m.admitted_action_ids) w.u16(id);
  w.u16(static_cast<std::uint16_t>(m.rejected_action_ids.size()));
  for (auto id : m.rejected_action_ids) w.u16(id);
  return w.take();
}

Result<RicSubscriptionResponse> decode_subscription_response(
    const Bytes& wire) {
  auto reader = open(wire, E2apType::kSubscriptionResponse);
  if (!reader) return reader.error();
  ByteReader& r = reader.value();
  RicSubscriptionResponse m;
  auto id = decode_request_id(r);
  if (!id) return id.error();
  m.request_id = id.value();
  auto fn = r.u16();
  if (!fn) return fn.error();
  m.ran_function_id = fn.value();
  auto admitted = r.u16();
  if (!admitted) return admitted.error();
  for (std::uint16_t i = 0; i < admitted.value(); ++i) {
    auto a = r.u16();
    if (!a) return a.error();
    m.admitted_action_ids.push_back(a.value());
  }
  auto rejected = r.u16();
  if (!rejected) return rejected.error();
  for (std::uint16_t i = 0; i < rejected.value(); ++i) {
    auto a = r.u16();
    if (!a) return a.error();
    m.rejected_action_ids.push_back(a.value());
  }
  return m;
}

Bytes encode_e2ap(const RicSubscriptionDeleteRequest& m) {
  ByteWriter w;
  header(w, E2apType::kSubscriptionDeleteRequest);
  encode_request_id(w, m.request_id);
  w.u16(m.ran_function_id);
  return w.take();
}

Result<RicSubscriptionDeleteRequest> decode_subscription_delete(
    const Bytes& wire) {
  auto reader = open(wire, E2apType::kSubscriptionDeleteRequest);
  if (!reader) return reader.error();
  ByteReader& r = reader.value();
  RicSubscriptionDeleteRequest m;
  auto id = decode_request_id(r);
  if (!id) return id.error();
  m.request_id = id.value();
  auto fn = r.u16();
  if (!fn) return fn.error();
  m.ran_function_id = fn.value();
  return m;
}

Bytes encode_e2ap(const RicIndication& m) {
  ByteWriter w;
  header(w, E2apType::kIndication);
  encode_request_id(w, m.request_id);
  w.u16(m.ran_function_id);
  w.u16(m.action_id);
  w.u32(m.sequence_number);
  w.i64(m.sent_at_us);
  w.u8(static_cast<std::uint8_t>(m.type));
  encode_blob(w, m.header);
  encode_blob(w, m.message);
  return w.take();
}

Result<RicIndication> decode_indication(const Bytes& wire) {
  auto reader = open(wire, E2apType::kIndication);
  if (!reader) return reader.error();
  ByteReader& r = reader.value();
  RicIndication m;
  auto id = decode_request_id(r);
  if (!id) return id.error();
  m.request_id = id.value();
  auto fn = r.u16();
  if (!fn) return fn.error();
  m.ran_function_id = fn.value();
  auto action = r.u16();
  if (!action) return action.error();
  m.action_id = action.value();
  auto sn = r.u32();
  if (!sn) return sn.error();
  m.sequence_number = sn.value();
  auto sent_at = r.i64();
  if (!sent_at) return sent_at.error();
  m.sent_at_us = sent_at.value();
  auto type = r.u8();
  if (!type) return type.error();
  if (type.value() > 1)
    return Error::make("malformed", "indication type out of range");
  m.type = static_cast<RicIndicationType>(type.value());
  auto hdr = decode_blob(r);
  if (!hdr) return hdr.error();
  m.header = hdr.value();
  auto msg = decode_blob(r);
  if (!msg) return msg.error();
  m.message = msg.value();
  return m;
}

Result<RicIndicationView> decode_indication_view(
    std::span<const std::uint8_t> wire) {
  ByteReader r(wire.data(), wire.size());
  auto version = r.u8();
  if (!version) return version.error();
  if (version.value() != kVersion)
    return Error::make("version", "unsupported E2AP version");
  auto type_byte = r.u8();
  if (!type_byte) return type_byte.error();
  if (type_byte.value() != static_cast<std::uint8_t>(E2apType::kIndication))
    return Error::make("type", "unexpected E2AP PDU type");
  RicIndicationView m;
  auto id = decode_request_id(r);
  if (!id) return id.error();
  m.request_id = id.value();
  auto fn = r.u16();
  if (!fn) return fn.error();
  m.ran_function_id = fn.value();
  auto action = r.u16();
  if (!action) return action.error();
  m.action_id = action.value();
  auto sn = r.u32();
  if (!sn) return sn.error();
  m.sequence_number = sn.value();
  auto sent_at = r.i64();
  if (!sent_at) return sent_at.error();
  m.sent_at_us = sent_at.value();
  auto type = r.u8();
  if (!type) return type.error();
  if (type.value() > 1)
    return Error::make("malformed", "indication type out of range");
  m.type = static_cast<RicIndicationType>(type.value());
  auto hdr_len = r.u32();
  if (!hdr_len) return hdr_len.error();
  auto hdr = r.view(hdr_len.value());
  if (!hdr) return hdr.error();
  m.header = hdr.value();
  auto msg_len = r.u32();
  if (!msg_len) return msg_len.error();
  auto msg = r.view(msg_len.value());
  if (!msg) return msg.error();
  m.message = msg.value();
  return m;
}

RicIndication RicIndicationView::materialize() const {
  RicIndication m;
  m.request_id = request_id;
  m.ran_function_id = ran_function_id;
  m.action_id = action_id;
  m.sequence_number = sequence_number;
  m.sent_at_us = sent_at_us;
  m.type = type;
  m.header.assign(header.begin(), header.end());
  m.message.assign(message.begin(), message.end());
  return m;
}

RicIndicationView as_view(const RicIndication& m) {
  RicIndicationView v;
  v.request_id = m.request_id;
  v.ran_function_id = m.ran_function_id;
  v.action_id = m.action_id;
  v.sequence_number = m.sequence_number;
  v.sent_at_us = m.sent_at_us;
  v.type = m.type;
  v.header = std::span<const std::uint8_t>(m.header.data(), m.header.size());
  v.message =
      std::span<const std::uint8_t>(m.message.data(), m.message.size());
  return v;
}

Bytes encode_e2ap(const RicIndicationNack& m) {
  ByteWriter w;
  header(w, E2apType::kIndicationNack);
  w.u16(m.ran_function_id);
  w.u16(static_cast<std::uint16_t>(m.ranges.size()));
  for (const auto& range : m.ranges) {
    encode_request_id(w, range.request_id);
    w.u32(range.first_sequence);
    w.u32(range.last_sequence);
  }
  return w.take();
}

Result<RicIndicationNack> decode_indication_nack(const Bytes& wire) {
  auto reader = open(wire, E2apType::kIndicationNack);
  if (!reader) return reader.error();
  ByteReader& r = reader.value();
  RicIndicationNack m;
  auto fn = r.u16();
  if (!fn) return fn.error();
  m.ran_function_id = fn.value();
  auto count = r.u16();
  if (!count) return count.error();
  if (count.value() == 0)
    return Error::make("malformed", "NACK carries no sequence ranges");
  for (std::uint16_t i = 0; i < count.value(); ++i) {
    NackRange range;
    auto id = decode_request_id(r);
    if (!id) return id.error();
    range.request_id = id.value();
    auto first = r.u32();
    if (!first) return first.error();
    range.first_sequence = first.value();
    auto last = r.u32();
    if (!last) return last.error();
    range.last_sequence = last.value();
    if (range.last_sequence < range.first_sequence)
      return Error::make("malformed", "NACK sequence range inverted");
    m.ranges.push_back(range);
  }
  return m;
}

Bytes encode_e2ap(const RicControlRequest& m) {
  ByteWriter w;
  header(w, E2apType::kControlRequest);
  encode_request_id(w, m.request_id);
  w.u16(m.ran_function_id);
  encode_blob(w, m.header);
  encode_blob(w, m.message);
  return w.take();
}

Result<RicControlRequest> decode_control_request(const Bytes& wire) {
  auto reader = open(wire, E2apType::kControlRequest);
  if (!reader) return reader.error();
  ByteReader& r = reader.value();
  RicControlRequest m;
  auto id = decode_request_id(r);
  if (!id) return id.error();
  m.request_id = id.value();
  auto fn = r.u16();
  if (!fn) return fn.error();
  m.ran_function_id = fn.value();
  auto hdr = decode_blob(r);
  if (!hdr) return hdr.error();
  m.header = hdr.value();
  auto msg = decode_blob(r);
  if (!msg) return msg.error();
  m.message = msg.value();
  return m;
}

Bytes encode_e2ap(const RicControlAck& m) {
  ByteWriter w;
  header(w, E2apType::kControlAck);
  encode_request_id(w, m.request_id);
  w.u16(m.ran_function_id);
  w.boolean(m.success);
  return w.take();
}

Result<RicControlAck> decode_control_ack(const Bytes& wire) {
  auto reader = open(wire, E2apType::kControlAck);
  if (!reader) return reader.error();
  ByteReader& r = reader.value();
  RicControlAck m;
  auto id = decode_request_id(r);
  if (!id) return id.error();
  m.request_id = id.value();
  auto fn = r.u16();
  if (!fn) return fn.error();
  m.ran_function_id = fn.value();
  auto ok = r.boolean();
  if (!ok) return ok.error();
  m.success = ok.value();
  return m;
}

}  // namespace xsec::oran
