#include "oran/a1.hpp"

#include <cstdlib>

#include "common/strings.hpp"

namespace xsec::oran {

double A1Policy::get_double(const std::string& key, double fallback) const {
  auto it = content.find(key);
  if (it == content.end()) return fallback;
  char* end = nullptr;
  double value = std::strtod(it->second.c_str(), &end);
  return end == it->second.c_str() ? fallback : value;
}

bool A1Policy::get_bool(const std::string& key, bool fallback) const {
  auto it = content.find(key);
  if (it == content.end()) return fallback;
  std::string lower = to_lower(it->second);
  if (lower == "true" || lower == "1" || lower == "on") return true;
  if (lower == "false" || lower == "0" || lower == "off") return false;
  return fallback;
}

std::string to_string(PolicyStatus status) {
  switch (status) {
    case PolicyStatus::kEnforced: return "ENFORCED";
    case PolicyStatus::kNotEnforced: return "NOT_ENFORCED";
    case PolicyStatus::kUnsupported: return "UNSUPPORTED";
  }
  return "?";
}

}  // namespace xsec::oran
