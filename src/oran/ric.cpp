#include "oran/ric.hpp"

#include "common/log.hpp"

namespace xsec::oran {

std::uint64_t NearRtRic::connect_node(E2NodeLink* link) {
  Bytes wire = link->setup_request();
  auto setup = decode_setup_request(wire);
  if (!setup) {
    XSEC_LOG_WARN("ric", "malformed E2 setup request: ",
                  setup.error().message);
    return 0;
  }
  if (setup.value().functions.empty()) {
    XSEC_LOG_WARN("ric", "E2 setup with no RAN functions rejected");
    return 0;
  }
  Node node;
  node.link = link;
  node.functions = setup.value().functions;
  std::uint64_t node_id = setup.value().node_id;
  nodes_[node_id] = std::move(node);

  E2SetupResponse response;
  for (const auto& f : nodes_[node_id].functions)
    response.accepted_function_ids.push_back(f.function_id);
  link->on_e2ap(encode_e2ap(response));
  XSEC_LOG_INFO("ric", "E2 node ", node_id, " connected with ",
                nodes_[node_id].functions.size(), " RAN function(s)");
  return node_id;
}

void NearRtRic::disconnect_node(std::uint64_t node_id) {
  nodes_.erase(node_id);
  for (auto it = subscriptions_.begin(); it != subscriptions_.end();) {
    if (it->first.node_id == node_id)
      it = subscriptions_.erase(it);
    else
      ++it;
  }
}

const std::vector<RanFunction>* NearRtRic::node_functions(
    std::uint64_t node_id) const {
  auto it = nodes_.find(node_id);
  if (it == nodes_.end()) return nullptr;
  return &it->second.functions;
}

std::vector<std::uint64_t> NearRtRic::connected_nodes() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) ids.push_back(id);
  return ids;
}

XApp* NearRtRic::register_xapp(std::unique_ptr<XApp> xapp) {
  XApp* raw = xapp.get();
  raw->attach(this, &sdl_, &router_, next_requestor_id_++);
  xapps_.push_back(std::move(xapp));
  raw->on_start();
  XSEC_LOG_INFO("ric", "xApp registered: ", raw->name());
  return raw;
}

PolicyStatus NearRtRic::apply_policy(const std::string& xapp_name,
                                     const A1Policy& policy) {
  XApp* xapp = find_xapp(xapp_name);
  if (!xapp) {
    XSEC_LOG_WARN("ric", "A1 policy for unknown xApp ", xapp_name);
    return PolicyStatus::kNotEnforced;
  }
  PolicyStatus status = xapp->on_policy(policy);
  XSEC_LOG_INFO("ric", "A1 policy ", policy.policy_id, " -> ", xapp_name,
                ": ", to_string(status));
  return status;
}

XApp* NearRtRic::find_xapp(const std::string& name) {
  for (const auto& xapp : xapps_)
    if (xapp->name() == name) return xapp.get();
  return nullptr;
}

RicRequestId NearRtRic::subscribe(XApp* xapp, std::uint64_t node_id,
                                  std::uint16_t ran_function_id,
                                  Bytes event_trigger,
                                  std::vector<RicAction> actions) {
  RicRequestId id{xapp->requestor_id(), next_instance_id_++};
  auto node_it = nodes_.find(node_id);
  if (node_it == nodes_.end()) {
    XSEC_LOG_WARN("ric", "subscribe to unknown node ", node_id);
    return id;
  }
  subscriptions_[SubscriptionKey{node_id, id.requestor_id, id.instance_id}] =
      xapp;

  RicSubscriptionRequest request;
  request.request_id = id;
  request.ran_function_id = ran_function_id;
  request.event_trigger = std::move(event_trigger);
  request.actions = std::move(actions);
  node_it->second.link->on_e2ap(encode_e2ap(request));
  return id;
}

void NearRtRic::unsubscribe(XApp* xapp, std::uint64_t node_id,
                            RicRequestId id) {
  (void)xapp;
  auto node_it = nodes_.find(node_id);
  subscriptions_.erase(
      SubscriptionKey{node_id, id.requestor_id, id.instance_id});
  if (node_it == nodes_.end()) return;
  RicSubscriptionDeleteRequest request;
  request.request_id = id;
  node_it->second.link->on_e2ap(encode_e2ap(request));
}

void NearRtRic::send_control(XApp* xapp, std::uint64_t node_id,
                             std::uint16_t ran_function_id, Bytes header,
                             Bytes message) {
  auto node_it = nodes_.find(node_id);
  if (node_it == nodes_.end()) return;
  RicControlRequest request;
  request.request_id = RicRequestId{xapp->requestor_id(), 0};
  request.ran_function_id = ran_function_id;
  request.header = std::move(header);
  request.message = std::move(message);
  node_it->second.link->on_e2ap(encode_e2ap(request));
}

void NearRtRic::from_node(std::uint64_t node_id, const Bytes& e2ap_wire) {
  auto type = e2ap_type(e2ap_wire);
  if (!type) {
    XSEC_LOG_WARN("ric", "undecodable E2AP from node ", node_id);
    return;
  }
  switch (type.value()) {
    case E2apType::kIndication: {
      auto indication = decode_indication(e2ap_wire);
      if (!indication) {
        ++indications_dropped_;
        return;
      }
      ++indications_received_;
      const RicRequestId& id = indication.value().request_id;
      auto it = subscriptions_.find(
          SubscriptionKey{node_id, id.requestor_id, id.instance_id});
      if (it == subscriptions_.end()) {
        ++indications_dropped_;
        XSEC_LOG_DEBUG("ric", "indication without subscription from node ",
                       node_id);
        return;
      }
      it->second->on_indication(node_id, indication.value());
      break;
    }
    case E2apType::kSubscriptionResponse: {
      // Admission bookkeeping only; rejected actions are logged.
      auto response = decode_subscription_response(e2ap_wire);
      if (response && !response.value().rejected_action_ids.empty())
        XSEC_LOG_WARN("ric", "node ", node_id, " rejected ",
                      response.value().rejected_action_ids.size(),
                      " subscription action(s)");
      break;
    }
    case E2apType::kControlAck: {
      auto ack = decode_control_ack(e2ap_wire);
      if (!ack) return;
      for (const auto& xapp : xapps_) {
        if (xapp->requestor_id() == ack.value().request_id.requestor_id) {
          xapp->on_control_ack(node_id, ack.value());
          break;
        }
      }
      break;
    }
    default:
      XSEC_LOG_WARN("ric", "unexpected E2AP PDU type from node ", node_id);
      break;
  }
}

}  // namespace xsec::oran
