#include "oran/ric.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace xsec::oran {

obs::Observability& NearRtRic::observability() const {
  if (obs_) return *obs_;
  if (!own_obs_) own_obs_ = std::make_unique<obs::Observability>();
  return *own_obs_;
}

void NearRtRic::set_observability(obs::Observability* obs) {
  obs_ = obs;
  metrics_ = Metrics{};  // re-bind against the injected registry
  sdl_.set_metrics(obs ? &obs->metrics : nullptr);
}

NearRtRic::Metrics& NearRtRic::m() const {
  if (!metrics_.bound) {
    obs::MetricsRegistry& r = observability().metrics;
    metrics_.received = &r.counter("ric.indications_received");
    metrics_.dropped = &r.counter("ric.indications_dropped");
    metrics_.duplicates = &r.counter("ric.duplicates_suppressed");
    metrics_.recovered = &r.counter("ric.indications_recovered");
    metrics_.gaps = &r.counter("ric.gaps_detected");
    metrics_.nacks = &r.counter("ric.nacks_sent");
    metrics_.nack_batched = &r.counter("e2.nack_batched");
    metrics_.reconnects = &r.counter("ric.node_reconnects");
    metrics_.stale_cleared = &r.counter("ric.stale_subscriptions_cleared");
    metrics_.controls_sent = &r.counter("ric.controls_sent");
    metrics_.control_acks = &r.counter("ric.control_acks");
    metrics_.control_retx = &r.counter("ric.control_retx");
    metrics_.controls_lost = &r.counter("ric.controls_lost");
    metrics_.bound = true;
  }
  return metrics_;
}

obs::Counter& NearRtRic::node_counter(const char* what,
                                      std::uint64_t node_id) const {
  return observability().metrics.counter("ric.node" + std::to_string(node_id) +
                                         "." + what);
}

Result<std::uint64_t> NearRtRic::connect_node(E2NodeLink* link) {
  Bytes wire = link->setup_request();
  auto setup = decode_setup_request(wire);
  if (!setup) {
    XSEC_LOG_WARN("ric", "malformed E2 setup request: ",
                  setup.error().message);
    return Error::make("malformed", setup.error().message);
  }
  if (setup.value().functions.empty()) {
    XSEC_LOG_WARN("ric", "E2 setup with no RAN functions rejected");
    return Error::make("no-functions", "E2 setup advertised no RAN functions");
  }
  std::uint64_t node_id = setup.value().node_id;
  bool reconnect = nodes_.count(node_id) > 0;
  if (reconnect) {
    // Node-side restart (or link recovery): everything keyed to the old
    // connection is stale. Tear it down explicitly — subscriptions do not
    // survive an E2 Setup — and let xApps re-establish below.
    m().reconnects->inc();
    clear_node_state(node_id);
    XSEC_LOG_INFO("ric", "E2 node ", node_id,
                  " re-setup: stale subscription state torn down");
  }
  Node node;
  node.link = link;
  node.functions = setup.value().functions;
  node.indications = &node_counter("indications", node_id);
  nodes_[node_id] = std::move(node);

  E2SetupResponse response;
  for (const auto& f : nodes_[node_id].functions)
    response.accepted_function_ids.push_back(f.function_id);
  link->on_e2ap(encode_e2ap(response));
  XSEC_LOG_INFO("ric", "E2 node ", node_id, " connected with ",
                nodes_[node_id].functions.size(), " RAN function(s)");
  // Registered xApps resume their subscriptions on the fresh connection.
  // (Initial pipeline bring-up connects nodes before any xApp registers;
  // those subscribe from on_start instead.)
  for (const auto& xapp : xapps_) xapp->on_node_connected(node_id);
  return node_id;
}

void NearRtRic::clear_node_state(std::uint64_t node_id) {
  for (auto it = subscriptions_.begin(); it != subscriptions_.end();) {
    if (it->first.node_id == node_id) {
      m().stale_cleared->inc();
      streams_.erase(it->first);
      it = subscriptions_.erase(it);
    } else {
      ++it;
    }
  }
  staged_nacks_.erase(node_id);
  nodes_.erase(node_id);
  fail_node_controls(node_id);
}

void NearRtRic::disconnect_node(std::uint64_t node_id) {
  for (auto it = subscriptions_.begin(); it != subscriptions_.end();) {
    if (it->first.node_id == node_id) {
      streams_.erase(it->first);
      it = subscriptions_.erase(it);
    } else {
      ++it;
    }
  }
  staged_nacks_.erase(node_id);
  nodes_.erase(node_id);
  fail_node_controls(node_id);
}

const std::vector<RanFunction>* NearRtRic::node_functions(
    std::uint64_t node_id) const {
  auto it = nodes_.find(node_id);
  if (it == nodes_.end()) return nullptr;
  return &it->second.functions;
}

std::vector<std::uint64_t> NearRtRic::connected_nodes() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) ids.push_back(id);
  return ids;
}

XApp* NearRtRic::register_xapp(std::unique_ptr<XApp> xapp) {
  XApp* raw = xapp.get();
  raw->attach(this, &sdl_, &router_, next_requestor_id_++, &observability());
  xapps_.push_back(std::move(xapp));
  raw->on_start();
  XSEC_LOG_INFO("ric", "xApp registered: ", raw->name());
  return raw;
}

PolicyStatus NearRtRic::apply_policy(const std::string& xapp_name,
                                     const A1Policy& policy) {
  XApp* xapp = find_xapp(xapp_name);
  if (!xapp) {
    XSEC_LOG_WARN("ric", "A1 policy for unknown xApp ", xapp_name);
    return PolicyStatus::kNotEnforced;
  }
  PolicyStatus status = xapp->on_policy(policy);
  XSEC_LOG_INFO("ric", "A1 policy ", policy.policy_id, " -> ", xapp_name,
                ": ", to_string(status));
  return status;
}

XApp* NearRtRic::find_xapp(const std::string& name) {
  for (const auto& xapp : xapps_)
    if (xapp->name() == name) return xapp.get();
  return nullptr;
}

RicRequestId NearRtRic::subscribe(XApp* xapp, std::uint64_t node_id,
                                  std::uint16_t ran_function_id,
                                  Bytes event_trigger,
                                  std::vector<RicAction> actions) {
  RicRequestId id{xapp->requestor_id(), next_instance_id_++};
  auto node_it = nodes_.find(node_id);
  if (node_it == nodes_.end()) {
    XSEC_LOG_WARN("ric", "subscribe to unknown node ", node_id);
    return id;
  }
  subscriptions_[SubscriptionKey{node_id, id.requestor_id, id.instance_id}] =
      xapp;

  RicSubscriptionRequest request;
  request.request_id = id;
  request.ran_function_id = ran_function_id;
  request.event_trigger = std::move(event_trigger);
  request.actions = std::move(actions);
  node_it->second.link->on_e2ap(encode_e2ap(request));
  return id;
}

void NearRtRic::unsubscribe(XApp* xapp, std::uint64_t node_id,
                            RicRequestId id) {
  (void)xapp;
  auto node_it = nodes_.find(node_id);
  SubscriptionKey key{node_id, id.requestor_id, id.instance_id};
  subscriptions_.erase(key);
  streams_.erase(key);
  if (node_it == nodes_.end()) return;
  RicSubscriptionDeleteRequest request;
  request.request_id = id;
  node_it->second.link->on_e2ap(encode_e2ap(request));
}

RicRequestId NearRtRic::send_control(XApp* xapp, std::uint64_t node_id,
                                     std::uint16_t ran_function_id,
                                     Bytes header, Bytes message) {
  RicRequestId id{xapp->requestor_id(), next_control_instance_++};
  auto node_it = nodes_.find(node_id);
  if (node_it == nodes_.end()) {
    // Unknown / departed node: the request can never be delivered, but the
    // xApp still gets its one guaranteed ack.
    m().controls_lost->inc();
    RicControlAck ack;
    ack.request_id = id;
    ack.ran_function_id = ran_function_id;
    ack.success = false;
    xapp->on_control_ack(node_id, ack);
    return id;
  }
  RicControlRequest request;
  request.request_id = id;
  request.ran_function_id = ran_function_id;
  request.header = std::move(header);
  request.message = std::move(message);
  Bytes wire = encode_e2ap(request);
  m().controls_sent->inc();
  if (scheduler_) {
    // Track BEFORE delivery: the default transport delivers RIC -> node
    // synchronously, so the ack can arrive (and erase the entry) inside
    // the on_e2ap call below.
    std::uint64_t key = control_key(id);
    PendingControl pending;
    pending.node_id = node_id;
    pending.xapp = xapp;
    pending.ran_function_id = ran_function_id;
    pending.wire = wire;
    pending_controls_.emplace(key, std::move(pending));
    node_it->second.link->on_e2ap(wire);
    scheduler_(SimDuration::from_ms(kControlAckTimeoutMs),
               [this, key] { control_timeout(key); });
  } else {
    // Standalone mode (no scheduler): fire-and-forget, as before.
    node_it->second.link->on_e2ap(wire);
  }
  return id;
}

void NearRtRic::control_timeout(std::uint64_t key) {
  auto it = pending_controls_.find(key);
  if (it == pending_controls_.end()) return;  // acked in time
  auto node_it = nodes_.find(it->second.node_id);
  if (node_it == nodes_.end() || it->second.retx >= kMaxControlRetx) {
    PendingControl pending = std::move(it->second);
    pending_controls_.erase(it);
    fail_control(key, std::move(pending));
    return;
  }
  ++it->second.retx;
  m().control_retx->inc();
  // Copy: a synchronous retransmission round trip can ack and erase the
  // entry inside on_e2ap.
  Bytes wire = it->second.wire;
  node_it->second.link->on_e2ap(wire);
  scheduler_(SimDuration::from_ms(kControlAckTimeoutMs),
             [this, key] { control_timeout(key); });
}

void NearRtRic::fail_control(std::uint64_t key, PendingControl pending) {
  (void)key;
  m().controls_lost->inc();
  XSEC_LOG_WARN("ric", "control to node ", pending.node_id,
                " abandoned after ", int(pending.retx), " retransmission(s)");
  auto request = decode_control_request(pending.wire);
  RicControlAck ack;
  if (request) ack.request_id = request.value().request_id;
  ack.ran_function_id = pending.ran_function_id;
  ack.success = false;
  if (pending.xapp) pending.xapp->on_control_ack(pending.node_id, ack);
}

void NearRtRic::fail_node_controls(std::uint64_t node_id) {
  // Collect first: the failure acks re-enter xApp code that may issue new
  // controls while we iterate.
  std::vector<std::pair<std::uint64_t, PendingControl>> doomed;
  for (auto it = pending_controls_.begin(); it != pending_controls_.end();) {
    if (it->second.node_id == node_id) {
      doomed.emplace_back(it->first, std::move(it->second));
      it = pending_controls_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& [key, pending] : doomed) fail_control(key, std::move(pending));
}

void NearRtRic::deliver_to_xapp(const SubscriptionKey& key, XApp* xapp,
                                const RicIndicationView& indication) {
  obs::Observability& o = observability();
  // One trace per indication of a node; every stage of its journey
  // (agent.encode -> e2.transit -> ric.deliver -> mobiwatch.*) shares it.
  std::uint64_t trace_id =
      (key.node_id << 32) | indication.sequence_number;
  std::uint32_t transit_id = 0;
  if (indication.sent_at_us > 0 && o.tracer.has_clock()) {
    // Transit measured from the FIRST transmission (retransmits keep the
    // original stamp), so the distribution includes retransmission delay.
    transit_id =
        o.tracer.record("e2.transit", trace_id, o.tracer.root_of(trace_id),
                        SimTime{indication.sent_at_us}, o.tracer.now());
  }
  obs::Span span = o.tracer.begin("ric.deliver", trace_id, transit_id);
  xapp->on_indication_view(key.node_id, indication);
}

void NearRtRic::deliver_in_order(const SubscriptionKey& key, Stream& stream) {
  auto sub = subscriptions_.find(key);
  if (sub == subscriptions_.end()) return;
  while (!stream.pending.empty() &&
         stream.pending.begin()->first == stream.next_expected) {
    RicIndication next = std::move(stream.pending.begin()->second);
    stream.pending.erase(stream.pending.begin());
    stream.nack_counts.erase(stream.next_expected);
    ++stream.next_expected;
    m().recovered->inc();
    deliver_to_xapp(key, sub->second, as_view(next));
  }
}

void NearRtRic::declare_gap(const SubscriptionKey& key, Stream& stream,
                            std::uint32_t up_to) {
  auto sub = subscriptions_.find(key);
  std::uint32_t first = stream.next_expected;
  for (std::uint32_t seq = first; seq != up_to; ++seq)
    stream.nack_counts.erase(seq);
  stream.next_expected = up_to;
  m().gaps->inc();
  node_counter("gaps_detected", key.node_id).inc();
  XSEC_LOG_WARN("ric", "telemetry gap on node ", key.node_id,
                ": indications [", first, ", ", up_to - 1, "] lost");
  if (sub != subscriptions_.end())
    sub->second->on_telemetry_gap(
        key.node_id, RicRequestId{key.requestor_id, key.instance_id}, first,
        up_to - 1);
}

void NearRtRic::send_single_nack(const SubscriptionKey& key, Stream& stream,
                                 std::uint32_t lowest_pending) {
  auto node_it = nodes_.find(key.node_id);
  if (node_it == nodes_.end()) return;
  RicIndicationNack nack;
  nack.ranges.push_back(
      NackRange{RicRequestId{key.requestor_id, key.instance_id},
                stream.next_expected, lowest_pending - 1});
  m().nacks->inc();
  node_it->second.link->on_e2ap(encode_e2ap(nack));
}

void NearRtRic::maybe_nack(const SubscriptionKey& key, Stream& stream) {
  auto node_it = nodes_.find(key.node_id);
  if (node_it == nodes_.end() || stream.pending.empty()) return;
  std::uint32_t lowest_pending = stream.pending.begin()->first;
  // Request the whole missing run in one NACK, budgeting per sequence so a
  // run that keeps getting lost is eventually abandoned by declare_gap.
  bool any_budget = false;
  for (std::uint32_t seq = stream.next_expected; seq != lowest_pending;
       ++seq) {
    std::uint8_t& count = stream.nack_counts[seq];
    if (count < kMaxNacks) {
      ++count;
      any_budget = true;
    }
  }
  if (!any_budget) return;
  if (!scheduler_) {
    // Standalone mode: every missing run is chased immediately.
    send_single_nack(key, stream, lowest_pending);
    return;
  }
  // Batched mode: stage this stream's request and flush every stream's
  // staged NACK for the node as ONE multi-range PDU at zero delay — after
  // the rest of the reverse-path round's arrivals (same sim time) have
  // been processed, so ranges healed within the round are not chased.
  auto& staged = staged_nacks_[key.node_id];
  bool flush_pending = !staged.empty();
  if (std::find(staged.begin(), staged.end(), key) == staged.end())
    staged.push_back(key);
  if (!flush_pending) {
    scheduler_(SimDuration{0},
               [this, node_id = key.node_id] { flush_nacks(node_id); });
  }
}

void NearRtRic::flush_nacks(std::uint64_t node_id) {
  auto staged_it = staged_nacks_.find(node_id);
  if (staged_it == staged_nacks_.end()) return;
  std::vector<SubscriptionKey> staged = std::move(staged_it->second);
  staged_nacks_.erase(staged_it);
  auto node_it = nodes_.find(node_id);
  if (node_it == nodes_.end()) return;  // link died between stage and flush
  RicIndicationNack nack;
  for (const SubscriptionKey& key : staged) {
    auto stream_it = streams_.find(key);
    if (stream_it == streams_.end()) continue;
    Stream& stream = stream_it->second;
    // Re-derive the missing run at flush time: an arrival later in the
    // same round may have shrunk or healed it.
    if (stream.pending.empty()) continue;
    std::uint32_t lowest_pending = stream.pending.begin()->first;
    if (stream.next_expected >= lowest_pending) continue;
    nack.ranges.push_back(
        NackRange{RicRequestId{key.requestor_id, key.instance_id},
                  stream.next_expected, lowest_pending - 1});
  }
  if (nack.ranges.empty()) return;
  m().nacks->inc();
  if (nack.ranges.size() > 1)
    m().nack_batched->inc(nack.ranges.size() - 1);
  node_it->second.link->on_e2ap(encode_e2ap(nack));
}

void NearRtRic::handle_indication_view(std::uint64_t node_id,
                                       const RicIndicationView& indication) {
  const RicRequestId& id = indication.request_id;
  SubscriptionKey key{node_id, id.requestor_id, id.instance_id};
  auto sub = subscriptions_.find(key);
  if (sub == subscriptions_.end()) {
    m().dropped->inc();
    XSEC_LOG_DEBUG("ric", "indication without subscription from node ",
                   node_id);
    return;
  }
  Stream& stream = streams_[key];
  std::uint32_t seq = indication.sequence_number;
  if (!stream.started) {
    // Subscriptions join the agent's global sequence mid-stream; the first
    // arrival anchors the tracker.
    stream.started = true;
    stream.next_expected = seq;
  }
  if (seq < stream.next_expected) {
    m().duplicates->inc();
    return;
  }
  if (seq == stream.next_expected) {
    ++stream.next_expected;
    stream.nack_counts.erase(seq);
    // The common case: in order, delivered as a zero-copy view straight
    // out of the transport's buffer.
    deliver_to_xapp(key, sub->second, indication);
    deliver_in_order(key, stream);
    return;
  }
  // Ahead of sequence: buffer and chase the missing run. Buffering must
  // outlive the transport's frame, so this is the one path that copies.
  if (stream.pending.count(seq)) {
    m().duplicates->inc();
    return;
  }
  stream.pending.emplace(seq, indication.materialize());
  // Chase the missing run while retransmission budget remains; once every
  // sequence in it has been NACKed kMaxNacks times without an answer (or
  // the reorder buffer overflows), give up and declare the gap.
  std::uint32_t lowest_pending = stream.pending.begin()->first;
  bool budget_left = false;
  for (std::uint32_t s = stream.next_expected; s != lowest_pending; ++s) {
    auto it = stream.nack_counts.find(s);
    if (it == stream.nack_counts.end() || it->second < kMaxNacks) {
      budget_left = true;
      break;
    }
  }
  if (budget_left && stream.pending.size() <= kReorderWindow) {
    maybe_nack(key, stream);
  } else {
    declare_gap(key, stream, lowest_pending);
    deliver_in_order(key, stream);
  }
}

void NearRtRic::flush_streams() {
  for (auto& [key, stream] : streams_) {
    while (!stream.pending.empty()) {
      std::uint32_t lowest_pending = stream.pending.begin()->first;
      if (lowest_pending != stream.next_expected)
        declare_gap(key, stream, lowest_pending);
      deliver_in_order(key, stream);
    }
  }
}

void NearRtRic::from_node(std::uint64_t node_id, const Bytes& e2ap_wire) {
  from_node_frame(
      node_id, std::span<const std::uint8_t>(e2ap_wire.data(), e2ap_wire.size()));
}

void NearRtRic::from_node_frame(std::uint64_t node_id,
                                std::span<const std::uint8_t> e2ap_wire) {
  auto type = e2ap_type(e2ap_wire);
  if (!type) {
    XSEC_LOG_WARN("ric", "undecodable E2AP from node ", node_id);
    return;
  }
  switch (type.value()) {
    case E2apType::kIndication: {
      auto indication = decode_indication_view(e2ap_wire);
      if (!indication) {
        m().dropped->inc();
        return;
      }
      m().received->inc();
      auto node_it = nodes_.find(node_id);
      if (node_it != nodes_.end() && node_it->second.indications)
        node_it->second.indications->inc();
      handle_indication_view(node_id, indication.value());
      break;
    }
    case E2apType::kSubscriptionResponse: {
      // Admission bookkeeping only; rejected actions are logged. Rare
      // (once per subscription), so materializing the span is fine.
      Bytes wire(e2ap_wire.begin(), e2ap_wire.end());
      auto response = decode_subscription_response(wire);
      if (response && !response.value().rejected_action_ids.empty())
        XSEC_LOG_WARN("ric", "node ", node_id, " rejected ",
                      response.value().rejected_action_ids.size(),
                      " subscription action(s)");
      break;
    }
    case E2apType::kControlAck: {
      Bytes wire(e2ap_wire.begin(), e2ap_wire.end());
      auto ack = decode_control_ack(wire);
      if (!ack) return;
      const RicRequestId& id = ack.value().request_id;
      if (id.instance_id != 0) {
        // Correlated path: match against the pending map. A second arrival
        // (duplicated ack, or an ack racing a retransmission) finds no
        // entry and is suppressed — the xApp sees exactly one ack.
        auto it = pending_controls_.find(control_key(id));
        if (it == pending_controls_.end()) {
          m().duplicates->inc();
          return;
        }
        XApp* xapp = it->second.xapp;
        pending_controls_.erase(it);
        m().control_acks->inc();
        if (xapp) xapp->on_control_ack(node_id, ack.value());
        return;
      }
      // Legacy uncorrelated path (instance 0): route by requestor id.
      for (const auto& xapp : xapps_) {
        if (xapp->requestor_id() == id.requestor_id) {
          xapp->on_control_ack(node_id, ack.value());
          break;
        }
      }
      break;
    }
    default:
      XSEC_LOG_WARN("ric", "unexpected E2AP PDU type from node ", node_id);
      break;
  }
}

}  // namespace xsec::oran
