// Single-producer/single-consumer ring + compile-time tagged messages.
//
// The transport between the RIC coordinator (the E2 ingest side, which owns
// the deterministic event loop) and one shard worker thread. Two pieces:
//
//   - TaggedSlot<Ms...>: a fixed-size union of trivially copyable message
//     structs, each carrying a compile-time 16-bit type tag (hmbdc-style
//     `static constexpr kTag`). dispatch() expands at compile time into a
//     tag-switch over the message set — no virtual calls, no RTTI, no
//     allocation on the hot path.
//   - SpscRing<Slot>: a power-of-two ring with cache-line-separated
//     head/tail indices and acquire/release publication. Exactly one
//     producer (the coordinator) and one consumer (the shard's worker) per
//     ring, so no CAS loops are needed.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <type_traits>
#include <vector>

namespace xsec::oran {

/// CRTP-free tag base: `struct ScoreTask : HasTag<0x5c01> { ... };` gives
/// the message its compile-time wire tag.
template <std::uint16_t Tag>
struct HasTag {
  static constexpr std::uint16_t kTag = Tag;
};

/// Fixed-size storage for exactly one message out of a closed, compile-time
/// message set. Messages must be trivially copyable (they cross a thread
/// boundary by memcpy) and carry pairwise-distinct kTag values.
template <typename... Ms>
class TaggedSlot {
  static_assert(sizeof...(Ms) > 0, "message set must not be empty");
  static_assert((std::is_trivially_copyable_v<Ms> && ...),
                "ring messages must be trivially copyable");

  static constexpr bool tags_unique() {
    constexpr std::uint16_t tags[] = {Ms::kTag...};
    for (std::size_t i = 0; i < sizeof...(Ms); ++i)
      for (std::size_t j = i + 1; j < sizeof...(Ms); ++j)
        if (tags[i] == tags[j]) return false;
    return true;
  }
  static_assert(tags_unique(), "message tags must be pairwise distinct");

 public:
  template <typename M>
  void store(const M& m) {
    static_assert((std::is_same_v<M, Ms> || ...),
                  "message type not in this slot's set");
    tag_ = M::kTag;
    std::memcpy(buf_, &m, sizeof(M));
  }

  std::uint16_t tag() const { return tag_; }

  /// Invokes `handler(msg)` with the stored message at its concrete type.
  /// The fold expands to a chain of tag compares the compiler turns into a
  /// jump table for larger sets.
  template <typename Handler>
  void dispatch(Handler&& handler) const {
    (void)(try_dispatch<Ms>(handler) || ...);
  }

 private:
  template <typename M, typename Handler>
  bool try_dispatch(Handler& handler) const {
    if (tag_ != M::kTag) return false;
    M m;
    std::memcpy(&m, buf_, sizeof(M));
    handler(m);
    return true;
  }

  static constexpr std::size_t max_of(std::initializer_list<std::size_t> v) {
    std::size_t m = 0;
    for (std::size_t x : v) m = x > m ? x : m;
    return m;
  }
  static constexpr std::size_t kSize = max_of({sizeof(Ms)...});
  static constexpr std::size_t kAlign = max_of({alignof(Ms)...});

  alignas(kAlign) unsigned char buf_[kSize];
  std::uint16_t tag_ = 0;
};

/// Lock-free SPSC ring buffer. Capacity is rounded up to a power of two so
/// index wrapping is a mask. The producer owns tail_, the consumer owns
/// head_; each publishes its index with release and reads the other's with
/// acquire, which is the full synchronization story.
template <typename Slot>
class SpscRing {
 public:
  static constexpr std::size_t kCacheLine = 64;

  explicit SpscRing(std::size_t capacity = 1024)
      : slots_(round_up_pow2(capacity)), mask_(slots_.size() - 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  /// Producer side. False when full (the consumer is behind).
  bool try_push(const Slot& slot) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) == slots_.size())
      return false;
    slots_[tail & mask_] = slot;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. False when empty.
  bool try_pop(Slot& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    out = slots_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }
  std::size_t size() const {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_acquire));
  }

 private:
  static std::size_t round_up_pow2(std::size_t v) {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  std::vector<Slot> slots_;
  std::size_t mask_;
  /// Producer-written and consumer-written indices on their own cache
  /// lines so the two sides never invalidate each other's hot line.
  alignas(kCacheLine) std::atomic<std::uint64_t> tail_{0};
  alignas(kCacheLine) std::atomic<std::uint64_t> head_{0};
  char pad_end_[kCacheLine - sizeof(std::atomic<std::uint64_t>)];
};

}  // namespace xsec::oran
