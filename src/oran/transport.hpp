// Fault-injected E2 transport.
//
// Sits between a RAN node's RIC agent and the near-RT RIC and subjects
// E2AP traffic (both directions) to a schedulable fault plan: random
// drop / duplication / reordering / delay of telemetry-path frames
// (indications and indication NACKs — control procedures model SCTP's
// reliable delivery and only see transit delay), plus forced link-down
// epochs during which the node is disconnected outright and ALL frames
// are lost. All randomness comes
// from a seeded Rng and all timing from injected hooks, so a chaos run is
// bit-reproducible.
//
// With the default (all-zero) FaultPlan the transport is transparent: it
// reproduces the seed pipeline's exact timing — RIC -> node frames are
// delivered synchronously, node -> RIC frames after a 1 ms E2 link delay.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "oran/ric.hpp"
#include "transport/link.hpp"

namespace xsec::oran {

/// One forced outage: the link goes down at `down_at` and recovers
/// `duration` later.
struct LinkEpoch {
  SimTime down_at;
  SimDuration duration;
};

/// Per-frame fault probabilities and transit delays. Probabilities are
/// sampled independently per frame and direction.
struct FaultPlan {
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  double reorder_probability = 0.0;
  /// Extra transit delay added to a reordered frame, uniform in
  /// [1, reorder_extra_ms_max] ms — later frames overtake it.
  std::uint32_t reorder_extra_ms_max = 5;
  /// Base transit delays. The seed pipeline delivers node -> RIC frames
  /// after 1 ms and RIC -> node frames synchronously; keep those defaults
  /// unless the experiment is about latency.
  std::uint32_t delay_node_to_ric_ms = 1;
  std::uint32_t delay_ric_to_node_ms = 0;
  /// When set, RIC Control requests and acks are also subject to random
  /// drop/duplicate/reorder (mitigation chaos testing). Off by default:
  /// control procedures normally model SCTP's reliable delivery.
  bool fault_control = false;
  std::vector<LinkEpoch> link_epochs;
  std::uint64_t seed = 0x715EC;
};

struct TransportCounters {
  std::size_t frames_sent = 0;       // frames offered, both directions
  std::size_t frames_delivered = 0;  // reached the far side (incl. copies)
  std::size_t frames_dropped = 0;    // lost to random drop
  std::size_t frames_duplicated = 0; // extra copies injected
  std::size_t frames_reordered = 0;  // frames given extra transit delay
  std::size_t link_down_drops = 0;   // frames lost to a down link
  std::size_t link_down_events = 0;
  std::size_t link_up_events = 0;
};

/// Timing hooks so the oran layer stays independent of the sim module
/// (mirrors mobiflow::AgentHooks).
struct TransportHooks {
  std::function<SimTime()> now;
  std::function<void(SimDuration, std::function<void()>)> schedule;
  /// Shared observability bundle; the transport creates a private one when
  /// absent (standalone tests).
  obs::Observability* obs = nullptr;
  /// Metric name prefix, e.g. "e2.node1001" in the multi-site pipeline.
  std::string metric_scope = "e2";
  /// Transport backend name ("inproc" / "uds" / "shm"). An explicit value
  /// wins; when empty the XSEC_E2_TRANSPORT environment variable fills the
  /// default (falling back to inproc), so default-configured suites can be
  /// re-run over a process-boundary backend without code changes.
  std::string backend;
  /// Logical per-direction channel capacity in bytes (identical across
  /// backends, so backpressure decisions don't depend on the backend).
  std::size_t link_capacity = transport::kDefaultChannelCapacity;
  /// Event-driven transport pump to register the link's channels with
  /// (non-owning; must outlive the transport). nullptr = polled mode.
  transport::EpollPump* pump = nullptr;
};

/// The transport interposes as the RIC's E2NodeLink: the RIC talks to it
/// believing it is the node, and the node's `to_ric` traffic is funneled
/// through it before reaching NearRtRic::from_node.
class FaultyE2Transport : public E2NodeLink {
 public:
  FaultyE2Transport(NearRtRic* ric, E2NodeLink* node, FaultPlan plan,
                    TransportHooks hooks);

  /// Schedules the fault plan's link-down/up epochs on the event queue.
  /// Call once, before the run starts.
  void arm_epochs();

  /// Attempts the E2 Setup exchange through the transport. Fails fast
  /// while the link is down (the caller retries with backoff).
  Result<std::uint64_t> connect();

  /// Node -> RIC direction, subject to the fault plan.
  void to_ric(std::uint64_t node_id, Bytes wire);

  // E2NodeLink (the RIC-facing side; RIC -> node direction):
  Bytes setup_request() override { return node_->setup_request(); }
  void on_e2ap(const Bytes& wire) override;

  bool link_up() const { return link_up_; }
  /// Snapshot assembled from the registry counters ("<scope>.*").
  TransportCounters counters() const;

  /// The backend actually in use (after env override and any fallback).
  transport::BackendKind backend() const { return link_->backend(); }
  /// The link's resolved per-direction channel capacity in bytes.
  std::size_t link_capacity() const { return link_->capacity(); }
  /// Would a node -> RIC PDU of this size fit right now? Agents probe this
  /// before consuming sequence numbers so backpressured telemetry stays in
  /// their outage buffer instead of being half-sent. Frames still in their
  /// transit-delay window count against the capacity (send()-time
  /// reservation, like a kernel SNDBUF), so a burst of probes cannot
  /// collectively overshoot the channel.
  bool ready_for(std::size_t pdu_bytes) {
    return link_->ready_for(pdu_bytes + in_flight_to_ric_);
  }
  /// Test hooks: pause/resume the RIC-side reader (slow-consumer chaos)
  /// and drain whatever queued while it was paused.
  void set_reader_paused(bool paused) { link_->set_ric_reader_paused(paused); }
  void pump_to_ric() { link_->pump_to_ric(); }

 private:
  void send(Bytes wire, bool toward_ric, std::uint64_t node_id);
  void deliver(const Bytes& wire, bool toward_ric, std::uint64_t node_id,
               SimTime sent_at);
  void go_down();
  void go_up();

  NearRtRic* ric_;
  E2NodeLink* node_;
  FaultPlan plan_;
  TransportHooks hooks_;
  Rng rng_;
  bool link_up_ = true;
  std::uint64_t node_id_ = 0;  // learned from a successful connect()

  /// The framed channel pair carrying every delivered PDU. The fault plan
  /// layers ABOVE it: faults decide WHEN (and whether) a PDU crosses; at
  /// its scheduled delivery time the PDU is framed into the channel and
  /// pumped synchronously, so FIFO channel order never conflicts with the
  /// plan's reordering and the seed pipeline's timing is preserved
  /// exactly on every backend.
  std::unique_ptr<transport::FramedLink> link_;
  /// Reusable buffers for RIC -> node deliveries: E2NodeLink::on_e2ap
  /// takes owned Bytes, so the frame span is materialized here. A small
  /// ring instead of one buffer because a delivery's side effects can
  /// nest further deliveries while the outer buffer is still being read.
  std::array<Bytes, 4> rx_scratch_;
  std::size_t rx_scratch_idx_ = 0;
  /// Framed bytes of node -> RIC frames inside their transit-delay window
  /// (sent, not yet enqueued). ready_for() reserves them against the
  /// channel capacity.
  std::size_t in_flight_to_ric_ = 0;

  /// Registry handles bound once at construction (hot path stays
  /// allocation- and lookup-free).
  std::unique_ptr<obs::Observability> own_obs_;
  obs::Counter* frames_sent_ = nullptr;
  obs::Counter* frames_delivered_ = nullptr;
  obs::Counter* frames_dropped_ = nullptr;
  obs::Counter* frames_duplicated_ = nullptr;
  obs::Counter* frames_reordered_ = nullptr;
  obs::Counter* link_down_drops_ = nullptr;
  obs::Counter* link_down_events_ = nullptr;
  obs::Counter* link_up_events_ = nullptr;
  obs::Histogram* transit_us_ = nullptr;
};

}  // namespace xsec::oran
