// Fault-injected E2 transport.
//
// Sits between a RAN node's RIC agent and the near-RT RIC and subjects
// E2AP traffic (both directions) to a schedulable fault plan: random
// drop / duplication / reordering / delay of telemetry-path frames
// (indications and indication NACKs — control procedures model SCTP's
// reliable delivery and only see transit delay), plus forced link-down
// epochs during which the node is disconnected outright and ALL frames
// are lost. All randomness comes
// from a seeded Rng and all timing from injected hooks, so a chaos run is
// bit-reproducible.
//
// With the default (all-zero) FaultPlan the transport is transparent: it
// reproduces the seed pipeline's exact timing — RIC -> node frames are
// delivered synchronously, node -> RIC frames after a 1 ms E2 link delay.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "oran/ric.hpp"

namespace xsec::oran {

/// One forced outage: the link goes down at `down_at` and recovers
/// `duration` later.
struct LinkEpoch {
  SimTime down_at;
  SimDuration duration;
};

/// Per-frame fault probabilities and transit delays. Probabilities are
/// sampled independently per frame and direction.
struct FaultPlan {
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  double reorder_probability = 0.0;
  /// Extra transit delay added to a reordered frame, uniform in
  /// [1, reorder_extra_ms_max] ms — later frames overtake it.
  std::uint32_t reorder_extra_ms_max = 5;
  /// Base transit delays. The seed pipeline delivers node -> RIC frames
  /// after 1 ms and RIC -> node frames synchronously; keep those defaults
  /// unless the experiment is about latency.
  std::uint32_t delay_node_to_ric_ms = 1;
  std::uint32_t delay_ric_to_node_ms = 0;
  /// When set, RIC Control requests and acks are also subject to random
  /// drop/duplicate/reorder (mitigation chaos testing). Off by default:
  /// control procedures normally model SCTP's reliable delivery.
  bool fault_control = false;
  std::vector<LinkEpoch> link_epochs;
  std::uint64_t seed = 0x715EC;
};

struct TransportCounters {
  std::size_t frames_sent = 0;       // frames offered, both directions
  std::size_t frames_delivered = 0;  // reached the far side (incl. copies)
  std::size_t frames_dropped = 0;    // lost to random drop
  std::size_t frames_duplicated = 0; // extra copies injected
  std::size_t frames_reordered = 0;  // frames given extra transit delay
  std::size_t link_down_drops = 0;   // frames lost to a down link
  std::size_t link_down_events = 0;
  std::size_t link_up_events = 0;
};

/// Timing hooks so the oran layer stays independent of the sim module
/// (mirrors mobiflow::AgentHooks).
struct TransportHooks {
  std::function<SimTime()> now;
  std::function<void(SimDuration, std::function<void()>)> schedule;
  /// Shared observability bundle; the transport creates a private one when
  /// absent (standalone tests).
  obs::Observability* obs = nullptr;
  /// Metric name prefix, e.g. "e2.node1001" in the multi-site pipeline.
  std::string metric_scope = "e2";
};

/// The transport interposes as the RIC's E2NodeLink: the RIC talks to it
/// believing it is the node, and the node's `to_ric` traffic is funneled
/// through it before reaching NearRtRic::from_node.
class FaultyE2Transport : public E2NodeLink {
 public:
  FaultyE2Transport(NearRtRic* ric, E2NodeLink* node, FaultPlan plan,
                    TransportHooks hooks);

  /// Schedules the fault plan's link-down/up epochs on the event queue.
  /// Call once, before the run starts.
  void arm_epochs();

  /// Attempts the E2 Setup exchange through the transport. Fails fast
  /// while the link is down (the caller retries with backoff).
  Result<std::uint64_t> connect();

  /// Node -> RIC direction, subject to the fault plan.
  void to_ric(std::uint64_t node_id, Bytes wire);

  // E2NodeLink (the RIC-facing side; RIC -> node direction):
  Bytes setup_request() override { return node_->setup_request(); }
  void on_e2ap(const Bytes& wire) override;

  bool link_up() const { return link_up_; }
  /// Snapshot assembled from the registry counters ("<scope>.*").
  TransportCounters counters() const;

 private:
  void send(Bytes wire, bool toward_ric, std::uint64_t node_id);
  void deliver(const Bytes& wire, bool toward_ric, std::uint64_t node_id,
               SimTime sent_at);
  void go_down();
  void go_up();

  NearRtRic* ric_;
  E2NodeLink* node_;
  FaultPlan plan_;
  TransportHooks hooks_;
  Rng rng_;
  bool link_up_ = true;
  std::uint64_t node_id_ = 0;  // learned from a successful connect()

  /// Registry handles bound once at construction (hot path stays
  /// allocation- and lookup-free).
  std::unique_ptr<obs::Observability> own_obs_;
  obs::Counter* frames_sent_ = nullptr;
  obs::Counter* frames_delivered_ = nullptr;
  obs::Counter* frames_dropped_ = nullptr;
  obs::Counter* frames_duplicated_ = nullptr;
  obs::Counter* frames_reordered_ = nullptr;
  obs::Counter* link_down_drops_ = nullptr;
  obs::Counter* link_down_events_ = nullptr;
  obs::Counter* link_up_events_ = nullptr;
  obs::Histogram* transit_us_ = nullptr;
};

}  // namespace xsec::oran
