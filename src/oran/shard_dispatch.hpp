// Shard executor: the RIC's worker-thread pool with a barrier protocol.
//
// The near-RT RIC stays a deterministic single-threaded event loop on the
// coordinator; CPU-heavy per-source work (DL window scoring) is fanned out
// to N shard workers between two synchronization points:
//
//   dispatch phase   coordinator pushes tagged messages onto each shard's
//                    SPSC ring (source -> shard mapping is a stable hash,
//                    see common/hash.hpp);
//   barrier()        coordinator waits until every shard has processed
//                    everything it was handed; workers go back to idle.
//
// Workers only run between a dispatch and the following barrier, and two
// workers never share state (each source belongs to exactly one shard), so
// the observable execution is a pure function of the dispatch sequence —
// thread scheduling can reorder nothing that matters. Outside the
// dispatch/barrier window the coordinator may freely mutate any state.
//
// `threaded = false` degrades to executing handlers inline on the caller —
// the reference behavior the threaded mode must replicate bit-for-bit, and
// the fallback when a detector cannot be cloned per shard.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "oran/spsc_ring.hpp"

namespace xsec::oran {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

/// Runs a fixed set of shards, each with one worker thread fed by one SPSC
/// ring of SlotT (a TaggedSlot<Ms...>). Handler must provide
/// `void on_message(std::size_t shard, const M&)` for every M in the set.
template <typename Handler, typename SlotT>
class ShardExecutor {
 public:
  struct Config {
    std::size_t shards = 1;
    /// false: execute every dispatch inline on the caller (deterministic
    /// reference mode, no threads started).
    bool threaded = true;
    std::size_t ring_capacity = 1024;
    /// Spins a worker burns through before sleeping on its condvar.
    std::size_t spin_limit = 2000;
  };

  ShardExecutor(Config config, Handler* handler)
      : config_(config), handler_(handler) {
    if (config_.shards == 0) config_.shards = 1;
    shards_.reserve(config_.shards);
    for (std::size_t i = 0; i < config_.shards; ++i)
      shards_.push_back(std::make_unique<Shard>(config_.ring_capacity));
    if (config_.threaded) {
      for (std::size_t i = 0; i < config_.shards; ++i)
        shards_[i]->thread = std::thread([this, i] { worker_loop(i); });
    }
  }

  ~ShardExecutor() { stop(); }

  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  std::size_t shard_count() const { return shards_.size(); }
  bool threaded() const { return config_.threaded; }

  /// Coordinator only. Hands `msg` to `shard`; inline mode runs it now.
  template <typename M>
  void dispatch(std::size_t shard, const M& msg) {
    Shard& s = *shards_[shard];
    if (!config_.threaded) {
      handler_->on_message(shard, msg);
      return;
    }
    SlotT slot;
    slot.store(msg);
    // A full ring only means the worker is still draining; it is always
    // making progress, so spin rather than grow.
    while (!s.ring.try_push(slot)) cpu_relax();
    ++s.enqueued;
    // Eventcount handshake, producer half: the push must be globally
    // ordered before the sleeping check. Release/acquire is not enough —
    // both sides could read stale values (store-buffer litmus) and the
    // worker would sleep on a non-empty ring with nobody left to notify.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (s.sleeping.load(std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> lock(s.mu);
      s.cv.notify_one();
    }
  }

  /// Coordinator only. Returns once every shard has processed everything
  /// dispatched so far; afterwards all worker writes are visible and the
  /// coordinator owns all state again until the next dispatch.
  void barrier() {
    if (!config_.threaded) return;
    for (auto& shard : shards_) {
      std::size_t spins = 0;
      while (shard->processed.load(std::memory_order_acquire) !=
             shard->enqueued) {
        if (++spins < 1000)
          cpu_relax();
        else
          std::this_thread::yield();
      }
    }
  }

  /// Stops and joins the workers (pending ring entries are drained first).
  void stop() {
    if (!config_.threaded || stopped_) return;
    stop_.store(true, std::memory_order_release);
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->cv.notify_all();
    }
    for (auto& shard : shards_)
      if (shard->thread.joinable()) shard->thread.join();
    stopped_ = true;
  }

 private:
  struct Shard {
    explicit Shard(std::size_t ring_capacity) : ring(ring_capacity) {}
    SpscRing<SlotT> ring;
    /// Worker-published completion count (coordinator reads at barrier).
    alignas(SpscRing<SlotT>::kCacheLine) std::atomic<std::uint64_t> processed{
        0};
    /// Coordinator-owned dispatch count; never read by the worker.
    std::uint64_t enqueued = 0;
    std::atomic<bool> sleeping{false};
    std::mutex mu;
    std::condition_variable cv;
    std::thread thread;
  };

  void worker_loop(std::size_t index) {
    Shard& s = *shards_[index];
    SlotT slot;
    std::size_t idle_spins = 0;
    for (;;) {
      if (s.ring.try_pop(slot)) {
        idle_spins = 0;
        slot.dispatch(
            [&](const auto& msg) { handler_->on_message(index, msg); });
        s.processed.fetch_add(1, std::memory_order_release);
        continue;
      }
      if (stop_.load(std::memory_order_acquire)) break;
      if (++idle_spins < config_.spin_limit) {
        cpu_relax();
        continue;
      }
      std::unique_lock<std::mutex> lock(s.mu);
      s.sleeping.store(true, std::memory_order_relaxed);
      // Eventcount handshake, consumer half: sleeping must be globally
      // visible before the emptiness re-check. With both fences, either
      // the predicate sees the producer's push, or the producer sees
      // sleeping==true and takes the lock to notify — which serializes
      // behind this wait. No lost wakeups either way.
      std::atomic_thread_fence(std::memory_order_seq_cst);
      s.cv.wait(lock, [&] {
        return !s.ring.empty() || stop_.load(std::memory_order_acquire);
      });
      s.sleeping.store(false, std::memory_order_release);
      idle_spins = 0;
    }
  }

  Config config_;
  Handler* handler_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> stop_{false};
  bool stopped_ = false;
};

}  // namespace xsec::oran
