#include "oran/sdl.hpp"

#include <cstdio>

namespace xsec::oran {

void Sdl::set_metrics(obs::MetricsRegistry* registry) {
  if (!registry) {
    sets_ = gets_ = removes_ = nullptr;
    return;
  }
  sets_ = &registry->counter("sdl.sets");
  gets_ = &registry->counter("sdl.gets");
  removes_ = &registry->counter("sdl.removes");
}

void Sdl::set(const std::string& ns, const std::string& key, Bytes value) {
  if (sets_) sets_->inc();
  namespaces_[ns][key] = std::move(value);
  notify(ns, key);
}

void Sdl::set_str(const std::string& ns, const std::string& key,
                  const std::string& value) {
  set(ns, key, Bytes(value.begin(), value.end()));
}

std::optional<Bytes> Sdl::get(const std::string& ns,
                              const std::string& key) const {
  if (gets_) gets_->inc();
  auto ns_it = namespaces_.find(ns);
  if (ns_it == namespaces_.end()) return std::nullopt;
  auto it = ns_it->second.find(key);
  if (it == ns_it->second.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> Sdl::get_str(const std::string& ns,
                                        const std::string& key) const {
  auto raw = get(ns, key);
  if (!raw) return std::nullopt;
  return std::string(raw->begin(), raw->end());
}

bool Sdl::remove(const std::string& ns, const std::string& key) {
  if (removes_) removes_->inc();
  auto ns_it = namespaces_.find(ns);
  if (ns_it == namespaces_.end()) return false;
  bool erased = ns_it->second.erase(key) > 0;
  if (erased) notify(ns, key);
  return erased;
}

std::vector<std::string> Sdl::keys(const std::string& ns) const {
  std::vector<std::string> out;
  auto ns_it = namespaces_.find(ns);
  if (ns_it == namespaces_.end()) return out;
  out.reserve(ns_it->second.size());
  for (const auto& [key, value] : ns_it->second) out.push_back(key);
  return out;
}

std::vector<std::string> Sdl::keys_in_range(const std::string& ns,
                                            const std::string& first,
                                            const std::string& last) const {
  std::vector<std::string> out;
  auto ns_it = namespaces_.find(ns);
  if (ns_it == namespaces_.end()) return out;
  for (auto it = ns_it->second.lower_bound(first);
       it != ns_it->second.end() && it->first < last; ++it)
    out.push_back(it->first);
  return out;
}

std::size_t Sdl::size(const std::string& ns) const {
  auto ns_it = namespaces_.find(ns);
  return ns_it == namespaces_.end() ? 0 : ns_it->second.size();
}

void Sdl::clear(const std::string& ns) { namespaces_.erase(ns); }

void Sdl::watch(const std::string& ns, WatchHandler handler) {
  watchers_[ns].push_back(std::make_shared<WatchHandler>(std::move(handler)));
}

void Sdl::notify(const std::string& ns, const std::string& key) {
  auto it = watchers_.find(ns);
  if (it == watchers_.end()) return;
  // Snapshot the count and copy each handle before invoking: a handler may
  // register new watchers (growing the vector, possibly reallocating) — the
  // copies keep the executing handler alive, and new registrations only
  // fire for subsequent notifications.
  std::size_t count = it->second.size();
  for (std::size_t i = 0; i < count; ++i) {
    std::shared_ptr<WatchHandler> handler = it->second[i];
    (*handler)(ns, key);
  }
}

std::string Sdl::seq_key(std::uint64_t seq) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%020llu",
                static_cast<unsigned long long>(seq));
  return buf;
}

}  // namespace xsec::oran
