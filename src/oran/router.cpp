#include "oran/router.hpp"

namespace xsec::oran {

std::uint64_t MessageRouter::subscribe(std::uint32_t mtype, Handler handler) {
  std::uint64_t id = next_id_++;
  routes_[mtype].push_back(Subscription{id, std::move(handler)});
  return id;
}

void MessageRouter::unsubscribe(std::uint64_t subscription_id) {
  for (auto& [mtype, subs] : routes_) {
    for (auto it = subs.begin(); it != subs.end(); ++it) {
      if (it->id == subscription_id) {
        subs.erase(it);
        return;
      }
    }
  }
}

std::size_t MessageRouter::publish(const RoutedMessage& message) {
  auto it = routes_.find(message.mtype);
  if (it == routes_.end() || it->second.empty()) {
    ++dropped_;
    return 0;
  }
  // Copy the subscriber list so handlers may (un)subscribe re-entrantly.
  auto subscribers = it->second;
  for (const auto& sub : subscribers) sub.handler(message);
  delivered_ += subscribers.size();
  return subscribers.size();
}

}  // namespace xsec::oran
