#include "oran/transport.hpp"

#include <utility>

#include "common/log.hpp"

namespace xsec::oran {

FaultyE2Transport::FaultyE2Transport(NearRtRic* ric, E2NodeLink* node,
                                     FaultPlan plan, TransportHooks hooks)
    : ric_(ric),
      node_(node),
      plan_(std::move(plan)),
      hooks_(std::move(hooks)),
      rng_(plan_.seed) {
  obs::Observability* obs = hooks_.obs;
  if (!obs) {
    own_obs_ = std::make_unique<obs::Observability>();
    obs = own_obs_.get();
  }
  const std::string& scope = hooks_.metric_scope;
  obs::MetricsRegistry& r = obs->metrics;
  frames_sent_ = &r.counter(scope + ".frames_sent");
  frames_delivered_ = &r.counter(scope + ".frames_delivered");
  frames_dropped_ = &r.counter(scope + ".frames_dropped");
  frames_duplicated_ = &r.counter(scope + ".frames_duplicated");
  frames_reordered_ = &r.counter(scope + ".frames_reordered");
  link_down_drops_ = &r.counter(scope + ".link_down_drops");
  link_down_events_ = &r.counter(scope + ".link_down_events");
  link_up_events_ = &r.counter(scope + ".link_up_events");
  transit_us_ = &r.histogram(scope + ".transit_us");

  transport::LinkConfig link_cfg;
  link_cfg.backend = transport::resolve_backend(hooks_.backend);
  link_cfg.capacity = hooks_.link_capacity;
  link_cfg.pump = hooks_.pump;
  link_ = std::make_unique<transport::FramedLink>(link_cfg, obs);
  link_->set_ric_sink(
      [this](std::uint64_t node_id, std::span<const std::uint8_t> pdu) {
        ric_->from_node_frame(node_id, pdu);
      });
  link_->set_node_sink(
      [this](std::uint64_t, std::span<const std::uint8_t> pdu) {
        // on_e2ap takes owned Bytes; materialize into the scratch ring
        // (reused capacity — no steady-state allocation).
        Bytes& wire = rx_scratch_[rx_scratch_idx_++ % rx_scratch_.size()];
        wire.assign(pdu.begin(), pdu.end());
        node_->on_e2ap(wire);
      });
}

TransportCounters FaultyE2Transport::counters() const {
  TransportCounters c;
  c.frames_sent = frames_sent_->value();
  c.frames_delivered = frames_delivered_->value();
  c.frames_dropped = frames_dropped_->value();
  c.frames_duplicated = frames_duplicated_->value();
  c.frames_reordered = frames_reordered_->value();
  c.link_down_drops = link_down_drops_->value();
  c.link_down_events = link_down_events_->value();
  c.link_up_events = link_up_events_->value();
  return c;
}

void FaultyE2Transport::arm_epochs() {
  SimTime now = hooks_.now();
  for (const auto& epoch : plan_.link_epochs) {
    SimDuration until_down = epoch.down_at - now;
    if (until_down.us < 0) until_down.us = 0;
    hooks_.schedule(until_down, [this] { go_down(); });
    hooks_.schedule(until_down + epoch.duration, [this] { go_up(); });
  }
}

Result<std::uint64_t> FaultyE2Transport::connect() {
  if (!link_up_)
    return Error::make("link-down", "E2 transport link is down");
  auto connected = ric_->connect_node(this);
  if (connected) node_id_ = connected.value();
  return connected;
}

void FaultyE2Transport::to_ric(std::uint64_t node_id, Bytes wire) {
  send(std::move(wire), /*toward_ric=*/true, node_id);
}

void FaultyE2Transport::on_e2ap(const Bytes& wire) {
  send(wire, /*toward_ric=*/false, node_id_);
}

void FaultyE2Transport::send(Bytes wire, bool toward_ric,
                             std::uint64_t node_id) {
  frames_sent_->inc();
  if (!link_up_) {
    link_down_drops_->inc();
    return;
  }
  // Random faults target the telemetry path (indications and the NACKs
  // chasing them). E2AP control procedures run over SCTP with their own
  // reliable delivery, so setup/subscription/control frames only see the
  // base transit delay — and the hard link-down epochs above. Mitigation
  // chaos plans opt Control/ControlAck into the faultable set to exercise
  // the RIC's ack-timeout retransmission and the agent's dedup.
  auto type = e2ap_type(wire);
  bool faultable = type && (type.value() == E2apType::kIndication ||
                            type.value() == E2apType::kIndicationNack ||
                            (plan_.fault_control &&
                             (type.value() == E2apType::kControlRequest ||
                              type.value() == E2apType::kControlAck)));
  if (faultable && plan_.drop_probability > 0.0 &&
      rng_.chance(plan_.drop_probability)) {
    frames_dropped_->inc();
    return;
  }
  int copies = 1;
  if (faultable && plan_.duplicate_probability > 0.0 &&
      rng_.chance(plan_.duplicate_probability)) {
    frames_duplicated_->inc();
    copies = 2;
  }
  SimTime sent_at = hooks_.now ? hooks_.now() : SimTime{0};
  std::int64_t base_ms =
      toward_ric ? plan_.delay_node_to_ric_ms : plan_.delay_ric_to_node_ms;
  for (int i = 0; i < copies; ++i) {
    std::int64_t delay_ms = base_ms;
    if (faultable && plan_.reorder_probability > 0.0 &&
        rng_.chance(plan_.reorder_probability)) {
      frames_reordered_->inc();
      delay_ms += static_cast<std::int64_t>(
          rng_.uniform_u64(1, plan_.reorder_extra_ms_max));
    }
    if (delay_ms == 0) {
      // Zero transit delay: deliver synchronously. This is the seed
      // pipeline's RIC -> node semantics and several tests depend on it
      // (e.g. subscription state visible immediately after connect).
      deliver(wire, toward_ric, node_id, sent_at);
      continue;
    }
    // Reserve the frame's channel footprint for the flight window, like a
    // kernel SNDBUF reserves at send() time: ready_for() counts these
    // bytes so the agent's probe cannot overshoot the channel with frames
    // that would be refused — after their sequence numbers were already
    // consumed — when they land.
    std::size_t flight_bytes =
        toward_ric ? transport::framed_size(8 + wire.size()) : 0;
    in_flight_to_ric_ += flight_bytes;
    hooks_.schedule(
        SimDuration::from_ms(static_cast<double>(delay_ms)),
        [this, wire, toward_ric, node_id, sent_at, flight_bytes] {
          in_flight_to_ric_ -= flight_bytes;
          // The link may have gone down while the frame was in flight.
          if (!link_up_) {
            link_down_drops_->inc();
            return;
          }
          deliver(wire, toward_ric, node_id, sent_at);
        });
  }
}

void FaultyE2Transport::deliver(const Bytes& wire, bool toward_ric,
                                std::uint64_t node_id, SimTime sent_at) {
  // The PDU's scheduled moment has arrived: frame it into the channel and
  // pump synchronously, so the far side processes it NOW — exactly the
  // pre-transport semantics — regardless of which backend carries it.
  bool queued = toward_ric ? link_->enqueue_to_ric(node_id, wire)
                           : link_->enqueue_to_node(node_id, wire);
  if (!queued) {
    // Channel full (paused/slow reader): the frame is lost here, counted
    // as transport.backpressure_events by the link. Telemetry loss is
    // recovered by the RIC's NACK machinery like any other drop.
    return;
  }
  frames_delivered_->inc();
  if (toward_ric && hooks_.now) {
    SimDuration transit = hooks_.now() - sent_at;
    if (transit.us >= 0)
      transit_us_->observe(static_cast<std::uint64_t>(transit.us));
  }
  if (toward_ric)
    link_->pump_to_ric();
  else
    link_->pump_to_node();
}

void FaultyE2Transport::go_down() {
  if (!link_up_) return;
  link_up_ = false;
  link_down_events_->inc();
  XSEC_LOG_WARN("transport", "E2 link down (node ", node_id_, ")");
  if (node_id_ != 0) ric_->disconnect_node(node_id_);
  node_->on_link_state(false);
}

void FaultyE2Transport::go_up() {
  if (link_up_) return;
  link_up_ = true;
  link_up_events_->inc();
  XSEC_LOG_INFO("transport", "E2 link up (node ", node_id_, ")");
  node_->on_link_state(true);
}

}  // namespace xsec::oran
