#include "oran/transport.hpp"

#include <utility>

#include "common/log.hpp"

namespace xsec::oran {

FaultyE2Transport::FaultyE2Transport(NearRtRic* ric, E2NodeLink* node,
                                     FaultPlan plan, TransportHooks hooks)
    : ric_(ric),
      node_(node),
      plan_(std::move(plan)),
      hooks_(std::move(hooks)),
      rng_(plan_.seed) {}

void FaultyE2Transport::arm_epochs() {
  SimTime now = hooks_.now();
  for (const auto& epoch : plan_.link_epochs) {
    SimDuration until_down = epoch.down_at - now;
    if (until_down.us < 0) until_down.us = 0;
    hooks_.schedule(until_down, [this] { go_down(); });
    hooks_.schedule(until_down + epoch.duration, [this] { go_up(); });
  }
}

Result<std::uint64_t> FaultyE2Transport::connect() {
  if (!link_up_)
    return Error::make("link-down", "E2 transport link is down");
  auto connected = ric_->connect_node(this);
  if (connected) node_id_ = connected.value();
  return connected;
}

void FaultyE2Transport::to_ric(std::uint64_t node_id, Bytes wire) {
  send(std::move(wire), /*toward_ric=*/true, node_id);
}

void FaultyE2Transport::on_e2ap(const Bytes& wire) {
  send(wire, /*toward_ric=*/false, node_id_);
}

void FaultyE2Transport::send(Bytes wire, bool toward_ric,
                             std::uint64_t node_id) {
  ++counters_.frames_sent;
  if (!link_up_) {
    ++counters_.link_down_drops;
    return;
  }
  // Random faults target the telemetry path (indications and the NACKs
  // chasing them). E2AP control procedures run over SCTP with their own
  // reliable delivery, so setup/subscription/control frames only see the
  // base transit delay — and the hard link-down epochs above.
  auto type = e2ap_type(wire);
  bool faultable = type && (type.value() == E2apType::kIndication ||
                            type.value() == E2apType::kIndicationNack);
  if (faultable && plan_.drop_probability > 0.0 &&
      rng_.chance(plan_.drop_probability)) {
    ++counters_.frames_dropped;
    return;
  }
  int copies = 1;
  if (faultable && plan_.duplicate_probability > 0.0 &&
      rng_.chance(plan_.duplicate_probability)) {
    ++counters_.frames_duplicated;
    copies = 2;
  }
  std::int64_t base_ms =
      toward_ric ? plan_.delay_node_to_ric_ms : plan_.delay_ric_to_node_ms;
  for (int i = 0; i < copies; ++i) {
    std::int64_t delay_ms = base_ms;
    if (faultable && plan_.reorder_probability > 0.0 &&
        rng_.chance(plan_.reorder_probability)) {
      ++counters_.frames_reordered;
      delay_ms += static_cast<std::int64_t>(
          rng_.uniform_u64(1, plan_.reorder_extra_ms_max));
    }
    if (delay_ms == 0) {
      // Zero transit delay: deliver synchronously. This is the seed
      // pipeline's RIC -> node semantics and several tests depend on it
      // (e.g. subscription state visible immediately after connect).
      deliver(wire, toward_ric, node_id);
      continue;
    }
    hooks_.schedule(
        SimDuration::from_ms(static_cast<double>(delay_ms)),
        [this, wire, toward_ric, node_id] {
          // The link may have gone down while the frame was in flight.
          if (!link_up_) {
            ++counters_.link_down_drops;
            return;
          }
          deliver(wire, toward_ric, node_id);
        });
  }
}

void FaultyE2Transport::deliver(const Bytes& wire, bool toward_ric,
                                std::uint64_t node_id) {
  ++counters_.frames_delivered;
  if (toward_ric)
    ric_->from_node(node_id, wire);
  else
    node_->on_e2ap(wire);
}

void FaultyE2Transport::go_down() {
  if (!link_up_) return;
  link_up_ = false;
  ++counters_.link_down_events;
  XSEC_LOG_WARN("transport", "E2 link down (node ", node_id_, ")");
  if (node_id_ != 0) ric_->disconnect_node(node_id_);
  node_->on_link_state(false);
}

void FaultyE2Transport::go_up() {
  if (link_up_) return;
  link_up_ = true;
  ++counters_.link_up_events;
  XSEC_LOG_INFO("transport", "E2 link up (node ", node_id_, ")");
  node_->on_link_state(true);
}

}  // namespace xsec::oran
