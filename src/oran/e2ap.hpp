// E2 Application Protocol (O-RAN.WG3.E2AP subset).
//
// The control-plane boundary between the near-RT RIC and RAN nodes. All
// four RIC primitives the paper names are modelled: *report* and *insert*
// (RIC Indication), *control* (RIC Control), and *policy* (an action type
// in subscriptions). Messages are byte-encoded end-to-end: an E2 node and
// the RIC only ever exchange `Bytes`, as over real SCTP.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace xsec::oran {

/// A RAN function advertised by an E2 node at setup (e.g. the MobiFlow
/// service model). The definition blob is service-model specific.
struct RanFunction {
  std::uint16_t function_id = 0;
  std::string oid;          // e.g. "1.3.6.1.4.1.53148.1.1.2.100"
  std::string description;  // e.g. "ORAN-E2SM-MOBIFLOW"
  Bytes definition;
};

enum class RicActionType : std::uint8_t { kReport = 0, kInsert = 1, kPolicy = 2 };
std::string to_string(RicActionType t);

struct RicAction {
  std::uint16_t action_id = 0;
  RicActionType type = RicActionType::kReport;
  Bytes definition;  // service-model specific
};

/// RIC Request ID: (requestor, instance) pair identifying a subscription.
struct RicRequestId {
  std::uint32_t requestor_id = 0;
  std::uint32_t instance_id = 0;
  auto operator<=>(const RicRequestId&) const = default;
};

struct E2SetupRequest {
  std::uint64_t node_id = 0;
  std::vector<RanFunction> functions;
};

struct E2SetupResponse {
  std::vector<std::uint16_t> accepted_function_ids;
};

struct RicSubscriptionRequest {
  RicRequestId request_id;
  std::uint16_t ran_function_id = 0;
  Bytes event_trigger;  // service-model specific
  std::vector<RicAction> actions;
};

struct RicSubscriptionResponse {
  RicRequestId request_id;
  std::uint16_t ran_function_id = 0;
  std::vector<std::uint16_t> admitted_action_ids;
  std::vector<std::uint16_t> rejected_action_ids;
};

struct RicSubscriptionDeleteRequest {
  RicRequestId request_id;
  std::uint16_t ran_function_id = 0;
};

enum class RicIndicationType : std::uint8_t { kReport = 0, kInsert = 1 };

struct RicIndication {
  RicRequestId request_id;
  std::uint16_t ran_function_id = 0;
  std::uint16_t action_id = 0;
  std::uint32_t sequence_number = 0;
  /// Sim time (us) the batch was FIRST transmitted. Retransmissions carry
  /// the original stamp, so the RIC's delivery-time minus sent_at_us is
  /// the true E2 transit latency including retransmission delay. 0 on
  /// frames from senders that do not stamp.
  std::int64_t sent_at_us = 0;
  RicIndicationType type = RicIndicationType::kReport;
  Bytes header;   // service-model indication header
  Bytes message;  // service-model indication message
};

/// Zero-copy view of an encoded RIC Indication: the fixed-size metadata is
/// decoded, but the service-model header/message blobs stay as spans over
/// the wire buffer (the transport's receive arena / ring pages). Views are
/// only valid while that buffer is alive and unmodified — buffer with
/// materialize() to keep one past the delivery callback.
struct RicIndicationView {
  RicRequestId request_id;
  std::uint16_t ran_function_id = 0;
  std::uint16_t action_id = 0;
  std::uint32_t sequence_number = 0;
  std::int64_t sent_at_us = 0;
  RicIndicationType type = RicIndicationType::kReport;
  std::span<const std::uint8_t> header;
  std::span<const std::uint8_t> message;

  /// Deep copy into an owned RicIndication (reorder buffering, tests).
  RicIndication materialize() const;
};

/// Views an owned indication (no copy; valid while `m` is alive).
RicIndicationView as_view(const RicIndication& m);

/// One missing run of indication sequence numbers (inclusive range) on one
/// subscription's stream.
struct NackRange {
  RicRequestId request_id;
  std::uint32_t first_sequence = 0;
  std::uint32_t last_sequence = 0;
  auto operator<=>(const NackRange&) const = default;
};

/// Node-bound retransmission request. Not part of O-RAN E2AP — this
/// reproduction's reliability extension: the RIC detects sequence gaps per
/// subscription and asks the agent to replay from its retransmission ring.
/// Carries one range per subscription stream so the RIC can coalesce every
/// stream's NACK for a node into a single reverse-path PDU per round.
struct RicIndicationNack {
  std::uint16_t ran_function_id = 0;
  std::vector<NackRange> ranges;
};

struct RicControlRequest {
  RicRequestId request_id;
  std::uint16_t ran_function_id = 0;
  Bytes header;
  Bytes message;
};

struct RicControlAck {
  RicRequestId request_id;
  std::uint16_t ran_function_id = 0;
  bool success = true;
};

/// E2AP PDU: discriminated union over the message structs above.
enum class E2apType : std::uint8_t {
  kSetupRequest = 0,
  kSetupResponse = 1,
  kSubscriptionRequest = 2,
  kSubscriptionResponse = 3,
  kSubscriptionDeleteRequest = 4,
  kIndication = 5,
  kControlRequest = 6,
  kControlAck = 7,
  kIndicationNack = 8,
};

Bytes encode_e2ap(const E2SetupRequest& m);
Bytes encode_e2ap(const E2SetupResponse& m);
Bytes encode_e2ap(const RicSubscriptionRequest& m);
Bytes encode_e2ap(const RicSubscriptionResponse& m);
Bytes encode_e2ap(const RicSubscriptionDeleteRequest& m);
Bytes encode_e2ap(const RicIndication& m);
Bytes encode_e2ap(const RicIndicationNack& m);
Bytes encode_e2ap(const RicControlRequest& m);
Bytes encode_e2ap(const RicControlAck& m);

/// Peeks the PDU type of an encoded E2AP message.
Result<E2apType> e2ap_type(std::span<const std::uint8_t> wire);
Result<E2apType> e2ap_type(const Bytes& wire);

Result<E2SetupRequest> decode_setup_request(const Bytes& wire);
Result<E2SetupResponse> decode_setup_response(const Bytes& wire);
Result<RicSubscriptionRequest> decode_subscription_request(const Bytes& wire);
Result<RicSubscriptionResponse> decode_subscription_response(const Bytes& wire);
Result<RicSubscriptionDeleteRequest> decode_subscription_delete(
    const Bytes& wire);
Result<RicIndication> decode_indication(const Bytes& wire);
/// Zero-copy decode: no allocation; blob fields view into `wire`.
Result<RicIndicationView> decode_indication_view(
    std::span<const std::uint8_t> wire);
Result<RicIndicationNack> decode_indication_nack(const Bytes& wire);
Result<RicControlRequest> decode_control_request(const Bytes& wire);
Result<RicControlAck> decode_control_ack(const Bytes& wire);

}  // namespace xsec::oran
