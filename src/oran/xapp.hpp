// xApp framework.
//
// xApps are modular control-plane applications hosted by the near-RT RIC
// (paper §2.1). They reach the platform through three services: E2
// subscriptions (via the RIC), the SDL, and the message router.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "obs/trace.hpp"
#include "oran/a1.hpp"
#include "oran/e2ap.hpp"
#include "oran/router.hpp"
#include "oran/sdl.hpp"

namespace xsec::oran {

class NearRtRic;

class XApp {
 public:
  explicit XApp(std::string name) : name_(std::move(name)) {}
  virtual ~XApp() = default;

  XApp(const XApp&) = delete;
  XApp& operator=(const XApp&) = delete;

  const std::string& name() const { return name_; }

  /// Called by the RIC after registration; platform services are available
  /// from here on. Subscriptions are typically created in this hook.
  virtual void on_start() {}

  /// An E2 indication matching one of this xApp's subscriptions.
  virtual void on_indication(std::uint64_t node_id,
                             const RicIndication& indication) {
    (void)node_id;
    (void)indication;
  }

  /// Zero-copy delivery: `view`'s header/message spans alias
  /// transport-owned memory and are valid only during the call. The
  /// default materializes an owned copy and calls on_indication, so xApps
  /// that never opt in keep their existing semantics; hot-path consumers
  /// override this instead and read the spans in place.
  virtual void on_indication_view(std::uint64_t node_id,
                                  const RicIndicationView& view) {
    on_indication(node_id, view.materialize());
  }

  /// Acknowledgement for a control request this xApp issued.
  virtual void on_control_ack(std::uint64_t node_id,
                              const RicControlAck& ack) {
    (void)node_id;
    (void)ack;
  }

  /// An E2 node completed (re-)setup after this xApp registered. Any
  /// subscription the xApp held on that node was torn down with the old
  /// link — re-establish here. Not called for nodes already connected at
  /// registration time (use on_start for those).
  virtual void on_node_connected(std::uint64_t node_id) { (void)node_id; }

  /// The RIC's per-subscription sequence tracker gave up on a run of
  /// indications [first_sequence, last_sequence]: they were lost in
  /// transit and retransmission failed. Telemetry windows spanning this
  /// gap are unreliable.
  virtual void on_telemetry_gap(std::uint64_t node_id,
                                const RicRequestId& request_id,
                                std::uint32_t first_sequence,
                                std::uint32_t last_sequence) {
    (void)node_id;
    (void)request_id;
    (void)first_sequence;
    (void)last_sequence;
  }

  /// An A1 policy from the non-RT RIC. Default: unsupported.
  virtual PolicyStatus on_policy(const A1Policy& policy) {
    (void)policy;
    return PolicyStatus::kUnsupported;
  }

  // Wired by NearRtRic::register_xapp.
  void attach(NearRtRic* ric, Sdl* sdl, MessageRouter* router,
              std::uint32_t requestor_id,
              obs::Observability* observability = nullptr) {
    ric_ = ric;
    sdl_ = sdl;
    router_ = router;
    requestor_id_ = requestor_id;
    obs_ = observability;
  }
  std::uint32_t requestor_id() const { return requestor_id_; }

 protected:
  NearRtRic& ric() { return *ric_; }
  Sdl& sdl() { return *sdl_; }
  MessageRouter& router() { return *router_; }
  /// The platform's observability bundle (the RIC's, shared by every
  /// xApp), or a lazily created private one when the xApp is exercised
  /// standalone — instrumentation code never needs a null check. Const so
  /// stat accessors can read registry counters.
  obs::Observability& obs() const {
    if (obs_) return *obs_;
    if (!own_obs_) own_obs_ = std::make_unique<obs::Observability>();
    return *own_obs_;
  }

 private:
  std::string name_;
  NearRtRic* ric_ = nullptr;
  Sdl* sdl_ = nullptr;
  MessageRouter* router_ = nullptr;
  obs::Observability* obs_ = nullptr;
  mutable std::unique_ptr<obs::Observability> own_obs_;
  std::uint32_t requestor_id_ = 0;
};

}  // namespace xsec::oran
