#include "oran/e2sm.hpp"

namespace xsec::oran::e2sm {

Bytes encode_event_trigger(const EventTriggerDefinition& m) {
  ByteWriter w;
  w.u32(m.report_period_ms);
  return w.take();
}

Result<EventTriggerDefinition> decode_event_trigger(const Bytes& wire) {
  ByteReader r(wire);
  auto period = r.u32();
  if (!period) return period.error();
  return EventTriggerDefinition{period.value()};
}

Bytes encode_action_definition(const ActionDefinition& m) {
  ByteWriter w;
  w.u8(m.categories);
  w.u16(m.max_rows);
  return w.take();
}

Result<ActionDefinition> decode_action_definition(const Bytes& wire) {
  ByteReader r(wire);
  auto cats = r.u8();
  if (!cats) return cats.error();
  auto max_rows = r.u16();
  if (!max_rows) return max_rows.error();
  return ActionDefinition{cats.value(), max_rows.value()};
}

Bytes encode_indication_header(const IndicationHeader& m) {
  ByteWriter w;
  w.i64(m.collect_start_us);
  w.u32(m.gnb_id);
  w.u16(m.cell);
  return w.take();
}

Result<IndicationHeader> decode_indication_header(const Bytes& wire) {
  ByteReader r(wire);
  auto t = r.i64();
  if (!t) return t.error();
  auto gnb = r.u32();
  if (!gnb) return gnb.error();
  auto cell = r.u16();
  if (!cell) return cell.error();
  return IndicationHeader{t.value(), gnb.value(), cell.value()};
}

Bytes encode_indication_message(const IndicationMessage& m) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(m.rows.size()));
  for (const auto& row : m.rows) {
    w.varint(row.size());
    w.raw(row);
  }
  return w.take();
}

Result<IndicationMessage> decode_indication_message(const Bytes& wire) {
  ByteReader r(wire);
  auto count = r.u32();
  if (!count) return count.error();
  IndicationMessage m;
  m.rows.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto len = r.varint();
    if (!len) return len.error();
    auto row = r.raw(len.value());
    if (!row) return row.error();
    m.rows.push_back(std::move(row).value());
  }
  return m;
}

RowCursor::RowCursor(std::span<const std::uint8_t> wire)
    : r_(wire.data(), wire.size()) {
  auto count = r_.u32();
  if (!count) {
    ok_ = false;
    return;
  }
  count_ = count.value();
}

std::optional<std::span<const std::uint8_t>> RowCursor::next() {
  if (!ok_ || index_ >= count_) return std::nullopt;
  auto len = r_.varint();
  if (!len) {
    ok_ = false;
    return std::nullopt;
  }
  auto row = r_.view(len.value());
  if (!row) {
    ok_ = false;
    return std::nullopt;
  }
  ++index_;
  return row.value();
}

RanFunction make_mobiflow_function() {
  RanFunction f;
  f.function_id = kMobiFlowFunctionId;
  f.oid = kMobiFlowOid;
  f.description = kMobiFlowName;
  ByteWriter w;
  w.str("MobiFlow security telemetry");
  w.u8(kAll);
  f.definition = w.take();
  return f;
}

}  // namespace xsec::oran::e2sm
