// Shared Data Layer (SDL).
//
// The OSC near-RT RIC's centralized store that xApps and platform services
// share (backed by Redis in the reference implementation). Namespaced
// key-value with ordered iteration and change notification — MobiWatch
// stores telemetry here and the LLM analyzer reads flagged windows back.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "obs/metrics.hpp"

namespace xsec::oran {

class Sdl {
 public:
  using WatchHandler =
      std::function<void(const std::string& ns, const std::string& key)>;

  /// Binds op counters ("sdl.sets" / "sdl.gets" / "sdl.removes") into a
  /// registry. nullptr detaches (ops stop counting). Wired by
  /// NearRtRic::set_observability.
  void set_metrics(obs::MetricsRegistry* registry);

  void set(const std::string& ns, const std::string& key, Bytes value);
  void set_str(const std::string& ns, const std::string& key,
               const std::string& value);
  std::optional<Bytes> get(const std::string& ns, const std::string& key) const;
  std::optional<std::string> get_str(const std::string& ns,
                                     const std::string& key) const;
  bool remove(const std::string& ns, const std::string& key);
  /// All keys in a namespace, lexicographically ordered.
  std::vector<std::string> keys(const std::string& ns) const;
  /// Keys in [first, last) — useful for sequence-numbered telemetry.
  std::vector<std::string> keys_in_range(const std::string& ns,
                                         const std::string& first,
                                         const std::string& last) const;
  std::size_t size(const std::string& ns) const;
  void clear(const std::string& ns);

  /// Registers a change listener for a namespace (set and remove).
  void watch(const std::string& ns, WatchHandler handler);

  /// Formats a zero-padded numeric key so lexicographic order equals
  /// numeric order ("00000000000000000042").
  static std::string seq_key(std::uint64_t seq);

 private:
  void notify(const std::string& ns, const std::string& key);

  obs::Counter* sets_ = nullptr;
  obs::Counter* gets_ = nullptr;
  obs::Counter* removes_ = nullptr;
  std::map<std::string, std::map<std::string, Bytes>> namespaces_;
  // Handlers are held by shared_ptr and invoked through a copied handle:
  // a handler may itself call watch() (re-entrancy), which would otherwise
  // reallocate the vector out from under the executing std::function.
  std::map<std::string, std::vector<std::shared_ptr<WatchHandler>>> watchers_;
};

}  // namespace xsec::oran
