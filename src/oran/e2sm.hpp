// E2SM-MOBIFLOW: the security-telemetry service model.
//
// The paper extends the O-RAN reference E2SM-KPM service model so the RIC
// agent can report MobiFlow telemetry "per time interval, where the
// telemetry can be encoded as (key, value) data". This header defines that
// service model: the RAN function identity, the event trigger (periodic
// report), the action definition (which telemetry categories to collect),
// and the indication header/message formats carrying the key-value rows.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "oran/e2ap.hpp"

namespace xsec::oran::e2sm {

inline constexpr std::uint16_t kMobiFlowFunctionId = 100;
inline constexpr const char* kMobiFlowOid = "1.3.6.1.4.1.53148.1.1.2.100";
inline constexpr const char* kMobiFlowName = "ORAN-E2SM-MOBIFLOW";

/// Telemetry categories (Table 1's three groups), OR-able.
enum Category : std::uint8_t {
  kMessages = 1 << 0,
  kIdentifiers = 1 << 1,
  kState = 1 << 2,
  kAll = kMessages | kIdentifiers | kState,
};

struct EventTriggerDefinition {
  /// Report batching period. The agent buffers telemetry rows and flushes
  /// one RIC Indication per period (or earlier if the buffer fills).
  std::uint32_t report_period_ms = 10;
};

struct ActionDefinition {
  std::uint8_t categories = kAll;
  /// Max rows per indication before an early flush.
  std::uint16_t max_rows = 64;
};

struct IndicationHeader {
  std::int64_t collect_start_us = 0;
  std::uint32_t gnb_id = 0;
  std::uint16_t cell = 0;
};

/// One telemetry row: an opaque compact-encoded record (tag+varint form;
/// the MobiFlow record schema lives in src/mobiflow — the service model is
/// agnostic and only frames the blobs).
using Row = Bytes;

struct IndicationMessage {
  std::vector<Row> rows;
};

Bytes encode_event_trigger(const EventTriggerDefinition& m);
Result<EventTriggerDefinition> decode_event_trigger(const Bytes& wire);
Bytes encode_action_definition(const ActionDefinition& m);
Result<ActionDefinition> decode_action_definition(const Bytes& wire);
Bytes encode_indication_header(const IndicationHeader& m);
Result<IndicationHeader> decode_indication_header(const Bytes& wire);
Bytes encode_indication_message(const IndicationMessage& m);
Result<IndicationMessage> decode_indication_message(const Bytes& wire);

/// Zero-copy row iteration over an encoded IndicationMessage: each next()
/// returns the next row blob as a span into `wire` — no per-row allocation
/// on the RIC's ingest hot path. The spans are valid only while `wire`'s
/// storage is.
class RowCursor {
 public:
  explicit RowCursor(std::span<const std::uint8_t> wire);

  /// Rows announced by the count prefix (0 when the prefix is unreadable).
  std::uint32_t count() const { return count_; }
  /// The next row, or nullopt at the end of the message or on malformed
  /// input — check ok() to tell the two apart.
  std::optional<std::span<const std::uint8_t>> next();
  bool ok() const { return ok_; }

 private:
  ByteReader r_;
  std::uint32_t count_ = 0;
  std::uint32_t index_ = 0;
  bool ok_ = true;
};

/// The RAN function advertisement the agent sends at E2 Setup.
RanFunction make_mobiflow_function();

}  // namespace xsec::oran::e2sm
