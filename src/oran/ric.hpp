// Near Real-Time RAN Intelligent Controller (nRT-RIC).
//
// Hosts xApps, terminates E2 connections from RAN nodes (E2T), manages
// subscriptions, and routes RIC Indications to their owning xApp. Models
// the OSC reference implementation's platform: E2 termination + xApp
// manager + subscription manager + SDL + RMR router, collapsed into one
// deterministic in-process controller.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "oran/e2ap.hpp"
#include "oran/router.hpp"
#include "oran/sdl.hpp"
#include "oran/xapp.hpp"

namespace xsec::oran {

/// The RIC's handle to a connected E2 node (the RAN-side RIC agent
/// implements this). E2AP flows RIC -> node through on_e2ap(); the node
/// sends node -> RIC traffic by calling NearRtRic::from_node().
class E2NodeLink {
 public:
  virtual ~E2NodeLink() = default;
  /// Encoded E2SetupRequest advertising the node's RAN functions.
  virtual Bytes setup_request() = 0;
  /// Delivers an encoded E2AP PDU (subscription / control) to the node.
  virtual void on_e2ap(const Bytes& wire) = 0;
};

class NearRtRic {
 public:
  NearRtRic() = default;

  NearRtRic(const NearRtRic&) = delete;
  NearRtRic& operator=(const NearRtRic&) = delete;

  Sdl& sdl() { return sdl_; }
  MessageRouter& router() { return router_; }

  // --- E2 termination -----------------------------------------------------

  /// Performs the E2 Setup exchange with a node. Returns the node id, or 0
  /// if the setup request was malformed or advertised no functions.
  std::uint64_t connect_node(E2NodeLink* link);
  void disconnect_node(std::uint64_t node_id);
  /// Entry point for node -> RIC E2AP traffic (indications, subscription
  /// responses, control acks).
  void from_node(std::uint64_t node_id, const Bytes& e2ap_wire);

  /// RAN functions a connected node advertised at setup.
  const std::vector<RanFunction>* node_functions(std::uint64_t node_id) const;
  std::vector<std::uint64_t> connected_nodes() const;

  // --- xApp management ----------------------------------------------------

  /// Registers and starts an xApp. The RIC owns it.
  XApp* register_xapp(std::unique_ptr<XApp> xapp);
  XApp* find_xapp(const std::string& name);

  /// A1 termination: delivers a policy from the non-RT RIC to one xApp.
  PolicyStatus apply_policy(const std::string& xapp_name,
                            const A1Policy& policy);

  // --- xApp-facing services -----------------------------------------------

  /// Creates an E2 subscription on behalf of `xapp`. Returns the request id
  /// used to correlate indications.
  RicRequestId subscribe(XApp* xapp, std::uint64_t node_id,
                         std::uint16_t ran_function_id, Bytes event_trigger,
                         std::vector<RicAction> actions);
  void unsubscribe(XApp* xapp, std::uint64_t node_id, RicRequestId id);
  /// Sends a RIC Control request to a node.
  void send_control(XApp* xapp, std::uint64_t node_id,
                    std::uint16_t ran_function_id, Bytes header, Bytes message);

  // --- statistics -----------------------------------------------------------

  std::size_t indications_received() const { return indications_received_; }
  std::size_t indications_dropped() const { return indications_dropped_; }
  std::size_t subscriptions_active() const { return subscriptions_.size(); }

 private:
  struct Node {
    E2NodeLink* link = nullptr;
    std::vector<RanFunction> functions;
  };
  struct SubscriptionKey {
    std::uint64_t node_id;
    std::uint32_t requestor_id;
    std::uint32_t instance_id;
    auto operator<=>(const SubscriptionKey&) const = default;
  };

  Sdl sdl_;
  MessageRouter router_;
  std::map<std::uint64_t, Node> nodes_;
  std::vector<std::unique_ptr<XApp>> xapps_;
  std::map<SubscriptionKey, XApp*> subscriptions_;
  std::uint32_t next_requestor_id_ = 1;
  std::uint32_t next_instance_id_ = 1;
  std::size_t indications_received_ = 0;
  std::size_t indications_dropped_ = 0;
};

}  // namespace xsec::oran
