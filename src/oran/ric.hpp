// Near Real-Time RAN Intelligent Controller (nRT-RIC).
//
// Hosts xApps, terminates E2 connections from RAN nodes (E2T), manages
// subscriptions, and routes RIC Indications to their owning xApp. Models
// the OSC reference implementation's platform: E2 termination + xApp
// manager + subscription manager + SDL + RMR router, collapsed into one
// deterministic in-process controller.
//
// Indication streams are NOT assumed lossless: every subscription carries
// a sequence tracker (reorder buffer + duplicate suppression + NACK-driven
// retransmission) so xApps see an in-order stream with explicit gap events
// where recovery failed, instead of a silently corrupted sequence.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "obs/trace.hpp"
#include "oran/e2ap.hpp"
#include "oran/router.hpp"
#include "oran/sdl.hpp"
#include "oran/xapp.hpp"

namespace xsec::oran {

/// The RIC's handle to a connected E2 node (the RAN-side RIC agent
/// implements this). E2AP flows RIC -> node through on_e2ap(); the node
/// sends node -> RIC traffic by calling NearRtRic::from_node().
class E2NodeLink {
 public:
  virtual ~E2NodeLink() = default;
  /// Encoded E2SetupRequest advertising the node's RAN functions.
  virtual Bytes setup_request() = 0;
  /// Delivers an encoded E2AP PDU (subscription / control) to the node.
  virtual void on_e2ap(const Bytes& wire) = 0;
  /// Transport link state change (loss detection / recovery). A node that
  /// implements reconnection reacts to `up == false` by clearing its
  /// subscription state and retrying E2 Setup with backoff.
  virtual void on_link_state(bool up) { (void)up; }
};

class NearRtRic {
 public:
  NearRtRic() = default;

  NearRtRic(const NearRtRic&) = delete;
  NearRtRic& operator=(const NearRtRic&) = delete;

  Sdl& sdl() { return sdl_; }
  MessageRouter& router() { return router_; }

  /// Injects the shared observability bundle (pipeline mode). Must be
  /// called before traffic flows; counters already bound to a private
  /// registry are re-bound. Also instruments the SDL and is handed to
  /// every xApp registered afterwards.
  void set_observability(obs::Observability* obs);
  /// The bundle in use: the injected one, or a lazily created private one
  /// (standalone construction in unit tests).
  obs::Observability& observability() const;

  /// Event-queue hook enabling NACK batching: when set, per-stream NACKs
  /// raised while one reverse-path round is processed are coalesced into a
  /// single multi-range PDU per node, flushed at zero delay. Without it
  /// (standalone unit tests) every NACK is sent immediately.
  void set_scheduler(
      std::function<void(SimDuration, std::function<void()>)> schedule) {
    scheduler_ = std::move(schedule);
  }

  /// Runs `fn` after `delay` on the injected scheduler. Returns false (and
  /// drops `fn`) when no scheduler is wired (standalone unit tests). xApps
  /// use this for action TTLs and recovery probes.
  bool schedule_after(SimDuration delay, std::function<void()> fn) {
    if (!scheduler_) return false;
    scheduler_(delay, std::move(fn));
    return true;
  }

  // --- E2 termination -----------------------------------------------------

  /// Performs the E2 Setup exchange with a node. On success returns the
  /// node id. A repeated setup for an already-connected node id is treated
  /// as a node-side restart: stale subscription and stream state is torn
  /// down and registered xApps are told to re-subscribe.
  Result<std::uint64_t> connect_node(E2NodeLink* link);
  void disconnect_node(std::uint64_t node_id);
  /// Entry point for node -> RIC E2AP traffic (indications, subscription
  /// responses, control acks).
  void from_node(std::uint64_t node_id, const Bytes& e2ap_wire);
  /// Zero-copy entry point: the span views transport-owned memory (frame
  /// arena / ring pages) valid only for the duration of the call. In-order
  /// indications flow to the xApp without materializing; only out-of-order
  /// arrivals are copied into the reorder buffer. from_node() forwards
  /// here — this is the single ingest implementation.
  void from_node_frame(std::uint64_t node_id,
                       std::span<const std::uint8_t> e2ap_wire);

  /// Declares a permanent gap for every still-missing sequence and drains
  /// the reorder buffers. Call at end of capture so buffered telemetry is
  /// not silently discarded.
  void flush_streams();

  /// RAN functions a connected node advertised at setup.
  const std::vector<RanFunction>* node_functions(std::uint64_t node_id) const;
  std::vector<std::uint64_t> connected_nodes() const;

  // --- xApp management ----------------------------------------------------

  /// Registers and starts an xApp. The RIC owns it.
  XApp* register_xapp(std::unique_ptr<XApp> xapp);
  XApp* find_xapp(const std::string& name);

  /// A1 termination: delivers a policy from the non-RT RIC to one xApp.
  PolicyStatus apply_policy(const std::string& xapp_name,
                            const A1Policy& policy);

  // --- xApp-facing services -----------------------------------------------

  /// Creates an E2 subscription on behalf of `xapp`. Returns the request id
  /// used to correlate indications.
  RicRequestId subscribe(XApp* xapp, std::uint64_t node_id,
                         std::uint16_t ran_function_id, Bytes event_trigger,
                         std::vector<RicAction> actions);
  void unsubscribe(XApp* xapp, std::uint64_t node_id, RicRequestId id);
  /// Sends a RIC Control request to a node. Each request gets a unique
  /// instance id; with a scheduler wired the RIC retransmits on ack
  /// timeout (the agent deduplicates re-applications) and synthesizes a
  /// failure ack toward the xApp when the retransmission budget is
  /// exhausted or the node is gone — the issuing xApp ALWAYS sees exactly
  /// one on_control_ack per request. Returns the request id.
  RicRequestId send_control(XApp* xapp, std::uint64_t node_id,
                            std::uint16_t ran_function_id, Bytes header,
                            Bytes message);

  // --- statistics -----------------------------------------------------------
  // Every counter lives in the observability registry (names "ric.*" /
  // "e2.*"); the accessors are snapshot views of the same instruments.

  std::size_t indications_received() const {
    return counter_value(m().received);
  }
  std::size_t indications_dropped() const { return counter_value(m().dropped); }
  std::size_t subscriptions_active() const { return subscriptions_.size(); }
  /// Indications discarded because their sequence number was already
  /// delivered or already buffered (transport duplicates, replayed retx).
  std::size_t duplicates_suppressed() const {
    return counter_value(m().duplicates);
  }
  /// Out-of-order indications that were buffered and later delivered in
  /// order (reordering healed without a gap).
  std::size_t indications_recovered() const {
    return counter_value(m().recovered);
  }
  /// Sequence ranges abandoned after retransmission failed; each raised an
  /// on_telemetry_gap event on the owning xApp.
  std::size_t gaps_detected() const { return counter_value(m().gaps); }
  /// NACK PDUs sent (a batched PDU carrying several ranges counts once).
  std::size_t nacks_sent() const { return counter_value(m().nacks); }
  /// Extra per-stream NACKs absorbed by batching: ranges carried in
  /// multi-range PDUs beyond the first ("e2.nack_batched").
  std::size_t nacks_batched() const { return counter_value(m().nack_batched); }
  /// E2 Setup exchanges that replaced an existing connection (node-side
  /// restart / link recovery).
  std::size_t node_reconnects() const { return counter_value(m().reconnects); }
  /// Stale subscriptions torn down by a reconnect.
  std::size_t stale_subscriptions_cleared() const {
    return counter_value(m().stale_cleared);
  }
  /// RIC Control requests issued (first transmissions).
  std::size_t controls_sent() const { return counter_value(m().controls_sent); }
  /// Control acks matched to a pending request (genuine, not stale).
  std::size_t control_acks() const { return counter_value(m().control_acks); }
  /// Control retransmissions after an ack timeout.
  std::size_t control_retx() const { return counter_value(m().control_retx); }
  /// Controls abandoned (budget exhausted / node gone); each synthesized a
  /// failure ack toward the issuing xApp.
  std::size_t controls_lost() const { return counter_value(m().controls_lost); }

 private:
  struct Node {
    E2NodeLink* link = nullptr;
    std::vector<RanFunction> functions;
    obs::Counter* indications = nullptr;  // "ric.node<id>.indications"
  };
  struct SubscriptionKey {
    std::uint64_t node_id;
    std::uint32_t requestor_id;
    std::uint32_t instance_id;
    auto operator<=>(const SubscriptionKey&) const = default;
  };
  /// Per-subscription sequence tracker. The agent numbers indications with
  /// a monotonically increasing sequence; the tracker delivers in order,
  /// buffers ahead-of-sequence arrivals, NACKs missing runs, and declares
  /// a gap when the retransmission budget is exhausted.
  struct Stream {
    bool started = false;
    std::uint32_t next_expected = 0;
    std::map<std::uint32_t, RicIndication> pending;
    std::map<std::uint32_t, std::uint8_t> nack_counts;
  };

  /// Reorder-buffer capacity; exceeding it forces a gap declaration.
  static constexpr std::size_t kReorderWindow = 64;
  /// Retransmission requests per missing sequence before giving up.
  static constexpr std::uint8_t kMaxNacks = 3;
  /// Control ack timeout (covers the 1 ms E2 round trip plus reorder
  /// jitter under chaos plans with margin).
  static constexpr std::int64_t kControlAckTimeoutMs = 20;
  /// Control retransmissions before a request is declared lost.
  static constexpr std::uint8_t kMaxControlRetx = 3;

  /// An unacked RIC Control request awaiting its ack (or retransmission).
  struct PendingControl {
    std::uint64_t node_id = 0;
    XApp* xapp = nullptr;
    std::uint16_t ran_function_id = 0;
    Bytes wire;  // encoded request, replayed verbatim on timeout
    std::uint8_t retx = 0;
  };

  /// Registry handles, bound lazily on first use so standalone tests that
  /// never inject an Observability get a private registry transparently.
  struct Metrics {
    obs::Counter* received = nullptr;
    obs::Counter* dropped = nullptr;
    obs::Counter* duplicates = nullptr;
    obs::Counter* recovered = nullptr;
    obs::Counter* gaps = nullptr;
    obs::Counter* nacks = nullptr;
    obs::Counter* nack_batched = nullptr;
    obs::Counter* reconnects = nullptr;
    obs::Counter* stale_cleared = nullptr;
    obs::Counter* controls_sent = nullptr;
    obs::Counter* control_acks = nullptr;
    obs::Counter* control_retx = nullptr;
    obs::Counter* controls_lost = nullptr;
    bool bound = false;
  };

  void handle_indication_view(std::uint64_t node_id,
                              const RicIndicationView& indication);
  void deliver_in_order(const SubscriptionKey& key, Stream& stream);
  /// Gives up on [stream.next_expected, up_to) and tells the xApp.
  void declare_gap(const SubscriptionKey& key, Stream& stream,
                   std::uint32_t up_to);
  void maybe_nack(const SubscriptionKey& key, Stream& stream);
  void send_single_nack(const SubscriptionKey& key, Stream& stream,
                        std::uint32_t lowest_pending);
  void flush_nacks(std::uint64_t node_id);
  void clear_node_state(std::uint64_t node_id);
  static std::uint64_t control_key(const RicRequestId& id) {
    return (static_cast<std::uint64_t>(id.requestor_id) << 32) |
           id.instance_id;
  }
  void control_timeout(std::uint64_t key);
  /// Abandons `pending`'s request with a synthesized failure ack.
  void fail_control(std::uint64_t key, PendingControl pending);
  /// Fails every pending control aimed at a departing node.
  void fail_node_controls(std::uint64_t node_id);
  /// Deliver to the owning xApp inside a "ric.deliver" span (so xApp-side
  /// spans nest under it) and record the indication's e2.transit latency.
  void deliver_to_xapp(const SubscriptionKey& key, XApp* xapp,
                       const RicIndicationView& indication);

  Metrics& m() const;
  static std::size_t counter_value(const obs::Counter* c) {
    return c ? static_cast<std::size_t>(c->value()) : 0;
  }
  obs::Counter& node_counter(const char* what, std::uint64_t node_id) const;

  Sdl sdl_;
  MessageRouter router_;
  std::map<std::uint64_t, Node> nodes_;
  std::vector<std::unique_ptr<XApp>> xapps_;
  std::map<SubscriptionKey, XApp*> subscriptions_;
  std::map<SubscriptionKey, Stream> streams_;
  std::uint32_t next_requestor_id_ = 1;
  std::uint32_t next_instance_id_ = 1;
  /// Control instance ids share the requestor namespace with subscriptions
  /// but count from a disjoint range so the two never collide. Instance 0
  /// is reserved: agents treat it as the legacy uncorrelated path.
  std::uint32_t next_control_instance_ = 0x10000;
  std::map<std::uint64_t, PendingControl> pending_controls_;

  obs::Observability* obs_ = nullptr;
  mutable std::unique_ptr<obs::Observability> own_obs_;
  mutable Metrics metrics_;
  std::function<void(SimDuration, std::function<void()>)> scheduler_;
  /// Subscription streams with a staged NACK, per node, for the pending
  /// zero-delay flush round.
  std::map<std::uint64_t, std::vector<SubscriptionKey>> staged_nacks_;
};

}  // namespace xsec::oran
