#include "mobiflow/trace.hpp"

#include <fstream>

namespace xsec::mobiflow {

namespace {
// v2: compact tag+varint record encoding (v1 carried string KV pairs).
constexpr std::uint32_t kMagic = 0x4D465432;  // "MFT2"
}

void Trace::append(const Trace& other) {
  entries_.insert(entries_.end(), other.entries_.begin(),
                  other.entries_.end());
}

std::size_t Trace::malicious_count() const {
  std::size_t n = 0;
  for (const auto& e : entries_)
    if (e.malicious) ++n;
  return n;
}

Trace Trace::filter_ue(std::uint64_t ue_id) const {
  Trace out;
  for (const auto& e : entries_)
    if (e.record.ue_id == ue_id) out.entries_.push_back(e);
  return out;
}

Bytes Trace::serialize() const {
  ByteWriter w;
  w.u32(kMagic);
  w.u32(static_cast<std::uint32_t>(entries_.size()));
  for (const auto& e : entries_) {
    w.boolean(e.malicious);
    e.record.encode(w);
  }
  return w.take();
}

Result<Trace> Trace::deserialize(const Bytes& wire) {
  ByteReader r(wire);
  auto magic = r.u32();
  if (!magic) return magic.error();
  if (magic.value() != kMagic)
    return Error::make("malformed", "bad trace magic");
  auto count = r.u32();
  if (!count) return count.error();
  Trace trace;
  trace.entries_.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto malicious = r.boolean();
    if (!malicious) return malicious.error();
    auto record = Record::decode(r);
    if (!record) return record.error();
    trace.entries_.push_back({std::move(record).value(), malicious.value()});
  }
  return trace;
}

Status Trace::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Error::make("io", "cannot open " + path);
  Bytes wire = serialize();
  out.write(reinterpret_cast<const char*>(wire.data()),
            static_cast<std::streamsize>(wire.size()));
  if (!out) return Error::make("io", "write failed for " + path);
  return Status::ok_status();
}

Result<Trace> Trace::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Error::make("io", "cannot open " + path);
  Bytes wire((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  return deserialize(wire);
}

std::string Trace::to_csv() const {
  std::string out = record_csv_header() + ",malicious\n";
  for (const auto& e : entries_) {
    out += record_csv_row(e.record);
    out += e.malicious ? ",1\n" : ",0\n";
  }
  return out;
}

}  // namespace xsec::mobiflow
