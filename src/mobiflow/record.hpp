// MobiFlow security telemetry record (paper Table 1).
//
// One record is produced per control message transmission:
//   x_i = [t_i, m_i, p1_i, ..., pk_i]
// with the message type m_i and the UE-specific parameter set K covering
// identifiers (RNTI, S-TMSI, SUPI) and state (cipher_alg, integrity_alg,
// establishment_cause). Categorical fields are vocab enums — one varint on
// the wire, a direct one-hot index in the feature encoder; only free-form
// identity payloads (SUPI/SUCI) stay strings. Records serialize to a
// compact tag+varint form that rides inside RIC Indications and the SDL.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "mobiflow/vocab.hpp"

namespace xsec::mobiflow {

struct Record {
  // --- envelope ---
  std::int64_t timestamp_us = 0;
  std::uint32_t gnb_id = 0;
  std::uint16_t cell = 0;
  std::uint64_t ue_id = 0;  // CU-local UE correlation id

  // --- message ---
  vocab::Protocol protocol = vocab::Protocol::kUnknown;
  vocab::MsgType msg = vocab::MsgType::kUnknown;
  vocab::Direction direction = vocab::Direction::kUl;

  // --- identifiers ---
  std::uint16_t rnti = 0;
  std::uint64_t s_tmsi = 0;  // packed 5G-S-TMSI; 0 = not (yet) known
  /// Permanent identity observed in PLAINTEXT on the interface (the
  /// identity-extraction red flag). Empty when the UE used a protected SUCI.
  std::string supi_plain;
  /// Concealed identity as observed (SUCI string); empty if none.
  std::string suci;

  // --- state ---
  vocab::CipherAlg cipher_alg = vocab::CipherAlg::kNone;
  vocab::IntegrityAlg integrity_alg = vocab::IntegrityAlg::kNone;
  vocab::EstablishmentCause establishment_cause =
      vocab::EstablishmentCause::kNone;

  bool operator==(const Record&) const = default;

  // Presentation names (empty string for not-yet-known state fields).
  std::string_view protocol_name() const { return vocab::to_name(protocol); }
  std::string_view msg_name() const { return vocab::to_name(msg); }
  std::string_view direction_name() const {
    return vocab::to_name(direction);
  }
  std::string_view cipher_name() const { return vocab::to_name(cipher_alg); }
  std::string_view integrity_name() const {
    return vocab::to_name(integrity_alg);
  }
  std::string_view cause_name() const {
    return vocab::to_name(establishment_cause);
  }

  /// Appends the tag+varint wire form (terminated by an end-of-record tag),
  /// suitable for streaming several records into one buffer.
  void encode(ByteWriter& w) const;
  /// Decodes one record from the reader's current position. Rejects unknown
  /// tags and out-of-range enum values ("malformed") and inputs that end
  /// before all required fields arrived ("truncated").
  static Result<Record> decode(ByteReader& r);

  /// Compact standalone byte form (the SDL storage / indication-row format).
  Bytes to_kv_bytes() const;
  static Result<Record> from_kv_bytes(const Bytes& wire);
  /// Zero-copy variant: decodes straight out of a transport-owned span.
  static Result<Record> from_kv_bytes(std::span<const std::uint8_t> wire);

  /// Compact single-line rendering used in prompts and examples.
  std::string summary() const;
};

/// CSV header/row helpers used by trace export.
std::string record_csv_header();
std::string record_csv_row(const Record& r);

}  // namespace xsec::mobiflow
