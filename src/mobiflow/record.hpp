// MobiFlow security telemetry record (paper Table 1).
//
// One record is produced per control message transmission:
//   x_i = [t_i, m_i, p1_i, ..., pk_i]
// with the message name m_i and the UE-specific parameter set K covering
// identifiers (RNTI, S-TMSI, SUPI) and state (cipher_alg, integrity_alg,
// establishment_cause). Records convert to/from the E2SM key-value rows
// that ride inside RIC Indications.
#pragma once

#include <cstdint>
#include <string>

#include "oran/e2sm.hpp"

namespace xsec::mobiflow {

struct Record {
  // --- envelope ---
  std::int64_t timestamp_us = 0;
  std::uint32_t gnb_id = 0;
  std::uint16_t cell = 0;
  std::uint64_t ue_id = 0;  // CU-local UE correlation id

  // --- message ---
  std::string protocol;  // "RRC" | "NAS"
  std::string msg;       // e.g. "RRCSetupRequest", "AuthenticationRequest"
  std::string direction; // "UL" | "DL"

  // --- identifiers ---
  std::uint16_t rnti = 0;
  std::uint64_t s_tmsi = 0;  // packed 5G-S-TMSI; 0 = not (yet) known
  /// Permanent identity observed in PLAINTEXT on the interface (the
  /// identity-extraction red flag). Empty when the UE used a protected SUCI.
  std::string supi_plain;
  /// Concealed identity as observed (SUCI string); empty if none.
  std::string suci;

  // --- state ---
  std::string cipher_alg;      // "" until security mode completes
  std::string integrity_alg;
  std::string establishment_cause;

  bool operator==(const Record&) const = default;

  oran::e2sm::KvRow to_kv() const;
  static Record from_kv(const oran::e2sm::KvRow& row);

  /// Compact byte form of the KV row (the SDL storage format).
  Bytes to_kv_bytes() const;
  static Result<Record> from_kv_bytes(const Bytes& wire);

  /// Compact single-line rendering used in prompts and examples.
  std::string summary() const;
};

/// CSV header/row helpers used by trace export.
std::string record_csv_header();
std::string record_csv_row(const Record& r);

}  // namespace xsec::mobiflow
