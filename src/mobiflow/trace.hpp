// Telemetry traces and datasets.
//
// A Trace is an ordered list of MobiFlow records with per-record ground
// truth labels (the paper's manual labeling step: "we manually identify
// and label each malicious telemetry entry x_i"). Traces serialize to a
// compact binary format — the reproduction's stand-in for the released
// pcap-derived datasets — and export to CSV for inspection.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "mobiflow/record.hpp"

namespace xsec::mobiflow {

struct LabeledRecord {
  Record record;
  bool malicious = false;
};

/// Ground-truth predicate used to label records at collection time (the
/// attack scenarios know which traffic they generated).
using LabelFn = std::function<bool(const Record&)>;

class Trace {
 public:
  void add(Record record, bool malicious = false) {
    entries_.push_back({std::move(record), malicious});
  }
  void append(const Trace& other);

  const std::vector<LabeledRecord>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  std::size_t malicious_count() const;

  /// Splits out the records belonging to one UE (by CU ue id).
  Trace filter_ue(std::uint64_t ue_id) const;

  Bytes serialize() const;
  static Result<Trace> deserialize(const Bytes& wire);
  Status save(const std::string& path) const;
  static Result<Trace> load(const std::string& path);

  std::string to_csv() const;

 private:
  std::vector<LabeledRecord> entries_;
};

}  // namespace xsec::mobiflow
