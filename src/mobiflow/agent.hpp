// RIC agent: the data-plane side of the E2 connection.
//
// Taps the gNB's F1AP and NGAP interfaces, parses the captured bytes into
// MobiFlow records (tracking per-UE protocol state so each record carries
// the UE's current identifiers and security configuration), buffers them,
// and reports them to the near-RT RIC as E2SM-MOBIFLOW RIC Indications per
// the subscription's report period. Also executes RIC Control actions
// (remediation) against the gNB.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "mobiflow/record.hpp"
#include "obs/trace.hpp"
#include "oran/e2sm.hpp"
#include "oran/ric.hpp"
#include "ran/interfaces.hpp"
#include "ran/nas.hpp"

namespace xsec::mobiflow {

/// A remediation command carried in an E2SM-MOBIFLOW RIC Control message.
/// Actions 3+ form the graded mitigation vocabulary (and the rollbacks the
/// recovery monitor issues when an action's TTL expires or false-positive
/// evidence arrives).
struct ControlCommand {
  enum class Action : std::uint8_t {
    kReleaseUe = 0,       // release one context by RNTI
    kBlockTmsi = 1,       // reject setups replaying this S-TMSI
    kReleaseStale = 2,    // release contexts stalled pre-security
    kUnblockTmsi = 3,     // rollback of kBlockTmsi
    kRateLimit = 4,       // cap RRC setup admissions per sliding window
    kClearRateLimit = 5,  // rollback of kRateLimit
    kIsolate = 6,         // freeze ALL new admissions at the gNB
    kDeisolate = 7,       // rollback of kIsolate
  };
  static constexpr std::uint8_t kMaxAction = 7;
  Action action = Action::kReleaseUe;
  std::uint16_t rnti = 0;
  std::uint64_t s_tmsi = 0;
  /// kReleaseStale: minimum inactivity age (ms) of a pre-security context
  /// before it is released. Benign attaches pass through the pre-security
  /// phase in a few ms, so a small threshold only hits stalled floods.
  std::uint32_t stale_age_ms = 50;
  /// kRateLimit: admissions allowed per sliding window.
  std::uint32_t rate_limit = 0;
  /// kRateLimit: sliding window length (ms).
  std::uint32_t rate_window_ms = 100;
};

Bytes encode_control(const ControlCommand& cmd);
Result<ControlCommand> decode_control(const Bytes& wire);

struct AgentHooks {
  std::function<SimTime()> now;
  std::function<void(SimDuration, std::function<void()>)> schedule;
  /// Node -> RIC E2AP path (wired to NearRtRic::from_node).
  std::function<void(std::uint64_t node_id, Bytes wire)> to_ric;
  /// Executes a control command against the RAN; returns success.
  std::function<bool(const ControlCommand&)> apply_control;
  /// Attempts the E2 Setup exchange (wired to FaultyE2Transport::connect).
  /// Optional: without it the agent cannot reconnect after link loss.
  std::function<Result<std::uint64_t>()> try_connect;
  /// Probe: would the node -> RIC transport accept a PDU of this size
  /// right now (wired to FaultyE2Transport::ready_for)? Unset = always
  /// ready. When it refuses, the agent defers the report — records stay
  /// in the outage buffer (or spill to disk) with no sequence number
  /// consumed, so the stream resumes gap-free when the transport drains.
  std::function<bool(std::size_t)> transport_ready;
  /// Shared observability bundle; the agent creates a private one when
  /// absent (standalone tests). Metric names are "agent.node<id>.*".
  obs::Observability* obs = nullptr;
  /// Outage-backlog capacity (records buffered while no subscription is
  /// live). Reaching it either spills to disk (spill_dir set) or drops the
  /// oldest record.
  std::size_t outage_buffer_max = 8192;
  /// Directory for outage spill files (.mft trace format, replayed in
  /// order on re-subscription). Empty = RAM-only drop-oldest. The
  /// directory must exist; file names are "node<id>.spill.<n>.mft".
  std::string spill_dir;
};

class RicAgent : public oran::E2NodeLink {
 public:
  RicAgent(std::uint64_t node_id, AgentHooks hooks);

  /// Attaches the agent's parsers to the gNB's interface taps.
  void attach(ran::InterfaceTaps& taps);

  // E2NodeLink:
  Bytes setup_request() override;
  void on_e2ap(const Bytes& wire) override;
  void on_link_state(bool up) override;

  std::uint64_t node_id() const { return node_id_; }
  std::size_t records_collected() const { return records_collected_->value(); }
  std::size_t indications_sent() const { return indications_sent_->value(); }
  std::size_t parse_errors() const { return parse_errors_->value(); }
  bool subscribed() const { return !subscriptions_.empty(); }
  std::size_t subscription_count() const { return subscriptions_.size(); }

  /// Successful E2 Setup exchanges after a link loss.
  std::size_t reconnects() const { return reconnects_->value(); }
  /// Setup attempts made by the backoff loop (including failures).
  std::size_t reconnect_attempts() const {
    return reconnect_attempts_->value();
  }
  /// Indications replayed from the retransmission ring in response to NACKs.
  std::size_t indications_retransmitted() const {
    return indications_retransmitted_->value();
  }
  /// Records discarded because the outage backlog overflowed.
  std::size_t records_dropped_outage() const {
    return records_dropped_outage_->value();
  }
  /// Records spilled to disk when the outage backlog filled.
  std::size_t records_spilled() const { return records_spilled_->value(); }
  /// Spilled records reloaded and reported after re-subscription.
  std::size_t records_replayed() const { return records_replayed_->value(); }
  /// Spill files written (each holds one full backlog's worth of records).
  std::size_t spill_files_written() const { return spill_files_->value(); }
  /// Duplicate RIC Control requests suppressed (re-acked, not re-applied).
  std::size_t controls_deduplicated() const {
    return controls_deduplicated_->value();
  }

  /// Direct access to collection for offline dataset building (bypasses
  /// E2 reporting): every parsed record is also handed to this sink.
  void set_record_sink(std::function<void(const Record&)> sink) {
    record_sink_ = std::move(sink);
  }

 private:
  struct UeState {
    std::uint16_t rnti = 0;
    std::uint64_t s_tmsi = 0;
    vocab::EstablishmentCause establishment_cause =
        vocab::EstablishmentCause::kNone;
    vocab::CipherAlg cipher_alg = vocab::CipherAlg::kNone;
    vocab::IntegrityAlg integrity_alg = vocab::IntegrityAlg::kNone;
  };
  struct Subscription {
    oran::RicRequestId request_id;
    std::uint16_t action_id = 0;
    oran::e2sm::EventTriggerDefinition trigger;
    oran::e2sm::ActionDefinition action;
  };
  /// One sent report batch, kept for NACK-driven replay. The header and
  /// message encodings are shared by every subscription's copy. The
  /// first-transmission timestamp rides along so a replayed indication
  /// still carries the original send time (the RIC's transit span then
  /// includes the retransmission delay).
  struct SentBatch {
    std::uint32_t sequence = 0;
    Bytes header;
    Bytes message;
    std::int64_t sent_at_us = 0;
  };

  /// Sent batches retained for retransmission (oldest evicted first).
  static constexpr std::size_t kRetxRingCapacity = 128;
  static constexpr std::int64_t kBackoffBaseMs = 100;
  static constexpr std::int64_t kBackoffCapMs = 5000;
  /// Recently executed control request ids retained for duplicate
  /// suppression (a retransmitted Control must not re-apply its action).
  static constexpr std::size_t kControlDedupWindow = 64;

  void on_f1(SimTime t, const Bytes& wire);
  void on_ng(SimTime t, const Bytes& wire);
  void emit(Record record);
  void spill_buffer();
  void replay_spill();
  void discard_spill();
  std::string spill_path(std::uint64_t seq) const;
  void fill_identity(Record& record, UeState& state,
                     const ran::MobileIdentity& identity);
  void flush();
  void arm_flush_timer();
  void handle_nack(const oran::RicIndicationNack& nack);
  void schedule_reconnect();
  void attempt_reconnect();

  std::uint64_t node_id_;
  AgentHooks hooks_;
  ran::CellId last_cell_;  // cell identity observed on the F1 taps
  std::map<std::uint64_t, UeState> ue_state_;  // keyed by CU ue id
  /// Every admitted subscription gets the same report stream (multiple
  /// xApps may subscribe to the MobiFlow function concurrently).
  std::vector<Subscription> subscriptions_;
  std::vector<Record> buffer_;
  SimTime buffer_start_{0};
  std::uint32_t next_sequence_ = 1;
  bool flush_timer_armed_ = false;
  std::function<void(const Record&)> record_sink_;

  /// Registry handles bound once at construction under "agent.node<id>.*"
  /// (hot path stays allocation- and lookup-free).
  std::unique_ptr<obs::Observability> own_obs_;
  obs::Observability* obs_ = nullptr;
  obs::Counter* records_collected_ = nullptr;
  obs::Counter* indications_sent_ = nullptr;
  obs::Counter* parse_errors_ = nullptr;
  obs::Counter* reconnects_ = nullptr;
  obs::Counter* reconnect_attempts_ = nullptr;
  obs::Counter* indications_retransmitted_ = nullptr;
  obs::Counter* records_dropped_outage_ = nullptr;
  obs::Counter* records_spilled_ = nullptr;
  obs::Counter* records_replayed_ = nullptr;
  obs::Counter* spill_files_ = nullptr;
  obs::Counter* controls_deduplicated_ = nullptr;

  // --- resilience state ---
  std::deque<SentBatch> retx_ring_;
  /// True once any subscription was admitted; records captured while the
  /// link is down are buffered (bounded) instead of discarded, because a
  /// reconnect is expected to restore the subscription.
  bool ever_subscribed_ = false;
  bool link_up_ = true;
  bool reconnect_pending_ = false;
  std::int64_t backoff_ms_ = kBackoffBaseMs;
  Rng backoff_rng_;
  /// Outage spill files on disk, oldest first (replayed on reconnect).
  std::vector<std::string> spill_paths_;
  std::uint64_t next_spill_seq_ = 1;
  /// Executed control request ids ((requestor << 32) | instance) and their
  /// results, for at-most-once execution under duplicated Control frames.
  std::deque<std::pair<std::uint64_t, bool>> recent_controls_;
};

}  // namespace xsec::mobiflow
