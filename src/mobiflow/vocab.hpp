// Telemetry vocabulary: the closed enums behind MobiFlow records.
//
// Every categorical field of a mobiflow::Record is a small enum here, with
// one shared name table per enum (enum <-> std::string_view). The enums are
// what travels on the wire (one varint each) and what the feature encoder
// indexes by value; the names exist only at presentation boundaries (CSV,
// summaries, LLM prompts) and at lenient text-parsing boundaries.
//
// Extension recipe (adding a message/cause/algorithm):
//   1. Append the enumerator BEFORE the kCount-deriving constants change
//      meaning — enums are dense, so append at the end of its protocol block
//      and renumber the following block (wire compatibility is versioned via
//      the trace-file magic, not per-enum).
//   2. Add the name at the same position in the matching table in vocab.cpp.
//   3. The static_asserts below and the vocab alignment tests will catch a
//      table/enum mismatch at compile/test time.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/result.hpp"
#include "ran/rrc.hpp"
#include "ran/security.hpp"

namespace xsec::mobiflow::vocab {

enum class Protocol : std::uint8_t { kUnknown = 0, kRrc = 1, kNas = 2 };

enum class Direction : std::uint8_t { kUl = 0, kDl = 1 };

/// All control-plane message types MobiFlow can report. Value 0 is the
/// explicit unknown bucket (novel or unparseable names land there, so a
/// never-seen message perturbs the one-hot encoding instead of zeroing it).
/// RRC values follow ran::rrc_all_names() order, NAS values follow
/// ran::nas_all_names() order — the agent maps variant indices directly.
enum class MsgType : std::uint8_t {
  kUnknown = 0,
  // --- RRC (TS 38.331), codec order ---
  kRrcSetupRequest = 1,
  kRrcSetupComplete,
  kRrcSecurityModeComplete,
  kRrcSecurityModeFailure,
  kUeCapabilityInformation,
  kRrcReconfigurationComplete,
  kUlInformationTransfer,
  kMeasurementReport,
  kRrcReestablishmentRequest,
  kRrcSetup,
  kRrcReject,
  kRrcSecurityModeCommand,
  kUeCapabilityEnquiry,
  kRrcReconfiguration,
  kDlInformationTransfer,
  kRrcRelease,
  kPaging,
  // --- NAS (TS 24.501), codec order ---
  kRegistrationRequest = 18,
  kAuthenticationResponse,
  kAuthenticationFailure,
  kSecurityModeComplete,
  kSecurityModeReject,
  kIdentityResponse,
  kRegistrationComplete,
  kServiceRequest,
  kDeregistrationRequest,
  kAuthenticationRequest,
  kAuthenticationReject,
  kSecurityModeCommand,
  kIdentityRequest,
  kRegistrationAccept,
  kRegistrationReject,
  kServiceAccept,
  kServiceReject,
  kDeregistrationAccept,
  kConfigurationUpdateCommand,
};

inline constexpr std::size_t kRrcMsgCount = 17;
inline constexpr std::size_t kNasMsgCount = 19;
inline constexpr std::uint8_t kFirstRrcMsg = 1;
inline constexpr std::uint8_t kFirstNasMsg = kFirstRrcMsg + kRrcMsgCount;
inline constexpr std::size_t kMsgTypeCount = 1 + kRrcMsgCount + kNasMsgCount;
static_assert(static_cast<std::uint8_t>(MsgType::kRegistrationRequest) ==
              kFirstNasMsg);
static_assert(static_cast<std::size_t>(MsgType::kConfigurationUpdateCommand) ==
              kMsgTypeCount - 1);

/// Security algorithms / establishment cause carry an explicit "not yet
/// known" zero value: a record before SecurityModeCommand has kNone, which
/// renders as the empty string and one-hot-encodes as the unknown column.
enum class CipherAlg : std::uint8_t {
  kNone = 0,
  kNea0,
  kNea1,
  kNea2,
  kNea3,
};
enum class IntegrityAlg : std::uint8_t {
  kNone = 0,
  kNia0,
  kNia1,
  kNia2,
  kNia3,
};
enum class EstablishmentCause : std::uint8_t {
  kNone = 0,
  kEmergency,
  kHighPriorityAccess,
  kMtAccess,
  kMoSignalling,
  kMoData,
  kMoVoiceCall,
  kMoVideoCall,
  kMoSms,
  kMpsPriorityAccess,
  kMcsPriorityAccess,
};

inline constexpr std::size_t kCipherAlgCount = 5;
inline constexpr std::size_t kIntegrityAlgCount = 5;
inline constexpr std::size_t kEstablishmentCauseCount = 11;

// --- names (presentation boundary) ---------------------------------------
// kNone/kUnknown values of the optional-ish enums render as "" so the
// "empty until security completes" CSV/summary semantics are preserved.

std::string_view to_name(Protocol p);           // "?", "RRC", "NAS"
std::string_view to_name(Direction d);          // "UL", "DL"
std::string_view to_name(MsgType m);            // "?" for kUnknown
std::string_view to_name(CipherAlg a);          // "" for kNone
std::string_view to_name(IntegrityAlg a);       // "" for kNone
std::string_view to_name(EstablishmentCause c); // "" for kNone

// --- strict parses (wire / trusted-text decode) ---------------------------

Result<Protocol> parse_protocol(std::string_view name);
Result<MsgType> parse_msg(std::string_view name);
Result<Direction> parse_direction(std::string_view name);
Result<CipherAlg> parse_cipher(std::string_view name);
Result<IntegrityAlg> parse_integrity(std::string_view name);
Result<EstablishmentCause> parse_cause(std::string_view name);

// --- lenient parses (untrusted text, e.g. LLM prompt round-trips) ---------

Protocol protocol_or_unknown(std::string_view name);
MsgType msg_or_unknown(std::string_view name);
CipherAlg cipher_or_none(std::string_view name);
IntegrityAlg integrity_or_none(std::string_view name);
EstablishmentCause cause_or_none(std::string_view name);

// --- structure ------------------------------------------------------------

/// Which protocol a message type belongs to (kUnknown for kUnknown).
Protocol protocol_of(MsgType m);

/// Maps a ran::RrcMessage / ran::NasMessage variant index (codec order,
/// matching rrc_all_names() / nas_all_names()) to its MsgType.
constexpr MsgType msg_from_rrc_index(std::size_t variant_index) {
  return variant_index < kRrcMsgCount
             ? static_cast<MsgType>(kFirstRrcMsg + variant_index)
             : MsgType::kUnknown;
}
constexpr MsgType msg_from_nas_index(std::size_t variant_index) {
  return variant_index < kNasMsgCount
             ? static_cast<MsgType>(kFirstNasMsg + variant_index)
             : MsgType::kUnknown;
}

// --- converters from the ran-layer enums ----------------------------------
// The ran enums have no "none" value; vocab shifts them up by one.

constexpr CipherAlg from_ran(ran::CipherAlg a) {
  return static_cast<CipherAlg>(static_cast<std::uint8_t>(a) + 1);
}
constexpr IntegrityAlg from_ran(ran::IntegrityAlg a) {
  return static_cast<IntegrityAlg>(static_cast<std::uint8_t>(a) + 1);
}
constexpr EstablishmentCause from_ran(ran::EstablishmentCause c) {
  return static_cast<EstablishmentCause>(static_cast<std::uint8_t>(c) + 1);
}
static_assert(from_ran(ran::CipherAlg::kNea0) == CipherAlg::kNea0);
static_assert(from_ran(ran::CipherAlg::kNea3) == CipherAlg::kNea3);
static_assert(from_ran(ran::IntegrityAlg::kNia0) == IntegrityAlg::kNia0);
static_assert(from_ran(ran::EstablishmentCause::kEmergency) ==
              EstablishmentCause::kEmergency);
static_assert(from_ran(ran::EstablishmentCause::kMcsPriorityAccess) ==
              EstablishmentCause::kMcsPriorityAccess);

}  // namespace xsec::mobiflow::vocab
