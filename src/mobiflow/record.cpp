#include "mobiflow/record.hpp"

#include <cstdio>

#include "common/strings.hpp"

namespace xsec::mobiflow {

namespace {

// Wire field tags. Tag 0 terminates a record; numeric/enum fields are one
// varint, string fields are varint length + raw bytes. Optional fields
// (supi/suci) are omitted when empty; everything else is required.
enum Tag : std::uint8_t {
  kEnd = 0,
  kTs = 1,
  kGnb = 2,
  kCell = 3,
  kUe = 4,
  kProto = 5,
  kMsg = 6,
  kDir = 7,
  kRnti = 8,
  kSTmsi = 9,
  kSupi = 10,
  kSuci = 11,
  kCipher = 12,
  kIntegrity = 13,
  kCause = 14,
};

constexpr std::uint32_t bit(std::uint8_t tag) { return 1u << tag; }
constexpr std::uint32_t kRequiredMask =
    bit(kTs) | bit(kGnb) | bit(kCell) | bit(kUe) | bit(kProto) | bit(kMsg) |
    bit(kDir) | bit(kRnti) | bit(kSTmsi) | bit(kCipher) | bit(kIntegrity) |
    bit(kCause);

// ZigZag so negative timestamps stay small varints.
constexpr std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
constexpr std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

void put_varint_field(ByteWriter& w, Tag tag, std::uint64_t value) {
  w.u8(tag);
  w.varint(value);
}

void put_str_field(ByteWriter& w, Tag tag, const std::string& value) {
  w.u8(tag);
  w.varint(value.size());
  w.raw(reinterpret_cast<const std::uint8_t*>(value.data()), value.size());
}

Result<std::string> read_str_field(ByteReader& r) {
  auto len = r.varint();
  if (!len) return len.error();
  auto bytes = r.raw(len.value());
  if (!bytes) return bytes.error();
  return std::string(bytes.value().begin(), bytes.value().end());
}

/// Range-checks a decoded varint against an enum's dense value count.
template <typename E>
Result<E> checked_enum(std::uint64_t raw, std::size_t count,
                       const char* what) {
  if (raw >= count)
    return Error::make("malformed",
                       std::string(what) + " enum value out of range");
  return static_cast<E>(raw);
}

}  // namespace

void Record::encode(ByteWriter& w) const {
  put_varint_field(w, kTs, zigzag(timestamp_us));
  put_varint_field(w, kGnb, gnb_id);
  put_varint_field(w, kCell, cell);
  put_varint_field(w, kUe, ue_id);
  put_varint_field(w, kProto, static_cast<std::uint8_t>(protocol));
  put_varint_field(w, kMsg, static_cast<std::uint8_t>(msg));
  put_varint_field(w, kDir, static_cast<std::uint8_t>(direction));
  put_varint_field(w, kRnti, rnti);
  put_varint_field(w, kSTmsi, s_tmsi);
  if (!supi_plain.empty()) put_str_field(w, kSupi, supi_plain);
  if (!suci.empty()) put_str_field(w, kSuci, suci);
  put_varint_field(w, kCipher, static_cast<std::uint8_t>(cipher_alg));
  put_varint_field(w, kIntegrity, static_cast<std::uint8_t>(integrity_alg));
  put_varint_field(w, kCause, static_cast<std::uint8_t>(establishment_cause));
  w.u8(kEnd);
}

Result<Record> Record::decode(ByteReader& r) {
  Record rec;
  std::uint32_t seen = 0;
  for (;;) {
    auto tag = r.u8();
    if (!tag) return tag.error();
    if (tag.value() == kEnd) break;
    if (tag.value() > kCause)
      return Error::make("malformed", "unknown record field tag");
    if (tag.value() == kSupi || tag.value() == kSuci) {
      auto text = read_str_field(r);
      if (!text) return text.error();
      (tag.value() == kSupi ? rec.supi_plain : rec.suci) =
          std::move(text).value();
      seen |= bit(tag.value());
      continue;
    }
    auto raw = r.varint();
    if (!raw) return raw.error();
    std::uint64_t v = raw.value();
    switch (tag.value()) {
      case kTs: rec.timestamp_us = unzigzag(v); break;
      case kGnb: rec.gnb_id = static_cast<std::uint32_t>(v); break;
      case kCell: rec.cell = static_cast<std::uint16_t>(v); break;
      case kUe: rec.ue_id = v; break;
      case kProto: {
        auto e = checked_enum<vocab::Protocol>(v, 3, "protocol");
        if (!e) return e.error();
        rec.protocol = e.value();
        break;
      }
      case kMsg: {
        auto e =
            checked_enum<vocab::MsgType>(v, vocab::kMsgTypeCount, "message");
        if (!e) return e.error();
        rec.msg = e.value();
        break;
      }
      case kDir: {
        auto e = checked_enum<vocab::Direction>(v, 2, "direction");
        if (!e) return e.error();
        rec.direction = e.value();
        break;
      }
      case kRnti: rec.rnti = static_cast<std::uint16_t>(v); break;
      case kSTmsi: rec.s_tmsi = v; break;
      case kCipher: {
        auto e = checked_enum<vocab::CipherAlg>(v, vocab::kCipherAlgCount,
                                                "cipher");
        if (!e) return e.error();
        rec.cipher_alg = e.value();
        break;
      }
      case kIntegrity: {
        auto e = checked_enum<vocab::IntegrityAlg>(
            v, vocab::kIntegrityAlgCount, "integrity");
        if (!e) return e.error();
        rec.integrity_alg = e.value();
        break;
      }
      case kCause: {
        auto e = checked_enum<vocab::EstablishmentCause>(
            v, vocab::kEstablishmentCauseCount, "establishment cause");
        if (!e) return e.error();
        rec.establishment_cause = e.value();
        break;
      }
      default:
        return Error::make("malformed", "unknown record field tag");
    }
    seen |= bit(tag.value());
  }
  if ((seen & kRequiredMask) != kRequiredMask)
    return Error::make("truncated", "record missing required fields");
  return rec;
}

Bytes Record::to_kv_bytes() const {
  ByteWriter w;
  encode(w);
  return w.take();
}

Result<Record> Record::from_kv_bytes(const Bytes& wire) {
  return from_kv_bytes(std::span<const std::uint8_t>(wire.data(), wire.size()));
}

Result<Record> Record::from_kv_bytes(std::span<const std::uint8_t> wire) {
  ByteReader r(wire.data(), wire.size());
  auto rec = decode(r);
  if (!rec) return rec.error();
  if (!r.exhausted())
    return Error::make("malformed", "trailing bytes after record");
  return rec;
}

std::string Record::summary() const {
  char rnti_buf[8];
  std::snprintf(rnti_buf, sizeof(rnti_buf), "0x%04X", rnti);
  std::string out = "t=" + std::to_string(timestamp_us) + "us ";
  out += direction_name();
  out += " ";
  out += protocol_name();
  out += ":";
  out += msg_name();
  out += " rnti=";
  out += rnti_buf;
  if (s_tmsi != 0) {
    char tmsi_buf[16];
    std::snprintf(tmsi_buf, sizeof(tmsi_buf), "0x%08llX",
                  static_cast<unsigned long long>(s_tmsi & 0xffffffff));
    out += " tmsi=";
    out += tmsi_buf;
  }
  if (!supi_plain.empty()) out += " supi=" + supi_plain + " (PLAINTEXT)";
  if (!suci.empty()) out += " suci=" + suci;
  if (cipher_alg != vocab::CipherAlg::kNone) {
    out += " cipher=";
    out += cipher_name();
  }
  if (integrity_alg != vocab::IntegrityAlg::kNone) {
    out += " integrity=";
    out += integrity_name();
  }
  if (establishment_cause != vocab::EstablishmentCause::kNone) {
    out += " cause=";
    out += cause_name();
  }
  return out;
}

std::string record_csv_header() {
  return "ts_us,gnb,cell,ue,proto,msg,dir,rnti,s_tmsi,supi,suci,cipher_alg,"
         "integrity_alg,est_cause";
}

std::string record_csv_row(const Record& r) {
  std::vector<std::string> cells = {
      std::to_string(r.timestamp_us), std::to_string(r.gnb_id),
      std::to_string(r.cell),         std::to_string(r.ue_id),
      std::string(r.protocol_name()), std::string(r.msg_name()),
      std::string(r.direction_name()), std::to_string(r.rnti),
      std::to_string(r.s_tmsi),       r.supi_plain,
      r.suci,                         std::string(r.cipher_name()),
      std::string(r.integrity_name()), std::string(r.cause_name())};
  return join(cells, ",");
}

}  // namespace xsec::mobiflow
