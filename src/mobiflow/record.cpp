#include "mobiflow/record.hpp"

#include <cstdio>

#include "common/strings.hpp"

namespace xsec::mobiflow {

oran::e2sm::KvRow Record::to_kv() const {
  oran::e2sm::KvRow row;
  row.add("ts", std::to_string(timestamp_us));
  row.add("gnb", std::to_string(gnb_id));
  row.add("cell", std::to_string(cell));
  row.add("ue", std::to_string(ue_id));
  row.add("proto", protocol);
  row.add("msg", msg);
  row.add("dir", direction);
  row.add("rnti", std::to_string(rnti));
  row.add("s_tmsi", std::to_string(s_tmsi));
  if (!supi_plain.empty()) row.add("supi", supi_plain);
  if (!suci.empty()) row.add("suci", suci);
  if (!cipher_alg.empty()) row.add("cipher_alg", cipher_alg);
  if (!integrity_alg.empty()) row.add("integrity_alg", integrity_alg);
  if (!establishment_cause.empty())
    row.add("est_cause", establishment_cause);
  return row;
}

Record Record::from_kv(const oran::e2sm::KvRow& row) {
  Record r;
  auto to_i64 = [](const std::string& s) -> std::int64_t {
    return s.empty() ? 0 : std::strtoll(s.c_str(), nullptr, 10);
  };
  auto to_u64 = [](const std::string& s) -> std::uint64_t {
    return s.empty() ? 0 : std::strtoull(s.c_str(), nullptr, 10);
  };
  r.timestamp_us = to_i64(row.get("ts"));
  r.gnb_id = static_cast<std::uint32_t>(to_u64(row.get("gnb")));
  r.cell = static_cast<std::uint16_t>(to_u64(row.get("cell")));
  r.ue_id = to_u64(row.get("ue"));
  r.protocol = row.get("proto");
  r.msg = row.get("msg");
  r.direction = row.get("dir");
  r.rnti = static_cast<std::uint16_t>(to_u64(row.get("rnti")));
  r.s_tmsi = to_u64(row.get("s_tmsi"));
  r.supi_plain = row.get("supi");
  r.suci = row.get("suci");
  r.cipher_alg = row.get("cipher_alg");
  r.integrity_alg = row.get("integrity_alg");
  r.establishment_cause = row.get("est_cause");
  return r;
}

Bytes Record::to_kv_bytes() const {
  ByteWriter w;
  auto kv = to_kv();
  w.u16(static_cast<std::uint16_t>(kv.fields.size()));
  for (const auto& [key, value] : kv.fields) {
    w.str(key);
    w.str(value);
  }
  return w.take();
}

Result<Record> Record::from_kv_bytes(const Bytes& wire) {
  ByteReader r(wire);
  auto fields = r.u16();
  if (!fields) return fields.error();
  oran::e2sm::KvRow row;
  for (std::uint16_t f = 0; f < fields.value(); ++f) {
    auto key = r.str();
    if (!key) return key.error();
    auto value = r.str();
    if (!value) return value.error();
    row.add(key.value(), value.value());
  }
  return from_kv(row);
}

std::string Record::summary() const {
  char rnti_buf[8];
  std::snprintf(rnti_buf, sizeof(rnti_buf), "0x%04X", rnti);
  std::string out = "t=" + std::to_string(timestamp_us) + "us " + direction +
                    " " + protocol + ":" + msg + " rnti=" + rnti_buf;
  if (s_tmsi != 0) {
    char tmsi_buf[16];
    std::snprintf(tmsi_buf, sizeof(tmsi_buf), "0x%08llX",
                  static_cast<unsigned long long>(s_tmsi & 0xffffffff));
    out += " tmsi=";
    out += tmsi_buf;
  }
  if (!supi_plain.empty()) out += " supi=" + supi_plain + " (PLAINTEXT)";
  if (!suci.empty()) out += " suci=" + suci;
  if (!cipher_alg.empty()) out += " cipher=" + cipher_alg;
  if (!integrity_alg.empty()) out += " integrity=" + integrity_alg;
  if (!establishment_cause.empty()) out += " cause=" + establishment_cause;
  return out;
}

std::string record_csv_header() {
  return "ts_us,gnb,cell,ue,proto,msg,dir,rnti,s_tmsi,supi,suci,cipher_alg,"
         "integrity_alg,est_cause";
}

std::string record_csv_row(const Record& r) {
  std::vector<std::string> cells = {
      std::to_string(r.timestamp_us), std::to_string(r.gnb_id),
      std::to_string(r.cell),         std::to_string(r.ue_id),
      r.protocol,                     r.msg,
      r.direction,                    std::to_string(r.rnti),
      std::to_string(r.s_tmsi),       r.supi_plain,
      r.suci,                         r.cipher_alg,
      r.integrity_alg,                r.establishment_cause};
  return join(cells, ",");
}

}  // namespace xsec::mobiflow
