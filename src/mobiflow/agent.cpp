#include "mobiflow/agent.hpp"

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/log.hpp"
#include "mobiflow/trace.hpp"
#include "ran/codec.hpp"
#include "ran/ue.hpp"  // deconceal_suci for null-scheme plaintext recovery

namespace xsec::mobiflow {

Bytes encode_control(const ControlCommand& cmd) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(cmd.action));
  w.u16(cmd.rnti);
  w.u64(cmd.s_tmsi);
  w.u32(cmd.stale_age_ms);
  w.u32(cmd.rate_limit);
  w.u32(cmd.rate_window_ms);
  return w.take();
}

Result<ControlCommand> decode_control(const Bytes& wire) {
  ByteReader r(wire);
  auto action = r.u8();
  if (!action) return action.error();
  if (action.value() > ControlCommand::kMaxAction)
    return Error::make("malformed", "control action out of range");
  auto rnti = r.u16();
  if (!rnti) return rnti.error();
  auto tmsi = r.u64();
  if (!tmsi) return tmsi.error();
  auto stale = r.u32();
  if (!stale) return stale.error();
  auto rate = r.u32();
  if (!rate) return rate.error();
  auto window = r.u32();
  if (!window) return window.error();
  ControlCommand cmd;
  cmd.action = static_cast<ControlCommand::Action>(action.value());
  cmd.rnti = rnti.value();
  cmd.s_tmsi = tmsi.value();
  cmd.stale_age_ms = stale.value();
  cmd.rate_limit = rate.value();
  cmd.rate_window_ms = window.value();
  if (cmd.action == ControlCommand::Action::kRateLimit &&
      (cmd.rate_limit == 0 || cmd.rate_window_ms == 0))
    return Error::make("malformed", "rate-limit control without a rate");
  return cmd;
}

RicAgent::RicAgent(std::uint64_t node_id, AgentHooks hooks)
    : node_id_(node_id),
      hooks_(std::move(hooks)),
      backoff_rng_(0xbacc0ff ^ node_id) {
  obs_ = hooks_.obs;
  if (!obs_) {
    own_obs_ = std::make_unique<obs::Observability>();
    obs_ = own_obs_.get();
  }
  std::string scope = "agent.node" + std::to_string(node_id_) + ".";
  obs::MetricsRegistry& r = obs_->metrics;
  records_collected_ = &r.counter(scope + "records_collected");
  indications_sent_ = &r.counter(scope + "indications_sent");
  parse_errors_ = &r.counter(scope + "parse_errors");
  reconnects_ = &r.counter(scope + "reconnects");
  reconnect_attempts_ = &r.counter(scope + "reconnect_attempts");
  indications_retransmitted_ = &r.counter(scope + "indications_retransmitted");
  records_dropped_outage_ = &r.counter(scope + "records_dropped_outage");
  records_spilled_ = &r.counter(scope + "records_spilled");
  records_replayed_ = &r.counter(scope + "records_replayed");
  spill_files_ = &r.counter(scope + "spill_files");
  controls_deduplicated_ = &r.counter(scope + "controls_deduplicated");
}

void RicAgent::attach(ran::InterfaceTaps& taps) {
  taps.add_f1_tap([this](SimTime t, const Bytes& wire) { on_f1(t, wire); });
  taps.add_ng_tap([this](SimTime t, const Bytes& wire) { on_ng(t, wire); });
}

Bytes RicAgent::setup_request() {
  oran::E2SetupRequest setup;
  setup.node_id = node_id_;
  setup.functions.push_back(oran::e2sm::make_mobiflow_function());
  return encode_e2ap(setup);
}

void RicAgent::on_e2ap(const Bytes& wire) {
  auto type = oran::e2ap_type(wire);
  if (!type) return;
  switch (type.value()) {
    case oran::E2apType::kSetupResponse:
      break;  // functions accepted; nothing to store
    case oran::E2apType::kSubscriptionRequest: {
      auto request = oran::decode_subscription_request(wire);
      if (!request) return;
      oran::RicSubscriptionResponse response;
      response.request_id = request.value().request_id;
      response.ran_function_id = request.value().ran_function_id;
      if (request.value().ran_function_id !=
              oran::e2sm::kMobiFlowFunctionId ||
          request.value().actions.empty()) {
        for (const auto& a : request.value().actions)
          response.rejected_action_ids.push_back(a.action_id);
        hooks_.to_ric(node_id_, encode_e2ap(response));
        return;
      }
      Subscription sub;
      sub.request_id = request.value().request_id;
      const auto& action = request.value().actions.front();
      sub.action_id = action.action_id;
      auto trigger = oran::e2sm::decode_event_trigger(
          request.value().event_trigger);
      auto action_def = oran::e2sm::decode_action_definition(action.definition);
      if (!trigger || !action_def) {
        response.rejected_action_ids.push_back(action.action_id);
        hooks_.to_ric(node_id_, encode_e2ap(response));
        return;
      }
      sub.trigger = trigger.value();
      sub.action = action_def.value();
      subscriptions_.push_back(sub);
      ever_subscribed_ = true;
      response.admitted_action_ids.push_back(action.action_id);
      hooks_.to_ric(node_id_, encode_e2ap(response));
      // A long outage may have spilled backlog to disk: reload it in front
      // of the RAM buffer so the flush timer reports everything in order.
      replay_spill();
      arm_flush_timer();
      break;
    }
    case oran::E2apType::kSubscriptionDeleteRequest: {
      auto request = oran::decode_subscription_delete(wire);
      if (!request) return;
      for (auto it = subscriptions_.begin(); it != subscriptions_.end();
           ++it) {
        if (it->request_id == request.value().request_id) {
          subscriptions_.erase(it);
          break;
        }
      }
      if (subscriptions_.empty()) {
        // Clean teardown (as opposed to link loss): nobody is coming back
        // for the buffered telemetry.
        ever_subscribed_ = false;
        buffer_.clear();
        retx_ring_.clear();
        discard_spill();
      }
      break;
    }
    case oran::E2apType::kIndicationNack: {
      auto nack = oran::decode_indication_nack(wire);
      if (!nack) return;
      handle_nack(nack.value());
      break;
    }
    case oran::E2apType::kControlRequest: {
      auto request = oran::decode_control_request(wire);
      if (!request) return;
      oran::RicControlAck ack;
      ack.request_id = request.value().request_id;
      ack.ran_function_id = request.value().ran_function_id;
      // At-most-once execution: a Control retransmitted by the RIC (lost
      // or duplicated ack) is re-acked with the original result instead of
      // re-applying a non-idempotent action. Instance id 0 is the legacy
      // uncorrelated path and is never deduplicated.
      const oran::RicRequestId& rid = request.value().request_id;
      std::uint64_t control_key =
          (static_cast<std::uint64_t>(rid.requestor_id) << 32) |
          rid.instance_id;
      if (rid.instance_id != 0) {
        for (const auto& [key, result] : recent_controls_) {
          if (key != control_key) continue;
          controls_deduplicated_->inc();
          ack.success = result;
          hooks_.to_ric(node_id_, encode_e2ap(ack));
          return;
        }
      }
      bool ok = false;
      auto cmd = decode_control(request.value().message);
      if (cmd && hooks_.apply_control) ok = hooks_.apply_control(cmd.value());
      if (rid.instance_id != 0) {
        recent_controls_.emplace_back(control_key, ok);
        if (recent_controls_.size() > kControlDedupWindow)
          recent_controls_.pop_front();
      }
      ack.success = ok;
      hooks_.to_ric(node_id_, encode_e2ap(ack));
      break;
    }
    default:
      break;
  }
}

void RicAgent::on_f1(SimTime t, const Bytes& wire) {
  auto f1 = ran::decode_f1ap(wire);
  if (!f1) {
    parse_errors_->inc();
    return;
  }
  const auto& msg = f1.value();
  if (msg.procedure == ran::F1apProcedure::kUeContextSetup ||
      msg.procedure == ran::F1apProcedure::kUeContextRelease)
    return;  // no RRC payload

  auto rrc = ran::decode_rrc(msg.rrc_container);
  if (!rrc) {
    parse_errors_->inc();
    return;
  }

  UeState& state = ue_state_[msg.gnb_du_ue_id];
  state.rnti = msg.rnti.value;
  last_cell_ = msg.cell;  // NGAP taps carry no cell identity; remember it

  Record record;
  record.timestamp_us = t.us;
  record.gnb_id = msg.cell.gnb_id;
  record.cell = msg.cell.cell;
  record.ue_id = msg.gnb_du_ue_id;
  record.protocol = vocab::Protocol::kRrc;
  record.msg = vocab::msg_from_rrc_index(rrc.value().index());
  record.direction = ran::rrc_is_uplink(rrc.value()) ? vocab::Direction::kUl
                                                     : vocab::Direction::kDl;

  // Update tracked UE state from message contents.
  std::uint64_t paged_tmsi = 0;
  std::visit(
      [&state, &paged_tmsi](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, ran::RrcSetupRequest>) {
          state.establishment_cause = vocab::from_ran(m.cause);
          if (m.ue_identity.kind ==
              ran::InitialUeIdentity::Kind::kNg5gSTmsiPart1)
            state.s_tmsi = m.ue_identity.value;
        } else if constexpr (std::is_same_v<T, ran::RrcSetupComplete>) {
          if (m.s_tmsi) state.s_tmsi = m.s_tmsi->packed();
        } else if constexpr (std::is_same_v<T, ran::RrcSecurityModeCommand>) {
          state.cipher_alg = vocab::from_ran(m.cipher);
          state.integrity_alg = vocab::from_ran(m.integrity);
        } else if constexpr (std::is_same_v<T, ran::Paging>) {
          // Broadcast, not bound to a UE context: the identifier goes on
          // the record but not into any context's tracked state.
          paged_tmsi = m.s_tmsi_packed;
        }
      },
      rrc.value());

  record.rnti = state.rnti;
  record.s_tmsi = paged_tmsi != 0 ? paged_tmsi : state.s_tmsi;
  record.cipher_alg = state.cipher_alg;
  record.integrity_alg = state.integrity_alg;
  record.establishment_cause = state.establishment_cause;
  emit(std::move(record));
}

void RicAgent::fill_identity(Record& record, UeState& state,
                             const ran::MobileIdentity& identity) {
  switch (identity.kind) {
    case ran::MobileIdentity::Kind::kSuci: {
      record.suci = identity.suci->str();
      if (identity.suci->is_null_scheme()) {
        // Null protection scheme: the MSIN is on the air in plaintext.
        ran::Supi supi{identity.suci->plmn, deconceal_suci(*identity.suci)};
        record.supi_plain = supi.str();
      }
      break;
    }
    case ran::MobileIdentity::Kind::kGuti:
      state.s_tmsi = identity.guti->s_tmsi.packed();
      break;
    case ran::MobileIdentity::Kind::kSupiPlain:
      record.supi_plain = identity.supi->str();
      break;
    case ran::MobileIdentity::Kind::kNone:
      break;
  }
}

void RicAgent::on_ng(SimTime t, const Bytes& wire) {
  auto ngap = ran::decode_ngap(wire);
  if (!ngap) {
    parse_errors_->inc();
    return;
  }
  const auto& msg = ngap.value();
  if (msg.nas_pdu.empty()) return;  // context-management procedure

  auto nas = ran::decode_nas(msg.nas_pdu);
  if (!nas) {
    parse_errors_->inc();
    return;
  }

  UeState& state = ue_state_[msg.ran_ue_ngap_id];

  Record record;
  record.timestamp_us = t.us;
  record.gnb_id = last_cell_.gnb_id;
  record.cell = last_cell_.cell;
  record.ue_id = msg.ran_ue_ngap_id;
  record.protocol = vocab::Protocol::kNas;
  record.msg = vocab::msg_from_nas_index(nas.value().index());
  record.direction = ran::nas_is_uplink(nas.value()) ? vocab::Direction::kUl
                                                     : vocab::Direction::kDl;

  std::visit(
      [this, &record, &state](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, ran::RegistrationRequest>) {
          fill_identity(record, state, m.identity);
        } else if constexpr (std::is_same_v<T, ran::IdentityResponse>) {
          fill_identity(record, state, m.identity);
        } else if constexpr (std::is_same_v<T, ran::NasSecurityModeCommand>) {
          state.cipher_alg = vocab::from_ran(m.cipher);
          state.integrity_alg = vocab::from_ran(m.integrity);
        } else if constexpr (std::is_same_v<T, ran::RegistrationAccept>) {
          state.s_tmsi = m.guti.s_tmsi.packed();
        } else if constexpr (std::is_same_v<T, ran::ServiceRequest>) {
          if (m.s_tmsi) state.s_tmsi = m.s_tmsi->packed();
        }
      },
      nas.value());

  record.rnti = state.rnti;
  record.s_tmsi = state.s_tmsi;
  record.cipher_alg = state.cipher_alg;
  record.integrity_alg = state.integrity_alg;
  record.establishment_cause = state.establishment_cause;
  emit(std::move(record));
}

void RicAgent::emit(Record record) {
  records_collected_->inc();
  if (record_sink_) record_sink_(record);
  if (subscriptions_.empty() && !ever_subscribed_) return;
  if (buffer_.empty()) buffer_start_ = hooks_.now();
  buffer_.push_back(std::move(record));
  if (subscriptions_.empty()) {
    // Outage backlog: keep telemetry for delivery after the subscription
    // is re-established, bounded so a long outage cannot grow memory
    // without limit. With a spill directory configured the full backlog
    // goes to disk (.mft) and is replayed on reconnect; without one the
    // oldest record is dropped (recent telemetry matters most).
    if (buffer_.size() > hooks_.outage_buffer_max) {
      if (!hooks_.spill_dir.empty()) {
        spill_buffer();
      } else {
        buffer_.erase(buffer_.begin());
        records_dropped_outage_->inc();
      }
    }
    return;
  }
  std::uint16_t max_rows = 0xffff;
  for (const auto& sub : subscriptions_)
    max_rows = std::min(max_rows, sub.action.max_rows);
  if (buffer_.size() >= max_rows) flush();
  // A backpressured transport makes flush() defer, so the buffer can grow
  // past the row cap even while subscribed: bound it exactly like the
  // outage backlog (spill to disk, or drop the oldest).
  if (buffer_.size() > hooks_.outage_buffer_max) {
    if (!hooks_.spill_dir.empty()) {
      spill_buffer();
    } else {
      buffer_.erase(buffer_.begin());
      records_dropped_outage_->inc();
    }
  }
}

void RicAgent::flush() {
  if (subscriptions_.empty()) return;
  // Backlog spilled under backpressure is replayed in front of the RAM
  // buffer once the transport has headroom again (ordering preserved:
  // spilled records predate everything still in RAM).
  if (!spill_paths_.empty() &&
      (!hooks_.transport_ready || hooks_.transport_ready(0)))
    replay_spill();
  if (buffer_.empty()) return;

  std::uint16_t max_rows = 0xffff;
  for (const auto& sub : subscriptions_)
    max_rows = std::min(max_rows, sub.action.max_rows);
  if (max_rows == 0) max_rows = 1;

  // A post-outage backlog can exceed the subscription's row cap: report it
  // as multiple batches, each with its own sequence number.
  std::size_t offset = 0;
  bool first_chunk = true;
  while (offset < buffer_.size()) {
    std::size_t count =
        std::min<std::size_t>(max_rows, buffer_.size() - offset);

    // Probe the transport BEFORE consuming a sequence number or touching
    // the retransmission ring: a refused batch is deferred, not half-sent.
    // The records stay buffered (bounded by the outage spill machinery)
    // and the periodic flush retries, so the sequence stream stays
    // gap-free under backpressure. A refused batch is first halved and
    // re-probed — smaller reports keep flowing through a congested
    // channel, and a post-stall backlog whose full-size chunk could NEVER
    // fit still drains instead of livelocking. The margin covers E2AP +
    // frame overhead; with multiple subscribers only the first PDU is
    // probed — a same-moment refusal of a sibling copy is recovered by
    // the RIC's NACK machinery like any other transport loss.
    oran::e2sm::IndicationHeader header;
    Bytes encoded_header;
    Bytes encoded_message;
    bool deferred = false;
    for (;;) {
      header = {};
      header.collect_start_us =
          first_chunk ? buffer_start_.us : buffer_[offset].timestamp_us;
      header.gnb_id = buffer_[offset].gnb_id;
      header.cell = buffer_[offset].cell;

      oran::e2sm::IndicationMessage message;
      message.rows.reserve(count);
      for (std::size_t i = offset; i < offset + count; ++i)
        message.rows.push_back(buffer_[i].to_kv_bytes());

      // The same report batch goes to every subscriber of the function.
      encoded_header = encode_indication_header(header);
      encoded_message = encode_indication_message(message);
      if (!hooks_.transport_ready ||
          hooks_.transport_ready(encoded_header.size() +
                                 encoded_message.size() + 64))
        break;
      if (count == 1) {
        deferred = true;
        break;
      }
      count /= 2;
    }
    if (deferred) break;
    std::uint32_t sequence = next_sequence_++;
    std::int64_t sent_at_us = hooks_.now ? hooks_.now().us : 0;
    // Collection-to-send span for this batch: starts when the first
    // buffered record was captured, ends at first transmission.
    obs_->tracer.record("agent.encode",
                        (node_id_ << 32) | sequence, /*parent_id=*/0,
                        SimTime{header.collect_start_us},
                        SimTime{sent_at_us});
    retx_ring_.push_back(
        SentBatch{sequence, encoded_header, encoded_message, sent_at_us});
    if (retx_ring_.size() > kRetxRingCapacity) retx_ring_.pop_front();
    for (const auto& sub : subscriptions_) {
      oran::RicIndication indication;
      indication.request_id = sub.request_id;
      indication.ran_function_id = oran::e2sm::kMobiFlowFunctionId;
      indication.action_id = sub.action_id;
      indication.sequence_number = sequence;
      indication.sent_at_us = sent_at_us;
      indication.type = oran::RicIndicationType::kReport;
      indication.header = encoded_header;
      indication.message = encoded_message;
      hooks_.to_ric(node_id_, encode_e2ap(indication));
      indications_sent_->inc();
    }
    offset += count;
    first_chunk = false;
  }
  // Consume only what was actually reported; a deferred tail stays put
  // and its collection-start follows the oldest remaining record.
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(offset));
  if (!buffer_.empty()) buffer_start_ = SimTime{buffer_.front().timestamp_us};
}

std::string RicAgent::spill_path(std::uint64_t seq) const {
  return hooks_.spill_dir + "/node" + std::to_string(node_id_) + ".spill." +
         std::to_string(seq) + ".mft";
}

void RicAgent::spill_buffer() {
  Trace trace;
  for (Record& record : buffer_) trace.add(std::move(record));
  std::string path = spill_path(next_spill_seq_);
  Status saved = trace.save(path);
  if (!saved) {
    // Disk unavailable: degrade to the RAM-only drop-oldest policy.
    XSEC_LOG_WARN("agent", "node ", node_id_, " spill to ", path,
                  " failed (", saved.error().message, "); dropping oldest");
    buffer_.erase(buffer_.begin());
    records_dropped_outage_->inc();
    return;
  }
  ++next_spill_seq_;
  spill_paths_.push_back(std::move(path));
  records_spilled_->inc(buffer_.size());
  spill_files_->inc();
  buffer_.clear();
}

void RicAgent::replay_spill() {
  if (spill_paths_.empty()) return;
  std::vector<Record> backlog;
  for (const std::string& path : spill_paths_) {
    auto trace = Trace::load(path);
    if (!trace) {
      XSEC_LOG_WARN("agent", "node ", node_id_, " spill file ", path,
                    " unreadable (", trace.error().message, "); skipped");
    } else {
      records_replayed_->inc(trace.value().size());
      for (const auto& entry : trace.value().entries())
        backlog.push_back(entry.record);
    }
    std::remove(path.c_str());
  }
  spill_paths_.clear();
  if (backlog.empty()) return;
  // Spilled records predate everything still in RAM.
  backlog.insert(backlog.end(), std::make_move_iterator(buffer_.begin()),
                 std::make_move_iterator(buffer_.end()));
  buffer_ = std::move(backlog);
  buffer_start_ = SimTime{buffer_.front().timestamp_us};
}

void RicAgent::discard_spill() {
  for (const std::string& path : spill_paths_) std::remove(path.c_str());
  spill_paths_.clear();
}

void RicAgent::handle_nack(const oran::RicIndicationNack& nack) {
  // A batched NACK may carry ranges for several subscriptions (the RIC
  // coalesces per node); resolve each range's subscription independently.
  for (const auto& range : nack.ranges) {
    const Subscription* sub = nullptr;
    for (const auto& s : subscriptions_) {
      if (s.request_id == range.request_id) {
        sub = &s;
        break;
      }
    }
    if (!sub) continue;  // subscription torn down since the batch was sent
    for (std::uint64_t seq = range.first_sequence; seq <= range.last_sequence;
         ++seq) {
      for (const auto& batch : retx_ring_) {
        if (batch.sequence != seq) continue;
        oran::RicIndication indication;
        indication.request_id = sub->request_id;
        indication.ran_function_id = oran::e2sm::kMobiFlowFunctionId;
        indication.action_id = sub->action_id;
        indication.sequence_number = batch.sequence;
        indication.sent_at_us = batch.sent_at_us;
        indication.type = oran::RicIndicationType::kReport;
        indication.header = batch.header;
        indication.message = batch.message;
        hooks_.to_ric(node_id_, encode_e2ap(indication));
        indications_retransmitted_->inc();
        break;
      }
    }
  }
}

void RicAgent::on_link_state(bool up) {
  link_up_ = up;
  if (up) return;  // a pending backoff attempt will land the re-setup
  // Link lost: the RIC tears down everything keyed to this connection, so
  // local subscription state is stale. Keep collecting into the outage
  // buffer (emit() path) and start the reconnect loop.
  subscriptions_.clear();
  retx_ring_.clear();
  XSEC_LOG_WARN("agent", "node ", node_id_,
                " lost E2 link; entering reconnect backoff");
  if (hooks_.try_connect && !reconnect_pending_) {
    backoff_ms_ = kBackoffBaseMs;
    schedule_reconnect();
  }
}

void RicAgent::schedule_reconnect() {
  reconnect_pending_ = true;
  // Exponential backoff with +/-20% jitter so a fleet of agents does not
  // retry in lockstep after a shared outage.
  double jitter = backoff_rng_.uniform(0.8, 1.2);
  SimDuration delay =
      SimDuration::from_ms(static_cast<double>(backoff_ms_) * jitter);
  backoff_ms_ = std::min(backoff_ms_ * 2, kBackoffCapMs);
  hooks_.schedule(delay, [this] { attempt_reconnect(); });
}

void RicAgent::attempt_reconnect() {
  reconnect_pending_ = false;
  reconnect_attempts_->inc();
  auto connected = hooks_.try_connect();
  if (connected) {
    reconnects_->inc();
    backoff_ms_ = kBackoffBaseMs;
    XSEC_LOG_INFO("agent", "node ", node_id_, " re-established E2 setup");
    return;
  }
  schedule_reconnect();
}

void RicAgent::arm_flush_timer() {
  if (flush_timer_armed_ || subscriptions_.empty()) return;
  flush_timer_armed_ = true;
  std::uint32_t period_ms = 0xffffffff;
  for (const auto& sub : subscriptions_)
    period_ms = std::min(period_ms, sub.trigger.report_period_ms);
  hooks_.schedule(SimDuration::from_ms(period_ms), [this] {
    flush_timer_armed_ = false;
    flush();
    if (!subscriptions_.empty()) arm_flush_timer();
  });
}

}  // namespace xsec::mobiflow
