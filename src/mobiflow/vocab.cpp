#include "mobiflow/vocab.hpp"

#include "common/names.hpp"

namespace xsec::mobiflow::vocab {

namespace {

constexpr auto kProtocolNames = make_name_table<Protocol>("?", "RRC", "NAS");

constexpr auto kDirectionNames = make_name_table<Direction>("UL", "DL");

constexpr auto kMsgNames = make_name_table<MsgType>(
    "?",
    // RRC, rrc_all_names() order
    "RRCSetupRequest", "RRCSetupComplete", "RRCSecurityModeComplete",
    "RRCSecurityModeFailure", "UECapabilityInformation",
    "RRCReconfigurationComplete", "ULInformationTransfer", "MeasurementReport",
    "RRCReestablishmentRequest", "RRCSetup", "RRCReject",
    "RRCSecurityModeCommand", "UECapabilityEnquiry", "RRCReconfiguration",
    "DLInformationTransfer", "RRCRelease", "Paging",
    // NAS, nas_all_names() order
    "RegistrationRequest", "AuthenticationResponse", "AuthenticationFailure",
    "SecurityModeComplete", "SecurityModeReject", "IdentityResponse",
    "RegistrationComplete", "ServiceRequest", "DeregistrationRequest",
    "AuthenticationRequest", "AuthenticationReject", "SecurityModeCommand",
    "IdentityRequest", "RegistrationAccept", "RegistrationReject",
    "ServiceAccept", "ServiceReject", "DeregistrationAccept",
    "ConfigurationUpdateCommand");
static_assert(kMsgNames.size() == kMsgTypeCount);

constexpr auto kCipherNames =
    make_name_table<CipherAlg>("", "NEA0", "NEA1", "NEA2", "NEA3");
static_assert(kCipherNames.size() == kCipherAlgCount);

constexpr auto kIntegrityNames =
    make_name_table<IntegrityAlg>("", "NIA0", "NIA1", "NIA2", "NIA3");
static_assert(kIntegrityNames.size() == kIntegrityAlgCount);

constexpr auto kCauseNames = make_name_table<EstablishmentCause>(
    "", "emergency", "highPriorityAccess", "mt-Access", "mo-Signalling",
    "mo-Data", "mo-VoiceCall", "mo-VideoCall", "mo-SMS", "mps-PriorityAccess",
    "mcs-PriorityAccess");
static_assert(kCauseNames.size() == kEstablishmentCauseCount);

template <typename E, std::size_t N>
Result<E> strict_parse(const NameTable<E, N>& table, std::string_view name,
                       const char* what) {
  if (auto found = table.find(name)) return *found;
  return Error::make("malformed",
                     std::string("unknown ") + what + " name: " +
                         std::string(name));
}

}  // namespace

std::string_view to_name(Protocol p) { return kProtocolNames.name(p); }
std::string_view to_name(Direction d) { return kDirectionNames.name(d); }
std::string_view to_name(MsgType m) { return kMsgNames.name(m); }
std::string_view to_name(CipherAlg a) { return kCipherNames.name(a); }
std::string_view to_name(IntegrityAlg a) { return kIntegrityNames.name(a); }
std::string_view to_name(EstablishmentCause c) { return kCauseNames.name(c); }

Result<Protocol> parse_protocol(std::string_view name) {
  return strict_parse(kProtocolNames, name, "protocol");
}
Result<MsgType> parse_msg(std::string_view name) {
  return strict_parse(kMsgNames, name, "message");
}
Result<Direction> parse_direction(std::string_view name) {
  return strict_parse(kDirectionNames, name, "direction");
}
Result<CipherAlg> parse_cipher(std::string_view name) {
  return strict_parse(kCipherNames, name, "cipher algorithm");
}
Result<IntegrityAlg> parse_integrity(std::string_view name) {
  return strict_parse(kIntegrityNames, name, "integrity algorithm");
}
Result<EstablishmentCause> parse_cause(std::string_view name) {
  return strict_parse(kCauseNames, name, "establishment cause");
}

Protocol protocol_or_unknown(std::string_view name) {
  return kProtocolNames.find(name).value_or(Protocol::kUnknown);
}
MsgType msg_or_unknown(std::string_view name) {
  return kMsgNames.find(name).value_or(MsgType::kUnknown);
}
CipherAlg cipher_or_none(std::string_view name) {
  return kCipherNames.find(name).value_or(CipherAlg::kNone);
}
IntegrityAlg integrity_or_none(std::string_view name) {
  return kIntegrityNames.find(name).value_or(IntegrityAlg::kNone);
}
EstablishmentCause cause_or_none(std::string_view name) {
  return kCauseNames.find(name).value_or(EstablishmentCause::kNone);
}

Protocol protocol_of(MsgType m) {
  auto v = static_cast<std::uint8_t>(m);
  if (v >= kFirstNasMsg && v < kMsgTypeCount) return Protocol::kNas;
  if (v >= kFirstRrcMsg) return Protocol::kRrc;
  return Protocol::kUnknown;
}

}  // namespace xsec::mobiflow::vocab
