// Event-driven E2 transport pump.
//
// One epoll instance watches every registered channel: kernel-socket
// backends (UDS) contribute their receive fd, while user-space backends
// (inproc, shm ring) signal through a shared eventfd doorbell. Producers
// mark a channel dirty on send — a dedup flag plus an O(1) push onto the
// pump's dirty list — so the common case (work already known in user
// space) costs zero syscalls; the doorbell/epoll path only pays off when
// the loop is parked in wait_readable().
//
// Drains coalesce syscalls instead of paying one kernel entry per frame:
// the UDS send side stages frames in user space and flushes the whole
// backlog with a single writev(2); the receive side reads with a large
// buffer and stops on a short read (SOCK_STREAM returns min(queued, len),
// so a short read proves the queue is empty — no trailing EAGAIN probe).
//
// Determinism: the pump changes HOW bytes cross a channel (batched
// syscalls, readiness wakeups), never WHEN frames are delivered — drains
// still happen at the same logical points the polled mode pumps, in the
// same frame order, so every exported metric stays byte-identical across
// pump modes. Its own instrumentation (wakeups, syscalls) is
// host-dependent by nature and therefore lives in the `Observability::host`
// registry, outside the deterministic exports.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "obs/trace.hpp"
#include "transport/channel.hpp"

namespace xsec::transport {

enum class PumpMode : std::uint8_t {
  kPolled = 0,  // historical: the sim loop pumps channels directly
  kEpoll,       // event-driven: EpollPump readiness + batched I/O
};

std::string_view to_string(PumpMode mode);
/// Parses "polled" / "epoll"; anything else is an error.
Result<PumpMode> parse_pump_mode(std::string_view text);

/// Resolves the effective pump mode. An explicit `configured` value wins;
/// when it is empty the XSEC_E2_PUMP environment variable fills the
/// default — the same precedence XSEC_E2_TRANSPORT uses — falling back to
/// polled. Invalid values warn and fall back to polled.
PumpMode resolve_pump_mode(const std::string& configured);

class EpollPump {
 public:
  /// Builds the epoll instance + eventfd doorbell. Returns nullptr when
  /// the kernel refuses (fd limits); callers fall back to polled mode.
  /// Instrumentation binds into `obs->host` (a private bundle is created
  /// when obs is null).
  static std::unique_ptr<EpollPump> create(obs::Observability* obs);

  ~EpollPump();
  EpollPump(const EpollPump&) = delete;
  EpollPump& operator=(const EpollPump&) = delete;

  /// Registers a channel: its readable_fd (if any) joins the epoll set and
  /// its sends start ringing the doorbell / dirty list.
  void add(E2Channel* ch);
  void remove(E2Channel* ch);

  /// Marks a channel as having undelivered work. O(1), deduplicated;
  /// rings the eventfd doorbell only while the pump is parked in
  /// wait_readable() (so a waiting loop wakes without polling).
  void mark_dirty(E2Channel* ch);
  bool has_dirty() const { return dirty_count_ > 0; }

  /// Drains one channel (up to `max_frames`), counting the wakeup and the
  /// frames-per-syscall ratio for this pass. This is the targeted entry
  /// point the sim loop uses at each logical delivery, keeping delivery
  /// timing identical to polled mode.
  void drain(E2Channel* ch,
             std::size_t max_frames = E2Channel::kNoFrameLimit);

  /// Drains every ready channel: first the user-space dirty list (zero
  /// syscalls), then one epoll sweep for fd readiness the dirty list
  /// cannot know about. Returns frames delivered.
  std::size_t service();

  /// Blocks until work is ready or `timeout_ms` expires. Spins briefly
  /// (adaptive: the budget grows on spin hits, shrinks on idle timeouts)
  /// before arming the doorbell and parking in epoll_wait. Returns true
  /// when a subsequent service() has work to do.
  bool wait_readable(int timeout_ms);

  /// Upper bound for the adaptive spin budget (iterations).
  void set_max_spin_iterations(std::size_t n) { max_spin_ = n; }

  std::size_t watched() const { return channels_.size(); }
  std::uint64_t wakeups() const;
  std::uint64_t syscalls() const;
  std::uint64_t idle_waits() const;
  /// Test hook: the doorbell eventfd, so tests can ring it externally.
  int doorbell_fd_for_test() const { return doorbell_fd_; }

 private:
  friend class E2Channel;

  EpollPump(int epoll_fd, int doorbell_fd, obs::Observability* obs);

  void note_syscalls(std::uint64_t n);  // channel I/O, forwarded
  void count_own_syscall();             // epoll_wait / eventfd ops
  void clear_dirty_flag(E2Channel* ch);

  int epoll_fd_;
  int doorbell_fd_;
  bool armed_ = false;  // parked in epoll_wait; sends must ring the bell
  std::size_t max_spin_ = 256;
  std::size_t spin_budget_ = 1;
  std::vector<E2Channel*> channels_;
  std::vector<E2Channel*> dirty_;
  std::vector<E2Channel*> scratch_;  // swapped with dirty_ during service
  std::size_t dirty_count_ = 0;

  std::unique_ptr<obs::Observability> own_obs_;
  obs::Counter* wakeups_ = nullptr;
  obs::Counter* syscalls_ = nullptr;
  obs::Counter* idle_waits_ = nullptr;
  obs::Histogram* frames_per_wakeup_ = nullptr;
  obs::Histogram* frames_per_syscall_ = nullptr;
};

}  // namespace xsec::transport
