#include "transport/channel.hpp"

namespace xsec::transport {

std::string_view to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::kInProcess:
      return "inproc";
    case BackendKind::kUds:
      return "uds";
    case BackendKind::kShm:
      return "shm";
  }
  return "inproc";
}

Result<BackendKind> parse_backend(std::string_view text) {
  if (text == "inproc") return BackendKind::kInProcess;
  if (text == "uds") return BackendKind::kUds;
  if (text == "shm") return BackendKind::kShm;
  return Error::make("config", "unknown transport backend: " +
                                   std::string(text));
}

namespace {

/// Historical in-process behaviour behind the channel interface. Frames
/// accumulate in `buffer_`; pump() swaps it with a second buffer and
/// parses frames in place, so sends nested inside delivery side effects
/// append to the *other* buffer and never invalidate the span currently
/// being delivered. A budgeted pump leaves `pump_pos_` mid-buffer and the
/// next pump resumes there, preserving stream order (leftovers drain
/// before the spare is swapped back in). Swap/clear preserve vector
/// capacity — after warmup the steady state performs no heap allocation.
class InProcChannel final : public E2Channel {
 public:
  explicit InProcChannel(std::size_t capacity) : E2Channel(capacity) {
    buffer_.reserve(16 * 1024);
    pump_buf_.reserve(16 * 1024);
  }

  bool send(std::span<const std::uint8_t> payload) override {
    const std::size_t fs = framed_size(payload.size());
    if (!writable(fs)) return false;
    append_frame(buffer_, payload);
    pending_ += fs;
    notify_pump();
    return true;
  }

  void pump(std::size_t max_frames) override {
    if (reader_paused_ || pumping_) return;
    pumping_ = true;
    std::size_t budget = max_frames;
    std::size_t skipped = 0;
    for (;;) {
      if (pump_pos_ >= pump_buf_.size()) {
        if (skipped > 0) {  // close the corrupt region at the batch edge
          pending_ -= skipped;
          if (corrupt_) corrupt_(skipped);
          skipped = 0;
        }
        pump_buf_.clear();
        pump_pos_ = 0;
        if (buffer_.empty()) break;
        pump_buf_.swap(buffer_);  // buffer_ is now the cleared spare
      }
      if (budget == 0) break;
      std::span<const std::uint8_t> rest(pump_buf_.data() + pump_pos_,
                                         pump_buf_.size() - pump_pos_);
      std::size_t consumed = 0;
      std::span<const std::uint8_t> payload;
      switch (parse_frame(rest, consumed, payload)) {
        case FrameStatus::kOk:
          if (skipped > 0) {
            pending_ -= skipped;
            if (corrupt_) corrupt_(skipped);
            skipped = 0;
          }
          pump_pos_ += consumed;
          pending_ -= consumed;
          ++frames_delivered_;
          --budget;
          if (sink_) sink_(payload);
          break;
        case FrameStatus::kNeedMore:
          // send() only ever appends whole frames; a tail fragment means
          // corruption. Drop it rather than stall the queue.
          skipped += pump_buf_.size() - pump_pos_;
          pump_pos_ = pump_buf_.size();
          break;
        default:
          ++pump_pos_;
          ++skipped;
          break;
      }
    }
    if (skipped > 0) {
      pending_ -= skipped;
      if (corrupt_) corrupt_(skipped);
    }
    pumping_ = false;
  }

  BackendKind kind() const override { return BackendKind::kInProcess; }

 private:
  Bytes buffer_;
  Bytes pump_buf_;
  std::size_t pump_pos_ = 0;
};

}  // namespace

std::unique_ptr<E2Channel> make_uds_channel(std::size_t capacity);
std::unique_ptr<E2Channel> make_shm_channel(std::size_t capacity);

std::unique_ptr<E2Channel> make_channel(BackendKind kind,
                                        std::size_t capacity) {
  switch (kind) {
    case BackendKind::kInProcess:
      return std::make_unique<InProcChannel>(capacity);
    case BackendKind::kUds:
      return make_uds_channel(capacity);
    case BackendKind::kShm:
      return make_shm_channel(capacity);
  }
  return std::make_unique<InProcChannel>(capacity);
}

}  // namespace xsec::transport
