#include "transport/frame.hpp"

#include <cstring>

namespace xsec::transport {

namespace {
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint32_t read_u32_be(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

void write_u32_be(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}
}  // namespace

std::uint32_t frame_checksum(std::span<const std::uint8_t> payload) {
  std::uint64_t h = kFnvOffset;
  for (std::uint8_t b : payload) {
    h ^= b;
    h *= kFnvPrime;
  }
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

void write_frame_header(std::uint8_t* dst,
                        std::span<const std::uint8_t> payload) {
  dst[0] = kFrameMagic0;
  dst[1] = kFrameMagic1;
  write_u32_be(dst + 2, static_cast<std::uint32_t>(payload.size()));
  write_u32_be(dst + 6, frame_checksum(payload));
}

void append_frame(Bytes& out, std::span<const std::uint8_t> payload) {
  const std::size_t base = out.size();
  out.resize(base + kFrameHeaderBytes + payload.size());
  std::uint8_t* p = out.data() + base;
  write_frame_header(p, payload);
  if (!payload.empty())
    std::memcpy(p + kFrameHeaderBytes, payload.data(), payload.size());
}

FrameStatus parse_frame(std::span<const std::uint8_t> buf,
                        std::size_t& consumed,
                        std::span<const std::uint8_t>& payload) {
  consumed = 0;
  if (buf.size() < kFrameHeaderBytes) {
    // A short buffer that cannot be the start of a frame is corrupt, not
    // incomplete — report it so resync advances instead of waiting forever.
    if (!buf.empty() && buf[0] != kFrameMagic0) return FrameStatus::kBadMagic;
    if (buf.size() >= 2 && buf[1] != kFrameMagic1)
      return FrameStatus::kBadMagic;
    return FrameStatus::kNeedMore;
  }
  if (buf[0] != kFrameMagic0 || buf[1] != kFrameMagic1)
    return FrameStatus::kBadMagic;
  const std::size_t len = read_u32_be(buf.data() + 2);
  if (len > kMaxFramePayload) return FrameStatus::kBadLength;
  if (buf.size() < kFrameHeaderBytes + len) return FrameStatus::kNeedMore;
  std::span<const std::uint8_t> body = buf.subspan(kFrameHeaderBytes, len);
  if (frame_checksum(body) != read_u32_be(buf.data() + 6))
    return FrameStatus::kBadChecksum;
  consumed = kFrameHeaderBytes + len;
  payload = body;
  return FrameStatus::kOk;
}

std::size_t FrameAssembler::feed(std::span<const std::uint8_t> chunk,
                                 const Sink& sink, std::size_t max_frames) {
  // Compact before appending so the arena stays bounded by (largest
  // in-flight frame + chunk) instead of growing with total traffic.
  if (read_pos_ > 0) {
    if (read_pos_ == arena_.size()) {
      arena_.clear();
    } else {
      arena_.erase(arena_.begin(),
                   arena_.begin() + static_cast<std::ptrdiff_t>(read_pos_));
    }
    read_pos_ = 0;
  }
  arena_.insert(arena_.end(), chunk.begin(), chunk.end());
  return drain(sink, max_frames);
}

std::size_t FrameAssembler::drain(const Sink& sink, std::size_t max_frames) {
  std::size_t delivered = 0;
  std::size_t skipped = 0;
  while (read_pos_ < arena_.size() && delivered < max_frames) {
    std::span<const std::uint8_t> rest(arena_.data() + read_pos_,
                                       arena_.size() - read_pos_);
    std::size_t consumed = 0;
    std::span<const std::uint8_t> payload;
    switch (parse_frame(rest, consumed, payload)) {
      case FrameStatus::kOk:
        if (skipped > 0 && on_corrupt_) {
          on_corrupt_(skipped);
          skipped = 0;
        }
        read_pos_ += consumed;
        ++delivered;
        sink(payload, consumed);
        break;
      case FrameStatus::kNeedMore:
        if (skipped > 0 && on_corrupt_) on_corrupt_(skipped);
        return delivered;
      case FrameStatus::kBadMagic:
      case FrameStatus::kBadLength:
      case FrameStatus::kBadChecksum:
        // Resynchronize: slide one byte and retry until a valid frame
        // boundary (or the end of the buffered bytes) is found.
        ++read_pos_;
        ++skipped;
        break;
    }
  }
  if (skipped > 0 && on_corrupt_) on_corrupt_(skipped);
  return delivered;
}

}  // namespace xsec::transport
