// Process-boundary channel abstraction for the E2 interface.
//
// A channel moves opaque frames (transport/frame.hpp) in one direction.
// Three interchangeable backends exist:
//
//   kInProcess — double-buffered byte queue inside the sim process (the
//                historical behaviour; zero syscalls).
//   kUds       — nonblocking AF_UNIX SOCK_STREAM socketpair; frames cross
//                a real kernel socket and are reassembled from arbitrary
//                partial reads into a reusable arena.
//   kShm       — shared-memory SPSC byte ring (memfd + mirror double
//                mapping) so every frame is virtually contiguous and the
//                receive path hands out in-place spans with no copy.
//
// All backends share the same *logical* capacity accounting in user space
// (`pending bytes = framed bytes sent − framed bytes delivered`), so
// backpressure decisions — and therefore every exported metric — are
// byte-identical no matter which backend carries the frames.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string_view>

#include "common/result.hpp"
#include "transport/frame.hpp"

namespace xsec::transport {

class EpollPump;

enum class BackendKind : std::uint8_t {
  kInProcess = 0,
  kUds,
  kShm,
};

std::string_view to_string(BackendKind kind);
/// Parses "inproc" / "uds" / "shm"; anything else is an error.
Result<BackendKind> parse_backend(std::string_view text);

/// Default logical capacity of a link direction: enough for thousands of
/// batched indications, small enough that a paused reader trips
/// backpressure quickly in tests.
inline constexpr std::size_t kDefaultChannelCapacity = 256 * 1024;

/// One direction of an E2 link. Single-threaded by design: the sim event
/// loop is the only caller of send()/pump(); `pump()` may re-enter
/// `send()` on the same channel through delivery side effects (control
/// chains), and every backend guarantees that frames being delivered stay
/// valid across such nested sends.
class E2Channel {
 public:
  /// Receives one completed frame's payload as an in-place view. The span
  /// is valid only for the duration of the call.
  using FrameSink = std::function<void(std::span<const std::uint8_t>)>;
  using CorruptHook = std::function<void(std::size_t skipped_bytes)>;

  /// No delivery limit for pump().
  static constexpr std::size_t kNoFrameLimit = static_cast<std::size_t>(-1);

  /// Deregisters from the pump (if any), so a channel destroyed first
  /// never leaves a dangling pointer in the pump's watch/dirty lists.
  virtual ~E2Channel();

  void set_sink(FrameSink sink) { sink_ = std::move(sink); }
  void set_corrupt_hook(CorruptHook hook) { corrupt_ = std::move(hook); }

  /// Frames `payload` and enqueues it. Returns false — without enqueuing
  /// anything — when the logical capacity cannot hold the frame.
  virtual bool send(std::span<const std::uint8_t> payload) = 0;

  /// Delivers queued frames to the sink, at most `max_frames` of them;
  /// frames past the budget stay queued (pending accounting untouched)
  /// for a later pump. No-op while the reader is paused or a pump is
  /// already running (nested pumps from delivery side effects fold into
  /// the outer one).
  virtual void pump(std::size_t max_frames) = 0;
  /// Delivers every queued frame to the sink.
  void pump() { pump(kNoFrameLimit); }

  /// File descriptor that becomes readable when queued bytes await a pump
  /// (kernel-socket backends); -1 when readiness lives purely in user
  /// space (inproc / shm, which signal through the pump's doorbell).
  virtual int readable_fd() const { return -1; }

  /// Test seam: caps the bytes any single kernel write may accept, forcing
  /// partial writev()/send() acceptance so short-write resume paths can be
  /// exercised at every byte offset. 0 disables the cap. No-op on
  /// backends that perform no kernel writes.
  virtual void set_max_write_per_syscall_for_test(std::size_t) {}

  /// Kernel entries (send/recv/writev) this channel has made. Counted in
  /// both pump modes so polled vs event-driven costs are comparable.
  std::uint64_t io_syscalls() const { return io_syscalls_; }
  /// Frames delivered to the sink over the channel's lifetime.
  std::uint64_t frames_delivered() const { return frames_delivered_; }

  /// The event-driven pump this channel is registered with (nullptr in
  /// polled mode). Set by EpollPump::add/remove.
  EpollPump* pump_owner() const { return pump_; }

  /// Framed bytes enqueued but not yet delivered.
  std::size_t pending_bytes() const { return pending_; }
  std::size_t capacity() const { return capacity_; }
  bool writable(std::size_t frame_bytes) const {
    return pending_ + frame_bytes <= capacity_;
  }

  /// Test hook: a paused reader stops pump() from draining, modelling a
  /// slow consumer so backpressure paths can be exercised deterministically.
  void set_reader_paused(bool paused) { reader_paused_ = paused; }
  bool reader_paused() const { return reader_paused_; }

  virtual BackendKind kind() const = 0;

 protected:
  explicit E2Channel(std::size_t capacity) : capacity_(capacity) {}

  /// Marks this channel dirty on its pump (no-op in polled mode). Called
  /// by backends after every successful send so the event loop learns
  /// about user-space readiness without a syscall.
  void notify_pump();
  /// Counts `n` kernel entries (and forwards them to the pump's
  /// `transport.syscalls` instrument when one is attached).
  void count_io(std::uint64_t n = 1);

  FrameSink sink_;
  CorruptHook corrupt_;
  std::size_t capacity_;
  std::size_t pending_ = 0;
  bool reader_paused_ = false;
  bool pumping_ = false;
  std::uint64_t io_syscalls_ = 0;
  std::uint64_t frames_delivered_ = 0;

 private:
  friend class EpollPump;
  EpollPump* pump_ = nullptr;
  /// True while the channel sits on the pump's dirty list (dedup flag).
  bool pump_dirty_ = false;
};

/// Creates a channel of the requested backend. UDS and shm construction
/// can fail (fd/mmap limits); returns nullptr so the caller can fall back
/// to in-process with a warning rather than aborting the sim.
std::unique_ptr<E2Channel> make_channel(BackendKind kind,
                                        std::size_t capacity);

}  // namespace xsec::transport
