// Process-boundary channel abstraction for the E2 interface.
//
// A channel moves opaque frames (transport/frame.hpp) in one direction.
// Three interchangeable backends exist:
//
//   kInProcess — double-buffered byte queue inside the sim process (the
//                historical behaviour; zero syscalls).
//   kUds       — nonblocking AF_UNIX SOCK_STREAM socketpair; frames cross
//                a real kernel socket and are reassembled from arbitrary
//                partial reads into a reusable arena.
//   kShm       — shared-memory SPSC byte ring (memfd + mirror double
//                mapping) so every frame is virtually contiguous and the
//                receive path hands out in-place spans with no copy.
//
// All backends share the same *logical* capacity accounting in user space
// (`pending bytes = framed bytes sent − framed bytes delivered`), so
// backpressure decisions — and therefore every exported metric — are
// byte-identical no matter which backend carries the frames.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string_view>

#include "common/result.hpp"
#include "transport/frame.hpp"

namespace xsec::transport {

enum class BackendKind : std::uint8_t {
  kInProcess = 0,
  kUds,
  kShm,
};

std::string_view to_string(BackendKind kind);
/// Parses "inproc" / "uds" / "shm"; anything else is an error.
Result<BackendKind> parse_backend(std::string_view text);

/// Default logical capacity of a link direction: enough for thousands of
/// batched indications, small enough that a paused reader trips
/// backpressure quickly in tests.
inline constexpr std::size_t kDefaultChannelCapacity = 256 * 1024;

/// One direction of an E2 link. Single-threaded by design: the sim event
/// loop is the only caller of send()/pump(); `pump()` may re-enter
/// `send()` on the same channel through delivery side effects (control
/// chains), and every backend guarantees that frames being delivered stay
/// valid across such nested sends.
class E2Channel {
 public:
  /// Receives one completed frame's payload as an in-place view. The span
  /// is valid only for the duration of the call.
  using FrameSink = std::function<void(std::span<const std::uint8_t>)>;
  using CorruptHook = std::function<void(std::size_t skipped_bytes)>;

  virtual ~E2Channel() = default;

  void set_sink(FrameSink sink) { sink_ = std::move(sink); }
  void set_corrupt_hook(CorruptHook hook) { corrupt_ = std::move(hook); }

  /// Frames `payload` and enqueues it. Returns false — without enqueuing
  /// anything — when the logical capacity cannot hold the frame.
  virtual bool send(std::span<const std::uint8_t> payload) = 0;

  /// Delivers every queued frame to the sink. No-op while the reader is
  /// paused or a pump is already running (nested pumps from delivery side
  /// effects fold into the outer one).
  virtual void pump() = 0;

  /// Framed bytes enqueued but not yet delivered.
  std::size_t pending_bytes() const { return pending_; }
  std::size_t capacity() const { return capacity_; }
  bool writable(std::size_t frame_bytes) const {
    return pending_ + frame_bytes <= capacity_;
  }

  /// Test hook: a paused reader stops pump() from draining, modelling a
  /// slow consumer so backpressure paths can be exercised deterministically.
  void set_reader_paused(bool paused) { reader_paused_ = paused; }
  bool reader_paused() const { return reader_paused_; }

  virtual BackendKind kind() const = 0;

 protected:
  explicit E2Channel(std::size_t capacity) : capacity_(capacity) {}

  FrameSink sink_;
  CorruptHook corrupt_;
  std::size_t capacity_;
  std::size_t pending_ = 0;
  bool reader_paused_ = false;
  bool pumping_ = false;
};

/// Creates a channel of the requested backend. UDS and shm construction
/// can fail (fd/mmap limits); returns nullptr so the caller can fall back
/// to in-process with a warning rather than aborting the sim.
std::unique_ptr<E2Channel> make_channel(BackendKind kind,
                                        std::size_t capacity);

}  // namespace xsec::transport
