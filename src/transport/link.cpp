#include "transport/link.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/log.hpp"
#include "transport/pump.hpp"

namespace xsec::transport {

BackendKind resolve_backend(const std::string& configured) {
  // Same precedence as XSEC_RIC_SHARDS: an explicit config wins, the
  // environment fills the default. Tests that pin a backend stay pinned
  // even when a sanitize sweep exports XSEC_E2_TRANSPORT for the run.
  if (!configured.empty()) {
    auto parsed = parse_backend(configured);
    if (parsed) return parsed.value();
    XSEC_LOG_WARN("transport", "invalid configured E2 transport '",
                  configured, "'; using inproc");
    return BackendKind::kInProcess;
  }
  const char* env = std::getenv("XSEC_E2_TRANSPORT");
  if (env != nullptr && *env != '\0') {
    auto parsed = parse_backend(env);
    if (parsed) return parsed.value();
    XSEC_LOG_WARN("transport", "invalid XSEC_E2_TRANSPORT '", env,
                  "'; using inproc");
  }
  return BackendKind::kInProcess;
}

std::size_t resolve_capacity(std::size_t configured) {
  constexpr std::size_t kMaxCapacity = std::size_t{1} << 30;
  if (configured != 0) return std::min(configured, kMaxCapacity);
  // Same precedence and strict-parse shape as XSEC_RIC_SHARDS: negatives
  // and trailing garbage are rejected, an explicit config always wins.
  const char* env = std::getenv("XSEC_E2_CAPACITY");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(env, &end, 10);
    // strtoull tolerates leading whitespace and a sign; reject both so the
    // accepted grammar is exactly [0-9]+.
    if (errno == 0 && end != env && *end == '\0' &&
        env[0] >= '0' && env[0] <= '9' && v >= 1 && v <= kMaxCapacity) {
      return static_cast<std::size_t>(v);
    }
    XSEC_LOG_WARN("transport", "invalid XSEC_E2_CAPACITY '", env,
                  "'; using default");
  }
  return kDefaultChannelCapacity;
}

namespace {
std::unique_ptr<E2Channel> make_or_fallback(BackendKind kind,
                                            std::size_t capacity) {
  auto ch = make_channel(kind, capacity);
  if (!ch) {
    XSEC_LOG_WARN("transport", "failed to create ", to_string(kind),
                  " channel; falling back to inproc");
    ch = make_channel(BackendKind::kInProcess, capacity);
  }
  return ch;
}
}  // namespace

FramedLink::FramedLink(LinkConfig cfg, obs::Observability* obs) {
  if (!obs) {
    own_obs_ = std::make_unique<obs::Observability>();
    obs = own_obs_.get();
  }
  to_ric_ = make_or_fallback(cfg.backend, cfg.capacity);
  to_node_ = make_or_fallback(cfg.backend, cfg.capacity);
  tx_scratch_.reserve(16 * 1024);
  pump_ = cfg.pump;
  if (pump_ != nullptr) {
    pump_->add(to_ric_.get());
    pump_->add(to_node_.get());
  }

  // Global (unscoped) names: every link binds the same registry rows, so
  // the catalog stays fixed-size regardless of site count, and the values
  // are sums over all links — commutative, hence identical across shard
  // counts and backends.
  obs::MetricsRegistry& r = obs->metrics;
  frames_tx_ = &r.counter("transport.frames_tx");
  frames_rx_ = &r.counter("transport.frames_rx");
  bytes_tx_ = &r.counter("transport.bytes_tx");
  bytes_rx_ = &r.counter("transport.bytes_rx");
  backpressure_events_ = &r.counter("transport.backpressure_events");
  frames_corrupt_ = &r.counter("transport.frames_corrupt");
  ring_occupancy_ = &r.histogram("transport.ring_occupancy");
  frame_bytes_ = &r.histogram("transport.frame_bytes");
  flush_batch_ = &r.histogram("transport.flush_batch");

  auto corrupt = [this](std::size_t) { frames_corrupt_->inc(); };
  to_ric_->set_corrupt_hook(corrupt);
  to_node_->set_corrupt_hook(corrupt);
}

FramedLink::~FramedLink() {
  if (pump_ != nullptr) {
    pump_->remove(to_ric_.get());
    pump_->remove(to_node_.get());
  }
}

void FramedLink::set_ric_sink(DeliverSink sink) {
  to_ric_->set_sink([this, sink = std::move(sink)](
                        std::span<const std::uint8_t> payload) {
    ++ric_batch_;
    frames_rx_->inc();
    bytes_rx_->inc(framed_size(payload.size()));
    if (payload.size() < 8) {
      frames_corrupt_->inc();
      return;
    }
    std::uint64_t node_id = 0;
    for (int i = 0; i < 8; ++i) node_id = (node_id << 8) | payload[i];
    sink(node_id, payload.subspan(8));
  });
}

void FramedLink::set_node_sink(DeliverSink sink) {
  to_node_->set_sink([this, sink = std::move(sink)](
                         std::span<const std::uint8_t> payload) {
    ++node_batch_;
    frames_rx_->inc();
    bytes_rx_->inc(framed_size(payload.size()));
    if (payload.size() < 8) {
      frames_corrupt_->inc();
      return;
    }
    std::uint64_t node_id = 0;
    for (int i = 0; i < 8; ++i) node_id = (node_id << 8) | payload[i];
    sink(node_id, payload.subspan(8));
  });
}

bool FramedLink::enqueue(E2Channel* ch, std::uint64_t node_id,
                         const Bytes& pdu) {
  tx_scratch_.clear();
  tx_scratch_.reserve(8 + pdu.size());
  for (int i = 7; i >= 0; --i)
    tx_scratch_.push_back(static_cast<std::uint8_t>(node_id >> (8 * i)));
  tx_scratch_.insert(tx_scratch_.end(), pdu.begin(), pdu.end());

  ring_occupancy_->observe(ch->pending_bytes());
  if (!ch->send(tx_scratch_)) {
    backpressure_events_->inc();
    return false;
  }
  frames_tx_->inc();
  bytes_tx_->inc(framed_size(tx_scratch_.size()));
  frame_bytes_->observe(tx_scratch_.size());
  return true;
}

bool FramedLink::enqueue_to_ric(std::uint64_t node_id, const Bytes& pdu) {
  return enqueue(to_ric_.get(), node_id, pdu);
}

bool FramedLink::enqueue_to_node(std::uint64_t node_id, const Bytes& pdu) {
  return enqueue(to_node_.get(), node_id, pdu);
}

void FramedLink::pump(E2Channel* ch, bool& pumping, std::uint64_t& batch,
                      std::size_t max_frames) {
  // In event-driven mode the pump's drain wraps the channel pump with
  // wakeup / frames-per-syscall accounting and dirty-list upkeep; the
  // delivery order and timing are identical either way.
  if (pumping) {
    // Nested pump from a delivery side effect: the channel folds it into
    // the outer drain; don't reset the outer batch counter.
    if (pump_ != nullptr) {
      pump_->drain(ch, max_frames);
    } else {
      ch->pump(max_frames);
    }
    return;
  }
  pumping = true;
  batch = 0;
  if (pump_ != nullptr) {
    pump_->drain(ch, max_frames);
  } else {
    ch->pump(max_frames);
  }
  if (batch > 0) flush_batch_->observe(batch);
  pumping = false;
}

void FramedLink::pump_to_ric() { pump(to_ric_.get(), ric_pumping_, ric_batch_); }

void FramedLink::pump_to_node() {
  pump(to_node_.get(), node_pumping_, node_batch_);
}

bool FramedLink::ready_for(std::size_t pdu_bytes) {
  const std::size_t fs = framed_size(8 + pdu_bytes);
  if (to_ric_->writable(fs)) return true;
  // A full queue with a live reader is a kernel-drain moment, not
  // backpressure: drain and re-check before refusing — but in bounded
  // bursts, so the sender only pays for the headroom it needs instead of
  // an unbounded full-channel delivery inside its own send path.
  while (!to_ric_->writable(fs)) {
    const std::size_t before = to_ric_->pending_bytes();
    pump(to_ric_.get(), ric_pumping_, ric_batch_, kReadyForDrainBurst);
    if (to_ric_->pending_bytes() == before) break;  // paused reader / stuck
  }
  if (to_ric_->writable(fs)) return true;
  backpressure_events_->inc();
  return false;
}

void FramedLink::set_ric_reader_paused(bool paused) {
  to_ric_->set_reader_paused(paused);
}

}  // namespace xsec::transport
