// Shared-memory SPSC ring channel backend.
//
// The ring is a memfd mapped twice back-to-back (mirror double mapping):
// any window of up to one physical capacity starting at any ring offset is
// virtually contiguous, so a frame never needs a wrap-around copy and the
// receive path hands out in-place spans straight over the ring pages.
//
// Physical capacity is twice the logical capacity (rounded up to a page):
// pump() advances the tail only *after* the sink returns, so one frame can
// be "delivered but not yet freed" while sends nested inside its delivery
// side effects append at the head. Logical capacity bounds pending bytes,
// logical capacity again bounds the in-flight frame, hence 2x physical is
// always enough and head never overwrites a span still being viewed.
#include <atomic>
#include <cstring>
#include <sys/mman.h>
#include <unistd.h>

#include "transport/channel.hpp"

namespace xsec::transport {

namespace {

class ShmChannel final : public E2Channel {
 public:
  ShmChannel(std::size_t capacity, std::uint8_t* base, std::size_t cap_phys,
             int fd)
      : E2Channel(capacity), base_(base), cap_phys_(cap_phys), fd_(fd) {}

  ~ShmChannel() override {
    ::munmap(base_, 2 * cap_phys_);
    ::close(fd_);
  }

  bool send(std::span<const std::uint8_t> payload) override {
    const std::size_t fs = framed_size(payload.size());
    if (!writable(fs)) return false;
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    std::uint8_t* dst = base_ + (head % cap_phys_);
    write_frame_header(dst, payload);
    if (!payload.empty())
      std::memcpy(dst + kFrameHeaderBytes, payload.data(), payload.size());
    head_.store(head + fs, std::memory_order_release);
    pending_ += fs;
    notify_pump();
    return true;
  }

  void pump(std::size_t max_frames) override {
    if (reader_paused_ || pumping_) return;
    pumping_ = true;
    std::size_t budget = max_frames;
    for (;;) {
      if (budget == 0) break;
      const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
      const std::uint64_t head = head_.load(std::memory_order_acquire);
      if (head == tail) break;
      const std::size_t avail = static_cast<std::size_t>(head - tail);
      std::span<const std::uint8_t> rest(base_ + (tail % cap_phys_), avail);
      std::size_t consumed = 0;
      std::span<const std::uint8_t> payload;
      switch (parse_frame(rest, consumed, payload)) {
        case FrameStatus::kOk:
          pending_ -= consumed;
          ++frames_delivered_;
          --budget;
          if (sink_) sink_(payload);
          // Free the frame's ring bytes only now that the in-place span
          // has been fully consumed.
          tail_.store(tail + consumed, std::memory_order_release);
          break;
        case FrameStatus::kNeedMore:
          // send() writes whole frames before publishing head; a partial
          // frame here means corruption of the length field.
          pending_ -= avail;
          tail_.store(head, std::memory_order_release);
          if (corrupt_) corrupt_(avail);
          break;
        default:
          pending_ -= 1;
          tail_.store(tail + 1, std::memory_order_release);
          if (corrupt_) corrupt_(1);
          break;
      }
    }
    pumping_ = false;
  }

  BackendKind kind() const override { return BackendKind::kShm; }

 private:
  std::uint8_t* base_;
  std::size_t cap_phys_;
  int fd_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};
};

}  // namespace

std::unique_ptr<E2Channel> make_shm_channel(std::size_t capacity) {
  const std::size_t page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  const std::size_t cap_phys = ((2 * capacity + page - 1) / page) * page;

  int fd = static_cast<int>(::memfd_create("xsec-e2-ring", MFD_CLOEXEC));
  if (fd < 0) return nullptr;
  if (::ftruncate(fd, static_cast<off_t>(cap_phys)) != 0) {
    ::close(fd);
    return nullptr;
  }
  // Reserve 2x the physical size, then map the memfd into both halves so
  // offsets wrap transparently.
  void* reserve = ::mmap(nullptr, 2 * cap_phys, PROT_NONE,
                         MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (reserve == MAP_FAILED) {
    ::close(fd);
    return nullptr;
  }
  auto* base = static_cast<std::uint8_t*>(reserve);
  if (::mmap(base, cap_phys, PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_FIXED, fd, 0) == MAP_FAILED ||
      ::mmap(base + cap_phys, cap_phys, PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_FIXED, fd, 0) == MAP_FAILED) {
    ::munmap(reserve, 2 * cap_phys);
    ::close(fd);
    return nullptr;
  }
  return std::make_unique<ShmChannel>(capacity, base, cap_phys, fd);
}

}  // namespace xsec::transport
