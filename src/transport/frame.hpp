// Length-prefixed frame codec for the process-boundary E2 transport.
//
// Every backend (in-process, Unix-domain socket, shared-memory ring)
// moves identical frames so the per-frame accounting — and therefore every
// exported `transport.*` metric — is byte-identical regardless of backend:
//
//   +------+------+-------------+-------------+----------------------+
//   | 'X'  | 'E'  | payload_len | checksum    | payload ...          |
//   | 1 B  | 1 B  | u32 BE      | u32 BE      | payload_len bytes    |
//   +------+------+-------------+-------------+----------------------+
//
// The checksum is FNV-1a folded to 32 bits over the payload. Parsing is a
// pure function over a byte span; the FrameAssembler layers arena-backed
// reassembly for stream backends whose reads can split a frame at any
// byte. A corrupt header resynchronizes by advancing one byte at a time
// until a valid frame boundary is found (bounded loss, never UB).
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "common/bytes.hpp"

namespace xsec::transport {

inline constexpr std::uint8_t kFrameMagic0 = 0x58;  // 'X'
inline constexpr std::uint8_t kFrameMagic1 = 0x45;  // 'E'
inline constexpr std::size_t kFrameHeaderBytes = 10;
/// Upper bound on a single frame's payload: far above any batched E2AP
/// indication, low enough that a corrupt length field cannot demand an
/// absurd reassembly buffer.
inline constexpr std::size_t kMaxFramePayload = 1u << 24;

/// FNV-1a/64 over the payload, xor-folded to 32 bits.
std::uint32_t frame_checksum(std::span<const std::uint8_t> payload);

/// Writes the 10-byte header for `payload` at `dst` (which must have room
/// for kFrameHeaderBytes). Lets ring backends frame in place.
void write_frame_header(std::uint8_t* dst,
                        std::span<const std::uint8_t> payload);

/// Appends one complete frame (header + payload) to `out`.
void append_frame(Bytes& out, std::span<const std::uint8_t> payload);

/// Framed size of a payload (header overhead included).
inline constexpr std::size_t framed_size(std::size_t payload_bytes) {
  return kFrameHeaderBytes + payload_bytes;
}

enum class FrameStatus : std::uint8_t {
  kOk = 0,        // one frame parsed; `consumed` and `payload` are set
  kNeedMore,      // the buffer ends mid-header or mid-payload
  kBadMagic,      // first bytes are not a frame boundary
  kBadLength,     // length field exceeds kMaxFramePayload
  kBadChecksum,   // payload bytes do not match the header checksum
};

/// Parses the frame at the front of `buf`. On kOk, `consumed` is the full
/// framed size and `payload` views the payload bytes inside `buf` (zero
/// copy; valid only while `buf`'s storage is). On any error, `consumed`
/// is 0 and the caller decides how to resynchronize.
FrameStatus parse_frame(std::span<const std::uint8_t> buf,
                        std::size_t& consumed,
                        std::span<const std::uint8_t>& payload);

/// Arena-backed reassembly for stream transports (Unix-domain sockets):
/// feed() appends whatever the socket produced — frames split at arbitrary
/// byte positions — and delivers every completed frame's payload as an
/// in-place span over the arena. The arena is reused across calls, so the
/// steady state allocates nothing once its high-water capacity is reached.
class FrameAssembler {
 public:
  /// Sink receives (payload, framed_bytes_consumed) per completed frame.
  using Sink =
      std::function<void(std::span<const std::uint8_t>, std::size_t)>;
  /// Invoked once per resynchronization byte skipped after corrupt framing.
  using CorruptHook = std::function<void(std::size_t skipped)>;

  explicit FrameAssembler(std::size_t reserve_bytes = 64 * 1024) {
    arena_.reserve(reserve_bytes);
  }

  /// No delivery limit for feed()/drain().
  static constexpr std::size_t kNoLimit = static_cast<std::size_t>(-1);

  void set_corrupt_hook(CorruptHook hook) { on_corrupt_ = std::move(hook); }

  /// Appends `chunk` and drains frames that completed, up to `max_frames`.
  /// Frames past the budget stay buffered in the arena for a later
  /// drain()/feed(). Returns the number of frames delivered.
  std::size_t feed(std::span<const std::uint8_t> chunk, const Sink& sink,
                   std::size_t max_frames = kNoLimit);

  /// Delivers up to `max_frames` already-completed frames left buffered by
  /// an earlier budgeted call. Returns the number delivered.
  std::size_t drain(const Sink& sink, std::size_t max_frames = kNoLimit);

  /// Bytes buffered waiting for the rest of a frame.
  std::size_t buffered() const { return arena_.size() - read_pos_; }
  void clear() {
    arena_.clear();
    read_pos_ = 0;
  }

 private:
  Bytes arena_;
  std::size_t read_pos_ = 0;
  CorruptHook on_corrupt_;
};

}  // namespace xsec::transport
