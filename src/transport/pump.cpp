#include "transport/pump.hpp"

#include <cerrno>
#include <cstdlib>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>

#include "common/log.hpp"

namespace xsec::transport {

std::string_view to_string(PumpMode mode) {
  switch (mode) {
    case PumpMode::kPolled:
      return "polled";
    case PumpMode::kEpoll:
      return "epoll";
  }
  return "polled";
}

Result<PumpMode> parse_pump_mode(std::string_view text) {
  if (text == "polled") return PumpMode::kPolled;
  if (text == "epoll") return PumpMode::kEpoll;
  return Error::make("config",
                     "unknown transport pump mode: " + std::string(text));
}

PumpMode resolve_pump_mode(const std::string& configured) {
  // Same precedence as XSEC_E2_TRANSPORT: an explicit config wins, the
  // environment fills the default. Tests that pin a mode stay pinned even
  // when a sanitize sweep exports XSEC_E2_PUMP for the run.
  if (!configured.empty()) {
    auto parsed = parse_pump_mode(configured);
    if (parsed) return parsed.value();
    XSEC_LOG_WARN("transport", "invalid configured E2 pump mode '",
                  configured, "'; using polled");
    return PumpMode::kPolled;
  }
  const char* env = std::getenv("XSEC_E2_PUMP");
  if (env != nullptr && *env != '\0') {
    auto parsed = parse_pump_mode(env);
    if (parsed) return parsed.value();
    XSEC_LOG_WARN("transport", "invalid XSEC_E2_PUMP '", env,
                  "'; using polled");
  }
  return PumpMode::kPolled;
}

// ---------------------------------------------------------------------------
// E2Channel <-> pump glue (out of line so channel.hpp needn't see the pump).

E2Channel::~E2Channel() {
  // By the time the base dtor runs the derived class already closed its
  // fds (the kernel auto-removes closed fds from the epoll set), so this
  // only has to purge the user-space watch/dirty lists.
  if (pump_ != nullptr) pump_->remove(this);
}

void E2Channel::notify_pump() {
  if (pump_ != nullptr) pump_->mark_dirty(this);
}

void E2Channel::count_io(std::uint64_t n) {
  io_syscalls_ += n;
  if (pump_ != nullptr) pump_->note_syscalls(n);
}

// ---------------------------------------------------------------------------

namespace {
#if defined(__x86_64__) || defined(__i386__)
inline void cpu_relax() { __builtin_ia32_pause(); }
#elif defined(__aarch64__)
inline void cpu_relax() { asm volatile("yield" ::: "memory"); }
#else
inline void cpu_relax() {}
#endif
}  // namespace

std::unique_ptr<EpollPump> EpollPump::create(obs::Observability* obs) {
  int epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) return nullptr;
  int doorbell = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (doorbell < 0) {
    ::close(epoll_fd);
    return nullptr;
  }
  struct epoll_event ev {};
  ev.events = EPOLLIN;
  ev.data.ptr = nullptr;  // nullptr tags the doorbell
  if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, doorbell, &ev) != 0) {
    ::close(doorbell);
    ::close(epoll_fd);
    return nullptr;
  }
  return std::unique_ptr<EpollPump>(new EpollPump(epoll_fd, doorbell, obs));
}

EpollPump::EpollPump(int epoll_fd, int doorbell_fd, obs::Observability* obs)
    : epoll_fd_(epoll_fd), doorbell_fd_(doorbell_fd) {
  if (obs == nullptr) {
    own_obs_ = std::make_unique<obs::Observability>();
    obs = own_obs_.get();
  }
  // Host-dependent by nature (syscall counts differ per backend, kernel,
  // and pump mode), so these bind into obs->host — never the deterministic
  // export registry the byte-identity oracle renders.
  obs::MetricsRegistry& r = obs->host;
  wakeups_ = &r.counter("transport.pump_wakeups");
  syscalls_ = &r.counter("transport.syscalls");
  idle_waits_ = &r.counter("transport.pump_idle_waits");
  frames_per_wakeup_ = &r.histogram("transport.frames_per_wakeup");
  frames_per_syscall_ = &r.histogram("transport.frames_per_syscall");
  dirty_.reserve(16);
  scratch_.reserve(16);
}

EpollPump::~EpollPump() {
  // Channels may outlive the pump (polled fallback paths); detach them.
  for (E2Channel* ch : channels_) ch->pump_ = nullptr;
  ::close(doorbell_fd_);
  ::close(epoll_fd_);
}

void EpollPump::add(E2Channel* ch) {
  if (ch == nullptr || ch->pump_ == this) return;
  ch->pump_ = this;
  ch->pump_dirty_ = false;
  channels_.push_back(ch);
  const int fd = ch->readable_fd();
  if (fd >= 0) {
    struct epoll_event ev {};
    ev.events = EPOLLIN;
    ev.data.ptr = ch;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      XSEC_LOG_WARN("transport", "epoll_ctl ADD failed (errno=", errno,
                    "); channel falls back to doorbell readiness");
    }
  }
  // Anything already queued predates registration; pick it up.
  if (ch->pending_bytes() > 0) mark_dirty(ch);
}

void EpollPump::remove(E2Channel* ch) {
  if (ch == nullptr || ch->pump_ != this) return;
  const int fd = ch->readable_fd();
  if (fd >= 0) (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  clear_dirty_flag(ch);
  dirty_.erase(std::remove(dirty_.begin(), dirty_.end(), ch), dirty_.end());
  scratch_.erase(std::remove(scratch_.begin(), scratch_.end(), ch),
                 scratch_.end());
  channels_.erase(std::remove(channels_.begin(), channels_.end(), ch),
                  channels_.end());
  ch->pump_ = nullptr;
}

void EpollPump::mark_dirty(E2Channel* ch) {
  if (ch->pump_dirty_) return;
  ch->pump_dirty_ = true;
  ++dirty_count_;
  dirty_.push_back(ch);
  if (armed_) {
    // A waiter is parked in epoll_wait: ring the doorbell so it wakes.
    const std::uint64_t one = 1;
    ssize_t ignored [[maybe_unused]] =
        ::write(doorbell_fd_, &one, sizeof(one));
    count_own_syscall();
  }
}

void EpollPump::clear_dirty_flag(E2Channel* ch) {
  if (!ch->pump_dirty_) return;
  ch->pump_dirty_ = false;
  --dirty_count_;
}

void EpollPump::drain(E2Channel* ch, std::size_t max_frames) {
  const std::uint64_t frames_before = ch->frames_delivered();
  const std::uint64_t sys_before = ch->io_syscalls();
  ch->pump(max_frames);
  // A paused reader isn't ready; a fully drained channel isn't dirty. A
  // budget-limited leftover stays dirty so service() finds it again.
  if (ch->pending_bytes() == 0 || ch->reader_paused()) clear_dirty_flag(ch);
  const std::uint64_t frames = ch->frames_delivered() - frames_before;
  if (frames == 0) return;
  wakeups_->inc();
  frames_per_wakeup_->observe(frames);
  const std::uint64_t sys = ch->io_syscalls() - sys_before;
  if (sys > 0) frames_per_syscall_->observe(frames / sys);
}

std::size_t EpollPump::service() {
  std::size_t total = 0;
  // User-space readiness first: zero syscalls for work producers already
  // announced through the dirty list.
  while (!dirty_.empty()) {
    scratch_.swap(dirty_);
    for (E2Channel* ch : scratch_) {
      if (!ch->pump_dirty_) continue;  // stale entry (drained directly)
      clear_dirty_flag(ch);
      const std::uint64_t before = ch->frames_delivered();
      drain(ch);
      total += static_cast<std::size_t>(ch->frames_delivered() - before);
    }
    scratch_.clear();
  }
  // Then one readiness sweep over the real fds — bytes a peer pushed into
  // a kernel socket without ringing this process's doorbell.
  struct epoll_event evs[16];
  const int n = ::epoll_wait(epoll_fd_, evs, 16, 0);
  count_own_syscall();
  for (int i = 0; i < n; ++i) {
    auto* ch = static_cast<E2Channel*>(evs[i].data.ptr);
    if (ch == nullptr) {
      std::uint64_t drainv = 0;
      ssize_t ignored [[maybe_unused]] =
          ::read(doorbell_fd_, &drainv, sizeof(drainv));
      count_own_syscall();
      continue;
    }
    if (ch->reader_paused()) continue;
    const std::uint64_t before = ch->frames_delivered();
    clear_dirty_flag(ch);
    drain(ch);
    total += static_cast<std::size_t>(ch->frames_delivered() - before);
  }
  return total;
}

bool EpollPump::wait_readable(int timeout_ms) {
  if (has_dirty()) {
    spin_budget_ = std::min(max_spin_, spin_budget_ * 2 + 1);
    return true;
  }
  // Short adaptive spin: hot bursts land within a few iterations, and a
  // hit here skips arming the doorbell entirely. The budget doubles on
  // hits and collapses on idle timeouts, so an idle loop pays almost
  // nothing before parking.
  for (std::size_t i = 0; i < spin_budget_; ++i) {
    if (has_dirty()) {
      spin_budget_ = std::min(max_spin_, spin_budget_ * 2 + 1);
      return true;
    }
    cpu_relax();
  }
  armed_ = true;
  struct epoll_event evs[16];
  const int n = ::epoll_wait(epoll_fd_, evs, 16, timeout_ms);
  count_own_syscall();
  armed_ = false;
  if (n <= 0) {
    idle_waits_->inc();
    spin_budget_ = std::max<std::size_t>(1, spin_budget_ / 2);
    return false;
  }
  for (int i = 0; i < n; ++i) {
    auto* ch = static_cast<E2Channel*>(evs[i].data.ptr);
    if (ch == nullptr) {
      std::uint64_t drainv = 0;
      ssize_t ignored [[maybe_unused]] =
          ::read(doorbell_fd_, &drainv, sizeof(drainv));
      count_own_syscall();
      continue;
    }
    mark_dirty(ch);
  }
  return true;
}

void EpollPump::note_syscalls(std::uint64_t n) { syscalls_->inc(n); }

void EpollPump::count_own_syscall() { syscalls_->inc(); }

std::uint64_t EpollPump::wakeups() const { return wakeups_->value(); }
std::uint64_t EpollPump::syscalls() const { return syscalls_->value(); }
std::uint64_t EpollPump::idle_waits() const { return idle_waits_->value(); }

}  // namespace xsec::transport
