// Unix-domain-socket channel backend: frames cross a real kernel socket
// (nonblocking SOCK_STREAM socketpair), so reads can return any byte
// split and the FrameAssembler reassembles frames into a reusable arena.
//
// Two I/O shapes share the logical accounting:
//   polled       — send() writes each frame to the kernel immediately
//                  (one send(2) per frame); pump() reads until EAGAIN.
//   event-driven — with an EpollPump attached, send() only stages the
//                  frame in user space and rings the pump's doorbell; the
//                  drain flushes the whole backlog with one writev(2) over
//                  [spill | stage] and stops reading on a short read
//                  (SOCK_STREAM returns min(queued, len), so a short read
//                  proves the socket queue is empty — no EAGAIN probe).
#include <cerrno>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>

#include "transport/channel.hpp"

namespace xsec::transport {

namespace {

class UdsChannel final : public E2Channel {
 public:
  UdsChannel(std::size_t capacity, int tx_fd, int rx_fd)
      : E2Channel(capacity), tx_fd_(tx_fd), rx_fd_(rx_fd) {
    frame_scratch_.reserve(16 * 1024);
    stage_.reserve(16 * 1024);
    assembler_.set_corrupt_hook([this](std::size_t skipped) {
      pending_ -= skipped;
      if (corrupt_) corrupt_(skipped);
    });
    deliver_ = [this](std::span<const std::uint8_t> payload,
                      std::size_t framed) {
      pending_ -= framed;
      ++frames_delivered_;
      if (sink_) sink_(payload);
    };
  }

  ~UdsChannel() override {
    ::close(tx_fd_);
    ::close(rx_fd_);
  }

  bool send(std::span<const std::uint8_t> payload) override {
    const std::size_t fs = framed_size(payload.size());
    if (!writable(fs)) return false;
    pending_ += fs;
    if (pump_owner() != nullptr) {
      // Event-driven mode: stage in user space — zero syscalls here; the
      // pump's drain coalesces the whole backlog into one writev.
      append_frame(stage_, payload);
      notify_pump();
      return true;
    }
    frame_scratch_.clear();
    append_frame(frame_scratch_, payload);
    write_bytes(frame_scratch_.data(), frame_scratch_.size());
    return true;
  }

  void pump(std::size_t max_frames) override {
    if (pumping_) return;
    pumping_ = true;
    std::size_t budget = max_frames;
    // Frames already reassembled by an earlier budgeted pump deliver
    // first (stream order) without touching the kernel.
    if (!reader_paused_ && budget > 0)
      budget -= assembler_.drain(deliver_, budget);
    for (;;) {
      // Flush any staged/spilled bytes (including sends nested inside
      // delivery side effects) before reading more.
      flush_tx();
      if (reader_paused_ || budget == 0) break;
      ssize_t n = ::recv(rx_fd_, chunk_, sizeof(chunk_), 0);
      count_io();
      if (n <= 0) break;  // EAGAIN / EOF: queue drained
      budget -= assembler_.feed(
          std::span<const std::uint8_t>(chunk_, static_cast<std::size_t>(n)),
          deliver_, budget);
      if (pump_owner() != nullptr &&
          static_cast<std::size_t>(n) < sizeof(chunk_) && stage_.empty() &&
          spill_.empty()) {
        break;  // short read == kernel queue empty; skip the EAGAIN probe
      }
    }
    pumping_ = false;
  }

  int readable_fd() const override { return rx_fd_; }

  void set_max_write_per_syscall_for_test(std::size_t cap) override {
    max_write_per_syscall_ = cap;
  }

  BackendKind kind() const override { return BackendKind::kUds; }

 private:
  /// Polled-mode immediate write (one send(2) per frame, EINTR retried;
  /// kernel-refused remainder spills to user space).
  void write_bytes(const std::uint8_t* data, std::size_t n) {
    // Preserve stream order: if earlier bytes are still spilled, append —
    // flushing happens at the next send or pump.
    if (!spill_.empty()) {
      spill_.insert(spill_.end(), data, data + n);
      flush_tx();
      return;
    }
    std::size_t off = 0;
    while (off < n) {
      std::size_t want = n - off;
      if (max_write_per_syscall_ > 0)
        want = std::min(want, max_write_per_syscall_);
      ssize_t w = ::send(tx_fd_, data + off, want, MSG_NOSIGNAL);
      count_io();
      if (w > 0) {
        off += static_cast<std::size_t>(w);
        continue;
      }
      if (w < 0 && errno == EINTR) continue;
      // Kernel buffer full (or peer gone): stash the remainder; logical
      // accounting already counted these bytes as pending.
      spill_.insert(spill_.end(), data + off, data + n);
      return;
    }
  }

  /// Flushes the tx backlog — kernel-refused spill first, then staged
  /// frames — with one writev per syscall so a multi-frame burst crosses
  /// in a single kernel entry. On EAGAIN the unflushed stage folds behind
  /// the spill so later sends can restage freely in stream order.
  void flush_tx() {
    while (!spill_.empty() || !stage_.empty()) {
      struct iovec iov[2];
      int iovcnt = 0;
      std::size_t allowance = max_write_per_syscall_ > 0
                                  ? max_write_per_syscall_
                                  : static_cast<std::size_t>(-1);
      if (!spill_.empty()) {
        const std::size_t len = std::min(spill_.size(), allowance);
        iov[iovcnt].iov_base = spill_.data();
        iov[iovcnt].iov_len = len;
        allowance -= len;
        ++iovcnt;
      }
      if (!stage_.empty() && allowance > 0) {
        iov[iovcnt].iov_base = stage_.data();
        iov[iovcnt].iov_len = std::min(stage_.size(), allowance);
        ++iovcnt;
      }
      if (iovcnt == 0) return;
      ssize_t w = ::writev(tx_fd_, iov, iovcnt);
      count_io();
      if (w < 0 && errno == EINTR) continue;
      if (w <= 0) {
        if (!stage_.empty()) {
          spill_.insert(spill_.end(), stage_.begin(), stage_.end());
          stage_.clear();
        }
        return;
      }
      consume_tx(static_cast<std::size_t>(w));
    }
  }

  /// Pops `n` kernel-accepted bytes off the front of the tx backlog.
  void consume_tx(std::size_t n) {
    const std::size_t from_spill = std::min(n, spill_.size());
    if (from_spill == spill_.size()) {
      spill_.clear();
    } else if (from_spill > 0) {
      spill_.erase(spill_.begin(),
                   spill_.begin() + static_cast<std::ptrdiff_t>(from_spill));
    }
    n -= from_spill;
    if (n == 0) return;
    if (n >= stage_.size()) {
      stage_.clear();
    } else {
      stage_.erase(stage_.begin(),
                   stage_.begin() + static_cast<std::ptrdiff_t>(n));
    }
  }

  int tx_fd_;
  int rx_fd_;
  Bytes frame_scratch_;
  Bytes stage_;  // frames staged by event-driven send(), not yet written
  Bytes spill_;  // bytes the kernel refused (stream-ordered before stage_)
  FrameAssembler assembler_;
  FrameAssembler::Sink deliver_;
  std::size_t max_write_per_syscall_ = 0;
  std::uint8_t chunk_[64 * 1024];
};

}  // namespace

std::unique_ptr<E2Channel> make_uds_channel(std::size_t capacity) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, fds) != 0)
    return nullptr;
  // Size the kernel buffer near the logical capacity so user-space spill
  // stays rare; failure is harmless (spill_ covers any shortfall).
  int snd = static_cast<int>(capacity);
  (void)::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &snd, sizeof(snd));
  (void)::setsockopt(fds[1], SOL_SOCKET, SO_RCVBUF, &snd, sizeof(snd));
  return std::make_unique<UdsChannel>(capacity, fds[0], fds[1]);
}

}  // namespace xsec::transport
