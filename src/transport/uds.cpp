// Unix-domain-socket channel backend: frames cross a real kernel socket
// (nonblocking SOCK_STREAM socketpair), so reads can return any byte
// split and the FrameAssembler reassembles frames into a reusable arena.
#include <cerrno>
#include <sys/socket.h>
#include <unistd.h>

#include "transport/channel.hpp"

namespace xsec::transport {

namespace {

class UdsChannel final : public E2Channel {
 public:
  UdsChannel(std::size_t capacity, int tx_fd, int rx_fd)
      : E2Channel(capacity), tx_fd_(tx_fd), rx_fd_(rx_fd) {
    frame_scratch_.reserve(16 * 1024);
    assembler_.set_corrupt_hook([this](std::size_t skipped) {
      pending_ -= skipped;
      if (corrupt_) corrupt_(skipped);
    });
  }

  ~UdsChannel() override {
    ::close(tx_fd_);
    ::close(rx_fd_);
  }

  bool send(std::span<const std::uint8_t> payload) override {
    const std::size_t fs = framed_size(payload.size());
    if (!writable(fs)) return false;
    pending_ += fs;
    frame_scratch_.clear();
    append_frame(frame_scratch_, payload);
    write_bytes(frame_scratch_.data(), frame_scratch_.size());
    return true;
  }

  void pump() override {
    if (reader_paused_ || pumping_) return;
    pumping_ = true;
    for (;;) {
      // Flush any bytes the kernel refused earlier (including spill from
      // sends nested inside delivery side effects) before reading more.
      flush_spill();
      ssize_t n = ::recv(rx_fd_, chunk_, sizeof(chunk_), 0);
      if (n <= 0) break;  // EAGAIN / EOF: queue drained
      assembler_.feed(
          std::span<const std::uint8_t>(chunk_, static_cast<std::size_t>(n)),
          [this](std::span<const std::uint8_t> payload, std::size_t framed) {
            pending_ -= framed;
            if (sink_) sink_(payload);
          });
    }
    pumping_ = false;
  }

  BackendKind kind() const override { return BackendKind::kUds; }

 private:
  void write_bytes(const std::uint8_t* data, std::size_t n) {
    // Preserve stream order: if earlier bytes are still spilled, append —
    // flushing happens at the next send or pump.
    if (!spill_.empty()) {
      spill_.insert(spill_.end(), data, data + n);
      flush_spill();
      return;
    }
    std::size_t off = 0;
    while (off < n) {
      ssize_t w = ::send(tx_fd_, data + off, n - off, MSG_NOSIGNAL);
      if (w > 0) {
        off += static_cast<std::size_t>(w);
        continue;
      }
      if (w < 0 && errno == EINTR) continue;
      // Kernel buffer full (or peer gone): stash the remainder; logical
      // accounting already counted these bytes as pending.
      spill_.insert(spill_.end(), data + off, data + n);
      return;
    }
  }

  void flush_spill() {
    std::size_t off = 0;
    while (off < spill_.size()) {
      ssize_t w =
          ::send(tx_fd_, spill_.data() + off, spill_.size() - off,
                 MSG_NOSIGNAL);
      if (w > 0) {
        off += static_cast<std::size_t>(w);
        continue;
      }
      if (w < 0 && errno == EINTR) continue;
      break;
    }
    if (off == spill_.size()) {
      spill_.clear();
    } else if (off > 0) {
      spill_.erase(spill_.begin(), spill_.begin() + static_cast<std::ptrdiff_t>(off));
    }
  }

  int tx_fd_;
  int rx_fd_;
  Bytes frame_scratch_;
  Bytes spill_;
  FrameAssembler assembler_;
  std::uint8_t chunk_[64 * 1024];
};

}  // namespace

std::unique_ptr<E2Channel> make_uds_channel(std::size_t capacity) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, fds) != 0)
    return nullptr;
  // Size the kernel buffer near the logical capacity so user-space spill
  // stays rare; failure is harmless (spill_ covers any shortfall).
  int snd = static_cast<int>(capacity);
  (void)::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &snd, sizeof(snd));
  (void)::setsockopt(fds[1], SOL_SOCKET, SO_RCVBUF, &snd, sizeof(snd));
  return std::make_unique<UdsChannel>(capacity, fds[0], fds[1]);
}

}  // namespace xsec::transport
