// A bidirectional framed E2 link: two channels (node -> RIC, RIC -> node)
// of the same backend, plus the uniform payload framing and the global
// `transport.*` instrument bindings.
//
// Payload layout in BOTH directions: [u64 BE node id][E2AP PDU bytes].
// Using one encoder for both directions keeps the codec single-sourced and
// carries correct node ids even after a paused-reader resume delivers
// frames queued before the id was learned.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>

#include "obs/trace.hpp"
#include "transport/channel.hpp"

namespace xsec::transport {

class EpollPump;

struct LinkConfig {
  BackendKind backend = BackendKind::kInProcess;
  std::size_t capacity = kDefaultChannelCapacity;
  /// Event-driven pump to register both channels with (non-owning; must
  /// outlive the link). nullptr = historical polled mode.
  EpollPump* pump = nullptr;
};

/// Resolves the effective backend. An explicit `configured` value
/// ("inproc" / "uds" / "shm") wins; when it is empty the
/// XSEC_E2_TRANSPORT environment variable fills the default — the same
/// precedence XSEC_RIC_SHARDS uses, so env sweeps re-run default-configured
/// suites over a process-boundary backend without unpinning tests that set
/// one deliberately. Invalid values warn and fall back to in-process.
BackendKind resolve_backend(const std::string& configured);

/// Resolves the effective per-direction channel capacity in bytes. A
/// non-zero `configured` value wins; when it is 0 the XSEC_E2_CAPACITY
/// environment variable fills the default (strictly parsed — negatives,
/// zero, trailing garbage, and values above 1 GiB are rejected with a
/// warning), falling back to kDefaultChannelCapacity. Lets slow-reader
/// and backpressure sweeps shrink the channel without a recompile.
std::size_t resolve_capacity(std::size_t configured);

class FramedLink {
 public:
  /// Receives (node_id, E2AP PDU bytes) for one delivered frame. The span
  /// views transport-owned memory and is valid only during the call.
  using DeliverSink =
      std::function<void(std::uint64_t, std::span<const std::uint8_t>)>;

  FramedLink(LinkConfig cfg, obs::Observability* obs);
  ~FramedLink();

  void set_ric_sink(DeliverSink sink);
  void set_node_sink(DeliverSink sink);

  /// Frames and enqueues one PDU. Returns false — nothing enqueued, one
  /// backpressure event counted — when the channel's capacity is full.
  bool enqueue_to_ric(std::uint64_t node_id, const Bytes& pdu);
  bool enqueue_to_node(std::uint64_t node_id, const Bytes& pdu);

  /// Drains the direction's channel, delivering every queued frame.
  void pump_to_ric();
  void pump_to_node();

  /// Would a PDU of `pdu_bytes` fit toward the RIC right now? Drains in
  /// bounded bursts first when full (the kernel drains concurrently in a
  /// real deployment, so a full queue with a live reader is not
  /// backpressure) — only enough frames to make headroom for THIS PDU, so
  /// a backpressured sender never pays an unbounded delivery burst inside
  /// its own send path. Counts one `transport.backpressure_events` on
  /// refusal.
  bool ready_for(std::size_t pdu_bytes);

  /// Test hook: pause/resume the node -> RIC reader (slow-consumer chaos).
  void set_ric_reader_paused(bool paused);

  BackendKind backend() const { return to_ric_->kind(); }
  std::size_t capacity() const { return to_ric_->capacity(); }
  std::size_t pending_to_ric() const { return to_ric_->pending_bytes(); }
  std::size_t pending_to_node() const { return to_node_->pending_bytes(); }
  /// The event-driven pump both channels are registered with (nullptr in
  /// polled mode).
  EpollPump* pump() const { return pump_; }

 private:
  /// Frames drained per burst inside ready_for() — enough that one burst
  /// usually frees headroom, small enough to bound the sender's stall.
  static constexpr std::size_t kReadyForDrainBurst = 8;

  bool enqueue(E2Channel* ch, std::uint64_t node_id, const Bytes& pdu);
  void pump(E2Channel* ch, bool& pumping, std::uint64_t& batch,
            std::size_t max_frames = E2Channel::kNoFrameLimit);

  EpollPump* pump_ = nullptr;
  std::unique_ptr<E2Channel> to_ric_;
  std::unique_ptr<E2Channel> to_node_;
  Bytes tx_scratch_;
  bool ric_pumping_ = false;
  bool node_pumping_ = false;
  std::uint64_t ric_batch_ = 0;
  std::uint64_t node_batch_ = 0;

  std::unique_ptr<obs::Observability> own_obs_;
  obs::Counter* frames_tx_ = nullptr;
  obs::Counter* frames_rx_ = nullptr;
  obs::Counter* bytes_tx_ = nullptr;
  obs::Counter* bytes_rx_ = nullptr;
  obs::Counter* backpressure_events_ = nullptr;
  obs::Counter* frames_corrupt_ = nullptr;
  obs::Histogram* ring_occupancy_ = nullptr;
  obs::Histogram* frame_bytes_ = nullptr;
  obs::Histogram* flush_batch_ = nullptr;
};

}  // namespace xsec::transport
