// Mitigation xApp: the control half of the closed loop.
//
// Consumes MobiWatch anomaly windows (fast path) and LLM incident verdicts
// (classified path) off the message router, matches them against a
// declarative policy table, and issues graded E2 Control actions against
// the offending node — rate limit, UE quarantine, stale-context release,
// full isolation. Every action carries a TTL and a rollback condition:
//   - TTL expiry reverts the action automatically (no verdict sustained it),
//   - a benign LLM verdict (llm_agrees == false) is false-positive evidence
//     and reverts immediately, restoring the source's trust,
//   - a confirming verdict while an action is live ESCALATES to the next
//     rung of the ladder instead of stacking duplicates.
// Per-source action budgets stop runaway mitigation storms, and per-source
// trust (decayed on confirmation, restored on FP rollback) gates the
// harsher rules. Every lifecycle event lands in the SDL ("mitigate"
// namespace) and the mitigate.* metrics, both byte-stable exports.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "detect/mobiwatch.hpp"
#include "llm/analyzer_xapp.hpp"
#include "mitigate/policy.hpp"
#include "mobiflow/agent.hpp"
#include "oran/xapp.hpp"

namespace xsec::mitigate {

struct MitigationConfig {
  /// Pipeline gate: the xApp is only registered when set. Off by default
  /// so detection-only deployments keep their exact behavior.
  bool enabled = false;
  MitigationPolicy policy = MitigationPolicy::default_policy();
  std::string sdl_namespace = "mitigate";
  /// Act on raw detector flags before classification (stage kDetector).
  bool fast_path = true;
  /// Source trust multiplier per LLM-confirmed incident.
  double trust_decay = 0.5;
  /// Source trust restored (additive, capped at 1.0) per FP rollback.
  double trust_restore = 0.25;
  /// After an FP rollback, nudge MobiWatch's detection threshold up over
  /// A1 (kPolicyDetectionTuning) so the same benign pattern stops firing.
  bool tune_detection_on_fp = true;
  /// Multiplicative threshold_scale step per FP rollback, capped.
  double fp_tuning_step = 1.05;
  double fp_tuning_cap = 1.5;
  /// xApp receiving the detection-tuning policy.
  std::string detection_xapp = "mobiwatch";
  /// SDL namespace/key an operator-supplied policy table is loaded from
  /// (MitigationPolicy::parse format). Loaded at start and live-reloaded
  /// on every SDL write; a table that fails validation is rejected and
  /// the policy in force stays unchanged.
  std::string policy_namespace = "policy";
  std::string policy_key = "mitigation";
  /// SDL namespace the model-lifecycle store uses; audit rows stamp the
  /// model version in force from its "active" key.
  std::string model_namespace = "model";
};

class MitigationXapp : public oran::XApp {
 public:
  explicit MitigationXapp(MitigationConfig config);

  void on_start() override;
  void on_control_ack(std::uint64_t node_id,
                      const oran::RicControlAck& ack) override;
  /// A1 kPolicyMitigation: budget / TTL-scale / fast-path overrides.
  oran::PolicyStatus on_policy(const oran::A1Policy& policy) override;

  // --- stats (registry snapshot views) ---
  std::size_t actions_issued() const { return m().actions_issued->value(); }
  std::size_t actions_failed() const { return m().actions_failed->value(); }
  std::size_t rollbacks() const { return m().rollbacks->value(); }
  std::size_t rollbacks_ttl() const { return m().rollbacks_ttl->value(); }
  std::size_t rollbacks_evidence() const {
    return m().rollbacks_evidence->value();
  }
  std::size_t escalations() const { return m().escalations->value(); }
  std::size_t budget_exhausted() const {
    return m().budget_exhausted->value();
  }
  std::size_t a1_tunings() const { return m().a1_tunings->value(); }
  std::size_t verdicts_consumed() const {
    return m().verdicts_consumed->value();
  }
  std::size_t policy_loads() const { return m().policy_loads->value(); }
  std::size_t policy_errors() const { return m().policy_errors->value(); }
  /// The rule table currently in force (defaults, SDL, or A1-adjusted).
  const MitigationPolicy& policy() const { return config_.policy; }
  std::size_t active_actions() const { return active_.size(); }
  /// Current trust for a source (1.0 when never seen).
  double source_trust(std::uint64_t node_id, std::uint64_t source_ue) const;

 private:
  /// Sources are keyed by (node, UE): one active action per source, with
  /// escalation replacing it in place.
  using SourceKey = std::pair<std::uint64_t, std::uint64_t>;

  struct ActiveAction {
    std::uint64_t action_id = 0;
    ActionKind kind = ActionKind::kRateLimit;
    std::uint32_t ttl_ms = 0;
    std::int64_t issued_at_us = 0;
    /// Suspect identifiers quarantined (unblocked on rollback).
    std::vector<std::uint64_t> tmsis;
    /// Bumped on every (re)issue so a TTL timer armed for a superseded
    /// incarnation of the action is a no-op when it fires.
    std::uint64_t ttl_epoch = 0;
    std::uint32_t rate_limit = 0;
    std::uint32_t rate_window_ms = 0;
    std::uint32_t stale_age_ms = 0;
  };

  struct SourceState {
    double trust = 1.0;
    std::size_t actions_charged = 0;
  };

  /// Registry handles, bound lazily on first use ("mitigate.*").
  struct Metrics {
    obs::Counter* actions_issued = nullptr;
    obs::Counter* actions_failed = nullptr;
    obs::Counter* rollbacks = nullptr;
    obs::Counter* rollbacks_ttl = nullptr;
    obs::Counter* rollbacks_evidence = nullptr;
    obs::Counter* escalations = nullptr;
    obs::Counter* budget_exhausted = nullptr;
    obs::Counter* a1_tunings = nullptr;
    obs::Counter* verdicts_consumed = nullptr;
    obs::Counter* policy_loads = nullptr;
    obs::Counter* policy_errors = nullptr;
    obs::Histogram* time_to_mitigate_us = nullptr;
    obs::Histogram* time_to_recover_us = nullptr;
    bool bound = false;
  };

  Metrics& m() const;
  void handle_anomaly(const oran::RoutedMessage& message);
  void handle_verdict(const oran::RoutedMessage& message);
  /// Applies `rule` to the source, charging the budget. `flagged_at_us`
  /// feeds the time-to-mitigate histogram; `cause` lands in the audit
  /// trail. No-op when the budget is gone.
  void issue(const SourceKey& key, const PolicyRule& rule,
             std::vector<std::uint64_t> tmsis, std::int64_t flagged_at_us,
             bool escalation, const char* cause);
  /// Replaces the active action with the next rung of the ladder.
  void escalate(const SourceKey& key, const llm::IncidentVerdict& verdict);
  void rollback(const SourceKey& key, const char* reason,
                obs::Counter* reason_counter);
  void ttl_expired(SourceKey key, std::uint64_t epoch);
  /// Sends the E2 controls realizing / reverting an action.
  void send_action_controls(const SourceKey& key, const ActiveAction& action);
  void send_rollback_controls(const SourceKey& key,
                              const ActiveAction& action);
  void send_command(std::uint64_t node_id,
                    const mobiflow::ControlCommand& cmd);
  void record(const std::string& text);
  std::int64_t now_us() const;
  void tune_detection();
  /// (Re)loads the operator policy table from the SDL; invalid tables
  /// leave the current policy in force.
  void load_policy();
  /// Model version in force (lifecycle store's "active" key, "v0" when no
  /// lifecycle manages the model) — stamped on every audit row.
  std::string model_version();

  MitigationConfig config_;
  std::map<SourceKey, ActiveAction> active_;
  std::map<SourceKey, SourceState> sources_;
  std::uint64_t next_action_id_ = 1;
  std::uint64_t next_record_ = 1;
  double fp_threshold_scale_ = 1.0;
  mutable Metrics metrics_;
};

}  // namespace xsec::mitigate
