// Declarative mitigation policy.
//
// The closed loop's decision table: rules match an incident's observables
// (stage, attack class, score/threshold ratio, source trust) and select a
// graded action with a TTL. Rules are evaluated in order — first match
// wins — so operators express priority by ordering, and the whole table
// can be replaced over A1 without recompiling the xApp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "oran/a1.hpp"

namespace xsec::mitigate {

/// Graded mitigation actions, ordered by severity. Escalation walks this
/// ladder upward on re-trigger; rollback reverts whichever rung is active.
enum class ActionKind : std::uint8_t {
  kReleaseRrc = 0,    // release contexts stalled pre-security
  kRateLimit = 1,     // cap RRC setup admissions per sliding window
  kQuarantineUe = 2,  // block the suspect S-TMSI(s) at the DU
  kIsolateNode = 3,   // freeze ALL new admissions at the gNB
};
const char* to_string(ActionKind kind);

/// Which loop stage a rule listens on.
enum class RuleStage : std::uint8_t {
  /// Raw MobiWatch anomaly reports (fast-path containment, fires before
  /// the LLM has classified the incident).
  kDetector = 0,
  /// LLM-classified incident verdicts (attack class available).
  kClassified = 1,
};

struct PolicyRule {
  RuleStage stage = RuleStage::kClassified;
  /// Case-insensitive substring matched against the verdict's candidate
  /// attack classes. Empty matches any class — including none (the
  /// detector stage has no classification yet). A non-empty matcher never
  /// fires on an unclassified incident.
  std::string match_class;
  /// Minimum anomaly score / detector threshold ratio.
  double min_score_ratio = 1.0;
  /// The rule fires only while the source's trust is at or below this
  /// (1.0 = always; lower bounds reserve an action for repeat offenders).
  double max_trust = 1.0;
  ActionKind action = ActionKind::kRateLimit;
  /// Action lifetime; expiry triggers an automatic TTL rollback.
  std::uint32_t ttl_ms = 2000;
  // --- action parameters ---
  std::uint32_t rate_limit = 6;       // kRateLimit: admissions per window
  std::uint32_t rate_window_ms = 100; // kRateLimit: sliding window
  std::uint32_t stale_age_ms = 50;    // kReleaseRrc: min context age
};

struct MitigationPolicy {
  /// Ordered rule table; the first matching rule selects the action.
  std::vector<PolicyRule> rules;
  /// Actions (including escalations) chargeable to one source before the
  /// loop stops acting on it — the anti-mitigation-storm budget.
  std::size_t max_actions_per_source = 6;

  /// The shipped table: fast-path rate-limit on any detector flag, then
  /// class-specific actions once the LLM has spoken.
  static MitigationPolicy default_policy();

  /// First rule matching (stage, classes, score_ratio, trust), or nullptr.
  const PolicyRule* match(RuleStage stage,
                          const std::vector<std::string>& classes,
                          double score_ratio, double trust) const;

  /// A1 (kPolicyMitigation) overrides: budgets and per-rule knobs that
  /// make sense as scalar tweaks ("max_actions_per_source", "ttl_scale").
  void apply_a1(const oran::A1Policy& policy);

  /// Parses an operator-supplied policy table (the SDL `policy` namespace
  /// format). One directive per line; '#' comments and blank lines are
  /// ignored:
  ///
  ///   max_actions_per_source=6
  ///   rule stage=detector action=rate-limit ttl_ms=1500 rate_limit=6
  ///   rule stage=classified class=replay action=quarantine-ue ttl_ms=3000
  ///
  /// Every key is validated; an unknown key, stage, action, or malformed
  /// number fails the WHOLE table (callers keep their previous policy), and
  /// a table with no rules is an error.
  static Result<MitigationPolicy> parse(const std::string& text);

  /// Renders the table in the parse() format (round-trips losslessly).
  std::string to_text() const;
};

}  // namespace xsec::mitigate
