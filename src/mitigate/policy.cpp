#include "mitigate/policy.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace xsec::mitigate {

const char* to_string(ActionKind kind) {
  switch (kind) {
    case ActionKind::kReleaseRrc: return "release-rrc";
    case ActionKind::kRateLimit: return "rate-limit";
    case ActionKind::kQuarantineUe: return "quarantine-ue";
    case ActionKind::kIsolateNode: return "isolate-node";
  }
  return "unknown";
}

MitigationPolicy MitigationPolicy::default_policy() {
  MitigationPolicy policy;
  // Fast path: any detector flag earns a mild rate limit while the LLM
  // classifies. Short TTL — if no verdict confirms, it self-reverts.
  PolicyRule contain;
  contain.stage = RuleStage::kDetector;
  contain.action = ActionKind::kRateLimit;
  contain.ttl_ms = 1500;
  contain.rate_limit = 6;
  contain.rate_window_ms = 100;
  policy.rules.push_back(contain);
  // Classified: replay-style attacks quarantine the suspect identifiers.
  PolicyRule replay;
  replay.stage = RuleStage::kClassified;
  replay.match_class = "replay";
  replay.action = ActionKind::kQuarantineUe;
  replay.ttl_ms = 3000;
  policy.rules.push_back(replay);
  // Classified: DoS / storm / depletion tightens the admission rate.
  PolicyRule dos;
  dos.stage = RuleStage::kClassified;
  dos.match_class = "dos";
  dos.action = ActionKind::kRateLimit;
  dos.ttl_ms = 2500;
  dos.rate_limit = 4;
  dos.rate_window_ms = 100;
  policy.rules.push_back(dos);
  PolicyRule storm = dos;
  storm.match_class = "storm";
  policy.rules.push_back(storm);
  // Classified catch-all: anything else confirmed gets a stale release.
  PolicyRule fallback;
  fallback.stage = RuleStage::kClassified;
  fallback.action = ActionKind::kReleaseRrc;
  fallback.ttl_ms = 1000;
  policy.rules.push_back(fallback);
  return policy;
}

const PolicyRule* MitigationPolicy::match(
    RuleStage stage, const std::vector<std::string>& classes,
    double score_ratio, double trust) const {
  for (const PolicyRule& rule : rules) {
    if (rule.stage != stage) continue;
    if (score_ratio < rule.min_score_ratio) continue;
    if (trust > rule.max_trust) continue;
    if (!rule.match_class.empty()) {
      bool hit = std::any_of(classes.begin(), classes.end(),
                             [&rule](const std::string& cls) {
                               return contains(to_lower(cls),
                                               rule.match_class);
                             });
      if (!hit) continue;
    }
    return &rule;
  }
  return nullptr;
}

void MitigationPolicy::apply_a1(const oran::A1Policy& policy) {
  double budget = policy.get_double("max_actions_per_source",
                                    static_cast<double>(max_actions_per_source));
  if (budget >= 1.0) max_actions_per_source = static_cast<std::size_t>(budget);
  double ttl_scale = policy.get_double("ttl_scale", 1.0);
  if (ttl_scale > 0.0 && ttl_scale != 1.0) {
    for (PolicyRule& rule : rules) {
      double scaled = static_cast<double>(rule.ttl_ms) * ttl_scale;
      rule.ttl_ms = scaled < 1.0 ? 1 : static_cast<std::uint32_t>(scaled);
    }
  }
}

}  // namespace xsec::mitigate
