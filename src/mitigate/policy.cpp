#include "mitigate/policy.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/strings.hpp"

namespace xsec::mitigate {

namespace {

bool parse_u32(const std::string& text, std::uint32_t& out) {
  if (text.empty() || text.find('-') != std::string::npos) return false;
  char* end = nullptr;
  const unsigned long v = std::strtoul(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || v > 0xffffffffUL) return false;
  out = static_cast<std::uint32_t>(v);
  return true;
}

bool parse_f64(const std::string& text, double& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') return false;
  out = v;
  return true;
}

bool parse_action(const std::string& text, ActionKind& out) {
  if (text == "release-rrc") out = ActionKind::kReleaseRrc;
  else if (text == "rate-limit") out = ActionKind::kRateLimit;
  else if (text == "quarantine-ue") out = ActionKind::kQuarantineUe;
  else if (text == "isolate-node") out = ActionKind::kIsolateNode;
  else return false;
  return true;
}

Result<PolicyRule> parse_rule(const std::vector<std::string>& tokens,
                              std::size_t line_no) {
  auto fail = [line_no](const std::string& what) {
    return Error::make("policy",
                       "line " + std::to_string(line_no) + ": " + what);
  };
  PolicyRule rule;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos)
      return fail("rule attribute '" + token + "' is not key=value");
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "stage") {
      if (value == "detector") rule.stage = RuleStage::kDetector;
      else if (value == "classified") rule.stage = RuleStage::kClassified;
      else return fail("unknown stage '" + value + "'");
    } else if (key == "class") {
      rule.match_class = to_lower(value);
    } else if (key == "action") {
      if (!parse_action(value, rule.action))
        return fail("unknown action '" + value + "'");
    } else if (key == "min_ratio") {
      if (!parse_f64(value, rule.min_score_ratio) || rule.min_score_ratio < 0)
        return fail("bad min_ratio '" + value + "'");
    } else if (key == "max_trust") {
      if (!parse_f64(value, rule.max_trust) || rule.max_trust < 0 ||
          rule.max_trust > 1.0)
        return fail("bad max_trust '" + value + "'");
    } else if (key == "ttl_ms") {
      if (!parse_u32(value, rule.ttl_ms) || rule.ttl_ms == 0)
        return fail("bad ttl_ms '" + value + "'");
    } else if (key == "rate_limit") {
      if (!parse_u32(value, rule.rate_limit))
        return fail("bad rate_limit '" + value + "'");
    } else if (key == "rate_window_ms") {
      if (!parse_u32(value, rule.rate_window_ms) || rule.rate_window_ms == 0)
        return fail("bad rate_window_ms '" + value + "'");
    } else if (key == "stale_age_ms") {
      if (!parse_u32(value, rule.stale_age_ms))
        return fail("bad stale_age_ms '" + value + "'");
    } else {
      return fail("unknown rule attribute '" + key + "'");
    }
  }
  return rule;
}

}  // namespace

const char* to_string(ActionKind kind) {
  switch (kind) {
    case ActionKind::kReleaseRrc: return "release-rrc";
    case ActionKind::kRateLimit: return "rate-limit";
    case ActionKind::kQuarantineUe: return "quarantine-ue";
    case ActionKind::kIsolateNode: return "isolate-node";
  }
  return "unknown";
}

MitigationPolicy MitigationPolicy::default_policy() {
  MitigationPolicy policy;
  // Fast path: any detector flag earns a mild rate limit while the LLM
  // classifies. Short TTL — if no verdict confirms, it self-reverts.
  PolicyRule contain;
  contain.stage = RuleStage::kDetector;
  contain.action = ActionKind::kRateLimit;
  contain.ttl_ms = 1500;
  contain.rate_limit = 6;
  contain.rate_window_ms = 100;
  policy.rules.push_back(contain);
  // Classified: replay-style attacks quarantine the suspect identifiers.
  PolicyRule replay;
  replay.stage = RuleStage::kClassified;
  replay.match_class = "replay";
  replay.action = ActionKind::kQuarantineUe;
  replay.ttl_ms = 3000;
  policy.rules.push_back(replay);
  // Classified: DoS / storm / depletion tightens the admission rate.
  PolicyRule dos;
  dos.stage = RuleStage::kClassified;
  dos.match_class = "dos";
  dos.action = ActionKind::kRateLimit;
  dos.ttl_ms = 2500;
  dos.rate_limit = 4;
  dos.rate_window_ms = 100;
  policy.rules.push_back(dos);
  PolicyRule storm = dos;
  storm.match_class = "storm";
  policy.rules.push_back(storm);
  // Classified catch-all: anything else confirmed gets a stale release.
  PolicyRule fallback;
  fallback.stage = RuleStage::kClassified;
  fallback.action = ActionKind::kReleaseRrc;
  fallback.ttl_ms = 1000;
  policy.rules.push_back(fallback);
  return policy;
}

const PolicyRule* MitigationPolicy::match(
    RuleStage stage, const std::vector<std::string>& classes,
    double score_ratio, double trust) const {
  for (const PolicyRule& rule : rules) {
    if (rule.stage != stage) continue;
    if (score_ratio < rule.min_score_ratio) continue;
    if (trust > rule.max_trust) continue;
    if (!rule.match_class.empty()) {
      bool hit = std::any_of(classes.begin(), classes.end(),
                             [&rule](const std::string& cls) {
                               return contains(to_lower(cls),
                                               rule.match_class);
                             });
      if (!hit) continue;
    }
    return &rule;
  }
  return nullptr;
}

Result<MitigationPolicy> MitigationPolicy::parse(const std::string& text) {
  MitigationPolicy policy;
  policy.rules.clear();
  std::size_t line_no = 0;
  for (const std::string& raw : split(text, '\n')) {
    ++line_no;
    const std::string line = trim(raw);
    if (line.empty() || line[0] == '#') continue;
    // Tokenize on whitespace (split() collapses nothing, so drop empties).
    std::vector<std::string> tokens;
    for (const std::string& t : split(line, ' '))
      if (!trim(t).empty()) tokens.push_back(trim(t));
    if (tokens.empty()) continue;
    if (tokens[0] == "rule") {
      auto rule = parse_rule(tokens, line_no);
      if (!rule) return rule.error();
      policy.rules.push_back(rule.value());
    } else if (tokens.size() == 1 &&
               starts_with(tokens[0], "max_actions_per_source=")) {
      std::uint32_t budget = 0;
      const std::string value =
          tokens[0].substr(std::string("max_actions_per_source=").size());
      if (!parse_u32(value, budget) || budget == 0)
        return Error::make("policy", "line " + std::to_string(line_no) +
                                         ": bad max_actions_per_source '" +
                                         value + "'");
      policy.max_actions_per_source = budget;
    } else {
      return Error::make("policy", "line " + std::to_string(line_no) +
                                       ": unknown directive '" + tokens[0] +
                                       "'");
    }
  }
  if (policy.rules.empty())
    return Error::make("policy", "policy table has no rules");
  return policy;
}

std::string MitigationPolicy::to_text() const {
  std::string out = "max_actions_per_source=" +
                    std::to_string(max_actions_per_source) + "\n";
  for (const PolicyRule& rule : rules) {
    out += "rule stage=";
    out += rule.stage == RuleStage::kDetector ? "detector" : "classified";
    if (!rule.match_class.empty()) out += " class=" + rule.match_class;
    out += std::string(" action=") + to_string(rule.action);
    out += " min_ratio=" + format_fixed(rule.min_score_ratio, 3);
    out += " max_trust=" + format_fixed(rule.max_trust, 3);
    out += " ttl_ms=" + std::to_string(rule.ttl_ms);
    if (rule.action == ActionKind::kRateLimit) {
      out += " rate_limit=" + std::to_string(rule.rate_limit);
      out += " rate_window_ms=" + std::to_string(rule.rate_window_ms);
    }
    if (rule.action == ActionKind::kReleaseRrc)
      out += " stale_age_ms=" + std::to_string(rule.stale_age_ms);
    out += "\n";
  }
  return out;
}

void MitigationPolicy::apply_a1(const oran::A1Policy& policy) {
  double budget = policy.get_double("max_actions_per_source",
                                    static_cast<double>(max_actions_per_source));
  if (budget >= 1.0) max_actions_per_source = static_cast<std::size_t>(budget);
  double ttl_scale = policy.get_double("ttl_scale", 1.0);
  if (ttl_scale > 0.0 && ttl_scale != 1.0) {
    for (PolicyRule& rule : rules) {
      double scaled = static_cast<double>(rule.ttl_ms) * ttl_scale;
      rule.ttl_ms = scaled < 1.0 ? 1 : static_cast<std::uint32_t>(scaled);
    }
  }
}

}  // namespace xsec::mitigate
